package ivm

// Request-observability benchmarks: the cost the tracing and latency
// instrumentation adds to the hot resolve path. Two numbers matter —
// recording one observation into the lock-free log2 histogram, and
// the detached span path (the nil-sink checks every resolve pays when
// no request trace is attached). Both must stay allocation-free; each
// benchmark fails outright if its path allocates. scripts/bench.sh
// distils these into the "request_observability" block of
// BENCH_sweep.json; the timings are context-only (sub-ns scale, too
// noisy for the benchdiff gate), the zero allocs/op are the contract.

import (
	"testing"

	"ivm/internal/obs"
	"ivm/internal/sweep"
)

// BenchmarkLatencyHist measures recording one observation into the
// lock-free histogram — the cost every work item pays under
// ivmsweep -latency and every HTTP request pays in ivmserved.
func BenchmarkLatencyHist(b *testing.B) {
	h := obs.NewLatencyHist()
	if n := testing.AllocsPerRun(100, func() { h.ObserveNS(4096) }); n != 0 {
		b.Fatalf("ObserveNS allocates %v per op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i%1_000_000) + 1)
	}
	b.StopTimer()
	if got := h.Count(); got < int64(b.N) {
		b.Fatalf("histogram lost observations: %d < %d", got, b.N)
	}
}

// benchSink lives at package scope so the compiler cannot prove it
// nil and delete the guard BenchmarkDetachedSpan exists to measure.
var benchSink sweep.SpanSink

// BenchmarkDetachedSpan measures the detached span path: the engine's
// per-phase cost when no TraceContext rides the request — a nil-sink
// check and nothing else, mirroring resolveSpans' guards.
func BenchmarkDetachedSpan(b *testing.B) {
	detached := func() {
		if benchSink != nil {
			s := benchSink.Start()
			benchSink.Span(sweep.SpanSimulate, s)
		}
	}
	if n := testing.AllocsPerRun(100, detached); n != 0 {
		b.Fatalf("detached span path allocates %v per op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detached()
	}
}
