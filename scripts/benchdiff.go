// Command benchdiff compares two BENCH_sweep.json files produced by
// scripts/bench.sh and gates on performance regressions: it flattens
// both files into dotted metric paths, prints a per-metric delta
// table, and exits nonzero when any ns_per_op metric in the new file
// is slower than the old one by more than -threshold percent.
// Non-timing metrics (hit rates, speedups, path percentages, conflict
// counts) are reported for context but never fail the gate — they
// track scientific quantities whose "good" direction depends on the
// change under test.
//
// Usage:
//
//	go run ./scripts/benchdiff.go [-threshold 10] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 10, "maximum allowed ns_per_op regression in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldM, err := loadMetrics(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newM, err := loadMetrics(flag.Arg(1))
	if err != nil {
		fail(err)
	}

	keys := make(map[string]bool, len(oldM)+len(newM))
	for k := range oldM {
		keys[k] = true
	}
	for k := range newM {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	w := 0
	for _, k := range sorted {
		if len(k) > w {
			w = len(k)
		}
	}
	var regressions []string
	fmt.Printf("%-*s %14s %14s %9s\n", w, "metric", "old", "new", "delta")
	for _, k := range sorted {
		ov, inOld := oldM[k]
		nv, inNew := newM[k]
		switch {
		case !inOld:
			fmt.Printf("%-*s %14s %14s %9s\n", w, k, "-", fmtVal(nv), "new")
		case !inNew:
			fmt.Printf("%-*s %14s %14s %9s\n", w, k, fmtVal(ov), "-", "gone")
		default:
			delta := "n/a"
			var pctChange float64
			if ov != 0 {
				pctChange = 100 * (nv - ov) / ov
				delta = fmt.Sprintf("%+.1f%%", pctChange)
			}
			mark := ""
			if timingMetric(k) && ov != 0 && pctChange > *threshold {
				mark = "  REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %s -> %s (%+.1f%% > %.1f%%)", k, fmtVal(ov), fmtVal(nv), pctChange, *threshold))
			}
			fmt.Printf("%-*s %14s %14s %9s%s\n", w, k, fmtVal(ov), fmtVal(nv), delta, mark)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d timing regression(s) beyond %.1f%%:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no ns_per_op regression beyond %.1f%%\n", *threshold)
}

// timingMetric reports whether the flattened path is a gated
// lower-is-better timing metric.
func timingMetric(key string) bool {
	return strings.HasSuffix(key, ".ns_per_op") || key == "ns_per_op"
}

// loadMetrics reads a BENCH_sweep.json file and flattens every
// numeric leaf into a dotted path ("pairs.parallel.ns_per_op").
// String leaves (benchtime, census descriptions) are skipped.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var root map[string]any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]float64)
	flatten("", root, out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no numeric metrics found", path)
	}
	return out, nil
}

func flatten(prefix string, node any, out map[string]float64) {
	switch v := node.(type) {
	case map[string]any:
		for k, child := range v {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, child, out)
		}
	case float64:
		out[prefix] = v
	}
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
