#!/usr/bin/env bash
# Full verification gauntlet: vet plus race-enabled tests. Pass package
# patterns to narrow the run (default: everything).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
	set -- ./...
fi

go vet "$@"
go test -race "$@"
