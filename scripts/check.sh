#!/usr/bin/env bash
# Full verification gauntlet: formatting, vet, documentation, and
# race-enabled tests.
# Pass package patterns to narrow the test run (default: everything).
# The observability package is always exercised under the race
# detector, even for narrowed runs, because its tracer counters are
# read across goroutines. The simulator and sweep packages are always
# exercised under the race detector too, including a short pass over
# the differential equivalence harness (docs/KERNEL.md) that pins the
# packed kernel and the analytic gate to the scalar oracle with the
# fast path forced both on and off.
#
# Golden files: the exporter tests in internal/obs compare against
# testdata/; after an intentional output change, regenerate with
#
#	go test ./internal/obs -run TestExporterGolden -update
#
# and review the testdata diff before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

if [ "$#" -eq 0 ]; then
	set -- ./...
fi

go vet "$@"

# docs step: every exported identifier in the audited packages must
# carry a doc comment, and every relative Markdown link must resolve.
go run ./internal/tools/docscheck \
	internal/sweep internal/modmath internal/memsys internal/stats \
	internal/obs internal/obs/profile internal/textplot

go test -race "$@"
go test -race ./internal/obs/...
go test -race ./internal/memsys ./internal/sweep

# Differential equivalence harness, short mode: every Differential*
# test pits the fast path against the reference — the packed kernel
# clock-by-clock against the scalar oracle, and sweeps with the
# analytic gate and packed kernel forced on against the same sweeps
# forced off — so this pass exercises the fast path both on and off.
go test -race -short -run Differential ./internal/memsys ./internal/sweep
