#!/usr/bin/env bash
# Full verification gauntlet: formatting, vet, documentation, and
# race-enabled tests.
# Pass package patterns to narrow the test run (default: everything).
# The observability package is always exercised under the race
# detector, even for narrowed runs, because its tracer counters are
# read across goroutines. The simulator and sweep packages are always
# exercised under the race detector too, including a short pass over
# the differential equivalence harness (docs/KERNEL.md) that pins the
# packed kernel and the analytic gate to the scalar oracle with the
# fast path forced both on and off. A single-iteration bench.sh run
# is then diffed against the committed BENCH_sweep.json by
# scripts/benchdiff.go, gating on catastrophic timing regressions.
# Live probes close the run:
# ivmsweep serving -metrics-addr on a loopback port is scraped over
# HTTP, pinning the Prometheus exposition format end to end
# (docs/OBSERVABILITY.md); ivmserved answers a known analytic pair
# with byte-pinned JSON plus a healthy /healthz (docs/SERVING.md); and
# a request tagged with a fixed X-Request-ID is followed end to end
# through the access log, the Chrome trace export and the
# request-duration histogram (docs/SERVING.md).
#
# Golden files: the exporter tests in internal/obs compare against
# testdata/; after an intentional output change, regenerate with
#
#	go test ./internal/obs -run TestExporterGolden -update
#
# and review the testdata diff before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

if [ "$#" -eq 0 ]; then
	set -- ./...
fi

# vet always covers the whole module, even for narrowed test runs —
# a narrow run must not let an unrelated package rot.
go vet ./...

# docs step: every exported identifier in the audited packages must
# carry a doc comment, and every relative Markdown link must resolve.
go run ./internal/tools/docscheck \
	internal/sweep internal/modmath internal/memsys internal/stats \
	internal/obs internal/obs/profile internal/textplot \
	internal/core internal/report internal/serve internal/cachestore

go test -race "$@"
go test -race ./internal/obs/...
go test -race ./internal/memsys ./internal/sweep

# Differential equivalence harness, short mode: every Differential*
# test pits the fast path against the reference — the packed kernel
# clock-by-clock against the scalar oracle, and sweeps with the
# analytic gate and packed kernel forced on against the same sweeps
# forced off — so this pass exercises the fast path both on and off.
go test -race -short -run Differential ./internal/memsys ./internal/sweep

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true' EXIT

# Benchmark regression gate: a single-iteration bench.sh run diffed
# against the committed BENCH_sweep.json. One iteration is noisy (the
# served single-query metric amortises server startup over one
# request), so the threshold only catches catastrophic (order of
# magnitude) timing regressions; run scripts/bench.sh with the default
# benchtime for a real comparison.
if [ -f BENCH_sweep.json ]; then
	BENCH_OUT="$tmp/BENCH_new.json" scripts/bench.sh 1x > "$tmp/bench.log" 2>&1 || {
		cat "$tmp/bench.log" >&2
		echo "check.sh: bench.sh failed" >&2
		exit 1
	}
	go run ./scripts/benchdiff.go -threshold 900 BENCH_sweep.json "$tmp/BENCH_new.json"
	echo "check.sh: benchdiff regression gate OK (threshold 900%, 1x smoke run)"
fi

# Live metrics probe: a short ivmsweep run serving -metrics-addr is
# scraped over HTTP. /healthz must answer "ok" and /metrics must carry
# the pinned Prometheus exposition lines below — the byte-exact format
# itself is golden-tested in internal/obs (prom_test.go); this step
# pins the served wire format end to end.
go build -o "$tmp/ivmsweep" ./cmd/ivmsweep
"$tmp/ivmsweep" -m 13 -nc 4 -metrics-addr 127.0.0.1:0 -metrics-linger 30s \
	> /dev/null 2> "$tmp/stderr" &
srv=$!
addr=""
for _ in $(seq 1 100); do
	addr="$(sed -n 's#^serving metrics on http://\([^/]*\)/metrics.*#\1#p' "$tmp/stderr")"
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "check.sh: metrics server did not announce an address" >&2
	exit 1
fi
health="$(curl -fsS "http://$addr/healthz")"
if [ "$health" != "ok" ]; then
	echo "check.sh: /healthz answered \"$health\", want \"ok\"" >&2
	exit 1
fi
# The sweep may still be running on the first scrape; retry until the
# provenance counters (recorded as placements resolve) are exposed.
metrics=""
for _ in $(seq 1 100); do
	metrics="$(curl -fsS "http://$addr/metrics")"
	printf '%s\n' "$metrics" | grep -q '^ivm_provenance_path_total{' && break
	sleep 0.1
done
ctype="$(curl -fsSI "http://$addr/metrics" | tr -d '\r' | sed -n 's/^[Cc]ontent-[Tt]ype: //p')"
if [ "$ctype" != "text/plain; version=0.0.4; charset=utf-8" ]; then
	echo "check.sh: /metrics Content-Type \"$ctype\" is not exposition format 0.0.4" >&2
	exit 1
fi
for line in \
	'# TYPE ivm_up gauge' \
	'ivm_up 1' \
	'# TYPE ivm_sweep_cache_hits_total counter' \
	'# TYPE ivm_sweep_analytic_hits_total counter' \
	'# TYPE ivm_provenance_path_total counter' \
	'# TYPE ivm_progress_items_done_total counter'; do
	if ! printf '%s\n' "$metrics" | grep -qFx "$line"; then
		echo "check.sh: /metrics missing pinned exposition line: $line" >&2
		exit 1
	fi
done
kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true
srv=""
echo "check.sh: live /metrics and /healthz probes OK (http://$addr)"

# Live serving probe: an ivmserved instance on a loopback port must
# answer the known unique-barrier pair (m=16 nc=4 strides 1,2; eq-29
# proves b_eff = 3/2) with the exact bytes below — the wire format is
# part of the API (docs/SERVING.md; internal/serve pins the same bytes
# in TestServeBandwidthPinned) — and /healthz must report a healthy
# store.
go build -o "$tmp/ivmserved" ./cmd/ivmserved
"$tmp/ivmserved" -addr 127.0.0.1:0 -cache-dir "$tmp/cache" \
	-access-log "$tmp/access.log" -slow-ms 0 \
	2> "$tmp/served-stderr" &
srv=$!
addr=""
for _ in $(seq 1 100); do
	addr="$(sed -n 's#^ivmserved listening on http://\(.*\)$#\1#p' "$tmp/served-stderr")"
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "check.sh: ivmserved did not announce an address" >&2
	exit 1
fi
body='{"m":16,"nc":4,"streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}'
want='{"family":"pair","b_eff":"3/2","num":3,"den":2,"path":"analytic","theorem":"eq-29"}'
got="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/bandwidth")"
if [ "$got" != "$want" ]; then
	echo "check.sh: /v1/bandwidth drifted:" >&2
	echo "  got:  $got" >&2
	echo "  want: $want" >&2
	exit 1
fi
health="$(curl -fsS "http://$addr/healthz")"
case "$health" in
'{"status":"ok","store":'*) ;;
*)
	echo "check.sh: ivmserved /healthz answered \"$health\", want status ok with store integrity" >&2
	exit 1
	;;
esac
if ! curl -fsS "http://$addr/metrics" | grep -q '^ivmserved_requests_total{endpoint="bandwidth"} 1$'; then
	echo "check.sh: ivmserved /metrics missing the bandwidth request counter" >&2
	exit 1
fi

# Live observability probe (docs/SERVING.md): a request tagged with a
# fixed X-Request-ID must echo the ID, surface in the structured
# access log and the exported Chrome trace, and land in the
# request-duration histogram with _count equal to the bandwidth
# requests served so far (the pinned request above plus this one).
rid="check-sh-trace-0001"
echoed="$(curl -fsS -D - -o "$tmp/rid-body" -X POST -H 'Content-Type: application/json' \
	-H "X-Request-ID: $rid" -d "$body" "http://$addr/v1/bandwidth" |
	tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii][Dd]: //p')"
if [ "$echoed" != "$rid" ]; then
	echo "check.sh: X-Request-ID not echoed: got \"$echoed\", want \"$rid\"" >&2
	exit 1
fi
if [ "$(cat "$tmp/rid-body")" != "$want" ]; then
	echo "check.sh: traced /v1/bandwidth answer drifted: $(cat "$tmp/rid-body")" >&2
	exit 1
fi
# The access log line is written after the handler returns, so the
# client can observe the response a beat before the line lands.
logged=""
for _ in $(seq 1 100); do
	if grep -q "$rid" "$tmp/access.log" 2>/dev/null; then
		logged=yes
		break
	fi
	sleep 0.1
done
if [ -z "$logged" ]; then
	echo "check.sh: request ID $rid never appeared in the access log" >&2
	cat "$tmp/access.log" >&2 || true
	exit 1
fi
if ! grep "$rid" "$tmp/access.log" | grep -q '"path":"analytic"'; then
	echo "check.sh: access log line for $rid lacks the analytic path attribution" >&2
	grep "$rid" "$tmp/access.log" >&2
	exit 1
fi
if ! curl -fsS "http://$addr/debug/requests.trace" | grep -q "$rid"; then
	echo "check.sh: request ID $rid not found in the exported Chrome trace" >&2
	exit 1
fi
metrics="$(curl -fsS "http://$addr/metrics")"
if ! printf '%s\n' "$metrics" | grep -q '^ivmserved_request_duration_seconds_bucket{endpoint="bandwidth",le="'; then
	echo "check.sh: /metrics missing request-duration histogram buckets" >&2
	exit 1
fi
if ! printf '%s\n' "$metrics" | grep -q '^ivmserved_request_duration_seconds_count{endpoint="bandwidth"} 2$'; then
	echo "check.sh: request-duration histogram _count != 2 bandwidth requests served" >&2
	printf '%s\n' "$metrics" | grep '^ivmserved_request_duration_seconds_count' >&2 || true
	exit 1
fi
if ! printf '%s\n' "$metrics" | grep -q '^ivmserved_request_seconds_total{endpoint="bandwidth"}'; then
	echo "check.sh: legacy ivmserved_request_seconds_total counter dropped" >&2
	exit 1
fi
if ! curl -fsS "http://$addr/statusz" | grep -q 'ivmserved status'; then
	echo "check.sh: /statusz did not render" >&2
	exit 1
fi
kill "$srv" 2>/dev/null || true
wait "$srv" 2>/dev/null || true
srv=""
echo "check.sh: live ivmserved probe OK, trace $rid followed through log, trace export and histogram (http://$addr)"
