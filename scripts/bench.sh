#!/usr/bin/env bash
# Sweep-engine benchmark harness: runs the sequential/parallel sweep
# benchmarks (pair, triple, section and generic N-stream grids, plus
# the translated triple census) with allocation stats and distils the
# result into a machine-readable BENCH_sweep.json next to the repo
# root. Cache hit rates are reported per family, keyed by the engine's
# family strings ("pair", "triple", "section", "stream4", ...); the
# legacy top-level pair/triple/section keys are preserved. The
# conflict_composition block records the Fig. 3 reference config's
# per-kind conflict counts from the phase-histogram benchmark, so the
# perf trajectory also tracks conflict composition. The
# analytic_fastpath and kernel blocks track the two-level speed path
# (docs/KERNEL.md): classifier-gate speedup on a theorem-dense census
# and bit-packed-kernel speedup on a simulation-heavy census, both
# against the scalar no-gate baseline with caching disabled. The
# provenance block records the result-attribution split (percent of
# placements answered analytically, from the cache, or by simulation)
# plus the share of stream4 orbits simulated once and never reused
# (docs/OBSERVABILITY.md). The served block tracks the ivmserved HTTP
# API (docs/SERVING.md): single-query req/s and batch specs/s, cold
# versus warm cache. The request_observability block tracks the
# per-item cost of the tracing seams (docs/OBSERVABILITY.md): one
# histogram observation and the detached span path, both contractually
# zero-alloc; their timings are context-only (sub-ns scale, too noisy
# for the benchdiff ns_per_op gate) so the keys avoid that suffix.
#
# Usage: scripts/bench.sh [count]
#   count  -benchtime iteration override, e.g. "10x" (default: 1s timed)
#
# Compare two runs (e.g. before/after a change) with the regression
# gate:
#   scripts/bench.sh && mv BENCH_sweep.json BENCH_old.json
#   ... apply change ...
#   scripts/bench.sh
#   go run ./scripts/benchdiff.go BENCH_old.json BENCH_sweep.json
# benchdiff prints a per-metric delta table and exits nonzero when any
# ns_per_op metric regresses by more than the -threshold percentage
# (default 10%).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="${BENCH_OUT:-BENCH_sweep.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSweep(Sequential|Parallel|TriplesSequential|TriplesParallel|SectionsSequential|SectionsParallel|TripleCensusTranslated|NStreamParallel|AnalyticFastPath|KernelPacked|Policies|Provenance)$|BenchmarkPhaseHistogram$|BenchmarkServed(Single|Batch)$|BenchmarkLatencyHist$|BenchmarkDetachedSpan$' \
	-benchmem -benchtime "$benchtime" . | tee "$raw"

# Benchmark lines look like:
#   BenchmarkSweepSequential-8         3  401ms/op  12 B/op  1 allocs/op  930 pairs
#   BenchmarkSweepParallel-8           9  120ms/op  98.2 cache_hit_%  3.3 speedup_vs_seq ...
#   BenchmarkSweepTriplesParallel-8    2  900ms/op  69.5 triple_cache_hit_%  2.1 speedup_vs_seq ...
#   BenchmarkSweepSectionsParallel-8   5  150ms/op  44.0 section_cache_hit_%  1.8 speedup_vs_seq ...
#   BenchmarkSweepTripleCensusTranslated-8  1  150ms/op  0 census_cache_hit_%  100.0 translated_census_hit_%
#   BenchmarkSweepNStreamParallel-8    1  26ms/op  17.7 stream4_cache_hit_%
awk -v benchtime="$benchtime" '
function metric(name,   i) {
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == name) return $i
	}
	return "null"
}
/^BenchmarkSweepSequential/ {
	seq_ns = metric("ns/op"); seq_allocs = metric("allocs/op"); seq_pairs = metric("pairs")
}
/^BenchmarkSweepParallel/ {
	par_ns = metric("ns/op"); par_allocs = metric("allocs/op")
	hit = metric("cache_hit_%"); speedup = metric("speedup_vs_seq")
}
/^BenchmarkSweepTriplesSequential/ {
	t_seq_ns = metric("ns/op"); t_placements = metric("placements")
}
/^BenchmarkSweepTriplesParallel/ {
	t_par_ns = metric("ns/op")
	t_hit = metric("triple_cache_hit_%"); t_speedup = metric("speedup_vs_seq")
}
/^BenchmarkSweepSectionsSequential/ {
	s_seq_ns = metric("ns/op"); s_pairs = metric("pairs")
}
/^BenchmarkSweepSectionsParallel/ {
	s_par_ns = metric("ns/op")
	s_hit = metric("section_cache_hit_%"); s_speedup = metric("speedup_vs_seq")
}
/^BenchmarkSweepTripleCensusTranslated/ {
	c_base = metric("census_cache_hit_%"); c_translated = metric("translated_census_hit_%")
}
/^BenchmarkSweepNStreamParallel/ {
	ns_hit = metric("stream4_cache_hit_%")
}
/^BenchmarkSweepAnalyticFastPath/ {
	a_ns = metric("ns/op")
	a_hit = metric("analytic_hit_%"); a_speedup = metric("speedup_vs_scalar")
}
/^BenchmarkSweepKernelPacked/ {
	k_ns = metric("ns/op"); k_cycles = metric("cycles")
	k_speedup = metric("speedup_vs_scalar")
}
/^BenchmarkSweepPolicies/ {
	po_ns = metric("ns/op")
	po_hit = metric("policy_cache_hit_%"); po_sps = metric("policy_specs_per_s")
}
/^BenchmarkSweepProvenance/ {
	pr_ns = metric("ns/op")
	pr_analytic = metric("analytic_path_%"); pr_cache = metric("cache_path_%")
	pr_sim = metric("sim_path_%"); pr_singleton = metric("stream4_singleton_orbit_%")
}
/^BenchmarkServedSingle/ {
	sv_ns = metric("ns/op"); sv_rps = metric("req_per_s")
}
/^BenchmarkServedBatch/ {
	sb_cold = metric("cold_specs_per_s"); sb_warm = metric("warm_specs_per_s")
	sb_hit = metric("warm_cache_hit_%")
}
/^BenchmarkLatencyHist/ {
	lh_ns = metric("ns/op"); lh_allocs = metric("allocs/op")
}
/^BenchmarkDetachedSpan/ {
	ds_ns = metric("ns/op"); ds_allocs = metric("allocs/op")
}
/^BenchmarkPhaseHistogram/ {
	ph_grants = metric("grants"); ph_bank = metric("bank_conflicts")
	ph_sim = metric("simultaneous_conflicts"); ph_sec = metric("section_conflicts")
	ph_cycle = metric("cycle_clocks")
}
END {
	if (seq_ns == "" || par_ns == "" || t_par_ns == "" || s_par_ns == "" || c_base == "" || ns_hit == "" || ph_grants == "" || a_ns == "" || k_ns == "" || po_ns == "" || pr_ns == "" || sv_ns == "" || sb_cold == "" || lh_ns == "" || ds_ns == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"; exit 1
	}
	printf "{\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"pairs\": {\n"
	printf "    \"sequential\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"pairs\": %s},\n", seq_ns, seq_allocs, seq_pairs
	printf "    \"parallel\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", par_ns, par_allocs
	printf "    \"cache_hit_rate_percent\": %s,\n", hit
	printf "    \"speedup_vs_sequential\": %s\n", speedup
	printf "  },\n"
	printf "  \"triples\": {\n"
	printf "    \"sequential\": {\"ns_per_op\": %s, \"placements\": %s},\n", t_seq_ns, t_placements
	printf "    \"parallel\": {\"ns_per_op\": %s},\n", t_par_ns
	printf "    \"cache_hit_rate_percent\": %s,\n", t_hit
	printf "    \"speedup_vs_sequential\": %s\n", t_speedup
	printf "  },\n"
	printf "  \"sections\": {\n"
	printf "    \"sequential\": {\"ns_per_op\": %s, \"pairs\": %s},\n", s_seq_ns, s_pairs
	printf "    \"parallel\": {\"ns_per_op\": %s},\n", s_par_ns
	printf "    \"cache_hit_rate_percent\": %s,\n", s_hit
	printf "    \"speedup_vs_sequential\": %s\n", s_speedup
	printf "  },\n"
	printf "  \"triple_census\": {\n"
	printf "    \"cache_hit_rate_percent\": %s,\n", c_base
	printf "    \"translated_cache_hit_rate_percent\": %s,\n", c_translated
	printf "    \"translation_orbit_hit_delta_percent\": %s\n", c_translated - c_base
	printf "  },\n"
	printf "  \"family_cache_hit_rate_percent\": {\n"
	printf "    \"pair\": %s,\n", hit
	printf "    \"triple\": %s,\n", t_hit
	printf "    \"section\": %s,\n", s_hit
	printf "    \"stream4\": %s\n", ns_hit
	printf "  },\n"
	printf "  \"analytic_fastpath\": {\n"
	printf "    \"census\": \"theorem-dense grid m=32 nc=2, cache disabled\",\n"
	printf "    \"ns_per_op\": %s,\n", a_ns
	printf "    \"analytic_hit_rate_percent\": %s,\n", a_hit
	printf "    \"speedup_vs_scalar\": %s\n", a_speedup
	printf "  },\n"
	printf "  \"kernel\": {\n"
	printf "    \"census\": \"simulation-heavy grids m=13,16 nc=4, gate off, cache disabled\",\n"
	printf "    \"ns_per_op\": %s,\n", k_ns
	printf "    \"cycles_found\": %s,\n", k_cycles
	printf "    \"speedup_vs_scalar\": %s\n", k_speedup
	printf "  },\n"
	printf "  \"policies\": {\n"
	printf "    \"census\": \"pair grid m=8 nc=2 under cyclic priority (family pair-cyc, gate declines)\",\n"
	printf "    \"ns_per_op\": %s,\n", po_ns
	printf "    \"cache_hit_rate_percent\": %s,\n", po_hit
	printf "    \"specs_per_s\": %s\n", po_sps
	printf "  },\n"
	printf "  \"provenance\": {\n"
	printf "    \"census\": \"cross-validation pair grids + stream4, recorder attached\",\n"
	printf "    \"ns_per_op\": %s,\n", pr_ns
	printf "    \"path_percent\": {\n"
	printf "      \"analytic\": %s,\n", pr_analytic
	printf "      \"cache\": %s,\n", pr_cache
	printf "      \"sim\": %s\n", pr_sim
	printf "    },\n"
	printf "    \"stream4_singleton_orbit_percent\": %s\n", pr_singleton
	printf "  },\n"
	printf "  \"served\": {\n"
	printf "    \"census\": \"HTTP API over httptest, triple census m=13 nc=4\",\n"
	printf "    \"single\": {\"ns_per_op\": %s, \"req_per_s\": %s},\n", sv_ns, sv_rps
	printf "    \"batch\": {\n"
	printf "      \"cold_specs_per_s\": %s,\n", sb_cold
	printf "      \"warm_specs_per_s\": %s,\n", sb_warm
	printf "      \"warm_cache_hit_rate_percent\": %s\n", sb_hit
	printf "    }\n"
	printf "  },\n"
	printf "  \"request_observability\": {\n"
	printf "    \"census\": \"hot-path instrumentation: one histogram observation, one detached span; timings context-only\",\n"
	printf "    \"latency_hist_observe\": {\"observe_ns\": %s, \"allocs_per_op\": %s},\n", lh_ns, lh_allocs
	printf "    \"detached_span\": {\"span_ns\": %s, \"allocs_per_op\": %s}\n", ds_ns, ds_allocs
	printf "  },\n"
	printf "  \"conflict_composition\": {\n"
	printf "    \"config\": \"fig3 barrier m=13 nc=6 d1=1 d2=6\",\n"
	printf "    \"cycle_clocks\": %s,\n", ph_cycle
	printf "    \"grants\": %s,\n", ph_grants
	printf "    \"bank_conflicts\": %s,\n", ph_bank
	printf "    \"simultaneous_conflicts\": %s,\n", ph_sim
	printf "    \"section_conflicts\": %s\n", ph_sec
	printf "  },\n"
	printf "  \"cache_hit_rate_percent\": %s,\n", hit
	printf "  \"speedup_vs_sequential\": %s\n", speedup
	printf "}\n"
}' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
