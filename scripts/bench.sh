#!/usr/bin/env bash
# Sweep-engine benchmark harness: runs the sequential/parallel sweep
# benchmarks with allocation stats and distils the result into a
# machine-readable BENCH_sweep.json next to the repo root.
#
# Usage: scripts/bench.sh [count]
#   count  -benchtime iteration override, e.g. "10x" (default: 1s timed)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_sweep.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSweep(Sequential|Parallel)$' \
	-benchmem -benchtime "$benchtime" . | tee "$raw"

# Benchmark lines look like:
#   BenchmarkSweepSequential-8  3  401ms/op  12 B/op  1 allocs/op  930 pairs
#   BenchmarkSweepParallel-8    9  120ms/op  98.2 cache_hit_%  3.3 speedup_vs_seq ...
awk -v benchtime="$benchtime" '
function metric(name,   i) {
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == name) return $i
	}
	return "null"
}
/^BenchmarkSweepSequential/ {
	seq_ns = metric("ns/op"); seq_allocs = metric("allocs/op"); seq_pairs = metric("pairs")
}
/^BenchmarkSweepParallel/ {
	par_ns = metric("ns/op"); par_allocs = metric("allocs/op")
	hit = metric("cache_hit_%"); speedup = metric("speedup_vs_seq")
}
END {
	if (seq_ns == "" || par_ns == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"; exit 1
	}
	printf "{\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"sequential\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"pairs\": %s},\n", seq_ns, seq_allocs, seq_pairs
	printf "  \"parallel\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", par_ns, par_allocs
	printf "  \"cache_hit_rate_percent\": %s,\n", hit
	printf "  \"speedup_vs_sequential\": %s\n", speedup
	printf "}\n"
}' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
