package ivm

// Serving-layer benchmarks: request throughput of the ivmserved HTTP
// API over a real (in-process) HTTP server, single queries versus
// amortised batches and cold versus warm caches. scripts/bench.sh
// distils these into the "served" block of BENCH_sweep.json.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ivm/internal/serve"
)

// servedSpecs builds a census of fixed-placement triple specs on a
// simulation-heavy prime-bank memory: several stride triples, each
// over a spread of relative placements, so a cold pass simulates many
// distinct orbits and a warm pass answers from the cache.
func servedSpecs(n int) []serve.SpecJSON {
	strides := [][3]int{{1, 2, 6}, {1, 3, 5}, {2, 5, 6}, {1, 4, 6}}
	specs := make([]serve.SpecJSON, 0, n)
	for i := 0; len(specs) < n; i++ {
		d := strides[i%len(strides)]
		b := [3]int{0, (i / len(strides)) % 13, (i / (13 * len(strides))) % 13}
		specs = append(specs, serve.SpecJSON{
			M: 13, NC: 4,
			Streams: []serve.StreamJSON{
				{D: d[0], B: b[0], CPU: 0},
				{D: d[1], B: b[1], CPU: 1},
				{D: d[2], B: b[2], CPU: 2},
			},
		})
	}
	return specs
}

// postServed posts body to url and decodes the batch response.
func postServed(b *testing.B, url string, body []byte) serve.BatchResponse {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("batch status %d", resp.StatusCode)
	}
	return br
}

// BenchmarkServedSingle measures single-query throughput of POST
// /v1/bandwidth: one spec per request, cycling a census so the steady
// state mixes cache hits with the occasional simulation.
func BenchmarkServedSingle(b *testing.B) {
	srv, err := serve.New(serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	specs := servedSpecs(256)
	bodies := make([][]byte, len(specs))
	for i, s := range specs {
		if bodies[i], err = json.Marshal(s); err != nil {
			b.Fatal(err)
		}
	}
	// One untimed warmup request absorbs the one-time costs (connection
	// setup, the first cold simulation) that are not the steady state
	// this benchmark documents — at tiny b.N (the check.sh 1x smoke)
	// they would otherwise dominate the measurement.
	if resp, err := http.Post(ts.URL+"/v1/bandwidth", "application/json", bytes.NewReader(bodies[0])); err != nil {
		b.Fatal(err)
	} else {
		resp.Body.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/bandwidth", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req_per_s")
}

// BenchmarkServedBatch measures amortised batch throughput of POST
// /v1/batch, cold (fresh server, every orbit simulated) against warm
// (same batch re-issued, answered from the cache), in specs resolved
// per second.
func BenchmarkServedBatch(b *testing.B) {
	specs := servedSpecs(512)
	body, err := json.Marshal(serve.BatchRequest{Specs: specs})
	if err != nil {
		b.Fatal(err)
	}
	var cold, warm time.Duration
	var warmHits, warmTotal int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := serve.New(serve.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t0 := time.Now()
		postServed(b, ts.URL+"/v1/batch", body)
		cold += time.Since(t0)
		t0 = time.Now()
		wr := postServed(b, ts.URL+"/v1/batch", body)
		warm += time.Since(t0)
		warmHits += wr.Paths["cache"]
		warmTotal += len(wr.Results)
		ts.Close()
	}
	n := float64(len(specs)) * float64(b.N)
	b.ReportMetric(n/cold.Seconds(), "cold_specs_per_s")
	b.ReportMetric(n/warm.Seconds(), "warm_specs_per_s")
	b.ReportMetric(100*float64(warmHits)/float64(warmTotal), "warm_cache_hit_%")
}
