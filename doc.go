// Package ivm reproduces Oed & Lange, "On the Effective Bandwidth of
// Interleaved Memories in Vector Processor Systems", IEEE Transactions
// on Computers C-34(10), 1985.
//
// The repository contains:
//
//   - internal/core — the paper's analytic model (Theorems 1–9,
//     Eqs. 29–32) and a conflict-regime classifier;
//   - internal/memsys — a cycle-accurate simulator of the banked,
//     sectioned memory system with the paper's conflict taxonomy;
//   - internal/machine, internal/vector, internal/workload,
//     internal/xmp — a Cray X-MP-flavoured vector CPU model and the
//     Section IV triad experiment;
//   - internal/figures, internal/trace — executable reproductions of
//     Figures 2–9 with paper-style timeline rendering;
//   - internal/skew — the conclusion's skewing-scheme remedy;
//   - internal/sweep — the analytic-vs-simulated cross-validation
//     harness.
//
// The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
// record and DESIGN.md for the per-experiment index.
package ivm
