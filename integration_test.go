package ivm

// End-to-end regression pins: the exact simulator outputs recorded in
// EXPERIMENTS.md. The simulation is fully deterministic, so these
// values are stable; an intentional change to the machine model or the
// arbitration semantics must update them (and EXPERIMENTS.md) together.

import (
	"testing"

	"ivm/internal/figures"
	"ivm/internal/machine"
	"ivm/internal/rat"
	"ivm/internal/xmp"
)

func TestPinnedFigureBandwidths(t *testing.T) {
	want := map[string]rat.Rational{
		"2":  rat.New(2, 1),
		"3":  rat.New(7, 6),
		"4":  rat.New(1, 1),
		"5":  rat.New(4, 3),
		"6":  rat.New(7, 5),
		"7":  rat.New(2, 1),
		"8a": rat.New(3, 2),
		"8b": rat.New(2, 1),
		"9":  rat.New(2, 1),
	}
	for _, f := range figures.All() {
		bw, _, err := f.SteadyBandwidth()
		if err != nil {
			t.Fatal(err)
		}
		if !bw.Equal(want[f.ID]) {
			t.Errorf("Fig. %s: b_eff = %s, pinned %s", f.ID, bw, want[f.ID])
		}
	}
}

// The triad series at n = 512, busy environment — the numbers behind
// the Fig. 10 shape discussion (scaled EXPERIMENTS.md table).
func TestPinnedTriadSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full triad sweep")
	}
	wantClocks := []int64{
		1263, 2081, 2438, 1865, 1703, 1317, 1783, 2615,
		1541, 1658, 1145, 1579, 2067, 2114, 1934, 5172,
	}
	res := xmp.TriadSweep(16, 512, true, machine.DefaultConfig())
	for i, r := range res {
		if r.Clocks != wantClocks[i] {
			t.Errorf("INC=%d: clocks = %d, pinned %d", r.INC, r.Clocks, wantClocks[i])
		}
	}
}

// The qualitative findings of Section IV at full length (n = 1024).
func TestSectionIVFindingsFullLength(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length triad sweep")
	}
	res := xmp.TriadSweep(16, 1024, true, machine.DefaultConfig())
	at := func(inc int) int64 { return res[inc-1].Clocks }
	// Best three: 1, 6, 11.
	for _, best := range []int{1, 6, 11} {
		for inc := 1; inc <= 16; inc++ {
			if inc == 1 || inc == 6 || inc == 11 {
				continue
			}
			if at(best) >= at(inc) {
				t.Errorf("INC=%d (%d) should beat INC=%d (%d)", best, at(best), inc, at(inc))
			}
		}
	}
	// Barrier penalties and ordering.
	if !(at(3) > at(2) && at(2) > at(1)) {
		t.Errorf("INC ordering: %d, %d, %d", at(1), at(2), at(3))
	}
	// INC=2 penalty in the +40..+110% band around the paper's ~+50%,
	// INC=3 in +60..+150% around ~+100%.
	pct := func(inc int) float64 { return float64(at(inc)-at(1)) / float64(at(1)) * 100 }
	if p := pct(2); p < 40 || p > 110 {
		t.Errorf("INC=2 penalty %.0f%%, expected barrier-scale slowdown", p)
	}
	if p := pct(3); p < 60 || p > 150 {
		t.Errorf("INC=3 penalty %.0f%%, expected barrier-scale slowdown", p)
	}
}
