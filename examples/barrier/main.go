// Barrier: construct a barrier-situation (Theorems 4-7), visualise it
// in the paper's timeline style, and check Eq. 29's bandwidth — then
// show the inverted barrier that a different start bank produces.
//
//	go run ./examples/barrier
package main

import (
	"fmt"

	"ivm/internal/core"
	"ivm/internal/memsys"
	"ivm/internal/trace"
)

func run(m, nc, b1, d1, b2, d2 int) {
	sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	rec := trace.Attach(sys, 0, 36)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(int64(b1), int64(d1)))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	sys.Run(36)
	fmt.Print(rec.Render())

	sys2 := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	sys2.AddPort(0, "1", memsys.NewInfiniteStrided(int64(b1), int64(d1)))
	sys2.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	cyc, err := sys2.FindCycle(1 << 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("b_eff = %s; per-stream %s and %s; delays %d/%d\n\n",
		cyc.EffectiveBandwidth(), cyc.PortBandwidth(0), cyc.PortBandwidth(1),
		cyc.Conflicts[0].Delays(), cyc.Conflicts[1].Delays())
}

func main() {
	// Fig. 5: m=13, nc=4, d1=1, d2=3, b2=7 — stream 2 barriered.
	const m, nc, d1, d2 = 13, 4, 1, 3
	a := core.Analyze(m, nc, d1, d2)
	fmt.Println("analysis:", a)
	fmt.Printf("Eq. 29 predicts b_eff = %s when the barrier is entered\n\n", core.BarrierBandwidth(d1, d2))

	fmt.Println("barrier-situation (b2 = 7, Fig. 5):")
	run(m, nc, 0, d1, 7, d2)

	fmt.Println("inverted barrier (b2 = 1, Fig. 6): stream 2 now delays stream 1:")
	run(m, nc, 0, d1, 1, d2)
}
