// Triad: the paper's Section IV experiment in miniature — run the
// Fortran triad A(I) = B(I) + C(I)*D(I) on the simulated 2-CPU,
// 16-bank Cray X-MP for a few strides, with and without the second CPU
// saturating memory, and plot the execution times.
//
//	go run ./examples/triad
package main

import (
	"fmt"

	"ivm/internal/machine"
	"ivm/internal/textplot"
	"ivm/internal/xmp"
)

func main() {
	cfg := machine.DefaultConfig()
	const n = 1024

	busy := xmp.TriadSweep(16, n, true, cfg)
	quiet := xmp.TriadSweep(16, n, false, cfg)

	var labels []string
	var tBusy, tQuiet []float64
	for i := range busy {
		labels = append(labels, fmt.Sprintf("INC=%d", busy[i].INC))
		tBusy = append(tBusy, busy[i].Micros)
		tQuiet = append(tQuiet, quiet[i].Micros)
	}

	fmt.Print(textplot.Bars(textplot.Series{
		Title: "triad execution time, other CPU saturating at d=1 (Fig. 10a)", Labels: labels, Values: tBusy, Unit: "us",
	}, 40))
	fmt.Println()
	fmt.Print(textplot.Bars(textplot.Series{
		Title: "triad execution time, other CPU off (Fig. 10b)", Labels: labels, Values: tQuiet, Unit: "us",
	}, 40))

	fmt.Println("\nconflicts encountered by the triad (busy environment):")
	tbl := &textplot.Table{Header: []string{"INC", "bank (10c)", "section (10d)", "simultaneous (10e)"}}
	for _, r := range busy {
		tbl.Add(r.INC, r.Bank, r.Section, r.Simultaneous)
	}
	fmt.Print(tbl.String())
}
