// Quickstart: ask the analytic model about a pair of vector access
// streams, confirm its verdict with the cycle-accurate simulator, and
// render the paper-style timeline — all through the public facade
// (import "ivm").
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ivm"
)

func main() {
	// A 16-bank memory with a 4-clock bank cycle time — the Cray X-MP
	// of the paper — and two streams with distances 1 and 2 (a Fortran
	// unit-stride loop racing a stride-2 loop on the other CPU).
	const m, nc = 16, 4
	const d1, d2 = 1, 2

	a := ivm.Analyze(m, nc, d1, d2)
	fmt.Println("analytic model:", a)
	fmt.Println("  ", a.Note)

	// Simulate the same pair from a handful of relative starts; the
	// unique barrier shows up at every one of them.
	cfg := ivm.MemConfig{Banks: m, BankBusy: nc, CPUs: 2}
	for _, b2 := range []int{0, 3, 7} {
		bw, err := ivm.SteadyBandwidth(cfg, 1<<20,
			ivm.StreamSpec{Start: 0, Distance: d1, CPU: 0},
			ivm.StreamSpec{Start: b2, Distance: d2, CPU: 1},
		)
		if err != nil {
			panic(err)
		}
		fmt.Printf("simulated b2=%d: b_eff = %s\n", b2, bw)
	}

	// Watch the barrier build up, in the paper's notation.
	fmt.Println()
	fmt.Print(ivm.Timeline(cfg, 40,
		ivm.StreamSpec{Start: 0, Distance: d1, CPU: 0},
		ivm.StreamSpec{Start: 0, Distance: d2, CPU: 1},
	))

	// Single-stream sanity: Theorem 1 and the r/n_c law.
	fmt.Println()
	for _, d := range []int{1, 4, 8, 16} {
		fmt.Printf("single stream d=%d: r=%d, b_eff = %s\n",
			d, ivm.ReturnNumber(m, d), ivm.SingleStreamBandwidth(m, nc, d))
	}
}
