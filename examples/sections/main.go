// Sections: the access-path bottleneck (s < m). Reproduces the linked
// conflict of Cheung & Smith (Fig. 8a) and its two remedies — a cyclic
// priority rule (Fig. 8b) and consecutive bank-to-section assignment
// (Fig. 9) — plus Theorem 9's conflict-free start construction
// (Fig. 7).
//
//	go run ./examples/sections
package main

import (
	"fmt"

	"ivm/internal/core"
	"ivm/internal/figures"
)

func show(f figures.Figure) {
	fmt.Printf("--- Fig. %s: %s\n", f.ID, f.Title)
	fmt.Print(f.Timeline(34))
	bw, cyc, err := f.SteadyBandwidth()
	if err != nil {
		panic(err)
	}
	fmt.Printf("steady b_eff = %s (cycle %d)", bw, cyc.Length)
	if f.WantBandwidth.Num != 0 {
		fmt.Printf("   [paper: %s]", f.WantBandwidth)
	}
	fmt.Printf("\n%s\n\n", f.Outcome)
}

func main() {
	show(figures.Fig8a())
	show(figures.Fig8b())
	show(figures.Fig9())
	show(figures.Fig7())

	// Theorem 9 / Eq. 32 beyond Fig. 7: search start offsets for a few
	// section systems.
	fmt.Println("Theorem 9 / Eq. 32 conflict-free start construction:")
	for _, c := range []struct{ m, s, nc, d1, d2 int }{
		{12, 2, 2, 1, 1},
		{16, 4, 4, 1, 9},
		{12, 3, 2, 1, 5},
	} {
		ok, b2 := core.SectionConflictFree(c.m, c.s, c.nc, c.d1, c.d2)
		fmt.Printf("  m=%2d s=%d nc=%d d1=%d d2=%d: conflict-free start exists=%v (offset %d)\n",
			c.m, c.s, c.nc, c.d1, c.d2, ok, b2)
	}
}
