// Served: a client of the ivmserved HTTP API (docs/SERVING.md). It
// batches 1000 fixed-placement triple specs into one POST /v1/batch
// request, prints the answer-path split — how many specs were proved,
// answered from the canonical-orbit cache, or simulated — and
// re-issues the same batch to show the warm split (everything
// cached).
//
//	go run ./examples/served                      # self-hosted in-process server
//	go run ./examples/served -addr localhost:8080 # against a running ivmserved
//	go run ./examples/served -n 5000
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"ivm/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "ivmserved address (host:port); empty starts an in-process server")
	n := flag.Int("n", 1000, "specs per batch")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		srv, err := serve.New(serve.Options{})
		if err != nil {
			fail(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Println("no -addr given: serving in-process at", base)
	}

	// A census of triple placements on the 13-bank memory: four stride
	// triples, each from many relative starts. Starts that differ by a
	// translation share a canonical orbit, so the engine simulates far
	// fewer orbits than there are specs — the path split below shows
	// exactly how many.
	strides := [][3]int{{1, 2, 6}, {1, 3, 5}, {2, 5, 6}, {1, 4, 6}}
	req := serve.BatchRequest{Specs: make([]serve.SpecJSON, 0, *n)}
	for i := 0; len(req.Specs) < *n; i++ {
		d := strides[i%len(strides)]
		b1, b2 := (i/len(strides))%13, (i/(13*len(strides)))%13
		req.Specs = append(req.Specs, serve.SpecJSON{
			M: 13, NC: 4,
			Streams: []serve.StreamJSON{
				{D: d[0], B: 0, CPU: 0},
				{D: d[1], B: b1, CPU: 1},
				{D: d[2], B: b2, CPU: 2},
			},
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		fail(err)
	}

	cold := post(base+"/v1/batch", body)
	warm := post(base+"/v1/batch", body)

	fmt.Printf("\n%d specs per batch against %s\n", *n, base)
	show("cold batch", cold)
	show("warm batch", warm)
	fmt.Println("\nEvery b_eff is exact; re-run with -addr against an ivmserved")
	fmt.Println("started with -cache-dir and the first batch is warm too.")
}

// post sends one batch and times it.
func post(url string, body []byte) timed {
	t0 := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("batch status %d", resp.StatusCode))
	}
	return timed{br, time.Since(t0)}
}

// timed is one batch response with its round-trip time.
type timed struct {
	serve.BatchResponse
	took time.Duration
}

// show prints one batch's path split and throughput.
func show(label string, t timed) {
	paths := make([]string, 0, len(t.Paths))
	for p := range t.Paths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	fmt.Printf("  %-10s %8.1f specs/s  ", label,
		float64(len(t.Results))/t.took.Seconds())
	for i, p := range paths {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", p, t.Paths[p])
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "served:", err)
	os.Exit(1)
}
