// Skewing: the remedy the paper's conclusion recommends for hostile
// strides. Compare plain interleaving against linear and XOR skewing
// schemes over the strides a Fortran programmer actually produces
// (unit stride, matrix rows, power-of-two leading dimensions).
//
//	go run ./examples/skewing
package main

import (
	"fmt"

	"ivm/internal/memsys"
	"ivm/internal/skew"
	"ivm/internal/textplot"
	"ivm/internal/vector"
)

func main() {
	const m, nc = 16, 4
	xorScheme, err := skew.NewXOR(m, 1)
	if err != nil {
		panic(err)
	}
	mappers := []struct {
		name string
		mp   memsys.BankMapper
	}{
		{"plain  j=i mod m", skew.Identity{M: m}},
		{"linear skew S=1", skew.Linear{M: m, S: 1}},
		{"xor skew", xorScheme},
	}

	// The conclusion's motivating case: a 64x64 Fortran matrix accessed
	// by rows has stride 64 — distance 0 on 16 banks. "A safe method is
	// to choose the dimension of arrays so that they are relatively
	// prime to the number of banks."
	bad := &vector.Array{Name: "BAD(64,64)", Dims: []int{64, 64}}
	good := &vector.Array{Name: "GOOD(65,64)", Dims: []int{65, 64}}
	fmt.Printf("row-access distance, 16 banks: %s -> %d, %s -> %d\n\n",
		bad.Name, vector.Distance(1, bad, 1, m), good.Name, vector.Distance(1, good, 1, m))

	strides := []int64{1, 2, 4, 8, 16, 32, 64, 65}
	tbl := &textplot.Table{Header: []string{"stride", mappers[0].name, mappers[1].name, mappers[2].name}}
	for _, st := range strides {
		row := []interface{}{st}
		for _, mp := range mappers {
			bw := skew.StrideBandwidth(mp.mp, nc, st, 4096)
			row = append(row, fmt.Sprintf("%.3f", bw))
		}
		tbl.Add(row...)
	}
	fmt.Println("single-stream effective bandwidth by word stride:")
	fmt.Print(tbl.String())
	fmt.Println("\nlinear skewing repairs every power-of-two stride up to m; the")
	fmt.Println("matrix-row case (stride 64) runs at 1/n_c unskewed and at full")
	fmt.Println("speed skewed — without changing the Fortran declaration.")
}
