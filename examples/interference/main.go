// Interference: both CPUs run the triad concurrently at different
// strides — the multi-vector-processor scenario the paper's conclusion
// warns about ("all efforts may be in vain in case of multivector-
// processor systems like the Cray X-MP where barrier-situations may
// easily be encountered"). The matrix of CPU-0 execution times shows
// which stride pairings coexist and which barrier each other.
//
//	go run ./examples/interference
package main

import (
	"fmt"

	"ivm/internal/explain"
	"ivm/internal/machine"
	"ivm/internal/xmp"
)

func main() {
	cfg := machine.DefaultConfig()
	const maxInc, n = 8, 256

	fmt.Printf("triad-vs-triad interference, CPU-0 clocks (n=%d):\n\n", n)
	m := xmp.InterferenceMatrix(maxInc, n, cfg)
	fmt.Print(xmp.RenderInterference(m))

	fmt.Println("\npairwise analytic verdicts for the first row (CPU-0 at INC=1):")
	for incB := 1; incB <= maxInc; incB++ {
		r := explain.Analyze(16, 4,
			explain.Workload{Name: "cpu0", Distances: []int{1}},
			explain.Workload{Name: "cpu1", Distances: []int{incB % 16}},
		)
		v := r.Verdicts[0]
		role := ""
		if v.HasRole {
			if v.WorkWins {
				role = " — cpu0 wins the barrier"
			} else {
				role = " — cpu0 is delayed"
			}
		}
		fmt.Printf("  vs INC=%d: %s%s\n", incB, v.Analysis.Regime, role)
	}
}
