package sweep

// Fixed-placement resolution: the query path behind internal/serve.
// Where the sweep entry points fold thousands of placements into
// tables, Resolve answers ONE placement — b_eff plus the attribution
// the server returns per response (which path answered, under which
// theorem, via which canonical orbit). The resolution route is
// worker.resolve, the same code the sweeps run, so served answers are
// byte-identical to ivmsweep's.

import (
	"context"
	"fmt"

	"ivm/internal/rat"
)

// Resolution is the engine's answer to one fixed-placement query:
// the effective bandwidth and the provenance of the answer.
type Resolution struct {
	// BW is the placement's effective bandwidth in lowest terms.
	BW rat.Rational
	// Family is the spec's configuration family (ConfigSpec.Family).
	Family string
	// Path is the route that produced the answer: PathAnalytic,
	// PathCache, PathSimScalar or PathSimPacked.
	Path Path
	// Theorem is the gate's theorem/equation identifier
	// ("theorem-2", "theorem-3", "eq-29"); set only on analytic
	// answers.
	Theorem string
	// Canonical is the canonical configuration vector
	// (d_1..d_N, b_1..b_N) that keyed the cache — the placement's
	// orbit representative. Empty on analytic answers (the gate never
	// canonicalises) and when caching is disabled.
	Canonical []int
	// CycleLength and Clocks are the simulated steady state's period
	// and the lead+cycle clocks stepped; set only on simulation.
	CycleLength int64
	Clocks      int64
}

// validateResolve checks one spec for fixed-placement resolution: on
// top of ConfigSpec.Validate, every stream must hold a fixed start
// (no swept streams) with D and B already reduced into [0, m) — the
// range the grid sweeps use, which keeps canonical keys unique (a
// spec at d and one at d+m are the same stream but would key apart).
func validateResolve(spec ConfigSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for j, st := range spec.Streams {
		if st.Sweep {
			return fmt.Errorf("spec: stream %d is swept; resolution answers fixed placements", j+1)
		}
		if st.D < 0 || st.D >= spec.M {
			return fmt.Errorf("spec: stream %d distance %d outside [0, %d)", j+1, st.D, spec.M)
		}
		if st.B < 0 || st.B >= spec.M {
			return fmt.Errorf("spec: stream %d start %d outside [0, %d)", j+1, st.B, spec.M)
		}
	}
	return nil
}

// Resolve answers one fixed-placement spec through the engine's
// answer route — analytic gate, canonical-key cache, then simulation
// — and reports which path resolved it. Unlike the sweep entry
// points, invalid specs return an error instead of panicking: the
// query layer feeds untrusted input.
func (e *Engine) Resolve(spec ConfigSpec) (Resolution, error) {
	return e.ResolveCtx(context.Background(), spec)
}

// ResolveCtx is Resolve with a context: a span sink attached via
// WithSpanSink receives the resolution's phase spans (gate,
// canonicalise, cache-probe, simulate). The context carries only the
// sink — resolution is not cancellable mid-answer.
func (e *Engine) ResolveCtx(ctx context.Context, spec ConfigSpec) (Resolution, error) {
	out, err := e.ResolveBatchCtx(ctx, []ConfigSpec{spec})
	if err != nil {
		return Resolution{}, err
	}
	return out[0], nil
}

// ResolveBatch answers many fixed-placement specs through the worker
// pool, amortising validation, spec compilation and the per-(m, s)
// canonicalisation pipeline across the batch. All specs are validated
// upfront — on any error nothing is resolved. Results are returned in
// input order.
func (e *Engine) ResolveBatch(specs []ConfigSpec) ([]Resolution, error) {
	return e.ResolveBatchCtx(context.Background(), specs)
}

// ResolveBatchCtx is ResolveBatch with a context: a span sink attached
// via WithSpanSink receives every item's phase spans (workers record
// concurrently, so the sink must be concurrency-safe). A sink-free
// context resolves identically to ResolveBatch.
func (e *Engine) ResolveBatchCtx(ctx context.Context, specs []ConfigSpec) ([]Resolution, error) {
	for i, spec := range specs {
		if err := validateResolve(spec); err != nil {
			return nil, fmt.Errorf("sweep: resolve batch item %d: %v", i, err)
		}
	}
	sp := SpanSinkFrom(ctx)
	out := make([]Resolution, len(specs))
	e.run(len(specs), func(w *worker, i int) {
		e.pairs.Add(1)
		cs := w.compile(specs[i])
		var bw rat.Rational
		var r resolution
		bw, r = w.resolveSpans(cs, cs.b, true, sp)
		out[i] = Resolution{
			BW:          bw,
			Family:      cs.family,
			Path:        r.path,
			Theorem:     r.theorem,
			Canonical:   r.canon,
			CycleLength: r.cycleLen,
			Clocks:      r.clocks,
		}
	})
	return out, nil
}
