package sweep

import (
	"strings"
	"testing"

	"ivm/internal/core"
	"ivm/internal/rat"
)

func TestSweepPairFig2(t *testing.T) {
	r := SweepPair(12, 3, 1, 7)
	if r.Analysis.Regime != core.RegimeConflictFree {
		t.Fatalf("regime = %s", r.Analysis.Regime)
	}
	if !r.Agree {
		t.Fatal("Fig. 2 pair must agree")
	}
	if !r.SimMin.Equal(rat.New(2, 1)) || !r.SimMax.Equal(rat.New(2, 1)) {
		t.Fatalf("sim range [%s, %s]", r.SimMin, r.SimMax)
	}
	if r.Starts != 12 {
		t.Fatalf("starts = %d", r.Starts)
	}
}

func TestSweepPairBarrier(t *testing.T) {
	r := SweepPair(16, 2, 1, 2)
	if r.Analysis.Regime != core.RegimeUniqueBarrier {
		t.Fatalf("regime = %s", r.Analysis.Regime)
	}
	if !r.Agree {
		t.Fatal("unique barrier must agree at every start")
	}
	if !r.SimMin.Equal(rat.New(3, 2)) || !r.SimMax.Equal(rat.New(3, 2)) {
		t.Fatalf("sim range [%s, %s]", r.SimMin, r.SimMax)
	}
}

// The whole analytic model agrees with the simulator over full grids.
// This is the repo's strongest single check: every closed form of the
// paper, against every start, at several (m, n_c).
func TestGridsAgree(t *testing.T) {
	for _, g := range []struct{ m, nc int }{{8, 2}, {12, 3}, {13, 4}, {16, 4}} {
		results := Grid(g.m, g.nc)
		s := Summarise(g.m, g.nc, results)
		if len(s.Disagree) != 0 {
			for _, d := range s.Disagree {
				t.Errorf("m=%d nc=%d d1=%d d2=%d: %s predicted %s, sim [%s, %s]",
					d.M, d.NC, d.D1, d.D2, d.Analysis.Regime, d.Analysis.Bandwidth, d.SimMin, d.SimMax)
			}
			t.Fatalf("m=%d nc=%d: %d disagreements", g.m, g.nc, len(s.Disagree))
		}
		if s.Pairs == 0 {
			t.Fatalf("m=%d nc=%d: empty grid", g.m, g.nc)
		}
	}
}

func TestTableRendering(t *testing.T) {
	results := Grid(8, 2)
	tbl := Table(results)
	if !strings.Contains(tbl, "regime") || !strings.Contains(tbl, "conflict-free") {
		t.Fatalf("table:\n%s", tbl)
	}
	lines := strings.Split(strings.TrimRight(tbl, "\n"), "\n")
	if len(lines) != len(results)+2 {
		t.Fatalf("%d lines for %d results", len(lines), len(results))
	}
	s := Summarise(8, 2, results)
	st := SummaryTable(s)
	if !strings.Contains(st, "total") || !strings.Contains(st, "disagreements") {
		t.Fatalf("summary:\n%s", st)
	}
}

// The sufficient conditions are one-sided: on the X-MP grid some pairs
// are empirically start-independent without a theorem certifying it
// (1(+)11 is the worked example), and the counter reports them.
func TestUnpredictedUniformCounted(t *testing.T) {
	results := Grid(16, 4)
	s := Summarise(16, 4, results)
	if s.UnpredictedUniform == 0 {
		t.Fatal("expected some empirically uniform pairs beyond the predictions")
	}
	found := false
	for _, r := range results {
		if r.D1 == 1 && r.D2 == 11 {
			if !r.SimMin.Equal(r.SimMax) {
				t.Fatalf("1(+)11 not uniform: [%s, %s]", r.SimMin, r.SimMax)
			}
			if r.Analysis.StartIndependent {
				t.Fatal("1(+)11 should not be certified start-independent")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("1(+)11 missing from the grid")
	}
}
