package sweep

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ivm/internal/core"
)

// Differential harness: the parallel engine, the sequential sweep, and
// the analytic bounds are three independent routes to the same numbers.
// Random pairs must agree result-for-result, and every simulated
// bandwidth must sit inside the provable [1/n_c, capacity] sandwich.

func TestDifferentialRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(19850712))
	eng := NewEngine(Options{Workers: 4})
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(15) // 2..16
		nc := 1 + rng.Intn(4) // 1..4
		d1 := rng.Intn(m)
		d2 := rng.Intn(m)
		seq := SweepPair(m, nc, d1, d2)
		par := eng.SweepPair(m, nc, d1, d2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d m=%d nc=%d (%d,%d): engine %+v != sequential %+v",
				trial, m, nc, d1, d2, par, seq)
		}
		lo, hi := core.PairBandwidthBounds(m, nc, d1, d2)
		if seq.SimMin.Cmp(lo) < 0 {
			t.Fatalf("trial %d m=%d nc=%d (%d,%d): sim min %s below analytic lower bound %s",
				trial, m, nc, d1, d2, seq.SimMin, lo)
		}
		if seq.SimMax.Cmp(hi) > 0 {
			t.Fatalf("trial %d m=%d nc=%d (%d,%d): sim max %s above analytic upper bound %s",
				trial, m, nc, d1, d2, seq.SimMax, hi)
		}
		if !seq.Agree {
			t.Fatalf("trial %d m=%d nc=%d (%d,%d): analysis and simulation disagree: %+v",
				trial, m, nc, d1, d2, seq)
		}
	}
	if eng.Metrics().CacheHits == 0 {
		t.Fatal("50 random pairs never hit the cache; canonicalisation is not collapsing orbits")
	}
}

// Every grid pair's simulated range must respect the analytic bounds —
// the bound check over the full EXPERIMENTS.md grid, not just random
// samples.
func TestDifferentialGridWithinBounds(t *testing.T) {
	eng := NewEngine(Options{Workers: 4})
	for _, g := range experimentsGrid {
		for _, r := range eng.Grid(g.m, g.nc) {
			lo, hi := core.PairBandwidthBounds(r.M, r.NC, r.D1, r.D2)
			if r.SimMin.Cmp(lo) < 0 || r.SimMax.Cmp(hi) > 0 {
				t.Fatalf("m=%d nc=%d (%d,%d): sim [%s,%s] outside bounds [%s,%s]",
					r.M, r.NC, r.D1, r.D2, r.SimMin, r.SimMax, lo, hi)
			}
		}
	}
}

// The memo cache must be semantics-preserving: for every key ever
// answered from the cache, a cold recomputation of that canonical
// representative yields the identical rational, and pair-level results
// computed through the cache match the cache-free sweep field-for-field.
func TestCacheSemanticsPreserving(t *testing.T) {
	eng := NewEngine(Options{Workers: 4})
	var mu sync.Mutex
	hitKeys := make(map[cacheKey]bool)
	eng.onHit = func(k cacheKey) {
		mu.Lock()
		hitKeys[k] = true
		mu.Unlock()
	}
	cached := eng.Grid(12, 3)
	eng.Grid(12, 3) // second pass: every start is a hit
	if len(hitKeys) == 0 {
		t.Fatal("no cache hits observed")
	}
	for k := range hitKeys {
		got, ok := eng.cache.get(k)
		if !ok {
			t.Fatalf("hit key %+v evicted from an oversized cache", k)
		}
		if k.family != "pair" {
			t.Fatalf("pair grid produced a %q cache key: %+v", k.family, k)
		}
		// Rebuild the canonical configuration from the key and simulate
		// it cold: v = (d1, d2, b1, b2).
		v := unpackInts(k.vec)
		if len(v) != 4 {
			t.Fatalf("pair key %+v unpacked to %v", k, v)
		}
		cold := simulateSpecVec(PairSpec(k.m, k.nc, v[0], v[1]), v)
		if !got.Equal(cold) {
			t.Fatalf("key %+v: cached %s != cold recomputation %s", k, got, cold)
		}
	}
	for i, r := range Grid(12, 3) {
		c := cached[i]
		if !c.SimMin.Equal(r.SimMin) || !c.SimMax.Equal(r.SimMax) || c.Agree != r.Agree {
			t.Fatalf("pair (%d,%d): cached sweep %+v != cache-free sweep %+v", r.D1, r.D2, c, r)
		}
	}
}
