package sweep

// Request-scoped span seam of the resolve path: a SpanSink rides a
// context.Context into Engine.ResolveCtx/ResolveBatchCtx and receives
// the named phases of every resolution — gate, canonicalise,
// cache-probe, simulate — so a serving layer can reconstruct one
// request's anatomy. Like ProgressSink, the interface keeps
// internal/sweep free of an obs dependency (obs.TraceContext is the
// implementation, and obs imports sweep). A nil sink is fully
// detached: the resolve hot path takes two nil checks and allocates
// nothing, the same contract as a nil Timeline or Provenance.

import "context"

// SpanSink receives named spans of a resolution. Implementations must
// be safe for concurrent use: a batch records from every worker.
type SpanSink interface {
	// Start returns a span-start token (implementation-defined clock,
	// typically nanoseconds since the request began).
	Start() int64
	// Span records a named span begun at a Start token and ending now.
	Span(name string, start int64)
}

// The span names the resolve path records, exported so consumers can
// match them without string literals.
const (
	// SpanGate is the analytic classifier-gate probe.
	SpanGate = "gate"
	// SpanCanon is the canonicalisation of one placement into its key.
	SpanCanon = "canonicalise"
	// SpanCacheProbe is the canonical-key cache lookup.
	SpanCacheProbe = "cache-probe"
	// SpanSimulate is one cache-miss simulation, steady-state detection
	// included.
	SpanSimulate = "simulate"
)

// spanKey is the context key of the resolve path's span sink.
type spanKey struct{}

// WithSpanSink returns a context carrying the span sink; pass it to
// ResolveCtx/ResolveBatchCtx to have the resolve phases recorded.
func WithSpanSink(ctx context.Context, s SpanSink) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanSinkFrom extracts the span sink from a context (nil when absent,
// which the resolve path treats as detached).
func SpanSinkFrom(ctx context.Context) SpanSink {
	s, _ := ctx.Value(spanKey{}).(SpanSink)
	return s
}
