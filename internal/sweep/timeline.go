package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Worker timeline: when Options.Timeline is set, the engine records
// what each pool slot was doing and when — work-item slices, cache
// hit/miss decisions, canonicalisation and simulation spans — as
// wall-clock events relative to the timeline's epoch. The recording
// is lock-per-event and off by default (a nil Timeline is a no-op on
// every method), so the sweeping hot path pays nothing unless a CLI
// asked for a trace. obs.WriteWorkerTrace renders the events as a
// Chrome trace_event document.

// TimelineKind classifies one timeline event.
type TimelineKind int

// The timeline event kinds. Slices (Item, Canon, Simulate, FindCycle)
// carry a duration; CacheHit and CacheMiss are instants marking the
// memo-cache decision of one placement.
const (
	// TimelineItem spans one work item (a sweep unit) on a worker.
	TimelineItem TimelineKind = iota
	// TimelineCanon spans the canonicalisation of one placement into
	// its cache key.
	TimelineCanon
	// TimelineSimulate spans one cache-miss simulation (including its
	// steady-state detection).
	TimelineSimulate
	// TimelineFindCycle spans one steady-state detection run.
	TimelineFindCycle
	// TimelineCacheHit marks a placement answered from the memo cache.
	TimelineCacheHit
	// TimelineCacheMiss marks a placement that had to be simulated.
	TimelineCacheMiss
	// TimelineAnalytic marks a placement answered by the theorem-driven
	// classifier gate, bypassing cache and simulator entirely.
	TimelineAnalytic
)

var timelineKindNames = [...]string{
	TimelineItem:      "item",
	TimelineCanon:     "canonicalise",
	TimelineSimulate:  "simulate",
	TimelineFindCycle: "find-cycle",
	TimelineCacheHit:  "cache-hit",
	TimelineCacheMiss: "cache-miss",
	TimelineAnalytic:  "analytic-hit",
}

// String names the kind ("item", "cache-hit", ...).
func (k TimelineKind) String() string {
	if k < 0 || int(k) >= len(timelineKindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return timelineKindNames[k]
}

// Instant reports whether the kind is an instant (no duration).
func (k TimelineKind) Instant() bool {
	return k == TimelineCacheHit || k == TimelineCacheMiss || k == TimelineAnalytic
}

// MarshalJSON encodes the kind by name, keeping snapshots readable.
func (k TimelineKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON inverts MarshalJSON.
func (k *TimelineKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range timelineKindNames {
		if name == s {
			*k = TimelineKind(i)
			return nil
		}
	}
	return fmt.Errorf("sweep: unknown timeline kind %q", s)
}

// TimelineEvent is one recorded slice or instant.
type TimelineEvent struct {
	Worker int          `json:"worker"` // pool slot
	Kind   TimelineKind `json:"kind"`
	// StartNS is nanoseconds since the timeline's epoch; DurNS is the
	// slice duration (0 for instants).
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns,omitempty"`
	// Item is the work-item index the event belongs to, -1 when the
	// recording site does not know it (steady-state detection).
	Item int `json:"item"`
	// Family is the configuration family being swept ("" when the
	// recording site does not know it).
	Family string `json:"family,omitempty"`
}

// DefaultTimelineCapacity bounds a Timeline built by NewTimeline(0).
const DefaultTimelineCapacity = 1 << 18

// Timeline is a bounded recorder of engine worker events. All methods
// are safe for concurrent use and are no-ops on a nil receiver, which
// is how the engine runs untraced.
type Timeline struct {
	mu      sync.Mutex
	epoch   time.Time
	cap     int
	events  []TimelineEvent
	dropped int64
}

// NewTimeline builds a recorder holding at most capacity events
// (0 selects DefaultTimelineCapacity); once full, further events are
// counted as dropped rather than recorded.
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCapacity
	}
	return &Timeline{epoch: time.Now(), cap: capacity}
}

// Start returns the current timestamp in nanoseconds since the
// timeline's epoch — the StartNS a later Slice call closes over. Zero
// on a nil timeline.
func (t *Timeline) Start() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Slice records a span that began at startNS (a Start stamp) and ends
// now.
func (t *Timeline) Slice(worker int, kind TimelineKind, startNS int64, item int, family string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{
		Worker: worker, Kind: kind, StartNS: startNS,
		DurNS: time.Since(t.epoch).Nanoseconds() - startNS,
		Item:  item, Family: family,
	})
}

// Instant records a zero-duration event stamped now.
func (t *Timeline) Instant(worker int, kind TimelineKind, item int, family string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{
		Worker: worker, Kind: kind, StartNS: time.Since(t.epoch).Nanoseconds(), Item: item, Family: family,
	})
}

func (t *Timeline) record(e TimelineEvent) {
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time
// (ties broken by worker, then kind), nil on a nil timeline.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]TimelineEvent(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Dropped counts events lost to the capacity bound (0 on nil).
func (t *Timeline) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many events are recorded (0 on nil).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
