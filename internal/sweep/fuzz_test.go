package sweep

import (
	"reflect"
	"testing"

	"ivm/internal/core"
)

// decodeFuzzPair maps raw fuzz bytes onto a valid sweep input:
// m in [1,16], n_c in [1,6], distances reduced mod m.
func decodeFuzzPair(mRaw, ncRaw, d1Raw, d2Raw uint8) (m, nc, d1, d2 int) {
	m = 1 + int(mRaw%16)
	nc = 1 + int(ncRaw%6)
	d1 = int(d1Raw) % m
	d2 = int(d2Raw) % m
	return
}

// fuzzSeeds is the seed corpus; the four bytes decode (via
// decodeFuzzPair) to one pair in each of the six conflict regimes.
var fuzzSeeds = [][4]uint8{
	{15, 3, 8, 8}, // m=16 nc=4 (8,8): self-conflict
	{11, 2, 1, 7}, // m=12 nc=3 (1,7): conflict-free
	{15, 3, 2, 6}, // m=16 nc=4 (2,6): disjoint-free
	{15, 1, 1, 2}, // m=16 nc=2 (1,2): unique-barrier
	{12, 3, 1, 3}, // m=13 nc=4 (1,3): barrier-possible
	{1, 0, 0, 1},  // m=2  nc=1 (0,1): conflicting
}

// The corpus must keep covering every regime the classifier can emit;
// this pins the decode scheme so corpus edits cannot silently drop one.
func TestFuzzSeedsCoverRegimes(t *testing.T) {
	seen := make(map[core.Regime]bool)
	for _, s := range fuzzSeeds {
		m, nc, d1, d2 := decodeFuzzPair(s[0], s[1], s[2], s[3])
		seen[core.Analyze(m, nc, d1, d2).Regime] = true
	}
	for _, reg := range []core.Regime{
		core.RegimeSelfConflict, core.RegimeConflictFree, core.RegimeDisjointFree,
		core.RegimeUniqueBarrier, core.RegimeBarrierPossible, core.RegimeConflicting,
	} {
		if !seen[reg] {
			t.Errorf("seed corpus covers no %s pair", reg)
		}
	}
}

// FuzzSweepPair differentially tests one pair per input: the cached
// parallel engine against the cold sequential sweep, the simulated
// range against the analytic bounds, and the analysis against the
// cyclic steady states.
func FuzzSweepPair(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s[0], s[1], s[2], s[3])
	}
	f.Fuzz(func(t *testing.T, mRaw, ncRaw, d1Raw, d2Raw uint8) {
		m, nc, d1, d2 := decodeFuzzPair(mRaw, ncRaw, d1Raw, d2Raw)
		seq := SweepPair(m, nc, d1, d2)
		eng := NewEngine(Options{Workers: 2, CacheSize: 256})
		par := eng.SweepPair(m, nc, d1, d2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("m=%d nc=%d (%d,%d): engine %+v != sequential %+v", m, nc, d1, d2, par, seq)
		}
		lo, hi := core.PairBandwidthBounds(m, nc, d1, d2)
		if seq.SimMin.Cmp(lo) < 0 || seq.SimMax.Cmp(hi) > 0 {
			t.Fatalf("m=%d nc=%d (%d,%d): sim [%s,%s] outside bounds [%s,%s]",
				m, nc, d1, d2, seq.SimMin, seq.SimMax, lo, hi)
		}
		if !seq.Agree {
			t.Fatalf("m=%d nc=%d (%d,%d): analysis disagrees with simulation: %+v", m, nc, d1, d2, seq)
		}
	})
}
