package sweep

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ivm/internal/modmath"
)

func TestSpecFamily(t *testing.T) {
	cases := []struct {
		spec ConfigSpec
		want string
	}{
		{PairSpec(8, 2, 1, 2), "pair"},
		{TripleSpec(8, 2, [3]int{1, 2, 3}), "triple"},
		{TripleCensusSpec(8, 2, [3]int{1, 2, 3}, [3]int{0, 1, 2}), "triple"},
		{SectionPairSpec(12, 3, 3, 1, 2), "section"},
		{NStreamSpec(8, 2, []int{1, 2, 3, 4}), "stream4"},
		// Two sectionless streams on one CPU are not the historical
		// pair shape (two CPUs): they must not share its cache family.
		{ConfigSpec{M: 8, NC: 2, Streams: []Stream{{D: 1}, {D: 2}}}, "stream2"},
		{ConfigSpec{M: 8, S: 2, NC: 2, Streams: []Stream{{D: 1}, {D: 2}, {D: 3}}}, "section3"},
	}
	for _, c := range cases {
		if got := c.spec.Family(); got != c.want {
			t.Errorf("Family(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := PairSpec(8, 2, 1, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []ConfigSpec{
		{M: 0, NC: 1, Streams: []Stream{{D: 1}}},
		{M: 8, NC: 0, Streams: []Stream{{D: 1}}},
		{M: 8, S: 3, NC: 1, Streams: []Stream{{D: 1}}}, // 3 does not divide 8
		{M: 8, NC: 1}, // no streams
		{M: 8, NC: 1, Streams: []Stream{{D: 1, CPU: -1}}},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("invalid spec accepted: %+v", spec)
		}
	}
}

// The generic sweep over a pair spec must report the same simulated
// range as the dedicated pair sweep — they enumerate the same
// placements of the same streams.
func TestSweepSpecMatchesPairSweep(t *testing.T) {
	pair := SweepPair(8, 2, 1, 2)
	spec := SweepSpec(PairSpec(8, 2, 1, 2))
	if !spec.SimMin.Equal(pair.SimMin) || !spec.SimMax.Equal(pair.SimMax) || spec.Starts != pair.Starts {
		t.Fatalf("generic %+v != pair sweep %+v", spec, pair)
	}
	triple := SweepTriple(6, 2, [3]int{1, 2, 3})
	tspec := SweepSpec(TripleSpec(6, 2, [3]int{1, 2, 3}))
	if !tspec.SimMin.Equal(triple.SimMin) || !tspec.SimMax.Equal(triple.SimMax) ||
		!tspec.BoundMin.Equal(triple.BoundMin) || !tspec.BoundMax.Equal(triple.BoundMax) ||
		tspec.Starts != triple.Starts || tspec.TightStarts != triple.TightStarts {
		t.Fatalf("generic %+v != triple sweep %+v", tspec, triple)
	}
}

// Engine.SweepSpec must be indistinguishable from the sequential
// SweepSpec across spec shapes, worker counts and cache configurations.
func TestEngineSweepSpecMatchesSequential(t *testing.T) {
	specs := []ConfigSpec{
		PairSpec(8, 2, 2, 6),
		SectionPairSpec(12, 3, 2, 1, 4),
		TripleSpec(5, 2, [3]int{1, 2, 3}),
		NStreamSpec(4, 1, []int{1, 1, 2, 3}),
		// A sectioned three-stream shape no legacy family covers.
		{M: 8, S: 2, NC: 2, Streams: []Stream{
			{D: 1, CPU: 0}, {D: 2, CPU: 0, Sweep: true}, {D: 2, CPU: 1, Sweep: true},
		}},
	}
	for _, spec := range specs {
		seq := SweepSpec(spec)
		for _, opt := range []Options{
			{Workers: 1, CacheSize: -1},
			{Workers: 4},
		} {
			eng := NewEngine(opt)
			par := eng.SweepSpec(spec)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("spec %+v opts %+v: engine %+v != sequential %+v", spec, opt, par, seq)
			}
		}
		if seq.Violations != 0 {
			t.Fatalf("spec %+v: %d capacity-bound violations", spec, seq.Violations)
		}
	}
}

// The two-stream N-stream grid is the pair grid in generic clothing:
// same distance tuples in the same order, same placements, and —
// because both compile into the "pair" cache family — a second pass
// through NStreamGrid must be answered entirely from the cache.
func TestNStreamGridSharesPairCache(t *testing.T) {
	eng := NewEngine(Options{Workers: 2})
	pairs := eng.Grid(8, 2)
	missesAfterGrid := eng.Metrics().Family("pair").Misses
	results := eng.NStreamGrid(8, 2, 2)
	if len(results) != len(pairs) {
		t.Fatalf("N-stream grid has %d tuples, pair grid %d", len(results), len(pairs))
	}
	for i, r := range results {
		p := pairs[i]
		if r.Spec.Streams[0].D != p.D1 || r.Spec.Streams[1].D != p.D2 {
			t.Fatalf("row %d: tuple (%d,%d) != pair (%d,%d)",
				i, r.Spec.Streams[0].D, r.Spec.Streams[1].D, p.D1, p.D2)
		}
		if !r.SimMin.Equal(p.SimMin) || !r.SimMax.Equal(p.SimMax) || r.Starts != p.Starts {
			t.Fatalf("tuple (%d,%d): generic [%s,%s] != pair sweep [%s,%s]",
				p.D1, p.D2, r.SimMin, r.SimMax, p.SimMin, p.SimMax)
		}
	}
	m := eng.Metrics()
	if len(m.Families) != 1 || m.Families["pair"].Hits == 0 {
		t.Fatalf("expected all traffic in the pair family: %+v", m.Families)
	}
	if got := m.Families["pair"].Misses; got != missesAfterGrid {
		t.Fatalf("N-stream pass missed the cache %d times; every placement was already cached",
			got-missesAfterGrid)
	}
}

// The four-stream grid (a p=4 configuration, one stream per CPU) must
// produce a valid sweep: full placement coverage, no capacity-bound
// violations, traffic accounted under the stream4 family, and a
// rendered table.
func TestEngineNStreamGridFourStreams(t *testing.T) {
	eng := NewEngine(Options{Workers: 4})
	results := eng.NStreamGrid(4, 1, 4)
	if len(results) == 0 {
		t.Fatal("empty four-stream grid")
	}
	for _, r := range results {
		if r.Starts != 4*4*4 {
			t.Fatalf("tuple %+v: %d placements, want 64", r.Spec, r.Starts)
		}
		if r.Violations != 0 {
			t.Fatalf("tuple %+v: %d capacity-bound violations", r.Spec, r.Violations)
		}
		if r.SimMin.Cmp(r.SimMax) > 0 || r.SimMax.Cmp(r.BoundMax) > 0 {
			t.Fatalf("tuple %+v: inconsistent range sim [%s,%s] bound [%s,%s]",
				r.Spec, r.SimMin, r.SimMax, r.BoundMin, r.BoundMax)
		}
	}
	m := eng.Metrics()
	if len(m.Families) != 1 || m.Families["stream4"].Hits == 0 {
		t.Fatalf("expected cached traffic in the stream4 family: %+v", m.Families)
	}
	out := SpecTable(results)
	for _, col := range []string{"d1", "d4", "bound", "sim min", "tight"} {
		if !strings.Contains(out, col) {
			t.Fatalf("table missing %q:\n%s", col, out)
		}
	}
	if s := SummariseSpecGrid(results); s.Violations != 0 || s.Starts == 0 {
		t.Fatalf("summary %+v", s)
	}
}

// A census at translated starts (t, 1+t, 2+t) is the standard census
// seen through the translation isomorphism: the engine must answer it
// entirely from the standard census's cache entries, and the values
// must match a cold simulation of the translated placements.
func TestTriplesAtTranslationReuse(t *testing.T) {
	eng := NewEngine(Options{Workers: 2})
	base := eng.Triples(6, 2)
	m0 := eng.Metrics().Family("triple")
	shifted := eng.TriplesAt(6, 2, [3]int{3, 4, 5})
	m1 := eng.Metrics().Family("triple")
	if m1.Misses != m0.Misses {
		t.Fatalf("translated census missed the cache %d times; translation orbits should collapse it",
			m1.Misses-m0.Misses)
	}
	if m1.Hits <= m0.Hits {
		t.Fatal("translated census produced no cache hits")
	}
	cold := SweepTriplesAt(6, 2, [3]int{3, 4, 5})
	if !reflect.DeepEqual(shifted, cold) {
		t.Fatal("cached translated census differs from cold simulation")
	}
	for i := range base {
		if !base[i].Bandwidth.Equal(shifted[i].Bandwidth) {
			t.Fatalf("triple %v: bandwidth %s at (0,1,2) but %s at (3,4,5)",
				base[i].D, base[i].Bandwidth, shifted[i].Bandwidth)
		}
	}
}

// Metrics JSON must keep the legacy flat fields (even when zero), carry
// generic families, and round-trip exactly.
func TestMetricsJSONGenericFamilies(t *testing.T) {
	m := Metrics{
		CacheHits: 12, CacheMisses: 5,
		Families: map[string]FamilyMetrics{
			"pair":    {Hits: 10, Misses: 3},
			"stream4": {Hits: 2, Misses: 2},
		},
		CacheEntries: 4, CyclesFound: 5, StepsSimulated: 100, PairsSwept: 3,
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"cache_hits":12`, `"pair_cache_hits":10`, `"triple_cache_hits":0`,
		`"section_cache_misses":0`, `"stream4_cache_hits":2`, `"pairs_swept":3`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("marshal missing %s: %s", want, data)
		}
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip %+v != %+v", back, m)
	}
}

// randSpec draws a random multi-stream spec for the canonicalisation
// fuzz/property tests: 2..4 streams, random section count dividing m,
// random CPU layout.
func randSpec(rng *rand.Rand) ConfigSpec {
	m := 2 + rng.Intn(15)
	divs := modmath.Divisors(m)
	s := 0
	if rng.Intn(2) == 0 {
		s = divs[rng.Intn(len(divs))]
	}
	n := 2 + rng.Intn(3)
	streams := make([]Stream, n)
	for i := range streams {
		streams[i] = Stream{D: rng.Intn(m), B: rng.Intn(m), CPU: rng.Intn(n)}
	}
	return ConfigSpec{M: m, S: s, NC: 1 + rng.Intn(4), Streams: streams}
}

// specKeyTransformInvariant asserts the compiled key of spec at its own
// starts equals the key of the affinely transformed configuration
// (distances and starts scaled by u, starts shifted by t).
func specKeyTransformInvariant(t *testing.T, w *worker, spec ConfigSpec, u, shift int) {
	t.Helper()
	cs := w.compile(spec)
	b := make([]int, len(spec.Streams))
	for i, st := range spec.Streams {
		b[i] = st.B
	}
	want := cs.key(b)

	moved := spec
	moved.Streams = append([]Stream(nil), spec.Streams...)
	bm := make([]int, len(b))
	for i := range moved.Streams {
		moved.Streams[i].D = modmath.Mod(u*moved.Streams[i].D, spec.M)
		bm[i] = modmath.Mod(u*b[i]+shift, spec.M)
		moved.Streams[i].B = bm[i]
	}
	csm := w.compile(moved)
	if got := csm.key(bm); got != want {
		t.Fatalf("spec %+v under u=%d t=%d: key %+v != %+v", spec, u, shift, got, want)
	}
	// Idempotence: canonicalising the canonical vector is a fixed point.
	vec := append([]int(nil), cs.vec...)
	cs.canon.Canonicalize(vec, len(spec.Streams))
	if !reflect.DeepEqual(vec, cs.vec) {
		t.Fatalf("spec %+v: canonical vector %v not a fixed point (-> %v)", spec, cs.vec, vec)
	}
}

// allowedTransforms draws a unit and a translation legal for the
// spec's section structure under the engine's options.
func allowedTransforms(rng *rand.Rand, spec ConfigSpec, fullUnits bool) (u, shift int) {
	step := 1
	if spec.S > 1 {
		step = spec.S
	}
	fix := 1
	if spec.S > 1 && !fullUnits {
		fix = spec.S
	}
	units := modmath.UnitsFixing(spec.M, fix)
	return units[rng.Intn(len(units))], step * rng.Intn(spec.M/step)
}

// The compiled cache key is constant on affine orbits for every spec
// shape, not just the legacy families — seeded property test.
func TestSpecKeyOrbitInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19850805))
	w := &worker{e: NewEngine(Options{})}
	off := false
	wSub := &worker{e: NewEngine(Options{SectionFullUnits: &off})}
	for trial := 0; trial < 300; trial++ {
		spec := randSpec(rng)
		u, shift := allowedTransforms(rng, spec, true)
		specKeyTransformInvariant(t, w, spec, u, shift)
		uSub, shiftSub := allowedTransforms(rng, spec, false)
		specKeyTransformInvariant(t, wSub, spec, uSub, shiftSub)
	}
}

// FuzzSpecCanonical drives the same property from fuzz inputs: the
// canonical key is orbit-invariant and canonicalisation idempotent for
// arbitrary spec shapes.
func FuzzSpecCanonical(f *testing.F) {
	f.Add(uint8(11), uint8(1), uint8(2), uint8(3), uint8(7), uint8(2))
	f.Add(uint8(15), uint8(4), uint8(3), uint8(1), uint8(3), uint8(9))
	f.Add(uint8(5), uint8(0), uint8(1), uint8(2), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, mRaw, sRaw, nRaw, seedRaw, uRaw, shiftRaw uint8) {
		m := 2 + int(mRaw)%15
		divs := modmath.Divisors(m)
		s := 0
		if sRaw%2 == 0 {
			s = divs[int(sRaw/2)%len(divs)]
		}
		n := 2 + int(nRaw)%3
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		streams := make([]Stream, n)
		for i := range streams {
			streams[i] = Stream{D: rng.Intn(m), B: rng.Intn(m), CPU: rng.Intn(n)}
		}
		spec := ConfigSpec{M: m, S: s, NC: 1 + int(seedRaw)%4, Streams: streams}

		step := 1
		if s > 1 {
			step = s
		}
		units := modmath.Units(m)
		u := units[int(uRaw)%len(units)]
		shift := step * (int(shiftRaw) % (m / step))
		w := &worker{e: NewEngine(Options{})}
		specKeyTransformInvariant(t, w, spec, u, shift)
	})
}
