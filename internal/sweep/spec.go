package sweep

import (
	"fmt"
	"strconv"

	"ivm/internal/core"
	"ivm/internal/memsys"
	"ivm/internal/rat"
	"ivm/internal/stream"
	"ivm/internal/textplot"
)

// The generic N-stream configuration specification. The paper's model
// is one machine with p ports, so stride pairs, stride triples and the
// sectioned Theorem 8/9 pairs are all the same object at different N
// and CPU layouts; ConfigSpec expresses that object directly, and one
// engine path (worker.bw) sweeps, canonicalises and caches every
// family through it. The pair/triple/section sweep entry points are
// kept as thin result-shaping layers over this spec — their tables are
// byte-identical to the pre-spec implementation, which the golden
// tests under testdata/ pin.

// Stream is one access stream of a ConfigSpec: stride D issued from
// CPU, starting at bank B. When Sweep is set, grid sweeps iterate the
// start over all m banks instead of holding B fixed.
type Stream struct {
	D     int
	B     int
	CPU   int
	Sweep bool
}

// ConfigSpec describes an N-stream configuration of an (m, s, n_c)
// interleaved memory: M banks, S sections (0 means sectionless, i.e.
// one section per bank), bank busy time NC, and one Stream per port in
// priority order. The spec is the unit of caching: its family, memory
// shape, CPU layout and canonicalised (d_1..d_N, b_1..b_N) vector form
// the cache key.
type ConfigSpec struct {
	M, S, NC int
	Streams  []Stream
	// Mapping selects the bank-to-section distribution.
	// memsys.ConsecutiveSections (the Fig. 9 remedy, section(j) =
	// floor(j / (m/s)) instead of the cyclic j mod s) is only meaningful
	// with S > 0; it narrows the cache's canonicalisation group (see
	// worker.pipelineFor and docs/CACHING.md) and keys its own
	// configuration families ("-consec" suffix).
	Mapping memsys.SectionMapping
	// Priority selects the arbitration rule among simultaneous
	// requests. Non-default rules key their own configuration families
	// ("-cyc" / "-rrcpu" suffixes); the canonicalisation pipeline is
	// unchanged — arbitration is bank-blind, so bank renumbering
	// commutes with every rule (docs/CACHING.md) — but the analytic
	// pair gate declines anything but fixed priority.
	Priority memsys.PriorityRule
}

// WithPolicy returns a copy of the spec under the given arbitration
// rule and section mapping — the fluent way to lift any family
// constructor (PairSpec, SectionPairSpec, …) into a policy variant.
func (c ConfigSpec) WithPolicy(priority memsys.PriorityRule, mapping memsys.SectionMapping) ConfigSpec {
	c.Priority = priority
	c.Mapping = mapping
	return c
}

// Validate checks the spec against the memory system's invariants.
func (c ConfigSpec) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("spec: %d banks", c.M)
	}
	if c.NC <= 0 {
		return fmt.Errorf("spec: bank busy time %d", c.NC)
	}
	if c.S < 0 {
		return fmt.Errorf("spec: %d sections", c.S)
	}
	if c.S > 0 && c.M%c.S != 0 {
		return fmt.Errorf("spec: sections %d must divide banks %d", c.S, c.M)
	}
	switch c.Mapping {
	case memsys.CyclicSections:
	case memsys.ConsecutiveSections:
		if c.S == 0 {
			return fmt.Errorf("spec: consecutive mapping needs sections")
		}
	default:
		return fmt.Errorf("spec: unknown section mapping %d", int(c.Mapping))
	}
	switch c.Priority {
	case memsys.FixedPriority, memsys.CyclicPriority, memsys.RoundRobinPerCPU:
	default:
		return fmt.Errorf("spec: unknown priority rule %d", int(c.Priority))
	}
	if len(c.Streams) == 0 {
		return fmt.Errorf("spec: no streams")
	}
	for i, st := range c.Streams {
		if st.CPU < 0 {
			return fmt.Errorf("spec: stream %d on CPU %d", i+1, st.CPU)
		}
	}
	return nil
}

// Family names the spec's configuration family — the string that keys
// the per-family cache counters and, together with the CPU layout,
// partitions the cache. The three historical families keep their
// names: "pair" (two sectionless streams on CPUs 0 and 1), "triple"
// (three sectionless streams on CPUs 0, 1, 2) and "section" (two
// streams of one CPU against a sectioned memory). Other shapes derive
// "streamN" / "sectionN" names from the stream count. Non-default
// policies append suffixes — "-consec" for the consecutive mapping,
// then "-cyc" / "-rrcpu" for a rotating priority rule — so specs that
// differ in policy produce different conflict structures and must
// never collide in the cache; the default (cyclic mapping, fixed
// priority) keeps the bare historical names, which pins every
// pre-policy golden, benchmark family key and served response byte.
func (c ConfigSpec) Family() string {
	n := len(c.Streams)
	var name string
	if c.S == 0 {
		switch {
		case n == 2 && c.Streams[0].CPU == 0 && c.Streams[1].CPU == 1:
			name = "pair"
		case n == 3 && c.Streams[0].CPU == 0 && c.Streams[1].CPU == 1 && c.Streams[2].CPU == 2:
			name = "triple"
		default:
			name = "stream" + strconv.Itoa(n)
		}
	} else {
		name = "section" + strconv.Itoa(n)
		if n == 2 && c.Streams[0].CPU == 0 && c.Streams[1].CPU == 0 {
			name = "section"
		}
	}
	if c.Mapping == memsys.ConsecutiveSections {
		name += "-consec"
	}
	switch c.Priority {
	case memsys.CyclicPriority:
		name += "-cyc"
	case memsys.RoundRobinPerCPU:
		name += "-rrcpu"
	}
	return name
}

// PairSpec is the sectionless two-stream family: stream 1 fixed at
// bank 0 on CPU 0, stream 2 swept on CPU 1 — the configuration of the
// Theorem 2–7 cross-validation grid.
func PairSpec(m, nc, d1, d2 int) ConfigSpec {
	return ConfigSpec{M: m, NC: nc, Streams: []Stream{
		{D: d1, CPU: 0},
		{D: d2, CPU: 1, Sweep: true},
	}}
}

// SectionPairSpec is the sectioned two-stream family of the Theorem
// 8/9 sweeps: both streams on CPU 0, stream 2 swept, s | m sections.
func SectionPairSpec(m, s, nc, d1, d2 int) ConfigSpec {
	return ConfigSpec{M: m, S: s, NC: nc, Streams: []Stream{
		{D: d1, CPU: 0},
		{D: d2, CPU: 0, Sweep: true},
	}}
}

// ConsecSectionPairSpec is SectionPairSpec under the consecutive
// bank-to-section mapping (the Fig. 9 remedy): section(j) =
// floor(j / (m/s)). Its placements canonicalise under the
// section-block translation orbit (see docs/CACHING.md) and cache in
// the "section-consec" family.
func ConsecSectionPairSpec(m, s, nc, d1, d2 int) ConfigSpec {
	spec := SectionPairSpec(m, s, nc, d1, d2)
	spec.Mapping = memsys.ConsecutiveSections
	return spec
}

// TripleSpec is the sectionless three-stream family with stream 1
// fixed at bank 0 and streams 2 and 3 swept over all m^2 relative
// placements.
func TripleSpec(m, nc int, d [3]int) ConfigSpec {
	return ConfigSpec{M: m, NC: nc, Streams: []Stream{
		{D: d[0], CPU: 0},
		{D: d[1], CPU: 1, Sweep: true},
		{D: d[2], CPU: 2, Sweep: true},
	}}
}

// TripleCensusSpec is the fixed-placement three-stream census
// configuration: all three starts held at b. Placements that are
// translates of one another canonicalise to the same cache key, so a
// census at (t, 1+t, 2+t) reuses the cyclic states of the standard
// (0, 1, 2) census.
func TripleCensusSpec(m, nc int, d, b [3]int) ConfigSpec {
	return ConfigSpec{M: m, NC: nc, Streams: []Stream{
		{D: d[0], B: b[0], CPU: 0},
		{D: d[1], B: b[1], CPU: 1},
		{D: d[2], B: b[2], CPU: 2},
	}}
}

// NStreamSpec generalises PairSpec/TripleSpec to N sectionless
// streams, one per CPU: stream 1 fixed at bank 0, the rest swept.
func NStreamSpec(m, nc int, d []int) ConfigSpec {
	streams := make([]Stream, len(d))
	for i, di := range d {
		streams[i] = Stream{D: di, CPU: i, Sweep: i > 0}
	}
	return ConfigSpec{M: m, NC: nc, Streams: streams}
}

// --- Simulation ---------------------------------------------------------

// specConfig derives the memory-system configuration: the spec's
// memory shape plus one CPU per distinct issuing CPU index.
func specConfig(spec ConfigSpec) memsys.Config {
	cpus := 1
	for _, st := range spec.Streams {
		if st.CPU+1 > cpus {
			cpus = st.CPU + 1
		}
	}
	return memsys.Config{
		Banks: spec.M, Sections: spec.S, BankBusy: spec.NC, CPUs: cpus,
		Mapping: spec.Mapping, Priority: spec.Priority,
	}
}

// streamLabel names stream i in tables and traces ("1", "2", …).
func streamLabel(i int) string {
	return strconv.Itoa(i + 1)
}

// addSpecStreams attaches the spec's streams for the configuration
// vector v = (d_1..d_N, b_1..b_N) — which may be a canonical orbit
// representative rather than the spec's literal placements.
func addSpecStreams(sys *memsys.System, spec ConfigSpec, v []int) {
	n := len(spec.Streams)
	var buf [4]memsys.StreamSpec
	ports := buf[:0]
	for i, st := range spec.Streams {
		ports = append(ports, memsys.StreamSpec{
			Start: v[n+i], Distance: v[i], CPU: st.CPU, Label: streamLabel(i),
		})
	}
	sys.AddStreams(ports...)
}

// describeSpec labels one placement for steady-state panic messages.
func describeSpec(spec ConfigSpec, v []int) string {
	return fmt.Sprintf("%s m=%d s=%d nc=%d v=%v", spec.Family(), spec.M, spec.S, spec.NC, v)
}

// simulateSpecVec is the cold path shared by every sequential sweep: a
// fresh system per placement, simulating configuration vector v.
func simulateSpecVec(spec ConfigSpec, v []int) rat.Rational {
	sys := memsys.New(specConfig(spec))
	addSpecStreams(sys, spec, v)
	c, err := sys.FindCycle(findCycleBudget)
	if err != nil {
		panic(fmt.Sprintf("sweep: %s: %v", describeSpec(spec, v), err))
	}
	return c.EffectiveBandwidth()
}

// coldSpecBW adapts simulateSpecVec to a start-vector resolver with
// the spec's own distances, for the sequential family sweeps.
func coldSpecBW(spec ConfigSpec) func(b []int) rat.Rational {
	n := len(spec.Streams)
	v := make([]int, 2*n)
	for i, st := range spec.Streams {
		v[i] = st.D
	}
	return func(b []int) rat.Rational {
		copy(v[n:], b)
		return simulateSpecVec(spec, v)
	}
}

// coldTwoStreamBW is coldSpecBW shaped for the pair/section sweep
// loops: stream 1 at its fixed start, stream 2 at b2.
func coldTwoStreamBW(spec ConfigSpec) func(b2 int) rat.Rational {
	bw := coldSpecBW(spec)
	b := make([]int, 2)
	b[0] = spec.Streams[0].B
	return func(b2 int) rat.Rational {
		b[1] = b2
		return bw(b)
	}
}

// --- The generic sweep --------------------------------------------------

// SpecResult compares the simulated cyclic states of one ConfigSpec —
// over every placement of its swept streams — with the per-placement
// capacity bounds of core.MultiStreamBound; the N-stream analogue of
// TripleSweepResult.
type SpecResult struct {
	Spec ConfigSpec
	// SimMin/SimMax are the extreme cyclic-state bandwidths over the
	// swept placements.
	SimMin, SimMax rat.Rational
	// BoundMin/BoundMax are the extreme per-placement capacity bounds.
	BoundMin, BoundMax rat.Rational
	// Starts is how many placements were simulated (m^k for k swept
	// streams).
	Starts int
	// TightStarts counts placements whose simulated bandwidth attains
	// their capacity bound exactly.
	TightStarts int
	// Violations counts placements whose simulated bandwidth exceeds
	// their capacity bound — always zero unless the simulator or the
	// bound is wrong.
	Violations int
}

// specBound is the aggregate capacity bound of one placement.
func specBound(spec ConfigSpec, b []int) rat.Rational {
	sets := make([]core.StreamSet, len(spec.Streams))
	for i, st := range spec.Streams {
		sets[i] = core.StreamSet{Stream: stream.Infinite(spec.M, b[i], st.D), CPU: st.CPU}
	}
	return core.MultiStreamBound(spec.M, spec.S, spec.NC, sets)
}

// sweepSpecWith enumerates every placement of the spec's swept streams
// (each over [0, m), nested in stream order) and folds the bandwidths
// bw reports against the capacity bounds.
func sweepSpecWith(spec ConfigSpec, bw func(b []int) rat.Rational) SpecResult {
	res := SpecResult{Spec: spec}
	b := make([]int, len(spec.Streams))
	for i, st := range spec.Streams {
		b[i] = st.B
	}
	first := true
	var rec func(i int)
	rec = func(i int) {
		if i == len(spec.Streams) {
			v := bw(b)
			bound := specBound(spec, b)
			if first || v.Cmp(res.SimMin) < 0 {
				res.SimMin = v
			}
			if first || v.Cmp(res.SimMax) > 0 {
				res.SimMax = v
			}
			if first || bound.Cmp(res.BoundMin) < 0 {
				res.BoundMin = bound
			}
			if first || bound.Cmp(res.BoundMax) > 0 {
				res.BoundMax = bound
			}
			first = false
			res.Starts++
			switch v.Cmp(bound) {
			case 0:
				res.TightStarts++
			case 1:
				res.Violations++
			}
			return
		}
		if !spec.Streams[i].Sweep {
			rec(i + 1)
			return
		}
		for s := 0; s < spec.M; s++ {
			b[i] = s
			rec(i + 1)
		}
		b[i] = spec.Streams[i].B
	}
	rec(0)
	return res
}

// SweepSpec sweeps one ConfigSpec sequentially (cold simulation per
// placement). Engine.SweepSpec is the parallel, cached equivalent and
// returns byte-identical results.
func SweepSpec(spec ConfigSpec) SpecResult {
	if err := spec.Validate(); err != nil {
		panic("sweep: " + err.Error())
	}
	return sweepSpecWith(spec, coldSpecBW(spec))
}

// nStreamDistances enumerates the nondecreasing distance N-tuples of
// the N-stream grid in sweep order, skipping self-conflicting streams
// (return number < n_c) exactly as gridPairs does.
func nStreamDistances(m, nc, n int) [][]int {
	var allowed []int
	for d := 0; d < m; d++ {
		if stream.ReturnNumber(m, d) >= nc {
			allowed = append(allowed, d)
		}
	}
	var out [][]int
	tuple := make([]int, n)
	var rec func(i, lo int)
	rec = func(i, lo int) {
		if i == n {
			out = append(out, append([]int(nil), tuple...))
			return
		}
		for j := lo; j < len(allowed); j++ {
			tuple[i] = allowed[j]
			rec(i+1, j)
		}
	}
	rec(0, 0)
	return out
}

// NStreamGrid sweeps every nondecreasing non-self-conflicting distance
// N-tuple of an (m, n_c) memory, one stream per CPU, over all m^(N-1)
// relative placements. For N = 2 and 3 the specs fall into the "pair"
// and "triple" cache families, so the cyclic states are shared with
// the dedicated grids. Sequential reference path; Engine.NStreamGrid
// is the parallel, cached equivalent.
func NStreamGrid(m, nc, n int) []SpecResult {
	specs := nStreamSpecs(m, nc, n)
	out := make([]SpecResult, len(specs))
	for i, spec := range specs {
		out[i] = SweepSpec(spec)
	}
	return out
}

func nStreamSpecs(m, nc, n int) []ConfigSpec {
	ds := nStreamDistances(m, nc, n)
	specs := make([]ConfigSpec, len(ds))
	for i, d := range ds {
		specs[i] = NStreamSpec(m, nc, d)
	}
	return specs
}

// GridSpecs lists the pair sweep's distance pairs (Grid's enumeration)
// as specs, in sweep order; s != 0 selects the section sweep's
// enumeration instead. Combined with ConfigSpec.WithPolicy and
// Engine.SpecGrid this is the policy sweep: the same pair families
// under any arbitration priority and section mapping.
func GridSpecs(m, s, nc int) []ConfigSpec {
	pairs := gridPairs(m, nc)
	out := make([]ConfigSpec, len(pairs))
	for i, p := range pairs {
		if s != 0 {
			out[i] = SectionPairSpec(m, s, nc, p[0], p[1])
		} else {
			out[i] = PairSpec(m, nc, p[0], p[1])
		}
	}
	return out
}

// SpecTable renders an N-stream grid sweep as an aligned text table;
// all results must share one stream count.
func SpecTable(results []SpecResult) string {
	if len(results) == 0 {
		return ""
	}
	n := len(results[0].Spec.Streams)
	header := make([]string, 0, n+4)
	for i := 0; i < n; i++ {
		header = append(header, "d"+strconv.Itoa(i+1))
	}
	header = append(header, "bound", "sim min", "sim max", "tight")
	t := &textplot.Table{Header: header}
	row := make([]any, 0, n+4)
	for _, r := range results {
		row = row[:0]
		for _, st := range r.Spec.Streams {
			row = append(row, st.D)
		}
		bound := r.BoundMax.String()
		if !r.BoundMin.Equal(r.BoundMax) {
			bound = r.BoundMin.String() + ".." + r.BoundMax.String()
		}
		row = append(row, bound, r.SimMin.String(), r.SimMax.String(),
			fmt.Sprintf("%d/%d", r.TightStarts, r.Starts))
		t.Add(row...)
	}
	return t.String()
}

// SummariseSpecGrid reduces an N-stream grid sweep.
func SummariseSpecGrid(results []SpecResult) TripleGridSummary {
	var s TripleGridSummary
	s.Triples = len(results)
	if len(results) > 0 {
		s.M, s.NC = results[0].Spec.M, results[0].Spec.NC
	}
	for _, r := range results {
		s.Starts += r.Starts
		s.TightStarts += r.TightStarts
		s.Violations += r.Violations
		if r.TightStarts > 0 {
			s.TightSomewhere++
		}
	}
	return s
}
