package sweep

import (
	"encoding/json"
	"sort"
	"testing"
)

func TestTimelineRecordsEngineWork(t *testing.T) {
	tl := NewTimeline(0)
	e := NewEngine(Options{Workers: 3, Timeline: tl})
	got := e.Grid(12, 3)
	want := Grid(12, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tracing changed the sweep output at %d: %+v != %+v", i, got[i], want[i])
		}
	}

	events := tl.Events()
	if len(events) == 0 {
		t.Fatal("timeline recorded nothing")
	}
	counts := map[TimelineKind]int{}
	items := map[int]bool{}
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == TimelineItem {
			if ev.Item < 0 || ev.Item >= len(want) {
				t.Fatalf("item slice with index %d outside the grid of %d", ev.Item, len(want))
			}
			items[ev.Item] = true
		}
		if !ev.Kind.Instant() && ev.DurNS < 0 {
			t.Fatalf("negative duration: %+v", ev)
		}
		if ev.Kind.Instant() && ev.DurNS != 0 {
			t.Fatalf("instant with duration: %+v", ev)
		}
	}
	// Every work item got a slice, exactly once.
	if len(items) != len(want) || counts[TimelineItem] != len(want) {
		t.Errorf("item slices cover %d/%d items (%d slices)", len(items), len(want), counts[TimelineItem])
	}
	// Hit/miss instants agree with the engine's own counters, and every
	// placement was canonicalised.
	m := e.Metrics()
	if int64(counts[TimelineCacheHit]) != m.CacheHits || int64(counts[TimelineCacheMiss]) != m.CacheMisses {
		t.Errorf("timeline saw %d hits / %d misses, metrics say %d / %d",
			counts[TimelineCacheHit], counts[TimelineCacheMiss], m.CacheHits, m.CacheMisses)
	}
	if int64(counts[TimelineCanon]) != m.CacheHits+m.CacheMisses {
		t.Errorf("%d canonicalise slices for %d cache probes",
			counts[TimelineCanon], m.CacheHits+m.CacheMisses)
	}
	// Each miss simulated: one simulate slice and one find-cycle slice.
	if int64(counts[TimelineSimulate]) != m.CacheMisses || int64(counts[TimelineFindCycle]) != m.CacheMisses {
		t.Errorf("%d simulate / %d find-cycle slices for %d misses",
			counts[TimelineSimulate], counts[TimelineFindCycle], m.CacheMisses)
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].StartNS <= events[j].StartNS }) {
		t.Error("Events() not sorted by start time")
	}

	s := e.Snapshot()
	if len(s.TimelineEvents) != len(events) || s.TimelineDropped != 0 {
		t.Errorf("snapshot carries %d events (dropped %d), timeline has %d",
			len(s.TimelineEvents), s.TimelineDropped, len(events))
	}
}

func TestTimelineCapacityDrops(t *testing.T) {
	tl := NewTimeline(8)
	e := NewEngine(Options{Workers: 2, Timeline: tl})
	e.Grid(12, 3)
	if tl.Len() != 8 {
		t.Errorf("recorder holds %d events, capacity is 8", tl.Len())
	}
	if tl.Dropped() == 0 {
		t.Error("overflow not counted as dropped")
	}
	if s := e.Snapshot(); s.TimelineDropped != tl.Dropped() {
		t.Errorf("snapshot dropped %d != timeline %d", s.TimelineDropped, tl.Dropped())
	}
}

func TestTimelineNilIsNoOp(t *testing.T) {
	var tl *Timeline
	tl.Slice(0, TimelineItem, tl.Start(), 0, "")
	tl.Instant(0, TimelineCacheHit, 0, "")
	if tl.Events() != nil || tl.Dropped() != 0 || tl.Len() != 0 {
		t.Error("nil timeline not inert")
	}
}

func TestTimelineKindJSONRoundTrip(t *testing.T) {
	for k := TimelineItem; k <= TimelineCacheMiss; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back TimelineKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("%v round-tripped to %v via %s", k, back, data)
		}
	}
	var k TimelineKind
	if err := json.Unmarshal([]byte(`"warp-core"`), &k); err == nil {
		t.Error("unknown kind decoded without error")
	}
}

func TestSnapshotTimelineJSONRoundTrip(t *testing.T) {
	tl := NewTimeline(0)
	e := NewEngine(Options{Workers: 2, Timeline: tl})
	e.Grid(12, 3)
	s := e.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.TimelineEvents) != len(s.TimelineEvents) {
		t.Fatalf("round trip lost events: %d != %d", len(back.TimelineEvents), len(s.TimelineEvents))
	}
	for i := range back.TimelineEvents {
		if back.TimelineEvents[i] != s.TimelineEvents[i] {
			t.Fatalf("event %d drifted: %+v != %+v", i, back.TimelineEvents[i], s.TimelineEvents[i])
		}
	}
}
