package sweep

import (
	"sync"

	"ivm/internal/rat"
)

// sweepKind distinguishes the three cached configuration families. It
// is part of the cache key: a pair, a triple and a section pair with
// numerically identical vectors are different simulations.
type sweepKind uint8

const (
	// kindPair is the sectionless two-stream configuration (two CPUs,
	// streams (0, d1) and (b2, d2)); vector (d1, d2, b2).
	kindPair sweepKind = iota
	// kindSection is the sectioned one-CPU two-port configuration of
	// the Theorem 8/9 sweeps; vector (d1, d2, b2), sections recorded
	// in cacheKey.S.
	kindSection
	// kindTriple is the sectionless three-stream configuration (three
	// CPUs, streams (0, d1), (b2, d2), (b3, d3)); vector
	// (d1, d2, d3, b2, b3).
	kindTriple
	// numKinds sizes the per-kind counter arrays.
	numKinds
)

// String names the kind for counter tables.
func (k sweepKind) String() string {
	switch k {
	case kindPair:
		return "pair"
	case kindSection:
		return "section"
	case kindTriple:
		return "triple"
	}
	return "unknown"
}

// vecLen is the number of meaningful elements of cacheKey.V for this
// kind; the rest stay zero and do not perturb equality or hashing.
func (k sweepKind) vecLen() int {
	if k == kindTriple {
		return 5
	}
	return 3
}

// cacheKey identifies one cyclic steady state in canonical
// (orbit-minimal) form: the configuration family, the memory shape
// (m, s, n_c) and the distance/start vector after canonicalisation
// under the section-respecting unit group (see worker.canonicalKey and
// docs/CACHING.md).
type cacheKey struct {
	Kind     sweepKind
	M, S, NC int
	V        [5]int
}

// shard spreads keys over the cache shards with an FNV-style mix.
func (k cacheKey) shard() int {
	h := uint64(2166136261)
	mix := func(v int) {
		h ^= uint64(uint32(v))
		h *= 16777619
	}
	mix(int(k.Kind))
	mix(k.M)
	mix(k.S)
	mix(k.NC)
	for _, v := range k.V {
		mix(v)
	}
	return int(h % cacheShardCount)
}

const cacheShardCount = 16

// bwCache is a sharded, size-bounded memoization cache of cyclic-state
// bandwidths. Sharding keeps lock contention off the workers' hot
// path; eviction is generational — a full shard is dropped wholesale
// rather than tracking recency, which is cheap and, because cached
// values are pure functions of the key, only ever costs a recompute.
// Pair, triple and section entries share the shards and the size
// budget.
type bwCache struct {
	perShard int
	shards   [cacheShardCount]bwShard
}

type bwShard struct {
	mu sync.Mutex
	m  map[cacheKey]rat.Rational
}

// newBWCache builds a cache bounded at roughly size entries in total.
func newBWCache(size int) *bwCache {
	per := size / cacheShardCount
	if per < 1 {
		per = 1
	}
	return &bwCache{perShard: per}
}

func (c *bwCache) get(k cacheKey) (rat.Rational, bool) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (c *bwCache) put(k cacheKey, v rat.Rational) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= c.perShard {
		s.m = make(map[cacheKey]rat.Rational, c.perShard)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Len counts the entries currently cached across all shards.
func (c *bwCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
