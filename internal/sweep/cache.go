package sweep

import (
	"encoding/binary"
	"sync"

	"ivm/internal/rat"
)

// cacheKey identifies one cyclic steady state in canonical
// (orbit-minimal) form: the spec's configuration family, the memory
// shape (m, s, n_c), the structural CPU layout, and the packed
// configuration vector (d_1..d_N, b_1..b_N) after canonicalisation
// through the spec's pipeline (see compiledSpec.key and
// docs/CACHING.md). The CPU layout is part of the key because two
// specs with equal vectors but different port topologies are different
// simulations; the family string alone does not pin it for the generic
// "streamN"/"sectionN" shapes.
type cacheKey struct {
	family   string
	m, s, nc int
	cpus     string
	vec      string
}

// packInts encodes a vector as a compact varint string for use as a
// map-key component.
func packInts(v []int) string {
	b := make([]byte, 0, 2*len(v))
	for _, x := range v {
		b = binary.AppendVarint(b, int64(x))
	}
	return string(b)
}

// unpackInts inverts packInts (differential tests reconstruct cached
// configurations from their keys).
func unpackInts(s string) []int {
	b := []byte(s)
	var out []int
	for len(b) > 0 {
		x, n := binary.Varint(b)
		if n <= 0 {
			panic("sweep: corrupt packed vector")
		}
		out = append(out, int(x))
		b = b[n:]
	}
	return out
}

// shard spreads keys over the cache shards with an FNV-style mix.
func (k cacheKey) shard() int {
	h := uint64(2166136261)
	mix := func(v int) {
		h ^= uint64(uint32(v))
		h *= 16777619
	}
	for i := 0; i < len(k.family); i++ {
		mix(int(k.family[i]))
	}
	mix(k.m)
	mix(k.s)
	mix(k.nc)
	for i := 0; i < len(k.cpus); i++ {
		mix(int(k.cpus[i]))
	}
	for i := 0; i < len(k.vec); i++ {
		mix(int(k.vec[i]))
	}
	return int(h % cacheShardCount)
}

const cacheShardCount = 16

// bwCache is a sharded, size-bounded memoization cache of cyclic-state
// bandwidths. Sharding keeps lock contention off the workers' hot
// path; eviction is generational — a full shard is dropped wholesale
// rather than tracking recency, which is cheap and, because cached
// values are pure functions of the key, only ever costs a recompute.
// All configuration families share the shards and the size budget.
type bwCache struct {
	perShard int
	shards   [cacheShardCount]bwShard
}

type bwShard struct {
	mu sync.Mutex
	m  map[cacheKey]rat.Rational
}

// newBWCache builds a cache bounded at roughly size entries in total.
func newBWCache(size int) *bwCache {
	per := size / cacheShardCount
	if per < 1 {
		per = 1
	}
	return &bwCache{perShard: per}
}

func (c *bwCache) get(k cacheKey) (rat.Rational, bool) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (c *bwCache) put(k cacheKey, v rat.Rational) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= c.perShard {
		s.m = make(map[cacheKey]rat.Rational, c.perShard)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Len counts the entries currently cached across all shards.
func (c *bwCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
