package sweep

import (
	"sync"

	"ivm/internal/rat"
)

// pairKey identifies one cyclic steady state of the sectionless pair
// configuration, in canonical (orbit-minimal) form.
type pairKey struct {
	M, NC, D1, D2, B2 int
}

// shard spreads keys over the cache shards with an FNV-style mix.
func (k pairKey) shard() int {
	h := uint64(2166136261)
	for _, v := range [5]int{k.M, k.NC, k.D1, k.D2, k.B2} {
		h ^= uint64(uint32(v))
		h *= 16777619
	}
	return int(h % cacheShardCount)
}

const cacheShardCount = 16

// bwCache is a sharded, size-bounded memoization cache of cyclic-state
// bandwidths. Sharding keeps lock contention off the workers' hot
// path; eviction is generational — a full shard is dropped wholesale
// rather than tracking recency, which is cheap and, because cached
// values are pure functions of the key, only ever costs a recompute.
type bwCache struct {
	perShard int
	shards   [cacheShardCount]bwShard
}

type bwShard struct {
	mu sync.Mutex
	m  map[pairKey]rat.Rational
}

// newBWCache builds a cache bounded at roughly size entries in total.
func newBWCache(size int) *bwCache {
	per := size / cacheShardCount
	if per < 1 {
		per = 1
	}
	return &bwCache{perShard: per}
}

func (c *bwCache) get(k pairKey) (rat.Rational, bool) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (c *bwCache) put(k pairKey, v rat.Rational) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= c.perShard {
		s.m = make(map[pairKey]rat.Rational, c.perShard)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Len counts the entries currently cached across all shards.
func (c *bwCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
