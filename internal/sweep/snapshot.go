package sweep

// Engine observability: a JSON-serialisable snapshot of the engine's
// cumulative counters plus the per-pool-slot work distribution, the
// raw material of the BENCH_*.json perf trajectory and the CLIs'
// -metrics-out output.

// WorkerStat is the cumulative work of one pool slot (slot k of every
// sweep call maps to entry k; the single-worker fallback is slot 0).
type WorkerStat struct {
	Worker int   `json:"worker"`
	Items  int64 `json:"items"`   // work items (pair/triple sweep units) completed
	Steps  int64 `json:"steps"`   // simulator clocks stepped by this slot
	BusyNS int64 `json:"busy_ns"` // wall time spent inside work items
	// Utilization is BusyNS over the engine's total sweep wall time,
	// clamped to [0,1]: how busy this slot was while sweeps ran.
	Utilization float64 `json:"utilization"`
}

// Snapshot is the engine's full observability view. All fields
// aggregate over every sweep the engine has run.
type Snapshot struct {
	Workers      int     `json:"workers"` // configured pool size
	Metrics      Metrics `json:"metrics"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// AnalyticHitRate is the fraction of starts the classifier gate
	// answered without simulation or cache traffic.
	AnalyticHitRate float64 `json:"analytic_hit_rate"`
	// Per-family hit rates, splitting CacheHitRate by configuration
	// kind (zero when that family saw no traffic).
	PairCacheHitRate    float64 `json:"pair_cache_hit_rate"`
	TripleCacheHitRate  float64 `json:"triple_cache_hit_rate"`
	SectionCacheHitRate float64 `json:"section_cache_hit_rate"`
	// FamilyHitRates carries every configuration family with traffic,
	// including generic N-stream families that have no flat field above.
	FamilyHitRates map[string]float64 `json:"family_hit_rates,omitempty"`
	// WallNS is wall time spent inside sweep calls; CycleDetectNS the
	// part spent in steady-state detection (summed across workers, so
	// it can exceed WallNS on a multi-core sweep).
	WallNS        int64 `json:"wall_ns"`
	CycleDetectNS int64 `json:"cycle_detect_ns"`
	// MeanCycleClocks and MeanCycleDetectNS are the steady-state
	// detection latency per simulated start, in simulator clocks
	// (lead + period) and wall nanoseconds.
	MeanCycleClocks   float64      `json:"mean_cycle_clocks"`
	MeanCycleDetectNS float64      `json:"mean_cycle_detect_ns"`
	PerWorker         []WorkerStat `json:"per_worker,omitempty"`
	// TimelineEvents holds the worker timeline when Options.Timeline
	// was set (absent otherwise); TimelineDropped counts events the
	// recorder's capacity bound lost. Readers built before these fields
	// existed ignore them.
	TimelineEvents  []TimelineEvent `json:"timeline_events,omitempty"`
	TimelineDropped int64           `json:"timeline_dropped,omitempty"`
	// Provenance holds the aggregated result-attribution view when
	// Options.Provenance was set (absent otherwise): per-family path
	// splits, per-theorem analytic hits, orbit-size histograms and the
	// top unexplained orbits. Readers built before this field existed
	// ignore it.
	Provenance *ProvenanceSnapshot `json:"provenance,omitempty"`
}

// Snapshot captures the engine's counters and per-worker utilisation.
// Safe to call concurrently with running sweeps; slots still mid-item
// report their work as of their last finished sweep.
func (e *Engine) Snapshot() Snapshot {
	m := e.Metrics()
	s := Snapshot{
		Workers:             e.workers(),
		Metrics:             m,
		CacheHitRate:        m.HitRate(),
		AnalyticHitRate:     m.AnalyticHitRate(),
		PairCacheHitRate:    m.PairHitRate(),
		TripleCacheHitRate:  m.TripleHitRate(),
		SectionCacheHitRate: m.SectionHitRate(),
		WallNS:              e.wallNS.Load(),
		CycleDetectNS:       e.cycleNS.Load(),
	}
	for name := range m.Families {
		if s.FamilyHitRates == nil {
			s.FamilyHitRates = make(map[string]float64)
		}
		s.FamilyHitRates[name] = m.FamilyHitRate(name)
	}
	if m.CyclesFound > 0 {
		s.MeanCycleClocks = float64(m.StepsSimulated) / float64(m.CyclesFound)
		s.MeanCycleDetectNS = float64(s.CycleDetectNS) / float64(m.CyclesFound)
	}
	e.mu.Lock()
	s.PerWorker = append([]WorkerStat(nil), e.workerTotals...)
	e.mu.Unlock()
	if tl := e.opt.Timeline; tl != nil {
		s.TimelineEvents = tl.Events()
		s.TimelineDropped = tl.Dropped()
	}
	if prov := e.opt.Provenance; prov != nil {
		ps := prov.Snapshot()
		s.Provenance = &ps
	}
	for i := range s.PerWorker {
		if s.WallNS > 0 {
			u := float64(s.PerWorker[i].BusyNS) / float64(s.WallNS)
			if u > 1 {
				u = 1
			}
			s.PerWorker[i].Utilization = u
		}
	}
	return s
}
