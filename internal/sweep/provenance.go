package sweep

// Result provenance: when Options.Provenance is set, the engine
// records WHICH of its three answer routes resolved every placement —
// the theorem-driven analytic gate, the canonical-key cache, or a
// (scalar or bit-packed) simulation — together with the evidence
// behind the answer: the theorem/equation identifier when the gate
// fired, the canonical key and observed orbit population on cache
// traffic, and the cycle length plus clocks simulated on misses. The
// recorder is nil-safe like Timeline: a detached (nil) recorder costs
// the hot path nothing and allocates nothing. The aggregated view
// (ProvenanceSnapshot) is what makes large censuses explainable — it
// names the per-family path split, the theorems doing the analytic
// work, the orbit-size distribution behind each cache hit rate, and
// the top unexplained orbits whose simulations were never reused (the
// diagnosis of the stream4 family's low hit rate; see
// docs/OBSERVABILITY.md).

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"ivm/internal/textplot"
)

// Path identifies the engine route that resolved one placement.
type Path int

// The provenance paths. Every placement an engine resolves takes
// exactly one of them, which is the conservation invariant the
// attribution tests pin: analytic + cache + sim-scalar + sim-packed
// equals the placements resolved, per configuration family.
const (
	// PathAnalytic: the theorem-driven classifier gate answered without
	// simulating or touching the cache.
	PathAnalytic Path = iota
	// PathCache: the canonical-key cache held the orbit's value.
	PathCache
	// PathSimScalar: simulated on the scalar reference kernel.
	PathSimScalar
	// PathSimPacked: simulated on the bit-packed bank-busy kernel.
	PathSimPacked
	numPaths
)

var pathNames = [...]string{
	PathAnalytic:  "analytic",
	PathCache:     "cache",
	PathSimScalar: "sim-scalar",
	PathSimPacked: "sim-packed",
}

// String names the path ("analytic", "cache", "sim-scalar",
// "sim-packed").
func (p Path) String() string {
	if p < 0 || int(p) >= len(pathNames) {
		return fmt.Sprintf("path(%d)", int(p))
	}
	return pathNames[p]
}

// DefaultProvenanceOrbits bounds the per-orbit attribution table of a
// recorder built by NewProvenance(0). Path and theorem counters stay
// exact past the bound; only new per-orbit rows are dropped (and
// counted in ProvenanceSnapshot.DroppedOrbits).
const DefaultProvenanceOrbits = 1 << 18

// Provenance is a bounded recorder of per-placement result provenance.
// All methods are safe for concurrent use and are no-ops on a nil
// receiver, which is how the engine runs unrecorded — the detached
// path adds no allocations (the overhead tests pin that).
type Provenance struct {
	mu        sync.Mutex
	maxOrbits int
	fams      map[string]*famProvenance
	dropped   int64
}

// famProvenance is one family's provenance aggregation.
type famProvenance struct {
	paths    [numPaths]int64
	clocks   int64 // lead + cycle clocks across this family's simulations
	theorems map[string]int64
	orbits   map[orbitKey]*orbitProvenance
}

// orbitKey identifies one canonical orbit inside a family: the memory
// shape plus the packed canonical configuration vector (the same
// coordinates cacheKey uses, minus the CPU layout, which the family's
// shape fixes for every sweep the CLIs run).
type orbitKey struct {
	m, s, nc int
	vec      string
}

// orbitProvenance is the observed population of one canonical orbit.
type orbitProvenance struct {
	vec          []int // canonical configuration vector (d_1..d_N, b_1..b_N)
	hits, misses int64
	cycleLen     int64 // steady-state period of the last simulation
	clocks       int64 // lead + cycle clocks across re-simulations
}

// NewProvenance builds a recorder tracking at most maxOrbits distinct
// canonical orbits (0 selects DefaultProvenanceOrbits); past the
// bound, path counters stay exact and further new orbits are only
// counted as dropped.
func NewProvenance(maxOrbits int) *Provenance {
	if maxOrbits <= 0 {
		maxOrbits = DefaultProvenanceOrbits
	}
	return &Provenance{maxOrbits: maxOrbits}
}

// family returns (creating on first use) one family's aggregation.
// Callers hold p.mu.
func (p *Provenance) family(name string) *famProvenance {
	if p.fams == nil {
		p.fams = make(map[string]*famProvenance)
	}
	f := p.fams[name]
	if f == nil {
		f = &famProvenance{theorems: make(map[string]int64)}
		p.fams[name] = f
	}
	return f
}

// orbit returns the orbit row for key, nil when the recorder is at its
// orbit capacity and the key is new. Callers hold p.mu.
func (p *Provenance) orbit(f *famProvenance, key orbitKey, vec []int) *orbitProvenance {
	if f.orbits == nil {
		f.orbits = make(map[orbitKey]*orbitProvenance)
	}
	o := f.orbits[key]
	if o == nil {
		total := 0
		for _, fam := range p.fams {
			total += len(fam.orbits)
		}
		if total >= p.maxOrbits {
			p.dropped++
			return nil
		}
		o = &orbitProvenance{vec: append([]int(nil), vec...)}
		f.orbits[key] = o
	}
	return o
}

// Analytic records a placement answered by the classifier gate under
// the given theorem/equation identifier (core.PairGate.TheoremID).
func (p *Provenance) Analytic(family, theorem string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	f := p.family(family)
	f.paths[PathAnalytic]++
	f.theorems[theorem]++
	p.mu.Unlock()
}

// CacheHit records a placement answered from the canonical-key cache;
// vec is the canonical configuration vector the key was built from.
func (p *Provenance) CacheHit(family string, m, s, nc int, vec []int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	f := p.family(family)
	f.paths[PathCache]++
	if o := p.orbit(f, orbitKey{m, s, nc, packInts(vec)}, vec); o != nil {
		o.hits++
	}
	p.mu.Unlock()
}

// Simulated records a placement that had to be simulated (a cache
// miss, or any placement when caching is disabled): the kernel it ran
// on, the canonical configuration vector that was simulated, and the
// detected steady state (cycle length and lead+cycle clocks stepped).
func (p *Provenance) Simulated(family string, m, s, nc int, vec []int, packed bool, cycleLen, clocks int64) {
	if p == nil {
		return
	}
	path := PathSimScalar
	if packed {
		path = PathSimPacked
	}
	p.mu.Lock()
	f := p.family(family)
	f.paths[path]++
	f.clocks += clocks
	if o := p.orbit(f, orbitKey{m, s, nc, packInts(vec)}, vec); o != nil {
		o.misses++
		o.cycleLen = cycleLen
		o.clocks += clocks
	}
	p.mu.Unlock()
}

// --- Aggregated snapshot ------------------------------------------------

// OrbitInfo is the observed population of one canonical orbit in a
// provenance snapshot: how many placements canonicalised onto its key,
// split into cache hits (reused simulations) and misses (simulations
// run), with the simulation cost attached.
type OrbitInfo struct {
	// M, S, NC and Vec pin the orbit's canonical representative: the
	// memory shape and the configuration vector (d_1..d_N, b_1..b_N).
	M   int   `json:"m"`
	S   int   `json:"s,omitempty"`
	NC  int   `json:"nc"`
	Vec []int `json:"vec"`
	// Hits and Misses are the orbit's observed cache traffic; Size is
	// their sum — the placements this orbit explains.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int64 `json:"size"`
	// CycleLength is the steady-state period of the orbit's last
	// simulation; Clocks the lead+cycle clocks stepped across all its
	// (re-)simulations. Both zero for orbits only ever hit.
	CycleLength int64 `json:"cycle_length,omitempty"`
	Clocks      int64 `json:"clocks,omitempty"`
}

// Label renders the orbit's canonical representative compactly, e.g.
// "m=13 nc=4 d=[1 6] b=[0 7]".
func (o OrbitInfo) Label() string {
	n := len(o.Vec) / 2
	s := fmt.Sprintf("m=%d", o.M)
	if o.S > 0 {
		s += fmt.Sprintf(" s=%d", o.S)
	}
	return fmt.Sprintf("%s nc=%d d=%v b=%v", s, o.NC, o.Vec[:n], o.Vec[n:])
}

// OrbitSizeBucket is one bar of the orbit-size histogram: how many
// orbits were observed with a population in [Lo, Hi], and how many
// placements those orbits explain together.
type OrbitSizeBucket struct {
	Lo         int64 `json:"lo"`
	Hi         int64 `json:"hi"`
	Orbits     int64 `json:"orbits"`
	Placements int64 `json:"placements"`
}

// FamilyProvenance is the aggregated provenance of one configuration
// family. Resolved = Analytic + CacheHits + SimScalar + SimPacked is
// the conservation invariant: every placement the engine resolved for
// this family took exactly one path.
type FamilyProvenance struct {
	Analytic  int64 `json:"analytic"`
	CacheHits int64 `json:"cache_hits"`
	SimScalar int64 `json:"sim_scalar"`
	SimPacked int64 `json:"sim_packed"`
	Resolved  int64 `json:"resolved"`
	// SimClocks is the total lead+cycle clocks this family's
	// simulations stepped.
	SimClocks int64 `json:"sim_clocks,omitempty"`
	// Theorems counts analytic answers by theorem/equation identifier
	// ("theorem-2", "theorem-3", "eq-29").
	Theorems map[string]int64 `json:"theorems,omitempty"`
	// Orbits counts the distinct canonical orbits observed;
	// SingletonOrbits the ones observed exactly once — simulated but
	// never reused, the population behind a low hit rate.
	Orbits          int64 `json:"orbits"`
	SingletonOrbits int64 `json:"singleton_orbits"`
	// MeanOrbitSize is placements-with-orbit-rows over Orbits.
	MeanOrbitSize float64 `json:"mean_orbit_size,omitempty"`
	// OrbitSizes is the orbit-size histogram in power-of-two buckets.
	OrbitSizes []OrbitSizeBucket `json:"orbit_size_histogram,omitempty"`
	// TopOrbits are the largest orbits by explained placements;
	// UnexplainedOrbits the most re-simulated (then most expensive)
	// orbits — the miss-attribution view. Both capped at TopOrbitK.
	TopOrbits         []OrbitInfo `json:"top_orbits,omitempty"`
	UnexplainedOrbits []OrbitInfo `json:"unexplained_orbits,omitempty"`
}

// TopOrbitK caps the per-family top-orbit and unexplained-orbit lists
// of a provenance snapshot.
const TopOrbitK = 8

// ProvenanceSnapshot is the aggregated attribution view of one
// recorder, JSON-serialisable into metrics snapshots.
type ProvenanceSnapshot struct {
	// Families maps ConfigSpec.Family to its aggregation.
	Families map[string]FamilyProvenance `json:"families"`
	// DroppedOrbits counts canonical orbits past the recorder's
	// capacity bound whose per-orbit rows were not tracked (the path
	// counters above remain exact regardless).
	DroppedOrbits int64 `json:"dropped_orbits,omitempty"`
}

// Snapshot aggregates the recorder into its attribution view. Safe to
// call concurrently with recording; nil recorders return the zero
// snapshot.
func (p *Provenance) Snapshot() ProvenanceSnapshot {
	if p == nil {
		return ProvenanceSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProvenanceSnapshot{DroppedOrbits: p.dropped}
	for name, f := range p.fams {
		fp := FamilyProvenance{
			Analytic:  f.paths[PathAnalytic],
			CacheHits: f.paths[PathCache],
			SimScalar: f.paths[PathSimScalar],
			SimPacked: f.paths[PathSimPacked],
			SimClocks: f.clocks,
		}
		fp.Resolved = fp.Analytic + fp.CacheHits + fp.SimScalar + fp.SimPacked
		for thm, n := range f.theorems {
			if fp.Theorems == nil {
				fp.Theorems = make(map[string]int64)
			}
			fp.Theorems[thm] = n
		}
		orbits := make([]OrbitInfo, 0, len(f.orbits))
		for key, o := range f.orbits {
			orbits = append(orbits, OrbitInfo{
				M: key.m, S: key.s, NC: key.nc, Vec: o.vec,
				Hits: o.hits, Misses: o.misses, Size: o.hits + o.misses,
				CycleLength: o.cycleLen, Clocks: o.clocks,
			})
		}
		fp.Orbits = int64(len(orbits))
		var placements int64
		for _, o := range orbits {
			placements += o.Size
			if o.Size == 1 {
				fp.SingletonOrbits++
			}
		}
		if fp.Orbits > 0 {
			fp.MeanOrbitSize = float64(placements) / float64(fp.Orbits)
		}
		fp.OrbitSizes = orbitSizeHistogram(orbits)
		fp.TopOrbits = topOrbits(orbits, TopOrbitK, func(a, b OrbitInfo) bool {
			if a.Size != b.Size {
				return a.Size > b.Size
			}
			return orbitLess(a, b)
		})
		unexplained := orbits[:0]
		for _, o := range orbits {
			if o.Misses > 0 {
				unexplained = append(unexplained, o)
			}
		}
		fp.UnexplainedOrbits = topOrbits(unexplained, TopOrbitK, func(a, b OrbitInfo) bool {
			if a.Misses != b.Misses {
				return a.Misses > b.Misses
			}
			if a.Clocks != b.Clocks {
				return a.Clocks > b.Clocks
			}
			return orbitLess(a, b)
		})
		if s.Families == nil {
			s.Families = make(map[string]FamilyProvenance)
		}
		s.Families[name] = fp
	}
	return s
}

// orbitLess is the deterministic tie-break ordering on orbits: by
// memory shape, then canonical vector.
func orbitLess(a, b OrbitInfo) bool {
	if a.M != b.M {
		return a.M < b.M
	}
	if a.S != b.S {
		return a.S < b.S
	}
	if a.NC != b.NC {
		return a.NC < b.NC
	}
	for i := range a.Vec {
		if i >= len(b.Vec) {
			return false
		}
		if a.Vec[i] != b.Vec[i] {
			return a.Vec[i] < b.Vec[i]
		}
	}
	return len(a.Vec) < len(b.Vec)
}

// topOrbits sorts a copy of orbits by less and returns the first k.
func topOrbits(orbits []OrbitInfo, k int, less func(a, b OrbitInfo) bool) []OrbitInfo {
	out := append([]OrbitInfo(nil), orbits...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	if len(out) > k {
		out = out[:k]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// orbitSizeHistogram buckets orbit populations into power-of-two bins
// (1, 2, 3-4, 5-8, ...).
func orbitSizeHistogram(orbits []OrbitInfo) []OrbitSizeBucket {
	if len(orbits) == 0 {
		return nil
	}
	var buckets []OrbitSizeBucket
	find := func(size int64) *OrbitSizeBucket {
		lo, hi := int64(1), int64(1)
		for size > hi {
			lo = hi + 1
			hi *= 2
		}
		for i := range buckets {
			if buckets[i].Lo == lo {
				return &buckets[i]
			}
		}
		buckets = append(buckets, OrbitSizeBucket{Lo: lo, Hi: hi})
		return &buckets[len(buckets)-1]
	}
	for _, o := range orbits {
		b := find(o.Size)
		b.Orbits++
		b.Placements += o.Size
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Lo < buckets[j].Lo })
	return buckets
}

// FamilyNames lists the snapshot's family names, legacy families first
// (matching the Metrics rendering order), the rest sorted.
func (s ProvenanceSnapshot) FamilyNames() []string {
	fams := make(map[string]FamilyMetrics, len(s.Families))
	for name := range s.Families {
		fams[name] = FamilyMetrics{}
	}
	return familyOrder(fams, false)
}

// pct renders a share as "12.3%", "-" when the denominator is zero.
func pct(n, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// Table renders the attribution report as aligned text tables: the
// per-family path split, the per-theorem analytic hit table, and per
// family the orbit-size histogram plus the top unexplained orbits.
func (s ProvenanceSnapshot) Table() string {
	out := "result provenance (per-family path split):\n"
	t := &textplot.Table{Header: []string{"family", "resolved", "analytic", "cache", "simulated", "orbits", "singleton", "mean orbit"}}
	for _, name := range s.FamilyNames() {
		f := s.Families[name]
		sim := f.SimScalar + f.SimPacked
		t.Add(name, f.Resolved, pct(f.Analytic, f.Resolved), pct(f.CacheHits, f.Resolved),
			pct(sim, f.Resolved), f.Orbits, pct(f.SingletonOrbits, f.Orbits),
			fmt.Sprintf("%.1f", f.MeanOrbitSize))
	}
	out += t.String()
	thm := &textplot.Table{Header: []string{"family", "theorem", "analytic hits"}}
	rows := 0
	for _, name := range s.FamilyNames() {
		f := s.Families[name]
		ids := make([]string, 0, len(f.Theorems))
		for id := range f.Theorems {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			thm.Add(name, id, f.Theorems[id])
			rows++
		}
	}
	if rows > 0 {
		out += "\nanalytic attribution (per-theorem hits):\n" + thm.String()
	}
	for _, name := range s.FamilyNames() {
		f := s.Families[name]
		if len(f.OrbitSizes) == 0 {
			continue
		}
		out += fmt.Sprintf("\n%s orbit sizes (placements per canonical key):\n", name)
		h := &textplot.Table{Header: []string{"orbit size", "orbits", "placements"}}
		for _, b := range f.OrbitSizes {
			label := strconv.FormatInt(b.Lo, 10)
			if b.Hi > b.Lo {
				label = fmt.Sprintf("%d-%d", b.Lo, b.Hi)
			}
			h.Add(label, b.Orbits, b.Placements)
		}
		out += h.String()
		if len(f.UnexplainedOrbits) > 0 {
			out += fmt.Sprintf("%s top unexplained orbits (most re-simulated, then most clocks):\n", name)
			u := &textplot.Table{Header: []string{"orbit", "hits", "misses", "cycle", "clocks"}}
			for _, o := range f.UnexplainedOrbits {
				u.Add(o.Label(), o.Hits, o.Misses, o.CycleLength, o.Clocks)
			}
			out += u.String()
		}
	}
	if s.DroppedOrbits > 0 {
		out += fmt.Sprintf("(%d orbits past the recorder capacity were not tracked per-orbit)\n", s.DroppedOrbits)
	}
	return out
}

// WriteCSV exports the snapshot in long form: one row per (family,
// record kind, label) with the counts attached. Kinds are "path"
// (label: analytic/cache/sim-scalar/sim-packed), "theorem" (label:
// the theorem identifier), "orbit_size" (label: the bucket), and
// "unexplained_orbit" (label: the canonical representative).
func (s ProvenanceSnapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"family", "kind", "label", "count", "placements", "clocks"}); err != nil {
		return err
	}
	row := func(family, kind, label string, count, placements, clocks int64) {
		cw.Write([]string{family, kind, label, //nolint:errcheck // Flush reports
			strconv.FormatInt(count, 10), strconv.FormatInt(placements, 10), strconv.FormatInt(clocks, 10)})
	}
	for _, name := range s.FamilyNames() {
		f := s.Families[name]
		row(name, "path", PathAnalytic.String(), f.Analytic, f.Analytic, 0)
		row(name, "path", PathCache.String(), f.CacheHits, f.CacheHits, 0)
		row(name, "path", PathSimScalar.String(), f.SimScalar, f.SimScalar, 0)
		row(name, "path", PathSimPacked.String(), f.SimPacked, f.SimPacked, f.SimClocks)
		ids := make([]string, 0, len(f.Theorems))
		for id := range f.Theorems {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			row(name, "theorem", id, f.Theorems[id], f.Theorems[id], 0)
		}
		for _, b := range f.OrbitSizes {
			label := strconv.FormatInt(b.Lo, 10)
			if b.Hi > b.Lo {
				label = fmt.Sprintf("%d-%d", b.Lo, b.Hi)
			}
			row(name, "orbit_size", label, b.Orbits, b.Placements, 0)
		}
		for _, o := range f.UnexplainedOrbits {
			row(name, "unexplained_orbit", o.Label(), o.Misses, o.Size, o.Clocks)
		}
	}
	cw.Flush()
	return cw.Error()
}
