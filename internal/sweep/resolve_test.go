package sweep

import (
	"testing"

	"ivm/internal/rat"
)

// TestResolvePaths pins the three answer routes and their attribution:
// an analytically provable pair resolves as PathAnalytic with its
// theorem identifier, a census placement simulates first (PathSimPacked
// under the default kernel) and then hits the cache, and every route
// returns the value the cold sequential path computes.
func TestResolvePaths(t *testing.T) {
	eng := NewEngine(Options{Workers: 1})

	// m=16 nc=4 d1=1 d2=2 is a unique-barrier pair: the gate answers
	// every placement under eq-29.
	pair := PairSpec(16, 4, 1, 2)
	pair.Streams[1].Sweep = false
	pair.Streams[1].B = 5
	res, err := eng.Resolve(pair)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathAnalytic || res.Theorem != "eq-29" {
		t.Fatalf("gated pair: path %v theorem %q, want analytic under eq-29", res.Path, res.Theorem)
	}
	if res.Family != "pair" {
		t.Fatalf("gated pair family %q", res.Family)
	}
	want := rat.New(3, 2)
	if !res.BW.Equal(want) {
		t.Fatalf("gated pair b_eff %s, want %s", res.BW, want)
	}

	// A triple census placement has no gate: first resolution
	// simulates, the second hits the cache, both byte-identical to the
	// cold path.
	spec := TripleCensusSpec(13, 4, [3]int{1, 2, 6}, [3]int{0, 1, 2})
	cold := simulateSpecVec(spec, []int{1, 2, 6, 0, 1, 2})
	first, err := eng.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Path != PathSimPacked {
		t.Fatalf("first census resolve path %v, want sim-packed", first.Path)
	}
	if first.CycleLength <= 0 || first.Clocks < first.CycleLength {
		t.Fatalf("simulated resolve cost cycle=%d clocks=%d", first.CycleLength, first.Clocks)
	}
	if len(first.Canonical) != 6 {
		t.Fatalf("simulated resolve canonical %v", first.Canonical)
	}
	if !first.BW.Equal(cold) {
		t.Fatalf("simulated resolve b_eff %s, cold path %s", first.BW, cold)
	}
	second, err := eng.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Path != PathCache {
		t.Fatalf("second census resolve path %v, want cache", second.Path)
	}
	if !second.BW.Equal(cold) {
		t.Fatalf("cached resolve b_eff %s, cold path %s", second.BW, cold)
	}
	// The cache hit returns the same orbit representative.
	if len(second.Canonical) != len(first.Canonical) {
		t.Fatalf("canonical changed across hit: %v vs %v", first.Canonical, second.Canonical)
	}
	for i := range first.Canonical {
		if first.Canonical[i] != second.Canonical[i] {
			t.Fatalf("canonical changed across hit: %v vs %v", first.Canonical, second.Canonical)
		}
	}

	// A translate of the placement canonicalises onto the same orbit
	// and hits too, with the same value.
	translated := TripleCensusSpec(13, 4, [3]int{1, 2, 6}, [3]int{5, 6, 7})
	tr, err := eng.Resolve(translated)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Path != PathCache || !tr.BW.Equal(cold) {
		t.Fatalf("translated resolve path %v b_eff %s, want cache %s", tr.Path, tr.BW, cold)
	}
}

// TestResolveBatchOrderAndSplit pins batch semantics: results come
// back in input order and match per-spec Resolve answers.
func TestResolveBatchOrderAndSplit(t *testing.T) {
	specs := []ConfigSpec{
		TripleCensusSpec(13, 4, [3]int{1, 2, 6}, [3]int{0, 1, 2}),
		TripleCensusSpec(13, 4, [3]int{1, 2, 6}, [3]int{1, 2, 3}), // translate of the first
		TripleCensusSpec(13, 4, [3]int{1, 3, 5}, [3]int{0, 1, 2}),
	}
	eng := NewEngine(Options{Workers: 2})
	got, err := eng.ResolveBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("batch returned %d results for %d specs", len(got), len(specs))
	}
	for i, spec := range specs {
		cold := SweepSpec(spec)
		if !got[i].BW.Equal(cold.SimMin) || !cold.SimMin.Equal(cold.SimMax) {
			t.Fatalf("batch item %d: b_eff %s, cold %s..%s", i, got[i].BW, cold.SimMin, cold.SimMax)
		}
	}
}

// TestResolveRejectsBadSpecs pins the validation surface: resolution
// returns errors (never panics) on swept streams, out-of-range
// coordinates and invalid shapes.
func TestResolveRejectsBadSpecs(t *testing.T) {
	eng := NewEngine(Options{Workers: 1})
	bad := []ConfigSpec{
		PairSpec(16, 4, 1, 2), // stream 2 swept
		{M: 16, NC: 4, Streams: []Stream{{D: 1}, {D: 17, CPU: 1}}},       // d out of range
		{M: 16, NC: 4, Streams: []Stream{{D: 1}, {D: 2, B: 16, CPU: 1}}}, // b out of range
		{M: 16, NC: 4, Streams: []Stream{{D: -1}, {D: 2, CPU: 1}}},       // negative d
		{M: 0, NC: 4, Streams: []Stream{{D: 1}}},                         // no banks
		{M: 12, S: 3, NC: 4},                                             // no streams
	}
	for i, spec := range bad {
		if _, err := eng.Resolve(spec); err == nil {
			t.Errorf("bad spec %d resolved without error", i)
		}
	}
	// A batch with one bad spec resolves nothing.
	batch := []ConfigSpec{
		TripleCensusSpec(13, 4, [3]int{1, 2, 6}, [3]int{0, 1, 2}),
		PairSpec(16, 4, 1, 2),
	}
	if _, err := eng.ResolveBatch(batch); err == nil {
		t.Error("batch with a swept stream resolved without error")
	}
	if n := eng.Metrics().PairsSwept; n != 0 {
		t.Errorf("failed batch still resolved %d units", n)
	}
}
