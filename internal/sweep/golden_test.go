package sweep

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden byte-identity record. The files under testdata/ were captured
// from the pre-ConfigSpec implementation (the three hand-written
// pair/triple/section sweep families); these tests hold the generic
// spec-driven engine to byte-identical rendered output, so any drift
// in simulation order, placement enumeration, canonicalisation or
// table rendering fails loudly. Regenerate (only after an intentional
// output change) with
//
//	go test ./internal/sweep -run TestGolden -update
//
// and review the diff before committing.
var updateGolden = flag.Bool("update", false, "rewrite the sweep golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from the pre-refactor golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// censusText renders a fixed-placement triple census in a stable
// format owned by this test (the census has no table renderer).
func censusText(results []TripleResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "(%d,%d,%d) bw=%s bound=%s tight=%v\n",
			r.D[0], r.D[1], r.D[2], r.Bandwidth, r.Bound, r.BoundTight)
	}
	return b.String()
}

// The sequential reference paths must keep producing the exact tables
// the three pre-refactor sweep families produced.
func TestGoldenSequentialSweeps(t *testing.T) {
	checkGolden(t, "pair_grid_12_3.golden", Table(Grid(12, 3)))
	checkGolden(t, "pair_grid_16_4.golden", Table(Grid(16, 4)))
	checkGolden(t, "triple_grid_6_2.golden", TripleGridTable(TripleGrid(6, 2)))
	checkGolden(t, "triple_census_8_2.golden", censusText(SweepTriples(8, 2)))
	checkGolden(t, "section_grid_12_3_3.golden", SectionTable(SectionGrid(12, 3, 3)))
	checkGolden(t, "section_grid_16_4_4.golden", SectionTable(SectionGrid(16, 4, 4)))
	checkGolden(t, "nstream_grid_4_2_4.golden", SpecTable(NStreamGrid(4, 2, 4)))
}

// The parallel, cached engine must reproduce the same goldens through
// the generic path, for several worker/cache configurations.
func TestGoldenEngineSweeps(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are captured from the sequential reference path")
	}
	for _, opt := range []Options{
		{Workers: 1, CacheSize: -1},
		{Workers: 4},
	} {
		eng := NewEngine(opt)
		checkGolden(t, "pair_grid_12_3.golden", Table(eng.Grid(12, 3)))
		checkGolden(t, "pair_grid_16_4.golden", Table(eng.Grid(16, 4)))
		checkGolden(t, "triple_grid_6_2.golden", TripleGridTable(eng.TripleGrid(6, 2)))
		checkGolden(t, "triple_census_8_2.golden", censusText(eng.Triples(8, 2)))
		checkGolden(t, "section_grid_12_3_3.golden", SectionTable(eng.SectionGrid(12, 3, 3)))
		checkGolden(t, "section_grid_16_4_4.golden", SectionTable(eng.SectionGrid(16, 4, 4)))
		checkGolden(t, "nstream_grid_4_2_4.golden", SpecTable(eng.NStreamGrid(4, 2, 4)))
	}
}

// TestGoldenFastPathOnOff is the regression pin for the two speed
// paths: every golden — pair, triple, section and N-stream — must be
// byte-identical with the analytic gate and the packed kernel toggled
// through all four combinations. Simulation is authoritative; neither
// fast path may change a single output byte.
func TestGoldenFastPathOnOff(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are captured from the sequential reference path")
	}
	on, off := true, false
	for _, tc := range []struct {
		name              string
		analytic, kernelP *bool
	}{
		{"analytic_on_packed_on", &on, &on},
		{"analytic_on_packed_off", &on, &off},
		{"analytic_off_packed_on", &off, &on},
		{"analytic_off_packed_off", &off, &off},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(Options{Workers: 4, Analytic: tc.analytic, PackedKernel: tc.kernelP})
			checkGolden(t, "pair_grid_12_3.golden", Table(eng.Grid(12, 3)))
			checkGolden(t, "pair_grid_16_4.golden", Table(eng.Grid(16, 4)))
			checkGolden(t, "triple_grid_6_2.golden", TripleGridTable(eng.TripleGrid(6, 2)))
			checkGolden(t, "triple_census_8_2.golden", censusText(eng.Triples(8, 2)))
			checkGolden(t, "section_grid_12_3_3.golden", SectionTable(eng.SectionGrid(12, 3, 3)))
			checkGolden(t, "section_grid_16_4_4.golden", SectionTable(eng.SectionGrid(16, 4, 4)))
			checkGolden(t, "nstream_grid_4_2_4.golden", SpecTable(eng.NStreamGrid(4, 2, 4)))
		})
	}
}
