package sweep

// Cache persistence seam: the engine's in-RAM canonical-key cache can
// be drained to and seeded from CacheRecords — the portable, fully
// unpacked form of one cache entry. internal/cachestore appends the
// records the CacheSink emits to an on-disk log and feeds them back
// through SeedCache on the next start, which is how ivmserved warm
// loads a prior sweep's simulations (docs/SERVING.md). The seam lives
// here, not in cachestore, so internal/sweep stays free of a store
// dependency (cachestore imports sweep), mirroring the ProgressSink
// indirection.

import (
	"fmt"
	"sort"

	"ivm/internal/rat"
)

// CacheRecord is one cyclic-state cache entry in portable form: the
// configuration family, memory shape, structural CPU layout, the
// CANONICAL configuration vector (d_1..d_N, b_1..b_N) — records always
// hold orbit representatives, never raw placements — and the orbit's
// effective bandwidth. The (Family, M, S, NC, CPUs, Vec) tuple is the
// content address: equal tuples are the same simulation by
// construction, so stores deduplicate on it.
type CacheRecord struct {
	// Family is the configuration family (ConfigSpec.Family).
	Family string
	// M, S and NC are the memory shape: banks, sections (0 when
	// sectionless) and bank busy time.
	M, S, NC int
	// CPUs is the per-stream issuing CPU index, in stream order.
	CPUs []int
	// Vec is the canonical configuration vector (d_1..d_N, b_1..b_N).
	Vec []int
	// BW is the orbit's effective bandwidth in lowest terms.
	BW rat.Rational
}

// Validate checks the record's shape invariants — the ones key
// construction and replay rely on, not full spec validation (a record
// does not know which streams were swept).
func (r CacheRecord) Validate() error {
	if r.Family == "" {
		return fmt.Errorf("cache record: empty family")
	}
	if r.M <= 0 || r.NC <= 0 || r.S < 0 {
		return fmt.Errorf("cache record: shape m=%d s=%d nc=%d", r.M, r.S, r.NC)
	}
	if len(r.CPUs) == 0 || len(r.Vec) != 2*len(r.CPUs) {
		return fmt.Errorf("cache record: %d cpus, %d vector elements", len(r.CPUs), len(r.Vec))
	}
	if r.BW.Den <= 0 {
		return fmt.Errorf("cache record: bandwidth %d/%d", r.BW.Num, r.BW.Den)
	}
	return nil
}

// key builds the record's in-RAM cache key.
func (r CacheRecord) key() cacheKey {
	return cacheKey{
		family: r.Family,
		m:      r.M,
		s:      r.S,
		nc:     r.NC,
		cpus:   packInts(r.CPUs),
		vec:    packInts(r.Vec),
	}
}

// CacheSink receives one CacheRecord per newly simulated canonical
// orbit (see Options.CacheSink). It is implemented by
// cachestore.Store; implementations must be safe for concurrent use —
// the engine's workers call Put from their goroutines.
type CacheSink interface {
	// Put persists one record. Errors are the sink's to surface (the
	// hot path does not check them); Store exposes its last append
	// error through Health.
	Put(rec CacheRecord)
}

// SeedCache loads one record into the engine's in-RAM cache without
// re-simulating, so a warm start answers the record's whole orbit with
// path=cache. Records are trusted (they come from this engine's own
// CacheSink via a store that checksums its log); only shape invariants
// are checked. Seeding does not re-emit to the CacheSink and is a
// no-op error when caching is disabled.
func (e *Engine) SeedCache(rec CacheRecord) error {
	if e.cache == nil {
		return fmt.Errorf("sweep: seeding a cache-disabled engine")
	}
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("sweep: %v", err)
	}
	e.cache.put(rec.key(), rec.BW)
	return nil
}

// CacheRecords drains the engine's in-RAM cache into portable records,
// sorted deterministically (family, shape, CPU layout, vector), for
// ivmsweep -cache-export. Analytically gated placements never enter
// the cache, so an export holds exactly the simulated orbits — which
// is complete for serving, because a served query gates the same
// placements analytically.
func (e *Engine) CacheRecords() []CacheRecord {
	if e.cache == nil {
		return nil
	}
	var out []CacheRecord
	for i := range e.cache.shards {
		s := &e.cache.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			out = append(out, CacheRecord{
				Family: k.family,
				M:      k.m, S: k.s, NC: k.nc,
				CPUs: unpackInts(k.cpus),
				Vec:  unpackInts(k.vec),
				BW:   v,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// less is the deterministic export ordering on records.
func (r CacheRecord) less(o CacheRecord) bool {
	if r.Family != o.Family {
		return r.Family < o.Family
	}
	if r.M != o.M {
		return r.M < o.M
	}
	if r.S != o.S {
		return r.S < o.S
	}
	if r.NC != o.NC {
		return r.NC < o.NC
	}
	if c := intsCmp(r.CPUs, o.CPUs); c != 0 {
		return c < 0
	}
	return intsCmp(r.Vec, o.Vec) < 0
}

// intsCmp orders int slices lexicographically, shorter first on ties.
func intsCmp(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
