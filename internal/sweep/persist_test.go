package sweep

import (
	"fmt"
	"sync"
	"testing"

	"ivm/internal/rat"
)

// recordingSink collects CacheSink emissions for inspection.
type recordingSink struct {
	mu   sync.Mutex
	recs []CacheRecord
}

// Put implements CacheSink.
func (s *recordingSink) Put(rec CacheRecord) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// TestCacheSinkEmitsSimulationsOnce pins the sink contract: one record
// per simulated canonical orbit, none for cache hits or analytic
// answers, and each record valid and canonical (re-seeding it
// reproduces the cached value).
func TestCacheSinkEmitsSimulationsOnce(t *testing.T) {
	sink := &recordingSink{}
	eng := NewEngine(Options{Workers: 1, CacheSink: sink})
	res := eng.SweepPair(13, 4, 1, 6)
	m := eng.Metrics()
	if m.CacheMisses == 0 {
		t.Fatal("sweep had no misses; sink test needs simulations")
	}
	if got, want := int64(len(sink.recs)), m.CacheMisses; got != want {
		t.Fatalf("sink saw %d records, engine missed %d times", got, want)
	}
	for i, rec := range sink.recs {
		if err := rec.Validate(); err != nil {
			t.Fatalf("sink record %d: %v", i, err)
		}
		if rec.Family != "pair" || rec.M != 13 || rec.NC != 4 {
			t.Fatalf("sink record %d: %+v", i, rec)
		}
	}

	// An analytically gated sweep emits nothing: the gate answers
	// before the cache.
	gatedSink := &recordingSink{}
	gated := NewEngine(Options{Workers: 1, CacheSink: gatedSink})
	gated.SweepPair(16, 4, 1, 2)
	if gm := gated.Metrics(); gm.AnalyticHits == 0 {
		t.Fatal("expected the 16/4 1(+)2 pair to gate analytically")
	}
	if len(gatedSink.recs) != 0 {
		t.Fatalf("analytic sweep emitted %d cache records", len(gatedSink.recs))
	}
	_ = res
}

// TestCacheRecordsSeedRoundTrip pins the persistence seam end to end
// in RAM: drain engine A's cache, seed engine B with it, and resolve
// the same work — every placement B resolves must come from the cache
// (or the gate) with values byte-identical to A's.
func TestCacheRecordsSeedRoundTrip(t *testing.T) {
	a := NewEngine(Options{Workers: 2})
	wantGrid := a.TripleGrid(7, 3)
	records := a.CacheRecords()
	if len(records) == 0 {
		t.Fatal("engine A cached nothing")
	}
	for i, rec := range records {
		if err := rec.Validate(); err != nil {
			t.Fatalf("exported record %d: %v", i, err)
		}
		if i > 0 && !records[i-1].less(rec) {
			t.Fatalf("export not strictly sorted at %d: %+v !< %+v", i, records[i-1], rec)
		}
	}

	b := NewEngine(Options{Workers: 2})
	for _, rec := range records {
		if err := b.SeedCache(rec); err != nil {
			t.Fatal(err)
		}
	}
	gotGrid := b.TripleGrid(7, 3)
	if len(gotGrid) != len(wantGrid) {
		t.Fatalf("grid sizes differ: %d vs %d", len(gotGrid), len(wantGrid))
	}
	for i := range wantGrid {
		got, want := fmt.Sprintf("%+v", gotGrid[i]), fmt.Sprintf("%+v", wantGrid[i])
		if got != want {
			t.Fatalf("seeded grid row %d differs:\n%s\nvs\n%s", i, got, want)
		}
	}
	if m := b.Metrics(); m.CacheMisses != 0 {
		t.Fatalf("seeded engine still missed %d times", m.CacheMisses)
	}
}

// TestSeedCacheRejectsBadRecords pins the seeding guard rails.
func TestSeedCacheRejectsBadRecords(t *testing.T) {
	eng := NewEngine(Options{Workers: 1})
	bad := []CacheRecord{
		{},
		{Family: "pair", M: 13, NC: 4, CPUs: []int{0, 1}, Vec: []int{1, 6, 0}}, // vec too short
		{Family: "pair", M: 0, NC: 4, CPUs: []int{0, 1}, Vec: []int{1, 6, 0, 0}},
		{Family: "pair", M: 13, NC: 4, CPUs: []int{0, 1}, Vec: []int{1, 6, 0, 0}}, // zero-den BW
	}
	for i, rec := range bad {
		if err := eng.SeedCache(rec); err == nil {
			t.Errorf("bad record %d seeded without error", i)
		}
	}
	disabled := NewEngine(Options{CacheSize: -1})
	ok := CacheRecord{Family: "pair", M: 13, NC: 4, CPUs: []int{0, 1},
		Vec: []int{1, 6, 0, 0}, BW: rat.New(1, 1)}
	if err := disabled.SeedCache(ok); err == nil {
		t.Error("cache-disabled engine accepted a seed")
	}
	if err := eng.SeedCache(ok); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}
