package sweep

import (
	"fmt"

	"ivm/internal/core"
	"ivm/internal/rat"
	"ivm/internal/stream"
	"ivm/internal/textplot"
)

// Section-system sweeps: two ports of one CPU against an (m, s, n_c)
// memory, validating the section results (Theorems 8/9, Eq. 31/32)
// exactly as Grid does for the sectionless theorems.

// SectionPairResult compares section-theory predictions and simulation
// for one distance pair.
type SectionPairResult struct {
	M, S, NC, D1, D2 int
	// TheoryFree: SectionConflictFree found a conflict-free start.
	TheoryFree bool
	// TheoryStart is that start offset (meaningful when TheoryFree).
	TheoryStart int
	// SimFreeStarts counts the relative starts whose cyclic state is
	// conflict free; SimStarts is the number swept.
	SimFreeStarts, SimStarts int
	// Agree: every claim that was checkable held (constructed starts
	// simulate to b_eff = 2; per-placement disjoint-set predictions
	// match).
	Agree bool
}

// SweepSectionPair sweeps all relative starts of one pair. The
// bandwidth resolver is the cold spec path; the engine substitutes the
// memo cache with the section-respecting canonicalisation pipeline.
func SweepSectionPair(m, s, nc, d1, d2 int) SectionPairResult {
	return sweepSectionPairWith(m, s, nc, d1, d2, coldTwoStreamBW(SectionPairSpec(m, s, nc, d1, d2)))
}

func sweepSectionPairWith(m, s, nc, d1, d2 int, bw func(b2 int) rat.Rational) SectionPairResult {
	res := SectionPairResult{M: m, S: s, NC: nc, D1: d1, D2: d2, Agree: true}
	res.TheoryFree, res.TheoryStart = core.SectionConflictFree(m, s, nc, d1, d2)
	two := rat.New(2, 1)
	s1 := stream.Infinite(m, 0, d1)
	for b2 := 0; b2 < m; b2++ {
		free := bw(b2).Equal(two)
		res.SimStarts++
		if free {
			res.SimFreeStarts++
		}
		// Per-placement check where the theory speaks: disjoint access
		// sets (only section conflicts possible).
		s2 := stream.Infinite(m, b2, d2)
		if !stream.Disjoint(s1, s2) || stream.SectionsDisjoint(s1, s2, s) {
			continue
		}
		if want := core.SectionDisjointSteadyFree(s, 0, d1, b2, d2); want != free {
			res.Agree = false
		}
	}
	// The constructed start must simulate conflict free.
	if res.TheoryFree && !bw(res.TheoryStart).Equal(two) {
		res.Agree = false
	}
	return res
}

// SectionGrid sweeps every non-self-conflicting pair of an (m, s, n_c)
// system. Sequential reference path; Engine.SectionGrid is the
// parallel equivalent.
func SectionGrid(m, s, nc int) []SectionPairResult {
	pairs := gridPairs(m, nc)
	out := make([]SectionPairResult, len(pairs))
	for i, p := range pairs {
		out[i] = SweepSectionPair(m, s, nc, p[0], p[1])
	}
	return out
}

// SectionTable renders a section grid.
func SectionTable(results []SectionPairResult) string {
	t := &textplot.Table{Header: []string{"d1", "d2", "theory free@", "sim free starts", "agree"}}
	for _, r := range results {
		at := "-"
		if r.TheoryFree {
			at = fmt.Sprintf("b2=%d", r.TheoryStart)
		}
		t.Add(r.D1, r.D2, at, fmt.Sprintf("%d/%d", r.SimFreeStarts, r.SimStarts), r.Agree)
	}
	return t.String()
}

// Three-stream sweeps live in triples.go.
