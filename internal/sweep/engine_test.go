package sweep

import (
	"reflect"
	"testing"

	"ivm/internal/modmath"
)

// The EXPERIMENTS.md cross-validation grid: every (m, n_c) the repo's
// strongest sequential check runs, now also the parallel acceptance
// grid.
var experimentsGrid = []struct{ m, nc int }{{8, 2}, {12, 3}, {13, 4}, {16, 4}}

// Engine.Grid must be indistinguishable from Grid — same results in
// the same order, hence byte-identical rendered tables — for any
// worker count and cache configuration.
func TestEngineGridByteIdenticalToSequential(t *testing.T) {
	for _, g := range experimentsGrid {
		seq := Grid(g.m, g.nc)
		seqTable := Table(seq)
		for _, opt := range []Options{
			{Workers: 1, CacheSize: -1},
			{Workers: 4},
			{Workers: 4, CacheSize: 64},
			{Workers: 3, CacheSize: -1, CollectStats: true},
		} {
			eng := NewEngine(opt)
			par := eng.Grid(g.m, g.nc)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("m=%d nc=%d opts %+v: parallel results differ from sequential", g.m, g.nc, opt)
			}
			if got := Table(par); got != seqTable {
				t.Fatalf("m=%d nc=%d opts %+v: rendered table differs", g.m, g.nc, opt)
			}
		}
	}
}

func TestEngineSectionGridMatchesSequential(t *testing.T) {
	seq := SectionGrid(12, 4, 3)
	eng := NewEngine(Options{Workers: 4})
	par := eng.SectionGrid(12, 4, 3)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel section grid differs from sequential")
	}
	if SectionTable(seq) != SectionTable(par) {
		t.Fatal("rendered section tables differ")
	}
}

func TestEngineTriplesMatchesSequential(t *testing.T) {
	seq := SweepTriples(8, 2)
	eng := NewEngine(Options{Workers: 4})
	par := eng.Triples(8, 2)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel triples differ from sequential")
	}
	if !reflect.DeepEqual(SummariseTriples(seq), SummariseTriples(par)) {
		t.Fatal("triple summaries differ")
	}
}

func TestEngineMetricsAccounting(t *testing.T) {
	eng := NewEngine(Options{Workers: 2})
	results := eng.Grid(12, 3)
	m := eng.Metrics()
	if m.PairsSwept != int64(len(results)) {
		t.Fatalf("PairsSwept = %d, want %d", m.PairsSwept, len(results))
	}
	starts := int64(0)
	for _, r := range results {
		starts += int64(r.Starts)
	}
	if m.AnalyticHits+m.CacheHits+m.CacheMisses != starts {
		t.Fatalf("analytic %d + hits %d + misses %d != %d starts",
			m.AnalyticHits, m.CacheHits, m.CacheMisses, starts)
	}
	if m.CacheMisses != m.CyclesFound {
		t.Fatalf("misses %d != cycles found %d: every miss simulates exactly one cycle", m.CacheMisses, m.CyclesFound)
	}
	if m.CacheHits == 0 {
		t.Fatal("the 12-bank grid has nontrivial unit orbits; expected cache hits")
	}
	if m.AnalyticHits == 0 {
		t.Fatal("the 12-bank grid is rich in conflict-free pairs; expected analytic hits")
	}
	if m.StepsSimulated == 0 || m.CacheEntries == 0 {
		t.Fatalf("metrics not accounted: %+v", m)
	}
	if hr := m.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", hr)
	}
	if tbl := m.Table(); tbl == "" {
		t.Fatal("empty metrics table")
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	eng := NewEngine(Options{Workers: 2, CacheSize: -1})
	eng.Grid(8, 2)
	m := eng.Metrics()
	if m.CacheHits != 0 || m.CacheMisses != 0 || m.CacheEntries != 0 {
		t.Fatalf("disabled cache still counted: %+v", m)
	}
	if m.CyclesFound == 0 {
		t.Fatal("no cycles counted")
	}
}

// A pathologically small cache must evict, not break: results stay
// identical and the entry count stays bounded.
func TestEngineCacheEviction(t *testing.T) {
	eng := NewEngine(Options{Workers: 2, CacheSize: 1})
	seq := Grid(12, 3)
	par := eng.Grid(12, 3)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("eviction changed results")
	}
	if n := eng.Metrics().CacheEntries; n > cacheShardCount {
		t.Fatalf("cache holds %d entries, bound is one per shard", n)
	}
}

// Engine.Stats returns a merged per-bank view covering exactly the
// simulated (non-cached) states.
func TestEngineCollectStats(t *testing.T) {
	eng := NewEngine(Options{Workers: 2, CacheSize: -1, CollectStats: true})
	eng.Grid(8, 2)
	col := eng.Stats()
	if col == nil {
		t.Fatal("CollectStats set but Stats() is nil")
	}
	if col.TotalGrants() == 0 || col.ObservedClocks() == 0 {
		t.Fatal("merged collector is empty")
	}
	// Without the option no collector is built.
	plain := NewEngine(Options{Workers: 2})
	plain.Grid(8, 2)
	if plain.Stats() != nil {
		t.Fatal("Stats() must be nil when CollectStats is off")
	}
}

// The canonical key is constant on every isomorphism orbit: composing
// a unit scaling j -> u·j with any translation j -> j + t (all t are
// allowed on a sectionless memory) lands on the same representative.
func TestCanonicalKeyOrbitInvariant(t *testing.T) {
	w := &worker{e: NewEngine(Options{})}
	pairKey := func(m, d1, d2, b1, b2 int) cacheKey {
		cs := w.compile(PairSpec(m, 4, d1, d2))
		return cs.key([]int{b1, b2})
	}
	for _, m := range []int{5, 12, 16} {
		units := modmath.Units(m)
		for d1 := 0; d1 < m; d1++ {
			for d2 := 0; d2 < m; d2 += 3 {
				for b2 := 0; b2 < m; b2 += 5 {
					want := pairKey(m, d1, d2, 0, b2)
					for _, u := range units {
						for tr := 0; tr < m; tr += 4 {
							got := pairKey(m, u*d1, u*d2, tr, u*b2+tr)
							if got != want {
								t.Fatalf("m=%d (%d,%d;0,%d) under u=%d t=%d: key %+v != %+v",
									m, d1, d2, b2, u, tr, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// Triple keys are constant on affine orbits of (d1,d2,d3; b1,b2,b3);
// section keys under the full unit group composed with translations by
// multiples of s by default, and only under the section-fixing
// subgroup when Options.SectionFullUnits is pointed at false.
func TestCanonicalKeyOrbitInvariantTripleAndSection(t *testing.T) {
	w := &worker{e: NewEngine(Options{})}
	off := false
	wSub := &worker{e: NewEngine(Options{SectionFullUnits: &off})}
	tripleKey := func(m, d1, d2, d3, b2, b3 int) cacheKey {
		cs := w.compile(TripleSpec(m, 2, [3]int{d1, d2, d3}))
		return cs.key([]int{0, b2, b3})
	}
	sectionKey := func(wk *worker, m, s, d1, d2, b1, b2 int) cacheKey {
		cs := wk.compile(SectionPairSpec(m, s, 2, d1, d2))
		return cs.key([]int{b1, b2})
	}
	for _, m := range []int{8, 12} {
		for d1 := 0; d1 < m; d1 += 2 {
			for d2 := 1; d2 < m; d2 += 3 {
				for b2 := 0; b2 < m; b2 += 3 {
					want := tripleKey(m, d1, d2, 3, b2, 5)
					for _, u := range modmath.Units(m) {
						if got := tripleKey(m, u*d1, u*d2, u*3, u*b2, u*5); got != want {
							t.Fatalf("m=%d triple (%d,%d,3;%d,5) scaled by %d: %+v != %+v",
								m, d1, d2, b2, u, got, want)
						}
					}
					s := 4
					wantFull := sectionKey(w, m, s, d1, d2, 0, b2)
					for _, u := range modmath.Units(m) {
						for tr := 0; tr < m; tr += s {
							if got := sectionKey(w, m, s, u*d1, u*d2, tr, u*b2+tr); got != wantFull {
								t.Fatalf("m=%d s=%d (%d,%d;0,%d) under u=%d t=%d: %+v != %+v",
									m, s, d1, d2, b2, u, tr, got, wantFull)
							}
						}
					}
					wantSub := sectionKey(wSub, m, s, d1, d2, 0, b2)
					for _, u := range modmath.UnitsFixing(m, s) {
						if got := sectionKey(wSub, m, s, u*d1, u*d2, 0, u*b2); got != wantSub {
							t.Fatalf("m=%d s=%d subgroup (%d,%d,%d) scaled by %d: %+v != %+v",
								m, s, d1, d2, b2, u, got, wantSub)
						}
					}
				}
			}
		}
	}
}
