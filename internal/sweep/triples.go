package sweep

import (
	"fmt"

	"ivm/internal/core"
	"ivm/internal/rat"
	"ivm/internal/stream"
	"ivm/internal/textplot"
)

// Three-stream sweeps. The paper analyses one and two streams; these
// sweeps quantify how far its pairwise reasoning carries for three by
// measuring every distance triple against the aggregate capacity
// bounds of core.MultiStreamBound. Two granularities exist:
//
//   - the census (SweepTriples / Engine.Triples): one fixed placement
//     (starts 0, 1, 2) per triple — cheap, the historical Fig. 8–10
//     regime scan;
//   - the start sweep (SweepTriple / TripleGrid / Engine.TripleGrid):
//     all m^2 relative placements (b1 = 0, b2, b3 in [0, m)) per
//     triple, the exact three-stream analogue of the pair sweep's
//     all-starts loop. This is the path the isomorphism-canonical
//     cache accelerates: (d1, d2, d3, b2, b3) is canonicalised under
//     the unit group of Z_m, so only one placement per orbit is ever
//     simulated (docs/CACHING.md).

// TripleResult records one fixed-placement three-stream measurement
// (starts 0, 1, 2) against the capacity bound of core.MultiStreamBound.
type TripleResult struct {
	M, NC      int
	D          [3]int
	Bandwidth  rat.Rational
	Bound      rat.Rational
	BoundTight bool
}

// tripleList enumerates the unordered distance triples in sweep order.
func tripleList(m int) [][3]int {
	var out [][3]int
	for d1 := 0; d1 < m; d1++ {
		for d2 := d1; d2 < m; d2++ {
			for d3 := d2; d3 < m; d3++ {
				out = append(out, [3]int{d1, d2, d3})
			}
		}
	}
	return out
}

// coldTripleBW adapts simulateSpecVec to the triple sweep loops:
// stream 1 at its fixed start, streams 2 and 3 at (b2, b3).
func coldTripleBW(spec ConfigSpec) func(b2, b3 int) rat.Rational {
	bw := coldSpecBW(spec)
	b := make([]int, 3)
	b[0] = spec.Streams[0].B
	return func(b2, b3 int) rat.Rational {
		b[1], b[2] = b2, b3
		return bw(b)
	}
}

// tripleBound is the aggregate capacity bound of one placement; it
// depends on the starts because the union of access sets does.
func tripleBound(m, nc int, d, b [3]int) rat.Rational {
	return core.MultiStreamBound(m, 0, nc, []core.StreamSet{
		{Stream: stream.Infinite(m, b[0], d[0]), CPU: 0},
		{Stream: stream.Infinite(m, b[1], d[1]), CPU: 1},
		{Stream: stream.Infinite(m, b[2], d[2]), CPU: 2},
	})
}

// tripleFrom packages one measured fixed-placement triple against its
// capacity bound at placement b.
func tripleFrom(m, nc int, d, b [3]int, bw rat.Rational) TripleResult {
	bound := tripleBound(m, nc, d, b)
	return TripleResult{
		M: m, NC: nc, D: d,
		Bandwidth: bw, Bound: bound,
		BoundTight: bw.Equal(bound),
	}
}

// SweepTriples measures every unordered distance triple of an (m, n_c)
// memory at the fixed placement (starts 0, 1, 2) against the aggregate
// capacity bound, reporting how often the bound is attained. Sequential
// reference path; Engine.Triples is the parallel equivalent. For the
// all-placements sweep see TripleGrid.
func SweepTriples(m, nc int) []TripleResult {
	return SweepTriplesAt(m, nc, [3]int{0, 1, 2})
}

// SweepTriplesAt runs the fixed-placement census at an arbitrary start
// placement b — sequentially and cold; Engine.TriplesAt is the cached
// equivalent, where placements translate-equivalent to an earlier
// census replay its cyclic states from the cache.
func SweepTriplesAt(m, nc int, b [3]int) []TripleResult {
	triples := tripleList(m)
	out := make([]TripleResult, len(triples))
	for i, d := range triples {
		bw := coldTripleBW(TripleCensusSpec(m, nc, d, b))
		out[i] = tripleFrom(m, nc, d, b, bw(b[1], b[2]))
	}
	return out
}

// TripleSummary aggregates a fixed-placement triple census.
type TripleSummary struct {
	Triples    int
	Tight      int
	Violations int // bound exceeded — must be zero
}

// SummariseTriples reduces a fixed-placement triple census.
func SummariseTriples(results []TripleResult) TripleSummary {
	var s TripleSummary
	s.Triples = len(results)
	for _, r := range results {
		if r.BoundTight {
			s.Tight++
		}
		if r.Bandwidth.Cmp(r.Bound) > 0 {
			s.Violations++
		}
	}
	return s
}

// --- All relative placements -------------------------------------------

// TripleSweepResult compares the per-placement capacity bounds of one
// distance triple with the simulated cyclic states over all m^2
// relative placements (b1 = 0; b2, b3 sweep [0, m)) — the three-stream
// analogue of PairResult.
type TripleSweepResult struct {
	M, NC int
	D     [3]int
	// SimMin/SimMax are the extreme cyclic-state bandwidths over the
	// swept placements.
	SimMin, SimMax rat.Rational
	// BoundMin/BoundMax are the extreme per-placement capacity bounds;
	// they differ when the streams' access-set union depends on the
	// starts (degenerate distances).
	BoundMin, BoundMax rat.Rational
	// Starts is how many placements were simulated (m^2).
	Starts int
	// TightStarts counts placements whose simulated bandwidth attains
	// their capacity bound exactly.
	TightStarts int
	// Violations counts placements whose simulated bandwidth exceeds
	// their capacity bound — always zero unless the simulator or the
	// bound is wrong.
	Violations int
}

// SweepTriple sweeps all m^2 relative placements of one distance
// triple and compares each cyclic state against its capacity bound.
// Sequential reference path; Engine.SweepTriple is the parallel,
// cached equivalent and returns byte-identical results.
func SweepTriple(m, nc int, d [3]int) TripleSweepResult {
	return sweepTripleWith(m, nc, d, coldTripleBW(TripleSpec(m, nc, d)))
}

func sweepTripleWith(m, nc int, d [3]int, bw func(b2, b3 int) rat.Rational) TripleSweepResult {
	res := TripleSweepResult{M: m, NC: nc, D: d}
	first := true
	for b2 := 0; b2 < m; b2++ {
		for b3 := 0; b3 < m; b3++ {
			v := bw(b2, b3)
			bound := tripleBound(m, nc, d, [3]int{0, b2, b3})
			if first || v.Cmp(res.SimMin) < 0 {
				res.SimMin = v
			}
			if first || v.Cmp(res.SimMax) > 0 {
				res.SimMax = v
			}
			if first || bound.Cmp(res.BoundMin) < 0 {
				res.BoundMin = bound
			}
			if first || bound.Cmp(res.BoundMax) > 0 {
				res.BoundMax = bound
			}
			first = false
			res.Starts++
			switch v.Cmp(bound) {
			case 0:
				res.TightStarts++
			case 1:
				res.Violations++
			}
		}
	}
	return res
}

// TripleGrid sweeps every unordered distance triple of an (m, n_c)
// memory over all relative placements. Sequential reference path;
// Engine.TripleGrid produces byte-identical results in parallel, with
// the cyclic-state cache collapsing isomorphic placements.
func TripleGrid(m, nc int) []TripleSweepResult {
	triples := tripleList(m)
	out := make([]TripleSweepResult, len(triples))
	for i, d := range triples {
		out[i] = SweepTriple(m, nc, d)
	}
	return out
}

// TripleGridSummary aggregates an all-placements triple sweep.
type TripleGridSummary struct {
	M, NC   int
	Triples int
	Starts  int // placements simulated across all triples
	// TightSomewhere counts triples attaining their capacity bound from
	// at least one placement; TightStarts counts the attaining
	// placements themselves.
	TightSomewhere int
	TightStarts    int
	// Violations counts placements whose simulated bandwidth exceeded
	// the capacity bound — must be zero.
	Violations int
}

// SummariseTripleGrid reduces an all-placements triple sweep.
func SummariseTripleGrid(m, nc int, results []TripleSweepResult) TripleGridSummary {
	s := TripleGridSummary{M: m, NC: nc, Triples: len(results)}
	for _, r := range results {
		s.Starts += r.Starts
		s.TightStarts += r.TightStarts
		s.Violations += r.Violations
		if r.TightStarts > 0 {
			s.TightSomewhere++
		}
	}
	return s
}

// TripleGridTable renders an all-placements triple sweep as an aligned
// text table.
func TripleGridTable(results []TripleSweepResult) string {
	t := &textplot.Table{Header: []string{"d1", "d2", "d3", "bound", "sim min", "sim max", "tight"}}
	for _, r := range results {
		bound := r.BoundMax.String()
		if !r.BoundMin.Equal(r.BoundMax) {
			bound = r.BoundMin.String() + ".." + r.BoundMax.String()
		}
		t.Add(r.D[0], r.D[1], r.D[2], bound, r.SimMin.String(), r.SimMax.String(),
			fmt.Sprintf("%d/%d", r.TightStarts, r.Starts))
	}
	return t.String()
}
