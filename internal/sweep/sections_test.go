package sweep

import (
	"strings"
	"testing"
)

func TestSectionGridAgrees(t *testing.T) {
	for _, g := range []struct{ m, s, nc int }{
		{12, 2, 2}, {12, 3, 3}, {16, 4, 4}, {8, 2, 2},
	} {
		results := SectionGrid(g.m, g.s, g.nc)
		if len(results) == 0 {
			t.Fatalf("m=%d s=%d nc=%d: empty grid", g.m, g.s, g.nc)
		}
		for _, r := range results {
			if !r.Agree {
				t.Errorf("m=%d s=%d nc=%d d1=%d d2=%d: disagreement", r.M, r.S, r.NC, r.D1, r.D2)
			}
			if r.TheoryFree && r.SimFreeStarts == 0 {
				t.Errorf("m=%d s=%d nc=%d d1=%d d2=%d: theory-free but no simulated free start",
					r.M, r.S, r.NC, r.D1, r.D2)
			}
		}
	}
}

func TestSectionTableRendering(t *testing.T) {
	results := SectionGrid(8, 2, 2)
	out := SectionTable(results)
	if !strings.Contains(out, "theory free@") || !strings.Contains(out, "sim free starts") {
		t.Fatalf("table:\n%s", out)
	}
}

// Fig. 7's pair appears in the section grid as theory-free at offset 3.
func TestSectionGridContainsFig7(t *testing.T) {
	r := SweepSectionPair(12, 2, 2, 1, 1)
	if !r.TheoryFree || r.TheoryStart != 3 {
		t.Fatalf("Fig. 7 pair: %+v", r)
	}
	if !r.Agree {
		t.Fatal("Fig. 7 pair disagrees")
	}
	if r.SimFreeStarts == 0 {
		t.Fatal("no simulated free start for Fig. 7's pair")
	}
}

func TestTripleSweepBoundsHold(t *testing.T) {
	results := SweepTriples(8, 2)
	s := SummariseTriples(results)
	if s.Violations != 0 {
		t.Fatalf("%d capacity-bound violations", s.Violations)
	}
	if s.Triples == 0 || s.Tight == 0 {
		t.Fatalf("summary %+v: expected some tight triples", s)
	}
	// All-unit-stride triple with spread starts is conflict-free: bound
	// 3, attained.
	for _, r := range results {
		if r.D == [3]int{1, 1, 1} {
			if !r.BoundTight || r.Bandwidth.Float() != 3 {
				t.Fatalf("unit triple: %+v", r)
			}
		}
	}
}

func TestTripleSweepXMPScale(t *testing.T) {
	if testing.Short() {
		t.Skip("16-bank triple sweep")
	}
	results := SweepTriples(16, 4)
	s := SummariseTriples(results)
	if s.Violations != 0 {
		t.Fatalf("%d violations at X-MP scale", s.Violations)
	}
	// The bound should be attained reasonably often (conflict-free and
	// saturated triples) but not always (barrier triples sit strictly
	// inside it).
	if s.Tight == 0 || s.Tight == s.Triples {
		t.Fatalf("tightness degenerate: %d/%d", s.Tight, s.Triples)
	}
}
