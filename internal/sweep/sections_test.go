package sweep

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ivm/internal/modmath"
)

func TestSectionGridAgrees(t *testing.T) {
	for _, g := range []struct{ m, s, nc int }{
		{12, 2, 2}, {12, 3, 3}, {16, 4, 4}, {8, 2, 2},
	} {
		results := SectionGrid(g.m, g.s, g.nc)
		if len(results) == 0 {
			t.Fatalf("m=%d s=%d nc=%d: empty grid", g.m, g.s, g.nc)
		}
		for _, r := range results {
			if !r.Agree {
				t.Errorf("m=%d s=%d nc=%d d1=%d d2=%d: disagreement", r.M, r.S, r.NC, r.D1, r.D2)
			}
			if r.TheoryFree && r.SimFreeStarts == 0 {
				t.Errorf("m=%d s=%d nc=%d d1=%d d2=%d: theory-free but no simulated free start",
					r.M, r.S, r.NC, r.D1, r.D2)
			}
		}
	}
}

func TestSectionTableRendering(t *testing.T) {
	results := SectionGrid(8, 2, 2)
	out := SectionTable(results)
	if !strings.Contains(out, "theory free@") || !strings.Contains(out, "sim free starts") {
		t.Fatalf("table:\n%s", out)
	}
}

// Fig. 7's pair appears in the section grid as theory-free at offset 3.
func TestSectionGridContainsFig7(t *testing.T) {
	r := SweepSectionPair(12, 2, 2, 1, 1)
	if !r.TheoryFree || r.TheoryStart != 3 {
		t.Fatalf("Fig. 7 pair: %+v", r)
	}
	if !r.Agree {
		t.Fatal("Fig. 7 pair disagrees")
	}
	if r.SimFreeStarts == 0 {
		t.Fatal("no simulated free start for Fig. 7's pair")
	}
}

// Engine.SectionGrid must stay byte-identical to SectionGrid for any
// worker count and cache configuration — the section cache only ever
// collapses placements that are isomorphic under the section pipeline
// (full unit group by default, validated by the section-units
// differential campaign).
func TestEngineSectionGridByteIdenticalToSequential(t *testing.T) {
	for _, g := range []struct{ m, s, nc int }{{12, 3, 3}, {8, 2, 2}} {
		seq := SectionGrid(g.m, g.s, g.nc)
		seqTable := SectionTable(seq)
		for _, opt := range []Options{
			{Workers: 1, CacheSize: -1},
			{Workers: 4},
			{Workers: 4, CacheSize: 64},
		} {
			eng := NewEngine(opt)
			par := eng.SectionGrid(g.m, g.s, g.nc)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("m=%d s=%d nc=%d opts %+v: parallel section grid differs", g.m, g.s, g.nc, opt)
			}
			if got := SectionTable(par); got != seqTable {
				t.Fatalf("m=%d s=%d nc=%d opts %+v: rendered section table differs", g.m, g.s, g.nc, opt)
			}
		}
	}
}

// The section cache must actually collapse orbits where the subgroup
// is nontrivial, and must account its traffic in the section counters
// only.
func TestEngineSectionGridCacheAccounting(t *testing.T) {
	// Units(16) has eight elements: plenty of nontrivial orbits.
	eng := NewEngine(Options{Workers: 2})
	eng.SectionGrid(16, 4, 4)
	m := eng.Metrics()
	sf := m.Family("section")
	if sf.Hits == 0 {
		t.Fatal("sectioned 16-bank grid never hit the cache")
	}
	if sf.Misses != m.CyclesFound {
		t.Fatalf("section misses %d != cycles found %d", sf.Misses, m.CyclesFound)
	}
	if len(m.Families) != 1 {
		t.Fatalf("section sweep leaked into other family counters: %+v", m.Families)
	}
	if hr := m.SectionHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("section hit rate %v out of (0,1)", hr)
	}
	snap := eng.Snapshot()
	if snap.SectionCacheHitRate != m.SectionHitRate() || snap.PairCacheHitRate != 0 {
		t.Fatalf("snapshot per-kind rates inconsistent: %+v", snap)
	}
}

// The section-units campaign (test half of `ivmablate -study
// section-units`): on every EXPERIMENTS.md section grid, the cold
// sequential sweep, the default full-unit-group engine and the engine
// restricted to the conservative u ≡ 1 (mod s) subgroup must agree
// result-for-result, and the full group must hit the cache at least as
// often as the subgroup.
func TestSectionUnitsCampaign(t *testing.T) {
	for _, g := range []struct{ m, s, nc int }{
		{12, 2, 2}, {12, 3, 3}, {16, 4, 4}, {8, 2, 2},
	} {
		cold := SectionGrid(g.m, g.s, g.nc)
		// One worker each: concurrent workers can both miss the same key
		// (results identical, counters noisy), and the hit-rate comparison
		// below needs deterministic counters.
		full := NewEngine(Options{Workers: 1})
		off := false
		sub := NewEngine(Options{Workers: 1, SectionFullUnits: &off})
		if got := full.SectionGrid(g.m, g.s, g.nc); !reflect.DeepEqual(cold, got) {
			t.Fatalf("m=%d s=%d nc=%d: full-unit engine differs from cold sweep", g.m, g.s, g.nc)
		}
		if got := sub.SectionGrid(g.m, g.s, g.nc); !reflect.DeepEqual(cold, got) {
			t.Fatalf("m=%d s=%d nc=%d: subgroup engine differs from cold sweep", g.m, g.s, g.nc)
		}
		if fh, sh := full.Metrics().SectionHitRate(), sub.Metrics().SectionHitRate(); fh < sh {
			t.Fatalf("m=%d s=%d nc=%d: full group hit rate %.3f below subgroup %.3f",
				g.m, g.s, g.nc, fh, sh)
		}
	}
}

// The randomised half of the campaign: seeded random sectioned pairs
// through both canonicalisation groups against the cold sweep.
func TestSectionUnitsCampaignRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19850806))
	full := NewEngine(Options{Workers: 2})
	off := false
	sub := NewEngine(Options{Workers: 2, SectionFullUnits: &off})
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(15)
		divs := modmath.Divisors(m)
		s := divs[rng.Intn(len(divs))]
		nc := 1 + rng.Intn(4)
		d1, d2 := rng.Intn(m), rng.Intn(m)
		cold := SweepSectionPair(m, s, nc, d1, d2)
		if got := full.SweepSectionPair(m, s, nc, d1, d2); !reflect.DeepEqual(cold, got) {
			t.Fatalf("trial %d m=%d s=%d nc=%d (%d,%d): full-unit engine differs from cold sweep",
				trial, m, s, nc, d1, d2)
		}
		if got := sub.SweepSectionPair(m, s, nc, d1, d2); !reflect.DeepEqual(cold, got) {
			t.Fatalf("trial %d m=%d s=%d nc=%d (%d,%d): subgroup engine differs from cold sweep",
				trial, m, s, nc, d1, d2)
		}
	}
}

// Random sectioned pairs: cached engine vs cold sequential sweep,
// across random (m, s, n_c, d1, d2) — the property that cached equals
// uncached everywhere, not just on the curated grids.
func TestDifferentialRandomSections(t *testing.T) {
	rng := rand.New(rand.NewSource(19850804))
	eng := NewEngine(Options{Workers: 4})
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(15) // 2..16
		divs := modmath.Divisors(m)
		s := divs[rng.Intn(len(divs))]
		nc := 1 + rng.Intn(4)
		d1, d2 := rng.Intn(m), rng.Intn(m)
		seq := SweepSectionPair(m, s, nc, d1, d2)
		par := eng.SweepSectionPair(m, s, nc, d1, d2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d m=%d s=%d nc=%d (%d,%d): engine %+v != sequential %+v",
				trial, m, s, nc, d1, d2, par, seq)
		}
	}
}

// FuzzSweepSectionPair differentially tests one sectioned pair per
// input: the cached parallel engine against the cold sequential sweep.
func FuzzSweepSectionPair(f *testing.F) {
	seeds := [][5]uint8{
		{11, 1, 2, 1, 1}, // m=12 s=2 nc=3 (1,1): Fig. 7's pair
		{15, 3, 3, 1, 5}, // m=16 s=4 nc=4 (1,5): X-MP shape, unit orbit
		{7, 0, 1, 2, 6},  // m=8 s=1 nc=2 (2,6): sectionless degenerate
		{11, 2, 0, 3, 9}, // m=12 s=3 nc=1 (3,9): strides inside one section
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4])
	}
	f.Fuzz(func(t *testing.T, mRaw, sRaw, ncRaw, d1Raw, d2Raw uint8) {
		m := 1 + int(mRaw%16)
		divs := modmath.Divisors(m)
		s := divs[int(sRaw)%len(divs)]
		nc := 1 + int(ncRaw%4)
		d1, d2 := int(d1Raw)%m, int(d2Raw)%m
		seq := SweepSectionPair(m, s, nc, d1, d2)
		eng := NewEngine(Options{Workers: 2, CacheSize: 256})
		par := eng.SweepSectionPair(m, s, nc, d1, d2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("m=%d s=%d nc=%d (%d,%d): engine %+v != sequential %+v", m, s, nc, d1, d2, par, seq)
		}
	})
}

func TestTripleSweepBoundsHold(t *testing.T) {
	results := SweepTriples(8, 2)
	s := SummariseTriples(results)
	if s.Violations != 0 {
		t.Fatalf("%d capacity-bound violations", s.Violations)
	}
	if s.Triples == 0 || s.Tight == 0 {
		t.Fatalf("summary %+v: expected some tight triples", s)
	}
	// All-unit-stride triple with spread starts is conflict-free: bound
	// 3, attained.
	for _, r := range results {
		if r.D == [3]int{1, 1, 1} {
			if !r.BoundTight || r.Bandwidth.Float() != 3 {
				t.Fatalf("unit triple: %+v", r)
			}
		}
	}
}

func TestTripleSweepXMPScale(t *testing.T) {
	if testing.Short() {
		t.Skip("16-bank triple sweep")
	}
	results := SweepTriples(16, 4)
	s := SummariseTriples(results)
	if s.Violations != 0 {
		t.Fatalf("%d violations at X-MP scale", s.Violations)
	}
	// The bound should be attained reasonably often (conflict-free and
	// saturated triples) but not always (barrier triples sit strictly
	// inside it).
	if s.Tight == 0 || s.Tight == s.Triples {
		t.Fatalf("tightness degenerate: %d/%d", s.Tight, s.Triples)
	}
}
