package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// Conservation: every placement the engine resolves must be
// attributed to exactly one provenance path, so per family
// analytic + cache hits + simulations == placements resolved, and the
// provenance counters must agree with the engine's own metrics.
func checkConservation(t *testing.T, eng *Engine, prov *Provenance) {
	t.Helper()
	snap := prov.Snapshot()
	m := eng.Metrics()
	for name, f := range snap.Families {
		if got := f.Analytic + f.CacheHits + f.SimScalar + f.SimPacked; got != f.Resolved {
			t.Errorf("%s: path sum %d != resolved %d", name, got, f.Resolved)
		}
		em := m.Family(name)
		if em.Hits+em.Misses+em.Analytic == 0 {
			// Cache disabled: the engine keeps no per-family counters,
			// so only the path-sum invariant above applies.
			continue
		}
		if f.Resolved != em.Hits+em.Misses+em.Analytic {
			t.Errorf("%s: provenance resolved %d != engine hits+misses+analytic %d",
				name, f.Resolved, em.Hits+em.Misses+em.Analytic)
		}
		if f.Analytic != em.Analytic {
			t.Errorf("%s: provenance analytic %d != engine analytic %d", name, f.Analytic, em.Analytic)
		}
		if f.CacheHits != em.Hits {
			t.Errorf("%s: provenance cache hits %d != engine hits %d", name, f.CacheHits, em.Hits)
		}
		if f.SimScalar+f.SimPacked != em.Misses {
			t.Errorf("%s: provenance sims %d != engine misses %d", name, f.SimScalar+f.SimPacked, em.Misses)
		}
	}
	for name, em := range m.Families {
		if _, ok := snap.Families[name]; !ok && em.Hits+em.Misses+em.Analytic > 0 {
			t.Errorf("family %s has engine traffic but no provenance", name)
		}
	}
}

func TestProvenanceConservationPairs(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Workers: 3, Provenance: prov})
	const m, nc = 13, 4
	eng.Grid(m, nc)
	checkConservation(t, eng, prov)
	// Every pair sweeps its m starts, so the pair family must have
	// resolved exactly pairs*m placements.
	want := int64(len(gridPairs(m, nc)) * m)
	if got := prov.Snapshot().Families["pair"].Resolved; got != want {
		t.Errorf("pair resolved = %d, want %d", got, want)
	}
}

func TestProvenanceConservationTriples(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Workers: 3, Provenance: prov})
	eng.TripleGrid(7, 2)
	checkConservation(t, eng, prov)
}

func TestProvenanceConservationSections(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Workers: 3, Provenance: prov})
	eng.SectionGrid(12, 3, 3)
	checkConservation(t, eng, prov)
	if _, ok := prov.Snapshot().Families["section"]; !ok {
		t.Fatal("no section family recorded")
	}
}

func TestProvenanceConservationStream4(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Workers: 3, Provenance: prov})
	eng.NStreamGrid(4, 1, 4)
	checkConservation(t, eng, prov)
	f, ok := prov.Snapshot().Families["stream4"]
	if !ok {
		t.Fatal("no stream4 family recorded")
	}
	// The miss-attribution view must name the top unexplained orbits
	// of the worst family — that is the view's whole point.
	if f.SimScalar+f.SimPacked > 0 && len(f.UnexplainedOrbits) == 0 {
		t.Error("stream4 simulated placements but reported no unexplained orbits")
	}
}

// Conservation must also hold when caching is disabled (everything
// simulates) and when the analytic gate is off.
func TestProvenanceConservationNoCacheNoGate(t *testing.T) {
	off := false
	prov := NewProvenance(0)
	eng := NewEngine(Options{Workers: 2, CacheSize: -1, Analytic: &off, Provenance: prov, PackedKernel: &off})
	eng.Grid(8, 2)
	checkConservation(t, eng, prov)
	f := prov.Snapshot().Families["pair"]
	if f.Analytic != 0 || f.CacheHits != 0 || f.SimPacked != 0 {
		t.Errorf("gate+cache off must simulate on the scalar kernel only: %+v", f)
	}
	if f.SimScalar == 0 || f.SimScalar != f.Resolved {
		t.Errorf("sim-scalar %d must carry all %d resolutions", f.SimScalar, f.Resolved)
	}
}

// The theorem table must attribute analytic answers to the gate's
// theorem identifiers and sum to the analytic path count.
func TestProvenanceTheoremAttribution(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Provenance: prov})
	eng.Grid(16, 4)
	f := prov.Snapshot().Families["pair"]
	if f.Analytic == 0 {
		t.Fatal("theorem-dense grid produced no analytic answers")
	}
	var sum int64
	for id, n := range f.Theorems {
		switch id {
		case "theorem-2", "theorem-3", "eq-29":
		default:
			t.Errorf("unknown theorem id %q", id)
		}
		sum += n
	}
	if sum != f.Analytic {
		t.Errorf("theorem hits sum %d != analytic %d", sum, f.Analytic)
	}
}

// Orbit accounting: histogram placements must equal hits+misses with
// orbit rows, singleton count must match the size-1 bucket, and the
// top-orbit list must be sorted by explained placements.
func TestProvenanceOrbitAccounting(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Workers: 2, Provenance: prov})
	eng.Grid(13, 4)
	f := prov.Snapshot().Families["pair"]
	var placements, orbits int64
	for _, b := range f.OrbitSizes {
		placements += b.Placements
		orbits += b.Orbits
		if b.Lo == 1 && b.Orbits != f.SingletonOrbits {
			t.Errorf("size-1 bucket %d != singleton orbits %d", b.Orbits, f.SingletonOrbits)
		}
	}
	if orbits != f.Orbits {
		t.Errorf("histogram orbits %d != orbits %d", orbits, f.Orbits)
	}
	if placements != f.CacheHits+f.SimScalar+f.SimPacked {
		t.Errorf("histogram placements %d != cache+sim %d", placements, f.CacheHits+f.SimScalar+f.SimPacked)
	}
	for i := 1; i < len(f.TopOrbits); i++ {
		if f.TopOrbits[i].Size > f.TopOrbits[i-1].Size {
			t.Errorf("top orbits unsorted at %d", i)
		}
	}
	for _, o := range f.TopOrbits {
		if o.Size != o.Hits+o.Misses {
			t.Errorf("orbit %s: size %d != hits+misses %d", o.Label(), o.Size, o.Hits+o.Misses)
		}
	}
}

// The snapshot must be deterministic across identical runs (map
// iteration must not leak into the ordered views).
func TestProvenanceSnapshotDeterministic(t *testing.T) {
	// Single worker: with a parallel pool two slots can race to miss
	// the same canonical key, making the hit/miss split (legitimately)
	// schedule-dependent.
	run := func() ProvenanceSnapshot {
		prov := NewProvenance(0)
		eng := NewEngine(Options{Workers: 1, Provenance: prov})
		eng.Grid(12, 3)
		eng.TripleGrid(7, 2)
		return prov.Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("snapshots differ across identical runs")
	}
	if a.Table() != b.Table() {
		t.Error("tables differ across identical runs")
	}
}

// The orbit capacity bound must drop per-orbit rows, count them, and
// leave the exact path counters untouched.
func TestProvenanceOrbitCapacity(t *testing.T) {
	prov := NewProvenance(4)
	eng := NewEngine(Options{Workers: 1, Provenance: prov})
	eng.Grid(13, 4)
	snap := prov.Snapshot()
	if snap.DroppedOrbits == 0 {
		t.Fatal("tiny capacity dropped nothing")
	}
	var orbits int64
	for _, f := range snap.Families {
		orbits += f.Orbits
	}
	if orbits > 4 {
		t.Errorf("tracked %d orbits past capacity 4", orbits)
	}
	checkConservation(t, eng, prov)
}

// JSON: the provenance snapshot must round-trip inside the engine
// snapshot, and be absent when no recorder was attached.
func TestProvenanceSnapshotJSON(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Provenance: prov})
	eng.Grid(8, 2)
	s := eng.Snapshot()
	if s.Provenance == nil {
		t.Fatal("snapshot lacks provenance despite attached recorder")
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Provenance, s.Provenance) {
		t.Error("provenance drifted through JSON")
	}
	plain := NewEngine(Options{})
	plain.Grid(8, 2)
	if plain.Snapshot().Provenance != nil {
		t.Error("detached engine snapshot carries provenance")
	}
}

func TestProvenanceCSV(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Provenance: prov})
	eng.Grid(13, 4)
	var buf bytes.Buffer
	if err := prov.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "family,kind,label,count,placements,clocks" {
		t.Errorf("bad CSV header %q", lines[0])
	}
	for _, want := range []string{"pair,path,analytic", "pair,path,cache", "pair,path,sim-packed", "pair,theorem,", "pair,orbit_size,"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV lacks %q rows", want)
		}
	}
}

// The attribution table must name the headline views.
func TestProvenanceTable(t *testing.T) {
	prov := NewProvenance(0)
	eng := NewEngine(Options{Provenance: prov})
	eng.Grid(13, 4)
	out := prov.Snapshot().Table()
	for _, want := range []string{"path split", "analytic attribution", "orbit sizes", "unexplained orbits", "pair"} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution table lacks %q:\n%s", want, out)
		}
	}
}

// A detached (nil) provenance recorder must be free: no allocations
// from any record call on the hot path, mirroring the detached-tracer
// guarantee of internal/obs/overhead_test.go.
func TestDetachedProvenanceAllocatesNothing(t *testing.T) {
	var p *Provenance
	vec := []int{1, 6, 0, 7}
	if allocs := testing.AllocsPerRun(500, func() {
		p.Analytic("pair", "theorem-3")
		p.CacheHit("pair", 13, 0, 4, vec)
		p.Simulated("pair", 13, 0, 4, vec, true, 13, 26)
	}); allocs != 0 {
		t.Errorf("detached provenance allocates %.1f objects/record, want 0", allocs)
	}
}

// BenchmarkProvenanceAttached quantifies the recording cost against
// the free detached path (BenchmarkProvenanceDetached).
func BenchmarkProvenanceDetached(b *testing.B) {
	eng := NewEngine(Options{Workers: 1})
	w := &worker{e: eng}
	cs := w.compile(PairSpec(13, 4, 1, 6))
	bb := []int{0, 7}
	w.bw(cs, bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.bw(cs, bb)
	}
}

// BenchmarkProvenanceAttached is the same warm resolver loop with a
// live recorder taking one record per call.
func BenchmarkProvenanceAttached(b *testing.B) {
	eng := NewEngine(Options{Workers: 1, Provenance: NewProvenance(0)})
	w := &worker{e: eng}
	cs := w.compile(PairSpec(13, 4, 1, 6))
	bb := []int{0, 7}
	w.bw(cs, bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.bw(cs, bb)
	}
}
