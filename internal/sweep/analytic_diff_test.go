package sweep

import (
	"reflect"
	"testing"

	"ivm/internal/core"
)

// The analytic-gate differential suite: every regime the classifier
// gate short-circuits is cross-checked against forced simulation over
// exhaustive small grids, and the Metrics accounting identity
// analytic_hits + sim_runs == items is pinned as a property. Simulation
// stays authoritative — these tests are the license for the gate to
// answer without it.

// TestDifferentialAnalyticGateGrids runs whole grids three ways — gate
// on (default), gate forced off, and the sequential cold path — and
// demands identical results, with the gate's accounting visible only
// where it was enabled.
func TestDifferentialAnalyticGateGrids(t *testing.T) {
	off := false
	for _, g := range experimentsGrid {
		seq := Grid(g.m, g.nc)
		on := NewEngine(Options{Workers: 4})
		gated := on.Grid(g.m, g.nc)
		forced := NewEngine(Options{Workers: 4, Analytic: &off})
		simulated := forced.Grid(g.m, g.nc)
		if !reflect.DeepEqual(gated, simulated) {
			t.Fatalf("m=%d nc=%d: gate on vs forced simulation differ", g.m, g.nc)
		}
		if !reflect.DeepEqual(gated, seq) {
			t.Fatalf("m=%d nc=%d: gate on vs sequential differ", g.m, g.nc)
		}
		if on.Metrics().AnalyticHits == 0 {
			t.Fatalf("m=%d nc=%d: gate enabled but no analytic hits", g.m, g.nc)
		}
		if n := forced.Metrics().AnalyticHits; n != 0 {
			t.Fatalf("m=%d nc=%d: gate disabled yet %d analytic hits", g.m, g.nc, n)
		}
	}
}

// TestDifferentialAnalyticGatePlacements is the per-placement oracle
// check: for every distance pair of small exhaustive grids, every
// placement the gate answers is recomputed by a cold simulation on a
// fresh system, and the values must be equal exactly (both are reduced
// rationals). Gated regimes are tallied so a silently inactive gate
// cannot pass.
func TestDifferentialAnalyticGatePlacements(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive placement grid")
	}
	gatedByRegime := make(map[core.Regime]int)
	for _, g := range []struct{ m, nc int }{{8, 2}, {12, 3}, {13, 2}} {
		for d1 := 0; d1 < g.m; d1++ {
			for d2 := 0; d2 < g.m; d2++ {
				gate := core.NewPairGate(g.m, g.nc, d1, d2)
				if !gate.Active() {
					continue
				}
				spec := PairSpec(g.m, g.nc, d1, d2)
				cold := coldSpecBW(spec)
				for b2 := 0; b2 < g.m; b2++ {
					v, ok := gate.BandwidthAt(0, b2)
					if !ok {
						continue
					}
					gatedByRegime[gate.Analysis().Regime]++
					if want := cold([]int{0, b2}); !v.Equal(want) {
						t.Fatalf("m=%d nc=%d d=(%d,%d) b2=%d [%s]: gate %s, simulation %s",
							g.m, g.nc, d1, d2, b2, gate.Analysis().Regime, v, want)
					}
				}
			}
		}
	}
	for _, r := range []core.Regime{core.RegimeConflictFree, core.RegimeDisjointFree, core.RegimeUniqueBarrier} {
		if gatedByRegime[r] == 0 {
			t.Fatalf("no gated placements in regime %s; grids too small for the theorem", r)
		}
	}
	for r := range gatedByRegime {
		switch r {
		case core.RegimeConflictFree, core.RegimeDisjointFree, core.RegimeUniqueBarrier:
		default:
			t.Fatalf("gate answered placements in unexpected regime %s", r)
		}
	}
}

// TestAnalyticGateAccounting pins the work-conservation property: every
// start is answered exactly once, by the gate, the cache, or a
// simulation. With the cache disabled, sim_runs is CyclesFound, so
// analytic_hits + cycles_found == starts exactly.
func TestAnalyticGateAccounting(t *testing.T) {
	for _, g := range experimentsGrid {
		uncached := NewEngine(Options{Workers: 2, CacheSize: -1})
		results := uncached.Grid(g.m, g.nc)
		starts := int64(0)
		for _, r := range results {
			starts += int64(r.Starts)
		}
		m := uncached.Metrics()
		if m.AnalyticHits+m.CyclesFound != starts {
			t.Fatalf("m=%d nc=%d uncached: analytic %d + cycles %d != %d starts",
				g.m, g.nc, m.AnalyticHits, m.CyclesFound, starts)
		}
		if m.CacheHits != 0 || m.CacheMisses != 0 {
			t.Fatalf("m=%d nc=%d: disabled cache saw traffic: %+v", g.m, g.nc, m)
		}

		cached := NewEngine(Options{Workers: 2})
		cached.Grid(g.m, g.nc)
		cm := cached.Metrics()
		if cm.AnalyticHits+cm.CacheHits+cm.CacheMisses != starts {
			t.Fatalf("m=%d nc=%d cached: analytic %d + hits %d + misses %d != %d starts",
				g.m, g.nc, cm.AnalyticHits, cm.CacheHits, cm.CacheMisses, starts)
		}
		if cm.CacheMisses != cm.CyclesFound {
			t.Fatalf("m=%d nc=%d: misses %d != cycles %d", g.m, g.nc, cm.CacheMisses, cm.CyclesFound)
		}
		if cm.AnalyticHits != m.AnalyticHits {
			t.Fatalf("m=%d nc=%d: analytic hits depend on caching: %d vs %d",
				g.m, g.nc, cm.AnalyticHits, m.AnalyticHits)
		}
		fam := cm.Family("pair")
		if fam.Analytic != cm.AnalyticHits {
			t.Fatalf("m=%d nc=%d: family analytic %d != total %d", g.m, g.nc, fam.Analytic, cm.AnalyticHits)
		}
	}
}

// TestAnalyticGateScalarKernelAgrees re-runs a gated grid on the scalar
// oracle kernel with the gate off: the combination every other test
// implies must agree is checked directly.
func TestAnalyticGateScalarKernelAgrees(t *testing.T) {
	off := false
	def := NewEngine(Options{Workers: 2})
	scalar := NewEngine(Options{Workers: 2, Analytic: &off, PackedKernel: &off})
	if !reflect.DeepEqual(def.Grid(13, 4), scalar.Grid(13, 4)) {
		t.Fatal("default engine (gate + packed kernel) differs from scalar no-gate engine")
	}
}
