// Package sweep is the experiment harness tying the analytic model and
// the simulator together: it sweeps parameter grids, compares the
// predicted conflict regime and bandwidth of every stream pair against
// the cyclic steady state the simulator finds, and renders the result
// tables that EXPERIMENTS.md and cmd/ivmsweep report.
package sweep

import (
	"ivm/internal/core"
	"ivm/internal/rat"
	"ivm/internal/stream"
	"ivm/internal/textplot"
)

// PairResult compares analysis and simulation for one distance pair.
type PairResult struct {
	M, NC, D1, D2 int
	Analysis      core.Analysis
	// SimMin/SimMax are the extreme cyclic-state bandwidths over the
	// swept relative starting positions.
	SimMin, SimMax rat.Rational
	// Starts is how many relative starts were simulated.
	Starts int
	// Agree reports that the simulation confirms the analysis:
	//   - start-independent predictions must match at every start,
	//   - start-dependent ones must be attained by some start,
	//   - self-conflict pairs are skipped (no pair prediction).
	Agree bool
}

// SweepPair simulates all m relative starts of the pair and checks the
// analytic verdict. The bandwidth resolver is the cold spec path; the
// engine's workers substitute the memo cache and a reused per-worker
// system.
func SweepPair(m, nc, d1, d2 int) PairResult {
	return sweepPairWith(m, nc, d1, d2, coldTwoStreamBW(PairSpec(m, nc, d1, d2)))
}

func sweepPairWith(m, nc, d1, d2 int, bw func(b2 int) rat.Rational) PairResult {
	a := core.Analyze(m, nc, d1, d2)
	res := PairResult{M: m, NC: nc, D1: d1, D2: d2, Analysis: a}
	first := true
	attained := false
	allMatch := true
	for b2 := 0; b2 < m; b2++ {
		v := bw(b2)
		if first || v.Cmp(res.SimMin) < 0 {
			res.SimMin = v
		}
		if first || v.Cmp(res.SimMax) > 0 {
			res.SimMax = v
		}
		first = false
		res.Starts++
		if a.HasBandwidth {
			if v.Equal(a.Bandwidth) {
				attained = true
			} else {
				allMatch = false
			}
		}
	}
	switch {
	case !a.HasBandwidth:
		res.Agree = true // nothing to check (self-conflict / conflicting)
	case a.StartIndependent:
		res.Agree = allMatch
	case a.Regime == core.RegimeDisjointFree:
		// The constructed starts realise b_eff = 2; the sweep with
		// b1 = 0 contains them (b2 = 1 works whenever gcd > 1).
		res.Agree = attained
	default:
		res.Agree = attained
	}
	return res
}

// gridPairs lists the distance pairs Grid sweeps, in sweep order: both
// streams must have return number >= nc (no self-conflict), d2 >= d1.
func gridPairs(m, nc int) [][2]int {
	var out [][2]int
	for d1 := 0; d1 < m; d1++ {
		if stream.ReturnNumber(m, d1) < nc {
			continue
		}
		for d2 := d1; d2 < m; d2++ {
			if stream.ReturnNumber(m, d2) < nc {
				continue
			}
			out = append(out, [2]int{d1, d2})
		}
	}
	return out
}

// Grid sweeps every distance pair of an (m, nc) system, skipping
// self-conflicting pairs, and returns the per-pair comparisons. This
// is the sequential reference path; Engine.Grid produces byte-identical
// results in parallel.
func Grid(m, nc int) []PairResult {
	pairs := gridPairs(m, nc)
	out := make([]PairResult, len(pairs))
	for i, p := range pairs {
		out[i] = SweepPair(m, nc, p[0], p[1])
	}
	return out
}

// Summary aggregates a grid sweep.
type Summary struct {
	M, NC    int
	Pairs    int
	ByRegime map[core.Regime]int
	Disagree []PairResult
	// UnpredictedUniform counts pairs whose simulated bandwidth is the
	// same from every relative start although the analysis could not
	// certify start-independence — a measure of how one-sided the
	// paper's sufficient conditions are (e.g. 1(+)11 on the X-MP).
	UnpredictedUniform int
}

// Summarise builds the aggregate view of a grid.
func Summarise(m, nc int, results []PairResult) Summary {
	s := Summary{M: m, NC: nc, Pairs: len(results), ByRegime: make(map[core.Regime]int)}
	for _, r := range results {
		s.ByRegime[r.Analysis.Regime]++
		if !r.Agree {
			s.Disagree = append(s.Disagree, r)
		}
		if !r.Analysis.StartIndependent && r.Starts > 1 && r.SimMin.Equal(r.SimMax) {
			s.UnpredictedUniform++
		}
	}
	return s
}

// Table renders a grid sweep as an aligned text table.
func Table(results []PairResult) string {
	t := &textplot.Table{Header: []string{"d1", "d2", "regime", "predicted", "sim min", "sim max", "agree"}}
	for _, r := range results {
		pred := "-"
		if r.Analysis.HasBandwidth {
			pred = r.Analysis.Bandwidth.String()
			if !r.Analysis.StartIndependent {
				pred += " (some start)"
			}
		}
		t.Add(r.D1, r.D2, r.Analysis.Regime.String(), pred, r.SimMin.String(), r.SimMax.String(), r.Agree)
	}
	return t.String()
}

// SummaryTable renders regime counts of a summary.
func SummaryTable(s Summary) string {
	t := &textplot.Table{Header: []string{"regime", "pairs"}}
	for _, reg := range []core.Regime{
		core.RegimeConflictFree, core.RegimeDisjointFree, core.RegimeUniqueBarrier,
		core.RegimeBarrierPossible, core.RegimeConflicting, core.RegimeSelfConflict,
	} {
		if n := s.ByRegime[reg]; n > 0 {
			t.Add(reg.String(), n)
		}
	}
	t.Add("total", s.Pairs)
	t.Add("disagreements", len(s.Disagree))
	t.Add("uniform beyond prediction", s.UnpredictedUniform)
	return t.String()
}
