package sweep

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSnapshotAccounting(t *testing.T) {
	eng := NewEngine(Options{Workers: 3})
	res := eng.Grid(16, 4)
	snap := eng.Snapshot()

	if snap.Metrics.PairsSwept == 0 {
		t.Fatal("no pairs recorded")
	}
	var items, steps int64
	for _, w := range snap.PerWorker {
		items += w.Items
		steps += w.Steps
		if w.Utilization < 0 || w.Utilization > 1 {
			t.Errorf("worker %d utilization %v out of [0,1]", w.Worker, w.Utilization)
		}
	}
	if want := int64(len(res)); items != want {
		t.Errorf("per-worker items sum %d, grid has %d cells", items, want)
	}
	if steps != snap.Metrics.StepsSimulated {
		t.Errorf("per-worker steps %d != metrics %d", steps, snap.Metrics.StepsSimulated)
	}
	if snap.WallNS <= 0 {
		t.Errorf("wall time %d, want > 0", snap.WallNS)
	}
	if snap.CycleDetectNS <= 0 {
		t.Errorf("cycle-detect time %d, want > 0", snap.CycleDetectNS)
	}
	if snap.Metrics.CyclesFound > 0 && snap.MeanCycleDetectNS <= 0 {
		t.Errorf("mean cycle-detect latency %v, want > 0", snap.MeanCycleDetectNS)
	}
	hits, misses := snap.Metrics.CacheHits, snap.Metrics.CacheMisses
	if hits+misses > 0 {
		want := float64(hits) / float64(hits+misses)
		if snap.CacheHitRate != want {
			t.Errorf("cache hit rate %v, want %v", snap.CacheHitRate, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	eng := NewEngine(Options{Workers: 2})
	eng.Grid(8, 2)
	snap := eng.Snapshot()

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, snap)
	}
}

func TestSnapshotSequentialEngine(t *testing.T) {
	eng := NewEngine(Options{Workers: 1})
	eng.Grid(8, 2)
	snap := eng.Snapshot()
	if len(snap.PerWorker) != 1 {
		t.Fatalf("sequential engine reports %d workers", len(snap.PerWorker))
	}
	if snap.PerWorker[0].Items == 0 {
		t.Error("worker 0 did no items")
	}
}
