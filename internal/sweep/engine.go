package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ivm/internal/core"
	"ivm/internal/memsys"
	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stats"
	"ivm/internal/textplot"
)

// findCycleBudget is the per-simulation clock budget for steady-state
// detection, shared by the sequential and parallel paths.
const findCycleBudget = 1 << 22

// DefaultCacheSize is the engine's cyclic-state cache capacity (total
// entries across shards) when Options.CacheSize is zero.
const DefaultCacheSize = 1 << 16

// Options configures the parallel sweep engine.
type Options struct {
	// Workers is the number of worker goroutines sharding the grid;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize bounds the cyclic-state memo cache in entries: 0 means
	// DefaultCacheSize, negative disables caching. The cache covers
	// every configuration family the spec layer produces — sectionless
	// pairs, triples and N-stream grids, section pairs, and so on —
	// keyed by the canonical form of the configuration vector under the
	// bank-renumbering isomorphisms (see docs/CACHING.md for the
	// derivations).
	CacheSize int
	// CollectStats attaches a stats.Collector to every worker's
	// simulator and merges them after each sweep (see Stats). Off by
	// default: per-event collection slows the hot loop.
	CollectStats bool
	// Timeline, when non-nil, records what each worker slot is doing
	// (work-item spans, cache hit/miss instants, canonicalisation and
	// simulation slices) for Chrome-trace export; nil (the default)
	// records nothing and costs the hot path nothing.
	Timeline *Timeline
	// Provenance, when non-nil, records which path resolved every
	// placement — analytic gate (with the theorem identifier), cache
	// hit (with the canonical key), or simulation (with the kernel,
	// cycle length and clocks) — for the attribution reports; nil (the
	// default) records nothing and costs the hot path nothing, exactly
	// like Timeline.
	Provenance *Provenance
	// Progress, when non-nil, receives the engine's work-item totals
	// (one Add per sweep call, one Done per completed item) so a live
	// reporter can show items/s and an ETA; nil is off and free.
	Progress ProgressSink
	// ItemLatency, when non-nil, receives every completed work item's
	// wall latency in nanoseconds (obs.LatencyHist implements it), so
	// sweeps and the serving layer can report latency distributions and
	// quantiles, not just means; nil is off and free.
	ItemLatency LatencySink
	// CacheSink, when non-nil, receives one CacheRecord per simulated
	// canonical orbit, immediately after the result enters the in-RAM
	// cache, so a persistent store (internal/cachestore) can append it
	// to its log. Cache hits, analytic answers and seeded records are
	// not re-emitted, and nothing is emitted when caching is disabled
	// (CacheSize < 0). Implementations must be safe for concurrent use;
	// nil (the default) is off and free.
	CacheSink CacheSink
	// Analytic enables the theorem-driven classifier gate in the sweep
	// hot path: sectionless two-stream placements whose regime has a
	// start-independent closed form (Theorem 3 conflict-free, Theorems
	// 4+6/7 unique barrier) or that are provably disjoint (Theorem 2)
	// return their b_eff analytically, without simulating or touching
	// the cache; everything else simulates as before. Nil or pointing
	// at true enables the gate (the default); point at false to force
	// every placement through simulation (the differential tests and
	// the scalar baseline benchmarks do). Gated answers are exactly the
	// values simulation would produce — the goldens pin byte-identity.
	Analytic *bool
	// PackedKernel selects the memsys kernel the workers simulate on.
	// Nil or pointing at true selects the bit-packed bank-busy kernel
	// (memsys.KernelPacked, the default); point at false for the
	// scalar reference kernel, which stays the oracle the packed one is
	// differentially tested against. Both kernels produce identical
	// cyclic states, so results are byte-identical either way.
	PackedKernel *bool
	// SectionFullUnits selects the scaling group used to canonicalise
	// sectioned configurations. When nil or pointing at true (the
	// default), the full unit group of Z_m is used: a unit u permutes
	// the sections k -> u·k mod s, and the arbitration is
	// section-symmetric, so the renumbered system is isomorphic — the
	// claim the differential campaign of docs/CACHING.md validates.
	// Point at false to restrict canonicalisation to the conservative
	// subgroup u ≡ 1 (mod s) that fixes every section (the PR 3 key).
	SectionFullUnits *bool
}

// ProgressSink receives the engine's work-item progress. It is
// implemented by obs.Progress; the indirection keeps internal/sweep
// free of an obs dependency (obs imports sweep). Implementations must
// be safe for concurrent use.
type ProgressSink interface {
	// Add grows the expected work-item total (called once per sweep).
	Add(total int64)
	// Done marks n work items completed.
	Done(n int64)
}

// LatencySink receives per-work-item latencies. It is implemented by
// obs.LatencyHist; the indirection keeps internal/sweep free of an obs
// dependency, exactly like ProgressSink. Implementations must be safe
// for concurrent use.
type LatencySink interface {
	// ObserveNS records one completed item's wall latency.
	ObserveNS(ns int64)
}

// sectionFullUnits reports whether sectioned canonicalisation may scale
// by the full unit group rather than the section-fixing subgroup.
func (o Options) sectionFullUnits() bool {
	return o.SectionFullUnits == nil || *o.SectionFullUnits
}

// analytic reports whether the classifier gate short-circuits provable
// placements.
func (o Options) analytic() bool {
	return o.Analytic == nil || *o.Analytic
}

// KernelOption parses a -kernel flag value into the Options.PackedKernel
// setting: "packed" selects the bit-packed bank-busy kernel, "scalar"
// the reference oracle loop. The sweeping CLIs share this parser.
func KernelOption(name string) (*bool, error) {
	switch name {
	case "packed":
		v := true
		return &v, nil
	case "scalar":
		v := false
		return &v, nil
	}
	return nil, fmt.Errorf("sweep: unknown kernel %q (want packed or scalar)", name)
}

// kernel returns the memsys kernel the workers simulate on.
func (o Options) kernel() memsys.Kernel {
	if o.PackedKernel == nil || *o.PackedKernel {
		return memsys.KernelPacked
	}
	return memsys.KernelScalar
}

// FamilyMetrics is the cache and fast-path traffic of one configuration
// family.
type FamilyMetrics struct {
	Hits     int64
	Misses   int64
	Analytic int64
}

// Metrics are the engine's cumulative counters. All values aggregate
// over every sweep the engine has run; Families splits the cache
// totals by configuration family (ConfigSpec.Family), holding only
// families that saw traffic. The JSON encoding is stable across the
// ConfigSpec refactor: the historical families keep their flat
// pair_cache_hits / triple_cache_misses / … field names (emitted even
// when zero), and any other family appears as <family>_cache_hits /
// <family>_cache_misses.
type Metrics struct {
	CacheHits   int64 // starts answered from the memo cache (all families)
	CacheMisses int64 // starts that had to be simulated (all families)
	// AnalyticHits counts starts answered by the theorem-driven
	// classifier gate (Options.Analytic) without simulating or touching
	// the cache; encoded as analytic_hits / <family>_analytic_hits.
	AnalyticHits int64
	// Families is the per-family cache traffic, keyed by
	// ConfigSpec.Family ("pair", "triple", "section", "stream4", …).
	Families       map[string]FamilyMetrics
	CacheEntries   int   // entries currently cached
	CyclesFound    int64 // cyclic steady states detected
	StepsSimulated int64 // clock periods stepped across all simulations
	PairsSwept     int64 // sweep units (pairs/triples/section pairs/specs) completed
	// PackedFallbacks counts specs that requested the packed kernel but
	// were compiled onto the scalar one because the packed grant loop
	// does not implement their priority rule
	// (memsys.PackedSupportsPriority). Structurally zero while every
	// known rule is packed-supported; the counter keeps any future
	// partial-coverage kernel honest. Encoded as packed_fallbacks.
	PackedFallbacks int64
}

// legacyFamilies are the families that predate the generic spec layer;
// their counters are always present in the JSON encoding, zero or not,
// so downstream consumers of BENCH_sweep.json keep their fields.
var legacyFamilies = []string{"pair", "triple", "section"}

// familyOrder lists the families of m in rendering order: the legacy
// three first (when present, or forced when includeLegacy), then the
// rest sorted by name.
func familyOrder(fams map[string]FamilyMetrics, includeLegacy bool) []string {
	var names []string
	for _, name := range legacyFamilies {
		if _, ok := fams[name]; ok || includeLegacy {
			names = append(names, name)
		}
	}
	var rest []string
	for name := range fams {
		legacy := false
		for _, l := range legacyFamilies {
			if name == l {
				legacy = true
				break
			}
		}
		if !legacy {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}

// MarshalJSON encodes the counters with the pre-refactor field layout
// (see the Metrics doc comment).
func (m Metrics) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	field := func(name string, v int64) {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", name, v)
	}
	field("cache_hits", m.CacheHits)
	field("cache_misses", m.CacheMisses)
	field("analytic_hits", m.AnalyticHits)
	for _, name := range familyOrder(m.Families, true) {
		f := m.Families[name]
		field(name+"_cache_hits", f.Hits)
		field(name+"_cache_misses", f.Misses)
		field(name+"_analytic_hits", f.Analytic)
	}
	field("cache_entries", int64(m.CacheEntries))
	field("cycles_found", m.CyclesFound)
	field("steps_simulated", m.StepsSimulated)
	field("pairs_swept", m.PairsSwept)
	field("packed_fallbacks", m.PackedFallbacks)
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON inverts MarshalJSON, rebuilding Families from the
// <family>_cache_hits/_misses fields (families without traffic are
// dropped, matching what Engine.Metrics reports).
func (m *Metrics) UnmarshalJSON(data []byte) error {
	var raw map[string]int64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*m = Metrics{
		CacheHits:       raw["cache_hits"],
		CacheMisses:     raw["cache_misses"],
		AnalyticHits:    raw["analytic_hits"],
		CacheEntries:    int(raw["cache_entries"]),
		CyclesFound:     raw["cycles_found"],
		StepsSimulated:  raw["steps_simulated"],
		PairsSwept:      raw["pairs_swept"],
		PackedFallbacks: raw["packed_fallbacks"],
	}
	for k, hits := range raw {
		if k == "cache_hits" || !strings.HasSuffix(k, "_cache_hits") {
			continue
		}
		name := strings.TrimSuffix(k, "_cache_hits")
		f := FamilyMetrics{Hits: hits, Misses: raw[name+"_cache_misses"], Analytic: raw[name+"_analytic_hits"]}
		if f.Hits+f.Misses+f.Analytic == 0 {
			continue
		}
		if m.Families == nil {
			m.Families = make(map[string]FamilyMetrics)
		}
		m.Families[name] = f
	}
	return nil
}

func hitRate(hits, misses int64) float64 {
	n := hits + misses
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// HitRate returns the overall cache hit fraction, 0 when the cache was
// unused. Analytically answered starts never reach the cache and are
// excluded; see AnalyticHitRate.
func (m Metrics) HitRate() float64 { return hitRate(m.CacheHits, m.CacheMisses) }

// AnalyticHitRate returns the fraction of starts answered by the
// classifier gate out of all starts resolved, 0 when nothing ran.
func (m Metrics) AnalyticHitRate() float64 {
	return hitRate(m.AnalyticHits, m.CacheHits+m.CacheMisses)
}

// Family returns the cache traffic of one configuration family (the
// zero FamilyMetrics when it saw none).
func (m Metrics) Family(name string) FamilyMetrics { return m.Families[name] }

// FamilyHitRate returns the cache hit fraction of one configuration
// family, 0 when it saw no traffic.
func (m Metrics) FamilyHitRate(name string) float64 {
	f := m.Families[name]
	return hitRate(f.Hits, f.Misses)
}

// PairHitRate returns the cache hit fraction of the sectionless pair
// sweeps.
func (m Metrics) PairHitRate() float64 { return m.FamilyHitRate("pair") }

// TripleHitRate returns the cache hit fraction of the triple sweeps.
func (m Metrics) TripleHitRate() float64 { return m.FamilyHitRate("triple") }

// SectionHitRate returns the cache hit fraction of the section sweeps.
func (m Metrics) SectionHitRate() float64 { return m.FamilyHitRate("section") }

// Table renders the counters as an aligned text table. Per-family
// cache rows appear only for families that saw traffic, legacy
// families first.
func (m Metrics) Table() string {
	t := &textplot.Table{Header: []string{"engine counter", "value"}}
	t.Add("sweep units", m.PairsSwept)
	t.Add("cycles found", m.CyclesFound)
	t.Add("steps simulated", m.StepsSimulated)
	t.Add("cache hits", m.CacheHits)
	t.Add("cache misses", m.CacheMisses)
	t.Add("analytic hits", m.AnalyticHits)
	t.Add("cache entries", m.CacheEntries)
	t.Add("cache hit rate", fmt.Sprintf("%.1f%%", m.HitRate()*100))
	t.Add("analytic hit rate", fmt.Sprintf("%.1f%%", m.AnalyticHitRate()*100))
	if m.PackedFallbacks > 0 {
		t.Add("packed fallbacks", m.PackedFallbacks)
	}
	for _, name := range familyOrder(m.Families, false) {
		f := m.Families[name]
		if f.Hits+f.Misses+f.Analytic == 0 {
			continue
		}
		t.Add(name+" hit rate",
			fmt.Sprintf("%.1f%% (%d/%d)", hitRate(f.Hits, f.Misses)*100, f.Hits, f.Hits+f.Misses))
	}
	return t.String()
}

// Engine is the parallel sweep harness: a bounded worker pool over
// spec-driven sweeps with a sharded memoization cache of cyclic steady
// states. Results are always returned in the sequential sweep order,
// so output is byte-identical to Grid/SectionGrid/SweepTriples/
// TripleGrid/SweepSpec regardless of worker count or cache state.
//
// Every sweep — pair, triple, section or generic N-stream — routes
// through one path: the spec is compiled against the worker
// (compiledSpec), each placement's configuration vector
// (d_1..d_N, b_1..b_N) is canonicalised by the spec's modmath pipeline
// (translation orbits composed with the unit-group scaling action,
// restricted per Options.SectionFullUnits on sectioned memories), and
// the canonical representative keys the cache. On a miss the CANONICAL
// representative is simulated, so the cached value is exactly what any
// placement of the orbit would produce; docs/CACHING.md derives the
// isomorphisms. An Engine is safe for concurrent use by multiple
// goroutines, though each sweep call already saturates its own pool.
type Engine struct {
	opt   Options
	cache *bwCache

	famMu sync.Mutex
	fams  map[string]*familyCounter

	cycles, steps, pairs atomic.Int64
	packedFallbacks      atomic.Int64

	// Observability counters (see Snapshot): wall time spent inside
	// sweep calls, wall time inside steady-state detection, and the
	// cumulative per-pool-slot work totals.
	wallNS, cycleNS atomic.Int64

	mu           sync.Mutex
	stats        *stats.Collector
	workerTotals []WorkerStat

	// onHit is a test hook observing cache hits (set before sweeping).
	onHit func(cacheKey)
}

// familyCounter is one family's hit/miss/analytic counters; workers
// cache the pointer per compiled spec so the hot path is two atomic
// adds away from the map.
type familyCounter struct {
	hits, misses, analytic atomic.Int64
}

// NewEngine builds an engine; the zero Options select GOMAXPROCS
// workers and the default cache size.
func NewEngine(opt Options) *Engine {
	e := &Engine{opt: opt}
	if opt.CacheSize >= 0 {
		size := opt.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newBWCache(size)
	}
	return e
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opt }

// familyCounter returns (creating on first use) the counter of one
// configuration family.
func (e *Engine) familyCounter(name string) *familyCounter {
	e.famMu.Lock()
	defer e.famMu.Unlock()
	if e.fams == nil {
		e.fams = make(map[string]*familyCounter)
	}
	c := e.fams[name]
	if c == nil {
		c = &familyCounter{}
		e.fams[name] = c
	}
	return c
}

// Metrics snapshots the engine's cumulative counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		CyclesFound:     e.cycles.Load(),
		StepsSimulated:  e.steps.Load(),
		PairsSwept:      e.pairs.Load(),
		PackedFallbacks: e.packedFallbacks.Load(),
	}
	e.famMu.Lock()
	for name, c := range e.fams {
		h, mi, an := c.hits.Load(), c.misses.Load(), c.analytic.Load()
		if h+mi+an == 0 {
			continue
		}
		if m.Families == nil {
			m.Families = make(map[string]FamilyMetrics)
		}
		m.Families[name] = FamilyMetrics{Hits: h, Misses: mi, Analytic: an}
		m.CacheHits += h
		m.CacheMisses += mi
		m.AnalyticHits += an
	}
	e.famMu.Unlock()
	if e.cache != nil {
		m.CacheEntries = e.cache.Len()
	}
	return m
}

// Stats returns the merged per-bank statistics of the most recent
// sweep call, or nil unless Options.CollectStats is set. Cache hits
// skip simulation, so the collector covers only the states that were
// actually simulated (the canonical orbit representatives).
func (e *Engine) Stats() *stats.Collector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Engine) workers() int {
	if e.opt.Workers > 0 {
		return e.opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// run shards n independent work items over the pool. Each worker owns
// a private simulator (reused across items via memsys.Reset), so f
// must write results only into its own item's slot — that indexing is
// what keeps the output deterministic.
func (e *Engine) run(n int, f func(w *worker, i int)) {
	if e.opt.CollectStats {
		e.mu.Lock()
		e.stats = nil
		e.mu.Unlock()
	}
	if n == 0 {
		return
	}
	start := time.Now()
	defer func() { e.wallNS.Add(time.Since(start).Nanoseconds()) }()
	tl := e.opt.Timeline
	progress := e.opt.Progress
	if progress != nil {
		progress.Add(int64(n))
	}
	lat := e.opt.ItemLatency
	work := func(w *worker, i int) {
		t0 := time.Now()
		ts := tl.Start()
		f(w, i)
		itemNS := time.Since(t0).Nanoseconds()
		w.busyNS += itemNS
		w.items++
		tl.Slice(w.id, TimelineItem, ts, i, "")
		if lat != nil {
			lat.ObserveNS(itemNS)
		}
		if progress != nil {
			progress.Done(1)
		}
	}
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := &worker{e: e}
		for i := 0; i < n; i++ {
			work(w, i)
		}
		w.finish()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &worker{e: e, id: id}
			defer w.finish()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(w, i)
			}
		}(k)
	}
	wg.Wait()
}

// Grid is the parallel, cached equivalent of Grid: same pairs, same
// order, same values.
func (e *Engine) Grid(m, nc int) []PairResult {
	pairs := gridPairs(m, nc)
	out := make([]PairResult, len(pairs))
	e.run(len(pairs), func(w *worker, i int) {
		out[i] = w.sweepPair(m, nc, pairs[i][0], pairs[i][1])
	})
	return out
}

// SweepPair sweeps one pair through the engine (cache and reusable
// simulator included), returning exactly what SweepPair returns.
func (e *Engine) SweepPair(m, nc, d1, d2 int) PairResult {
	var out PairResult
	e.run(1, func(w *worker, _ int) {
		out = w.sweepPair(m, nc, d1, d2)
	})
	return out
}

// SectionGrid is the parallel, cached equivalent of SectionGrid: same
// pairs, same order, same values. Placements are canonicalised under
// the section-respecting pipeline before the cache lookup.
func (e *Engine) SectionGrid(m, s, nc int) []SectionPairResult {
	pairs := gridPairs(m, nc)
	out := make([]SectionPairResult, len(pairs))
	e.run(len(pairs), func(w *worker, i int) {
		out[i] = w.sweepSectionPair(m, s, nc, pairs[i][0], pairs[i][1])
	})
	return out
}

// SweepSectionPair sweeps one section pair through the engine,
// returning exactly what SweepSectionPair returns.
func (e *Engine) SweepSectionPair(m, s, nc, d1, d2 int) SectionPairResult {
	var out SectionPairResult
	e.run(1, func(w *worker, _ int) {
		out = w.sweepSectionPair(m, s, nc, d1, d2)
	})
	return out
}

// Triples is the parallel, cached equivalent of SweepTriples (the
// fixed-placement census at starts (0, 1, 2)).
func (e *Engine) Triples(m, nc int) []TripleResult {
	return e.TriplesAt(m, nc, [3]int{0, 1, 2})
}

// TriplesAt runs the fixed-placement triple census at an arbitrary
// start placement b. Placements that are translates of one another
// canonicalise to the same cache key, so TriplesAt(m, nc, {t, 1+t,
// 2+t}) replays the cyclic states of the standard census for free —
// the translation-orbit benchmark of scripts/bench.sh measures exactly
// that reuse.
func (e *Engine) TriplesAt(m, nc int, b [3]int) []TripleResult {
	triples := tripleList(m)
	out := make([]TripleResult, len(triples))
	e.run(len(triples), func(w *worker, i int) {
		e.pairs.Add(1)
		d := triples[i]
		cs := w.compile(TripleCensusSpec(m, nc, d, b))
		cs.b[0], cs.b[1], cs.b[2] = b[0], b[1], b[2]
		out[i] = tripleFrom(m, nc, d, b, w.bw(cs, cs.b))
	})
	return out
}

// TripleGrid is the parallel, cached equivalent of TripleGrid: every
// distance triple over all m^2 relative placements, byte-identical to
// the sequential path.
func (e *Engine) TripleGrid(m, nc int) []TripleSweepResult {
	triples := tripleList(m)
	out := make([]TripleSweepResult, len(triples))
	e.run(len(triples), func(w *worker, i int) {
		out[i] = w.sweepTriple(m, nc, triples[i])
	})
	return out
}

// SweepTriple sweeps one distance triple over all relative placements
// through the engine, returning exactly what SweepTriple returns.
func (e *Engine) SweepTriple(m, nc int, d [3]int) TripleSweepResult {
	var out TripleSweepResult
	e.run(1, func(w *worker, _ int) {
		out = w.sweepTriple(m, nc, d)
	})
	return out
}

// SweepSpec sweeps one ConfigSpec through the engine — the parallel,
// cached equivalent of the sequential SweepSpec function.
func (e *Engine) SweepSpec(spec ConfigSpec) SpecResult {
	var out SpecResult
	e.run(1, func(w *worker, _ int) {
		e.pairs.Add(1)
		cs := w.compile(spec)
		out = sweepSpecWith(spec, func(b []int) rat.Rational { return w.bw(cs, b) })
	})
	return out
}

// SpecGrid sweeps an explicit list of ConfigSpecs through the engine,
// one work item per spec, results in input order. It is the generic
// grid for policy sweeps: non-default (priority, mapping) specs do not
// fit the theorem-comparing Grid/SectionGrid result shapes (those
// embed fixed-priority analysis), but their capacity bounds are
// priority-independent, so SpecResult is exact for any policy.
func (e *Engine) SpecGrid(specs []ConfigSpec) []SpecResult {
	out := make([]SpecResult, len(specs))
	e.run(len(specs), func(w *worker, i int) {
		e.pairs.Add(1)
		cs := w.compile(specs[i])
		out[i] = sweepSpecWith(specs[i], func(b []int) rat.Rational { return w.bw(cs, b) })
	})
	return out
}

// NStreamGrid is the parallel, cached equivalent of NStreamGrid: every
// nondecreasing non-self-conflicting distance N-tuple over all
// m^(N-1) relative placements.
func (e *Engine) NStreamGrid(m, nc, n int) []SpecResult {
	specs := nStreamSpecs(m, nc, n)
	out := make([]SpecResult, len(specs))
	e.run(len(specs), func(w *worker, i int) {
		e.pairs.Add(1)
		cs := w.compile(specs[i])
		out[i] = sweepSpecWith(specs[i], func(b []int) rat.Rational { return w.bw(cs, b) })
	})
	return out
}

// --- Workers ------------------------------------------------------------

// worker is the per-goroutine state of one pool member: a reusable
// simulator, its collector, and the memoised canonicalisation pipeline
// of the current (modulus, sections) pair.
type worker struct {
	e   *Engine
	id  int
	sys *memsys.System
	cfg memsys.Config
	col *stats.Collector

	// Per-slot work totals, folded into the engine by finish().
	items  int64
	steps  int64
	busyNS int64

	// Memoised canonicalisation pipeline (see pipelineFor).
	pipe                     modmath.Pipeline
	pipeM, pipeStep, pipeFix int
}

// system returns the worker's simulator for cfg on kernel kern, reset
// and ready for ports — reusing allocations whenever the configuration
// repeats. The kernel is (re)applied after Reset because it is now a
// per-spec choice (compile may fall a spec back to scalar), and
// SetKernel is legal there: every bank is idle and the call is a no-op
// when the kernel is unchanged.
func (w *worker) system(cfg memsys.Config, kern memsys.Kernel) *memsys.System {
	if w.sys != nil && w.cfg == cfg {
		w.sys.Reset()
		w.sys.SetKernel(kern)
		return w.sys
	}
	w.flushStats()
	w.sys = memsys.New(cfg)
	w.sys.SetKernel(kern)
	w.cfg = cfg
	if w.e.opt.CollectStats {
		w.col = stats.Attach(w.sys)
	}
	return w.sys
}

// finish folds the worker's collector and work totals into the engine.
func (w *worker) finish() {
	w.flushStats()
	e := w.e
	e.mu.Lock()
	for len(e.workerTotals) <= w.id {
		e.workerTotals = append(e.workerTotals, WorkerStat{Worker: len(e.workerTotals)})
	}
	t := &e.workerTotals[w.id]
	t.Items += w.items
	t.Steps += w.steps
	t.BusyNS += w.busyNS
	e.mu.Unlock()
	w.items, w.steps, w.busyNS = 0, 0, 0
}

func (w *worker) flushStats() {
	if w.col == nil {
		return
	}
	e := w.e
	e.mu.Lock()
	if e.stats == nil {
		e.stats = w.col
	} else {
		e.stats.Merge(w.col)
	}
	e.mu.Unlock()
	w.col = nil
}

// findCycle runs steady-state detection on the worker's simulator and
// accounts for it in the engine counters.
func (w *worker) findCycle(sys *memsys.System, what string) memsys.Cycle {
	tl := w.e.opt.Timeline
	t0 := time.Now()
	ts := tl.Start()
	c, err := sys.FindCycle(findCycleBudget)
	w.e.cycleNS.Add(time.Since(t0).Nanoseconds())
	tl.Slice(w.id, TimelineFindCycle, ts, -1, "")
	if err != nil {
		panic(fmt.Sprintf("sweep: %s: %v", what, err))
	}
	w.e.cycles.Add(1)
	w.e.steps.Add(c.Lead + c.Length)
	w.steps += c.Lead + c.Length
	return c
}

func (w *worker) sweepPair(m, nc, d1, d2 int) PairResult {
	w.e.pairs.Add(1)
	cs := w.compile(PairSpec(m, nc, d1, d2))
	return sweepPairWith(m, nc, d1, d2, cs.twoStreamBW(w))
}

func (w *worker) sweepSectionPair(m, s, nc, d1, d2 int) SectionPairResult {
	w.e.pairs.Add(1)
	cs := w.compile(SectionPairSpec(m, s, nc, d1, d2))
	return sweepSectionPairWith(m, s, nc, d1, d2, cs.twoStreamBW(w))
}

func (w *worker) sweepTriple(m, nc int, d [3]int) TripleSweepResult {
	w.e.pairs.Add(1)
	cs := w.compile(TripleSpec(m, nc, d))
	return sweepTripleWith(m, nc, d, cs.tripleBW(w))
}

// pipelineFor returns the memoised canonicalisation pipeline of an
// (m, s) memory: translation normalisation by multiples of the section
// count (every translation when sectionless), composed with scaling
// minimisation over the full unit group — or over the section-fixing
// subgroup when Options.SectionFullUnits disables the stronger
// reduction on a sectioned memory.
//
// Consecutive mapping gets its own, narrower group: translations by
// multiples of the section width g = m/s (which shift whole section
// blocks onto each other, cyclically permuting the sections) and NO
// unit scaling — a unit u ≠ 1 maps the consecutive block {0..g-1}
// onto a stride-u set that straddles section boundaries, so even the
// u ≡ 1 (mod s) subgroup is unsound here (docs/CACHING.md derives the
// counterexample; the consecutive differential test pins soundness of
// what ships).
//
// The priority rule does NOT enter: every arbitration rule decides
// winners from (port ID, CPU, clock) alone and consults banks only
// through equality and section-membership tests, both of which an
// affine renumbering preserves (the bank-blind arbitration lemma,
// docs/CACHING.md). The pipeline therefore depends only on the
// mapping; the policy differential campaign (TestDifferentialPolicies,
// ivmablate -study policies) is the empirical gate on that argument.
func (w *worker) pipelineFor(m, s int, mapping memsys.SectionMapping) modmath.Pipeline {
	step := 1
	if s > 1 {
		step = s
	}
	fix := 1
	if s > 1 && !w.e.opt.sectionFullUnits() {
		fix = s
	}
	if mapping == memsys.ConsecutiveSections {
		step = m / s
		fix = m // UnitsFixing(m, m) = {1}: no scaling
	}
	if w.pipe == nil || w.pipeM != m || w.pipeStep != step || w.pipeFix != fix {
		w.pipe = modmath.NewAffinePipeline(m, step, modmath.UnitsFixing(m, fix))
		w.pipeM, w.pipeStep, w.pipeFix = m, step, fix
	}
	return w.pipe
}

// compiledSpec binds one ConfigSpec to a worker for the duration of a
// work item: the derived family and counter, the canonicalisation
// pipeline, the simulator configuration, and the scratch vectors the
// hot loop reuses.
type compiledSpec struct {
	spec    ConfigSpec
	family  string
	cpus    string
	cpuList []int
	counter *familyCounter
	canon   modmath.Pipeline
	cfg     memsys.Config
	// kernel is the inner-loop implementation this spec simulates on:
	// the engine-wide request, demoted to scalar (with the fallback
	// counted) when the packed kernel does not cover the spec's
	// priority rule.
	kernel memsys.Kernel

	// gate is the analytic fast path for this spec, or nil when the
	// spec is outside the theorems' model (sectioned, not two streams)
	// or the classifier has no start-independent closed form for it.
	// gateTheorem is the gate's theorem identifier for provenance
	// records, compiled once beside it.
	gate        *core.PairGate
	gateTheorem string

	// vec is the (d_1..d_N, b_1..b_N) canonicalisation scratch; b is
	// the start-vector scratch handed to bw by the sweep adapters.
	vec []int
	b   []int
}

// compile validates and binds spec to the worker. The returned value
// shares the worker's pipeline memo, so it is only valid until the
// worker compiles a spec with a different (m, s).
func (w *worker) compile(spec ConfigSpec) *compiledSpec {
	if err := spec.Validate(); err != nil {
		panic("sweep: " + err.Error())
	}
	n := len(spec.Streams)
	cpus := make([]int, n)
	for i, st := range spec.Streams {
		cpus[i] = st.CPU
	}
	cs := &compiledSpec{
		spec:    spec,
		family:  spec.Family(),
		cpus:    packInts(cpus),
		cpuList: cpus,
		canon:   w.pipelineFor(spec.M, spec.S, spec.Mapping),
		cfg:     specConfig(spec),
		kernel:  w.e.opt.kernel(),
		vec:     make([]int, 2*n),
		b:       make([]int, n),
	}
	if cs.kernel == memsys.KernelPacked && !memsys.PackedSupportsPriority(spec.Priority) {
		cs.kernel = memsys.KernelScalar
		w.e.packedFallbacks.Add(1)
	}
	cs.counter = w.e.familyCounter(cs.family)
	for i, st := range spec.Streams {
		cs.b[i] = st.B
	}
	// The classifier's model is a sectionless two-stream memory with
	// stream 1 holding the fixed priority — exactly what specConfig
	// builds for such specs, so the gate is sound for any CPU layout
	// (with s = m every path conflict is already a bank-level event).
	// NewPairGateUnder declines every other priority rule: those specs
	// always simulate, whatever Options.Analytic says.
	if w.e.opt.analytic() && spec.S == 0 && n == 2 {
		if g := core.NewPairGateUnder(spec.M, spec.NC, spec.Streams[0].D, spec.Streams[1].D, spec.Priority); g.Active() {
			cs.gate = &g
			cs.gateTheorem = g.TheoremID()
		}
	}
	return cs
}

// key canonicalises the placement b of the compiled spec and returns
// its cache key, leaving the canonical configuration vector in cs.vec.
// The canonical representative is the lexicographically smallest
// member of the placement's orbit under the spec's pipeline, so
// isomorphic placements collide in the cache by construction.
func (cs *compiledSpec) key(b []int) cacheKey {
	n := len(cs.spec.Streams)
	for i, st := range cs.spec.Streams {
		cs.vec[i] = st.D
	}
	copy(cs.vec[n:], b)
	cs.canon.Canonicalize(cs.vec, n)
	return cacheKey{
		family: cs.family,
		m:      cs.spec.M,
		s:      cs.spec.S,
		nc:     cs.spec.NC,
		cpus:   cs.cpus,
		vec:    packInts(cs.vec),
	}
}

// twoStreamBW adapts the cached resolver to the two-stream sweep loops
// (pair and section): stream 1 at its fixed start, stream 2 at b2.
func (cs *compiledSpec) twoStreamBW(w *worker) func(b2 int) rat.Rational {
	return func(b2 int) rat.Rational {
		cs.b[0], cs.b[1] = cs.spec.Streams[0].B, b2
		return w.bw(cs, cs.b)
	}
}

// tripleBW adapts the cached resolver to the triple sweep loop:
// stream 1 at its fixed start, streams 2 and 3 at (b2, b3).
func (cs *compiledSpec) tripleBW(w *worker) func(b2, b3 int) rat.Rational {
	return func(b2, b3 int) rat.Rational {
		cs.b[0], cs.b[1], cs.b[2] = cs.spec.Streams[0].B, b2, b3
		return w.bw(cs, cs.b)
	}
}

// bw resolves one placement of a compiled spec, through the cache when
// enabled. On a miss the CANONICAL representative is simulated — not
// the requested placement — so the cached value is exactly what any
// placement of the orbit would produce.
func (w *worker) bw(cs *compiledSpec, b []int) rat.Rational {
	v, _ := w.resolve(cs, b, false)
	return v
}

// resolution is the per-placement attribution resolve reports beside
// the bandwidth: the path taken, the gate's theorem identifier on
// analytic answers, the canonical configuration vector (copied only
// when the caller asked for it), and the simulation cost on misses.
type resolution struct {
	path     Path
	theorem  string
	canon    []int
	cycleLen int64
	clocks   int64
}

// canonCopy copies the canonical vector when the caller wants it
// returned; the scratch vector itself is reused per work item.
func canonCopy(vec []int, want bool) []int {
	if !want {
		return nil
	}
	return append([]int(nil), vec...)
}

// resolve is the engine's single answer route: analytic gate, then
// canonical-key cache, then simulation of the canonical representative,
// reporting which path resolved the placement. bw is its thin wrapper;
// Engine.Resolve surfaces the attribution to API callers.
func (w *worker) resolve(cs *compiledSpec, b []int, wantCanon bool) (rat.Rational, resolution) {
	return w.resolveSpans(cs, b, wantCanon, nil)
}

// resolveSpans is resolve with an optional request-scoped span sink:
// when sp is non-nil (a query arrived through ResolveCtx with a sink
// on its context) the gate probe, canonicalisation, cache probe and
// simulation phases are reported as named spans. A nil sink costs the
// path only nil checks — the detached-span zero-allocation guard pins
// that.
func (w *worker) resolveSpans(cs *compiledSpec, b []int, wantCanon bool, sp SpanSink) (rat.Rational, resolution) {
	e := w.e
	tl := e.opt.Timeline
	prov := e.opt.Provenance
	if cs.gate != nil {
		var gs int64
		if sp != nil {
			gs = sp.Start()
		}
		v, ok := cs.gate.BandwidthAt(b[0], b[1])
		if sp != nil {
			sp.Span(SpanGate, gs)
		}
		if ok {
			cs.counter.analytic.Add(1)
			tl.Instant(w.id, TimelineAnalytic, -1, cs.family)
			prov.Analytic(cs.family, cs.gateTheorem)
			return v, resolution{path: PathAnalytic, theorem: cs.gateTheorem}
		}
	}
	packed := cs.kernel == memsys.KernelPacked
	simPath := PathSimScalar
	if packed {
		simPath = PathSimPacked
	}
	if e.cache == nil {
		n := len(cs.spec.Streams)
		for i, st := range cs.spec.Streams {
			cs.vec[i] = st.D
		}
		copy(cs.vec[n:], b)
		var ss int64
		if sp != nil {
			ss = sp.Start()
		}
		bw, c := w.simulate(cs, cs.vec)
		if sp != nil {
			sp.Span(SpanSimulate, ss)
		}
		prov.Simulated(cs.family, cs.spec.M, cs.spec.S, cs.spec.NC, cs.vec, packed, c.Length, c.Lead+c.Length)
		return bw, resolution{path: simPath, cycleLen: c.Length, clocks: c.Lead + c.Length}
	}
	ts := tl.Start()
	var ks int64
	if sp != nil {
		ks = sp.Start()
	}
	key := cs.key(b)
	if sp != nil {
		sp.Span(SpanCanon, ks)
	}
	tl.Slice(w.id, TimelineCanon, ts, -1, cs.family)
	var ps int64
	if sp != nil {
		ps = sp.Start()
	}
	bw, ok := e.cache.get(key)
	if sp != nil {
		sp.Span(SpanCacheProbe, ps)
	}
	if ok {
		e.hit(cs.counter, key)
		tl.Instant(w.id, TimelineCacheHit, -1, cs.family)
		prov.CacheHit(cs.family, cs.spec.M, cs.spec.S, cs.spec.NC, cs.vec)
		return bw, resolution{path: PathCache, canon: canonCopy(cs.vec, wantCanon)}
	}
	e.miss(cs.counter)
	tl.Instant(w.id, TimelineCacheMiss, -1, cs.family)
	ts = tl.Start()
	var ss int64
	if sp != nil {
		ss = sp.Start()
	}
	bw, c := w.simulate(cs, cs.vec)
	if sp != nil {
		sp.Span(SpanSimulate, ss)
	}
	tl.Slice(w.id, TimelineSimulate, ts, -1, cs.family)
	prov.Simulated(cs.family, cs.spec.M, cs.spec.S, cs.spec.NC, cs.vec, packed, c.Length, c.Lead+c.Length)
	e.cache.put(key, bw)
	if sink := e.opt.CacheSink; sink != nil {
		sink.Put(CacheRecord{
			Family: cs.family,
			M:      cs.spec.M, S: cs.spec.S, NC: cs.spec.NC,
			CPUs: append([]int(nil), cs.cpuList...),
			Vec:  append([]int(nil), cs.vec...),
			BW:   bw,
		})
	}
	return bw, resolution{path: simPath, canon: canonCopy(cs.vec, wantCanon), cycleLen: c.Length, clocks: c.Lead + c.Length}
}

func (e *Engine) hit(c *familyCounter, key cacheKey) {
	c.hits.Add(1)
	if e.onHit != nil {
		e.onHit(key)
	}
}

func (e *Engine) miss(c *familyCounter) { c.misses.Add(1) }

// simulate runs the compiled spec at configuration vector v on the
// worker's reusable simulator, returning the bandwidth and the
// detected steady state (for provenance records).
func (w *worker) simulate(cs *compiledSpec, v []int) (rat.Rational, memsys.Cycle) {
	sys := w.system(cs.cfg, cs.kernel)
	addSpecStreams(sys, cs.spec, v)
	c := w.findCycle(sys, describeSpec(cs.spec, v))
	return c.EffectiveBandwidth(), c
}
