package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ivm/internal/memsys"
	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stats"
	"ivm/internal/textplot"
)

// findCycleBudget is the per-simulation clock budget for steady-state
// detection, shared by the sequential and parallel paths.
const findCycleBudget = 1 << 22

// DefaultCacheSize is the engine's cyclic-state cache capacity (total
// entries across shards) when Options.CacheSize is zero.
const DefaultCacheSize = 1 << 16

// Options configures the parallel sweep engine.
type Options struct {
	// Workers is the number of worker goroutines sharding the grid;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize bounds the cyclic-state memo cache in entries: 0 means
	// DefaultCacheSize, negative disables caching. The cache covers all
	// three sweep families — sectionless pairs, sectionless triples and
	// section pairs — keyed by the canonical form of the configuration
	// under the bank-renumbering isomorphism; section sweeps restrict
	// the renumbering to the subgroup of units fixing the k = j mod s
	// section map (see docs/CACHING.md for the derivation).
	CacheSize int
	// CollectStats attaches a stats.Collector to every worker's
	// simulator and merges them after each sweep (see Stats). Off by
	// default: per-event collection slows the hot loop.
	CollectStats bool
}

// Metrics are the engine's cumulative counters. All values aggregate
// over every sweep the engine has run; the per-kind cache counters
// split the totals by configuration family.
type Metrics struct {
	CacheHits   int64 `json:"cache_hits"`   // starts answered from the memo cache (all kinds)
	CacheMisses int64 `json:"cache_misses"` // starts that had to be simulated (all kinds)
	// Per-family cache traffic: sectionless pairs, all-placements
	// triples (and the fixed-placement census), and section pairs.
	PairCacheHits      int64 `json:"pair_cache_hits"`
	PairCacheMisses    int64 `json:"pair_cache_misses"`
	TripleCacheHits    int64 `json:"triple_cache_hits"`
	TripleCacheMisses  int64 `json:"triple_cache_misses"`
	SectionCacheHits   int64 `json:"section_cache_hits"`
	SectionCacheMisses int64 `json:"section_cache_misses"`
	CacheEntries       int   `json:"cache_entries"`   // entries currently cached
	CyclesFound        int64 `json:"cycles_found"`    // cyclic steady states detected
	StepsSimulated     int64 `json:"steps_simulated"` // clock periods stepped across all simulations
	PairsSwept         int64 `json:"pairs_swept"`     // sweep units (pairs/triples/section pairs) completed
}

func hitRate(hits, misses int64) float64 {
	n := hits + misses
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// HitRate returns the overall cache hit fraction, 0 when the cache was
// unused.
func (m Metrics) HitRate() float64 { return hitRate(m.CacheHits, m.CacheMisses) }

// PairHitRate returns the cache hit fraction of the sectionless pair
// sweeps.
func (m Metrics) PairHitRate() float64 { return hitRate(m.PairCacheHits, m.PairCacheMisses) }

// TripleHitRate returns the cache hit fraction of the triple sweeps.
func (m Metrics) TripleHitRate() float64 { return hitRate(m.TripleCacheHits, m.TripleCacheMisses) }

// SectionHitRate returns the cache hit fraction of the section sweeps.
func (m Metrics) SectionHitRate() float64 { return hitRate(m.SectionCacheHits, m.SectionCacheMisses) }

// Table renders the counters as an aligned text table. Per-kind cache
// rows appear only for kinds that saw traffic.
func (m Metrics) Table() string {
	t := &textplot.Table{Header: []string{"engine counter", "value"}}
	t.Add("sweep units", m.PairsSwept)
	t.Add("cycles found", m.CyclesFound)
	t.Add("steps simulated", m.StepsSimulated)
	t.Add("cache hits", m.CacheHits)
	t.Add("cache misses", m.CacheMisses)
	t.Add("cache entries", m.CacheEntries)
	t.Add("cache hit rate", fmt.Sprintf("%.1f%%", m.HitRate()*100))
	kinds := []struct {
		name         string
		hits, misses int64
		rate         float64
	}{
		{"pair", m.PairCacheHits, m.PairCacheMisses, m.PairHitRate()},
		{"triple", m.TripleCacheHits, m.TripleCacheMisses, m.TripleHitRate()},
		{"section", m.SectionCacheHits, m.SectionCacheMisses, m.SectionHitRate()},
	}
	for _, k := range kinds {
		if k.hits+k.misses == 0 {
			continue
		}
		t.Add(k.name+" hit rate", fmt.Sprintf("%.1f%% (%d/%d)", k.rate*100, k.hits, k.hits+k.misses))
	}
	return t.String()
}

// Engine is the parallel sweep harness: a bounded worker pool over the
// pair, triple and section-pair grids with a sharded memoization cache
// of cyclic steady states. Results are always returned in the
// sequential sweep order, so output is byte-identical to
// Grid/SectionGrid/SweepTriples/TripleGrid regardless of worker count
// or cache state.
//
// The cache key is the canonical representative of the configuration
// vector under the Appendix isomorphism: renumbering the banks
// j -> u·j mod m by a unit u maps arithmetic streams onto arithmetic
// streams while commuting with every conflict rule of the simulator,
// so all placements of one orbit share a single simulated steady
// state. Pairs canonicalise (d1, d2, b2) and triples
// (d1, d2, d3, b2, b3) under the full unit group; section pairs
// restrict to the subgroup of units congruent to 1 mod s, which fixes
// the k = j mod s section of every bank (docs/CACHING.md derives all
// four cases). An Engine is safe for concurrent use by multiple
// goroutines, though each sweep call already saturates its own pool.
type Engine struct {
	opt   Options
	cache *bwCache

	hits, misses         [numKinds]atomic.Int64
	cycles, steps, pairs atomic.Int64

	// Observability counters (see Snapshot): wall time spent inside
	// sweep calls, wall time inside steady-state detection, and the
	// cumulative per-pool-slot work totals.
	wallNS, cycleNS atomic.Int64

	mu           sync.Mutex
	stats        *stats.Collector
	workerTotals []WorkerStat

	// onHit is a test hook observing cache hits (set before sweeping).
	onHit func(cacheKey)
}

// NewEngine builds an engine; the zero Options select GOMAXPROCS
// workers and the default cache size.
func NewEngine(opt Options) *Engine {
	e := &Engine{opt: opt}
	if opt.CacheSize >= 0 {
		size := opt.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newBWCache(size)
	}
	return e
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opt }

// Metrics snapshots the engine's cumulative counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		PairCacheHits:      e.hits[kindPair].Load(),
		PairCacheMisses:    e.misses[kindPair].Load(),
		TripleCacheHits:    e.hits[kindTriple].Load(),
		TripleCacheMisses:  e.misses[kindTriple].Load(),
		SectionCacheHits:   e.hits[kindSection].Load(),
		SectionCacheMisses: e.misses[kindSection].Load(),
		CyclesFound:        e.cycles.Load(),
		StepsSimulated:     e.steps.Load(),
		PairsSwept:         e.pairs.Load(),
	}
	m.CacheHits = m.PairCacheHits + m.TripleCacheHits + m.SectionCacheHits
	m.CacheMisses = m.PairCacheMisses + m.TripleCacheMisses + m.SectionCacheMisses
	if e.cache != nil {
		m.CacheEntries = e.cache.Len()
	}
	return m
}

// Stats returns the merged per-bank statistics of the most recent
// sweep call, or nil unless Options.CollectStats is set. Cache hits
// skip simulation, so the collector covers only the states that were
// actually simulated (the canonical orbit representatives).
func (e *Engine) Stats() *stats.Collector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Engine) workers() int {
	if e.opt.Workers > 0 {
		return e.opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// run shards n independent work items over the pool. Each worker owns
// a private simulator (reused across items via memsys.Reset), so f
// must write results only into its own item's slot — that indexing is
// what keeps the output deterministic.
func (e *Engine) run(n int, f func(w *worker, i int)) {
	if e.opt.CollectStats {
		e.mu.Lock()
		e.stats = nil
		e.mu.Unlock()
	}
	if n == 0 {
		return
	}
	start := time.Now()
	defer func() { e.wallNS.Add(time.Since(start).Nanoseconds()) }()
	work := func(w *worker, i int) {
		t0 := time.Now()
		f(w, i)
		w.busyNS += time.Since(t0).Nanoseconds()
		w.items++
	}
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := &worker{e: e}
		for i := 0; i < n; i++ {
			work(w, i)
		}
		w.finish()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &worker{e: e, id: id}
			defer w.finish()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(w, i)
			}
		}(k)
	}
	wg.Wait()
}

// Grid is the parallel, cached equivalent of Grid: same pairs, same
// order, same values.
func (e *Engine) Grid(m, nc int) []PairResult {
	pairs := gridPairs(m, nc)
	out := make([]PairResult, len(pairs))
	e.run(len(pairs), func(w *worker, i int) {
		out[i] = w.sweepPair(m, nc, pairs[i][0], pairs[i][1])
	})
	return out
}

// SweepPair sweeps one pair through the engine (cache and reusable
// simulator included), returning exactly what SweepPair returns.
func (e *Engine) SweepPair(m, nc, d1, d2 int) PairResult {
	var out PairResult
	e.run(1, func(w *worker, _ int) {
		out = w.sweepPair(m, nc, d1, d2)
	})
	return out
}

// SectionGrid is the parallel, cached equivalent of SectionGrid: same
// pairs, same order, same values. Placements are canonicalised under
// the section-respecting unit subgroup before the cache lookup.
func (e *Engine) SectionGrid(m, s, nc int) []SectionPairResult {
	pairs := gridPairs(m, nc)
	out := make([]SectionPairResult, len(pairs))
	e.run(len(pairs), func(w *worker, i int) {
		e.pairs.Add(1)
		out[i] = sweepSectionPairWith(m, s, nc, pairs[i][0], pairs[i][1], w.sectionBandwidth)
	})
	return out
}

// SweepSectionPair sweeps one section pair through the engine,
// returning exactly what SweepSectionPair returns.
func (e *Engine) SweepSectionPair(m, s, nc, d1, d2 int) SectionPairResult {
	var out SectionPairResult
	e.run(1, func(w *worker, _ int) {
		e.pairs.Add(1)
		out = sweepSectionPairWith(m, s, nc, d1, d2, w.sectionBandwidth)
	})
	return out
}

// Triples is the parallel, cached equivalent of SweepTriples (the
// fixed-placement census).
func (e *Engine) Triples(m, nc int) []TripleResult {
	triples := tripleList(m)
	out := make([]TripleResult, len(triples))
	e.run(len(triples), func(w *worker, i int) {
		e.pairs.Add(1)
		d := triples[i]
		out[i] = tripleFrom(m, nc, d, w.tripleBandwidth(m, nc, d, 1, 2))
	})
	return out
}

// TripleGrid is the parallel, cached equivalent of TripleGrid: every
// distance triple over all m^2 relative placements, byte-identical to
// the sequential path.
func (e *Engine) TripleGrid(m, nc int) []TripleSweepResult {
	triples := tripleList(m)
	out := make([]TripleSweepResult, len(triples))
	e.run(len(triples), func(w *worker, i int) {
		out[i] = w.sweepTriple(m, nc, triples[i])
	})
	return out
}

// SweepTriple sweeps one distance triple over all relative placements
// through the engine, returning exactly what SweepTriple returns.
func (e *Engine) SweepTriple(m, nc int, d [3]int) TripleSweepResult {
	var out TripleSweepResult
	e.run(1, func(w *worker, _ int) {
		out = w.sweepTriple(m, nc, d)
	})
	return out
}

// --- Workers ------------------------------------------------------------

// worker is the per-goroutine state of one pool member: a reusable
// simulator, its collector, and the memoised unit group of the current
// (modulus, sections) pair.
type worker struct {
	e   *Engine
	id  int
	sys *memsys.System
	cfg memsys.Config
	col *stats.Collector

	// Per-slot work totals, folded into the engine by finish().
	items  int64
	steps  int64
	busyNS int64

	units          []int
	unitsM, unitsS int

	// vec is the canonicalisation scratch vector (see keyOf).
	vec [5]int
}

// system returns the worker's simulator for cfg, reset and ready for
// ports — reusing allocations whenever the configuration repeats.
func (w *worker) system(cfg memsys.Config) *memsys.System {
	if w.sys != nil && w.cfg == cfg {
		w.sys.Reset()
		return w.sys
	}
	w.flushStats()
	w.sys = memsys.New(cfg)
	w.cfg = cfg
	if w.e.opt.CollectStats {
		w.col = stats.Attach(w.sys)
	}
	return w.sys
}

// finish folds the worker's collector and work totals into the engine.
func (w *worker) finish() {
	w.flushStats()
	e := w.e
	e.mu.Lock()
	for len(e.workerTotals) <= w.id {
		e.workerTotals = append(e.workerTotals, WorkerStat{Worker: len(e.workerTotals)})
	}
	t := &e.workerTotals[w.id]
	t.Items += w.items
	t.Steps += w.steps
	t.BusyNS += w.busyNS
	e.mu.Unlock()
	w.items, w.steps, w.busyNS = 0, 0, 0
}

func (w *worker) flushStats() {
	if w.col == nil {
		return
	}
	e := w.e
	e.mu.Lock()
	if e.stats == nil {
		e.stats = w.col
	} else {
		e.stats.Merge(w.col)
	}
	e.mu.Unlock()
	w.col = nil
}

// findCycle runs steady-state detection on the worker's simulator and
// accounts for it in the engine counters.
func (w *worker) findCycle(sys *memsys.System, what string) memsys.Cycle {
	t0 := time.Now()
	c, err := sys.FindCycle(findCycleBudget)
	w.e.cycleNS.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		panic(fmt.Sprintf("sweep: %s: %v", what, err))
	}
	w.e.cycles.Add(1)
	w.e.steps.Add(c.Lead + c.Length)
	w.steps += c.Lead + c.Length
	return c
}

func (w *worker) sweepPair(m, nc, d1, d2 int) PairResult {
	w.e.pairs.Add(1)
	return sweepPairWith(m, nc, d1, d2, w.bandwidth)
}

func (w *worker) sweepTriple(m, nc int, d [3]int) TripleSweepResult {
	w.e.pairs.Add(1)
	return sweepTripleWith(m, nc, d, w.tripleBandwidth)
}

// unitGroup returns the memoised scaling group for an (m, s) memory:
// all units of Z_m when s <= 1, the section-fixing subgroup otherwise.
func (w *worker) unitGroup(m, s int) []int {
	if w.unitsM != m || w.unitsS != s {
		w.units = modmath.UnitsFixing(m, s)
		w.unitsM, w.unitsS = m, s
	}
	return w.units
}

// keyOf canonicalises the first n elements of w.vec under the (m, s)
// unit group and returns the completed cache key. The canonical
// representative is the lexicographically smallest member of the
// orbit, so isomorphic placements collide in the cache by
// construction.
func (w *worker) keyOf(kind sweepKind, m, s, nc, n int) cacheKey {
	key := cacheKey{Kind: kind, M: m, S: s, NC: nc}
	modmath.CanonicalizeInto(key.V[:n], w.vec[:n], m, w.unitGroup(m, s))
	return key
}

// bandwidth resolves one relative start of a sectionless pair, through
// the cache when enabled. On a miss the CANONICAL representative is
// simulated, so the cached value is exactly what any placement of the
// orbit would produce.
func (w *worker) bandwidth(m, nc, d1, b2, d2 int) rat.Rational {
	e := w.e
	if e.cache == nil {
		return w.simulatePair(m, nc, d1, b2, d2)
	}
	w.vec = [5]int{d1, d2, b2}
	key := w.keyOf(kindPair, m, 0, nc, 3)
	if bw, ok := e.cache.get(key); ok {
		e.hit(kindPair, key)
		return bw
	}
	bw := w.simulatePair(key.M, key.NC, key.V[0], key.V[2], key.V[1])
	e.miss(kindPair)
	e.cache.put(key, bw)
	return bw
}

// sectionBandwidth resolves one placement of a section pair, through
// the cache when enabled. Canonicalisation uses only the units
// congruent to 1 mod s, so the renumbered system has every bank in its
// original section and the cached steady state transfers exactly.
func (w *worker) sectionBandwidth(m, s, nc, d1, b2, d2 int) rat.Rational {
	e := w.e
	if e.cache == nil {
		return w.simulateSection(m, s, nc, d1, b2, d2)
	}
	w.vec = [5]int{d1, d2, b2}
	key := w.keyOf(kindSection, m, s, nc, 3)
	if bw, ok := e.cache.get(key); ok {
		e.hit(kindSection, key)
		return bw
	}
	bw := w.simulateSection(key.M, key.S, key.NC, key.V[0], key.V[2], key.V[1])
	e.miss(kindSection)
	e.cache.put(key, bw)
	return bw
}

// tripleBandwidth resolves one placement (0, b2, b3) of a distance
// triple, through the cache when enabled. The fixed-placement census
// and the all-placements sweep share these entries: the census is the
// (b2, b3) = (1, 2) slice of the same orbit space.
func (w *worker) tripleBandwidth(m, nc int, d [3]int, b2, b3 int) rat.Rational {
	e := w.e
	if e.cache == nil {
		return w.simulateTriple(m, nc, d, b2, b3)
	}
	w.vec = [5]int{d[0], d[1], d[2], b2, b3}
	key := w.keyOf(kindTriple, m, 0, nc, 5)
	if bw, ok := e.cache.get(key); ok {
		e.hit(kindTriple, key)
		return bw
	}
	bw := w.simulateTriple(key.M, key.NC, [3]int{key.V[0], key.V[1], key.V[2]}, key.V[3], key.V[4])
	e.miss(kindTriple)
	e.cache.put(key, bw)
	return bw
}

func (e *Engine) hit(k sweepKind, key cacheKey) {
	e.hits[k].Add(1)
	if e.onHit != nil {
		e.onHit(key)
	}
}

func (e *Engine) miss(k sweepKind) { e.misses[k].Add(1) }

func (w *worker) simulatePair(m, nc, d1, b2, d2 int) rat.Rational {
	sys := w.system(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	c := w.findCycle(sys, fmt.Sprintf("pair m=%d nc=%d d1=%d d2=%d b2=%d", m, nc, d1, d2, b2))
	return c.EffectiveBandwidth()
}

func (w *worker) simulateSection(m, s, nc, d1, b2, d2 int) rat.Rational {
	sys := w.system(memsys.Config{Banks: m, Sections: s, BankBusy: nc, CPUs: 1})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
	sys.AddPort(0, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	c := w.findCycle(sys, fmt.Sprintf("section pair m=%d s=%d nc=%d (%d,%d,%d)", m, s, nc, d1, b2, d2))
	return c.EffectiveBandwidth()
}

func (w *worker) simulateTriple(m, nc int, d [3]int, b2, b3 int) rat.Rational {
	sys := w.system(memsys.Config{Banks: m, BankBusy: nc, CPUs: 3})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d[0])))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d[1])))
	sys.AddPort(2, "3", memsys.NewInfiniteStrided(int64(b3), int64(d[2])))
	c := w.findCycle(sys, fmt.Sprintf("triple (%d,%d,%d) b2=%d b3=%d", d[0], d[1], d[2], b2, b3))
	return c.EffectiveBandwidth()
}
