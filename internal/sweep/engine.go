package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ivm/internal/memsys"
	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stats"
	"ivm/internal/textplot"
)

// findCycleBudget is the per-simulation clock budget for steady-state
// detection, shared by the sequential and parallel paths.
const findCycleBudget = 1 << 22

// DefaultCacheSize is the engine's cyclic-state cache capacity (total
// entries across shards) when Options.CacheSize is zero.
const DefaultCacheSize = 1 << 16

// Options configures the parallel sweep engine.
type Options struct {
	// Workers is the number of worker goroutines sharding the grid;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize bounds the cyclic-state memo cache in entries: 0 means
	// DefaultCacheSize, negative disables caching. The cache applies to
	// the sectionless pair sweep (Grid/SweepPair) only — the bank
	// renumbering the key canonicalisation relies on does not commute
	// with a section partition.
	CacheSize int
	// CollectStats attaches a stats.Collector to every worker's
	// simulator and merges them after each sweep (see Stats). Off by
	// default: per-event collection slows the hot loop.
	CollectStats bool
}

// Metrics are the engine's cumulative counters. All values aggregate
// over every sweep the engine has run.
type Metrics struct {
	CacheHits      int64 `json:"cache_hits"`      // starts answered from the memo cache
	CacheMisses    int64 `json:"cache_misses"`    // starts that had to be simulated
	CacheEntries   int   `json:"cache_entries"`   // entries currently cached
	CyclesFound    int64 `json:"cycles_found"`    // cyclic steady states detected
	StepsSimulated int64 `json:"steps_simulated"` // clock periods stepped across all simulations
	PairsSwept     int64 `json:"pairs_swept"`     // pair (and triple) sweep units completed
}

// HitRate returns the cache hit fraction, 0 when the cache was unused.
func (m Metrics) HitRate() float64 {
	n := m.CacheHits + m.CacheMisses
	if n == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(n)
}

// Table renders the counters as an aligned text table.
func (m Metrics) Table() string {
	t := &textplot.Table{Header: []string{"engine counter", "value"}}
	t.Add("pairs swept", m.PairsSwept)
	t.Add("cycles found", m.CyclesFound)
	t.Add("steps simulated", m.StepsSimulated)
	t.Add("cache hits", m.CacheHits)
	t.Add("cache misses", m.CacheMisses)
	t.Add("cache entries", m.CacheEntries)
	t.Add("cache hit rate", fmt.Sprintf("%.1f%%", m.HitRate()*100))
	return t.String()
}

// Engine is the parallel sweep harness: a bounded worker pool over the
// (m, n_c, d1, d2, start) grid with a sharded memoization cache of
// cyclic steady states. Results are always returned in the sequential
// sweep order, so output is byte-identical to Grid/SectionGrid/
// SweepTriples regardless of worker count or cache state.
//
// The cache key is the canonical representative of the start triple
// (d1, d2, b2) under the Appendix isomorphism: renumbering the banks
// j -> u·j mod m by any unit u maps the pair (0, d1), (b2, d2) onto
// (0, u·d1), (u·b2, u·d2) while commuting with every conflict rule of
// the simulator, so all triples of one orbit share a single simulated
// steady state. An Engine is safe for concurrent use by multiple
// goroutines, though each sweep call already saturates its own pool.
type Engine struct {
	opt   Options
	cache *bwCache

	hits, misses, cycles, steps, pairs atomic.Int64

	// Observability counters (see Snapshot): wall time spent inside
	// sweep calls, wall time inside steady-state detection, and the
	// cumulative per-pool-slot work totals.
	wallNS, cycleNS atomic.Int64

	mu           sync.Mutex
	stats        *stats.Collector
	workerTotals []WorkerStat

	// onHit is a test hook observing cache hits (set before sweeping).
	onHit func(pairKey)
}

// NewEngine builds an engine; the zero Options select GOMAXPROCS
// workers and the default cache size.
func NewEngine(opt Options) *Engine {
	e := &Engine{opt: opt}
	if opt.CacheSize >= 0 {
		size := opt.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newBWCache(size)
	}
	return e
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opt }

// Metrics snapshots the engine's cumulative counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		CacheHits:      e.hits.Load(),
		CacheMisses:    e.misses.Load(),
		CyclesFound:    e.cycles.Load(),
		StepsSimulated: e.steps.Load(),
		PairsSwept:     e.pairs.Load(),
	}
	if e.cache != nil {
		m.CacheEntries = e.cache.Len()
	}
	return m
}

// Stats returns the merged per-bank statistics of the most recent
// sweep call, or nil unless Options.CollectStats is set. Cache hits
// skip simulation, so the collector covers only the states that were
// actually simulated (the canonical orbit representatives).
func (e *Engine) Stats() *stats.Collector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Engine) workers() int {
	if e.opt.Workers > 0 {
		return e.opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// run shards n independent work items over the pool. Each worker owns
// a private simulator (reused across items via memsys.Reset), so f
// must write results only into its own item's slot — that indexing is
// what keeps the output deterministic.
func (e *Engine) run(n int, f func(w *worker, i int)) {
	if e.opt.CollectStats {
		e.mu.Lock()
		e.stats = nil
		e.mu.Unlock()
	}
	if n == 0 {
		return
	}
	start := time.Now()
	defer func() { e.wallNS.Add(time.Since(start).Nanoseconds()) }()
	work := func(w *worker, i int) {
		t0 := time.Now()
		f(w, i)
		w.busyNS += time.Since(t0).Nanoseconds()
		w.items++
	}
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := &worker{e: e}
		for i := 0; i < n; i++ {
			work(w, i)
		}
		w.finish()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &worker{e: e, id: id}
			defer w.finish()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(w, i)
			}
		}(k)
	}
	wg.Wait()
}

// Grid is the parallel, cached equivalent of Grid: same pairs, same
// order, same values.
func (e *Engine) Grid(m, nc int) []PairResult {
	pairs := gridPairs(m, nc)
	out := make([]PairResult, len(pairs))
	e.run(len(pairs), func(w *worker, i int) {
		out[i] = w.sweepPair(m, nc, pairs[i][0], pairs[i][1])
	})
	return out
}

// SweepPair sweeps one pair through the engine (cache and reusable
// simulator included), returning exactly what SweepPair returns.
func (e *Engine) SweepPair(m, nc, d1, d2 int) PairResult {
	var out PairResult
	e.run(1, func(w *worker, _ int) {
		out = w.sweepPair(m, nc, d1, d2)
	})
	return out
}

// SectionGrid is the parallel equivalent of SectionGrid. Placements
// are simulated uncached (sections break the renumbering symmetry)
// but workers still shard pairs and reuse their simulators.
func (e *Engine) SectionGrid(m, s, nc int) []SectionPairResult {
	pairs := gridPairs(m, nc)
	out := make([]SectionPairResult, len(pairs))
	e.run(len(pairs), func(w *worker, i int) {
		e.pairs.Add(1)
		out[i] = sweepSectionPairWith(m, s, nc, pairs[i][0], pairs[i][1], w.sectionBandwidth)
	})
	return out
}

// Triples is the parallel equivalent of SweepTriples.
func (e *Engine) Triples(m, nc int) []TripleResult {
	triples := tripleList(m)
	out := make([]TripleResult, len(triples))
	e.run(len(triples), func(w *worker, i int) {
		e.pairs.Add(1)
		d := triples[i]
		out[i] = tripleFrom(m, nc, d, w.tripleBandwidth(m, nc, d))
	})
	return out
}

// --- Workers ------------------------------------------------------------

// worker is the per-goroutine state of one pool member: a reusable
// simulator, its collector, and the memoised unit group of the current
// modulus.
type worker struct {
	e   *Engine
	id  int
	sys *memsys.System
	cfg memsys.Config
	col *stats.Collector

	// Per-slot work totals, folded into the engine by finish().
	items  int64
	steps  int64
	busyNS int64

	units  []int
	unitsM int
}

// system returns the worker's simulator for cfg, reset and ready for
// ports — reusing allocations whenever the configuration repeats.
func (w *worker) system(cfg memsys.Config) *memsys.System {
	if w.sys != nil && w.cfg == cfg {
		w.sys.Reset()
		return w.sys
	}
	w.flushStats()
	w.sys = memsys.New(cfg)
	w.cfg = cfg
	if w.e.opt.CollectStats {
		w.col = stats.Attach(w.sys)
	}
	return w.sys
}

// finish folds the worker's collector and work totals into the engine.
func (w *worker) finish() {
	w.flushStats()
	e := w.e
	e.mu.Lock()
	for len(e.workerTotals) <= w.id {
		e.workerTotals = append(e.workerTotals, WorkerStat{Worker: len(e.workerTotals)})
	}
	t := &e.workerTotals[w.id]
	t.Items += w.items
	t.Steps += w.steps
	t.BusyNS += w.busyNS
	e.mu.Unlock()
	w.items, w.steps, w.busyNS = 0, 0, 0
}

func (w *worker) flushStats() {
	if w.col == nil {
		return
	}
	e := w.e
	e.mu.Lock()
	if e.stats == nil {
		e.stats = w.col
	} else {
		e.stats.Merge(w.col)
	}
	e.mu.Unlock()
	w.col = nil
}

// findCycle runs steady-state detection on the worker's simulator and
// accounts for it in the engine counters.
func (w *worker) findCycle(sys *memsys.System, what string) memsys.Cycle {
	t0 := time.Now()
	c, err := sys.FindCycle(findCycleBudget)
	w.e.cycleNS.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		panic(fmt.Sprintf("sweep: %s: %v", what, err))
	}
	w.e.cycles.Add(1)
	w.e.steps.Add(c.Lead + c.Length)
	w.steps += c.Lead + c.Length
	return c
}

func (w *worker) sweepPair(m, nc, d1, d2 int) PairResult {
	w.e.pairs.Add(1)
	return sweepPairWith(m, nc, d1, d2, w.bandwidth)
}

// bandwidth resolves one relative start of a pair, through the cache
// when enabled. On a miss the CANONICAL representative is simulated,
// so the cached value is exactly what any triple of the orbit would
// produce.
func (w *worker) bandwidth(m, nc, d1, b2, d2 int) rat.Rational {
	e := w.e
	if e.cache == nil {
		return w.simulatePair(m, nc, d1, b2, d2)
	}
	key := w.canonicalKey(m, nc, d1, d2, b2)
	if bw, ok := e.cache.get(key); ok {
		e.hits.Add(1)
		if e.onHit != nil {
			e.onHit(key)
		}
		return bw
	}
	bw := w.simulatePair(key.M, key.NC, key.D1, key.B2, key.D2)
	e.misses.Add(1)
	e.cache.put(key, bw)
	return bw
}

func (w *worker) simulatePair(m, nc, d1, b2, d2 int) rat.Rational {
	sys := w.system(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	c := w.findCycle(sys, fmt.Sprintf("pair m=%d nc=%d d1=%d d2=%d b2=%d", m, nc, d1, d2, b2))
	return c.EffectiveBandwidth()
}

func (w *worker) sectionBandwidth(m, s, nc, d1, b2, d2 int) rat.Rational {
	sys := w.system(memsys.Config{Banks: m, Sections: s, BankBusy: nc, CPUs: 1})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
	sys.AddPort(0, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	c := w.findCycle(sys, fmt.Sprintf("section pair m=%d s=%d nc=%d (%d,%d,%d)", m, s, nc, d1, b2, d2))
	return c.EffectiveBandwidth()
}

func (w *worker) tripleBandwidth(m, nc int, d [3]int) rat.Rational {
	sys := w.system(memsys.Config{Banks: m, BankBusy: nc, CPUs: 3})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d[0])))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(1, int64(d[1])))
	sys.AddPort(2, "3", memsys.NewInfiniteStrided(2, int64(d[2])))
	c := w.findCycle(sys, fmt.Sprintf("triple (%d,%d,%d)", d[0], d[1], d[2]))
	return c.EffectiveBandwidth()
}

// canonicalKey maps a start triple to the lexicographically smallest
// member of its isomorphism orbit {(u·d1, u·d2, u·b2) mod m : u unit}.
func (w *worker) canonicalKey(m, nc, d1, d2, b2 int) pairKey {
	if w.unitsM != m {
		w.units = modmath.Units(m)
		w.unitsM = m
	}
	d1, d2, b2 = modmath.Mod(d1, m), modmath.Mod(d2, m), modmath.Mod(b2, m)
	best := [3]int{d1, d2, b2}
	for _, u := range w.units {
		c := [3]int{modmath.Mod(u*d1, m), modmath.Mod(u*d2, m), modmath.Mod(u*b2, m)}
		if c[0] < best[0] ||
			(c[0] == best[0] && (c[1] < best[1] || (c[1] == best[1] && c[2] < best[2]))) {
			best = c
		}
	}
	return pairKey{M: m, NC: nc, D1: best[0], D2: best[1], B2: best[2]}
}
