package sweep

import (
	"reflect"
	"testing"
)

// TestDifferentialConsecutiveSections pins the consecutive-mapping
// cache against the cold sequential sweep. The canonicalisation group
// for consecutive sections is only the translations by multiples of
// m/s (scaling by units u != 1 can move a consecutive block across a
// section boundary: m=4, s=2, u=3 maps {0,1} to {0,3}), so the cached
// engine must agree with the uncached path everywhere while still
// collapsing translated placements onto shared orbits.
func TestDifferentialConsecutiveSections(t *testing.T) {
	grids := []struct{ m, s, nc int }{
		{8, 2, 2},
		{12, 3, 3},
		{12, 4, 2},
		{16, 4, 4},
	}
	eng := NewEngine(Options{Workers: 4})
	for _, g := range grids {
		for d1 := 0; d1 < g.m; d1 += 3 {
			for d2 := d1; d2 < g.m; d2 += 2 {
				spec := ConsecSectionPairSpec(g.m, g.s, g.nc, d1, d2)
				cold := SweepSpec(spec)
				got := eng.SweepSpec(spec)
				if !reflect.DeepEqual(cold, got) {
					t.Fatalf("m=%d s=%d nc=%d (%d,%d): engine %+v != sequential %+v",
						g.m, g.s, g.nc, d1, d2, got, cold)
				}
			}
		}
	}
	fam := eng.Metrics().Families["section-consec"]
	if fam.Misses == 0 {
		t.Fatalf("consecutive sweeps never simulated: %+v", fam)
	}

	// Translating the first stream's start by m/s lands every
	// placement on an orbit the b1=0 pass already simulated: the
	// second pass must answer entirely from the cache.
	for _, g := range grids {
		for d1 := 0; d1 < g.m; d1 += 3 {
			for d2 := d1; d2 < g.m; d2 += 2 {
				spec := ConsecSectionPairSpec(g.m, g.s, g.nc, d1, d2)
				spec.Streams[0].B = g.m / g.s
				cold := SweepSpec(spec)
				got := eng.SweepSpec(spec)
				if !reflect.DeepEqual(cold, got) {
					t.Fatalf("m=%d s=%d nc=%d (%d,%d) b1=%d: engine %+v != sequential %+v",
						g.m, g.s, g.nc, d1, d2, g.m/g.s, got, cold)
				}
			}
		}
	}
	shifted := eng.Metrics().Families["section-consec"]
	if shifted.Misses != fam.Misses {
		t.Fatalf("translated pass simulated %d new orbits; the m/s translation group should cover it",
			shifted.Misses-fam.Misses)
	}
	if shifted.Hits <= fam.Hits {
		t.Fatalf("translated pass never hit the cache: %+v then %+v", fam, shifted)
	}

	// The same strides under the cyclic mapping are a different family
	// with (in general) different bandwidths; the two must not share
	// cache traffic.
	if _, ok := eng.Metrics().Families["section"]; ok {
		t.Fatal("consecutive sweeps leaked into the cyclic section family")
	}
}

// TestDifferentialConsecutiveResolve pins Resolve on consecutive
// specs: translated placements share an orbit (second resolve hits),
// and values match the cold single-placement simulation.
func TestDifferentialConsecutiveResolve(t *testing.T) {
	eng := NewEngine(Options{Workers: 1})
	spec := ConsecSectionPairSpec(12, 3, 2, 1, 5)
	spec.Streams[1].Sweep = false
	spec.Streams[1].B = 2
	cold := simulateSpecVec(spec, []int{1, 5, 0, 2})
	first, err := eng.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !first.BW.Equal(cold) {
		t.Fatalf("consecutive resolve b_eff %s, cold %s", first.BW, cold)
	}
	if first.Family != "section-consec" {
		t.Fatalf("consecutive resolve family %q", first.Family)
	}

	// Translate both starts by m/s = 4: same orbit, cache hit.
	shifted := ConsecSectionPairSpec(12, 3, 2, 1, 5)
	shifted.Streams[0].B = 4
	shifted.Streams[1].Sweep = false
	shifted.Streams[1].B = 6
	second, err := eng.Resolve(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if second.Path != PathCache {
		t.Fatalf("translated consecutive resolve path %v, want cache", second.Path)
	}
	if !second.BW.Equal(cold) {
		t.Fatalf("translated consecutive resolve b_eff %s, cold %s", second.BW, cold)
	}
}
