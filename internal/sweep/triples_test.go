package sweep

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// Engine.TripleGrid must be indistinguishable from TripleGrid — same
// results in the same order, hence byte-identical rendered tables —
// for any worker count and cache configuration.
func TestEngineTripleGridByteIdenticalToSequential(t *testing.T) {
	seq := TripleGrid(6, 2)
	seqTable := TripleGridTable(seq)
	for _, opt := range []Options{
		{Workers: 1, CacheSize: -1},
		{Workers: 4},
		{Workers: 4, CacheSize: 64},
		{Workers: 3, CacheSize: -1, CollectStats: true},
	} {
		eng := NewEngine(opt)
		par := eng.TripleGrid(6, 2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("opts %+v: parallel triple grid differs from sequential", opt)
		}
		if got := TripleGridTable(par); got != seqTable {
			t.Fatalf("opts %+v: rendered triple table differs", opt)
		}
	}
}

// The acceptance grid of EXPERIMENTS.md: on the prime-modulus triple
// grid (7, 2) the cache must collapse at least half of the placements
// onto cached orbit representatives. (Power-of-two moduli fall short
// of 50% — even vectors have large stabilisers under unit scaling; see
// docs/CACHING.md — which is why the acceptance grid is prime.)
func TestEngineTripleGridHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("full (7,2) triple grid")
	}
	eng := NewEngine(Options{})
	results := eng.TripleGrid(7, 2)
	m := eng.Metrics()
	starts := int64(0)
	for _, r := range results {
		starts += int64(r.Starts)
	}
	tf := m.Family("triple")
	if tf.Hits+tf.Misses != starts {
		t.Fatalf("triple hits %d + misses %d != %d placements",
			tf.Hits, tf.Misses, starts)
	}
	if hr := m.TripleHitRate(); hr < 0.5 {
		t.Fatalf("triple hit rate %.2f below the 0.5 acceptance floor", hr)
	}
	if len(m.Families) != 1 {
		t.Fatalf("triple sweep leaked into other family counters: %+v", m.Families)
	}
	if s := SummariseTripleGrid(7, 2, results); s.Violations != 0 {
		t.Fatalf("%d capacity-bound violations", s.Violations)
	}
}

// Random distance triples: the cached engine, the cold sequential
// sweep and the per-placement capacity bounds are three independent
// routes to the same numbers.
func TestDifferentialRandomTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(19850803))
	eng := NewEngine(Options{Workers: 4})
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(7) // 2..8
		nc := 1 + rng.Intn(3)
		d := [3]int{rng.Intn(m), rng.Intn(m), rng.Intn(m)}
		seq := SweepTriple(m, nc, d)
		par := eng.SweepTriple(m, nc, d)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d m=%d nc=%d d=%v: engine %+v != sequential %+v",
				trial, m, nc, d, par, seq)
		}
		if seq.Violations != 0 {
			t.Fatalf("trial %d m=%d nc=%d d=%v: %d capacity-bound violations",
				trial, m, nc, d, seq.Violations)
		}
	}
	if eng.Metrics().Family("triple").Hits == 0 {
		t.Fatal("random triples never hit the cache; canonicalisation is not collapsing orbits")
	}
}

// The census and the all-placements sweep must tell one story: the
// fixed placement (0, 1, 2) is one of the m^2 swept placements, so its
// bandwidth lies inside [SimMin, SimMax].
func TestTripleCensusInsideGridRange(t *testing.T) {
	census := SweepTriples(6, 2)
	grid := TripleGrid(6, 2)
	if len(census) != len(grid) {
		t.Fatalf("census has %d triples, grid %d", len(census), len(grid))
	}
	for i, c := range census {
		g := grid[i]
		if c.D != g.D {
			t.Fatalf("row %d: census triple %v != grid triple %v", i, c.D, g.D)
		}
		if c.Bandwidth.Cmp(g.SimMin) < 0 || c.Bandwidth.Cmp(g.SimMax) > 0 {
			t.Fatalf("triple %v: census bandwidth %s outside grid range [%s, %s]",
				c.D, c.Bandwidth, g.SimMin, g.SimMax)
		}
	}
}

func TestTripleGridSummaryAndTable(t *testing.T) {
	results := TripleGrid(4, 1)
	s := SummariseTripleGrid(4, 1, results)
	if s.Triples != len(results) || s.Starts != 16*len(results) {
		t.Fatalf("summary miscounts: %+v over %d triples", s, len(results))
	}
	if s.Violations != 0 {
		t.Fatalf("%d violations", s.Violations)
	}
	if s.TightSomewhere == 0 || s.TightStarts == 0 {
		t.Fatalf("no tight placements at all: %+v", s)
	}
	out := TripleGridTable(results)
	for _, col := range []string{"d1", "d3", "sim min", "sim max", "tight"} {
		if !strings.Contains(out, col) {
			t.Fatalf("table missing %q:\n%s", col, out)
		}
	}
}

// decodeFuzzTriple maps raw fuzz bytes onto a valid triple-sweep
// input: m in [1,8] (the all-placements sweep is m^2 per triple),
// n_c in [1,4], distances reduced mod m.
func decodeFuzzTriple(mRaw, ncRaw, d1Raw, d2Raw, d3Raw uint8) (m, nc int, d [3]int) {
	m = 1 + int(mRaw%8)
	nc = 1 + int(ncRaw%4)
	d = [3]int{int(d1Raw) % m, int(d2Raw) % m, int(d3Raw) % m}
	return
}

// FuzzSweepTriple differentially tests one distance triple per input:
// the cached parallel engine against the cold sequential sweep, and
// every placement against its capacity bound.
func FuzzSweepTriple(f *testing.F) {
	seeds := [][5]uint8{
		{7, 1, 1, 1, 1}, // m=8 nc=2 (1,1,1): conflict-free from spread starts
		{7, 1, 2, 4, 6}, // m=8 nc=2 (2,4,6): even strides, half the banks
		{7, 3, 0, 1, 2}, // m=8 nc=4 (0,1,2): a stalling zero stride
		{5, 2, 1, 2, 3}, // m=6 nc=3 (1,2,3): mixed gcds
		{3, 0, 3, 3, 3}, // m=4 nc=1 (3,3,3): common unit stride 3
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4])
	}
	f.Fuzz(func(t *testing.T, mRaw, ncRaw, d1Raw, d2Raw, d3Raw uint8) {
		m, nc, d := decodeFuzzTriple(mRaw, ncRaw, d1Raw, d2Raw, d3Raw)
		seq := SweepTriple(m, nc, d)
		eng := NewEngine(Options{Workers: 2, CacheSize: 256})
		par := eng.SweepTriple(m, nc, d)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("m=%d nc=%d d=%v: engine %+v != sequential %+v", m, nc, d, par, seq)
		}
		if seq.Violations != 0 {
			t.Fatalf("m=%d nc=%d d=%v: %d capacity-bound violations", m, nc, d, seq.Violations)
		}
	})
}
