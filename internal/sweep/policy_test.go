package sweep

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ivm/internal/memsys"
)

// The policy differential campaign: every (priority, mapping) pair is
// held to three-way agreement — cold sequential sweep vs. cold engine
// vs. warm engine second pass — with zero mismatches, per-family cache
// traffic isolation, provenance conservation and packed-vs-scalar
// engine equivalence. This suite is the executable form of the
// bank-blind arbitration lemma in docs/CACHING.md: the canonicalisation
// pipeline depends only on the mapping, so the cache must be exact
// under every arbitration rule.

// policyCombos enumerates the swept policy space. Consecutive mapping
// requires sections, so sectionless grids skip those combos.
var policyCombos = []struct {
	priority memsys.PriorityRule
	mapping  memsys.SectionMapping
}{
	{memsys.FixedPriority, memsys.CyclicSections},
	{memsys.FixedPriority, memsys.ConsecutiveSections},
	{memsys.CyclicPriority, memsys.CyclicSections},
	{memsys.CyclicPriority, memsys.ConsecutiveSections},
	{memsys.RoundRobinPerCPU, memsys.CyclicSections},
	{memsys.RoundRobinPerCPU, memsys.ConsecutiveSections},
}

// policySpecs builds the campaign's spec list for one policy combo:
// sectioned pairs (both streams on CPU 0) and sectionless cross-CPU
// pairs where the mapping permits.
func policySpecs(priority memsys.PriorityRule, mapping memsys.SectionMapping) []ConfigSpec {
	var specs []ConfigSpec
	if mapping == memsys.CyclicSections {
		for _, g := range []struct{ m, nc int }{{8, 2}, {12, 3}} {
			for d1 := 0; d1 < g.m; d1 += 3 {
				for d2 := d1; d2 < g.m; d2 += 3 {
					specs = append(specs, PairSpec(g.m, g.nc, d1, d2).WithPolicy(priority, mapping))
				}
			}
		}
	}
	for _, g := range []struct{ m, s, nc int }{{8, 2, 2}, {12, 3, 3}} {
		for d1 := 0; d1 < g.m; d1 += 3 {
			for d2 := d1; d2 < g.m; d2 += 3 {
				specs = append(specs, SectionPairSpec(g.m, g.s, g.nc, d1, d2).WithPolicy(priority, mapping))
			}
		}
	}
	return specs
}

// TestPolicyFamilyNames pins the family-naming scheme: the default
// policy keeps the bare historical names (golden/bench/served bytes
// depend on them) and every non-default combo gets a distinct suffix.
func TestPolicyFamilyNames(t *testing.T) {
	cases := []struct {
		spec ConfigSpec
		want string
	}{
		{PairSpec(12, 3, 1, 1), "pair"},
		{SectionPairSpec(12, 3, 3, 1, 1), "section"},
		{ConsecSectionPairSpec(12, 3, 3, 1, 1), "section-consec"},
		{PairSpec(12, 3, 1, 1).WithPolicy(memsys.CyclicPriority, memsys.CyclicSections), "pair-cyc"},
		{PairSpec(12, 3, 1, 1).WithPolicy(memsys.RoundRobinPerCPU, memsys.CyclicSections), "pair-rrcpu"},
		{SectionPairSpec(12, 3, 3, 1, 1).WithPolicy(memsys.CyclicPriority, memsys.ConsecutiveSections), "section-consec-cyc"},
		{SectionPairSpec(12, 3, 3, 1, 1).WithPolicy(memsys.RoundRobinPerCPU, memsys.ConsecutiveSections), "section-consec-rrcpu"},
		{TripleSpec(12, 3, [3]int{1, 2, 3}).WithPolicy(memsys.CyclicPriority, memsys.CyclicSections), "triple-cyc"},
	}
	seen := map[string]ConfigSpec{}
	for _, tc := range cases {
		got := tc.spec.Family()
		if got != tc.want {
			t.Fatalf("Family() = %q, want %q", got, tc.want)
		}
		if prev, dup := seen[got]; dup {
			t.Fatalf("family %q collides: %+v and %+v", got, prev, tc.spec)
		}
		seen[got] = tc.spec
	}
}

// TestDifferentialPolicies is the zero-mismatch campaign gate: for every
// (priority, mapping) combo, the cold sequential sweep, the cold engine
// and a warm second engine pass must agree exactly, the combo's family
// must see cache traffic only under its own name, and rotating-priority
// families must show a nonzero hit rate (their orbits collapse like
// anyone else's).
func TestDifferentialPolicies(t *testing.T) {
	for _, combo := range policyCombos {
		combo := combo
		t.Run(fmt.Sprintf("%v_%v", combo.priority, combo.mapping), func(t *testing.T) {
			specs := policySpecs(combo.priority, combo.mapping)
			eng := NewEngine(Options{Workers: 4})
			for _, spec := range specs {
				cold := SweepSpec(spec)
				got := eng.SweepSpec(spec)
				if !reflect.DeepEqual(cold, got) {
					t.Fatalf("%s %+v: engine %+v != sequential %+v", spec.Family(), spec, got, cold)
				}
			}
			// Second pass: same specs, warm cache — still byte-equal.
			firstMetrics := eng.Metrics()
			for _, spec := range specs {
				cold := SweepSpec(spec)
				got := eng.SweepSpec(spec)
				if !reflect.DeepEqual(cold, got) {
					t.Fatalf("warm %s %+v: engine %+v != sequential %+v", spec.Family(), spec, got, cold)
				}
			}
			warmMetrics := eng.Metrics()
			if warmMetrics.CacheMisses != firstMetrics.CacheMisses {
				t.Fatalf("warm pass simulated %d new orbits",
					warmMetrics.CacheMisses-firstMetrics.CacheMisses)
			}
			// Cache traffic lands only in this combo's families, and every
			// swept family shows a nonzero hit rate (placements share
			// orbits under every arbitration rule).
			for name, fam := range warmMetrics.Families {
				owned := false
				for _, spec := range specs {
					if spec.Family() == name {
						owned = true
						break
					}
				}
				if !owned {
					t.Fatalf("cache traffic leaked into foreign family %q: %+v", name, fam)
				}
				if fam.Hits == 0 {
					t.Fatalf("family %q never hit the cache: %+v", name, fam)
				}
				if fam.Misses == 0 {
					t.Fatalf("family %q never simulated: %+v", name, fam)
				}
			}
		})
	}
}

// TestDifferentialPackedVsScalarPolicies holds the packed-kernel engine
// to the scalar-kernel engine over every policy combo, and requires the
// packed engine to have taken the packed path (no silent fallback: the
// fallback counter stays zero and non-fixed-priority resolves report
// path sim-packed).
func TestDifferentialPackedVsScalarPolicies(t *testing.T) {
	for _, combo := range policyCombos {
		combo := combo
		t.Run(fmt.Sprintf("%v_%v", combo.priority, combo.mapping), func(t *testing.T) {
			off, on := false, true
			specs := policySpecs(combo.priority, combo.mapping)
			scalar := NewEngine(Options{Workers: 2, PackedKernel: &off})
			packed := NewEngine(Options{Workers: 2, PackedKernel: &on})
			for _, spec := range specs {
				a := scalar.SweepSpec(spec)
				b := packed.SweepSpec(spec)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s %+v: packed %+v != scalar %+v", spec.Family(), spec, b, a)
				}
			}
			if n := packed.Metrics().PackedFallbacks; n != 0 {
				t.Fatalf("packed engine fell back to scalar %d times; every rule is packed-supported", n)
			}

			// A single-placement resolve on a fresh packed engine must
			// attribute to sim-packed, proving the packed grant loop —
			// not a fallback — answered the non-fixed-priority spec.
			spec := specs[0]
			for i := range spec.Streams {
				spec.Streams[i].Sweep = false
			}
			res, err := NewEngine(Options{Workers: 1, PackedKernel: &on}).Resolve(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Path != PathSimPacked {
				t.Fatalf("packed resolve path %v, want %v", res.Path, PathSimPacked)
			}
		})
	}
}

// TestPolicyProvenanceConservation checks the conservation invariant
// analytic+cache+sim == resolved per policy family, and that the
// analytic gate never answers a non-fixed-priority spec.
func TestPolicyProvenanceConservation(t *testing.T) {
	for _, combo := range policyCombos {
		combo := combo
		t.Run(fmt.Sprintf("%v_%v", combo.priority, combo.mapping), func(t *testing.T) {
			on := true
			prov := NewProvenance(64)
			eng := NewEngine(Options{Workers: 2, Analytic: &on, Provenance: prov})
			specs := policySpecs(combo.priority, combo.mapping)
			for _, spec := range specs {
				eng.SweepSpec(spec)
			}
			snap := prov.Snapshot()
			for _, name := range snap.FamilyNames() {
				f := snap.Families[name]
				if got := f.Analytic + f.CacheHits + f.SimScalar + f.SimPacked; got != f.Resolved {
					t.Fatalf("family %q: analytic %d + cache %d + sim %d+%d != resolved %d",
						name, f.Analytic, f.CacheHits, f.SimScalar, f.SimPacked, f.Resolved)
				}
				if combo.priority != memsys.FixedPriority && f.Analytic != 0 {
					t.Fatalf("family %q: %d analytic answers under %v; the gate must decline",
						name, f.Analytic, combo.priority)
				}
			}
		})
	}
}

// TestPolicyResolveMatchesColdSim pins Engine.Resolve per policy against
// the cold single-placement simulation, and a translated second resolve
// against the cache.
func TestPolicyResolveMatchesColdSim(t *testing.T) {
	for _, combo := range policyCombos {
		combo := combo
		t.Run(fmt.Sprintf("%v_%v", combo.priority, combo.mapping), func(t *testing.T) {
			eng := NewEngine(Options{Workers: 1})
			spec := SectionPairSpec(12, 3, 2, 1, 5).WithPolicy(combo.priority, combo.mapping)
			spec.Streams[1].Sweep = false
			spec.Streams[1].B = 2
			cold := simulateSpecVec(spec, []int{1, 5, 0, 2})
			first, err := eng.Resolve(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !first.BW.Equal(cold) {
				t.Fatalf("resolve b_eff %s, cold %s", first.BW, cold)
			}
			if first.Family != spec.Family() {
				t.Fatalf("resolve family %q, want %q", first.Family, spec.Family())
			}

			// Translate both starts by the mapping's translation step:
			// same orbit, so the second resolve must hit the cache.
			step := 3 // cyclic mapping: translations by multiples of s
			if combo.mapping == memsys.ConsecutiveSections {
				step = 4 // consecutive: by the section width m/s
			}
			shifted := SectionPairSpec(12, 3, 2, 1, 5).WithPolicy(combo.priority, combo.mapping)
			shifted.Streams[0].B = step
			shifted.Streams[1].Sweep = false
			shifted.Streams[1].B = 2 + step
			second, err := eng.Resolve(shifted)
			if err != nil {
				t.Fatal(err)
			}
			if second.Path != PathCache {
				t.Fatalf("translated resolve path %v, want cache", second.Path)
			}
			if !second.BW.Equal(cold) {
				t.Fatalf("translated resolve b_eff %s, cold %s", second.BW, cold)
			}
		})
	}
}

// TestMetricsPackedFallbacksRoundTrip pins the packed_fallbacks JSON
// field through Marshal/Unmarshal.
func TestMetricsPackedFallbacksRoundTrip(t *testing.T) {
	m := Metrics{CacheHits: 3, CacheMisses: 2, PackedFallbacks: 7}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]int64
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["packed_fallbacks"] != 7 {
		t.Fatalf("encoded %s lacks packed_fallbacks=7", data)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.PackedFallbacks != 7 {
		t.Fatalf("round-trip lost PackedFallbacks: %+v", back)
	}
}
