// Package modmath provides the elementary number theory used throughout
// the analytic model of Oed & Lange (1985): greatest common divisors,
// least common multiples, the extended Euclidean algorithm, modular
// inverses and the units of Z_m.
//
// All functions operate on int and, where meaningful, accept zero
// arguments with the usual conventions (gcd(x, 0) = x), which the paper
// relies on: "Note that gcd(m, 0) = m, i.e., access streams with
// d1 = d2 are conflict free if r1 = r2 >= 2*nc".
package modmath

import "fmt"

// GCD returns the greatest common divisor of a and b. Negative inputs
// are treated by absolute value; GCD(0, 0) == 0.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCD3 returns gcd(a, b, c).
func GCD3(a, b, c int) int { return GCD(GCD(a, b), c) }

// GCDAll returns the gcd of all values; GCDAll() == 0.
func GCDAll(vs ...int) int {
	g := 0
	for _, v := range vs {
		g = GCD(g, v)
	}
	return g
}

// LCM returns the least common multiple of a and b; LCM(x, 0) == 0.
func LCM(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	l := a / g * b
	if l < 0 {
		l = -l
	}
	return l
}

// LCMAll returns the lcm of all values; LCMAll() == 1.
func LCMAll(vs ...int) int {
	l := 1
	for _, v := range vs {
		l = LCM(l, v)
	}
	return l
}

// ExtGCD returns (g, x, y) such that a*x + b*y == g == gcd(a, b).
// The signs of x and y follow the classical iterative algorithm.
func ExtGCD(a, b int) (g, x, y int) {
	x0, x1 := 1, 0
	y0, y1 := 0, 1
	for b != 0 {
		q := a / b
		a, b = b, a-q*b
		x0, x1 = x1, x0-q*x1
		y0, y1 = y1, y0-q*y1
	}
	if a < 0 {
		return -a, -x0, -y0
	}
	return a, x0, y0
}

// Mod returns a mod m in the range [0, m). m must be positive.
func Mod(a, m int) int {
	if m <= 0 {
		panic(fmt.Sprintf("modmath: non-positive modulus %d", m))
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Inverse returns the multiplicative inverse of a modulo m and true,
// or 0 and false when gcd(a, m) != 1. m must be positive.
func Inverse(a, m int) (int, bool) {
	if m <= 0 {
		panic(fmt.Sprintf("modmath: non-positive modulus %d", m))
	}
	g, x, _ := ExtGCD(Mod(a, m), m)
	if g != 1 {
		return 0, false
	}
	return Mod(x, m), true
}

// Coprime reports whether gcd(a, b) == 1.
func Coprime(a, b int) bool { return GCD(a, b) == 1 }

// Units returns all k in [1, m) with gcd(k, m) == 1, in increasing
// order. Units(1) returns []int{} because Z_1 has no unit distinct
// from zero in our bank-address setting (m = 1 means a single bank).
func Units(m int) []int {
	if m <= 0 {
		panic(fmt.Sprintf("modmath: non-positive modulus %d", m))
	}
	var us []int
	for k := 1; k < m; k++ {
		if GCD(k, m) == 1 {
			us = append(us, k)
		}
	}
	return us
}

// Divides reports whether a divides b (with Divides(0, 0) == true and
// Divides(0, b) == false for b != 0).
func Divides(a, b int) bool {
	if a == 0 {
		return b == 0
	}
	return b%a == 0
}

// Divisors returns all positive divisors of n > 0 in increasing order.
func Divisors(n int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("modmath: Divisors of non-positive %d", n))
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// CeilDiv returns ceil(a/b) for b > 0 and a >= 0.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("modmath: CeilDiv by %d", b))
	}
	return (a + b - 1) / b
}
