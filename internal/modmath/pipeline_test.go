package modmath

import (
	"math/rand"
	"reflect"
	"testing"
)

// randVec draws a configuration vector of nd distances and nb starts.
func randVec(rng *rand.Rand, m, nd, nb int) []int {
	v := make([]int, nd+nb)
	for i := range v {
		v[i] = rng.Intn(m)
	}
	return v
}

func TestTranslateNormalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(15)
		divs := Divisors(m)
		step := divs[rng.Intn(len(divs))]
		tr := Translate{M: m, Step: step}
		nd := 1 + rng.Intn(3)
		v := randVec(rng, m, nd, nd)

		got := append([]int(nil), v...)
		tr.Canonicalize(got, nd)
		if b1 := got[nd]; b1 < 0 || b1 >= step {
			t.Fatalf("m=%d step=%d v=%v: first start %d not in [0,%d)", m, step, v, b1, step)
		}
		// Idempotent.
		again := append([]int(nil), got...)
		tr.Canonicalize(again, nd)
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("m=%d step=%d: not idempotent: %v -> %v", m, step, got, again)
		}
		// Invariant under every allowed translation t ≡ 0 (mod step).
		for sh := 0; sh < m; sh += step {
			w := append([]int(nil), v...)
			for i := nd; i < len(w); i++ {
				w[i] = Mod(w[i]+sh, m)
			}
			tr.Canonicalize(w, nd)
			if !reflect.DeepEqual(w, got) {
				t.Fatalf("m=%d step=%d v=%v shift %d: representative %v != %v", m, step, v, sh, w, got)
			}
		}
	}
}

// With no Renorm stage, UnitMin is exactly the lex-min orbit form of
// CanonicalizeInto.
func TestUnitMinMatchesCanonicalizeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(16)
		units := Units(m)
		nd := 1 + rng.Intn(3)
		v := randVec(rng, m, nd, rng.Intn(3))

		want := Canonical(v, m, units)
		got := append([]int(nil), v...)
		NewUnitMin(m, units, nil).Canonicalize(got, nd)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("m=%d v=%v: UnitMin %v != CanonicalizeInto %v", m, v, got, want)
		}
	}
}

// The affine pipeline's form is constant on orbits of the generated
// group {j -> u·j + t} and idempotent — the two properties that make
// it a sound cache key.
func TestAffinePipelineOrbitInvariantAndIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		m := 2 + rng.Intn(15)
		divs := Divisors(m)
		step := divs[rng.Intn(len(divs))]
		var units []int
		if rng.Intn(2) == 0 {
			units = Units(m)
		} else {
			units = UnitsFixing(m, step)
		}
		nd := 1 + rng.Intn(4)
		v := randVec(rng, m, nd, nd)

		pipe := NewAffinePipeline(m, step, units)
		want := append([]int(nil), v...)
		pipe.Canonicalize(want, nd)

		again := append([]int(nil), want...)
		pipe.Canonicalize(again, nd)
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("m=%d step=%d v=%v: not idempotent: %v -> %v", m, step, v, want, again)
		}

		for k := 0; k < 8; k++ {
			u := units[rng.Intn(len(units))]
			sh := step * rng.Intn(m/step)
			w := make([]int, len(v))
			for i := 0; i < nd; i++ {
				w[i] = Mod(u*v[i], m)
			}
			for i := nd; i < len(v); i++ {
				w[i] = Mod(u*v[i]+sh, m)
			}
			pipe.Canonicalize(w, nd)
			if !reflect.DeepEqual(w, want) {
				t.Fatalf("m=%d step=%d v=%v under u=%d t=%d: representative %v != %v",
					m, step, v, u, sh, w, want)
			}
		}
	}
}

// For the vectors the sweep engine's legacy families produce — first
// start pinned to 0, sectionless translation step — the affine
// pipeline reduces to the plain unit-group lex-min of PR 3, so cache
// keys (and hence hit patterns and simulated representatives) carry
// over unchanged.
func TestAffinePipelinePreservesLegacyForms(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(16)
		units := Units(m)
		nd := 2 + rng.Intn(2) // pairs and triples
		v := randVec(rng, m, nd, nd)
		v[nd] = 0 // b1 pinned, as in every legacy sweep loop

		want := Canonical(v, m, units)
		got := append([]int(nil), v...)
		NewAffinePipeline(m, 1, units).Canonicalize(got, nd)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("m=%d v=%v: pipeline %v != legacy lex-min %v", m, v, got, want)
		}
	}
}
