package modmath

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestUnitsFixing(t *testing.T) {
	cases := []struct {
		m, s int
		want []int
	}{
		{12, 1, []int{1, 5, 7, 11}},
		{12, 2, []int{1, 5, 7, 11}}, // every unit of Z_12 is odd
		{12, 3, []int{1, 7}},
		{12, 4, []int{1, 5}},
		{16, 4, []int{1, 5, 9, 13}},
		{16, 8, []int{1, 9}},
		{13, 13, []int{1}},
		{1, 1, nil},
	}
	for _, c := range cases {
		got := UnitsFixing(c.m, c.s)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("UnitsFixing(%d, %d) = %v, want %v", c.m, c.s, got, c.want)
		}
	}
}

func TestUnitsFixingRejectsNonDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnitsFixing(12, 5) did not panic")
		}
	}()
	UnitsFixing(12, 5)
}

// UnitsFixing(m, s) must be a subgroup of the units of Z_m: it contains
// 1, is closed under multiplication mod m, and contains inverses.
func TestUnitsFixingIsSubgroup(t *testing.T) {
	for _, m := range []int{2, 8, 12, 13, 16, 24} {
		for _, s := range Divisors(m) {
			us := UnitsFixing(m, s)
			in := make(map[int]bool, len(us))
			for _, u := range us {
				in[u] = true
			}
			if len(us) > 0 && !in[1] {
				t.Fatalf("m=%d s=%d: identity missing from %v", m, s, us)
			}
			for _, a := range us {
				inv, ok := Inverse(a, m)
				if !ok || !in[inv] {
					t.Fatalf("m=%d s=%d: inverse of %d (= %d) not in subgroup %v", m, s, a, inv, us)
				}
				for _, b := range us {
					if !in[Mod(a*b, m)] {
						t.Fatalf("m=%d s=%d: %d*%d = %d escapes subgroup %v", m, s, a, b, Mod(a*b, m), us)
					}
				}
			}
		}
	}
}

// The canonical form is orbit-invariant: every member of an orbit maps
// to the same canonical vector, and the canonical vector is itself a
// member of the orbit.
func TestCanonicalOrbitInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1985))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(24)
		s := Divisors(m)[rng.Intn(len(Divisors(m)))]
		n := 1 + rng.Intn(5)
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Intn(3*m) - m // exercise reduction of out-of-range values
		}
		units := UnitsFixing(m, s)
		want := Canonical(v, m, units)

		orbit := Orbit(v, m, units)
		if !reflect.DeepEqual(orbit[0], want) {
			t.Fatalf("m=%d s=%d v=%v: orbit minimum %v != canonical %v", m, s, v, orbit[0], want)
		}
		for _, w := range orbit {
			if got := Canonical(w, m, units); !reflect.DeepEqual(got, want) {
				t.Fatalf("m=%d s=%d: orbit member %v canonicalises to %v, not %v", m, s, w, got, want)
			}
		}
		for _, u := range units {
			scaled := make([]int, n)
			for i := range v {
				scaled[i] = Mod(u*Mod(v[i], m), m)
			}
			if got := Canonical(scaled, m, units); !reflect.DeepEqual(got, want) {
				t.Fatalf("m=%d s=%d v=%v u=%d: canonical %v != %v", m, s, v, u, got, want)
			}
		}
	}
}

// Orbit sizes divide the group order (orbit–stabiliser theorem) — a
// structural check that Orbit enumerates exactly one group action.
func TestOrbitSizeDividesGroupOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(23)
		divs := Divisors(m)
		s := divs[rng.Intn(len(divs))]
		units := UnitsFixing(m, s)
		if len(units) == 0 {
			continue
		}
		v := []int{rng.Intn(m), rng.Intn(m), rng.Intn(m)}
		if n := len(Orbit(v, m, units)); len(units)%n != 0 {
			t.Fatalf("m=%d s=%d v=%v: orbit size %d does not divide group order %d", m, s, v, n, len(units))
		}
	}
}

// The sectioned subgroup really fixes sections: u*j ≡ j (mod s) for
// every bank j and every u in UnitsFixing(m, s).
func TestUnitsFixingFixesSections(t *testing.T) {
	for _, m := range []int{8, 12, 16, 24} {
		for _, s := range Divisors(m) {
			for _, u := range UnitsFixing(m, s) {
				for j := 0; j < m; j++ {
					if Mod(u*j, m)%s != j%s {
						t.Fatalf("m=%d s=%d u=%d: bank %d moved from section %d to %d",
							m, s, u, j, j%s, Mod(u*j, m)%s)
					}
				}
			}
		}
	}
}

func TestCanonicalizeIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	CanonicalizeInto(make([]int, 2), make([]int, 3), 5, Units(5))
}
