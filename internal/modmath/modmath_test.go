package modmath

import (
	"testing"
	"testing/quick"
)

func TestGCDBasics(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{1, 1, 1},
		{12, 18, 6},
		{18, 12, 6},
		{13, 7, 1},
		{16, 64, 16},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{1024, 768, 256},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCD3AndAll(t *testing.T) {
	if got := GCD3(12, 18, 24); got != 6 {
		t.Errorf("GCD3(12,18,24) = %d, want 6", got)
	}
	if got := GCD3(16, 8, 0); got != 8 {
		t.Errorf("GCD3(16,8,0) = %d, want 8", got)
	}
	if got := GCDAll(); got != 0 {
		t.Errorf("GCDAll() = %d, want 0", got)
	}
	if got := GCDAll(30, 42, 70); got != 2 {
		t.Errorf("GCDAll(30,42,70) = %d, want 2", got)
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{13, 7, 91},
		{16, 16, 16},
		{-4, 6, 12},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := LCMAll(); got != 1 {
		t.Errorf("LCMAll() = %d, want 1", got)
	}
	if got := LCMAll(2, 3, 4); got != 12 {
		t.Errorf("LCMAll(2,3,4) = %d, want 12", got)
	}
}

func TestExtGCDIdentity(t *testing.T) {
	f := func(a, b int16) bool {
		ai, bi := int(a), int(b)
		g, x, y := ExtGCD(ai, bi)
		return g == GCD(ai, bi) && ai*x+bi*y == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ a, m, want int }{
		{5, 3, 2},
		{-5, 3, 1},
		{-3, 3, 0},
		{0, 7, 0},
		{14, 7, 0},
		{-1, 16, 15},
	}
	for _, c := range cases {
		if got := Mod(c.a, c.m); got != c.want {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.a, c.m, got, c.want)
		}
	}
}

func TestModPanicsOnBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mod(1, 0) did not panic")
		}
	}()
	Mod(1, 0)
}

func TestInverse(t *testing.T) {
	for m := 1; m <= 64; m++ {
		for a := 0; a < m; a++ {
			inv, ok := Inverse(a, m)
			if GCD(a, m) == 1 {
				if !ok {
					t.Fatalf("Inverse(%d,%d): expected invertible", a, m)
				}
				if m > 1 && Mod(a*inv, m) != 1 {
					t.Fatalf("Inverse(%d,%d) = %d: a*inv mod m = %d", a, m, inv, Mod(a*inv, m))
				}
			} else if ok {
				t.Fatalf("Inverse(%d,%d): expected non-invertible", a, m)
			}
		}
	}
}

func TestUnits(t *testing.T) {
	got := Units(12)
	want := []int{1, 5, 7, 11}
	if len(got) != len(want) {
		t.Fatalf("Units(12) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Units(12) = %v, want %v", got, want)
		}
	}
	if n := len(Units(16)); n != 8 {
		t.Errorf("phi(16) = %d, want 8", n)
	}
	if n := len(Units(1)); n != 0 {
		t.Errorf("Units(1) has %d elements, want 0", n)
	}
}

func TestDivides(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 0, true},
		{0, 4, false},
		{1, 7, true},
		{4, 16, true},
		{3, 16, false},
	}
	for _, c := range cases {
		if got := Divides(c.a, c.b); got != c.want {
			t.Errorf("Divides(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Divisors(16) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(16) = %v, want %v", got, want)
		}
	}
	got = Divisors(13)
	if len(got) != 2 || got[0] != 1 || got[1] != 13 {
		t.Fatalf("Divisors(13) = %v", got)
	}
	got = Divisors(36)
	want = []int{1, 2, 3, 4, 6, 9, 12, 18, 36}
	if len(got) != len(want) {
		t.Fatalf("Divisors(36) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(36) = %v, want %v", got, want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{1024, 64, 16},
		{1025, 64, 17},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDCommutativeAssociativeProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ai, bi, ci := int(a), int(b), int(c)
		if GCD(ai, bi) != GCD(bi, ai) {
			return false
		}
		return GCD(GCD(ai, bi), ci) == GCD(ai, GCD(bi, ci))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDLCMProduct(t *testing.T) {
	f := func(a, b uint8) bool {
		ai, bi := int(a)+1, int(b)+1 // positive
		return GCD(ai, bi)*LCM(ai, bi) == ai*bi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
