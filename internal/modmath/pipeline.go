package modmath

import "fmt"

// Composable canonicalisation pipeline over configuration vectors.
//
// A configuration vector packs an N-stream memory configuration as nd
// stride distances followed by start banks: (d_1 … d_nd, b_1 … b_N).
// Two group actions on Z_m map such configurations onto isomorphic
// ones (bank renumberings that commute with every conflict rule of the
// simulator; docs/CACHING.md has the derivations):
//
//   - scaling j -> u·j by a unit u of Z_m, which multiplies every
//     distance and start — restricted to the section-fixing subgroup
//     u ≡ 1 (mod s) when the arbitration is not known to be
//     section-symmetric;
//   - translation j -> j + t, which shifts every start and fixes every
//     distance — allowed only for t ≡ 0 (mod s) on a sectioned memory,
//     because the section of bank j is j mod s.
//
// The two do not commute (u·(j+t) = u·j + u·t), so a canonical form
// for the generated group cannot simply apply one normal form after
// the other: scaling moves a translation-normalised start block out of
// normal form, by an allowed translation. UnitMin therefore
// re-normalises every scaled candidate through its Renorm stage before
// comparing. NewAffinePipeline composes the two correctly; the
// property tests in this package verify orbit-invariance and
// idempotence of the composition.

// A Canonicalizer rewrites a configuration vector in place to a
// distinguished representative of its orbit under the group action it
// implements. nd is the number of leading distance coordinates; the
// remainder of the vector are start banks. Implementations must be
// idempotent and must leave every coordinate reduced to [0, m).
type Canonicalizer interface {
	Canonicalize(v []int, nd int)
}

// Translate is the translation-orbit normaliser of an m-bank memory:
// it shifts the start block so the first start lands in [0, Step),
// fixing the unique representative of {(b_1+t, …, b_N+t) : t ≡ 0 mod
// Step} and reducing every coordinate mod M. Step is the section count
// s of a sectioned memory — translations by multiples of s are exactly
// the ones preserving the k = j mod s section map — and 1 (or 0) for a
// sectionless memory, where every translation is allowed and the first
// start normalises to 0. Step must divide M so that the shifts form a
// subgroup of Z_M.
type Translate struct {
	M, Step int
}

// Canonicalize implements Canonicalizer.
func (t Translate) Canonicalize(v []int, nd int) {
	if t.M <= 0 {
		panic(fmt.Sprintf("modmath: non-positive modulus %d", t.M))
	}
	step := t.Step
	if step <= 1 {
		step = 1
	}
	if t.M%step != 0 {
		panic(fmt.Sprintf("modmath: translation step %d must divide modulus %d", step, t.M))
	}
	for i := 0; i < nd && i < len(v); i++ {
		v[i] = Mod(v[i], t.M)
	}
	if nd >= len(v) {
		return
	}
	starts := v[nd:]
	b1 := Mod(starts[0], t.M)
	shift := b1 - b1%step
	for i := range starts {
		starts[i] = Mod(starts[i]-shift, t.M)
	}
}

// UnitMin minimises a configuration vector over the scaling action of
// the given units of Z_m: the result is the lexicographically smallest
// of the candidates {renorm(u·v) : u in units} ∪ {renorm(v)}, where
// renorm is the optional Renorm stage (typically the Translate
// normaliser — see the package comment for why each scaled candidate
// must be re-normalised before comparison). With a nil Renorm and the
// identity-containing unit groups produced by Units/UnitsFixing this
// coincides with CanonicalizeInto. The zero UnitMin is not usable;
// construct with NewUnitMin. Not safe for concurrent use (it carries
// scratch buffers); give each goroutine its own.
type UnitMin struct {
	m      int
	units  []int
	renorm Canonicalizer

	cand, best []int
}

// NewUnitMin builds the scaling-orbit minimiser for modulus m over the
// given units (typically Units(m) or UnitsFixing(m, s)), re-normalising
// every candidate through renorm when it is non-nil.
func NewUnitMin(m int, units []int, renorm Canonicalizer) *UnitMin {
	if m <= 0 {
		panic(fmt.Sprintf("modmath: non-positive modulus %d", m))
	}
	return &UnitMin{m: m, units: units, renorm: renorm}
}

// Canonicalize implements Canonicalizer.
func (u *UnitMin) Canonicalize(v []int, nd int) {
	u.best = append(u.best[:0], v...)
	for i := range u.best {
		u.best[i] = Mod(u.best[i], u.m)
	}
	if u.renorm != nil {
		u.renorm.Canonicalize(u.best, nd)
	}
	for _, unit := range u.units {
		if unit == 1 {
			continue
		}
		u.cand = u.cand[:0]
		for _, x := range v {
			u.cand = append(u.cand, Mod(unit*Mod(x, u.m), u.m))
		}
		if u.renorm != nil {
			u.renorm.Canonicalize(u.cand, nd)
		}
		if lexLess(u.cand, u.best) {
			copy(u.best, u.cand)
		}
	}
	copy(v, u.best)
}

// lexLess reports a < b lexicographically; the slices must have equal
// length.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Pipeline applies its stages in order; it is itself a Canonicalizer.
// Composing stages is only a true canonical form for the generated
// group when later stages preserve (or re-establish, via UnitMin's
// Renorm) the normal forms of earlier ones — NewAffinePipeline builds
// the composition this package guarantees correct.
type Pipeline []Canonicalizer

// Canonicalize implements Canonicalizer.
func (p Pipeline) Canonicalize(v []int, nd int) {
	for _, c := range p {
		c.Canonicalize(v, nd)
	}
}

// NewAffinePipeline composes the canonical form of the full
// translation-and-scaling group of an m-bank memory: translation
// normalisation by multiples of step, then scaling minimisation over
// the given units with per-candidate re-normalisation. step is the
// section count for a sectioned memory and 1 otherwise; units is
// Units(m) or UnitsFixing(m, s) per the caller's soundness argument.
// The result is constant on orbits of the whole group {j -> u·j + t}
// (u in units ∪ {1} closed under composition, t ≡ 0 mod step) and
// idempotent.
func NewAffinePipeline(m, step int, units []int) Pipeline {
	tr := Translate{M: m, Step: step}
	return Pipeline{tr, NewUnitMin(m, units, tr)}
}
