package modmath

import (
	"fmt"
	"sort"
)

// Orbit/canonical-form machinery under the unit group of Z_m.
//
// Renumbering the banks of an m-way interleaved memory by j -> u*j mod m
// for a unit u maps every arithmetic access stream onto another
// arithmetic access stream while preserving bank coincidence, so the
// configuration vectors (distances and start banks) of one orbit
// {u*v mod m : u unit} all share a single steady state (the paper's
// Appendix isomorphism; docs/CACHING.md derives it in full). The sweep
// cache in internal/sweep keys on the canonical — lexicographically
// smallest — member of each orbit, for stride pairs, stride triples and
// section sweeps alike; this file is the one shared implementation.

// UnitsFixing returns the units u of Z_m with u ≡ 1 (mod s), in
// increasing order: the subgroup of units whose bank renumbering
// j -> u*j fixes every section of the cyclic section map k = j mod s
// pointwise (u*j ≡ j mod s). s <= 1 imposes no constraint and returns
// Units(m) — the sectionless case. For s > 1, s must divide m, mirroring
// the memory system's "sections divide banks" invariant.
func UnitsFixing(m, s int) []int {
	if m <= 0 {
		panic(fmt.Sprintf("modmath: non-positive modulus %d", m))
	}
	if s <= 1 {
		return Units(m)
	}
	if m%s != 0 {
		panic(fmt.Sprintf("modmath: sections %d must divide modulus %d", s, m))
	}
	var us []int
	for k := 1; k < m; k++ {
		if GCD(k, m) == 1 && k%s == 1 {
			us = append(us, k)
		}
	}
	return us
}

// CanonicalizeInto writes into dst the canonical form of v under the
// given units of Z_m: the lexicographically smallest vector of the
// orbit {(u*v[0] mod m, ..., u*v[n-1] mod m) : u in units} ∪ {v mod m}.
// dst and v must have the same length and must not alias. The units
// slice is typically Units(m) or UnitsFixing(m, s); v itself (reduced
// mod m) is always a candidate, so an empty units slice — Z_1 has no
// units in our convention — degrades to plain reduction.
func CanonicalizeInto(dst, v []int, m int, units []int) {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("modmath: CanonicalizeInto length mismatch %d != %d", len(dst), len(v)))
	}
	for i := range v {
		dst[i] = Mod(v[i], m)
	}
	for _, u := range units {
		if u == 1 {
			continue
		}
		// Compare u*v to the best-so-far lexicographically, element by
		// element, and copy only when strictly smaller.
		smaller := false
		for i := range v {
			c := Mod(u*Mod(v[i], m), m)
			if c > dst[i] {
				break
			}
			if c < dst[i] {
				smaller = true
				break
			}
		}
		if smaller {
			for i := range v {
				dst[i] = Mod(u*Mod(v[i], m), m)
			}
		}
	}
}

// Canonical returns the canonical form of v under the given units of
// Z_m as a fresh slice; see CanonicalizeInto.
func Canonical(v []int, m int, units []int) []int {
	dst := make([]int, len(v))
	CanonicalizeInto(dst, v, m, units)
	return dst
}

// Orbit enumerates the distinct vectors of v's orbit under the given
// units of Z_m, sorted lexicographically (so Orbit(v)[0] is the
// canonical form). By the orbit–stabiliser theorem its size divides
// len(units) whenever units form a group, which the property tests in
// this package exercise.
func Orbit(v []int, m int, units []int) [][]int {
	seen := make(map[string][]int, len(units)+1)
	add := func(w []int) {
		k := fmt.Sprint(w)
		if _, ok := seen[k]; !ok {
			seen[k] = w
		}
	}
	base := make([]int, len(v))
	for i := range v {
		base[i] = Mod(v[i], m)
	}
	add(base)
	for _, u := range units {
		w := make([]int, len(v))
		for i := range v {
			w[i] = Mod(u*base[i], m)
		}
		add(w)
	}
	out := make([][]int, 0, len(seen))
	for _, w := range seen {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
