// Package workload lowers the Fortran loops of Section IV into
// strip-mined vector programs for the machine model: the triad the
// paper measures, plus the other elementary kernels (copy, scale,
// axpy, vector add) used by the examples and the ablation benches.
package workload

import (
	"fmt"

	"ivm/internal/machine"
	"ivm/internal/vector"
)

// strips cuts n elements into machine-register-sized pieces.
func strips(n, vl int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: vector length %d", n))
	}
	var out []int
	for n > 0 {
		s := n
		if s > vl {
			s = vl
		}
		out = append(out, s)
		n -= s
	}
	return out
}

// stripDelay returns the IssueDelay of the first instruction of strip
// i: every strip after the first pays the scalar loop overhead.
func stripDelay(i int, cfg machine.Config) int {
	if i == 0 {
		return 0
	}
	return cfg.StripOverhead
}

// Triad lowers
//
//	DO 1 I = 1, N*INC, INC
//	1  A(I) = B(I) + C(I)*D(I)
//
// into the port schedule the X-MP hardware constraints force per
// 64-element strip:
//
//	V0 <- C(I)        (load port)
//	V1 <- D(I)        (second load port, concurrent)
//	V2 <- V0 * V1     (multiply, chained)
//	V3 <- B(I)        (first load port to free up)
//	V4 <- V2 + V3     (add, chained)
//	A(I) <- V4        (store port, chained)
//
// "By N*INC we indicate that independent of the increment the vector
// length is n": every stream transfers exactly n elements.
func Triad(a, b, c, d *vector.Array, n, inc int, cfg machine.Config) []machine.Instr {
	return TriadAt(a, b, c, d, n, inc, 0, cfg)
}

// TriadAt lowers the triad over n elements starting at element
// `startElem` of the strided index space (subscripts
// 1 + (startElem + k)*inc): the building block for multitasked loop
// halves, where each CPU takes a contiguous chunk of the iteration
// space.
func TriadAt(a, b, c, d *vector.Array, n, inc, startElem int, cfg machine.Config) []machine.Instr {
	cfg = fill(cfg)
	var prog []machine.Instr
	offset := startElem // element offset into the strided index space
	for si, sn := range strips(n, cfg.VectorLength) {
		base := func(arr *vector.Array) int64 {
			return arr.Addr(1 + offset*inc)
		}
		stride := int64(inc)
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: base(c), Stride: stride, N: sn, IssueDelay: stripDelay(si, cfg)},
			machine.Instr{Op: machine.OpLoad, Dst: 1, Base: base(d), Stride: stride, N: sn},
			machine.Instr{Op: machine.OpMul, Dst: 2, Src1: 0, Src2: 1, N: sn},
			machine.Instr{Op: machine.OpLoad, Dst: 3, Base: base(b), Stride: stride, N: sn},
			machine.Instr{Op: machine.OpAdd, Dst: 4, Src1: 2, Src2: 3, N: sn},
			machine.Instr{Op: machine.OpStore, Src1: 4, Base: base(a), Stride: stride, N: sn},
		)
		offset += sn
	}
	return prog
}

// Copy lowers A(I) = B(I) over the strided index space.
func Copy(a, b *vector.Array, n, inc int, cfg machine.Config) []machine.Instr {
	cfg = fill(cfg)
	var prog []machine.Instr
	offset := 0
	for si, sn := range strips(n, cfg.VectorLength) {
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: b.Addr(1 + offset*inc), Stride: int64(inc), N: sn, IssueDelay: stripDelay(si, cfg)},
			machine.Instr{Op: machine.OpStore, Src1: 0, Base: a.Addr(1 + offset*inc), Stride: int64(inc), N: sn},
		)
		offset += sn
	}
	return prog
}

// VAdd lowers A(I) = B(I) + C(I).
func VAdd(a, b, c *vector.Array, n, inc int, cfg machine.Config) []machine.Instr {
	cfg = fill(cfg)
	var prog []machine.Instr
	offset := 0
	for si, sn := range strips(n, cfg.VectorLength) {
		base := func(arr *vector.Array) int64 { return arr.Addr(1 + offset*inc) }
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: base(b), Stride: int64(inc), N: sn, IssueDelay: stripDelay(si, cfg)},
			machine.Instr{Op: machine.OpLoad, Dst: 1, Base: base(c), Stride: int64(inc), N: sn},
			machine.Instr{Op: machine.OpAdd, Dst: 2, Src1: 0, Src2: 1, N: sn},
			machine.Instr{Op: machine.OpStore, Src1: 2, Base: base(a), Stride: int64(inc), N: sn},
		)
		offset += sn
	}
	return prog
}

// AXPY lowers A(I) = A(I) + S*B(I) (the scalar multiply is modelled as
// a one-operand pipeline pass through the multiply unit: V1 <- V0*V0's
// slot is taken by the broadcast; memory behaviour, which is what the
// paper studies, is identical).
func AXPY(a, b *vector.Array, n, inc int, cfg machine.Config) []machine.Instr {
	cfg = fill(cfg)
	var prog []machine.Instr
	offset := 0
	for si, sn := range strips(n, cfg.VectorLength) {
		base := func(arr *vector.Array) int64 { return arr.Addr(1 + offset*inc) }
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: base(b), Stride: int64(inc), N: sn, IssueDelay: stripDelay(si, cfg)},
			machine.Instr{Op: machine.OpMul, Dst: 1, Src1: 0, Src2: 0, N: sn},
			machine.Instr{Op: machine.OpLoad, Dst: 2, Base: base(a), Stride: int64(inc), N: sn},
			machine.Instr{Op: machine.OpAdd, Dst: 3, Src1: 1, Src2: 2, N: sn},
			machine.Instr{Op: machine.OpStore, Src1: 3, Base: base(a), Stride: int64(inc), N: sn},
		)
		offset += sn
	}
	return prog
}

func fill(cfg machine.Config) machine.Config { return cfg.Normalized() }
