package workload

import (
	"fmt"
	"math/rand"

	"ivm/internal/machine"
	"ivm/internal/vector"
)

// Gather/scatter (indexed) workloads. The paper analyses equally
// spaced streams; later X-MP models added gather/scatter hardware whose
// bank behaviour is index-dependent. These generators produce the
// canonical index patterns used to study it:
//
//   - Permutation: a seeded pseudo-random permutation of the index
//     space (list-access traffic, the classical random-access regime);
//   - SameBank: the adversarial pattern hitting one bank with every
//     element;
//   - StridedIndex: indices equivalent to a plain strided access, for
//     calibrating gather overhead against the direct stream.

// PermutationIndices returns a seeded pseudo-random permutation of
// [0, n) as gather indices.
func PermutationIndices(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int64, n)
	for i, v := range rng.Perm(n) {
		idx[i] = int64(v)
	}
	return idx
}

// SameBankIndices returns n indices that all map to the same bank under
// m-way modulo interleaving: 0, m, 2m, …
func SameBankIndices(n, m int) []int64 {
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = int64(i * m)
	}
	return idx
}

// StridedIndices returns indices equivalent to a strided stream:
// 0, stride, 2*stride, …
func StridedIndices(n int, stride int64) []int64 {
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = int64(i) * stride
	}
	return idx
}

// Gather lowers A(I) = B(IX(I)): an indexed load chained into a strided
// store, strip-mined like the other kernels. idx must have at least n
// entries; B must be large enough for the largest index.
func Gather(a, b *vector.Array, idx []int64, n int, cfg machine.Config) []machine.Instr {
	cfg = fill(cfg)
	if len(idx) < n {
		panic(fmt.Sprintf("workload: %d indices for n = %d", len(idx), n))
	}
	var prog []machine.Instr
	offset := 0
	for si, sn := range strips(n, cfg.VectorLength) {
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: b.Addr(1), Indices: idx[offset : offset+sn], N: sn, IssueDelay: stripDelay(si, cfg)},
			machine.Instr{Op: machine.OpStore, Src1: 0, Base: a.Addr(1 + offset), Stride: 1, N: sn},
		)
		offset += sn
	}
	return prog
}

// Scatter lowers A(IX(I)) = B(I): a strided load chained into an
// indexed store.
func Scatter(a, b *vector.Array, idx []int64, n int, cfg machine.Config) []machine.Instr {
	cfg = fill(cfg)
	if len(idx) < n {
		panic(fmt.Sprintf("workload: %d indices for n = %d", len(idx), n))
	}
	var prog []machine.Instr
	offset := 0
	for si, sn := range strips(n, cfg.VectorLength) {
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: b.Addr(1 + offset), Stride: 1, N: sn, IssueDelay: stripDelay(si, cfg)},
			machine.Instr{Op: machine.OpStore, Src1: 0, Base: a.Addr(1), Indices: idx[offset : offset+sn], N: sn},
		)
		offset += sn
	}
	return prog
}
