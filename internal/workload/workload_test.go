package workload

import (
	"testing"

	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/vector"
)

func arrays(t *testing.T) (a, b, c, d *vector.Array) {
	t.Helper()
	cb := vector.NewCommonBlock(0)
	const idim = 16*1024 + 1
	return cb.Declare("A", idim), cb.Declare("B", idim), cb.Declare("C", idim), cb.Declare("D", idim)
}

func TestStrips(t *testing.T) {
	cases := []struct {
		n, vl int
		want  []int
	}{
		{64, 64, []int{64}},
		{65, 64, []int{64, 1}},
		{1024, 64, []int{64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64}},
		{10, 64, []int{10}},
		{130, 64, []int{64, 64, 2}},
	}
	for _, cse := range cases {
		got := strips(cse.n, cse.vl)
		if len(got) != len(cse.want) {
			t.Fatalf("strips(%d,%d) = %v", cse.n, cse.vl, got)
		}
		for i := range got {
			if got[i] != cse.want[i] {
				t.Fatalf("strips(%d,%d) = %v, want %v", cse.n, cse.vl, got, cse.want)
			}
		}
	}
}

func TestTriadProgramShape(t *testing.T) {
	a, b, c, d := arrays(t)
	cfg := machine.DefaultConfig()
	prog := Triad(a, b, c, d, 1024, 3, cfg)
	if len(prog) != 16*6 {
		t.Fatalf("len(prog) = %d, want 96", len(prog))
	}
	if err := cfg.Validate(prog); err != nil {
		t.Fatal(err)
	}
	// First strip: loads C and D, multiply, load B, add, store A.
	ops := []machine.Op{machine.OpLoad, machine.OpLoad, machine.OpMul, machine.OpLoad, machine.OpAdd, machine.OpStore}
	for i, want := range ops {
		if prog[i].Op != want {
			t.Fatalf("instr %d = %s, want %s", i, prog[i].Op, want)
		}
	}
	if prog[0].Base != c.Addr(1) || prog[1].Base != d.Addr(1) || prog[3].Base != b.Addr(1) || prog[5].Base != a.Addr(1) {
		t.Fatal("first-strip base addresses wrong")
	}
	// Strides carry the increment.
	if prog[0].Stride != 3 {
		t.Fatalf("stride = %d", prog[0].Stride)
	}
	// Strip boundaries pay the scalar overhead.
	if prog[6].IssueDelay != cfg.StripOverhead {
		t.Fatalf("strip 2 IssueDelay = %d", prog[6].IssueDelay)
	}
	if prog[0].IssueDelay != 0 {
		t.Fatalf("strip 1 IssueDelay = %d", prog[0].IssueDelay)
	}
	// Second strip starts at element 64 of the strided index space:
	// subscript 1 + 64*inc.
	if prog[6].Base != c.Addr(1+64*3) {
		t.Fatalf("strip 2 base = %d, want %d", prog[6].Base, c.Addr(1+64*3))
	}
}

// Every element of every stream is transferred exactly once: total
// grants = 4 streams * n elements.
func TestTriadConservation(t *testing.T) {
	a, b, c, d := arrays(t)
	cfg := machine.DefaultConfig()
	sim := machine.NewSimulation(memsys.Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2}, 1, cfg)
	n := 256
	sim.CPUs[0].LoadProgram(Triad(a, b, c, d, n, 5, cfg))
	_, done := sim.Run(1 << 20)
	if !done {
		t.Fatal("triad did not finish")
	}
	var grants int64
	for _, p := range sim.CPUs[0].Ports() {
		grants += p.Count.Grants
	}
	if grants != int64(4*n) {
		t.Fatalf("grants = %d, want %d", grants, 4*n)
	}
}

// The store port must transfer exactly n elements (one stream), the two
// load ports together 3n.
func TestTriadPortSplit(t *testing.T) {
	a, b, c, d := arrays(t)
	cfg := machine.DefaultConfig()
	sim := machine.NewSimulation(memsys.Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2}, 1, cfg)
	n := 192
	sim.CPUs[0].LoadProgram(Triad(a, b, c, d, n, 1, cfg))
	if _, done := sim.Run(1 << 20); !done {
		t.Fatal("triad did not finish")
	}
	ports := sim.CPUs[0].Ports()
	loadGrants := ports[0].Count.Grants + ports[1].Count.Grants
	storeGrants := ports[2].Count.Grants
	if loadGrants != int64(3*n) {
		t.Fatalf("load grants = %d, want %d", loadGrants, 3*n)
	}
	if storeGrants != int64(n) {
		t.Fatalf("store grants = %d, want %d", storeGrants, n)
	}
}

func TestCopyVAddAXPYPrograms(t *testing.T) {
	a, b, c, _ := arrays(t)
	cfg := machine.DefaultConfig()
	for name, prog := range map[string][]machine.Instr{
		"copy": Copy(a, b, 300, 2, cfg),
		"vadd": VAdd(a, b, c, 300, 2, cfg),
		"axpy": AXPY(a, b, 300, 2, cfg),
	} {
		if err := cfg.Validate(prog); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim := machine.NewSimulation(memsys.Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2}, 1, cfg)
		sim.CPUs[0].LoadProgram(prog)
		if _, done := sim.Run(1 << 20); !done {
			t.Fatalf("%s did not finish", name)
		}
	}
}

func TestStripsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("strips(0, 64) did not panic")
		}
	}()
	strips(0, 64)
}
