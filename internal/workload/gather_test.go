package workload

import (
	"testing"

	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/vector"
)

func gatherSim(t *testing.T, prog []machine.Instr) (*machine.Simulation, int64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	if err := cfg.Validate(prog); err != nil {
		t.Fatal(err)
	}
	sim := machine.NewSimulation(memsys.Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2}, 1, cfg)
	sim.CPUs[0].LoadProgram(prog)
	clocks, done := sim.Run(1 << 22)
	if !done {
		t.Fatal("did not finish")
	}
	return sim, clocks
}

func TestIndexGenerators(t *testing.T) {
	idx := PermutationIndices(64, 1)
	seen := map[int64]bool{}
	for _, v := range idx {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("not a permutation: %v", idx)
		}
		seen[v] = true
	}
	if got := PermutationIndices(64, 1); got[0] != idx[0] {
		t.Error("seeded permutation not deterministic")
	}
	sb := SameBankIndices(4, 16)
	for i, v := range sb {
		if v != int64(16*i) {
			t.Fatalf("SameBankIndices = %v", sb)
		}
	}
	st := StridedIndices(4, 3)
	for i, v := range st {
		if v != int64(3*i) {
			t.Fatalf("StridedIndices = %v", st)
		}
	}
}

// A gather with unit-stride-equivalent indices behaves like the copy
// kernel: full-speed transfer.
func TestGatherStridedEquivalence(t *testing.T) {
	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", 4096)
	b := cb.Declare("B", 4096)
	n := 256
	gather := Gather(a, b, StridedIndices(n, 1), n, machine.DefaultConfig())
	_, gClocks := gatherSim(t, gather)
	copyProg := Copy(a, b, n, 1, machine.DefaultConfig())
	_, cClocks := gatherSim(t, copyProg)
	if diff := gClocks - cClocks; diff < -4 || diff > 4 {
		t.Fatalf("gather with unit indices took %d, copy %d", gClocks, cClocks)
	}
}

// The adversarial same-bank gather is throttled to one grant per n_c
// clocks on its load stream.
func TestGatherSameBankWorstCase(t *testing.T) {
	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", 8192)
	b := cb.Declare("B", 8192)
	n := 128
	fast := Gather(a, b, StridedIndices(n, 1), n, machine.DefaultConfig())
	slow := Gather(a, b, SameBankIndices(n, 16), n, machine.DefaultConfig())
	_, fastClocks := gatherSim(t, fast)
	_, slowClocks := gatherSim(t, slow)
	if slowClocks < 3*fastClocks {
		t.Fatalf("same-bank gather (%d) should be ~4x slower than unit gather (%d)", slowClocks, fastClocks)
	}
	sim, _ := gatherSim(t, slow)
	if sim.CPUs[0].Ports()[0].Count.Bank == 0 {
		t.Fatal("expected bank conflicts on the same-bank gather")
	}
}

// A random permutation gather lands between the two extremes.
func TestGatherPermutationBetweenExtremes(t *testing.T) {
	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", 8192)
	b := cb.Declare("B", 8192)
	n := 256
	_, unit := gatherSim(t, Gather(a, b, StridedIndices(n, 1), n, machine.DefaultConfig()))
	_, perm := gatherSim(t, Gather(a, b, PermutationIndices(n, 7), n, machine.DefaultConfig()))
	_, worst := gatherSim(t, Gather(a, b, SameBankIndices(n, 16), n, machine.DefaultConfig()))
	if !(unit <= perm && perm <= worst) {
		t.Fatalf("ordering violated: unit=%d perm=%d worst=%d", unit, perm, worst)
	}
}

// Scatter conservation: every element is stored exactly once.
func TestScatterConservation(t *testing.T) {
	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", 8192)
	b := cb.Declare("B", 8192)
	n := 192
	sim, _ := gatherSim(t, Scatter(a, b, PermutationIndices(n, 3), n, machine.DefaultConfig()))
	ports := sim.CPUs[0].Ports()
	if got := ports[2].Count.Grants; got != int64(n) {
		t.Fatalf("store grants = %d, want %d", got, n)
	}
	if got := ports[0].Count.Grants + ports[1].Count.Grants; got != int64(n) {
		t.Fatalf("load grants = %d, want %d", got, n)
	}
}

func TestGatherValidatesIndexCount(t *testing.T) {
	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", 128)
	b := cb.Declare("B", 128)
	defer func() {
		if recover() == nil {
			t.Fatal("short index vector did not panic")
		}
	}()
	Gather(a, b, StridedIndices(4, 1), 8, machine.DefaultConfig())
}

func TestInstrAddrIndexed(t *testing.T) {
	in := machine.Instr{Op: machine.OpLoad, Base: 100, Indices: []int64{5, 0, 9}, N: 3}
	if in.Addr(0) != 105 || in.Addr(2) != 109 {
		t.Fatalf("Addr wrong: %d %d", in.Addr(0), in.Addr(2))
	}
	in = machine.Instr{Op: machine.OpLoad, Base: 100, Stride: 4, N: 3}
	if in.Addr(2) != 108 {
		t.Fatalf("strided Addr = %d", in.Addr(2))
	}
}
