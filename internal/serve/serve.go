// Package serve is the HTTP/JSON query layer of ivmserved: a
// long-running bandwidth service answering "what is b_eff of this
// configuration" through the same sweep engine the CLIs run, so every
// response is byte-identical to what ivmsweep would print. Three
// endpoints cover the query shapes (docs/SERVING.md is the full API
// reference):
//
//	POST /v1/bandwidth  one fixed-placement ConfigSpec -> one result
//	POST /v1/batch      many specs, amortised over the worker pool
//	GET  /v1/sweep      a start sweep of a stride pair, streamed NDJSON
//
// Each result carries its provenance: which path answered (analytic
// theorem, canonical-orbit cache hit, or simulation), under which
// theorem identifier, via which canonical vector. The server wires the
// engine to an optional cachestore.Store — records seed the in-RAM
// cache at construction (warm start) and new simulations append to the
// store's log — and exposes ivmserved_* request/latency/hit-path
// counters beside the engine's ivm_sweep_* metrics on /metrics, with
// store integrity on /healthz.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ivm/internal/cachestore"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/sweep"
)

// MaxBatch bounds the specs one /v1/batch request may carry; larger
// batches should be split client-side (the cap keeps one request from
// monopolising the pool and bounds decode memory).
const MaxBatch = 1 << 16

// Options configures a Server.
type Options struct {
	// Workers and CacheSize configure the underlying sweep engine
	// (sweep.Options). CacheSize 0 selects a capacity of at least
	// sweep.DefaultCacheSize, grown to hold the store's records twice
	// over so a warm start is not evicted by its own seed.
	Workers   int
	CacheSize int
	// Store, when non-nil, is the persistent cache: its records are
	// seeded into the engine at construction and every new simulation
	// is appended back through the engine's CacheSink. The caller
	// keeps ownership (Sync/Close).
	Store *cachestore.Store
	// Analytic and PackedKernel forward to sweep.Options; nil selects
	// the defaults (gate on, packed kernel).
	Analytic     *bool
	PackedKernel *bool
	// AccessLog, when non-nil, receives one structured line per API
	// request (msg "request": id, endpoint, method, status, duration,
	// answer path, theorem, family, result count) and a WARN line with
	// the span breakdown for each request over SlowThreshold.
	AccessLog *slog.Logger
	// SlowThreshold marks requests at or above it as slow: logged at
	// WARN with full provenance and retained for /statusz. Zero
	// disables slow-query tracking.
	SlowThreshold time.Duration
}

// numPaths is the provenance path count ([sweep.PathAnalytic,
// sweep.PathSimPacked] is the engine's full range).
const numPaths = int(sweep.PathSimPacked) + 1

// endpointStats is one endpoint's request counters.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	nanos    atomic.Int64
}

// endpointNames indexes the instrumented endpoints.
var endpointNames = []string{"bandwidth", "batch", "sweep", "healthz"}

// Server answers bandwidth queries over HTTP. Build with New, mount
// with Handler; the Server holds no listener of its own.
type Server struct {
	eng    *sweep.Engine
	prov   *sweep.Provenance
	store  *cachestore.Store
	reg    *obs.Registry
	seeded int

	accessLog     *slog.Logger
	slowThreshold time.Duration
	start         time.Time
	idBase        string
	reqSeq        atomic.Int64

	endpoints [4]endpointStats
	latency   [4]*obs.LatencyHist
	paths     [numPaths]atomic.Int64
	traces    traceRing
	slow      slowRing
}

// New builds a server: a provenance-recording engine sized for the
// store's record set, warm-seeded from it, with new simulations
// appended back to the store. A store record that fails seeding
// (shape corruption the CRC could not catch) fails construction — the
// store should be deleted and rebuilt rather than served from.
func New(opt Options) (*Server, error) {
	var records []sweep.CacheRecord
	if opt.Store != nil {
		records = opt.Store.Records()
	}
	size := opt.CacheSize
	if size == 0 {
		size = sweep.DefaultCacheSize
		if need := 2 * len(records); need > size {
			size = need
		}
	}
	if size < 0 {
		return nil, fmt.Errorf("serve: caching disabled (CacheSize %d): the server IS the cache", opt.CacheSize)
	}
	s := &Server{
		prov:          sweep.NewProvenance(0),
		store:         opt.Store,
		reg:           obs.NewRegistry(),
		accessLog:     opt.AccessLog,
		slowThreshold: opt.SlowThreshold,
		start:         time.Now(),
		idBase:        newIDBase(),
	}
	for i := range s.latency {
		s.latency[i] = obs.NewLatencyHist()
	}
	eopt := sweep.Options{
		Workers:      opt.Workers,
		CacheSize:    size,
		Provenance:   s.prov,
		Analytic:     opt.Analytic,
		PackedKernel: opt.PackedKernel,
	}
	if opt.Store != nil {
		eopt.CacheSink = opt.Store
	}
	s.eng = sweep.NewEngine(eopt)
	for _, rec := range records {
		if err := s.eng.SeedCache(rec); err != nil {
			return nil, fmt.Errorf("serve: warm start: %v", err)
		}
		s.seeded++
	}
	s.reg.RegisterProm("sweep", obs.SweepPromMetrics(s.eng))
	s.reg.RegisterProm("served", s.promMetrics)
	s.reg.Register("engine", func() any { return s.eng.Snapshot() })
	s.reg.Register("requests", func() any {
		out := make(map[string]obs.LatencyHistSnapshot, len(endpointNames))
		for i, name := range endpointNames {
			out[name] = s.latency[i].Snapshot()
		}
		return out
	})
	return s, nil
}

// Engine exposes the underlying sweep engine (examples and tests
// compare served answers against in-process sweeps).
func (s *Server) Engine() *sweep.Engine { return s.eng }

// Seeded reports how many store records warm-started the cache.
func (s *Server) Seeded() int { return s.seeded }

// Handler returns the server's full mux: the /v1 API, /healthz with
// store integrity, the human-readable /statusz page, the Chrome-trace
// export of recent requests at /debug/requests.trace, and the
// registry's /metrics, /metrics.json and /debug endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/bandwidth", s.instrument(0, http.HandlerFunc(s.handleBandwidth)))
	mux.Handle("/v1/batch", s.instrument(1, http.HandlerFunc(s.handleBatch)))
	mux.Handle("/v1/sweep", s.instrument(2, http.HandlerFunc(s.handleSweep)))
	mux.Handle("/healthz", s.instrument(3, http.HandlerFunc(s.handleHealthz)))
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/requests.trace", s.handleRequestTrace)
	s.reg.Mount(mux)
	return mux
}

// statusWriter captures the response status for the error counters
// while forwarding the streaming capabilities of the wrapped writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher so streaming endpoints (the NDJSON
// sweep) reach the client incrementally instead of buffering the
// whole response behind the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, the
// standard library's interface-upgrade escape hatch.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps an endpoint with the full request-scoped
// observability: the ivmserved_* counters and latency histogram, the
// per-request TraceContext (honoring or minting X-Request-ID, echoed
// on the response), the slog access log, the slow-query log, and the
// completed-request trace ring.
func (s *Server) instrument(endpoint int, h http.Handler) http.Handler {
	st := &s.endpoints[endpoint]
	name := endpointNames[endpoint]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := s.requestID(r)
		tc := obs.NewTraceContext(id)
		info := &reqInfo{tc: tc}
		ctx := withRequestInfo(sweep.WithSpanSink(r.Context(), tc), info)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(t0)
		st.requests.Add(1)
		st.nanos.Add(dur.Nanoseconds())
		s.latency[endpoint].Observe(dur)
		if sw.status >= 400 {
			st.errors.Add(1)
		}
		spans := tc.Spans()
		s.traces.add(obs.RequestTrace{
			ID: id, Endpoint: name, Status: sw.status,
			StartNS: t0.Sub(s.start).Nanoseconds(), DurNS: dur.Nanoseconds(),
			Spans: spans,
		})
		slow := s.slowThreshold > 0 && dur >= s.slowThreshold
		if slow {
			s.slow.add(slowEntry{
				ID: id, Endpoint: name, Status: sw.status, When: t0, Dur: dur,
				Path: info.path, Theorem: info.theorem, Family: info.family,
				Results: info.results, Spans: spans,
			})
		}
		if s.accessLog != nil {
			s.accessLog.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("id", id), slog.String("endpoint", name),
				slog.String("method", r.Method), slog.Int("status", sw.status),
				slog.Float64("dur_ms", float64(dur.Nanoseconds())/1e6),
				slog.String("path", info.path), slog.String("theorem", info.theorem),
				slog.String("family", info.family), slog.Int("results", info.results))
			if slow {
				s.accessLog.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
					slog.String("id", id), slog.String("endpoint", name),
					slog.Float64("dur_ms", float64(dur.Nanoseconds())/1e6),
					slog.String("path", info.path), slog.String("theorem", info.theorem),
					slog.String("family", info.family), slog.Int("results", info.results),
					slog.String("spans", spanBreakdown(spans)),
					slog.Int64("spans_dropped", tc.Dropped()))
			}
		}
	})
}

// spanBreakdown folds a request's spans into a compact per-phase
// summary ("simulate:3x42.1ms gate:3x0.2ms") ordered by total time,
// the shape the slow-query log and /statusz print.
func spanBreakdown(spans []obs.Span) string {
	type agg struct {
		name  string
		count int
		ns    int64
	}
	var order []*agg
	byName := make(map[string]*agg)
	for _, sp := range spans {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{name: sp.Name}
			byName[sp.Name] = a
			order = append(order, a)
		}
		a.count++
		a.ns += sp.DurNS
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].ns > order[j-1].ns; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := ""
	for i, a := range order {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%dx%s", a.name, a.count,
			time.Duration(a.ns).Round(time.Microsecond))
	}
	return out
}

// countPath folds one resolution into the hit-path counters.
func (s *Server) countPath(p sweep.Path) {
	if i := int(p); i >= 0 && i < numPaths {
		s.paths[i].Add(1)
	}
}

// promMetrics renders the ivmserved_* counters.
func (s *Server) promMetrics() []obs.PromMetric {
	req := obs.PromMetric{Name: "ivmserved_requests_total",
		Help: "API requests served, by endpoint.", Type: "counter"}
	errs := obs.PromMetric{Name: "ivmserved_errors_total",
		Help: "API requests answered with a 4xx/5xx status, by endpoint.", Type: "counter"}
	secs := obs.PromMetric{Name: "ivmserved_request_seconds_total",
		Help: "Wall time spent handling API requests, by endpoint.", Type: "counter"}
	for i, name := range endpointNames {
		st := &s.endpoints[i]
		req = req.Sample("endpoint", name, st.requests.Load())
		errs = errs.Sample("endpoint", name, st.errors.Load())
		secs = secs.Sample("endpoint", name, float64(st.nanos.Load())/1e9)
	}
	hist := obs.Histogram("ivmserved_request_duration_seconds",
		"API request latency distribution, by endpoint (log2 buckets).")
	for i, name := range endpointNames {
		hist = hist.HistSample(s.latency[i].Snapshot(), "endpoint", name)
	}
	paths := obs.PromMetric{Name: "ivmserved_responses_total",
		Help: "Query results returned, by answer path.", Type: "counter"}
	for i := 0; i < numPaths; i++ {
		paths = paths.Sample("path", sweep.Path(i).String(), s.paths[i].Load())
	}
	out := []obs.PromMetric{req, errs, secs, hist, paths,
		obs.Gauge("ivmserved_cache_seeded_records",
			"Store records seeded into the in-RAM cache at start.", float64(s.seeded))}
	if s.store != nil {
		h := s.store.Health()
		up := 1.0
		if h.Err != "" {
			up = 0
		}
		out = append(out,
			obs.Gauge("ivmserved_store_records", "Deduplicated records in the persistent cache store.", float64(h.Records)),
			obs.Gauge("ivmserved_store_skipped_records", "Corrupt tail records dropped when the store was opened.", float64(h.SkippedRecords)),
			obs.Gauge("ivmserved_store_up", "Whether the persistent store is healthy (no pending append/sync error).", up))
	}
	return out
}

// --- Handlers -----------------------------------------------------------

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck // client gone
}

// The serving layer's own span names: the engine records gate,
// canonicalise, cache-probe and simulate (sweep.SpanGate etc); decode
// and encode bracket them with the HTTP-side work.
const (
	spanDecode = "decode"
	spanEncode = "encode"
)

// handleBandwidth answers POST /v1/bandwidth: one SpecJSON in, one
// ResultJSON out.
func (s *Server) handleBandwidth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a spec to /v1/bandwidth")
		return
	}
	info := requestInfo(r)
	ds := info.tc.Start()
	var sj SpecJSON
	if err := json.NewDecoder(r.Body).Decode(&sj); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	spec, err := sj.Spec()
	info.tc.Span(spanDecode, ds)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.eng.ResolveCtx(r.Context(), spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.countPath(res.Path)
	info.path = res.Path.String()
	info.theorem = res.Theorem
	info.family = res.Family
	info.results = 1
	w.Header().Set("Content-Type", "application/json")
	es := info.tc.Start()
	json.NewEncoder(w).Encode(resultJSON(res)) //nolint:errcheck // client gone
	info.tc.Span(spanEncode, es)
}

// handleBatch answers POST /v1/batch: up to MaxBatch specs resolved
// through the worker pool in one call, with the path split attached.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST specs to /v1/batch")
		return
	}
	info := requestInfo(r)
	ds := info.tc.Start()
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Specs) > MaxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d specs exceeds the cap of %d", len(req.Specs), MaxBatch)
		return
	}
	specs := make([]sweep.ConfigSpec, len(req.Specs))
	for i, sj := range req.Specs {
		spec, err := sj.Spec()
		if err != nil {
			httpError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		specs[i] = spec
	}
	info.tc.Span(spanDecode, ds)
	results, err := s.eng.ResolveBatchCtx(r.Context(), specs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := BatchResponse{Results: make([]ResultJSON, len(results)), Paths: make(map[string]int)}
	for i, res := range results {
		s.countPath(res.Path)
		resp.Results[i] = resultJSON(res)
		resp.Paths[res.Path.String()]++
	}
	info.results = len(results)
	info.path = dominantPath(resp.Paths)
	w.Header().Set("Content-Type", "application/json")
	es := info.tc.Start()
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone
	info.tc.Span(spanEncode, es)
}

// dominantPath picks the most common answer path of a batch for the
// access log's one-line attribution (ties break lexically for
// determinism).
func dominantPath(paths map[string]int) string {
	best, bestN := "", -1
	for p, n := range paths {
		if n > bestN || (n == bestN && p < best) {
			best, bestN = p, n
		}
	}
	return best
}

// handleSweep answers GET /v1/sweep: a start sweep of one stride pair
// — stream 2's start over all m banks — streamed as NDJSON, one
// SweepRowJSON per line in b2 order. Query parameters: m, nc, d1, d2
// (required), s (sections; 0 or absent for sectionless), consecutive
// (with s: consecutive bank-to-section mapping), mapping
// (cyclic/consecutive; the spelled-out form of consecutive), priority
// (fixed/cyclic/rr-cpu arbitration), b1 (stream 1 start, default 0).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /v1/sweep?m=..&nc=..&d1=..&d2=..")
		return
	}
	q := r.URL.Query()
	intArg := func(name string, def int, required bool) (int, error) {
		v := q.Get(name)
		if v == "" {
			if required {
				return 0, fmt.Errorf("missing parameter %q", name)
			}
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %q: %v", name, err)
		}
		return n, nil
	}
	var parseErr error
	arg := func(name string, def int, required bool) int {
		n, err := intArg(name, def, required)
		if err != nil && parseErr == nil {
			parseErr = err
		}
		return n
	}
	m := arg("m", 0, true)
	nc := arg("nc", 0, true)
	d1 := arg("d1", 0, true)
	d2 := arg("d2", 0, true)
	sections := arg("s", 0, false)
	b1 := arg("b1", 0, false)
	if parseErr != nil {
		httpError(w, http.StatusBadRequest, "%v", parseErr)
		return
	}
	consec := false
	switch v := q.Get("consecutive"); v {
	case "", "0", "false":
	case "1", "true":
		consec = true
	default:
		httpError(w, http.StatusBadRequest, "parameter \"consecutive\": want 0/1/true/false, got %q", v)
		return
	}
	mapping := memsys.CyclicSections
	if v := q.Get("mapping"); v != "" {
		sm, err := memsys.ParseMapping(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parameter \"mapping\": unknown section mapping %q (want cyclic or consecutive)", v)
			return
		}
		if consec && sm != memsys.ConsecutiveSections {
			httpError(w, http.StatusBadRequest, "parameter \"consecutive\" contradicts parameter \"mapping\"=%q", v)
			return
		}
		mapping = sm
	}
	if consec {
		mapping = memsys.ConsecutiveSections
	}
	priority := memsys.FixedPriority
	if v := q.Get("priority"); v != "" {
		pr, err := memsys.ParsePriority(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parameter \"priority\": unknown priority rule %q (want fixed, cyclic or rr-cpu)", v)
			return
		}
		priority = pr
	}
	specs := make([]sweep.ConfigSpec, 0, max(m, 0))
	for b2 := 0; b2 < m; b2++ {
		streams := []sweep.Stream{
			{D: d1, B: b1, CPU: 0},
			{D: d2, B: b2, CPU: 1},
		}
		if sections > 0 {
			streams[1].CPU = 0
		}
		specs = append(specs, sweep.ConfigSpec{
			M: m, S: sections, NC: nc, Streams: streams,
			Mapping: mapping, Priority: priority,
		})
	}
	if len(specs) == 0 {
		httpError(w, http.StatusBadRequest, "sweep: %d banks", m)
		return
	}
	info := requestInfo(r)
	results, err := s.eng.ResolveBatchCtx(r.Context(), specs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info.results = len(results)
	if len(results) > 0 {
		info.family = results[0].Family
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	f, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	es := info.tc.Start()
	for b2, res := range results {
		s.countPath(res.Path)
		if err := enc.Encode(SweepRowJSON{B2: b2, ResultJSON: resultJSON(res)}); err != nil {
			return // client gone; rows already written stand
		}
		if f != nil {
			f.Flush() // stream each row; statusWriter forwards the flush
		}
	}
	info.tc.Span(spanEncode, es)
}

// handleRequestTrace serves GET /debug/requests.trace: the retained
// recent requests as a Chrome trace_event document (the "requests"
// process), loadable in chrome://tracing or Perfetto and greppable by
// request ID.
func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /debug/requests.trace")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteRequestTrace(w, s.traces.snapshot()) //nolint:errcheck // client gone
}

// handleHealthz reports liveness plus store integrity: 200 with
// status "ok" when healthy, 500 with status "degraded" and the
// store's error when an append or sync has failed.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthJSON{Status: "ok"}
	status := http.StatusOK
	if s.store != nil {
		h := s.store.Health()
		resp.Store = &h
		if h.Err != "" {
			resp.Status = "degraded"
			status = http.StatusInternalServerError
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone
}
