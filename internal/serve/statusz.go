package serve

// /statusz: the human-readable one-page state of a running ivmserved —
// uptime, per-endpoint traffic and latency quantiles, the answer-path
// split, the engine's cache and gate hit rates per family, store
// health, and the most recent slow requests. Everything on it is also
// machine-readable elsewhere (/metrics, /metrics.json, the access
// log); statusz is the page a human opens first when triaging.

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"

	"ivm/internal/sweep"
)

// handleStatusz serves GET /statusz.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /statusz")
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ivmserved status\n================\n\n")
	fmt.Fprintf(&b, "uptime:          %s\n", time.Since(s.start).Round(time.Second))
	fmt.Fprintf(&b, "seeded records:  %d\n", s.seeded)
	fmt.Fprintf(&b, "workers:         %d\n\n", s.eng.Snapshot().Workers)

	b.WriteString("endpoints\n---------\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "mean", "p50", "p95", "p99")
	for i, name := range endpointNames {
		st := &s.endpoints[i]
		snap := s.latency[i].Snapshot()
		fmt.Fprintf(&b, "%-10s %10d %8d %10s %10s %10s %10s\n",
			name, st.requests.Load(), st.errors.Load(),
			fmtStatusDur(snap.Mean()), fmtStatusDur(snap.P50),
			fmtStatusDur(snap.P95), fmtStatusDur(snap.P99))
	}

	b.WriteString("\nanswer paths\n------------\n")
	for i := 0; i < numPaths; i++ {
		fmt.Fprintf(&b, "%-12s %10d\n", sweep.Path(i).String(), s.paths[i].Load())
	}

	snap := s.eng.Snapshot()
	b.WriteString("\nengine\n------\n")
	fmt.Fprintf(&b, "pairs resolved:    %d\n", snap.Metrics.PairsSwept)
	fmt.Fprintf(&b, "cycles simulated:  %d\n", snap.Metrics.CyclesFound)
	fmt.Fprintf(&b, "steps simulated:   %d\n", snap.Metrics.StepsSimulated)
	fmt.Fprintf(&b, "cache hit rate:    %.4f\n", snap.CacheHitRate)
	fmt.Fprintf(&b, "analytic hit rate: %.4f\n", snap.AnalyticHitRate)
	if len(snap.FamilyHitRates) > 0 {
		fams := make([]string, 0, len(snap.FamilyHitRates))
		for name := range snap.FamilyHitRates {
			fams = append(fams, name)
		}
		sort.Strings(fams)
		b.WriteString("per-family cache hit rates:\n")
		for _, name := range fams {
			fmt.Fprintf(&b, "  %-16s %.4f\n", name, snap.FamilyHitRates[name])
		}
	}

	if s.store != nil {
		h := s.store.Health()
		b.WriteString("\nstore\n-----\n")
		fmt.Fprintf(&b, "records:  %d\nskipped:  %d\n", h.Records, h.SkippedRecords)
		if h.Err != "" {
			fmt.Fprintf(&b, "ERROR:    %s\n", h.Err)
		} else {
			b.WriteString("healthy\n")
		}
	}

	slow, slowTotal := s.slow.snapshot()
	b.WriteString("\nslow requests\n-------------\n")
	if s.slowThreshold <= 0 {
		b.WriteString("tracking disabled (-slow-ms 0)\n")
	} else {
		fmt.Fprintf(&b, "threshold %s, %d slow all-time, last %d retained\n",
			s.slowThreshold, slowTotal, len(slow))
		for i := len(slow) - 1; i >= 0; i-- { // newest first
			e := slow[i]
			fmt.Fprintf(&b, "\n  %s  %s  %s  status=%d  dur=%s\n",
				e.When.Format(time.RFC3339), e.ID, e.Endpoint, e.Status,
				e.Dur.Round(time.Microsecond))
			fmt.Fprintf(&b, "    path=%s theorem=%s family=%s results=%d\n",
				orDash(e.Path), orDash(e.Theorem), orDash(e.Family), e.Results)
			if len(e.Spans) > 0 {
				fmt.Fprintf(&b, "    spans: %s\n", spanBreakdown(e.Spans))
			}
		}
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>ivmserved /statusz</title></head><body><pre>%s</pre></body></html>\n",
		html.EscapeString(b.String()))
}

// fmtStatusDur renders a latency in seconds for the statusz tables
// ("-" when zero).
func fmtStatusDur(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// orDash substitutes "-" for an empty attribution field.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
