package serve

// Tests of the request-scoped observability layer: trace-ID
// propagation, the access and slow-query logs, the statusWriter's
// Flusher passthrough, the duration histogram, /statusz and the
// Chrome-trace export of recent requests.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter serialises the access log against test readers.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestStatusWriterForwardsFlush pins the Flusher passthrough: an
// instrumented handler flushes one line, blocks until the client has
// read it off the wire, then writes the rest — impossible unless the
// statusWriter forwards Flush to the underlying writer while the
// handler is still running.
func TestStatusWriterForwardsFlush(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	h := s.instrument(2, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("instrumented writer does not expose http.Flusher")
			return
		}
		fmt.Fprintln(w, "first")
		f.Flush()
		<-release // held until the client confirms receipt
		fmt.Fprintln(w, "second")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n') // deadlocks into the client timeout if Flush is swallowed
	if err != nil || line != "first\n" {
		t.Fatalf("first flushed line: %q, %v", line, err)
	}
	close(release)
	rest, err := io.ReadAll(br)
	if err != nil || string(rest) != "second\n" {
		t.Fatalf("rest of body: %q, %v", rest, err)
	}

	// The interface-upgrade fallback: http.ResponseController reaches
	// the real writer through Unwrap.
	var w any = &statusWriter{ResponseWriter: httptest.NewRecorder()}
	if _, ok := w.(http.Flusher); !ok {
		t.Error("statusWriter does not implement http.Flusher")
	}
	if _, ok := w.(interface{ Unwrap() http.ResponseWriter }); !ok {
		t.Error("statusWriter does not implement Unwrap")
	}
}

// TestRequestIDPropagation checks the trace-ID contract: an incoming
// X-Request-ID is honored and echoed, a hostile one is sanitised, and
// an absent one is minted.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	post := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bandwidth", strings.NewReader(pinnedPairSpec))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for reuse
		resp.Body.Close()
		return resp
	}
	if got := post("trace-me-42").Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("honored ID = %q, want trace-me-42", got)
	}
	if got := post("bad id{with}junk!").Header.Get("X-Request-ID"); got != "badidwithjunk" {
		t.Errorf("sanitised ID = %q, want badidwithjunk", got)
	}
	minted := post("").Header.Get("X-Request-ID")
	if minted == "" || !strings.Contains(minted, "-") {
		t.Errorf("minted ID = %q, want <base>-<seq>", minted)
	}
	if again := post("").Header.Get("X-Request-ID"); again == minted {
		t.Errorf("minted IDs repeat: %q", again)
	}
}

// TestAccessLog checks the one-line-per-request slog contract: the
// request ID is byte-greppable and the line carries endpoint, status,
// answer path and theorem.
func TestAccessLog(t *testing.T) {
	var logw syncWriter
	_, ts := newTestServer(t, Options{
		Workers:   1,
		AccessLog: slog.New(slog.NewJSONHandler(&logw, nil)),
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bandwidth", strings.NewReader(pinnedPairSpec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "grep-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // body irrelevant here
	resp.Body.Close()

	var line map[string]any
	deadline := time.Now().Add(2 * time.Second)
	for {
		if raw := logw.String(); strings.Contains(raw, "grep-me-123") {
			if err := json.Unmarshal([]byte(strings.SplitN(raw, "\n", 2)[0]), &line); err != nil {
				t.Fatalf("access log line is not JSON: %v\n%s", err, raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request ID never reached the access log:\n%s", logw.String())
		}
		time.Sleep(time.Millisecond)
	}
	for key, want := range map[string]any{
		"msg": "request", "id": "grep-me-123", "endpoint": "bandwidth",
		"status": 200.0, "path": "analytic", "theorem": "eq-29", "results": 1.0,
	} {
		if got := line[key]; got != want {
			t.Errorf("access log %s = %v, want %v", key, got, want)
		}
	}
	if dur, ok := line["dur_ms"].(float64); !ok || dur < 0 {
		t.Errorf("access log dur_ms = %v", line["dur_ms"])
	}
}

// TestSlowQueryLog drives a request over an immediately-tripping slow
// threshold and checks both surfaces: the WARN log line with the span
// breakdown, and the /statusz slow-request section with provenance.
func TestSlowQueryLog(t *testing.T) {
	var logw syncWriter
	_, ts := newTestServer(t, Options{
		Workers:       1,
		AccessLog:     slog.New(slog.NewJSONHandler(&logw, nil)),
		SlowThreshold: time.Nanosecond,
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bandwidth", strings.NewReader(pinnedPairSpec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "slow-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // body irrelevant here
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logw.String(), "slow request") {
		if time.Now().After(deadline) {
			t.Fatalf("no slow-request WARN logged:\n%s", logw.String())
		}
		time.Sleep(time.Millisecond)
	}
	raw := logw.String()
	var warn map[string]any
	for _, l := range strings.Split(raw, "\n") {
		if strings.Contains(l, "slow request") {
			if err := json.Unmarshal([]byte(l), &warn); err != nil {
				t.Fatalf("WARN line not JSON: %v", err)
			}
		}
	}
	if warn["level"] != "WARN" || warn["id"] != "slow-1" || warn["path"] != "analytic" {
		t.Errorf("slow WARN = %v", warn)
	}
	spans, _ := warn["spans"].(string)
	if !strings.Contains(spans, "decode:") || !strings.Contains(spans, "gate:") {
		t.Errorf("span breakdown %q lacks decode/gate phases", spans)
	}

	sresp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	for _, want := range []string{"slow requests", "slow-1", "path=analytic theorem=eq-29", "decode:"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/statusz lacks %q", want)
		}
	}
}

// TestStatuszPage checks the page renders every section with live
// numbers after some traffic.
func TestStatuszPage(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	postJSON(t, ts.URL+"/v1/bandwidth", pinnedPairSpec)
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	page, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"ivmserved status", "uptime:", "endpoints", "bandwidth", "p95",
		"answer paths", "analytic", "engine", "cache hit rate", "slow requests",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/statusz lacks %q:\n%s", want, page)
		}
	}
}

// TestRequestTraceExport drives one identified request and finds it in
// the Chrome-trace export with its resolve-phase spans.
func TestRequestTraceExport(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bandwidth", strings.NewReader(pinnedPairSpec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-export-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // body irrelevant here
	resp.Body.Close()

	tresp, err := http.Get(ts.URL + "/debug/requests.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	doc, _ := io.ReadAll(tresp.Body)
	var parsed map[string]any
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	for _, want := range []string{`"requests"`, "trace-export-7", `"bandwidth"`, `"decode"`, `"gate"`, `"encode"`} {
		if !bytes.Contains(doc, []byte(want)) {
			t.Errorf("trace export lacks %s", want)
		}
	}
}

// TestDurationHistogram pins the new native-histogram metric beside
// the kept seconds-total counter: _count equals the requests served
// per endpoint and the bucket series carry le labels.
func TestDurationHistogram(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	const n = 3
	for i := 0; i < n; i++ {
		postJSON(t, ts.URL+"/v1/bandwidth", pinnedPairSpec)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	out := string(metrics)
	for _, want := range []string{
		"# TYPE ivmserved_request_duration_seconds histogram",
		fmt.Sprintf(`ivmserved_request_duration_seconds_count{endpoint="bandwidth"} %d`, n),
		fmt.Sprintf(`ivmserved_request_duration_seconds_bucket{endpoint="bandwidth",le="+Inf"} %d`, n),
		`ivmserved_request_duration_seconds_bucket{endpoint="bandwidth",le="`,
		`ivmserved_request_duration_seconds_sum{endpoint="bandwidth"}`,
		// The dashboard-compatibility counter must survive the migration.
		`ivmserved_request_seconds_total{endpoint="bandwidth"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, out)
		}
	}
	// The JSON mirror exposes the same counts with quantile estimates.
	jresp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var mj struct {
		Requests map[string]struct {
			Count int64   `json:"count"`
			P95   float64 `json:"p95_seconds"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&mj); err != nil {
		t.Fatal(err)
	}
	bw := mj.Requests["bandwidth"]
	if bw.Count != n || bw.P95 <= 0 {
		t.Errorf("metrics.json requests.bandwidth = %+v, want count %d and p95 > 0", bw, n)
	}
}

// TestSweepStreamsRows checks the NDJSON sweep flushes rows (the
// Flusher bug's user-visible symptom was a fully buffered response):
// each row must parse independently and the response must carry the
// streaming content type.
func TestSweepStreamsRows(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/sweep?m=8&nc=2&d1=1&d2=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	rows := 0
	for sc.Scan() {
		var row SweepRowJSON
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
		if row.B2 != rows {
			t.Errorf("row %d out of order: b2=%d", rows, row.B2)
		}
		rows++
	}
	if rows != 8 {
		t.Errorf("streamed %d rows, want 8", rows)
	}
}

// TestSanitizeRequestID pins the ID hygiene rules.
func TestSanitizeRequestID(t *testing.T) {
	for raw, want := range map[string]string{
		"":                       "",
		"ok-id_1.2:3/4":          "ok-id_1.2:3/4",
		"bad id\n{}\"":           "badid",
		"\x00\x01\x02":           "",
		strings.Repeat("a", 300): strings.Repeat("a", maxRequestIDLen),
	} {
		if got := sanitizeRequestID(raw); got != want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", raw, got, want)
		}
	}
}
