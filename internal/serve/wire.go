package serve

// The wire types of the /v1 API. Field order is fixed by these struct
// definitions, so responses are byte-stable — scripts/check.sh pins
// the bandwidth endpoint's exact bytes for a known pair, and the
// restart acceptance test compares responses across server restarts
// byte for byte. docs/SERVING.md documents every field.

import (
	"fmt"

	"ivm/internal/cachestore"
	"ivm/internal/memsys"
	"ivm/internal/sweep"
)

// StreamJSON is one access stream of a request spec: stride d issued
// from CPU cpu, starting at bank b. All of d and b must already be
// reduced into [0, m).
type StreamJSON struct {
	D   int `json:"d"`
	B   int `json:"b"`
	CPU int `json:"cpu"`
}

// SpecJSON is the request form of sweep.ConfigSpec: m banks, s
// sections (0 or absent for sectionless), bank busy time nc, the
// policy fields — priority ("fixed", "cyclic", "rr-cpu") and mapping
// ("cyclic", "consecutive"); absent fields mean the defaults, unknown
// strings are a 400, never a silent default — and one stream per port
// in priority order. The legacy consecutive flag is kept as shorthand
// for mapping="consecutive" and must not contradict mapping.
type SpecJSON struct {
	M           int          `json:"m"`
	S           int          `json:"s,omitempty"`
	NC          int          `json:"nc"`
	Consecutive bool         `json:"consecutive,omitempty"`
	Priority    string       `json:"priority,omitempty"`
	Mapping     string       `json:"mapping,omitempty"`
	Streams     []StreamJSON `json:"streams"`
}

// Spec converts the wire form to the engine's ConfigSpec. The policy
// strings are parsed strictly — an unknown name is an error naming the
// offending field, surfaced by the handlers as a 400; structural
// validation still happens in the engine.
func (sj SpecJSON) Spec() (sweep.ConfigSpec, error) {
	streams := make([]sweep.Stream, len(sj.Streams))
	for i, st := range sj.Streams {
		streams[i] = sweep.Stream{D: st.D, B: st.B, CPU: st.CPU}
	}
	spec := sweep.ConfigSpec{
		M: sj.M, S: sj.S, NC: sj.NC,
		Streams: streams,
	}
	if sj.Priority != "" {
		pr, err := memsys.ParsePriority(sj.Priority)
		if err != nil {
			return spec, fmt.Errorf("field %q: unknown priority rule %q (want fixed, cyclic or rr-cpu)", "priority", sj.Priority)
		}
		spec.Priority = pr
	}
	if sj.Mapping != "" {
		sm, err := memsys.ParseMapping(sj.Mapping)
		if err != nil {
			return spec, fmt.Errorf("field %q: unknown section mapping %q (want cyclic or consecutive)", "mapping", sj.Mapping)
		}
		spec.Mapping = sm
	}
	if sj.Consecutive {
		if sj.Mapping != "" && spec.Mapping != memsys.ConsecutiveSections {
			return spec, fmt.Errorf("field %q contradicts field %q: consecutive=true with mapping=%q", "consecutive", "mapping", sj.Mapping)
		}
		spec.Mapping = memsys.ConsecutiveSections
	}
	return spec, nil
}

// ResultJSON is one resolved placement: the effective bandwidth as an
// exact fraction (b_eff is its rendered form, num/den the parts), the
// configuration family, and the provenance of the answer — path is
// "analytic", "cache", "sim-scalar" or "sim-packed"; theorem is the
// paper theorem/equation identifier on analytic answers; canonical is
// the orbit representative that keyed the cache on cache/simulation
// answers; cycle_length and clocks are the simulation cost on misses.
type ResultJSON struct {
	Family      string `json:"family"`
	BEff        string `json:"b_eff"`
	Num         int64  `json:"num"`
	Den         int64  `json:"den"`
	Path        string `json:"path"`
	Theorem     string `json:"theorem,omitempty"`
	Canonical   []int  `json:"canonical,omitempty"`
	CycleLength int64  `json:"cycle_length,omitempty"`
	Clocks      int64  `json:"clocks,omitempty"`
}

// resultJSON converts an engine resolution to the wire form.
func resultJSON(res sweep.Resolution) ResultJSON {
	return ResultJSON{
		Family:      res.Family,
		BEff:        res.BW.String(),
		Num:         res.BW.Num,
		Den:         res.BW.Den,
		Path:        res.Path.String(),
		Theorem:     res.Theorem,
		Canonical:   res.Canonical,
		CycleLength: res.CycleLength,
		Clocks:      res.Clocks,
	}
}

// BatchRequest is the /v1/batch request body.
type BatchRequest struct {
	Specs []SpecJSON `json:"specs"`
}

// BatchResponse is the /v1/batch response: results in input order and
// the batch's answer-path split (path name -> count).
type BatchResponse struct {
	Results []ResultJSON   `json:"results"`
	Paths   map[string]int `json:"paths"`
}

// SweepRowJSON is one NDJSON row of /v1/sweep: the swept stream 2
// start and its result.
type SweepRowJSON struct {
	B2 int `json:"b2"`
	ResultJSON
}

// HealthJSON is the /healthz response: "ok" or "degraded", with the
// persistent store's integrity summary when one is attached.
type HealthJSON struct {
	Status string             `json:"status"`
	Store  *cachestore.Health `json:"store,omitempty"`
}
