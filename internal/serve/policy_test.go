package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// Table-driven handler coverage for the policy fields: known policy
// strings are honoured end to end, unknown strings are a 400 that
// names the offending field (never a silent default), contradictions
// between the legacy consecutive flag and mapping are rejected, and
// the sweep endpoint parses the matching query parameters.

func TestServeBandwidthPolicies(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name       string
		body       string
		status     int
		wantField  string // substring the error must carry on non-200s
		wantFamily string // family expected on 200s
		wantPath   string // path expected on 200s ("" = any)
	}{
		{
			name:       "default_fixed",
			body:       pinnedPairSpec,
			status:     http.StatusOK,
			wantFamily: "pair",
			wantPath:   "analytic",
		},
		{
			name:       "explicit_fixed",
			body:       `{"m":16,"nc":4,"priority":"fixed","streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}`,
			status:     http.StatusOK,
			wantFamily: "pair",
			wantPath:   "analytic",
		},
		{
			name:       "cyclic_priority",
			body:       `{"m":16,"nc":4,"priority":"cyclic","streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}`,
			status:     http.StatusOK,
			wantFamily: "pair-cyc",
			wantPath:   "sim-packed", // the analytic gate must decline
		},
		{
			name:       "rr_cpu_priority",
			body:       `{"m":16,"nc":4,"priority":"rr-cpu","streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}`,
			status:     http.StatusOK,
			wantFamily: "pair-rrcpu",
			wantPath:   "sim-packed",
		},
		{
			name:       "consecutive_mapping_string",
			body:       `{"m":12,"s":3,"nc":3,"mapping":"consecutive","streams":[{"d":1,"b":0,"cpu":0},{"d":1,"b":1,"cpu":0}]}`,
			status:     http.StatusOK,
			wantFamily: "section-consec",
		},
		{
			name:       "consecutive_flag_and_matching_mapping",
			body:       `{"m":12,"s":3,"nc":3,"consecutive":true,"mapping":"consecutive","streams":[{"d":1,"b":0,"cpu":0},{"d":1,"b":1,"cpu":0}]}`,
			status:     http.StatusOK,
			wantFamily: "section-consec",
		},
		{
			name:      "unknown_priority",
			body:      `{"m":16,"nc":4,"priority":"lifo","streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}`,
			status:    http.StatusBadRequest,
			wantField: `"priority"`,
		},
		{
			name:      "unknown_mapping",
			body:      `{"m":12,"s":3,"nc":3,"mapping":"skewed","streams":[{"d":1,"b":0,"cpu":0},{"d":1,"b":1,"cpu":0}]}`,
			status:    http.StatusBadRequest,
			wantField: `"mapping"`,
		},
		{
			name:      "consecutive_flag_contradicts_mapping",
			body:      `{"m":12,"s":3,"nc":3,"consecutive":true,"mapping":"cyclic","streams":[{"d":1,"b":0,"cpu":0},{"d":1,"b":1,"cpu":0}]}`,
			status:    http.StatusBadRequest,
			wantField: `"consecutive"`,
		},
		{
			name:      "consecutive_mapping_needs_sections",
			body:      `{"m":16,"nc":4,"mapping":"consecutive","streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}`,
			status:    http.StatusBadRequest,
			wantField: "sections",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/bandwidth", tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, body)
			}
			if tc.status != http.StatusOK {
				var e map[string]string
				if err := json.Unmarshal(body, &e); err != nil {
					t.Fatalf("%v in %s", err, body)
				}
				if !strings.Contains(e["error"], tc.wantField) {
					t.Fatalf("error %q does not name %s", e["error"], tc.wantField)
				}
				return
			}
			var res ResultJSON
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("%v in %s", err, body)
			}
			if res.Family != tc.wantFamily {
				t.Fatalf("family %q, want %q", res.Family, tc.wantFamily)
			}
			if tc.wantPath != "" && res.Path != tc.wantPath {
				t.Fatalf("path %q, want %q", res.Path, tc.wantPath)
			}
		})
	}
}

// TestServeBatchRejectsUnknownPolicy pins that a bad policy string in
// any batch entry fails the whole batch with the spec index and field.
func TestServeBatchRejectsUnknownPolicy(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body := `{"specs":[` + pinnedPairSpec + `,{"m":16,"nc":4,"priority":"lru","streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}]}`
	status, resp := postJSON(t, ts.URL+"/v1/batch", body)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, resp)
	}
	var e map[string]string
	if err := json.Unmarshal(resp, &e); err != nil {
		t.Fatalf("%v in %s", err, resp)
	}
	if !strings.Contains(e["error"], "spec 1") || !strings.Contains(e["error"], `"priority"`) {
		t.Fatalf("error %q does not locate spec 1's priority field", e["error"])
	}
}

// TestServeSweepPolicyParams covers the /v1/sweep query-parameter
// surface for priority and mapping.
func TestServeSweepPolicyParams(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	get := func(t *testing.T, query string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/sweep?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}
	t.Run("cyclic_priority_rows", func(t *testing.T) {
		status, body := get(t, "m=8&nc=2&d1=1&d2=1&priority=cyclic")
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		first := strings.SplitN(string(body), "\n", 2)[0]
		var row SweepRowJSON
		if err := json.Unmarshal([]byte(first), &row); err != nil {
			t.Fatalf("%v in %q", err, first)
		}
		if row.Family != "pair-cyc" {
			t.Fatalf("family %q, want pair-cyc", row.Family)
		}
	})
	wantError := func(t *testing.T, status int, body []byte, field string) {
		t.Helper()
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%v in %s", err, body)
		}
		if !strings.Contains(e["error"], field) {
			t.Fatalf("error %q does not name %s", e["error"], field)
		}
	}
	t.Run("unknown_priority", func(t *testing.T) {
		status, body := get(t, "m=8&nc=2&d1=1&d2=1&priority=nope")
		wantError(t, status, body, `"priority"`)
	})
	t.Run("unknown_mapping", func(t *testing.T) {
		status, body := get(t, "m=8&s=2&nc=2&d1=1&d2=1&mapping=diag")
		wantError(t, status, body, `"mapping"`)
	})
	t.Run("consecutive_contradicts_mapping", func(t *testing.T) {
		status, body := get(t, "m=8&s=2&nc=2&d1=1&d2=1&consecutive=1&mapping=cyclic")
		wantError(t, status, body, `"consecutive"`)
	})
	t.Run("mapping_consecutive", func(t *testing.T) {
		status, body := get(t, "m=8&s=2&nc=2&d1=1&d2=1&mapping=consecutive")
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		first := strings.SplitN(string(body), "\n", 2)[0]
		var row SweepRowJSON
		if err := json.Unmarshal([]byte(first), &row); err != nil {
			t.Fatalf("%v in %q", err, first)
		}
		if row.Family != "section-consec" {
			t.Fatalf("family %q, want section-consec", row.Family)
		}
	})
}
