package serve

// Request-scoped observability plumbing: per-request identity
// (X-Request-ID honored or minted), the reqInfo carried through the
// request's context so handlers can attribute the answer (path,
// theorem, family) back to the access log, and the bounded rings
// retaining recently completed request traces (for the Chrome-trace
// export at /debug/requests.trace) and recent slow requests (for
// /statusz and the slow-query log).

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ivm/internal/obs"
)

// maxRequestIDLen bounds an incoming X-Request-ID; longer values are
// truncated so a hostile client cannot bloat logs and traces.
const maxRequestIDLen = 128

// requestIDOK reports whether one byte may appear in a request ID
// (printable ASCII except the characters that would break log or
// trace grep-ability).
func requestIDOK(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '-' || c == '_' || c == '.' || c == ':' || c == '/':
		return true
	}
	return false
}

// sanitizeRequestID clamps a client-supplied X-Request-ID: illegal
// bytes are dropped, overlong IDs truncated; an empty result means
// "mint one".
func sanitizeRequestID(raw string) string {
	if raw == "" {
		return ""
	}
	out := make([]byte, 0, min(len(raw), maxRequestIDLen))
	for i := 0; i < len(raw) && len(out) < maxRequestIDLen; i++ {
		if requestIDOK(raw[i]) {
			out = append(out, raw[i])
		}
	}
	return string(out)
}

// newIDBase draws the per-process request-ID prefix (8 hex chars of
// startup entropy, falling back to a clock stamp if the system
// entropy source fails).
func newIDBase() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff)
	}
	return hex.EncodeToString(b[:])
}

// requestID resolves one request's trace identifier: a sane incoming
// X-Request-ID wins, otherwise the server mints "<base>-<seq>".
func (s *Server) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", s.idBase, s.reqSeq.Add(1))
}

// reqInfo is the per-request scratchpad handlers fill so the access
// log and slow log can attribute the answer: which path resolved it,
// under which theorem, for which family, and how many results the
// response carried. Each request owns one; no locking needed.
type reqInfo struct {
	tc      *obs.TraceContext
	path    string
	theorem string
	family  string
	results int
}

// reqInfoKey is the context key of the request's reqInfo.
type reqInfoKey struct{}

// requestInfo extracts the request's reqInfo; handlers reached outside
// instrument (direct tests) get a detached one whose nil TraceContext
// swallows spans.
func requestInfo(r *http.Request) *reqInfo {
	if info, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		return info
	}
	return &reqInfo{}
}

// withRequestInfo attaches the reqInfo to a context.
func withRequestInfo(ctx context.Context, info *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, info)
}

// traceRingCapacity bounds the completed request traces retained for
// /debug/requests.trace.
const traceRingCapacity = 256

// traceRing retains the last traceRingCapacity completed requests.
type traceRing struct {
	mu    sync.Mutex
	buf   []obs.RequestTrace
	next  int
	total int64
}

// add retains one completed request, evicting the oldest past
// capacity.
func (r *traceRing) add(t obs.RequestTrace) {
	r.mu.Lock()
	if len(r.buf) < traceRingCapacity {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % traceRingCapacity
	}
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained traces oldest-first.
func (r *traceRing) snapshot() []obs.RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]obs.RequestTrace, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// slowRingCapacity bounds the slow requests retained for /statusz.
const slowRingCapacity = 32

// slowEntry is one retained slow request: identity, outcome, full
// provenance and the span breakdown, enough to triage without
// re-running the query.
type slowEntry struct {
	ID       string
	Endpoint string
	Status   int
	When     time.Time
	Dur      time.Duration
	Path     string
	Theorem  string
	Family   string
	Results  int
	Spans    []obs.Span
}

// slowRing retains the last slowRingCapacity slow requests.
type slowRing struct {
	mu    sync.Mutex
	buf   []slowEntry
	next  int
	total int64
}

// add retains one slow request, evicting the oldest past capacity.
func (r *slowRing) add(e slowEntry) {
	r.mu.Lock()
	if len(r.buf) < slowRingCapacity {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % slowRingCapacity
	}
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained slow requests oldest-first plus the
// all-time slow count.
func (r *slowRing) snapshot() ([]slowEntry, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]slowEntry, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out, r.total
}
