package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivm/internal/cachestore"
	"ivm/internal/sweep"
)

// newTestServer builds a Server (failing the test on error) and mounts
// it on an httptest server.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body to url and returns the status and raw response
// bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// pinnedPairSpec is the probe spec scripts/check.sh byte-pins: the
// unique-barrier pair m=16 nc=4 (1,2), provable under eq-29.
const pinnedPairSpec = `{"m":16,"nc":4,"streams":[{"d":1,"b":0,"cpu":0},{"d":2,"b":0,"cpu":1}]}`

// pinnedPairResult is its exact response. Changing these bytes is an
// API break: scripts/check.sh probes a live ivmserved for them.
const pinnedPairResult = `{"family":"pair","b_eff":"3/2","num":3,"den":2,"path":"analytic","theorem":"eq-29"}` + "\n"

// TestServeBandwidthPinned byte-pins the bandwidth endpoint on the
// probe pair.
func TestServeBandwidthPinned(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	status, body := postJSON(t, ts.URL+"/v1/bandwidth", pinnedPairSpec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if string(body) != pinnedPairResult {
		t.Fatalf("response drifted:\n got %q\nwant %q", body, pinnedPairResult)
	}
}

// tripleSpecJSON renders a triple-census spec (one stream per CPU) as
// its wire form.
func tripleSpecJSON(m, nc int, d, b [3]int) string {
	return fmt.Sprintf(`{"m":%d,"nc":%d,"streams":[{"d":%d,"b":%d,"cpu":0},{"d":%d,"b":%d,"cpu":1},{"d":%d,"b":%d,"cpu":2}]}`,
		m, nc, d[0], b[0], d[1], b[1], d[2], b[2])
}

// TestServeBatch pins /v1/batch: results in input order, each
// byte-identical to the single-query answer modulo path, with the path
// split accounting for every result.
func TestServeBatch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	specs := []string{
		tripleSpecJSON(13, 4, [3]int{1, 2, 6}, [3]int{0, 1, 2}),
		tripleSpecJSON(13, 4, [3]int{1, 2, 6}, [3]int{1, 2, 3}), // translate of the first
		pinnedPairSpec,
	}
	status, body := postJSON(t, ts.URL+"/v1/batch", `{"specs":[`+strings.Join(specs, ",")+`]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if len(resp.Results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(resp.Results), len(specs))
	}
	total := 0
	for _, n := range resp.Paths {
		total += n
	}
	if total != len(specs) {
		t.Fatalf("path split %v covers %d of %d results", resp.Paths, total, len(specs))
	}
	if resp.Paths["analytic"] != 1 {
		t.Fatalf("path split %v: the pinned pair should gate analytically", resp.Paths)
	}
	// The translated triple shares its orbit with the first: within one
	// batch that is one simulation plus one cache hit (either order).
	if resp.Paths["cache"]+resp.Paths["sim-packed"] != 2 {
		t.Fatalf("path split %v: triples should split sim/cache", resp.Paths)
	}
	if a, b := resp.Results[0], resp.Results[1]; a.BEff != b.BEff || a.Num != b.Num || a.Den != b.Den {
		t.Fatalf("translated triple differs: %+v vs %+v", a, b)
	}
	if got := resp.Results[2]; got.BEff != "3/2" || got.Path != "analytic" {
		t.Fatalf("pinned pair in batch: %+v", got)
	}
}

// TestServeSweep pins /v1/sweep: m NDJSON rows in b2 order, values
// byte-identical to the in-process engine's resolutions.
func TestServeSweep(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/v1/sweep?m=13&nc=4&d1=1&d2=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var rows []SweepRowJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row SweepRowJSON
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("%v in %s", err, sc.Text())
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("%d rows, want m=13", len(rows))
	}
	for b2, row := range rows {
		if row.B2 != b2 {
			t.Fatalf("row %d carries b2=%d", b2, row.B2)
		}
		spec := sweep.PairSpec(13, 4, 1, 6)
		spec.Streams[1].Sweep = false
		spec.Streams[1].B = b2
		want, err := srv.Engine().Resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if row.BEff != want.BW.String() {
			t.Fatalf("b2=%d: served %s, engine %s", b2, row.BEff, want.BW)
		}
	}
}

// TestServeErrors pins the failure surface: wrong methods are 405,
// malformed or invalid requests 400, and every error body is JSON.
func TestServeErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	cases := []struct {
		name string
		want int
		run  func() (int, []byte)
	}{
		{"bandwidth GET", 405, func() (int, []byte) { return get(ts.URL + "/v1/bandwidth") }},
		{"bandwidth bad JSON", 400, func() (int, []byte) { return postJSON(t, ts.URL+"/v1/bandwidth", "{") }},
		{"bandwidth bad spec", 400, func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/bandwidth", `{"m":16,"nc":4,"streams":[{"d":17,"b":0,"cpu":0}]}`)
		}},
		{"batch GET", 405, func() (int, []byte) { return get(ts.URL + "/v1/batch") }},
		{"batch empty", 400, func() (int, []byte) { return postJSON(t, ts.URL+"/v1/batch", `{"specs":[]}`) }},
		{"sweep POST", 405, func() (int, []byte) { return postJSON(t, ts.URL+"/v1/sweep", "{}") }},
		{"sweep missing m", 400, func() (int, []byte) { return get(ts.URL + "/v1/sweep?nc=4&d1=1&d2=2") }},
		{"sweep bad consecutive", 400, func() (int, []byte) {
			return get(ts.URL + "/v1/sweep?m=12&s=3&nc=4&d1=1&d2=2&consecutive=maybe")
		}},
	}
	for _, tc := range cases {
		status, body := tc.run()
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
}

// TestServeHealthzAndMetrics pins the operability surface: /healthz is
// "ok" with store integrity attached, and /metrics carries the
// ivmserved_* counters after traffic.
func TestServeHealthzAndMetrics(t *testing.T) {
	dir := t.TempDir()
	store, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_, ts := newTestServer(t, Options{Workers: 1, Store: store})

	if status, body := postJSON(t, ts.URL+"/v1/bandwidth", pinnedPairSpec); status != 200 {
		t.Fatalf("probe: %d %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}
	var h HealthJSON
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Store == nil {
		t.Fatalf("healthz %s", body)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		`ivmserved_requests_total{endpoint="bandwidth"} 1`,
		`ivmserved_responses_total{path="analytic"} 1`,
		`ivmserved_store_up 1`,
		`ivmserved_cache_seeded_records 0`,
	} {
		if !bytes.Contains(metrics, []byte(line)) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestServeRejectsDisabledCache pins the constructor guard: a server
// without a cache cannot exist.
func TestServeRejectsDisabledCache(t *testing.T) {
	if _, err := New(Options{CacheSize: -1}); err == nil {
		t.Fatal("cache-disabled server constructed")
	}
}

// TestServeRestartWarmStart is the acceptance scenario: resolve a
// batch against a persistent store, crash (leaving a torn frame on the
// log, as a kill mid-write would), restart against the same directory,
// and re-issue the same batch. Every previously resolved spec must
// answer with path=cache, byte-identical to the in-process engine's
// answer; the torn tail is skipped and counted, never a crash.
func TestServeRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	batch := `{"specs":[` + strings.Join([]string{
		tripleSpecJSON(13, 4, [3]int{1, 2, 6}, [3]int{0, 1, 2}),
		tripleSpecJSON(13, 4, [3]int{1, 3, 5}, [3]int{0, 1, 2}),
		tripleSpecJSON(12, 3, [3]int{1, 2, 4}, [3]int{0, 0, 0}),
	}, ",") + `]}`

	store1, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Workers: 2, Store: store1})
	status, cold := postJSON(t, ts1.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("cold batch: %d %s", status, cold)
	}
	var coldResp BatchResponse
	if err := json.Unmarshal(cold, &coldResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Paths["sim-packed"] == 0 {
		t.Fatalf("cold batch never simulated: %v", coldResp.Paths)
	}
	if err := store1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close — tear the log by appending half a frame, as a
	// kill mid-append would leave it.
	f, err := os.OpenFile(filepath.Join(dir, cachestore.LogName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatalf("restart against torn log: %v", err)
	}
	defer store2.Close()
	if skipped, _ := store2.Skipped(); skipped == 0 {
		t.Fatal("torn tail not detected")
	}
	srv2, ts2 := newTestServer(t, Options{Workers: 2, Store: store2})
	if srv2.Seeded() == 0 {
		t.Fatal("restart seeded nothing")
	}
	status, warm := postJSON(t, ts2.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("warm batch: %d %s", status, warm)
	}
	var warmResp BatchResponse
	if err := json.Unmarshal(warm, &warmResp); err != nil {
		t.Fatal(err)
	}
	if n := warmResp.Paths["cache"]; n != len(warmResp.Results) {
		t.Fatalf("warm batch paths %v: every spec was resolved before the restart", warmResp.Paths)
	}

	// Byte-identical to the in-process answer: resolve the same specs
	// on a fresh engine and render through the same wire conversion.
	var req BatchRequest
	if err := json.Unmarshal([]byte(batch), &req); err != nil {
		t.Fatal(err)
	}
	eng := sweep.NewEngine(sweep.Options{Workers: 1})
	for i, sj := range req.Specs {
		spec, err := sj.Spec()
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(resultJSON(want))
		if err != nil {
			t.Fatal(err)
		}
		got := warmResp.Results[i]
		got.Path = want.Path.String() // in-process first resolve simulates; served one hits
		got.CycleLength = 0
		got.Clocks = 0
		var wantRes ResultJSON
		if err := json.Unmarshal(wantJSON, &wantRes); err != nil {
			t.Fatal(err)
		}
		wantRes.CycleLength = 0
		wantRes.Clocks = 0
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err = json.Marshal(wantRes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("spec %d: warm response %s, in-process %s", i, gotJSON, wantJSON)
		}
	}
}
