package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFastReport(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, Fast()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Reproduction report",
		"## Figures 2–9",
		"Fig. 8a  3/2       3/2",
		"## Conflict phase histograms",
		"section-conflict regime",
		"grants by bank",
		"## Analytic model vs simulator",
		"disagreements",
		"## Policy dimensions on the Fig. 8/9 placement",
		"## Fig. 10:",
		"unique-barrier (triad wins)",
		"## Multitasking",
		"## Linear bank skewing",
		"## Matrix access patterns",
		"## Classical random-access baselines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The grid summary must report zero disagreements: inspect only the
	// grid section's data rows.
	_, rest, ok := strings.Cut(out, "## Analytic model vs simulator")
	if !ok {
		t.Fatal("grid section missing")
	}
	section, _, _ := strings.Cut(rest, "##")
	for _, line := range strings.Split(section, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] != "m" && !strings.HasPrefix(fields[0], "-") {
			if fields[3] != "0" {
				t.Errorf("grid row reports disagreements: %q", line)
			}
		}
	}
}

func TestPhaseHistogramSectionShowsConflicts(t *testing.T) {
	var b strings.Builder
	if err := PhaseHistograms(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The barrier regime clusters bank conflicts; the shifted Fig. 7
	// regime shows section conflicts. Both headers carry the cycle
	// geometry line from PhaseHistogram.Render.
	if strings.Count(out, "phase histogram: cycle of") != 2 {
		t.Errorf("want two rendered histograms:\n%s", out)
	}
	if !strings.Contains(out, "Barrier-situation") {
		t.Error("Fig. 3 case missing")
	}
}

var updateGolden = flag.Bool("update", false, "rewrite the report golden files")

// TestPolicyComparisonGolden pins the policy-comparison section byte
// for byte: the Fig. 8a/8b/9 bandwidths under every priority rule and
// section mapping on the reference placement. Regenerate (only after
// an intentional output change) with
//
//	go test ./internal/report -run TestPolicyComparisonGolden -update
func TestPolicyComparisonGolden(t *testing.T) {
	var b strings.Builder
	if err := PolicyComparison(&b, nil); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "policy_comparison.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("policy comparison drifted from the golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteValidatesOptions(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestFiguresSection(t *testing.T) {
	var b strings.Builder
	if err := Figures(&b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8a", "Fig. 8b", "Fig. 9"} {
		if !strings.Contains(b.String(), id) {
			t.Errorf("missing %s", id)
		}
	}
}

func TestDefaultsCoverPaperScale(t *testing.T) {
	d := Defaults()
	if d.TriadN != 1024 || d.MaxInc != 16 || len(d.Grids) < 4 {
		t.Fatalf("defaults %+v", d)
	}
}
