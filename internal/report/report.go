// Package report generates the machine-made reproduction record: every
// figure's steady state against the paper's value, the full-grid
// analytic-vs-simulation agreement, the Fig. 10 series with analytic
// verdicts, and the ablation summaries. cmd/ivmreport prints it; the
// tests in this package pin its structure.
package report

import (
	"fmt"
	"io"

	"ivm/internal/explain"
	"ivm/internal/figures"
	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/randaccess"
	"ivm/internal/sweep"
	"ivm/internal/textplot"
	"ivm/internal/xmp"
)

// Options scale the expensive parts of the report.
type Options struct {
	// TriadN is the triad vector length (paper: 1024).
	TriadN int
	// Grids lists the (m, n_c) systems to cross-validate exhaustively.
	Grids [][2]int
	// MaxInc bounds the ablation sweeps.
	MaxInc int
	// Engine, when non-nil, runs every grid cross-validation sweep on
	// the parallel sweep engine (byte-identical tables) and appends an
	// engine-counter section to the report.
	Engine *sweep.Engine
}

// Defaults reproduces the full EXPERIMENTS.md record.
func Defaults() Options {
	return Options{
		TriadN: 1024,
		Grids:  [][2]int{{8, 2}, {12, 3}, {13, 4}, {16, 4}},
		MaxInc: 16,
	}
}

// Fast shrinks everything for quick runs and tests.
func Fast() Options {
	return Options{TriadN: 256, Grids: [][2]int{{8, 2}}, MaxInc: 4}
}

// Write renders the full report.
func Write(w io.Writer, opts Options) error {
	if opts.TriadN <= 0 || opts.MaxInc <= 0 {
		return fmt.Errorf("report: invalid options %+v", opts)
	}
	fmt.Fprintln(w, "# Reproduction report — Oed & Lange (1985)")
	fmt.Fprintln(w)
	if err := Figures(w); err != nil {
		return err
	}
	if err := PhaseHistograms(w); err != nil {
		return err
	}
	gridsWith(w, opts.Grids, opts.Engine)
	if err := PolicyComparison(w, opts.Engine); err != nil {
		return err
	}
	Triad(w, opts.TriadN)
	Ablations(w, opts.TriadN/2, opts.MaxInc)
	if opts.Engine != nil {
		Engine(w, opts.Engine)
	}
	return nil
}

// Engine appends the sweep-engine counter section (parallel runs),
// followed by the result-attribution section when the engine records
// provenance: the per-family path split, the theorems doing the
// analytic work, and the orbit population behind each hit rate.
func Engine(w io.Writer, eng *sweep.Engine) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, "## Sweep engine")
	fmt.Fprintln(w)
	fmt.Fprint(w, eng.Metrics().Table())
	if prov := eng.Options().Provenance; prov != nil {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "## Result provenance")
		fmt.Fprintln(w)
		fmt.Fprint(w, prov.Snapshot().Table())
	}
}

// Figures writes the Figures 2–9 table.
func Figures(w io.Writer) error {
	fmt.Fprintln(w, "## Figures 2–9: steady-state effective bandwidth")
	fmt.Fprintln(w)
	tbl := &textplot.Table{Header: []string{"figure", "measured", "paper", "cycle", "outcome"}}
	for _, f := range figures.All() {
		bw, cyc, err := f.SteadyBandwidth()
		if err != nil {
			return fmt.Errorf("report: Fig. %s: %w", f.ID, err)
		}
		paper := "(timeline only)"
		if f.WantBandwidth.Num != 0 {
			paper = f.WantBandwidth.String()
		}
		tbl.Add("Fig. "+f.ID, bw.String(), paper, cyc.Length, f.Outcome)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)
	return nil
}

// PhaseHistograms writes the per-cycle conflict phase histograms of
// two reference regimes: the Fig. 3 barrier, where the bank conflicts
// delaying stream 2 recur at fixed phases of the 78-clock cycle, and
// the Fig. 7 memory with the conflict-free relative start replaced by
// an even offset, which drops both streams into the same section every
// clock. The histograms show *when* within the steady-state cycle each
// conflict kind clusters — the clock-by-clock anatomy behind the
// figures' b_eff values.
func PhaseHistograms(w io.Writer) error {
	fig3 := figures.Fig3()
	fig7 := figures.Fig7()
	// Fig. 7's b2 = (n_c+1)·d1 = 3 is what makes it conflict-free; an
	// even offset puts both same-CPU streams in the same section.
	conflicted := append([]memsys.StreamSpec(nil), fig7.Streams...)
	conflicted[1].Start = 2
	cases := []struct {
		title   string
		cfg     memsys.Config
		streams []memsys.StreamSpec
	}{
		{fig3.Title, fig3.Config, fig3.Streams},
		{"Fig. 7's section-conflict regime (m=12, s=2, nc=2, d1=d2=1, b2=2)", fig7.Config, conflicted},
	}
	fmt.Fprintln(w, "## Conflict phase histograms (cycle anatomy)")
	fmt.Fprintln(w)
	for _, c := range cases {
		h, _, err := obs.TracePhaseHistogram(c.cfg, c.streams, 1<<22)
		if err != nil {
			return fmt.Errorf("report: phase histogram %s: %w", c.title, err)
		}
		fmt.Fprintf(w, "### %s\n\n", c.title)
		fmt.Fprint(w, h.Render())
		fmt.Fprintln(w)
	}
	return nil
}

// Grids writes the exhaustive cross-validation summary, including the
// section-theorem grid on the X-MP layout and the three-stream
// capacity-bound sweep, on the sequential reference path.
func Grids(w io.Writer, grids [][2]int) { gridsWith(w, grids, nil) }

// gridsWith runs the grid sections on the engine when one is given;
// the tables are byte-identical either way.
func gridsWith(w io.Writer, grids [][2]int, eng *sweep.Engine) {
	grid := sweep.Grid
	sectionGrid := sweep.SectionGrid
	triples := sweep.SweepTriples
	tripleGrid := sweep.TripleGrid
	if eng != nil {
		grid = eng.Grid
		sectionGrid = eng.SectionGrid
		triples = eng.Triples
		tripleGrid = eng.TripleGrid
	}

	fmt.Fprintln(w, "## Analytic model vs simulator (all pairs x all starts)")
	fmt.Fprintln(w)
	tbl := &textplot.Table{Header: []string{"m", "n_c", "pairs", "disagreements"}}
	for _, g := range grids {
		results := grid(g[0], g[1])
		s := sweep.Summarise(g[0], g[1], results)
		tbl.Add(g[0], g[1], s.Pairs, len(s.Disagree))
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Section theorems vs simulator (one CPU, s < m)")
	fmt.Fprintln(w)
	tbl = &textplot.Table{Header: []string{"m", "s", "n_c", "pairs", "disagreements"}}
	for _, g := range [][3]int{{12, 2, 2}, {16, 4, 4}} {
		results := sectionGrid(g[0], g[1], g[2])
		bad := 0
		for _, r := range results {
			if !r.Agree {
				bad++
			}
		}
		tbl.Add(g[0], g[1], g[2], len(results), bad)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Three-stream capacity bounds")
	fmt.Fprintln(w)
	tr := sweep.SummariseTriples(triples(12, 3))
	fmt.Fprintf(w, "m=12 n_c=3: %d triples at placement (0,1,2), bound attained by %d, violated by %d\n\n",
		tr.Triples, tr.Tight, tr.Violations)
	tg := sweep.SummariseTripleGrid(8, 2, tripleGrid(8, 2))
	fmt.Fprintf(w, "m=8 n_c=2, all placements: %d triples over %d placements, bound attained somewhere by %d (%d placements), violated by %d\n\n",
		tg.Triples, tg.Starts, tg.TightSomewhere, tg.TightStarts, tg.Violations)
}

// PolicyComparison writes the policy-dimension comparison on the
// Fig. 8/9 reference placement: the same two unit-stride streams on
// one CPU of an m=12, s=3, n_c=3 memory, resolved under every
// arbitration priority and section mapping. Fixed priority with
// cyclic sections loses a third of the bandwidth to the recurring
// section conflict (Fig. 8a); cyclic priority shares the loss and
// recovers b_eff = 2 (Fig. 8b); the consecutive mapping removes the
// conflict outright (Fig. 9). Per-CPU round robin degenerates to
// fixed priority here because both streams issue from one CPU. A nil
// engine gets a private default one.
func PolicyComparison(w io.Writer, eng *sweep.Engine) error {
	if eng == nil {
		eng = sweep.NewEngine(sweep.Options{})
	}
	rows := []struct {
		figure   string
		priority memsys.PriorityRule
		mapping  memsys.SectionMapping
	}{
		{"Fig. 8a", memsys.FixedPriority, memsys.CyclicSections},
		{"Fig. 8b", memsys.CyclicPriority, memsys.CyclicSections},
		{"-", memsys.RoundRobinPerCPU, memsys.CyclicSections},
		{"Fig. 9", memsys.FixedPriority, memsys.ConsecutiveSections},
		{"-", memsys.CyclicPriority, memsys.ConsecutiveSections},
	}
	fmt.Fprintln(w, "## Policy dimensions on the Fig. 8/9 placement (m=12, s=3, n_c=3, d1=d2=1, b2=1)")
	fmt.Fprintln(w)
	tbl := &textplot.Table{Header: []string{"figure", "priority", "mapping", "b_eff", "family"}}
	for _, r := range rows {
		spec := sweep.ConfigSpec{
			M: 12, S: 3, NC: 3,
			Streams: []sweep.Stream{{D: 1, B: 0, CPU: 0}, {D: 1, B: 1, CPU: 0}},
		}.WithPolicy(r.priority, r.mapping)
		res, err := eng.Resolve(spec)
		if err != nil {
			return fmt.Errorf("report: policy comparison %s/%s: %w", r.priority, r.mapping, err)
		}
		tbl.Add(r.figure, r.priority.String(), r.mapping.String(), res.BW.String(), res.Family)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)
	return nil
}

// Triad writes the Fig. 10 tables with analytic verdicts.
func Triad(w io.Writer, n int) {
	cfg := machine.DefaultConfig()
	fmt.Fprintf(w, "## Fig. 10: the triad, n=%d, other CPU saturating at d=1\n\n", n)
	tbl := &textplot.Table{Header: []string{"INC", "clocks", "us", "bank", "section", "simult", "verdict"}}
	for _, r := range xmp.TriadSweep(16, n, true, cfg) {
		v := explain.TriadReport(r.INC).Verdicts[0]
		verdict := fmt.Sprintf("%d(+)%d %s", v.Canonical[0], v.Canonical[1], v.Analysis.Regime)
		if v.HasRole {
			if v.WorkWins {
				verdict += " (triad wins)"
			} else {
				verdict += " (triad delayed)"
			}
		}
		tbl.Add(r.INC, r.Clocks, fmt.Sprintf("%.1f", r.Micros), r.Bank, r.Section, r.Simultaneous, verdict)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Fig. 10b: the triad with the other CPU off\n\n")
	tbl = &textplot.Table{Header: []string{"INC", "clocks", "us"}}
	for _, r := range xmp.TriadSweep(16, n, false, cfg) {
		tbl.Add(r.INC, r.Clocks, fmt.Sprintf("%.1f", r.Micros))
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)
}

// Ablations writes the conclusion-driven studies.
func Ablations(w io.Writer, n, maxInc int) {
	cfg := machine.DefaultConfig()

	fmt.Fprintln(w, "## Multitasking the triad (conclusion)")
	fmt.Fprintln(w)
	tbl := &textplot.Table{Header: []string{"INC", "single", "split", "speedup"}}
	for _, r := range xmp.MultitaskSweep(maxInc, n, cfg) {
		tbl.Add(r.INC, r.SingleClocks, r.SplitClocks, fmt.Sprintf("%.2f", r.Speedup))
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Linear bank skewing on the full machine")
	fmt.Fprintln(w)
	tbl = &textplot.Table{Header: []string{"INC", "plain", "skewed"}}
	for inc := 1; inc <= maxInc; inc++ {
		p := xmp.TriadExperiment(inc, n, true, cfg)
		s := xmp.SkewedTriadExperiment(inc, n, xmp.LinearSkewMapper(), cfg)
		tbl.Add(inc, p.Clocks, s.Clocks)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Matrix access patterns (conclusion's dimensioning advice)")
	fmt.Fprintln(w)
	tbl = &textplot.Table{Header: []string{"ldim", "pattern", "distance", "ceiling", "clocks"}}
	for _, r := range xmp.MatrixStudy([]int{64, 65}, 192, cfg) {
		tbl.Add(r.LeadingDim, r.Pattern.String(), r.Distance, fmt.Sprintf("%.2f", r.Predicted), r.Clocks)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Classical random-access baselines (intro refs [1]-[5])")
	fmt.Fprintln(w)
	tbl = &textplot.Table{Header: []string{"distance", "vector", "random", "binomial", "Hellerman"}}
	for _, r := range randaccess.CompareStrides(16, 4, 4, []int{1, 8, 16}, 20000) {
		tbl.Add(r.Distance, fmt.Sprintf("%.3f", r.Vector), fmt.Sprintf("%.3f", r.Random),
			fmt.Sprintf("%.3f", r.Binomial), fmt.Sprintf("%.3f", randaccess.Hellerman(16)))
	}
	fmt.Fprint(w, tbl.String())
}
