package obs

import (
	"testing"

	"ivm/internal/memsys"
)

// fig3 builds the paper's Fig. 3 barrier (m=13, nc=6, d1=1, d2=6):
// stream 2 is delayed by bank conflicts in the steady state, so the
// tracer sees both grants and classified delays.
func fig3() *memsys.System {
	sys := memsys.New(memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 6))
	return sys
}

func TestTracerCountsMatchPortCounters(t *testing.T) {
	sys := fig3()
	tr := Attach(sys, TracerOptions{})
	sys.Run(200)

	var wantGrants, wantBank, wantSim, wantSec int64
	for _, p := range sys.Ports() {
		wantGrants += p.Count.Grants
		wantBank += p.Count.Bank
		wantSim += p.Count.Simultaneous
		wantSec += p.Count.Section
	}
	if tr.Grants() != wantGrants {
		t.Errorf("grants %d, ports say %d", tr.Grants(), wantGrants)
	}
	if tr.Delays() != wantBank+wantSim+wantSec {
		t.Errorf("delays %d, ports say %d", tr.Delays(), wantBank+wantSim+wantSec)
	}
	if got := tr.KindCount(memsys.BankConflict); got != wantBank {
		t.Errorf("bank conflicts %d, want %d", got, wantBank)
	}
	if got := tr.KindCount(memsys.SimultaneousConflict); got != wantSim {
		t.Errorf("simultaneous %d, want %d", got, wantSim)
	}
	s := tr.Stats()
	if s.Grants != wantGrants || s.BankConflicts != wantBank {
		t.Errorf("stats snapshot %+v disagrees with counters", s)
	}
	if s.Recorded != int64(len(tr.Events()))+s.Dropped {
		t.Errorf("recorded %d != ring %d + dropped %d", s.Recorded, len(tr.Events()), s.Dropped)
	}
	if s.Bandwidth <= 0 || s.Bandwidth > 2 {
		t.Errorf("bandwidth estimate %v out of range", s.Bandwidth)
	}
}

func TestTracerEventsAreValueCopies(t *testing.T) {
	sys := fig3()
	tr := Attach(sys, TracerOptions{Capacity: 64})
	sys.Run(20)
	for _, e := range tr.Events() {
		if e.Bank < 0 || e.Bank >= 13 {
			t.Fatalf("bank %d out of range", e.Bank)
		}
		if e.Granted() && e.Blocker != -1 {
			t.Fatalf("grant with blocker %d", e.Blocker)
		}
		if !e.Granted() && e.Blocker < 0 {
			t.Fatalf("delay without blocker: %+v", e)
		}
	}
}

func TestTracerRingWrapKeepsMostRecent(t *testing.T) {
	sys := fig3()
	tr := Attach(sys, TracerOptions{Capacity: 16})
	sys.Run(100)

	events := tr.Events()
	if len(events) != 16 {
		t.Fatalf("ring holds %d events, capacity 16", len(events))
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops after 100 clocks with capacity 16")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Clock < events[i-1].Clock {
			t.Fatalf("events out of order at %d: %d < %d", i, events[i].Clock, events[i-1].Clock)
		}
	}
	// The ring keeps the tail of the run: its last event is the last
	// observed clock.
	if got := events[len(events)-1].Clock; got != tr.Stats().LastClock {
		t.Errorf("ring tail clock %d, last observed %d", got, tr.Stats().LastClock)
	}
}

func TestTracerSamplingThinsRingNotCounters(t *testing.T) {
	sysAll := fig3()
	all := Attach(sysAll, TracerOptions{})
	sysAll.Run(64)

	sysSampled := fig3()
	sampled := Attach(sysSampled, TracerOptions{SampleEvery: 4})
	sysSampled.Run(64)

	if sampled.Grants() != all.Grants() || sampled.Delays() != all.Delays() {
		t.Errorf("sampling changed exact totals: %d/%d vs %d/%d",
			sampled.Grants(), sampled.Delays(), all.Grants(), all.Delays())
	}
	if len(sampled.Events()) >= len(all.Events()) {
		t.Errorf("sampling did not thin the ring: %d vs %d", len(sampled.Events()), len(all.Events()))
	}
	for _, e := range sampled.Events() {
		if e.Clock%4 != 0 {
			t.Fatalf("sampled event at clock %d not on the grid", e.Clock)
		}
	}
	if sampled.Stats().SampledOut == 0 {
		t.Error("no events accounted as sampled out")
	}
}

func TestTeeFansOut(t *testing.T) {
	sys := fig3()
	a := NewTracer(TracerOptions{})
	b := NewTracer(TracerOptions{})
	sys.SetListener(Tee{a, nil, b})
	sys.Run(50)
	if a.Grants() == 0 || a.Grants() != b.Grants() || a.Delays() != b.Delays() {
		t.Errorf("tee divergence: a=%d/%d b=%d/%d", a.Grants(), a.Delays(), b.Grants(), b.Delays())
	}
}
