package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strings"
	"testing"

	"ivm/internal/sweep"
)

// TestWritePromTextGolden pins the exposition format byte-for-byte:
// HELP/TYPE headers, name-sorted metric families, label escaping and
// shortest-float values. scripts/check.sh greps a live scrape for the
// same header lines.
func TestWritePromTextGolden(t *testing.T) {
	metrics := []PromMetric{
		Counter("zeta_total", "Last by name.", 3),
		Gauge("alpha_ratio", "A ratio in [0,1].", 0.25),
		{
			Name: "beta_bytes", Help: `Help with backslash \ and
newline.`, Type: "counter",
			Samples: []PromSample{
				{Labels: []PromLabel{{"family", "pair"}, {"path", `quo"te`}}, Value: 42},
				{Labels: []PromLabel{{"family", "stream4"}}, Value: 7},
			},
		},
	}
	var buf bytes.Buffer
	if err := WritePromText(&buf, metrics); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_ratio A ratio in [0,1].
# TYPE alpha_ratio gauge
alpha_ratio 0.25
# HELP beta_bytes Help with backslash \\ and\nnewline.
# TYPE beta_bytes counter
beta_bytes{family="pair",path="quo\"te"} 42
beta_bytes{family="stream4"} 7
# HELP zeta_total Last by name.
# TYPE zeta_total counter
zeta_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromValueSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.NaN():     "NaN",
		math.Inf(1):    "+Inf",
		math.Inf(-1):   "-Inf",
		1.5:            "1.5",
		0:              "0",
		12345678901234: "1.2345678901234e+13",
	} {
		if got := promValue(v); got != want {
			t.Errorf("promValue(%v) = %q, want %q", v, got, want)
		}
	}
}

// Same-name metrics from different sources merge their samples under
// one HELP/TYPE header (Prometheus rejects duplicate family headers).
func TestWritePromTextMergesDuplicates(t *testing.T) {
	var buf bytes.Buffer
	err := WritePromText(&buf, []PromMetric{
		Counter("dup_total", "First wins.", 1),
		Counter("dup_total", "Ignored.", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE dup_total") != 1 {
		t.Errorf("duplicate TYPE headers:\n%s", out)
	}
	samples := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "dup_total ") {
			samples++
		}
	}
	if samples != 2 {
		t.Errorf("merged samples lost:\n%s", out)
	}
}

// expositionLine matches every legal line of the text format we emit.
var expositionLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|NaN|[+-]Inf))$`)

// checkExposition validates every line of a rendered exposition and
// that each sample family is preceded by its TYPE header (histogram
// samples carry the family name plus a _bucket/_sum/_count suffix).
func checkExposition(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.Fields(rest)[0]] = true
			continue
		}
		if !strings.HasPrefix(line, "#") {
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] {
					family = base
					break
				}
			}
			if !typed[family] {
				t.Errorf("sample %q before its TYPE header", line)
			}
		}
	}
}

// TestHistogramExposition pins the native-histogram rendering: one
// HELP/TYPE header, cumulative _bucket series over the fixed le grid,
// the +Inf bucket equal to _count, and _sum carrying the total.
func TestHistogramExposition(t *testing.T) {
	h := NewLatencyHist()
	h.ObserveNS(5_000)      // ~5us, inside the exposition window
	h.ObserveNS(1_000_000)  // 1ms
	h.ObserveNS(40_000_000) // 40ms
	h.ObserveNS(40_000_000) // 40ms
	var buf bytes.Buffer
	m := Histogram("req_seconds", "Request latency.").HistSample(h.Snapshot(), "endpoint", "bandwidth")
	if err := WritePromText(&buf, []PromMetric{m}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkExposition(t, out)
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="bandwidth",le="+Inf"} 4`,
		`req_seconds_count{endpoint="bandwidth"} 4`,
		`req_seconds_sum{endpoint="bandwidth"} 0.081005`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Bucket series must be cumulative and cover the whole window: the
	// count at each le never decreases, starts at or above 1 (the 5us
	// observation is inside the smallest window bucket's range or below
	// it) and the largest finite le already holds all 4.
	re := regexp.MustCompile(`req_seconds_bucket\{endpoint="bandwidth",le="([^"]+)"\} (\d+)`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != expoMaxBucket-expoMinBucket+2 {
		t.Fatalf("want %d bucket series, got %d:\n%s", expoMaxBucket-expoMinBucket+2, len(matches), out)
	}
	prev := -1
	for _, match := range matches {
		var n int
		fmt.Sscanf(match[2], "%d", &n)
		if n < prev {
			t.Errorf("bucket le=%s count %d < previous %d (not cumulative)", match[1], n, prev)
		}
		prev = n
	}
	if last := matches[len(matches)-2]; last[2] != "4" {
		t.Errorf("largest finite bucket holds %s of 4 observations", last[2])
	}
}

// TestSweepPromMetricsLive renders a real engine with provenance
// through the Prometheus source and validates the full exposition,
// including the attribution metrics.
func TestSweepPromMetricsLive(t *testing.T) {
	prov := sweep.NewProvenance(0)
	eng := sweep.NewEngine(sweep.Options{Workers: 2, Provenance: prov})
	eng.Grid(13, 4)
	eng.NStreamGrid(4, 1, 4)

	reg := NewRegistry()
	reg.RegisterProm("sweep", SweepPromMetrics(eng))
	var buf bytes.Buffer
	if err := WritePromText(&buf, reg.GatherProm()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkExposition(t, out)
	for _, want := range []string{
		"ivm_up 1",
		"# TYPE ivm_sweep_units_total counter",
		"# TYPE ivm_sweep_cache_hit_ratio gauge",
		`ivm_sweep_family_cache_hits_total{family="pair"}`,
		`ivm_sweep_family_cache_hits_total{family="stream4"}`,
		`ivm_provenance_path_total{family="pair",path="analytic"}`,
		`ivm_provenance_path_total{family="stream4",path="sim-packed"}`,
		`ivm_provenance_singleton_orbits{family="stream4"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// The conservation invariant must be visible to a scraper: the four
	// path samples of each family sum to the placements the engine
	// resolved for it.
	m := eng.Metrics()
	for _, fam := range []string{"pair", "stream4"} {
		var sum float64
		for _, path := range []string{"analytic", "cache", "sim-scalar", "sim-packed"} {
			re := regexp.MustCompile(fmt.Sprintf(`ivm_provenance_path_total\{family=%q,path=%q\} (\S+)`, fam, path))
			match := re.FindStringSubmatch(out)
			if match == nil {
				t.Fatalf("no %s/%s path sample", fam, path)
			}
			var v float64
			fmt.Sscanf(match[1], "%g", &v)
			sum += v
		}
		f := m.Family(fam)
		if want := float64(f.Hits + f.Misses + f.Analytic); sum != want {
			t.Errorf("%s: scraped path sum %g != engine resolved %g", fam, sum, want)
		}
	}
}
