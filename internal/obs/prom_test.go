package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strings"
	"testing"

	"ivm/internal/sweep"
)

// TestWritePromTextGolden pins the exposition format byte-for-byte:
// HELP/TYPE headers, name-sorted metric families, label escaping and
// shortest-float values. scripts/check.sh greps a live scrape for the
// same header lines.
func TestWritePromTextGolden(t *testing.T) {
	metrics := []PromMetric{
		Counter("zeta_total", "Last by name.", 3),
		Gauge("alpha_ratio", "A ratio in [0,1].", 0.25),
		{
			Name: "beta_bytes", Help: `Help with backslash \ and
newline.`, Type: "counter",
			Samples: []PromSample{
				{Labels: []PromLabel{{"family", "pair"}, {"path", `quo"te`}}, Value: 42},
				{Labels: []PromLabel{{"family", "stream4"}}, Value: 7},
			},
		},
	}
	var buf bytes.Buffer
	if err := WritePromText(&buf, metrics); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_ratio A ratio in [0,1].
# TYPE alpha_ratio gauge
alpha_ratio 0.25
# HELP beta_bytes Help with backslash \\ and\nnewline.
# TYPE beta_bytes counter
beta_bytes{family="pair",path="quo\"te"} 42
beta_bytes{family="stream4"} 7
# HELP zeta_total Last by name.
# TYPE zeta_total counter
zeta_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromValueSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.NaN():     "NaN",
		math.Inf(1):    "+Inf",
		math.Inf(-1):   "-Inf",
		1.5:            "1.5",
		0:              "0",
		12345678901234: "1.2345678901234e+13",
	} {
		if got := promValue(v); got != want {
			t.Errorf("promValue(%v) = %q, want %q", v, got, want)
		}
	}
}

// Same-name metrics from different sources merge their samples under
// one HELP/TYPE header (Prometheus rejects duplicate family headers).
func TestWritePromTextMergesDuplicates(t *testing.T) {
	var buf bytes.Buffer
	err := WritePromText(&buf, []PromMetric{
		Counter("dup_total", "First wins.", 1),
		Counter("dup_total", "Ignored.", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE dup_total") != 1 {
		t.Errorf("duplicate TYPE headers:\n%s", out)
	}
	samples := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "dup_total ") {
			samples++
		}
	}
	if samples != 2 {
		t.Errorf("merged samples lost:\n%s", out)
	}
}

// expositionLine matches every legal line of the text format we emit.
var expositionLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|NaN|[+-]Inf))$`)

// checkExposition validates every line of a rendered exposition and
// that each sample family is preceded by its TYPE header.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.Fields(rest)[0]] = true
			continue
		}
		if !strings.HasPrefix(line, "#") {
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if !typed[name] {
				t.Errorf("sample %q before its TYPE header", line)
			}
		}
	}
}

// TestSweepPromMetricsLive renders a real engine with provenance
// through the Prometheus source and validates the full exposition,
// including the attribution metrics.
func TestSweepPromMetricsLive(t *testing.T) {
	prov := sweep.NewProvenance(0)
	eng := sweep.NewEngine(sweep.Options{Workers: 2, Provenance: prov})
	eng.Grid(13, 4)
	eng.NStreamGrid(4, 1, 4)

	reg := NewRegistry()
	reg.RegisterProm("sweep", SweepPromMetrics(eng))
	var buf bytes.Buffer
	if err := WritePromText(&buf, reg.GatherProm()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkExposition(t, out)
	for _, want := range []string{
		"ivm_up 1",
		"# TYPE ivm_sweep_units_total counter",
		"# TYPE ivm_sweep_cache_hit_ratio gauge",
		`ivm_sweep_family_cache_hits_total{family="pair"}`,
		`ivm_sweep_family_cache_hits_total{family="stream4"}`,
		`ivm_provenance_path_total{family="pair",path="analytic"}`,
		`ivm_provenance_path_total{family="stream4",path="sim-packed"}`,
		`ivm_provenance_singleton_orbits{family="stream4"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// The conservation invariant must be visible to a scraper: the four
	// path samples of each family sum to the placements the engine
	// resolved for it.
	m := eng.Metrics()
	for _, fam := range []string{"pair", "stream4"} {
		var sum float64
		for _, path := range []string{"analytic", "cache", "sim-scalar", "sim-packed"} {
			re := regexp.MustCompile(fmt.Sprintf(`ivm_provenance_path_total\{family=%q,path=%q\} (\S+)`, fam, path))
			match := re.FindStringSubmatch(out)
			if match == nil {
				t.Fatalf("no %s/%s path sample", fam, path)
			}
			var v float64
			fmt.Sscanf(match[1], "%g", &v)
			sum += v
		}
		f := m.Family(fam)
		if want := float64(f.Hits + f.Misses + f.Analytic); sum != want {
			t.Errorf("%s: scraped path sum %g != engine resolved %g", fam, sum, want)
		}
	}
}
