package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: the traced window rendered as two
// processes — "banks" (one thread per bank, each grant an 'X' slice
// lasting the bank busy time) and "ports" (one thread per port, each
// delayed clock a one-clock slice named after its conflict kind).
// Clock periods are mapped to microseconds, the format's time unit, so
// one clock reads as 1us in chrome://tracing or Perfetto.

// Process IDs of the trace tracks: simulation banks and ports, plus
// the sweep-engine worker pool (see WriteWorkerTrace).
const (
	chromePidBanks   = 1
	chromePidPorts   = 2
	chromePidWorkers = 3
)

// chromeEvent is one trace_event entry. Field order is fixed and args
// is a sorted-key map, so the marshalled output is deterministic and
// suitable for golden-file tests.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Cat  string `json:"cat,omitempty"`
	// S is the scope of an instant ('i') event — "t" pins it to its
	// thread lane; empty for every other phase.
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// simChromeEvents builds the bank/port trace tracks of a simulation
// event window: metadata naming the two processes and their threads,
// then one slice per event.
func simChromeEvents(events []Event, banks, bankBusy int) ([]chromeEvent, error) {
	if banks <= 0 || bankBusy <= 0 {
		return nil, fmt.Errorf("obs: bad chrome trace geometry banks=%d busy=%d", banks, bankBusy)
	}
	out := []chromeEvent{
		meta("process_name", chromePidBanks, 0, map[string]any{"name": "banks"}),
		meta("process_name", chromePidPorts, 0, map[string]any{"name": "ports"}),
	}
	for b := 0; b < banks; b++ {
		out = append(out,
			meta("thread_name", chromePidBanks, b, map[string]any{"name": fmt.Sprintf("bank %d", b)}))
	}
	for _, p := range portsOf(events) {
		name := fmt.Sprintf("port %d", p.id)
		if p.label != "" {
			name = fmt.Sprintf("port %d (stream %s)", p.id, p.label)
		}
		out = append(out,
			meta("thread_name", chromePidPorts, p.id, map[string]any{"name": name}))
	}
	for _, e := range events {
		if e.Granted() {
			out = append(out, chromeEvent{
				Name: "stream " + portName(e), Ph: "X", Ts: e.Clock, Dur: int64(bankBusy),
				Pid: chromePidBanks, Tid: e.Bank, Cat: "grant",
				Args: map[string]any{"port": e.Port, "cpu": e.CPU},
			})
			continue
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String() + " conflict", Ph: "X", Ts: e.Clock, Dur: 1,
			Pid: chromePidPorts, Tid: e.Port, Cat: "delay",
			Args: map[string]any{"bank": e.Bank, "blocker": e.Blocker},
		})
	}
	return out, nil
}

func encodeChromeDoc(w io.Writer, events []chromeEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace renders the events as a Chrome trace_event JSON
// document. banks and bankBusy describe the simulated system (the
// bank busy time is the duration painted for each grant). An empty
// window still yields a valid document: the process and bank thread
// metadata with no slices.
func WriteChromeTrace(w io.Writer, events []Event, banks, bankBusy int) error {
	evs, err := simChromeEvents(events, banks, bankBusy)
	if err != nil {
		return err
	}
	return encodeChromeDoc(w, evs)
}

func meta(name string, pid, tid int, args map[string]any) chromeEvent {
	return chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

func portName(e Event) string {
	if e.Label != "" {
		return e.Label
	}
	return fmt.Sprintf("%d", e.Port)
}

type portInfo struct {
	id    int
	label string
}

// portsOf lists the distinct ports appearing in the events, by ID.
func portsOf(events []Event) []portInfo {
	seen := make(map[int]string)
	for _, e := range events {
		seen[e.Port] = e.Label
	}
	out := make([]portInfo, 0, len(seen))
	for id, label := range seen {
		out = append(out, portInfo{id: id, label: label})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// csvHeader is the column row shared by the ring exporter (WriteCSV)
// and the streaming exporter (CSVStream) — the two must stay
// byte-identical on any window they both cover.
const csvHeader = "clock,port,label,cpu,bank,kind,blocker"

// writeCSVRow formats one event as a timeline row. Grants carry kind
// "grant" and an empty blocker column.
func writeCSVRow(w io.Writer, e Event) error {
	kind, blocker := "grant", ""
	if !e.Granted() {
		kind = e.Kind.String()
		blocker = fmt.Sprintf("%d", e.Blocker)
	}
	_, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%s,%s\n",
		e.Clock, e.Port, e.Label, e.CPU, e.Bank, kind, blocker)
	return err
}

// WriteCSV renders the events as a CSV timeline with one row per
// event: clock, port, label, cpu, bank, kind, blocker. It exports the
// window the ring retained: on a run longer than the tracer's
// capacity the oldest events are gone (TraceStats.Dropped counts
// them), so the first row marks the truncation boundary, not the
// start of the run — CSVStream is the lossless alternative.
func WriteCSV(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, e := range events {
		if err := writeCSVRow(w, e); err != nil {
			return err
		}
	}
	return nil
}
