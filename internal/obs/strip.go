package obs

import (
	"fmt"
	"strings"

	"ivm/internal/textplot"
)

// StripChart renders the traced window as a plain-text bank-occupancy
// strip: one bar per bank showing the fraction of observed clocks the
// bank spent servicing a grant (each grant occupies its bank for
// bankBusy clocks, clipped to the window), followed by the conflict
// totals of the window. Deterministic output, suitable for golden
// files.
func StripChart(events []Event, banks, bankBusy int) string {
	if banks <= 0 || bankBusy <= 0 {
		panic(fmt.Sprintf("obs: bad strip chart geometry banks=%d busy=%d", banks, bankBusy))
	}
	if len(events) == 0 {
		return "bank occupancy: no events\n"
	}
	first, last := events[0].Clock, events[0].Clock
	for _, e := range events {
		if e.Clock < first {
			first = e.Clock
		}
		if e.Clock > last {
			last = e.Clock
		}
	}
	window := last - first + 1
	busy := make([]int64, banks)
	var grants, delays int64
	kinds := make(map[string]int64)
	for _, e := range events {
		if e.Granted() {
			grants++
			d := int64(bankBusy)
			if left := last - e.Clock + 1; left < d {
				d = left
			}
			busy[e.Bank] += d
			continue
		}
		delays++
		kinds[e.Kind.String()]++
	}

	s := textplot.Series{
		Title:  fmt.Sprintf("bank occupancy over clocks [%d,%d] (fraction of %d clocks active)", first, last, window),
		Labels: make([]string, banks),
		Values: make([]float64, banks),
	}
	width := len(fmt.Sprintf("%d", banks-1))
	for b := 0; b < banks; b++ {
		s.Labels[b] = fmt.Sprintf("bank %*d", width, b)
		s.Values[b] = float64(busy[b]) / float64(window)
	}
	var b strings.Builder
	b.WriteString(textplot.Bars(s, 40))
	fmt.Fprintf(&b, "grants %d, delays %d (bank %d, simultaneous %d, section %d)\n",
		grants, delays, kinds["bank"], kinds["simultaneous"], kinds["section"])
	return b.String()
}
