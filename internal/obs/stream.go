package obs

import (
	"bufio"
	"fmt"
	"io"

	"ivm/internal/memsys"
)

// Streaming export: the ring tracer always keeps the most recent
// window, so a run longer than the ring capacity silently loses its
// oldest events from the export. CSVStream removes that truncation
// boundary by writing each event as a CSV row the moment it is
// observed, through a buffered writer that is flushed in windows — a
// run of any length exports losslessly, at the cost of I/O riding on
// the simulation (attach it only when the full timeline is wanted;
// the detached hot loop stays free as always).

// DefaultStreamFlushEvery is the flush window of a CSVStream when
// StreamOptions leaves FlushEvery zero: how many rows may sit in the
// buffer before it is forced to the underlying writer.
const DefaultStreamFlushEvery = 1 << 12

// StreamOptions configures a CSVStream.
type StreamOptions struct {
	// FlushEvery forces a flush after that many rows, so a consumer
	// tailing the file sees progress in bounded windows; 0 selects
	// DefaultStreamFlushEvery, negative flushes only on Close (and
	// when the internal buffer fills).
	FlushEvery int64
	// SampleEvery writes only events of clocks t with t % SampleEvery
	// == 0, mirroring TracerOptions.SampleEvery; values <= 1 write
	// every event.
	SampleEvery int64
}

// CSVStream is a memsys.Listener that exports the event timeline as
// CSV incrementally. The row format is byte-identical to WriteCSV:
// on a run that fits a tracer's ring, streaming the run and exporting
// the ring produce the same bytes; on longer runs the stream keeps
// everything the ring dropped. Errors are sticky: the first write
// error stops further output and is returned by Err and Close.
type CSVStream struct {
	opt  StreamOptions
	w    *bufio.Writer
	rows int64 // rows written since the last forced flush
	n    int64 // total event rows written
	err  error
}

// NewCSVStream builds a streaming exporter over w and writes the CSV
// header immediately. Install it with System.SetListener, or
// alongside a tracer via Tee.
func NewCSVStream(w io.Writer, opt StreamOptions) *CSVStream {
	if opt.FlushEvery == 0 {
		opt.FlushEvery = DefaultStreamFlushEvery
	}
	s := &CSVStream{opt: opt, w: bufio.NewWriter(w)}
	_, err := fmt.Fprintln(s.w, csvHeader)
	s.err = err
	return s
}

// Observe implements memsys.Listener: one CSV row per event, flushed
// every FlushEvery rows.
func (s *CSVStream) Observe(e memsys.Event) {
	if s.err != nil {
		return
	}
	if s.opt.SampleEvery > 1 && e.Clock%s.opt.SampleEvery != 0 {
		return
	}
	ev := Event{Clock: e.Clock, Port: e.Port.ID, Label: e.Port.Label, CPU: e.Port.CPU, Bank: e.Bank, Kind: e.Kind, Blocker: -1}
	if e.Blocker != nil {
		ev.Blocker = e.Blocker.ID
	}
	if s.err = writeCSVRow(s.w, ev); s.err != nil {
		return
	}
	s.n++
	s.rows++
	if s.opt.FlushEvery > 0 && s.rows >= s.opt.FlushEvery {
		s.err = s.w.Flush()
		s.rows = 0
	}
}

// Rows returns the number of event rows written so far (the header is
// not counted).
func (s *CSVStream) Rows() int64 { return s.n }

// Err returns the first write error, if any.
func (s *CSVStream) Err() error { return s.err }

// Close flushes the buffered tail. The underlying writer is not
// closed — the caller owns it. Close reports the sticky error, so a
// deferred Close surfaces mid-run write failures.
func (s *CSVStream) Close() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}
