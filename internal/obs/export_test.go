package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivm/internal/memsys"
)

// Regenerate the goldens with:
//
//	go test ./internal/obs -run TestExporterGolden -update
var update = flag.Bool("update", false, "rewrite the exporter golden files")

// theorem3Example traces the Theorem 3 synchronisation example: the
// pair d1=1, d2=7 on m=12, nc=3 is conflict-free in the cyclic state
// (Fig. 2), but from b2=0 both streams start on bank 0, so the window
// shows the transient — a delay, then the streams locking into the
// conflict-free cycle.
func theorem3Example(t *testing.T) []Event {
	t.Helper()
	sys := memsys.New(memsys.Config{Banks: 12, BankBusy: 3, CPUs: 2})
	tr := Attach(sys, TracerOptions{})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 7))
	sys.Run(36)
	events := tr.Events()
	if tr.Delays() == 0 {
		t.Fatal("example should show a synchronisation transient")
	}
	return events
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden; run with -update after verifying.\ngot:\n%s", name, got)
	}
}

func TestExporterGoldenChromeTrace(t *testing.T) {
	events := theorem3Example(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 12, 3); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrometrace.json", buf.Bytes())

	// The export must be a loadable trace_event document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var grants, delays, metas int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			if e["cat"] == "grant" {
				grants++
			} else {
				delays++
			}
		}
	}
	if metas < 14 { // 2 processes + 12 banks at least
		t.Errorf("only %d metadata events", metas)
	}
	if grants == 0 || delays == 0 {
		t.Errorf("trace has %d grants, %d delays; want both > 0", grants, delays)
	}
}

func TestExporterGoldenStripChart(t *testing.T) {
	events := theorem3Example(t)
	got := StripChart(events, 12, 3)
	golden(t, "strip.txt", []byte(got))
	if !strings.Contains(got, "bank occupancy") || !strings.Contains(got, "grants") {
		t.Errorf("strip chart missing sections:\n%s", got)
	}
}

func TestCSVTimeline(t *testing.T) {
	events := theorem3Example(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "clock,port,label,cpu,bank,kind,blocker" {
		t.Fatalf("bad header %q", lines[0])
	}
	if len(lines) != len(events)+1 {
		t.Fatalf("%d rows for %d events", len(lines)-1, len(events))
	}
	var sawGrant, sawDelay bool
	for _, l := range lines[1:] {
		fields := strings.Split(l, ",")
		if len(fields) != 7 {
			t.Fatalf("row %q has %d fields", l, len(fields))
		}
		switch fields[5] {
		case "grant":
			sawGrant = true
			if fields[6] != "" {
				t.Errorf("grant row with blocker: %q", l)
			}
		case "bank", "simultaneous", "section":
			sawDelay = true
			if fields[6] == "" {
				t.Errorf("delay row without blocker: %q", l)
			}
		default:
			t.Errorf("unknown kind %q in %q", fields[5], l)
		}
	}
	if !sawGrant || !sawDelay {
		t.Errorf("timeline lacks grant (%v) or delay (%v) rows", sawGrant, sawDelay)
	}
}

func TestStripChartEmptyWindow(t *testing.T) {
	if got := StripChart(nil, 4, 2); !strings.Contains(got, "no events") {
		t.Errorf("empty window rendered %q", got)
	}
}

func TestChromeTraceEmptyWindow(t *testing.T) {
	// An empty window (tracer attached but nothing ran) must still
	// produce a loadable document: process/bank metadata, no slices.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, 4, 2); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	for _, e := range doc.TraceEvents {
		if e["ph"] != "M" {
			t.Errorf("empty window emitted a non-metadata event: %v", e)
		}
	}
	if len(doc.TraceEvents) != 2+4 { // 2 processes + 4 bank threads
		t.Errorf("%d metadata events, want 6", len(doc.TraceEvents))
	}
}

func TestWriteCSVEmptyWindow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "clock,port,label,cpu,bank,kind,blocker\n" {
		t.Errorf("empty window wrote %q", buf.String())
	}
}

// TestCSVRingWrappedBeforeExport pins the documented truncation
// boundary of the ring exporter: once the ring wraps, WriteCSV holds
// exactly the newest capacity rows, the first row is NOT the start of
// the run, and TraceStats.Dropped accounts for the missing prefix —
// the lossless alternative is CSVStream (see stream_test.go).
func TestCSVRingWrappedBeforeExport(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 12, BankBusy: 3, CPUs: 2})
	tr := Attach(sys, TracerOptions{Capacity: 32})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 7))
	sys.Run(256) // 2 events per clock >> 32
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 32+1 {
		t.Fatalf("wrapped ring exported %d rows, want capacity 32", len(lines)-1)
	}
	firstClock := strings.SplitN(lines[1], ",", 2)[0]
	if firstClock == "0" {
		t.Error("export starts at clock 0 despite the wrap")
	}
	st := tr.Stats()
	if st.Dropped != st.Grants+st.Delays-32 {
		t.Errorf("dropped %d of %d events, ring holds 32", st.Dropped, st.Grants+st.Delays)
	}
}
