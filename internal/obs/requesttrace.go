package obs

import (
	"fmt"
	"io"
)

// Request-trace export: completed API requests rendered as a fourth
// Chrome trace process, "requests", beside the banks/ports/workers
// tracks. Each retained request gets its own thread lane holding one
// outer slice for the request (named by endpoint, with the request ID
// in args so a trace can be grepped for one ID) and one child slice
// per recorded span (decode, gate, canonicalise, cache-probe,
// simulate, encode), so one slow request's anatomy reads directly off
// the timeline.

// chromePidRequests is the trace process ID of the request track
// (banks, ports and sweep workers are 1-3, see chrometrace.go).
const chromePidRequests = 4

// RequestTrace is one completed, exportable request: identity, HTTP
// outcome, when it ran (nanoseconds since the serving process's
// epoch), and its recorded spans (relative to the request's start).
type RequestTrace struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
	Spans    []Span `json:"spans,omitempty"`
}

// requestChromeEvents renders the requests as trace events: process
// metadata, one thread per request (named by its ID), the request
// slice and its span children.
func requestChromeEvents(reqs []RequestTrace) []chromeEvent {
	out := []chromeEvent{
		meta("process_name", chromePidRequests, 0, map[string]any{"name": "requests"}),
	}
	for tid, r := range reqs {
		out = append(out,
			meta("thread_name", chromePidRequests, tid, map[string]any{"name": "req " + r.ID}))
		dur := r.DurNS / 1000
		if dur < 1 {
			dur = 1
		}
		out = append(out, chromeEvent{
			Name: r.Endpoint, Ph: "X", Ts: r.StartNS / 1000, Dur: dur,
			Pid: chromePidRequests, Tid: tid, Cat: "request",
			Args: map[string]any{"id": r.ID, "status": fmt.Sprintf("%d", r.Status)},
		})
		for _, sp := range r.Spans {
			sd := sp.DurNS / 1000
			if sd < 1 {
				sd = 1
			}
			out = append(out, chromeEvent{
				Name: sp.Name, Ph: "X", Ts: (r.StartNS + sp.StartNS) / 1000, Dur: sd,
				Pid: chromePidRequests, Tid: tid, Cat: "span",
				Args: map[string]any{"id": r.ID},
			})
		}
	}
	return out
}

// WriteRequestTrace renders completed requests as a Chrome
// trace_event JSON document (the "requests" process). An empty set
// still yields a valid document holding only the process metadata.
func WriteRequestTrace(w io.Writer, reqs []RequestTrace) error {
	return encodeChromeDoc(w, requestChromeEvents(reqs))
}
