package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"ivm/internal/sweep"
)

// syntheticTimeline is a fixed worker timeline for the golden test:
// wall-clock timings from a real engine run are nondeterministic, so
// the golden pins the rendering, and TestWorkerTraceFromEngine checks
// a live run separately.
func syntheticTimeline() []sweep.TimelineEvent {
	return []sweep.TimelineEvent{
		{Worker: 0, Kind: sweep.TimelineCanon, StartNS: 1_000, DurNS: 500, Item: -1, Family: "pair"},
		{Worker: 0, Kind: sweep.TimelineCacheMiss, StartNS: 2_000, Item: -1, Family: "pair"},
		{Worker: 0, Kind: sweep.TimelineFindCycle, StartNS: 2_500, DurNS: 40_000, Item: -1},
		{Worker: 0, Kind: sweep.TimelineSimulate, StartNS: 2_500, DurNS: 45_000, Item: -1, Family: "pair"},
		{Worker: 0, Kind: sweep.TimelineItem, StartNS: 1_000, DurNS: 50_000, Item: 0},
		{Worker: 1, Kind: sweep.TimelineCanon, StartNS: 3_000, DurNS: 400, Item: -1, Family: "pair"},
		{Worker: 1, Kind: sweep.TimelineCacheHit, StartNS: 4_000, Item: -1, Family: "pair"},
		{Worker: 1, Kind: sweep.TimelineItem, StartNS: 3_000, DurNS: 2_000, Item: 1},
	}
}

func TestWorkerTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWorkerTrace(&buf, syntheticTimeline()); err != nil {
		t.Fatal(err)
	}
	golden(t, "workertrace.json", buf.Bytes())
}

func TestCombinedTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCombinedChromeTrace(&buf, theorem3Example(t), 12, 3, syntheticTimeline()); err != nil {
		t.Fatal(err)
	}
	golden(t, "combinedtrace.json", buf.Bytes())
}

// traceShape parses a trace_event document and tallies its events.
type traceShape struct {
	metas, slices, instants int
	workerPids              int
}

func parseTrace(t *testing.T, data []byte) traceShape {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var s traceShape
	for _, e := range doc.TraceEvents {
		pid, _ := e["pid"].(float64)
		if int(pid) == chromePidWorkers {
			s.workerPids++
		}
		switch e["ph"] {
		case "M":
			s.metas++
		case "X":
			s.slices++
		case "i":
			s.instants++
			if e["s"] != "t" {
				t.Errorf("instant without thread scope: %v", e)
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	return s
}

// TestWorkerTraceFromEngine drives a real parallel sweep with a
// timeline attached and checks the export is a well-formed document
// with worker slices and cache hit/miss instants — the half of the
// contract the fixed-timing golden cannot cover.
func TestWorkerTraceFromEngine(t *testing.T) {
	tl := sweep.NewTimeline(0)
	e := sweep.NewEngine(sweep.Options{Workers: 4, Timeline: tl})
	e.Grid(12, 3)
	var buf bytes.Buffer
	if err := WriteWorkerTrace(&buf, tl.Events()); err != nil {
		t.Fatal(err)
	}
	s := parseTrace(t, buf.Bytes())
	if s.slices == 0 || s.instants == 0 {
		t.Errorf("engine trace has %d slices, %d instants; want both > 0", s.slices, s.instants)
	}
	if s.workerPids != len(buf.Bytes()) && s.workerPids == 0 {
		t.Error("no events on the worker process track")
	}
	m := e.Metrics()
	// Every placement emits exactly one instant: an analytic-gate hit, a
	// cache hit, or a cache miss.
	probes := m.AnalyticHits + m.CacheHits + m.CacheMisses
	if int64(s.instants) != probes {
		t.Errorf("%d instants for %d placement verdicts", s.instants, probes)
	}
	if m.AnalyticHits == 0 {
		t.Error("no analytic-hit instants on the 12-bank grid")
	}
}

func TestCombinedTraceHalves(t *testing.T) {
	// Worker-only: ivmablate's shape.
	var buf bytes.Buffer
	if err := WriteCombinedChromeTrace(&buf, nil, 0, 0, syntheticTimeline()); err != nil {
		t.Fatal(err)
	}
	s := parseTrace(t, buf.Bytes())
	if s.instants != 2 || s.slices != 6 {
		t.Errorf("worker-only trace has %d instants, %d slices", s.instants, s.slices)
	}
	// Sim-only: same events WriteChromeTrace would emit, plus the (empty)
	// worker process metadata.
	buf.Reset()
	if err := WriteCombinedChromeTrace(&buf, theorem3Example(t), 12, 3, nil); err != nil {
		t.Fatal(err)
	}
	parseTrace(t, buf.Bytes())
	// Bad sim geometry still fails fast.
	if err := WriteCombinedChromeTrace(&buf, theorem3Example(t), 0, 0, nil); err == nil {
		t.Error("bad geometry accepted")
	}
}
