package obs

// Shared -metrics-addr wiring for the CLIs: one call builds the
// registry, connects the engine's JSON and Prometheus sources (lazily,
// so commands that build their engine on demand can pass a resolver),
// attaches an optional progress tracker, publishes expvar, starts the
// server and announces the endpoints on stderr.

import (
	"fmt"
	"io"
	"os"

	"ivm/internal/sweep"
)

// ServeMetrics starts the live metrics server for a CLI run and
// returns its closer. name keys the expvar publication; engine
// resolves the sweep engine on every poll (nil, or returning nil,
// serves only the liveness gauge plus expvar/pprof); prog optionally
// adds the progress tracker's JSON and Prometheus views; a non-nil
// itemLatency histogram (the engine's ItemLatency sink under
// -latency) adds the ivm_sweep_item_duration_seconds histogram and
// the item_latency JSON view. The endpoint summary is printed to
// stderr so an operator can copy the scrape URL.
func ServeMetrics(name, addr string, engine func() *sweep.Engine, prog *Progress, itemLatency ...*LatencyHist) (io.Closer, error) {
	reg := NewRegistry()
	for _, h := range itemLatency {
		if h == nil {
			continue
		}
		h := h
		reg.Register("item_latency", func() any { return h.Snapshot() })
		reg.RegisterProm("item_latency", func() []PromMetric {
			return []PromMetric{Histogram("ivm_sweep_item_duration_seconds",
				"Sweep work-item latency distribution (log2 buckets).").HistSample(h.Snapshot())}
		})
	}
	if engine != nil {
		reg.Register("engine", func() any {
			if eng := engine(); eng != nil {
				return eng.Snapshot()
			}
			return nil
		})
		reg.RegisterProm("sweep", func() []PromMetric {
			if eng := engine(); eng != nil {
				return SweepPromMetrics(eng)()
			}
			return nil
		})
	}
	if prog != nil {
		reg.Register("progress", func() any { return prog.Snapshot() })
		reg.RegisterProm("progress", prog.PromMetrics)
	}
	reg.Publish(name)
	bound, closer, err := reg.Serve(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr,
		"serving metrics on http://%s/metrics (Prometheus text; /metrics.json, /healthz, /debug/vars, /debug/pprof)\n",
		bound)
	return closer, nil
}
