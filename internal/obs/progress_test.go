package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"ivm/internal/sweep"
)

// A progress tracker attached to an engine must see exactly the
// engine's work: every planned item announced, every item completed.
func TestProgressTracksEngine(t *testing.T) {
	prog := NewProgress(nil)
	eng := sweep.NewEngine(sweep.Options{Workers: 2, Progress: prog})
	eng.Grid(13, 4)
	eng.TripleGrid(5, 2)
	s := prog.Snapshot()
	if s.Total == 0 || s.Total != s.Done {
		t.Errorf("after completed sweeps: total %d done %d", s.Total, s.Done)
	}
	if want := eng.Metrics().PairsSwept; s.Done != want {
		t.Errorf("done %d != engine sweep units %d", s.Done, want)
	}
	if s.Elapsed <= 0 || s.Rate <= 0 {
		t.Errorf("no throughput measured: %+v", s)
	}
	if s.ETA != 0 {
		t.Errorf("finished run projects ETA %v", s.ETA)
	}
}

func TestProgressLineAndPaths(t *testing.T) {
	prov := sweep.NewProvenance(0)
	prog := NewProgress(prov)
	eng := sweep.NewEngine(sweep.Options{Workers: 2, Progress: prog, Provenance: prov})
	eng.Grid(13, 4)
	line := prog.Line()
	for _, want := range []string{"progress:", "items/s", "ETA", "analytic", "cache", "sim"} {
		if !strings.Contains(line, want) {
			t.Errorf("status line lacks %q: %s", want, line)
		}
	}
}

func TestProgressPeriodicReporter(t *testing.T) {
	prog := NewProgress(nil)
	prog.Add(10)
	prog.Done(4)
	var buf syncBuffer
	stop := prog.Start(&buf, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	out := buf.String()
	if !strings.Contains(out, "4/10 items (40.0%)") {
		t.Errorf("reporter output lacks completion: %q", out)
	}
	// stop() flushes a final line even if the ticker never fired.
	if strings.Count(out, "progress:") < 2 {
		t.Errorf("expected periodic plus final line, got %q", out)
	}
}

// syncBuffer makes bytes.Buffer safe against the reporter goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFmtETA pins the ETA renderer's edges: no measurable rate,
// sub-second, rounding across a minute boundary, and multi-hour.
func TestFmtETA(t *testing.T) {
	for _, tc := range []struct {
		seconds float64
		want    string
	}{
		{0, "-"},         // zero rate: no projection yet
		{-3, "-"},        // defensive: negative never renders
		{0.4, "0s"},      // sub-second rounds down to zero seconds
		{0.6, "1s"},      // ...and up past the half mark
		{59.6, "1m0s"},   // rounding crosses the minute boundary
		{7261, "2h1m1s"}, // multi-hour stays exact to the second
	} {
		if got := fmtETA(tc.seconds); got != tc.want {
			t.Errorf("fmtETA(%g) = %q, want %q", tc.seconds, got, tc.want)
		}
	}
}

// TestProgressUnknownTotal: a tracker whose Total is unknown (work
// done without any Add, or more done than announced) must project no
// ETA, and the ivm_progress_eta_seconds gauge must read exactly 0
// rather than a negative or runaway value.
func TestProgressUnknownTotal(t *testing.T) {
	prog := NewProgress(nil)
	prog.Add(0) // starts the clock; total stays 0
	prog.Done(5)
	time.Sleep(2 * time.Millisecond) // let elapsed become measurable
	s := prog.Snapshot()
	if s.Total != 0 || s.Done != 5 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Rate <= 0 {
		t.Errorf("rate %g, want > 0 (work did complete)", s.Rate)
	}
	if s.ETA != 0 {
		t.Errorf("ETA %g with unknown total, want 0", s.ETA)
	}
	var buf bytes.Buffer
	if err := WritePromText(&buf, prog.PromMetrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkExposition(t, out)
	if !strings.Contains(out, "ivm_progress_eta_seconds 0") {
		t.Errorf("eta gauge not pinned to 0:\n%s", out)
	}
	if !strings.Contains(prog.Line(), "ETA -") {
		t.Errorf("status line should render ETA as '-': %s", prog.Line())
	}
}

func TestProgressPromMetrics(t *testing.T) {
	prog := NewProgress(nil)
	prog.Add(100)
	prog.Done(25)
	var buf bytes.Buffer
	if err := WritePromText(&buf, prog.PromMetrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkExposition(t, out)
	for _, want := range []string{"ivm_progress_items 100", "ivm_progress_items_done_total 25", "# TYPE ivm_progress_eta_seconds gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress exposition lacks %q:\n%s", want, out)
		}
	}
}
