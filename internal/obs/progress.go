package obs

// Live sweep progress: a Progress implements sweep.ProgressSink, so an
// engine announces planned work (Add) and completions (Done) to it;
// the reporter derives throughput and ETA, renders a one-line status
// for periodic stderr updates (Start), and exposes itself as an expvar
// and a Prometheus source — how a multi-hour census stays observable
// from the terminal that launched it and from a scraper alike.

import (
	"expvar"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"ivm/internal/sweep"
)

// Progress tracks sweep completion against planned work. All methods
// are safe for concurrent use; the zero value is not ready — build
// with NewProgress.
type Progress struct {
	total, done atomic.Int64
	startNS     atomic.Int64 // wall clock of the first Add, ns since epoch
	// prov, when attached, contributes the per-path counters to the
	// rendered status line.
	prov *sweep.Provenance
}

// Progress must satisfy the engine's sink interface.
var _ sweep.ProgressSink = (*Progress)(nil)

// NewProgress builds an idle progress tracker; prov optionally
// attaches a provenance recorder whose per-path counters the status
// line reports (nil for none).
func NewProgress(prov *sweep.Provenance) *Progress {
	return &Progress{prov: prov}
}

// Add announces total new planned work items (the engine calls it at
// the start of every sweep). The first call starts the clock.
func (p *Progress) Add(total int64) {
	p.startNS.CompareAndSwap(0, time.Now().UnixNano())
	p.total.Add(total)
}

// Done records n completed work items.
func (p *Progress) Done(n int64) { p.done.Add(n) }

// ProgressSnapshot is one observation of a progress tracker.
type ProgressSnapshot struct {
	Total   int64   `json:"total"`
	Done    int64   `json:"done"`
	Elapsed float64 `json:"elapsed_seconds"`
	// Rate is completed items per second since the first Add; ETA the
	// projected seconds until the remaining items complete at that rate
	// (0 until the rate is measurable).
	Rate float64 `json:"items_per_second"`
	ETA  float64 `json:"eta_seconds"`
}

// Snapshot observes the tracker: totals, elapsed wall time, completion
// rate and projected time to finish.
func (p *Progress) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{Total: p.total.Load(), Done: p.done.Load()}
	if start := p.startNS.Load(); start > 0 {
		s.Elapsed = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.Elapsed > 0 && s.Done > 0 {
		s.Rate = float64(s.Done) / s.Elapsed
		if rem := s.Total - s.Done; rem > 0 {
			s.ETA = float64(rem) / s.Rate
		}
	}
	return s
}

// Line renders the one-line status: completion, throughput, ETA, and —
// when a provenance recorder is attached — the per-path split of the
// placements resolved so far.
func (p *Progress) Line() string {
	s := p.Snapshot()
	pctDone := 0.0
	if s.Total > 0 {
		pctDone = 100 * float64(s.Done) / float64(s.Total)
	}
	line := fmt.Sprintf("progress: %d/%d items (%.1f%%), %.1f items/s, ETA %s",
		s.Done, s.Total, pctDone, s.Rate, fmtETA(s.ETA))
	if p.prov != nil {
		var analytic, cache, sim int64
		ps := p.prov.Snapshot()
		for _, f := range ps.Families {
			analytic += f.Analytic
			cache += f.CacheHits
			sim += f.SimScalar + f.SimPacked
		}
		if n := analytic + cache + sim; n > 0 {
			line += fmt.Sprintf(" | paths: analytic %s, cache %s, sim %s",
				pctOf(analytic, n), pctOf(cache, n), pctOf(sim, n))
		}
	}
	return line
}

// pctOf renders n out of total as a percentage string.
func pctOf(n, total int64) string {
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// fmtETA renders a projected duration compactly ("-" before any rate
// is measurable).
func fmtETA(seconds float64) string {
	if seconds <= 0 {
		return "-"
	}
	return time.Duration(float64(time.Second) * seconds).Round(time.Second).String()
}

// Start launches a goroutine writing the status line to w every
// period, and returns a stop function that writes one final line and
// halts the reporter. A typical caller passes os.Stderr and a few
// seconds.
func (p *Progress) Start(w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 5 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, p.Line()) //nolint:errcheck // best-effort status
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprintln(w, p.Line()) //nolint:errcheck // best-effort status
	}
}

// Publish exposes the tracker's snapshot in the process's expvar set
// (/debug/vars) under name. Publishing the same name twice is a no-op,
// matching Registry.Publish.
func (p *Progress) Publish(name string) {
	if _, loaded := published.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return p.Snapshot() }))
}

// PromMetrics adapts the tracker to a Prometheus source for
// Registry.RegisterProm.
func (p *Progress) PromMetrics() []PromMetric {
	s := p.Snapshot()
	return []PromMetric{
		Gauge("ivm_progress_items", "Work items planned across all sweeps announced so far.", float64(s.Total)),
		Counter("ivm_progress_items_done_total", "Work items completed.", float64(s.Done)),
		Counter("ivm_progress_elapsed_seconds_total", "Wall seconds since the first work item was announced.", s.Elapsed),
		Gauge("ivm_progress_items_per_second", "Completion throughput since the first announcement.", s.Rate),
		Gauge("ivm_progress_eta_seconds", "Projected seconds until the remaining items complete (0 when unknown).", s.ETA),
	}
}
