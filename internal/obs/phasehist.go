package obs

import (
	"fmt"
	"io"
	"strings"

	"ivm/internal/memsys"
	"ivm/internal/textplot"
)

// Per-cycle conflict phase histograms: once FindCycle has located the
// steady state (lead L, period T), every traced event at clock t >=
// start+L belongs to phase (t - start - L) mod T of the cycle. Binning
// grants and delays by that phase — per bank and per conflict kind —
// shows *when within the cycle* the paper's three conflict classes
// cluster, clock by clock, instead of only their per-run totals. The
// ring may hold many repetitions of the cycle; they all fold onto the
// same T phases, so the histogram is the cycle's signature regardless
// of how long the trace ran.

// PhaseCounts is the event census of one clock phase of the cycle:
// grants plus the three delay classes, exactly the paper's taxonomy.
type PhaseCounts struct {
	Grants       int64 `json:"grants"`
	Bank         int64 `json:"bank"`
	Simultaneous int64 `json:"simultaneous"`
	Section      int64 `json:"section"`
}

// Delays returns the delayed port-clocks of the phase.
func (p PhaseCounts) Delays() int64 { return p.Bank + p.Simultaneous + p.Section }

// PhaseHistogram bins a traced window by clock phase within a detected
// steady-state cycle. Phases holds the per-kind totals of each phase;
// BankGrants and BankDelays resolve each phase further per bank
// (indexed [phase][bank]). Counts accumulate over every repetition of
// the cycle present in the window.
type PhaseHistogram struct {
	// CycleStart is the absolute clock of phase 0 (trace start + lead).
	CycleStart int64 `json:"cycle_start"`
	// CycleLength is the period T of the steady state in clocks.
	CycleLength int64 `json:"cycle_length"`
	// Banks is the number of banks of the traced system.
	Banks int `json:"banks"`
	// Events counts the binned events; LeadEvents the window events
	// before CycleStart, which belong to the transient and are skipped.
	Events     int64 `json:"events"`
	LeadEvents int64 `json:"lead_events"`
	// Phases is indexed by phase in [0, CycleLength).
	Phases []PhaseCounts `json:"phases"`
	// BankGrants[p][b] counts grants of bank b at phase p; BankDelays
	// the delayed requests aimed at bank b at phase p (any kind).
	BankGrants [][]int64 `json:"bank_grants"`
	BankDelays [][]int64 `json:"bank_delays"`
}

// BuildPhaseHistogram bins events into the cycle phases of a steady
// state with period cycleLength whose phase 0 falls on absolute clock
// cycleStart (trace start + FindCycle's lead). Events before
// cycleStart are counted as LeadEvents and otherwise ignored. It
// panics on non-positive geometry (programming error, matching the
// other exporters).
func BuildPhaseHistogram(events []Event, banks int, cycleStart, cycleLength int64) PhaseHistogram {
	if banks <= 0 || cycleLength <= 0 {
		panic(fmt.Sprintf("obs: bad phase histogram geometry banks=%d cycle=%d", banks, cycleLength))
	}
	h := PhaseHistogram{
		CycleStart:  cycleStart,
		CycleLength: cycleLength,
		Banks:       banks,
		Phases:      make([]PhaseCounts, cycleLength),
		BankGrants:  make([][]int64, cycleLength),
		BankDelays:  make([][]int64, cycleLength),
	}
	for p := range h.BankGrants {
		h.BankGrants[p] = make([]int64, banks)
		h.BankDelays[p] = make([]int64, banks)
	}
	for _, e := range events {
		if e.Clock < cycleStart {
			h.LeadEvents++
			continue
		}
		p := (e.Clock - cycleStart) % cycleLength
		h.Events++
		switch e.Kind {
		case memsys.NoConflict:
			h.Phases[p].Grants++
			h.BankGrants[p][e.Bank]++
		case memsys.BankConflict:
			h.Phases[p].Bank++
			h.BankDelays[p][e.Bank]++
		case memsys.SimultaneousConflict:
			h.Phases[p].Simultaneous++
			h.BankDelays[p][e.Bank]++
		case memsys.SectionConflict:
			h.Phases[p].Section++
			h.BankDelays[p][e.Bank]++
		}
	}
	return h
}

// TracePhaseHistogram runs steady-state detection on a freshly built
// system with a tracer attached and returns the cycle together with
// its phase histogram — the one-call path ivmsim and ivmreport use.
// The system must contain only infinite strided streams (FindCycle's
// requirement). The tracer runs at the default ring capacity, which
// holds the whole search on paper-sized systems; on longer searches
// the ring keeps the most recent window, which still covers the
// cyclic regime (the phases fold onto the same histogram wherever the
// window starts inside the steady state).
func TracePhaseHistogram(cfg memsys.Config, specs []memsys.StreamSpec, maxClocks int64) (PhaseHistogram, memsys.Cycle, error) {
	sys := memsys.New(cfg)
	tr := Attach(sys, TracerOptions{})
	sys.AddStreams(specs...)
	cyc, err := sys.FindCycle(maxClocks)
	if err != nil {
		return PhaseHistogram{}, memsys.Cycle{}, fmt.Errorf("obs: phase histogram: %w", err)
	}
	return BuildPhaseHistogram(tr.Events(), cfg.Banks, cyc.Lead, cyc.Length), cyc, nil
}

// Totals sums the histogram over all phases, the per-run view the
// pre-histogram tracer reported; on a trace that covers whole cycle
// repetitions these match the tracer's cyclic-regime counters.
func (h PhaseHistogram) Totals() PhaseCounts {
	var t PhaseCounts
	for _, p := range h.Phases {
		t.Grants += p.Grants
		t.Bank += p.Bank
		t.Simultaneous += p.Simultaneous
		t.Section += p.Section
	}
	return t
}

// Render formats the histogram as the textplot view: a per-phase
// conflict table (grants and the three delay kinds) followed by the
// bank × phase grant heatmap, so both the *when* and the *where* of
// the cycle are visible at once. Deterministic output, suitable for
// golden files.
func (h PhaseHistogram) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase histogram: cycle of %d clocks starting at clock %d (%d events, %d in lead-in)\n",
		h.CycleLength, h.CycleStart, h.Events, h.LeadEvents)
	tbl := &textplot.Table{Header: []string{"phase", "grants", "bank", "simult", "section"}}
	for p, c := range h.Phases {
		tbl.Add(p, c.Grants, c.Bank, c.Simultaneous, c.Section)
	}
	b.WriteString(tbl.String())

	rows := make([][]float64, h.Banks)
	labels := make([]string, h.Banks)
	width := len(fmt.Sprintf("%d", h.Banks-1))
	for bank := 0; bank < h.Banks; bank++ {
		labels[bank] = fmt.Sprintf("bank %*d", width, bank)
		rows[bank] = make([]float64, len(h.Phases))
		for p := range h.Phases {
			rows[bank][p] = float64(h.BankGrants[p][bank])
		}
	}
	b.WriteString(textplot.Heatmap("grants by bank (rows) and cycle phase (columns):", labels, rows))
	return b.String()
}

// WritePhaseCSV exports the histogram in long form, one row per
// (phase, bank): the per-bank grant and delay counts plus the phase's
// per-kind totals (repeated on each of its rows, so any row is
// self-describing for grep/awk pipelines).
func WritePhaseCSV(w io.Writer, h PhaseHistogram) error {
	if _, err := fmt.Fprintln(w, "phase,bank,grants,delays,phase_grants,phase_bank,phase_simultaneous,phase_section"); err != nil {
		return err
	}
	for p := range h.Phases {
		c := h.Phases[p]
		for bank := 0; bank < h.Banks; bank++ {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
				p, bank, h.BankGrants[p][bank], h.BankDelays[p][bank],
				c.Grants, c.Bank, c.Simultaneous, c.Section); err != nil {
				return err
			}
		}
	}
	return nil
}
