package obs

// Dependency-free Prometheus text exposition (format 0.0.4): the
// Registry gathers PromMetric slices from registered sources and
// renders them with HELP/TYPE headers, escaped labels and Go-shortest
// float values, so a stock Prometheus server can scrape a running
// sweep from the same -metrics-addr server that exposes the JSON
// snapshot (/metrics.json), expvar and pprof. The exposition is pinned
// by a golden test and by scripts/check.sh's live scrape step; metric
// names are documented in docs/OBSERVABILITY.md.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"ivm/internal/sweep"
)

// PromSample is one sample line of a Prometheus metric: an optional
// label set and the value. Suffix, when set, is appended to the
// metric name on the sample line — how histogram series render their
// _bucket/_sum/_count families under one HELP/TYPE header.
type PromSample struct {
	Suffix string
	Labels []PromLabel
	Value  float64
}

// PromLabel is one name="value" pair of a sample's label set.
type PromLabel struct {
	Name, Value string
}

// PromMetric is one Prometheus metric family: name, HELP text, TYPE
// ("counter" or "gauge") and its samples. Sources returning several
// metrics with the same name are merged under the first HELP/TYPE.
type PromMetric struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// Counter builds a counter metric with unlabelled value v.
func Counter(name, help string, v float64) PromMetric {
	return PromMetric{Name: name, Help: help, Type: "counter", Samples: []PromSample{{Value: v}}}
}

// Gauge builds a gauge metric with unlabelled value v.
func Gauge(name, help string, v float64) PromMetric {
	return PromMetric{Name: name, Help: help, Type: "gauge", Samples: []PromSample{{Value: v}}}
}

// Sample appends a labelled sample to the metric, replacing the bare
// seed sample a Counter/Gauge constructor installed. Labels are
// name/value pairs: Sample("family", "pair", 3).
func (m PromMetric) Sample(pairs ...any) PromMetric {
	if len(pairs)%2 != 1 {
		panic("obs: Sample wants label name/value pairs then a value")
	}
	s := PromSample{}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Labels = append(s.Labels, PromLabel{pairs[i].(string), fmt.Sprint(pairs[i+1])})
	}
	switch v := pairs[len(pairs)-1].(type) {
	case float64:
		s.Value = v
	case int64:
		s.Value = float64(v)
	case int:
		s.Value = float64(v)
	default:
		panic("obs: Sample value must be numeric")
	}
	if len(m.Samples) == 1 && len(m.Samples[0].Labels) == 0 && m.Samples[0].Value == 0 {
		m.Samples = m.Samples[:0]
	}
	m.Samples = append(m.Samples, s)
	return m
}

// Histogram builds an empty Prometheus histogram metric; attach
// per-label-set series with HistSample.
func Histogram(name, help string) PromMetric {
	return PromMetric{Name: name, Help: help, Type: "histogram"}
}

// HistSample appends one histogram series to the metric from a
// LatencyHist snapshot: cumulative _bucket samples over the fixed
// exposition window (upper bounds 2^12..2^34 ns in seconds, so every
// series of the family shares the same le grid) plus +Inf, then _sum
// and _count. pairs are label name/value pairs applied to every
// sample of the series: HistSample(snap, "endpoint", "batch").
func (m PromMetric) HistSample(snap LatencyHistSnapshot, pairs ...any) PromMetric {
	if len(pairs)%2 != 0 {
		panic("obs: HistSample wants label name/value pairs")
	}
	labels := make([]PromLabel, 0, len(pairs)/2+1)
	for i := 0; i+1 < len(pairs); i += 2 {
		labels = append(labels, PromLabel{pairs[i].(string), fmt.Sprint(pairs[i+1])})
	}
	leLabels := func(le string) []PromLabel {
		out := make([]PromLabel, len(labels), len(labels)+1)
		copy(out, labels)
		return append(out, PromLabel{"le", le})
	}
	var cum int64
	bi := 0
	for k := expoMinBucket; k <= expoMaxBucket; k++ {
		upper := bucketUpperNS(k) / 1e9
		for bi < len(snap.Buckets) && snap.Buckets[bi].UpperSeconds <= upper {
			cum += snap.Buckets[bi].Count
			bi++
		}
		m.Samples = append(m.Samples, PromSample{
			Suffix: "_bucket", Labels: leLabels(promValue(upper)), Value: float64(cum),
		})
	}
	m.Samples = append(m.Samples,
		PromSample{Suffix: "_bucket", Labels: leLabels("+Inf"), Value: float64(snap.Count)},
		PromSample{Suffix: "_sum", Labels: labels, Value: snap.SumSeconds},
		PromSample{Suffix: "_count", Labels: labels, Value: float64(snap.Count)})
	return m
}

// promEscaper escapes HELP text (backslash and newline).
var promEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promLabelEscaper escapes label values (backslash, quote, newline).
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promValue renders a sample value the way Prometheus clients do:
// shortest float representation, with the special values spelled out.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePromText renders the metrics in Prometheus text exposition
// format 0.0.4, sorted by metric name; same-name metrics merge their
// samples under the first metric's HELP and TYPE.
func WritePromText(w io.Writer, metrics []PromMetric) error {
	byName := make(map[string]*PromMetric)
	var names []string
	for _, m := range metrics {
		if prev, ok := byName[m.Name]; ok {
			prev.Samples = append(prev.Samples, m.Samples...)
			continue
		}
		mm := m
		byName[m.Name] = &mm
		names = append(names, m.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := byName[name]
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, promEscaper.Replace(m.Help)); err != nil {
				return err
			}
		}
		typ := m.Type
		if typ == "" {
			typ = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ); err != nil {
			return err
		}
		for _, s := range m.Samples {
			var lb strings.Builder
			if len(s.Labels) > 0 {
				lb.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						lb.WriteByte(',')
					}
					fmt.Fprintf(&lb, `%s="%s"`, l.Name, promLabelEscaper.Replace(l.Value))
				}
				lb.WriteByte('}')
			}
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", m.Name, s.Suffix, lb.String(), promValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RegisterProm adds (or replaces) a named Prometheus metrics source,
// polled on every /metrics scrape. Like Register, the function must be
// safe to call concurrently with the instrumented work.
func (r *Registry) RegisterProm(name string, source func() []PromMetric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promSources == nil {
		r.promSources = make(map[string]func() []PromMetric)
	}
	r.promSources[name] = source
}

// GatherProm polls every Prometheus source once, prepending the
// always-on ivm_up gauge so even an empty registry scrapes as a live
// target with a stable exposition.
func (r *Registry) GatherProm() []PromMetric {
	r.mu.Lock()
	sources := make([]func() []PromMetric, 0, len(r.promSources))
	names := make([]string, 0, len(r.promSources))
	for name := range r.promSources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sources = append(sources, r.promSources[name])
	}
	r.mu.Unlock()
	out := []PromMetric{Gauge("ivm_up", "Whether the ivm metrics endpoint is serving.", 1)}
	for _, f := range sources {
		out = append(out, f()...)
	}
	return out
}

// PromHandler serves the registry's Prometheus sources in text
// exposition format 0.0.4 (the /metrics endpoint of Serve).
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePromText(w, r.GatherProm()) //nolint:errcheck // client gone
	})
}

// SweepPromMetrics adapts a sweep engine to a Prometheus source:
// global and per-family cache counters, wall and detection time, and —
// when the engine records provenance — the per-path, per-theorem and
// orbit attribution counters.
func SweepPromMetrics(eng *sweep.Engine) func() []PromMetric {
	return func() []PromMetric {
		s := eng.Snapshot()
		m := s.Metrics
		out := []PromMetric{
			Gauge("ivm_sweep_workers", "Configured sweep worker pool size.", float64(s.Workers)),
			Counter("ivm_sweep_units_total", "Sweep units (pairs, triples, section pairs, specs) completed.", float64(m.PairsSwept)),
			Counter("ivm_sweep_cycles_found_total", "Cyclic steady states detected by simulation.", float64(m.CyclesFound)),
			Counter("ivm_sweep_steps_simulated_total", "Simulator clock periods stepped.", float64(m.StepsSimulated)),
			Counter("ivm_sweep_cache_hits_total", "Placements answered from the canonical-key cache.", float64(m.CacheHits)),
			Counter("ivm_sweep_cache_misses_total", "Placements that had to be simulated.", float64(m.CacheMisses)),
			Counter("ivm_sweep_analytic_hits_total", "Placements answered by the theorem-driven classifier gate.", float64(m.AnalyticHits)),
			Gauge("ivm_sweep_cache_entries", "Entries currently held by the bandwidth cache.", float64(m.CacheEntries)),
			Gauge("ivm_sweep_cache_hit_ratio", "Cache hits over cache traffic (0 when unused).", m.HitRate()),
			Gauge("ivm_sweep_analytic_hit_ratio", "Analytic answers over all placements resolved.", m.AnalyticHitRate()),
			Counter("ivm_sweep_wall_seconds_total", "Wall time spent inside sweep calls.", float64(s.WallNS)/1e9),
			Counter("ivm_sweep_cycle_detect_seconds_total", "Wall time spent in steady-state detection, summed across workers.", float64(s.CycleDetectNS)/1e9),
		}
		famNames := make([]string, 0, len(m.Families))
		for name := range m.Families {
			famNames = append(famNames, name)
		}
		sort.Strings(famNames)
		hits := PromMetric{Name: "ivm_sweep_family_cache_hits_total", Help: "Cache hits by configuration family.", Type: "counter"}
		misses := PromMetric{Name: "ivm_sweep_family_cache_misses_total", Help: "Cache misses by configuration family.", Type: "counter"}
		analytic := PromMetric{Name: "ivm_sweep_family_analytic_hits_total", Help: "Analytic gate answers by configuration family.", Type: "counter"}
		for _, name := range famNames {
			f := m.Families[name]
			hits = hits.Sample("family", name, f.Hits)
			misses = misses.Sample("family", name, f.Misses)
			analytic = analytic.Sample("family", name, f.Analytic)
		}
		if len(famNames) > 0 {
			out = append(out, hits, misses, analytic)
		}
		if s.Provenance != nil {
			out = append(out, provenancePromMetrics(*s.Provenance)...)
		}
		return out
	}
}

// provenancePromMetrics renders a provenance snapshot's attribution
// counters as Prometheus metrics.
func provenancePromMetrics(ps sweep.ProvenanceSnapshot) []PromMetric {
	path := PromMetric{Name: "ivm_provenance_path_total",
		Help: "Placements resolved by answer path (analytic, cache, sim-scalar, sim-packed), by family.", Type: "counter"}
	theorem := PromMetric{Name: "ivm_provenance_theorem_hits_total",
		Help: "Analytic answers by paper theorem/equation identifier, by family.", Type: "counter"}
	orbits := PromMetric{Name: "ivm_provenance_orbits",
		Help: "Distinct canonical orbits observed, by family.", Type: "gauge"}
	singleton := PromMetric{Name: "ivm_provenance_singleton_orbits",
		Help: "Canonical orbits observed exactly once (simulated, never reused), by family.", Type: "gauge"}
	clocks := PromMetric{Name: "ivm_provenance_sim_clocks_total",
		Help: "Lead plus cycle clocks stepped by this family's simulations.", Type: "counter"}
	names := make([]string, 0, len(ps.Families))
	for name := range ps.Families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := ps.Families[name]
		path = path.Sample("family", name, "path", sweep.PathAnalytic.String(), f.Analytic)
		path = path.Sample("family", name, "path", sweep.PathCache.String(), f.CacheHits)
		path = path.Sample("family", name, "path", sweep.PathSimScalar.String(), f.SimScalar)
		path = path.Sample("family", name, "path", sweep.PathSimPacked.String(), f.SimPacked)
		thms := make([]string, 0, len(f.Theorems))
		for id := range f.Theorems {
			thms = append(thms, id)
		}
		sort.Strings(thms)
		for _, id := range thms {
			theorem = theorem.Sample("family", name, "theorem", id, f.Theorems[id])
		}
		orbits = orbits.Sample("family", name, f.Orbits)
		singleton = singleton.Sample("family", name, f.SingletonOrbits)
		clocks = clocks.Sample("family", name, f.SimClocks)
	}
	out := []PromMetric{path, orbits, singleton, clocks,
		Counter("ivm_provenance_dropped_orbits_total",
			"Canonical orbits past the recorder capacity whose per-orbit rows were not tracked.",
			float64(ps.DroppedOrbits))}
	if len(theorem.Samples) > 0 {
		out = append(out, theorem)
	}
	return out
}
