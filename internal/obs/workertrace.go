package obs

import (
	"fmt"
	"io"
	"sort"

	"ivm/internal/sweep"
)

// Sweep worker timeline export: the engine's TimelineEvents rendered
// as a third Chrome trace process, "sweep workers", with one thread
// per pool slot. Work items, canonicalisation and simulation spans
// become 'X' slices; cache hits and misses become thread-scoped 'i'
// instants, so chrome://tracing and Perfetto paint the memoisation
// pattern directly onto the worker lanes.

// workerChromeEvents converts the timeline into trace events:
// metadata naming the worker process and its threads, then one slice
// or instant per event. Timestamps are nanoseconds mapped to the
// format's microsecond unit; slice durations are clamped to 1us so
// sub-microsecond spans stay visible.
func workerChromeEvents(events []sweep.TimelineEvent) []chromeEvent {
	out := []chromeEvent{
		meta("process_name", chromePidWorkers, 0, map[string]any{"name": "sweep workers"}),
	}
	workers := map[int]bool{}
	for _, e := range events {
		workers[e.Worker] = true
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out,
			meta("thread_name", chromePidWorkers, id, map[string]any{"name": fmt.Sprintf("worker %d", id)}))
	}
	for _, e := range events {
		args := map[string]any{}
		if e.Item >= 0 {
			args["item"] = e.Item
		}
		if e.Family != "" {
			args["family"] = e.Family
		}
		if len(args) == 0 {
			args = nil
		}
		ce := chromeEvent{
			Name: e.Kind.String(), Ts: e.StartNS / 1000,
			Pid: chromePidWorkers, Tid: e.Worker, Cat: "sweep", Args: args,
		}
		if e.Kind.Instant() {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph = "X"
			ce.Dur = e.DurNS / 1000
			if ce.Dur < 1 {
				ce.Dur = 1
			}
		}
		out = append(out, ce)
	}
	return out
}

// WriteWorkerTrace renders a sweep worker timeline (Timeline.Events
// or Snapshot.TimelineEvents) as a Chrome trace_event JSON document.
func WriteWorkerTrace(w io.Writer, events []sweep.TimelineEvent) error {
	return encodeChromeDoc(w, workerChromeEvents(events))
}

// WriteCombinedChromeTrace renders one document holding both views:
// the simulation's bank/port tracks (when simEvents is non-empty;
// banks and bankBusy describe that system) and the sweep worker
// timeline. Either half may be empty — ivmsweep's -trace-out passes a
// traced reference pair alongside the engine timeline, while
// ivmablate passes only the timeline.
func WriteCombinedChromeTrace(w io.Writer, simEvents []Event, banks, bankBusy int, workerEvents []sweep.TimelineEvent) error {
	var evs []chromeEvent
	if len(simEvents) > 0 {
		sim, err := simChromeEvents(simEvents, banks, bankBusy)
		if err != nil {
			return err
		}
		evs = sim
	}
	return encodeChromeDoc(w, append(evs, workerChromeEvents(workerEvents)...))
}
