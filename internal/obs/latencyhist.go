package obs

// Lock-free latency histogram: log2-bucketed nanosecond counters kept
// in atomics, so any number of goroutines can Observe while scrapers
// snapshot. One histogram per instrumented surface (ivmserved keeps
// one per endpoint, the sweep engine one per work item) renders as a
// native Prometheus histogram (_bucket/_sum/_count with le labels,
// see prom.go) and as estimated p50/p95/p99 quantiles in the JSON
// snapshot, ivmreport and /statusz. The quantile estimator is
// deterministic for a fixed observation set and pinned by a golden
// test.

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBucketCount is the number of log2 buckets: bucket k holds
// durations d with 2^(k-1) <= d < 2^k nanoseconds (bucket 0 holds
// sub-nanosecond observations), so 64 buckets cover every int64.
const latencyBucketCount = 64

// The exposition window: Prometheus bucket series are emitted for
// upper bounds 2^expoMinBucket..2^expoMaxBucket nanoseconds
// (~4.1us to ~17.2s) plus +Inf, keeping the per-series cardinality
// bounded while spanning every plausible request latency. Counts
// outside the window still land in _sum/_count and the edge buckets'
// cumulative totals.
const (
	expoMinBucket = 12
	expoMaxBucket = 34
)

// LatencyHist is a concurrency-safe log2 latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use and
// nil-safe (a detached nil histogram observes nothing and allocates
// nothing, mirroring the detached tracer).
type LatencyHist struct {
	buckets [latencyBucketCount]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist { return &LatencyHist{} }

// ObserveNS records one latency observation of ns nanoseconds
// (negative observations clamp to zero). It implements
// sweep.LatencySink and performs three atomic adds — no locks, no
// allocation.
func (h *LatencyHist) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Observe records one duration.
func (h *LatencyHist) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// Count returns the number of observations (0 on nil).
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// LatencyBucket is one non-empty log2 bucket of a snapshot: the count
// of observations below UpperSeconds but at or above the previous
// bucket's bound.
type LatencyBucket struct {
	UpperSeconds float64 `json:"le"`
	Count        int64   `json:"count"`
}

// LatencyHistSnapshot is one observation of a histogram: totals, the
// non-empty buckets, and the estimated quantiles. It is the JSON shape
// served under /metrics.json and written by -metrics-out.
type LatencyHistSnapshot struct {
	Count      int64           `json:"count"`
	SumSeconds float64         `json:"sum_seconds"`
	Buckets    []LatencyBucket `json:"buckets,omitempty"`
	P50        float64         `json:"p50_seconds"`
	P95        float64         `json:"p95_seconds"`
	P99        float64         `json:"p99_seconds"`
}

// bucketUpperNS returns the exclusive upper bound of bucket k in
// nanoseconds (2^k, saturating at MaxInt64 for the last bucket).
func bucketUpperNS(k int) float64 {
	if k >= 63 {
		return float64(math.MaxInt64)
	}
	return float64(int64(1) << k)
}

// Snapshot copies the counters and estimates the quantiles. The copy
// is not atomic across buckets — concurrent Observes may straddle it —
// but every counter read is itself atomic, so the snapshot is always
// internally plausible.
func (h *LatencyHist) Snapshot() LatencyHistSnapshot {
	s := LatencyHistSnapshot{}
	if h == nil {
		return s
	}
	var counts [latencyBucketCount]int64
	for k := range counts {
		counts[k] = h.buckets[k].Load()
	}
	s.SumSeconds = float64(h.sumNS.Load()) / 1e9
	for k, c := range counts {
		if c == 0 {
			continue
		}
		s.Count += c
		s.Buckets = append(s.Buckets, LatencyBucket{UpperSeconds: bucketUpperNS(k) / 1e9, Count: c})
	}
	s.P50 = quantile(counts[:], s.Count, 0.50)
	s.P95 = quantile(counts[:], s.Count, 0.95)
	s.P99 = quantile(counts[:], s.Count, 0.99)
	return s
}

// quantile estimates the p-quantile in seconds from log2 bucket
// counts by linear interpolation inside the covering bucket: the
// estimate is exact for observations on bucket bounds and within a
// factor of two otherwise — the usual histogram-quantile contract.
func quantile(counts []int64, total int64, p float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := p * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for k, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo := 0.0
			if k > 0 {
				lo = bucketUpperNS(k - 1)
			}
			hi := bucketUpperNS(k)
			frac := (rank - prev) / float64(c)
			return (lo + frac*(hi-lo)) / 1e9
		}
	}
	return bucketUpperNS(latencyBucketCount-1) / 1e9
}

// Quantile estimates the p-quantile (0 < p <= 1) of the observed
// latencies in seconds, 0 when nothing was observed.
func (h *LatencyHist) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	var counts [latencyBucketCount]int64
	var total int64
	for k := range counts {
		counts[k] = h.buckets[k].Load()
		total += counts[k]
	}
	return quantile(counts[:], total, p)
}

// fmtSeconds renders a latency in seconds as a compact duration
// ("1.2ms", "3.4s"), "-" when zero.
func fmtSeconds(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// Summary renders the snapshot's headline numbers on one line.
func (s LatencyHistSnapshot) Summary() string {
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s mean=%s",
		s.Count, fmtSeconds(s.P50), fmtSeconds(s.P95), fmtSeconds(s.P99), fmtSeconds(s.Mean()))
}

// Mean returns the mean observed latency in seconds (0 when empty).
func (s LatencyHistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}
