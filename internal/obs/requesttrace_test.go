package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteRequestTrace checks the Chrome trace_event document built
// from completed requests: the "requests" process metadata, one named
// thread per request, the outer endpoint slice carrying the request ID
// and status, and the span children.
func TestWriteRequestTrace(t *testing.T) {
	reqs := []RequestTrace{
		{ID: "req-a", Endpoint: "bandwidth", Status: 200, StartNS: 5_000, DurNS: 2_000_000,
			Spans: []Span{{Name: "decode", StartNS: 100, DurNS: 50_000}, {Name: "simulate", StartNS: 60_000, DurNS: 1_500_000}}},
		{ID: "req-b", Endpoint: "sweep", Status: 400, StartNS: 9_000_000, DurNS: 300},
	}
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  int64          `json:"dur,omitempty"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not a trace document: %v\n%s", err, buf.String())
	}
	var procName, threads, slices, spans int
	for _, ev := range doc.TraceEvents {
		if ev.Pid != chromePidRequests {
			t.Errorf("event %q on pid %d, want %d", ev.Name, ev.Pid, chromePidRequests)
		}
		switch {
		case ev.Name == "process_name":
			procName++
			if ev.Args["name"] != "requests" {
				t.Errorf("process named %v", ev.Args["name"])
			}
		case ev.Name == "thread_name":
			threads++
		case ev.Ph == "X" && (ev.Name == "bandwidth" || ev.Name == "sweep"):
			slices++
			if ev.Args["id"] == "" {
				t.Errorf("request slice %q lacks its id arg", ev.Name)
			}
			if ev.Dur < 1 {
				t.Errorf("request slice %q has dur %d, want >= 1us", ev.Name, ev.Dur)
			}
		case ev.Ph == "X":
			spans++
		}
	}
	if procName != 1 || threads != 2 || slices != 2 || spans != 2 {
		t.Errorf("got process=%d threads=%d slices=%d spans=%d, want 1/2/2/2",
			procName, threads, slices, spans)
	}
	// The export is the artifact check.sh greps a request ID out of.
	if !strings.Contains(buf.String(), "req-a") || !strings.Contains(buf.String(), "req-b") {
		t.Error("request IDs not greppable in the export")
	}
}

// TestWriteRequestTraceEmpty: no requests still yields a valid
// document (process metadata only).
func TestWriteRequestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Errorf("no traceEvents key: %s", buf.String())
	}
}
