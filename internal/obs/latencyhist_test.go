package obs

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// closeTo reports a, b equal within 1e-12 relative tolerance — tight
// enough to pin the estimator against drift while tolerating the
// decimal rendering of binary fractions.
func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12*scale
}

// TestLatencyHistBuckets pins the log2 bucketing: bucket k holds
// [2^(k-1), 2^k) nanoseconds.
func TestLatencyHistBuckets(t *testing.T) {
	h := NewLatencyHist()
	h.ObserveNS(1023) // bits.Len64 = 10: [512, 1024)
	h.ObserveNS(1024) // bits.Len64 = 11: [1024, 2048)
	h.ObserveNS(-5)   // clamps to 0: bucket 0
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3", snap.Count)
	}
	if got := snap.SumSeconds; !closeTo(got, 2047e-9) {
		t.Errorf("sum = %g, want %g", got, 2047e-9)
	}
	wantUppers := []float64{1.0 / 1e9, 1024.0 / 1e9, 2048.0 / 1e9}
	if len(snap.Buckets) != len(wantUppers) {
		t.Fatalf("buckets = %+v, want uppers %v", snap.Buckets, wantUppers)
	}
	for i, b := range snap.Buckets {
		if b.UpperSeconds != wantUppers[i] || b.Count != 1 {
			t.Errorf("bucket %d = {%g, %d}, want {%g, 1}", i, b.UpperSeconds, b.Count, wantUppers[i])
		}
	}
}

// TestLatencyHistQuantileGolden pins the quantile estimator's exact
// values on two fixed observation sets, so any change to the
// interpolation shows up as a diff here before it shows up in a
// dashboard.
func TestLatencyHistQuantileGolden(t *testing.T) {
	// 100 observations of 1000ns: all in bucket [512, 1024), so every
	// quantile interpolates linearly inside that bucket.
	uniform := NewLatencyHist()
	for i := 0; i < 100; i++ {
		uniform.ObserveNS(1000)
	}
	// One observation each at 100ns, 10us, 1ms: the quantiles walk the
	// cumulative counts across three widely separated buckets.
	spread := NewLatencyHist()
	spread.ObserveNS(100)
	spread.ObserveNS(10_000)
	spread.ObserveNS(1_000_000)

	for _, tc := range []struct {
		name          string
		h             *LatencyHist
		p50, p95, p99 float64
	}{
		{"uniform-1us", uniform, 768e-9, 998.4e-9, 1018.88e-9},
		{"spread", spread, 12288e-9, 969932.8e-9, 1032847.36e-9},
	} {
		snap := tc.h.Snapshot()
		if !closeTo(snap.P50, tc.p50) || !closeTo(snap.P95, tc.p95) || !closeTo(snap.P99, tc.p99) {
			t.Errorf("%s: quantiles (%g, %g, %g), want (%g, %g, %g)",
				tc.name, snap.P50, snap.P95, snap.P99, tc.p50, tc.p95, tc.p99)
		}
		if got := tc.h.Quantile(0.5); !closeTo(got, tc.p50) {
			t.Errorf("%s: Quantile(0.5) = %g, want %g", tc.name, got, tc.p50)
		}
	}
}

// TestLatencyHistQuantileEdges covers the estimator's boundaries: an
// empty histogram, a single observation, and p so small the rank
// clamps to the first observation.
func TestLatencyHistQuantileEdges(t *testing.T) {
	var nilHist *LatencyHist
	if nilHist.Quantile(0.5) != 0 || nilHist.Count() != 0 {
		t.Error("nil histogram must report zero quantiles and count")
	}
	nilHist.ObserveNS(5) // must not panic
	nilHist.Observe(time.Second)
	if snap := nilHist.Snapshot(); snap.Count != 0 || snap.Buckets != nil {
		t.Errorf("nil snapshot = %+v, want zero", snap)
	}

	empty := NewLatencyHist()
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	one := NewLatencyHist()
	one.ObserveNS(700) // bucket [512, 1024), rank clamps to 1
	p01, p99 := one.Quantile(0.01), one.Quantile(0.99)
	if p01 != p99 {
		t.Errorf("single observation: p01 %g != p99 %g", p01, p99)
	}
	if p01 < 512e-9 || p01 > 1024e-9 {
		t.Errorf("single observation quantile %g outside its bucket", p01)
	}
}

// TestLatencyHistSummary checks the human-readable one-liner and the
// snapshot's JSON round trip (the /metrics.json shape).
func TestLatencyHistSummary(t *testing.T) {
	h := NewLatencyHist()
	if got := h.Snapshot().Summary(); got != "n=0 p50=- p95=- p99=- mean=-" {
		t.Errorf("empty summary = %q", got)
	}
	h.Observe(2 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Mean() <= 0 {
		t.Errorf("mean = %g, want > 0", snap.Mean())
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyHistSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != snap.Count || back.P50 != snap.P50 || len(back.Buckets) != len(snap.Buckets) {
		t.Errorf("JSON round trip drifted: %+v != %+v", back, snap)
	}
}

// TestLatencyHistObserveAllocs pins the hot path at zero allocations:
// the histogram sits on the engine's per-item route.
func TestLatencyHistObserveAllocs(t *testing.T) {
	h := NewLatencyHist()
	if n := testing.AllocsPerRun(200, func() { h.ObserveNS(12345) }); n != 0 {
		t.Errorf("ObserveNS allocates %v times per call, want 0", n)
	}
}
