package obs

import (
	"strings"
	"sync"
	"testing"

	"ivm/internal/sweep"
)

// TestTraceContextRecords checks the basic record/readback contract.
func TestTraceContextRecords(t *testing.T) {
	tc := NewTraceContext("req-1")
	if tc.ID() != "req-1" {
		t.Fatalf("ID = %q", tc.ID())
	}
	s := tc.Start()
	tc.Span("decode", s)
	tc.Span(sweep.SpanSimulate, tc.Start())
	spans := tc.Spans()
	if len(spans) != 2 || spans[0].Name != "decode" || spans[1].Name != sweep.SpanSimulate {
		t.Fatalf("spans = %+v", spans)
	}
	for _, sp := range spans {
		if sp.DurNS < 0 || sp.StartNS < 0 {
			t.Errorf("span %+v has negative timing", sp)
		}
	}
	if tc.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tc.Dropped())
	}
	// Spans returns a copy: mutating it must not touch the recorder.
	spans[0].Name = "mutated"
	if tc.Spans()[0].Name != "decode" {
		t.Error("Spans exposed internal state")
	}
}

// TestTraceContextCapacity checks the drop accounting past the bound.
func TestTraceContextCapacity(t *testing.T) {
	tc := NewTraceContext("big")
	for i := 0; i < DefaultTraceContextCapacity+10; i++ {
		tc.Span("s", 0)
	}
	if got := len(tc.Spans()); got != DefaultTraceContextCapacity {
		t.Errorf("retained %d spans, want %d", got, DefaultTraceContextCapacity)
	}
	if got := tc.Dropped(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
}

// TestTraceContextConcurrent exercises the recorder from many
// goroutines, the batch-resolution shape (go test -race watches it).
func TestTraceContextConcurrent(t *testing.T) {
	tc := NewTraceContext("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tc.Span(sweep.SpanGate, tc.Start())
			}
		}()
	}
	wg.Wait()
	if got := len(tc.Spans()) + int(tc.Dropped()); got != 400 {
		t.Errorf("recorded+dropped = %d, want 400", got)
	}
}

// TestDetachedTraceContext pins the nil contract: every method is a
// no-op and the detached span path allocates nothing — the cost a
// request-free sweep pays for the seam existing.
func TestDetachedTraceContext(t *testing.T) {
	var tc *TraceContext
	if tc.ID() != "" || tc.Dropped() != 0 || tc.Spans() != nil || tc.Elapsed() != 0 {
		t.Error("nil TraceContext must read as empty")
	}
	var sink sweep.SpanSink // a nil sink, the engine's detached default
	if n := testing.AllocsPerRun(200, func() {
		if sink != nil {
			s := sink.Start()
			sink.Span(sweep.SpanSimulate, s)
		}
	}); n != 0 {
		t.Errorf("detached span path allocates %v times per op, want 0", n)
	}
	s := tc.Start()
	tc.Span("x", s) // must not panic
	if tc.Spans() != nil {
		t.Error("nil TraceContext recorded a span")
	}
}

// TestResolveBatchCtxSpans runs a real batch through the engine with a
// TraceContext attached and checks every resolve phase surfaces as a
// named span with plausible attribution.
func TestResolveBatchCtxSpans(t *testing.T) {
	eng := sweep.NewEngine(sweep.Options{Workers: 1})
	specs := []sweep.ConfigSpec{
		// m=16 nc=4 (1,2): the unique-barrier pair, provable under eq-29
		// from every start — the gate answers (span "gate" only).
		{M: 16, NC: 4, Streams: []sweep.Stream{{D: 1, B: 0, CPU: 0}, {D: 2, B: 0, CPU: 1}}},
		// d1=2, d2=4: Theorem 2's disjoint gate is active but declines
		// this overlapping placement ((b2-b1) mod gcd(8,2,4) = 0), so the
		// engine canonicalises, probes the cache, misses and simulates.
		{M: 8, NC: 2, Streams: []sweep.Stream{{D: 2, B: 0, CPU: 0}, {D: 4, B: 2, CPU: 1}}},
	}
	tc := NewTraceContext("batch-1")
	ctx := sweep.WithSpanSink(t.Context(), tc)
	results, err := eng.ResolveBatchCtx(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Path != sweep.PathAnalytic {
		t.Fatalf("spec 0 path = %v, want analytic", results[0].Path)
	}
	byName := map[string]int{}
	for _, sp := range tc.Spans() {
		byName[sp.Name]++
	}
	for _, want := range []string{sweep.SpanGate, sweep.SpanCanon, sweep.SpanCacheProbe, sweep.SpanSimulate} {
		if byName[want] == 0 {
			t.Errorf("no %q span recorded; got %v", want, byName)
		}
	}
	// Both specs probe the gate; only the second canonicalises.
	if byName[sweep.SpanGate] != 2 || byName[sweep.SpanCanon] != 1 || byName[sweep.SpanSimulate] != 1 {
		t.Errorf("span counts %v, want gate:2 canonicalise:1 simulate:1", byName)
	}
	// A context without a sink must resolve identically (the detached
	// path) — same bandwidths, no spans anywhere to observe.
	plain, err := eng.ResolveBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].BW != plain[i].BW {
			t.Errorf("spec %d: traced %v != plain %v", i, results[i].BW, plain[i].BW)
		}
	}
}

// TestSpanSinkFrom covers the context plumbing.
func TestSpanSinkFrom(t *testing.T) {
	if sweep.SpanSinkFrom(t.Context()) != nil {
		t.Error("sink on a bare context")
	}
	tc := NewTraceContext("ctx")
	got := sweep.SpanSinkFrom(sweep.WithSpanSink(t.Context(), tc))
	if got != sweep.SpanSink(tc) {
		t.Error("sink did not round-trip through the context")
	}
	if !strings.HasPrefix(tc.ID(), "ctx") {
		t.Errorf("ID = %q", tc.ID())
	}
}
