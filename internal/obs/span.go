package obs

// Request-scoped tracing: a TraceContext collects the named spans of
// one request — decode, canonicalise, cache-probe, gate, simulate,
// encode — stamped relative to the request's start. ivmserved builds
// one per API request (honoring an incoming X-Request-ID or minting
// one), threads it through context.Context into the engine's resolve
// path (it implements sweep.SpanSink), and exports completed requests
// into the Chrome-trace writer as the "requests" process
// (WriteRequestTrace) and into the slog access log. A nil TraceContext
// is fully detached: every method is a no-op that allocates nothing,
// the same zero-cost contract as the detached tracer and timeline.

import (
	"sync"
	"time"

	"ivm/internal/sweep"
)

// Span is one named interval of a traced request, stamped in
// nanoseconds relative to the request's start.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// DefaultTraceContextCapacity bounds the spans one TraceContext
// retains; a batch of thousands of specs keeps its first spans and
// counts the rest as dropped, so one request cannot hold unbounded
// memory.
const DefaultTraceContextCapacity = 512

// TraceContext is the span recorder of one request. Safe for
// concurrent use (batch resolutions record from many workers); build
// with NewTraceContext. It implements sweep.SpanSink, so it can ride
// a context.Context into Engine.ResolveBatchCtx.
type TraceContext struct {
	id    string
	epoch time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int64
}

// TraceContext must satisfy the engine's span seam.
var _ sweep.SpanSink = (*TraceContext)(nil)

// NewTraceContext builds a recorder for one request; id is the
// request's trace identifier (the X-Request-ID value). The epoch is
// now: span stamps are relative to it.
func NewTraceContext(id string) *TraceContext {
	return &TraceContext{id: id, epoch: time.Now()}
}

// ID returns the request identifier ("" on nil).
func (t *TraceContext) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns a span-start token: nanoseconds since the request
// began (0 on nil). Pass it to Span to close the interval.
func (t *TraceContext) Start() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Span records a named span begun at a Start token and ending now.
// Past DefaultTraceContextCapacity spans it only counts drops.
func (t *TraceContext) Span(name string, start int64) {
	if t == nil {
		return
	}
	end := time.Since(t.epoch).Nanoseconds()
	t.mu.Lock()
	if len(t.spans) >= DefaultTraceContextCapacity {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Name: name, StartNS: start, DurNS: end - start})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order (nil
// on a nil context).
func (t *TraceContext) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped counts spans lost to the capacity bound (0 on nil).
func (t *TraceContext) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Elapsed returns the time since the request began (0 on nil).
func (t *TraceContext) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}
