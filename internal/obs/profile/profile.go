// Package profile is the shared pprof/runtime-trace wiring of the
// CLIs: every command registers the same -cpuprofile, -memprofile and
// -trace flags through AddFlags and brackets its work with Start and
// the returned stop function. The produced files feed `go tool pprof`
// and `go tool trace`.
package profile

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the profile outputs of one run; empty fields are off.
type Config struct {
	CPUFile   string // pprof CPU profile, written while running
	MemFile   string // pprof heap profile, written at stop
	TraceFile string // Go execution trace, written while running
}

// AddFlags registers the shared profiling flags on a flag set
// (typically flag.CommandLine) and returns the config they fill.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.CPUFile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemFile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&c.TraceFile, "trace", "", "write a Go execution trace to this file")
	return c
}

// Enabled reports whether any profile output was requested.
func (c *Config) Enabled() bool {
	return c.CPUFile != "" || c.MemFile != "" || c.TraceFile != ""
}

// Start begins the configured profiling. The returned stop function
// must run once the measured work is done (defer it): it finishes the
// CPU profile and the execution trace and writes the heap profile.
// Stop is safe to call when nothing was enabled.
func (c *Config) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if c.CPUFile != "" {
		cpuF, err = os.Create(c.CPUFile)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("profile: cpu: %w", err)
		}
	}
	if c.TraceFile != "" {
		traceF, err = os.Create(c.TraceFile)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("profile: trace: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		cleanup()
		if c.MemFile != "" {
			f, err := os.Create(c.MemFile)
			if err != nil {
				return fmt.Errorf("profile: %w", err)
			}
			runtime.GC() // materialise up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profile: heap: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
