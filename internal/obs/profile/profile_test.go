package profile

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestAddFlagsRegisters(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := AddFlags(fs)
	for _, name := range []string{"cpuprofile", "memprofile", "trace"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if cfg.Enabled() {
		t.Error("zero config reports enabled")
	}
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out"}); err != nil {
		t.Fatal(err)
	}
	if !cfg.Enabled() || cfg.CPUFile != "cpu.out" {
		t.Errorf("parse did not populate config: %+v", *cfg)
	}
}

func TestStartProducesProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPUFile:   filepath.Join(dir, "cpu.out"),
		MemFile:   filepath.Join(dir, "mem.out"),
		TraceFile: filepath.Join(dir, "trace.out"),
	}
	stop, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Errorf("second stop errored: %v", err)
	}
	for _, path := range []string{cfg.CPUFile, cfg.MemFile, cfg.TraceFile} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing output %s: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestStartNoopWhenDisabled(t *testing.T) {
	var cfg Config
	stop, err := cfg.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("noop stop errored: %v", err)
	}
}
