package obs

import (
	"bytes"
	"strings"
	"testing"

	"ivm/internal/memsys"
)

// fig3Specs is the Fig. 3 barrier (m=13, nc=6, d1=1, d2=6) as stream
// specs: stream 2 is delayed by bank conflicts every cycle, so the
// phase histogram has both grant and bank-conflict structure.
var fig3Cfg = memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2}

var fig3Specs = []memsys.StreamSpec{
	{Start: 0, Distance: 1, CPU: 0},
	{Start: 0, Distance: 6, CPU: 1},
}

func TestPhaseHistogramMatchesCycleTotals(t *testing.T) {
	h, cyc, err := TracePhaseHistogram(fig3Cfg, fig3Specs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if h.CycleLength != cyc.Length || h.CycleStart != cyc.Lead {
		t.Fatalf("histogram geometry (%d,%d) disagrees with cycle (lead %d, length %d)",
			h.CycleStart, h.CycleLength, cyc.Lead, cyc.Length)
	}
	// FindCycle stops one full period after the cyclic state is first
	// entered, so the trace holds exactly one repetition: the histogram
	// totals must equal the cycle's per-period counters exactly.
	var wantBank, wantSim, wantSec int64
	for _, c := range cyc.Conflicts {
		wantBank += c.Bank
		wantSim += c.Simultaneous
		wantSec += c.Section
	}
	got := h.Totals()
	if got.Grants != cyc.TotalGrants() || got.Bank != wantBank || got.Simultaneous != wantSim || got.Section != wantSec {
		t.Errorf("histogram totals %+v, cycle says grants=%d bank=%d sim=%d sec=%d",
			got, cyc.TotalGrants(), wantBank, wantSim, wantSec)
	}
	// The transient is accounted, not silently dropped.
	if cyc.Lead > 0 && h.LeadEvents == 0 {
		t.Errorf("lead of %d clocks produced no lead events", cyc.Lead)
	}
	if int64(len(h.Phases)) != cyc.Length {
		t.Fatalf("%d phases for cycle length %d", len(h.Phases), cyc.Length)
	}
	// Per-bank counts are consistent with the per-phase totals.
	for p := range h.Phases {
		var grants, delays int64
		for b := 0; b < h.Banks; b++ {
			grants += h.BankGrants[p][b]
			delays += h.BankDelays[p][b]
		}
		if grants != h.Phases[p].Grants {
			t.Errorf("phase %d: bank grants sum %d != phase grants %d", p, grants, h.Phases[p].Grants)
		}
		if delays != h.Phases[p].Delays() {
			t.Errorf("phase %d: bank delays sum %d != phase delays %d", p, delays, h.Phases[p].Delays())
		}
	}
}

func TestPhaseHistogramSectionKinds(t *testing.T) {
	// Two streams of one CPU into a sectioned memory: section conflicts
	// must appear in the histogram's kind split.
	cfg := memsys.Config{Banks: 12, Sections: 2, BankBusy: 2, CPUs: 1}
	specs := []memsys.StreamSpec{
		{Start: 0, Distance: 2, CPU: 0},
		{Start: 2, Distance: 2, CPU: 0},
	}
	h, _, err := TracePhaseHistogram(cfg, specs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Totals().Section == 0 {
		t.Errorf("sectioned same-CPU streams produced no section conflicts: %+v", h.Totals())
	}
}

func TestPhaseHistogramFoldsRepetitions(t *testing.T) {
	// Run several repetitions through a plain tracer; every repetition
	// folds onto the same phases, so the histogram is k × one period.
	sys := memsys.New(fig3Cfg)
	tr := Attach(sys, TracerOptions{})
	sys.AddStreams(fig3Specs...)
	cyc, err := sys.FindCycle(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	one := BuildPhaseHistogram(tr.Events(), fig3Cfg.Banks, cyc.Lead, cyc.Length)
	const reps = 5
	sys.Run(cyc.Length * (reps - 1)) // tracer keeps observing
	many := BuildPhaseHistogram(tr.Events(), fig3Cfg.Banks, cyc.Lead, cyc.Length)
	for p := range many.Phases {
		if many.Phases[p].Grants != reps*one.Phases[p].Grants ||
			many.Phases[p].Bank != reps*one.Phases[p].Bank {
			t.Fatalf("phase %d does not scale with repetitions: one=%+v many=%+v",
				p, one.Phases[p], many.Phases[p])
		}
	}
}

func TestPhaseHistogramGolden(t *testing.T) {
	h, _, err := TracePhaseHistogram(fig3Cfg, fig3Specs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "phasehist.txt", []byte(h.Render()))

	var buf bytes.Buffer
	if err := WritePhaseCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	golden(t, "phasehist.csv", buf.Bytes())

	// Structural checks so the golden cannot rot silently.
	out := h.Render()
	for _, want := range []string{"phase histogram", "grants by bank", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantRows := int(h.CycleLength)*h.Banks + 1
	if len(lines) != wantRows {
		t.Errorf("CSV has %d lines, want %d", len(lines), wantRows)
	}
	if lines[0] != "phase,bank,grants,delays,phase_grants,phase_bank,phase_simultaneous,phase_section" {
		t.Errorf("bad CSV header %q", lines[0])
	}
}

func TestPhaseHistogramBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cycle length did not panic")
		}
	}()
	BuildPhaseHistogram(nil, 4, 0, 0)
}
