// Package obs is the observability layer over the simulator's
// memsys.Listener seam: a ring-buffered, optionally sampled event
// tracer cheap enough to leave attached, exporters that turn a traced
// window into a Chrome trace_event file (chrome://tracing, Perfetto),
// a CSV timeline or a plain-text bank-occupancy strip chart, and a
// metrics registry that snapshots engine/collector counters to JSON
// and serves them live over expvar and net/http/pprof.
//
// The tracer's totals (grants, delays, per-kind conflict counts) are
// kept in sync/atomic counters and are safe to read from another
// goroutine while a simulation runs — that is what -metrics-addr
// serves. The event ring itself is single-writer and meant to be read
// after the run.
package obs

import (
	"sync/atomic"

	"ivm/internal/memsys"
)

// Event is a value copy of one per-clock simulator outcome. Unlike
// memsys.Event it holds no *Port pointers, so a retained trace cannot
// keep a simulation's object graph alive.
type Event struct {
	Clock   int64               `json:"clock"`
	Port    int                 `json:"port"`
	Label   string              `json:"label,omitempty"`
	CPU     int                 `json:"cpu"`
	Bank    int                 `json:"bank"`
	Kind    memsys.ConflictKind `json:"kind"`
	Blocker int                 `json:"blocker"` // blocking port ID; -1 for grants
}

// Granted reports whether the event is a grant (Kind == NoConflict).
func (e Event) Granted() bool { return e.Kind == memsys.NoConflict }

// DefaultTracerCapacity is the event ring size when TracerOptions
// leaves Capacity zero: enough for every event of a long steady-state
// search on paper-sized systems.
const DefaultTracerCapacity = 1 << 16

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Capacity is the event ring size; 0 selects DefaultTracerCapacity.
	// When the ring is full the oldest events are overwritten (and
	// counted as dropped), so a trace always holds the most recent
	// window.
	Capacity int
	// SampleEvery records events only for clocks t with t % SampleEvery
	// == 0; values <= 1 record every clock. Sampling thins the ring but
	// never the counters, which stay exact.
	SampleEvery int64
}

// Tracer records simulator events into a preallocated ring and keeps
// exact atomic totals. It implements memsys.Listener.
type Tracer struct {
	opt  TracerOptions
	ring []Event
	n    int // filled slots
	next int // next write position

	grants     atomic.Int64
	delays     atomic.Int64
	kinds      [4]atomic.Int64 // indexed by memsys.ConflictKind
	dropped    atomic.Int64    // ring overwrites
	sampledOut atomic.Int64    // events skipped by SampleEvery

	haveClock  atomic.Bool
	firstClock atomic.Int64
	lastClock  atomic.Int64
}

// NewTracer builds a tracer with its ring preallocated.
func NewTracer(opt TracerOptions) *Tracer {
	if opt.Capacity <= 0 {
		opt.Capacity = DefaultTracerCapacity
	}
	return &Tracer{opt: opt, ring: make([]Event, opt.Capacity)}
}

// Attach builds a tracer and installs it as the system's listener.
func Attach(sys *memsys.System, opt TracerOptions) *Tracer {
	t := NewTracer(opt)
	sys.SetListener(t)
	return t
}

// Observe implements memsys.Listener.
func (t *Tracer) Observe(e memsys.Event) {
	if e.Kind == memsys.NoConflict {
		t.grants.Add(1)
	} else {
		t.delays.Add(1)
		t.kinds[e.Kind].Add(1)
	}
	if !t.haveClock.Load() {
		t.firstClock.Store(e.Clock)
		t.haveClock.Store(true)
	}
	t.lastClock.Store(e.Clock)

	if t.opt.SampleEvery > 1 && e.Clock%t.opt.SampleEvery != 0 {
		t.sampledOut.Add(1)
		return
	}
	ev := Event{Clock: e.Clock, Port: e.Port.ID, Label: e.Port.Label, CPU: e.Port.CPU, Bank: e.Bank, Kind: e.Kind, Blocker: -1}
	if e.Blocker != nil {
		ev.Blocker = e.Blocker.ID
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped.Add(1)
	}
}

// Events returns the recorded events in chronological order (the most
// recent Capacity events when the ring wrapped). The slice is a copy.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.n)
	if t.n < len(t.ring) {
		return append(out, t.ring[:t.n]...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Grants returns the exact number of grants observed.
func (t *Tracer) Grants() int64 { return t.grants.Load() }

// Delays returns the exact number of delayed port-clocks observed.
func (t *Tracer) Delays() int64 { return t.delays.Load() }

// KindCount returns the exact number of delays of one conflict kind.
func (t *Tracer) KindCount(k memsys.ConflictKind) int64 {
	if k < 0 || int(k) >= len(t.kinds) {
		return 0
	}
	return t.kinds[k].Load()
}

// Dropped returns how many recorded events the ring overwrote.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// TraceStats is the JSON-serialisable summary of a tracer: exact
// totals plus the state of the event ring.
type TraceStats struct {
	Events                int     `json:"events"`      // events currently in the ring
	Recorded              int64   `json:"recorded"`    // events ever written to the ring
	Dropped               int64   `json:"dropped"`     // ring overwrites (oldest lost)
	SampledOut            int64   `json:"sampled_out"` // skipped by SampleEvery
	Grants                int64   `json:"grants"`      // exact, unaffected by sampling
	Delays                int64   `json:"delays"`      // exact, unaffected by sampling
	BankConflicts         int64   `json:"bank_conflicts"`
	SimultaneousConflicts int64   `json:"simultaneous_conflicts"`
	SectionConflicts      int64   `json:"section_conflicts"`
	FirstClock            int64   `json:"first_clock"`
	LastClock             int64   `json:"last_clock"`
	Bandwidth             float64 `json:"bandwidth"` // grants per observed clock
}

// Stats snapshots the tracer. Counter fields are safe to snapshot
// while a simulation runs.
func (t *Tracer) Stats() TraceStats {
	s := TraceStats{
		Events:                t.n,
		Dropped:               t.dropped.Load(),
		SampledOut:            t.sampledOut.Load(),
		Grants:                t.grants.Load(),
		Delays:                t.delays.Load(),
		BankConflicts:         t.kinds[memsys.BankConflict].Load(),
		SimultaneousConflicts: t.kinds[memsys.SimultaneousConflict].Load(),
		SectionConflicts:      t.kinds[memsys.SectionConflict].Load(),
	}
	s.Recorded = int64(s.Events) + s.Dropped
	if t.haveClock.Load() {
		s.FirstClock = t.firstClock.Load()
		s.LastClock = t.lastClock.Load()
		if clocks := s.LastClock - s.FirstClock + 1; clocks > 0 {
			s.Bandwidth = float64(s.Grants) / float64(clocks)
		}
	}
	return s
}

// Tee fans one event stream out to several listeners, so a tracer can
// ride alongside the timeline recorder or a stats collector on the
// single memsys listener seam.
type Tee []memsys.Listener

// Observe implements memsys.Listener.
func (t Tee) Observe(e memsys.Event) {
	for _, l := range t {
		if l != nil {
			l.Observe(e)
		}
	}
}
