package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ivm/internal/memsys"
)

// TestCSVStreamByteIdenticalToRing: on a run that fits the ring, the
// streaming exporter and the ring exporter must produce the same
// bytes — the acceptance contract that lets either be swapped in.
func TestCSVStreamByteIdenticalToRing(t *testing.T) {
	var streamed bytes.Buffer
	sys := fig3()
	tr := NewTracer(TracerOptions{Capacity: 4096})
	cs := NewCSVStream(&streamed, StreamOptions{})
	sys.SetListener(Tee{tr, cs})
	sys.Run(500)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	var ring bytes.Buffer
	if err := WriteCSV(&ring, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), ring.Bytes()) {
		t.Errorf("stream and ring exports differ:\nstream %d bytes, ring %d bytes",
			streamed.Len(), ring.Len())
	}
	if cs.Rows() != tr.Grants()+tr.Delays() {
		t.Errorf("stream wrote %d rows, tracer observed %d events", cs.Rows(), tr.Grants()+tr.Delays())
	}
}

// TestCSVStreamLosslessPastRingCapacity: on a run ~10x the ring, the
// ring truncates to its capacity while the stream keeps every event;
// the ring's window must equal the tail of the streamed export.
func TestCSVStreamLosslessPastRingCapacity(t *testing.T) {
	const capacity = 64
	var streamed bytes.Buffer
	sys := fig3()
	tr := NewTracer(TracerOptions{Capacity: capacity})
	cs := NewCSVStream(&streamed, StreamOptions{FlushEvery: 16})
	sys.SetListener(Tee{tr, cs})

	// fig3 produces 2 events per clock; 10x the ring capacity in events.
	sys.Run(10 * capacity / 2)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Dropped == 0 {
		t.Fatal("run was meant to wrap the ring")
	}
	if cs.Rows() != st.Grants+st.Delays {
		t.Errorf("stream wrote %d rows, want all %d events", cs.Rows(), st.Grants+st.Delays)
	}

	var ring bytes.Buffer
	if err := WriteCSV(&ring, tr.Events()); err != nil {
		t.Fatal(err)
	}
	streamLines := strings.Split(strings.TrimRight(streamed.String(), "\n"), "\n")
	ringLines := strings.Split(strings.TrimRight(ring.String(), "\n"), "\n")
	if len(streamLines) != int(cs.Rows())+1 {
		t.Fatalf("stream file has %d lines for %d rows", len(streamLines), cs.Rows())
	}
	// Ring rows (minus header) are the tail of the streamed rows.
	tail := streamLines[len(streamLines)-(len(ringLines)-1):]
	for i, want := range ringLines[1:] {
		if tail[i] != want {
			t.Fatalf("row %d of ring window: stream tail %q, ring %q", i, tail[i], want)
		}
	}
	// The truncation boundary is real: the ring window starts after the
	// stream's first event.
	firstRing := strings.SplitN(ringLines[1], ",", 2)[0]
	firstStream := strings.SplitN(streamLines[1], ",", 2)[0]
	if firstRing == firstStream {
		t.Errorf("ring window unexpectedly starts at the run start (clock %s)", firstRing)
	}
}

func TestCSVStreamSampling(t *testing.T) {
	var full, sampled bytes.Buffer
	sys := fig3()
	cf := NewCSVStream(&full, StreamOptions{})
	cp := NewCSVStream(&sampled, StreamOptions{SampleEvery: 4})
	sys.SetListener(Tee{cf, cp})
	sys.Run(64)
	if err := errors.Join(cf.Close(), cp.Close()); err != nil {
		t.Fatal(err)
	}
	if cp.Rows() == 0 || cp.Rows() >= cf.Rows() {
		t.Fatalf("sampling did not thin the stream: %d vs %d rows", cp.Rows(), cf.Rows())
	}
	for _, line := range strings.Split(strings.TrimRight(sampled.String(), "\n"), "\n")[1:] {
		clock := strings.SplitN(line, ",", 2)[0]
		if !strings.HasSuffix(clock, "0") && !strings.HasSuffix(clock, "4") && !strings.HasSuffix(clock, "8") &&
			!strings.HasSuffix(clock, "2") && !strings.HasSuffix(clock, "6") {
			t.Fatalf("sampled row at odd clock: %q", line)
		}
	}
}

// errWriter fails after n writes, for sticky-error behaviour.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestCSVStreamStickyError(t *testing.T) {
	cs := NewCSVStream(&errWriter{n: 1}, StreamOptions{FlushEvery: 1})
	sys := fig3()
	sys.SetListener(cs)
	sys.Run(32)
	if cs.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if err := cs.Close(); err == nil {
		t.Fatal("Close swallowed the sticky error")
	}
	rows := cs.Rows()
	sys.Run(8)
	if cs.Rows() != rows {
		t.Error("stream kept writing after the error")
	}
}

func TestCSVStreamHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	cs := NewCSVStream(&buf, StreamOptions{})
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != csvHeader+"\n" {
		t.Errorf("empty stream wrote %q", got)
	}
	_ = memsys.Config{} // keep the memsys import tied to this file's theme
}
