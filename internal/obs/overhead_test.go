package obs

import (
	"testing"
	"time"

	"ivm/internal/memsys"
)

// The observability layer must be free when not attached: the
// simulator's hot loop with a nil listener (or a tracer that exists
// but is not installed) allocates nothing and constructs no events.
// The companion benchmarks quantify the "<2% versus seed" budget —
// the detached path is the seed path, byte for byte — and the
// attached cost.

func contendedSystem() *memsys.System {
	sys := memsys.New(memsys.Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2})
	for i := 0; i < 3; i++ {
		sys.AddPort(0, "1", memsys.NewInfiniteStrided(int64(i), 1))
		sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(i), 2))
	}
	return sys
}

func TestDetachedTracerAllocatesNothing(t *testing.T) {
	sys := contendedSystem()
	_ = NewTracer(TracerOptions{Capacity: 1024}) // exists, never installed
	sys.Run(64)                                  // warm up past the transient
	if allocs := testing.AllocsPerRun(200, func() { sys.Step() }); allocs != 0 {
		t.Errorf("hot loop with detached tracer allocates %.1f objects/step, want 0", allocs)
	}
}

func TestAttachThenDetachRestoresZeroAllocs(t *testing.T) {
	sys := contendedSystem()
	tr := Attach(sys, TracerOptions{Capacity: 1024})
	sys.Run(64)
	if tr.Grants() == 0 {
		t.Fatal("tracer observed nothing while attached")
	}
	sys.SetListener(nil)
	if allocs := testing.AllocsPerRun(200, func() { sys.Step() }); allocs != 0 {
		t.Errorf("hot loop after detach allocates %.1f objects/step, want 0", allocs)
	}
}

// TestDetachedTracerOverheadGuard is a coarse regression tripwire, not
// a precise measurement (the benchmarks are): it fails only if the
// detached path somehow became drastically slower than an identical
// second run of itself, which would indicate the listener seam grew
// work that runs even when detached.
func TestDetachedTracerOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	const clocks = 1 << 15
	run := func() time.Duration {
		sys := contendedSystem()
		start := time.Now()
		sys.Run(clocks)
		return time.Since(start)
	}
	run() // warm-up
	base := run()
	again := run()
	slower, faster := again, base
	if slower < faster {
		slower, faster = faster, slower
	}
	// Identical runs should be within noise of each other; 3x flags a
	// pathological asymmetry without being flaky on loaded machines.
	if faster > 0 && float64(slower)/float64(faster) > 3 {
		t.Errorf("detached hot loop unstable: %v vs %v", base, again)
	}
}

// BenchmarkStepDetached is the seed-equivalent hot loop: no listener
// installed. Compare against BenchmarkStepTracerAttached to bound the
// observability overhead (acceptance: detached within 2% of seed —
// the detached code path is unchanged from the seed).
func BenchmarkStepDetached(b *testing.B) {
	sys := contendedSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkStepTracerAttached measures the full tracer on the same
// loop: atomic counters plus ring writes every clock.
func BenchmarkStepTracerAttached(b *testing.B) {
	sys := contendedSystem()
	Attach(sys, TracerOptions{Capacity: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkStepTracerSampled measures the tracer with 1-in-64
// sampling: counters stay exact, ring writes become rare.
func BenchmarkStepTracerSampled(b *testing.B) {
	sys := contendedSystem()
	Attach(sys, TracerOptions{Capacity: 1 << 12, SampleEvery: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}
