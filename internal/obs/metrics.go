package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"sync"

	"ivm/internal/stats"
	"ivm/internal/sweep"
)

// Snapshot is the one-shot metrics document the CLIs write with
// -metrics-out: whichever of the three sources a run had, serialised
// together. Every field round-trips through JSON unchanged.
type Snapshot struct {
	// Engine holds the parallel sweep engine's counters: cache hit
	// rate, per-worker utilisation, steady-state detection latency.
	Engine *sweep.Snapshot `json:"engine,omitempty"`
	// Stats holds a stats.Collector's per-bank view of one simulation.
	Stats *stats.Snapshot `json:"stats,omitempty"`
	// Trace holds the tracer's exact totals for the traced window.
	Trace *TraceStats `json:"trace,omitempty"`
	// PhaseHistogram holds the per-cycle conflict phase histogram of a
	// traced steady state (ivmsim -phase-hist). Readers built before
	// this field existed ignore it: ReadSnapshot skips unknown keys.
	PhaseHistogram *PhaseHistogram `json:"phase_histogram,omitempty"`
	// ItemLatency holds the work-item latency histogram when the run
	// attached one (ivmsweep/ivmreport -latency): log2 buckets plus
	// estimated p50/p95/p99. Readers built before this field existed
	// ignore it.
	ItemLatency *LatencyHistSnapshot `json:"item_latency,omitempty"`
}

// WriteSnapshot serialises the snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: bad metrics snapshot: %w", err)
	}
	return s, nil
}

// WriteSnapshotFile writes the snapshot to a file (the CLIs'
// -metrics-out).
func WriteSnapshotFile(path string, s Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Registry is a live metrics endpoint: named sources are polled on
// every request, so a long sweep can be watched while it runs. It
// serves its own JSON (ServeHTTP); Serve mounts the Prometheus text
// exposition at /metrics, the JSON view at /metrics.json, a liveness
// probe at /healthz, expvar under /debug/vars and net/http/pprof under
// /debug/pprof.
type Registry struct {
	mu          sync.Mutex
	sources     map[string]func() any
	promSources map[string]func() []PromMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]func() any)}
}

// Register adds (or replaces) a named metrics source. The function is
// called on every poll and must be safe to call concurrently with the
// instrumented work — engine and tracer snapshots are.
func (r *Registry) Register(name string, source func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = source
}

// Gather polls every source once.
func (r *Registry) Gather() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.sources))
	for name, f := range r.sources {
		out[name] = f()
	}
	return out
}

// ServeHTTP renders the gathered sources as indented JSON (keys
// sorted by encoding/json's map ordering).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Gather()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// published guards expvar.Publish, which panics on duplicate names.
var published sync.Map

// Publish exposes the registry under the given name in the process's
// expvar set (/debug/vars). Publishing the same name twice is a
// no-op: the first registry keeps the name.
func (r *Registry) Publish(name string) {
	if _, loaded := published.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Gather() }))
}

// Mount attaches the registry's observability endpoints to mux: the
// Prometheus text exposition at /metrics, the gathered JSON view at
// /metrics.json, expvar at /debug/vars and pprof at /debug/pprof/.
// Liveness (/healthz) is deliberately NOT mounted — callers own it, so
// a server with real health state (ivmserved's store integrity) can
// report it while Serve keeps its plain "ok".
func (r *Registry) Mount(mux *http.ServeMux) {
	mux.Handle("/metrics", r.PromHandler())
	mux.Handle("/metrics.json", r)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// Serve starts an HTTP server on addr (e.g. "localhost:6060", or
// ":0" to pick a port) exposing the Mount endpoints plus a liveness
// probe at /healthz. It returns the bound address and a closer; the
// server runs until closed.
func (r *Registry) Serve(addr string) (boundAddr string, closer io.Closer, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	r.Mount(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n") //nolint:errcheck // client gone
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return ln.Addr().String(), closerFunc(func() error { return srv.Close() }), nil
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }
