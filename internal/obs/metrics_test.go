package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/stats"
	"ivm/internal/sweep"
)

// populatedSnapshot builds a snapshot with all three sources filled
// from real runs, so the round trip exercises every field.
func populatedSnapshot(t *testing.T) Snapshot {
	t.Helper()

	eng := sweep.NewEngine(sweep.Options{Workers: 2})
	eng.Grid(8, 2)
	es := eng.Snapshot()

	sys := memsys.New(memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2})
	col := stats.Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 6))
	sys.Run(128)
	cs := col.Snapshot()

	sys2 := memsys.New(memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2})
	tr := Attach(sys2, TracerOptions{Capacity: 128})
	sys2.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys2.AddPort(1, "2", memsys.NewInfiniteStrided(0, 6))
	sys2.Run(128)
	ts := tr.Stats()

	h, _, err := TracePhaseHistogram(fig3Cfg, fig3Specs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	return Snapshot{Engine: &es, Stats: &cs, Trace: &ts, PhaseHistogram: &h}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := populatedSnapshot(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, snap)
	}
	// The snapshot must expose the headline quantities by name.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache_hit_rate", "per_worker", "utilization", "bank_conflicts", "mean_cycle_clocks"} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("snapshot JSON lacks %q", key)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	snap := populatedSnapshot(t)
	path := t.TempDir() + "/metrics.json"
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Error("file round trip drifted")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestReadSnapshotIgnoresUnknownFields pins forward compatibility:
// a snapshot written by a newer build — unknown sections, unknown keys
// inside known sections, unknown histogram fields — must decode
// without error, keeping the fields this build knows.
func TestReadSnapshotIgnoresUnknownFields(t *testing.T) {
	in := `{
	  "engine": {"workers": 2, "future_counter": 7,
	             "metrics": {"cache_hits": 3, "warp_hits": 9}},
	  "trace": {"grants": 5, "quantum_flux": true},
	  "phase_histogram": {"cycle_start": 0, "cycle_length": 2, "banks": 1,
	                      "phases": [{"grants": 1, "axion": 4}, {}],
	                      "axion_field": [1, 2, 3]},
	  "hologram": {"nested": {"deep": 1}}
	}`
	s, err := ReadSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatalf("future snapshot rejected: %v", err)
	}
	if s.Engine == nil || s.Engine.Workers != 2 || s.Engine.Metrics.CacheHits != 3 {
		t.Errorf("engine section mangled: %+v", s.Engine)
	}
	if s.Trace == nil || s.Trace.Grants != 5 {
		t.Errorf("trace section mangled: %+v", s.Trace)
	}
	if s.PhaseHistogram == nil || s.PhaseHistogram.CycleLength != 2 ||
		len(s.PhaseHistogram.Phases) != 2 || s.PhaseHistogram.Phases[0].Grants != 1 {
		t.Errorf("phase histogram mangled: %+v", s.PhaseHistogram)
	}
}

// TestOldReaderSkipsPhaseHistogram simulates the reverse direction: a
// build from before the phase_histogram field decodes a current
// snapshot without error, dropping only what it does not know.
func TestOldReaderSkipsPhaseHistogram(t *testing.T) {
	snap := populatedSnapshot(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	// The pre-histogram Snapshot shape.
	var old struct {
		Engine *sweep.Snapshot `json:"engine,omitempty"`
		Stats  *stats.Snapshot `json:"stats,omitempty"`
		Trace  *TraceStats     `json:"trace,omitempty"`
	}
	if err := json.Unmarshal(buf.Bytes(), &old); err != nil {
		t.Fatalf("old reader choked on a new snapshot: %v", err)
	}
	if old.Engine == nil || old.Trace == nil || old.Stats == nil {
		t.Error("old reader lost known sections")
	}
	// And its re-encoded output still reads back here.
	data, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("old snapshot rejected: %v", err)
	}
	if back.PhaseHistogram != nil {
		t.Error("histogram resurrected from an old snapshot")
	}
}

func TestRegistryServesJSON(t *testing.T) {
	reg := NewRegistry()
	eng := sweep.NewEngine(sweep.Options{})
	eng.Grid(8, 2)
	reg.Register("engine", func() any { return eng.Snapshot() })
	reg.Register("static", func() any { return map[string]int{"answer": 42} })

	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics endpoint not JSON: %v", err)
	}
	if _, ok := doc["engine"]; !ok {
		t.Error("engine source missing")
	}
	var es sweep.Snapshot
	if err := json.Unmarshal(doc["engine"], &es); err != nil {
		t.Fatal(err)
	}
	if es.Metrics.PairsSwept == 0 {
		t.Error("engine snapshot empty")
	}
}

func TestRegistryServeEndToEnd(t *testing.T) {
	reg := NewRegistry()
	reg.Register("static", func() any { return map[string]int{"answer": 42} })
	reg.Publish("obs_test_registry")
	reg.Publish("obs_test_registry") // duplicate must not panic

	addr, closer, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback here: %v", err)
	}
	defer closer.Close()

	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !json.Valid(body) {
			t.Errorf("GET %s: not JSON: %.80s", path, body)
		}
	}

	// /metrics is the Prometheus text exposition, live even with no
	// registered sources thanks to the ivm_up gauge.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{"# TYPE ivm_up gauge", "ivm_up 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %q:\n%s", want, body)
		}
	}

	// /healthz is the liveness probe.
	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("/healthz: status %d body %q", resp.StatusCode, body)
	}
}
