package skew_test

import (
	"fmt"

	"ivm/internal/skew"
)

// Linear skewing turns the worst-case stride (the bank count itself,
// distance 0 under plain interleaving) into a full-speed stream.
func ExampleLinear() {
	plain := skew.StrideBandwidth(skew.Identity{M: 16}, 4, 16, 4096)
	skewed := skew.StrideBandwidth(skew.Linear{M: 16, S: 1}, 4, 16, 4096)
	fmt.Printf("plain %.2f skewed %.2f\n", plain, skewed)
	// Output: plain 0.25 skewed 1.00
}
