// Package skew implements bank-skewing schemes, the remedy the paper's
// conclusion points to ("the application of skewing schemes, e.g. [1],
// [4], [11], [12]") for access environments whose distances collide
// with the interleaving factor.
//
// A skewing scheme replaces the plain j = i mod m mapping with a
// permuted one so that strides sharing a large gcd with m are spread
// over more banks. Two classical schemes are provided:
//
//   - linear skewing (Budnik & Kuck): the bank of address i is
//     (i + skew * floor(i/m)) mod m — each "row" of m consecutive
//     addresses is rotated by a further skew;
//   - XOR skewing for power-of-two m: the bank is
//     (i XOR (floor(i/m) * mult)) mod m with an odd multiplier,
//     a simple hash-style permutation.
//
// Both satisfy memsys.BankMapper and can be plugged into any simulator
// configuration via memsys.NewWithMapper.
package skew

import (
	"fmt"

	"ivm/internal/memsys"
)

// Linear is the linear skewing scheme: bank(i) = (i + S*floor(i/M)) mod M.
// With S = 1 a stride of M (distance 0 under plain interleaving, the
// worst case) turns into an effective distance of 1.
type Linear struct {
	M int // number of banks
	S int // skew per row of M consecutive addresses
}

// Bank implements memsys.BankMapper.
func (l Linear) Bank(addr int64) int {
	if l.M <= 0 {
		panic(fmt.Sprintf("skew: invalid bank count %d", l.M))
	}
	m := int64(l.M)
	row := floorDiv(addr, m)
	b := (mod(addr, m) + mod(row*int64(l.S), m)) % m
	return int(b)
}

// Banks implements memsys.BankMapper.
func (l Linear) Banks() int { return l.M }

// XOR is an XOR-based skewing scheme for power-of-two bank counts:
// bank(i) = (i mod M) XOR ((floor(i/M) * Mult) mod M), Mult odd.
type XOR struct {
	M    int
	Mult int
}

// NewXOR validates the parameters (M must be a power of two, Mult odd).
func NewXOR(m, mult int) (XOR, error) {
	if m <= 0 || m&(m-1) != 0 {
		return XOR{}, fmt.Errorf("skew: XOR scheme needs a power-of-two bank count, got %d", m)
	}
	if mult%2 == 0 {
		return XOR{}, fmt.Errorf("skew: XOR multiplier must be odd, got %d", mult)
	}
	return XOR{M: m, Mult: mult}, nil
}

// Bank implements memsys.BankMapper.
func (x XOR) Bank(addr int64) int {
	m := int64(x.M)
	low := mod(addr, m)
	row := mod(floorDiv(addr, m)*int64(x.Mult), m)
	return int((low ^ row) & (m - 1))
}

// Banks implements memsys.BankMapper.
func (x XOR) Banks() int { return x.M }

// Identity is the paper's plain modulo interleaving, provided for
// symmetric ablation code.
type Identity struct{ M int }

// Bank implements memsys.BankMapper.
func (id Identity) Bank(addr int64) int { return int(mod(addr, int64(id.M))) }

// Banks implements memsys.BankMapper.
func (id Identity) Banks() int { return id.M }

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func mod(a, b int64) int64 {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}

// StrideBandwidth measures the steady-state bandwidth of a single
// infinite stream with the given word stride under a mapper, the
// figure of merit for comparing schemes.
func StrideBandwidth(mapper memsys.BankMapper, nc int, stride int64, clocks int64) float64 {
	cfg := memsys.Config{Banks: mapper.Banks(), BankBusy: nc, CPUs: 1}
	sys := memsys.NewWithMapper(cfg, mapper)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, stride))
	grants := sys.Run(clocks)
	return float64(grants) / float64(clocks)
}
