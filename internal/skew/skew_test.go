package skew

import (
	"testing"
	"testing/quick"

	"ivm/internal/memsys"
)

// Every scheme must be a permutation within each row of M consecutive
// addresses (no two addresses of a row share a bank), or banks would be
// over- and under-subscribed.
func TestSchemesPermuteRows(t *testing.T) {
	mappers := []memsys.BankMapper{
		Identity{M: 16},
		Linear{M: 16, S: 1},
		Linear{M: 16, S: 5},
		mustXOR(t, 16, 1),
		mustXOR(t, 16, 5),
		Linear{M: 12, S: 1},
	}
	for _, mp := range mappers {
		m := mp.Banks()
		for row := 0; row < 2*m+3; row++ {
			seen := make(map[int]bool, m)
			for i := 0; i < m; i++ {
				b := mp.Bank(int64(row*m + i))
				if b < 0 || b >= m {
					t.Fatalf("%T: bank %d out of range", mp, b)
				}
				if seen[b] {
					t.Fatalf("%T: row %d maps two addresses to bank %d", mp, row, b)
				}
				seen[b] = true
			}
		}
	}
}

func mustXOR(t *testing.T, m, mult int) XOR {
	t.Helper()
	x, err := NewXOR(m, mult)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewXORValidation(t *testing.T) {
	if _, err := NewXOR(12, 1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewXOR(16, 2); err == nil {
		t.Error("even multiplier accepted")
	}
	if _, err := NewXOR(16, 3); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
}

func TestLinearNegativeAddresses(t *testing.T) {
	l := Linear{M: 16, S: 1}
	f := func(a int32) bool {
		b := l.Bank(int64(a))
		return b >= 0 && b < 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The conclusion's scenario: a stride equal to the bank count is the
// worst case under plain interleaving (all accesses to one bank,
// b_eff = 1/n_c) and runs at full speed under linear skewing.
func TestLinearSkewFixesStrideM(t *testing.T) {
	const m, nc = 16, 4
	plain := StrideBandwidth(Identity{M: m}, nc, m, 4096)
	skewed := StrideBandwidth(Linear{M: m, S: 1}, nc, m, 4096)
	if plain > 0.26 {
		t.Errorf("plain stride-16 bandwidth = %v, want ~1/4", plain)
	}
	if skewed < 0.99 {
		t.Errorf("skewed stride-16 bandwidth = %v, want ~1", skewed)
	}
}

// Under linear skewing with S=1, the effective distance of stride k*m
// becomes k: stride 2*m still halves the bank set, stride m is fully
// spread.
func TestLinearSkewEffectiveDistances(t *testing.T) {
	const m, nc = 16, 4
	b32 := StrideBandwidth(Linear{M: m, S: 1}, nc, 32, 4096) // ~ distance 2: r=8 >= nc
	if b32 < 0.99 {
		t.Errorf("stride 32 under skew: %v, want ~1", b32)
	}
	b128 := StrideBandwidth(Linear{M: m, S: 1}, nc, 128, 4096) // ~ distance 8: r=2 < nc
	if b128 > 0.51 {
		t.Errorf("stride 128 under skew: %v, want ~1/2", b128)
	}
}

// XOR skewing also repairs power-of-two strides.
func TestXORSkewFixesPowerOfTwoStrides(t *testing.T) {
	const m, nc = 16, 4
	x := mustXOR(t, m, 1)
	for _, stride := range []int64{16, 32} {
		bw := StrideBandwidth(x, nc, stride, 4096)
		if bw < 0.99 {
			t.Errorf("stride %d under XOR skew: %v, want ~1", stride, bw)
		}
	}
}

// Skewing must not meaningfully hurt the strides that were already
// fine. Linear skewing keeps unit stride perfectly conflict free; XOR
// skewing pays a small toll at row boundaries (the permutation can
// revisit a recently used bank across the seam), which is a real
// property of the scheme — allow a few percent.
func TestSkewKeepsUnitStrideFast(t *testing.T) {
	const m, nc = 16, 4
	if bw := StrideBandwidth(Linear{M: m, S: 1}, nc, 1, 4096); bw < 0.999 {
		t.Errorf("linear skew: unit stride bandwidth %v", bw)
	}
	if bw := StrideBandwidth(mustXOR(t, m, 1), nc, 1, 4096); bw < 0.95 {
		t.Errorf("XOR skew: unit stride bandwidth %v", bw)
	}
}

// memsys integration: a skewed system accepts the mapper and reports
// its conflicts normally.
func TestSkewWithMemsysSystem(t *testing.T) {
	cfg := memsys.Config{Banks: 16, BankBusy: 4, CPUs: 1}
	sys := memsys.NewWithMapper(cfg, Linear{M: 16, S: 1})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 16))
	sys.Run(256)
	p := sys.Ports()[0]
	if p.Count.Grants != 256 {
		t.Fatalf("grants = %d, want 256 (skew removes the self-conflict)", p.Count.Grants)
	}
}

func TestMapperMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mapper/config mismatch did not panic")
		}
	}()
	memsys.NewWithMapper(memsys.Config{Banks: 8, BankBusy: 1}, Linear{M: 16, S: 1})
}
