// Package stats aggregates per-bank and per-clock statistics from a
// memsys simulation: bank utilisation (the fraction of clocks a bank is
// active), delay locations, grant-per-clock histograms and an overall
// bandwidth estimate. It attaches to a system as a memsys.Listener and
// is used by the CLIs and the experiment analyses to look *inside* an
// effective-bandwidth number.
package stats

import (
	"fmt"
	"strings"

	"ivm/internal/memsys"
	"ivm/internal/textplot"
)

// Collector accumulates statistics from simulation events.
type Collector struct {
	banks    int
	bankBusy int
	ports    int

	BankGrants []int64 // grants per bank
	BankDelays []int64 // delay events observed per bank
	KindCounts map[memsys.ConflictKind]int64

	// Per-port run-length bookkeeping: how long each port's current
	// streak of consecutive delayed clocks is, and the finished-run
	// histogram. Eq. 29's derivation predicts the run lengths of a
	// barrier: "the subsequent delay lasts (d2-d1)/f clock periods".
	runCur  map[int]int64
	runHist map[int]map[int64]int64

	firstClock int64
	lastClock  int64
	haveClock  bool

	// mergedClocks accumulates the observation windows of collectors
	// folded in through Merge; they are treated as disjoint in time.
	mergedClocks int64

	curClock  int64
	curGrants int
	histogram []int64 // clocks with k grants; index k

	totalGrants int64
	totalDelays int64
}

// Attach creates a collector sized for the system and installs it as
// the system's listener. The expected number of ports bounds the
// grant histogram; ports added later are accommodated automatically.
func Attach(sys *memsys.System) *Collector {
	c := &Collector{
		banks:      sys.Config().Banks,
		bankBusy:   sys.Config().BankBusy,
		BankGrants: make([]int64, sys.Config().Banks),
		BankDelays: make([]int64, sys.Config().Banks),
		KindCounts: make(map[memsys.ConflictKind]int64),
		histogram:  make([]int64, 1),
		runCur:     make(map[int]int64),
		runHist:    make(map[int]map[int64]int64),
	}
	sys.SetListener(c)
	return c
}

// Observe implements memsys.Listener.
func (c *Collector) Observe(e memsys.Event) {
	if !c.haveClock {
		c.firstClock = e.Clock
		c.curClock = e.Clock
		c.haveClock = true
	}
	if e.Clock != c.curClock {
		c.flushClock(e.Clock)
	}
	if e.Clock > c.lastClock {
		c.lastClock = e.Clock
	}
	if e.Kind == memsys.NoConflict {
		c.BankGrants[e.Bank]++
		c.totalGrants++
		c.curGrants++
		c.endRun(e.Port.ID)
		return
	}
	c.BankDelays[e.Bank]++
	c.totalDelays++
	c.KindCounts[e.Kind]++
	c.runCur[e.Port.ID]++
}

// endRun closes a port's current delay streak into the histogram.
func (c *Collector) endRun(port int) {
	n := c.runCur[port]
	if n == 0 {
		return
	}
	h := c.runHist[port]
	if h == nil {
		h = make(map[int64]int64)
		c.runHist[port] = h
	}
	h[n]++
	c.runCur[port] = 0
}

// DelayRunLengths returns the finished delay-run histogram of a port:
// for each streak length, how many times a run of exactly that many
// consecutive delayed clocks occurred. A barrier-situation produces
// runs of a single characteristic length ((d2-d1)/f, per Eq. 29's
// derivation).
func (c *Collector) DelayRunLengths(port int) map[int64]int64 {
	out := make(map[int64]int64, len(c.runHist[port]))
	for k, v := range c.runHist[port] {
		out[k] = v
	}
	return out
}

// flushClock records the finished clock's grant count and accounts the
// silent (eventless) clocks in between as zero-grant clocks.
func (c *Collector) flushClock(next int64) {
	c.bump(c.curGrants)
	for t := c.curClock + 1; t < next; t++ {
		c.bump(0)
	}
	c.curClock = next
	c.curGrants = 0
}

func (c *Collector) bump(k int) {
	for len(c.histogram) <= k {
		c.histogram = append(c.histogram, 0)
	}
	c.histogram[k]++
}

// ObservedClocks returns the number of clock periods covered by the
// observed events (inclusive of silent gaps between them), plus the
// windows of any collectors folded in through Merge.
func (c *Collector) ObservedClocks() int64 {
	var own int64
	if c.haveClock {
		own = c.lastClock - c.firstClock + 1
	}
	return own + c.mergedClocks
}

// Merge folds another collector's totals into c, so per-worker
// collectors of a parallel sweep can be combined into one aggregate
// view. The two observation windows are treated as disjoint in time:
// observed clocks add, and rate estimates (Bandwidth, Utilization)
// become averages over the combined window. Only finished delay runs
// are folded; a streak still open in o when Merge is called is
// dropped, exactly as it is by o's own accessors. Merge panics if the
// collectors were attached to systems of different geometry.
func (c *Collector) Merge(o *Collector) {
	if o == nil || o == c {
		return
	}
	if o.banks != c.banks || o.bankBusy != c.bankBusy {
		panic(fmt.Sprintf("stats: cannot merge collectors for %d banks (busy %d) into %d banks (busy %d)",
			o.banks, o.bankBusy, c.banks, c.bankBusy))
	}
	for b := range o.BankGrants {
		c.BankGrants[b] += o.BankGrants[b]
		c.BankDelays[b] += o.BankDelays[b]
	}
	for k, v := range o.KindCounts {
		c.KindCounts[k] += v
	}
	for port, hist := range o.runHist {
		dst := c.runHist[port]
		if dst == nil {
			dst = make(map[int64]int64, len(hist))
			c.runHist[port] = dst
		}
		for n, v := range hist {
			dst[n] += v
		}
	}
	for k, v := range o.histogram {
		for len(c.histogram) <= k {
			c.histogram = append(c.histogram, 0)
		}
		c.histogram[k] += v
	}
	c.totalGrants += o.totalGrants
	c.totalDelays += o.totalDelays
	c.mergedClocks += o.ObservedClocks()
}

// TotalGrants returns the number of granted requests observed.
func (c *Collector) TotalGrants() int64 { return c.totalGrants }

// TotalDelays returns the number of delayed port-clocks observed.
func (c *Collector) TotalDelays() int64 { return c.totalDelays }

// Bandwidth returns grants per clock over the observation window — an
// estimate of b_eff that converges to the cyclic value for long runs.
func (c *Collector) Bandwidth() float64 {
	n := c.ObservedClocks()
	if n == 0 {
		return 0
	}
	return float64(c.totalGrants) / float64(n)
}

// Utilization returns the fraction of observed clocks the bank spent
// active (each grant occupies it for the bank busy time). The tail
// service of the final grants may extend past the window; the estimate
// is clamped to 1.
func (c *Collector) Utilization(bank int) float64 {
	n := c.ObservedClocks()
	if n == 0 {
		return 0
	}
	u := float64(c.BankGrants[bank]*int64(c.bankBusy)) / float64(n)
	if u > 1 {
		u = 1
	}
	return u
}

// GrantHistogram returns, for each k, the number of finished clocks in
// which exactly k requests were granted. Call after the run; the
// current (unfinished) clock is not included.
func (c *Collector) GrantHistogram() []int64 {
	out := make([]int64, len(c.histogram))
	copy(out, c.histogram)
	return out
}

// HottestBank returns the bank with the most grants.
func (c *Collector) HottestBank() int {
	best := 0
	for b, g := range c.BankGrants {
		if g > c.BankGrants[best] {
			best = b
		}
	}
	return best
}

// Snapshot is the JSON-serialisable view of a Collector, written by
// the CLIs' -metrics-out flag. It round-trips through JSON unchanged.
type Snapshot struct {
	Banks                 int       `json:"banks"`
	BankBusy              int       `json:"bank_busy"`
	ObservedClocks        int64     `json:"observed_clocks"`
	Grants                int64     `json:"grants"`
	Delays                int64     `json:"delays"`
	Bandwidth             float64   `json:"bandwidth"`
	BankConflicts         int64     `json:"bank_conflicts"`
	SimultaneousConflicts int64     `json:"simultaneous_conflicts"`
	SectionConflicts      int64     `json:"section_conflicts"`
	BankGrants            []int64   `json:"bank_grants"`
	BankDelays            []int64   `json:"bank_delays"`
	Utilization           []float64 `json:"utilization"`
	GrantHistogram        []int64   `json:"grant_histogram"`
}

// Snapshot exports the collector's aggregates in serialisable form.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Banks:                 c.banks,
		BankBusy:              c.bankBusy,
		ObservedClocks:        c.ObservedClocks(),
		Grants:                c.totalGrants,
		Delays:                c.totalDelays,
		Bandwidth:             c.Bandwidth(),
		BankConflicts:         c.KindCounts[memsys.BankConflict],
		SimultaneousConflicts: c.KindCounts[memsys.SimultaneousConflict],
		SectionConflicts:      c.KindCounts[memsys.SectionConflict],
		BankGrants:            append([]int64(nil), c.BankGrants...),
		BankDelays:            append([]int64(nil), c.BankDelays...),
		Utilization:           make([]float64, c.banks),
		GrantHistogram:        c.GrantHistogram(),
	}
	for b := 0; b < c.banks; b++ {
		s.Utilization[b] = c.Utilization(b)
	}
	return s
}

// Report renders a per-bank utilisation table plus the conflict-kind
// totals.
func (c *Collector) Report() string {
	var b strings.Builder
	tbl := &textplot.Table{Header: []string{"bank", "grants", "delays seen", "utilisation"}}
	for bank := 0; bank < c.banks; bank++ {
		tbl.Add(bank, c.BankGrants[bank], c.BankDelays[bank], fmt.Sprintf("%.3f", c.Utilization(bank)))
	}
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nbandwidth estimate: %.4f grants/clock over %d clocks\n", c.Bandwidth(), c.ObservedClocks())
	fmt.Fprintf(&b, "delays: %d bank, %d simultaneous, %d section\n",
		c.KindCounts[memsys.BankConflict], c.KindCounts[memsys.SimultaneousConflict], c.KindCounts[memsys.SectionConflict])
	return b.String()
}
