package stats

import (
	"strings"
	"testing"

	"ivm/internal/memsys"
)

func TestCollectorSingleStream(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 2, CPUs: 1})
	c := Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(400)

	if c.TotalGrants() != 400 {
		t.Fatalf("grants = %d", c.TotalGrants())
	}
	if c.TotalDelays() != 0 {
		t.Fatalf("delays = %d", c.TotalDelays())
	}
	// d=1 over 4 banks: each bank gets 100 grants, busy 2 of every 4
	// clocks: utilisation 0.5.
	for bank := 0; bank < 4; bank++ {
		if g := c.BankGrants[bank]; g != 100 {
			t.Fatalf("bank %d grants = %d", bank, g)
		}
		u := c.Utilization(bank)
		if u < 0.49 || u > 0.51 {
			t.Fatalf("bank %d utilisation = %v", bank, u)
		}
	}
	if bw := c.Bandwidth(); bw < 0.99 || bw > 1.01 {
		t.Fatalf("bandwidth = %v", bw)
	}
}

func TestCollectorHistogram(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 8, BankBusy: 2, CPUs: 2})
	c := Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(4, 1))
	sys.Run(100)
	h := c.GrantHistogram()
	// Disjoint phases, both full speed: every finished clock has 2
	// grants.
	if len(h) < 3 {
		t.Fatalf("histogram = %v", h)
	}
	if h[2] < 95 {
		t.Fatalf("histogram = %v, expected ~99 clocks with 2 grants", h)
	}
	if h[0] != 0 || h[1] != 0 {
		t.Fatalf("histogram = %v, expected no 0/1-grant clocks", h)
	}
}

func TestCollectorConflictKinds(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 8, BankBusy: 4, CPUs: 2})
	c := Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 0)) // hammers bank 0
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 0)) // same bank, other CPU
	sys.Run(64)
	if c.KindCounts[memsys.SimultaneousConflict] == 0 {
		t.Error("expected simultaneous conflicts")
	}
	if c.KindCounts[memsys.BankConflict] == 0 {
		t.Error("expected bank conflicts")
	}
	if c.BankDelays[0] == 0 {
		t.Error("delays must be attributed to bank 0")
	}
	if c.HottestBank() != 0 {
		t.Errorf("hottest bank = %d", c.HottestBank())
	}
}

func TestCollectorSilentClocks(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 4, CPUs: 1})
	c := Attach(sys)
	// Self-conflicting stream: d=0, one grant every 4 clocks; the three
	// waiting clocks produce bank-conflict events, so all clocks carry
	// events — bandwidth ~1/4.
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 0))
	sys.Run(400)
	if bw := c.Bandwidth(); bw < 0.24 || bw > 0.26 {
		t.Fatalf("bandwidth = %v, want ~0.25", bw)
	}
	h := c.GrantHistogram()
	if h[0] == 0 {
		t.Fatal("expected zero-grant clocks")
	}
}

func TestUtilizationClamped(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 2, BankBusy: 8, CPUs: 1})
	c := Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(10)
	for bank := 0; bank < 2; bank++ {
		if u := c.Utilization(bank); u > 1 {
			t.Fatalf("utilisation %v > 1", u)
		}
	}
}

func TestReportRenders(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 2, CPUs: 1})
	c := Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(40)
	r := c.Report()
	for _, want := range []string{"bank", "utilisation", "bandwidth estimate", "delays:"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
}

func TestEmptyCollector(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 2, CPUs: 1})
	c := Attach(sys)
	if c.ObservedClocks() != 0 || c.Bandwidth() != 0 || c.Utilization(0) != 0 {
		t.Fatal("empty collector must report zeros")
	}
}

// Eq. 29's microstructure, observed: in the Fig. 3 barrier (d1=1,
// d2=6, f=1) the delayed stream's delay streaks all have length
// (d2-d1)/f = 5 in the steady state; in Fig. 5 (d1=1, d2=3) length 2.
func TestDelayRunLengthsMatchEq29(t *testing.T) {
	check := func(m, nc, b2, d2 int, wantRun int64) {
		t.Helper()
		sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
		c := Attach(sys)
		sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
		sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
		sys.Run(int64(40 * m * nc))
		runs := c.DelayRunLengths(1)
		if len(runs) == 0 {
			t.Fatalf("d2=%d: no delay runs", d2)
		}
		// All steady-state runs have the characteristic length; allow a
		// single deviating run from the startup transient.
		other := int64(0)
		for length, count := range runs {
			if length != wantRun {
				other += count
			}
		}
		if other > 1 {
			t.Fatalf("d2=%d: runs %v, want nearly all of length %d", d2, runs, wantRun)
		}
	}
	check(13, 6, 0, 6, 5) // Fig. 3
	check(13, 4, 7, 3, 2) // Fig. 5
}

// Merging two per-worker collectors must equal one collector that saw
// both workloads: totals, histograms and rate denominators all add.
func TestMergeEqualsCombinedObservation(t *testing.T) {
	run := func(d int64, clocks int64) *Collector {
		sys := memsys.New(memsys.Config{Banks: 8, BankBusy: 4, CPUs: 2})
		c := Attach(sys)
		sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
		sys.AddPort(1, "2", memsys.NewInfiniteStrided(2, d))
		sys.Run(clocks)
		return c
	}
	a := run(0, 200)
	b := run(3, 120)
	wantGrants := a.TotalGrants() + b.TotalGrants()
	wantDelays := a.TotalDelays() + b.TotalDelays()
	wantClocks := a.ObservedClocks() + b.ObservedClocks()
	wantBank0 := a.BankGrants[0] + b.BankGrants[0]
	wantKind := a.KindCounts[memsys.BankConflict] + b.KindCounts[memsys.BankConflict]
	aHist := a.GrantHistogram()
	bHist := b.GrantHistogram()

	a.Merge(b)
	if a.TotalGrants() != wantGrants || a.TotalDelays() != wantDelays {
		t.Fatalf("merged grants/delays = %d/%d, want %d/%d", a.TotalGrants(), a.TotalDelays(), wantGrants, wantDelays)
	}
	if a.ObservedClocks() != wantClocks {
		t.Fatalf("merged clocks = %d, want %d", a.ObservedClocks(), wantClocks)
	}
	if a.BankGrants[0] != wantBank0 {
		t.Fatalf("merged bank 0 grants = %d, want %d", a.BankGrants[0], wantBank0)
	}
	if a.KindCounts[memsys.BankConflict] != wantKind {
		t.Fatalf("merged bank conflicts = %d, want %d", a.KindCounts[memsys.BankConflict], wantKind)
	}
	merged := a.GrantHistogram()
	for k := range merged {
		want := int64(0)
		if k < len(aHist) {
			want += aHist[k]
		}
		if k < len(bHist) {
			want += bHist[k]
		}
		if merged[k] != want {
			t.Fatalf("histogram[%d] = %d, want %d", k, merged[k], want)
		}
	}
	if bw := a.Bandwidth(); bw != float64(wantGrants)/float64(wantClocks) {
		t.Fatalf("merged bandwidth = %v", bw)
	}
	// Merging nil or self is a no-op.
	a.Merge(nil)
	a.Merge(a)
	if a.TotalGrants() != wantGrants {
		t.Fatal("nil/self merge changed totals")
	}
}

func TestMergeGeometryMismatchPanics(t *testing.T) {
	mk := func(banks int) *Collector {
		sys := memsys.New(memsys.Config{Banks: banks, BankBusy: 2, CPUs: 1})
		return Attach(sys)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched geometries must panic")
		}
	}()
	mk(4).Merge(mk(8))
}

func TestDelayRunLengthsEmptyForFreePair(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 12, BankBusy: 3, CPUs: 2})
	c := Attach(sys)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(3, 7))
	sys.Run(400)
	if runs := c.DelayRunLengths(1); len(runs) != 0 {
		t.Fatalf("conflict-free pair has delay runs: %v", runs)
	}
}
