// Package trace records per-clock, per-bank activity of a memsys
// simulation and renders it in the timeline style of Figures 2–9 of
// Oed & Lange (1985): one row per bank, one column per clock period,
// where
//
//	1,2,…  the bank is servicing an access of that stream (repeated
//	       for the n_c clocks the bank stays active),
//	<      the higher-numbered stream is delayed at this bank by the
//	       lower-numbered one,
//	>      the lower-numbered stream is delayed by the higher one,
//	*      the stream is delayed by a section conflict,
//	.      the bank is idle.
//
// Delay markers overwrite service digits in the cell where the delayed
// request is waiting, exactly as in the paper's figures.
package trace

import (
	"fmt"
	"strings"

	"ivm/internal/memsys"
)

// Cell codes: zero means idle.
type cell struct {
	label byte // service digit, 0 if none
	mark  byte // delay marker, 0 if none
}

// Recorder implements memsys.Listener and captures a window of clocks.
type Recorder struct {
	banks    int
	busy     int // n_c: how many cells one grant paints
	from, to int64
	grid     map[int64]*column
}

type column struct {
	cells []cell
}

// NewRecorder records clocks in [from, to) for a system with the given
// bank count and bank busy time.
func NewRecorder(banks, bankBusy int, from, to int64) *Recorder {
	if banks <= 0 || bankBusy <= 0 || to < from {
		panic(fmt.Sprintf("trace: bad recorder window banks=%d busy=%d [%d,%d)", banks, bankBusy, from, to))
	}
	return &Recorder{banks: banks, busy: bankBusy, from: from, to: to, grid: make(map[int64]*column)}
}

// Attach creates a recorder sized for the system and installs it as the
// system's listener.
func Attach(sys *memsys.System, from, to int64) *Recorder {
	r := NewRecorder(sys.Config().Banks, sys.Config().BankBusy, from, to)
	sys.SetListener(r)
	return r
}

func (r *Recorder) col(t int64) *column {
	c := r.grid[t]
	if c == nil {
		c = &column{cells: make([]cell, r.banks)}
		r.grid[t] = c
	}
	return c
}

// Observe implements memsys.Listener.
func (r *Recorder) Observe(e memsys.Event) {
	if e.Kind == memsys.NoConflict {
		label := labelByte(e.Port)
		for dt := 0; dt < r.busy; dt++ {
			t := e.Clock + int64(dt)
			if t < r.from || t >= r.to {
				continue
			}
			r.col(t).cells[e.Bank].label = label
		}
		return
	}
	if e.Clock < r.from || e.Clock >= r.to {
		return
	}
	r.col(e.Clock).cells[e.Bank].mark = markFor(e)
}

func labelByte(p *memsys.Port) byte {
	if p.Label != "" {
		return p.Label[0]
	}
	return byte('1' + p.ID%9)
}

func markFor(e memsys.Event) byte {
	if e.Kind == memsys.SectionConflict {
		return '*'
	}
	// '<' : delay of the higher label by the lower one (paper: "<"
	// depicts a delay of 2 by 1); '>' the other way round.
	if e.Blocker != nil && labelByte(e.Blocker) > labelByte(e.Port) {
		return '>'
	}
	return '<'
}

// Render produces the timeline. Each output line is
// "bank <j>  <cells...>"; delay markers overwrite service digits.
func (r *Recorder) Render() string {
	var b strings.Builder
	width := len(fmt.Sprintf("%d", r.banks-1))
	for bank := 0; bank < r.banks; bank++ {
		fmt.Fprintf(&b, "%*d ", width, bank)
		for t := r.from; t < r.to; t++ {
			b.WriteByte(r.cellAt(bank, t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderWithSections prefixes every row with the bank's section, in the
// style of Figures 7–9 ("section bank").
func (r *Recorder) RenderWithSections(section func(bank int) int) string {
	var b strings.Builder
	width := len(fmt.Sprintf("%d", r.banks-1))
	for bank := 0; bank < r.banks; bank++ {
		fmt.Fprintf(&b, "%d - %*d ", section(bank), width, bank)
		for t := r.from; t < r.to; t++ {
			b.WriteByte(r.cellAt(bank, t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderWithPriority prepends the priority row of Figures 8–9: for each
// clock period, the label of the port holding the highest priority
// (all "1"s under a fixed rule, rotating under the cyclic rule).
// holder(t) must return the priority holder's label byte at clock t.
func (r *Recorder) RenderWithPriority(section func(bank int) int, holder func(t int64) byte) string {
	var b strings.Builder
	width := len(fmt.Sprintf("%d", r.banks-1))
	fmt.Fprintf(&b, "prio %*s ", width, "")
	for t := r.from; t < r.to; t++ {
		b.WriteByte(holder(t))
	}
	b.WriteByte('\n')
	b.WriteString(r.RenderWithSections(section))
	return b.String()
}

func (r *Recorder) cellAt(bank int, t int64) byte {
	c := r.grid[t]
	if c == nil {
		return '.'
	}
	cl := c.cells[bank]
	if cl.mark != 0 {
		return cl.mark
	}
	if cl.label != 0 {
		return cl.label
	}
	return '.'
}

// Row returns the rendered cells of a single bank row as a string.
func (r *Recorder) Row(bank int) string {
	var b strings.Builder
	for t := r.from; t < r.to; t++ {
		b.WriteByte(r.cellAt(bank, t))
	}
	return b.String()
}

// CountMarks counts occurrences of each marker byte over the window;
// useful in tests ("the figure contains delays").
func (r *Recorder) CountMarks() map[byte]int {
	counts := make(map[byte]int)
	for bank := 0; bank < r.banks; bank++ {
		for t := r.from; t < r.to; t++ {
			counts[r.cellAt(bank, t)]++
		}
	}
	return counts
}

// Legend returns the marker legend used by Render.
func Legend() string {
	return "digits: bank servicing that stream; '<' delay of higher stream by lower; '>' delay of lower by higher; '*' section conflict; '.' idle"
}
