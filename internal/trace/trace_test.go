package trace

import (
	"strings"
	"testing"

	"ivm/internal/memsys"
)

func TestRecorderSingleStream(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 2, CPUs: 1})
	rec := Attach(sys, 0, 8)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(8)
	// d=1, nc=2: bank 0 serviced at clocks 0-1, 4-5; bank 1 at 1-2, 5-6...
	if got := rec.Row(0); got != "11..11.." {
		t.Errorf("Row(0) = %q", got)
	}
	if got := rec.Row(1); got != ".11..11." {
		t.Errorf("Row(1) = %q", got)
	}
	if got := rec.Row(3); got != "...11..1" {
		t.Errorf("Row(3) = %q", got)
	}
}

func TestRecorderDelayMarkers(t *testing.T) {
	// Self-conflicting stream: m=4, d=2, nc=4 -> revisits bank 0 after
	// 2 clocks and waits 2 clocks ('<' marks are not used for
	// single-stream bank conflicts against itself... the blocker is the
	// same port, so the mark is '<' with equal labels).
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 4, CPUs: 2})
	rec := Attach(sys, 0, 12)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 1))
	sys.Run(12)
	// Port 2 is blocked at bank 0 by port 1 (simultaneous conflict at
	// clock 0, bank conflicts after): '<' because blocker label 1 < 2.
	row0 := rec.Row(0)
	if !strings.Contains(row0, "<") {
		t.Errorf("Row(0) = %q, expected '<' delay marks", row0)
	}
	marks := rec.CountMarks()
	if marks['<'] == 0 {
		t.Errorf("CountMarks = %v, expected '<'", marks)
	}
	if marks['*'] != 0 {
		t.Errorf("CountMarks = %v, no section conflicts expected", marks)
	}
}

func TestRecorderSectionMarker(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 8, Sections: 2, BankBusy: 2, CPUs: 1})
	rec := Attach(sys, 0, 6)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1)) // bank 0, section 0
	sys.AddPort(0, "2", memsys.NewInfiniteStrided(2, 1)) // bank 2, section 0
	sys.Run(6)
	marks := rec.CountMarks()
	if marks['*'] == 0 {
		t.Errorf("CountMarks = %v, expected '*' section-conflict marks", marks)
	}
}

func TestRenderShape(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 3, BankBusy: 1, CPUs: 1})
	rec := Attach(sys, 0, 5)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(5)
	out := rec.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Render produced %d lines, want 3:\n%s", len(lines), out)
	}
	for _, ln := range lines {
		// "j " prefix plus 5 cells.
		if len(ln) != 2+5 {
			t.Fatalf("line %q has wrong width", ln)
		}
	}
	if lines[0] != "0 1..1." {
		t.Errorf("line 0 = %q", lines[0])
	}
}

func TestRenderWithSections(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, Sections: 2, BankBusy: 1, CPUs: 1})
	rec := Attach(sys, 0, 4)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(4)
	out := rec.RenderWithSections(sys.Section)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "0 - 0 ") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1 - 1 ") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestWindowClipping(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, BankBusy: 3, CPUs: 1})
	rec := Attach(sys, 2, 6) // only clocks [2, 6)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.Run(8)
	// Bank 0 is serviced clocks 0-2 and 4-6; visible: clock 2 tail of
	// the first service and clocks 4-5 of the second.
	if got := rec.Row(0); got != "1.11" {
		t.Errorf("Row(0) = %q", got)
	}
}

func TestNewRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad window did not panic")
		}
	}()
	NewRecorder(4, 2, 10, 5)
}

func TestRenderWithPriority(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 4, Sections: 2, BankBusy: 1, CPUs: 1, Priority: memsys.CyclicPriority})
	rec := Attach(sys, 0, 6)
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(0, "2", memsys.NewInfiniteStrided(1, 1))
	sys.Run(6)
	out := rec.RenderWithPriority(sys.Section, func(t int64) byte {
		p := sys.PriorityHolderAt(t)
		return p.Label[0]
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "prio") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(lines[0], "121212") {
		t.Fatalf("cyclic priority row %q", lines[0])
	}
}

func TestLegendMentionsAllMarks(t *testing.T) {
	l := Legend()
	for _, tok := range []string{"<", ">", "*", "."} {
		if !strings.Contains(l, tok) {
			t.Errorf("legend misses %q", tok)
		}
	}
}
