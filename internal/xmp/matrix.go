package xmp

import (
	"fmt"

	"ivm/internal/core"
	"ivm/internal/machine"
	"ivm/internal/vector"
)

// The conclusion's programmer guidance, made measurable: "In case of
// higher-dimensional arrays care must be taken when rows (in case of
// Fortran) or diagonals are to be accessed. A safe method is to choose
// the dimension of arrays so that they are relatively prime to the
// number of banks." This experiment sweeps column, row and diagonal
// access of a square matrix for several leading dimensions and reports
// the time of a vadd over the accessed vector, plus the analytic
// distance and single-stream bandwidth.

// AccessPattern names a matrix traversal.
type AccessPattern int

const (
	// ColumnAccess walks down a column: distance 1.
	ColumnAccess AccessPattern = iota
	// RowAccess walks along a row: distance = leading dimension.
	RowAccess
	// DiagonalAccess walks the main diagonal: distance = leading
	// dimension + 1.
	DiagonalAccess
)

func (p AccessPattern) String() string {
	switch p {
	case ColumnAccess:
		return "column"
	case RowAccess:
		return "row"
	case DiagonalAccess:
		return "diagonal"
	default:
		return fmt.Sprintf("AccessPattern(%d)", int(p))
	}
}

// MatrixResult is one cell of the study.
type MatrixResult struct {
	LeadingDim int
	Pattern    AccessPattern
	Distance   int     // bank-space distance (Eq. 33)
	Predicted  float64 // single-stream b_eff ceiling min(1, r/n_c)
	Clocks     int64   // measured vadd time over n elements
}

// MatrixAccess measures one (leading dimension, pattern) combination:
// C = A + B elementwise over n elements taken from two Fortran matrices
// declared (ldim, 2n) — tall enough that a row or diagonal of n
// elements exists; only the leading dimension matters for the stride.
func MatrixAccess(ldim int, pattern AccessPattern, n int, cfg machine.Config) MatrixResult {
	cfg = cfg.Normalized()
	mem := MemConfig()

	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", ldim, 2*n)
	b := cb.Declare("B", ldim, 2*n)
	out := cb.Declare("C", ldim*2*n+1)

	var stride int64
	switch pattern {
	case ColumnAccess:
		stride = 1
	case RowAccess:
		stride = a.DimStride(1)
	case DiagonalAccess:
		stride = a.DiagonalStride()
	default:
		panic(fmt.Sprintf("xmp: unknown pattern %d", int(pattern)))
	}
	if int64(n-1)*stride >= a.Words() {
		panic(fmt.Sprintf("xmp: %d elements at stride %d exceed a %dx%d matrix", n, stride, ldim, ldim))
	}

	d := int(stride % int64(mem.Banks))
	res := MatrixResult{
		LeadingDim: ldim,
		Pattern:    pattern,
		Distance:   d,
		Predicted:  core.SingleStreamBandwidth(mem.Banks, mem.BankBusy, d).Float(),
	}

	sim := machine.NewSimulation(mem, 1, cfg)
	var prog []machine.Instr
	offset := int64(0)
	remaining := n
	si := 0
	for remaining > 0 {
		sn := remaining
		if sn > cfg.VectorLength {
			sn = cfg.VectorLength
		}
		delay := 0
		if si > 0 {
			delay = cfg.StripOverhead
		}
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: 0, Base: a.Base + offset, Stride: stride, N: sn, IssueDelay: delay},
			machine.Instr{Op: machine.OpLoad, Dst: 1, Base: b.Base + offset, Stride: stride, N: sn},
			machine.Instr{Op: machine.OpAdd, Dst: 2, Src1: 0, Src2: 1, N: sn},
			machine.Instr{Op: machine.OpStore, Src1: 2, Base: out.Base + offset, Stride: stride, N: sn},
		)
		offset += int64(sn) * stride
		remaining -= sn
		si++
	}
	sim.CPUs[0].LoadProgram(prog)
	clocks, done := sim.Run(int64(n) * int64(stride+2) * 1000)
	if !done {
		panic(fmt.Sprintf("xmp: matrix access ldim=%d %s did not finish", ldim, pattern))
	}
	res.Clocks = clocks
	return res
}

// MatrixStudy sweeps the patterns over the given leading dimensions.
func MatrixStudy(ldims []int, n int, cfg machine.Config) []MatrixResult {
	var out []MatrixResult
	for _, ld := range ldims {
		for _, p := range []AccessPattern{ColumnAccess, RowAccess, DiagonalAccess} {
			out = append(out, MatrixAccess(ld, p, n, cfg))
		}
	}
	return out
}
