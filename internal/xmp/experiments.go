package xmp

import (
	"fmt"

	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/skew"
	"ivm/internal/vector"
	"ivm/internal/workload"
)

// This file contains the experiments beyond Fig. 10 that the paper's
// discussion motivates:
//
//   - the conclusion's multitasking recommendation ("In order to build
//     an environment with uniform access streams it may be worthwhile
//     to consider the multitasking option"): split the triad across
//     both CPUs so that the competing streams have identical distances;
//   - the conclusion's skewing recommendation, applied to the full
//     machine model rather than a single stream;
//   - stride sweeps of the other elementary kernels (copy, vector add,
//     axpy), the kind of tables the companion paper [10] reports.

// MultitaskResult compares running 2n triad elements on one CPU against
// splitting them n/n across both CPUs (uniform access environment).
type MultitaskResult struct {
	INC          int
	SingleClocks int64 // one CPU does all 2n elements; other CPU idle
	SplitClocks  int64 // both CPUs do n elements each, concurrently
	Speedup      float64
}

// MultitaskTriad runs the comparison for one increment. The split
// halves work on the same arrays, the second CPU starting at element
// n*inc + 1 (the upper half of the index space).
func MultitaskTriad(inc, n int, cfg machine.Config) MultitaskResult {
	cfg = cfg.Normalized()

	build := func() (*machine.Simulation, *vector.Array, *vector.Array, *vector.Array, *vector.Array) {
		sim := machine.NewSimulation(MemConfig(), 2, cfg)
		cb := vector.NewCommonBlock(0)
		a := cb.Declare("A", 2*IDim)
		b := cb.Declare("B", 2*IDim)
		c := cb.Declare("C", 2*IDim)
		d := cb.Declare("D", 2*IDim)
		return sim, a, b, c, d
	}

	// Single CPU, 2n elements.
	sim, a, b, c, d := build()
	sim.CPUs[0].LoadProgram(workload.Triad(a, b, c, d, 2*n, inc, cfg))
	single, done := sim.Run(int64(2*n) * int64(inc) * 1000)
	if !done {
		panic(fmt.Sprintf("xmp: single-CPU triad INC=%d did not finish", inc))
	}

	// Both CPUs, n elements each: CPU 1 works on the upper half of the
	// index space (a multitasked DO loop split at the midpoint).
	sim, a, b, c, d = build()
	lower := workload.Triad(a, b, c, d, n, inc, cfg)
	upper := workload.TriadAt(a, b, c, d, n, inc, n, cfg)
	sim.CPUs[0].LoadProgram(lower)
	sim.CPUs[1].LoadProgram(upper)
	split, done := sim.Run(int64(n) * int64(inc) * 2000)
	if !done {
		panic(fmt.Sprintf("xmp: multitask triad INC=%d did not finish", inc))
	}

	return MultitaskResult{
		INC:          inc,
		SingleClocks: single,
		SplitClocks:  split,
		Speedup:      float64(single) / float64(split),
	}
}

// MultitaskSweep runs MultitaskTriad for INC = 1..maxInc.
func MultitaskSweep(maxInc, n int, cfg machine.Config) []MultitaskResult {
	out := make([]MultitaskResult, 0, maxInc)
	for inc := 1; inc <= maxInc; inc++ {
		out = append(out, MultitaskTriad(inc, n, cfg))
	}
	return out
}

// SkewedTriadExperiment runs the triad (busy environment, as in
// Fig. 10a) against a memory with the given bank mapper instead of
// plain modulo interleaving — the conclusion's skewing remedy measured
// on the full machine model.
func SkewedTriadExperiment(inc, n int, mapper memsys.BankMapper, cfg machine.Config) TriadResult {
	if inc < 1 {
		panic(fmt.Sprintf("xmp: increment %d", inc))
	}
	cfg = cfg.Normalized()
	sim := &machine.Simulation{Mem: memsys.NewWithMapper(MemConfig(), mapper)}

	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", IDim)
	b := cb.Declare("B", IDim)
	c := cb.Declare("C", IDim)
	d := cb.Declare("D", IDim)

	sim.AddBackgroundStream(0, "bg0", 0, 1)
	sim.AddBackgroundStream(0, "bg1", 1, 1)
	sim.AddBackgroundStream(0, "bg2", 2, 1)

	triadCPU := machine.NewCPU(sim.Mem, 1, cfg)
	sim.CPUs = append(sim.CPUs, triadCPU)
	triadCPU.LoadProgram(workload.Triad(a, b, c, d, n, inc, cfg))
	clocks, done := sim.Run(int64(n) * int64(inc) * 1000)
	if !done {
		panic(fmt.Sprintf("xmp: skewed triad INC=%d did not finish", inc))
	}

	res := TriadResult{INC: inc, Clocks: clocks, Micros: cfg.MicroSeconds(clocks)}
	for _, p := range triadCPU.Ports() {
		res.Bank += p.Count.Bank
		res.Section += p.Count.Section
		res.Simultaneous += p.Count.Simultaneous
	}
	return res
}

// PlainMapper returns the standard modulo mapping for the X-MP memory,
// for symmetric ablation code.
func PlainMapper() memsys.BankMapper { return memsys.ModuloMapper{M: 16} }

// LinearSkewMapper returns the linear skewing scheme on 16 banks.
func LinearSkewMapper() memsys.BankMapper { return skew.Linear{M: 16, S: 1} }

// KernelResult is one point of a kernel stride sweep.
type KernelResult struct {
	Kernel       string
	INC          int
	Clocks       int64
	Bank         int64
	Section      int64
	Simultaneous int64
}

// KernelSweep measures copy, vadd and axpy over INC = 1..maxInc in the
// quiet environment — the per-kernel stride tables of the companion
// study [10].
func KernelSweep(maxInc, n int, cfg machine.Config) []KernelResult {
	cfg = cfg.Normalized()
	kernels := []struct {
		name string
		prog func(cb *vector.CommonBlock, inc int) []machine.Instr
	}{
		{"copy", func(cb *vector.CommonBlock, inc int) []machine.Instr {
			a := cb.Declare("A", IDim)
			b := cb.Declare("B", IDim)
			return workload.Copy(a, b, n, inc, cfg)
		}},
		{"vadd", func(cb *vector.CommonBlock, inc int) []machine.Instr {
			a := cb.Declare("A", IDim)
			b := cb.Declare("B", IDim)
			c := cb.Declare("C", IDim)
			return workload.VAdd(a, b, c, n, inc, cfg)
		}},
		{"axpy", func(cb *vector.CommonBlock, inc int) []machine.Instr {
			a := cb.Declare("A", IDim)
			b := cb.Declare("B", IDim)
			return workload.AXPY(a, b, n, inc, cfg)
		}},
	}
	var out []KernelResult
	for _, k := range kernels {
		for inc := 1; inc <= maxInc; inc++ {
			sim := machine.NewSimulation(MemConfig(), 1, cfg)
			sim.CPUs[0].LoadProgram(k.prog(vector.NewCommonBlock(0), inc))
			clocks, done := sim.Run(int64(n) * int64(inc) * 1000)
			if !done {
				panic(fmt.Sprintf("xmp: kernel %s INC=%d did not finish", k.name, inc))
			}
			r := KernelResult{Kernel: k.name, INC: inc, Clocks: clocks}
			for _, p := range sim.CPUs[0].Ports() {
				r.Bank += p.Count.Bank
				r.Section += p.Count.Section
				r.Simultaneous += p.Count.Simultaneous
			}
			out = append(out, r)
		}
	}
	return out
}
