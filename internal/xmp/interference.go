package xmp

import (
	"fmt"
	"strings"

	"ivm/internal/machine"
	"ivm/internal/vector"
	"ivm/internal/workload"
)

// Triad-vs-triad interference: both CPUs run the triad concurrently,
// CPU 0 with increment incA and CPU 1 with increment incB, on separate
// COMMON blocks. The matrix of CPU-0 execution times over all
// increment pairs is the kind of table the companion study [10]
// reports, and it exposes the pairwise regimes of Section III in a
// realistic seven-stream setting.

// InterferenceCell is one entry of the matrix.
type InterferenceCell struct {
	IncA, IncB int
	ClocksA    int64 // CPU 0's (the measured triad's) execution time
	ClocksB    int64 // CPU 1's execution time
}

// Interference runs one increment pair. Both CPUs transfer n elements
// per stream.
func Interference(incA, incB, n int, cfg machine.Config) InterferenceCell {
	if incA < 1 || incB < 1 {
		panic(fmt.Sprintf("xmp: increments %d, %d", incA, incB))
	}
	cfg = cfg.Normalized()
	sim := machine.NewSimulation(MemConfig(), 2, cfg)

	cbA := vector.NewCommonBlock(0)
	aA := cbA.Declare("A0", IDim)
	bA := cbA.Declare("B0", IDim)
	cA := cbA.Declare("C0", IDim)
	dA := cbA.Declare("D0", IDim)
	// The second block continues right after the first, as a second
	// program's COMMON would.
	cbB := vector.NewCommonBlock(4 * IDim)
	aB := cbB.Declare("A1", IDim)
	bB := cbB.Declare("B1", IDim)
	cB := cbB.Declare("C1", IDim)
	dB := cbB.Declare("D1", IDim)

	sim.CPUs[0].LoadProgram(workload.Triad(aA, bA, cA, dA, n, incA, cfg))
	sim.CPUs[1].LoadProgram(workload.Triad(aB, bB, cB, dB, n, incB, cfg))
	if _, done := sim.Run(int64(n) * int64(incA+incB+2) * 1000); !done {
		panic(fmt.Sprintf("xmp: interference (%d,%d) did not finish", incA, incB))
	}
	return InterferenceCell{
		IncA: incA, IncB: incB,
		ClocksA: sim.CPUs[0].DoneClock() + 1,
		ClocksB: sim.CPUs[1].DoneClock() + 1,
	}
}

// InterferenceMatrix runs all increment pairs up to maxInc.
func InterferenceMatrix(maxInc, n int, cfg machine.Config) [][]InterferenceCell {
	out := make([][]InterferenceCell, maxInc)
	for a := 1; a <= maxInc; a++ {
		out[a-1] = make([]InterferenceCell, maxInc)
		for b := 1; b <= maxInc; b++ {
			out[a-1][b-1] = Interference(a, b, n, cfg)
		}
	}
	return out
}

// RenderInterference renders the matrix of CPU-0 clock counts, rows =
// incA, columns = incB.
func RenderInterference(m [][]InterferenceCell) string {
	var b strings.Builder
	b.WriteString("incA\\incB")
	for j := range m[0] {
		fmt.Fprintf(&b, "%7d", j+1)
	}
	b.WriteByte('\n')
	for i, row := range m {
		fmt.Fprintf(&b, "%-9d", i+1)
		for _, cell := range row {
			fmt.Fprintf(&b, "%7d", cell.ClocksA)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SaturationProgram builds a finite machine program that keeps all
// three memory ports of a CPU busy with distance-1 streams — the
// "tailored program" of the paper's other CPU, expressed as real
// vector instructions rather than ideal raw streams. reps strips of
// two loads and one store are generated; registers rotate so that the
// loads never stall on the store.
func SaturationProgram(base int64, reps int, cfg machine.Config) []machine.Instr {
	cfg = cfg.Normalized()
	vl := cfg.VectorLength
	var prog []machine.Instr
	addr := base
	for r := 0; r < reps; r++ {
		// Distinct registers per rep (mod pool) avoid WAW stalls.
		l1 := (3 * r) % 6
		l2 := (3*r + 1) % 6
		prog = append(prog,
			machine.Instr{Op: machine.OpLoad, Dst: l1, Base: addr, Stride: 1, N: vl},
			machine.Instr{Op: machine.OpLoad, Dst: l2, Base: addr + int64(vl), Stride: 1, N: vl},
			machine.Instr{Op: machine.OpStore, Src1: l2, Base: addr + 2*int64(vl), Stride: 1, N: vl},
		)
		addr += 3 * int64(vl)
	}
	return prog
}

// TriadAgainstMachineBackground is TriadExperiment with the background
// CPU modelled as a real vector CPU running SaturationProgram instead
// of ideal raw streams — a fidelity check on the Fig. 10 substitution.
func TriadAgainstMachineBackground(inc, n int, cfg machine.Config) TriadResult {
	cfg = cfg.Normalized()
	sim := machine.NewSimulation(MemConfig(), 2, cfg)

	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", IDim)
	b := cb.Declare("B", IDim)
	c := cb.Declare("C", IDim)
	d := cb.Declare("D", IDim)

	// Background on CPU 0 (priority side, as in TriadExperiment), triad
	// measured on CPU 1. The background program is sized to outlast the
	// triad comfortably.
	reps := 8 * (n*inc/cfg.VectorLength + 1)
	sim.CPUs[0].LoadProgram(SaturationProgram(4*IDim, reps, cfg))
	sim.CPUs[1].LoadProgram(workload.Triad(a, b, c, d, n, inc, cfg))

	maxClocks := int64(n) * int64(inc) * 1000
	for sim.Mem.Clock() < maxClocks && !sim.CPUs[1].Done() {
		sim.Step()
	}
	if !sim.CPUs[1].Done() {
		panic(fmt.Sprintf("xmp: triad INC=%d did not finish against machine background", inc))
	}
	res := TriadResult{INC: inc, Clocks: sim.CPUs[1].DoneClock() + 1}
	res.Micros = cfg.MicroSeconds(res.Clocks)
	for _, p := range sim.CPUs[1].Ports() {
		res.Bank += p.Count.Bank
		res.Section += p.Count.Section
		res.Simultaneous += p.Count.Simultaneous
	}
	return res
}
