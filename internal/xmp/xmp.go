// Package xmp configures the machine model as the 2-processor, 16-bank
// Cray X-MP of Section IV (bipolar memory, n_c = 4, 4 memory sections,
// two load ports and one store port per CPU) and drives the paper's
// triad experiment:
//
//	DO 1 I = 1, N*INC, INC
//	1  A(I) = B(I) + C(I)*D(I)
//
// for INC = 1..16 with vector length n = 1024, the arrays packed into a
// COMMON block of IDIM = 16*1024+1 words each (their first elements one
// bank apart), while the other CPU either saturates memory through all
// three of its ports at distance 1 (Fig. 10a) or stays silent
// (Fig. 10b). The simulator reports the triad's execution time and the
// three conflict classes it encountered (Fig. 10c–e).
package xmp

import (
	"fmt"

	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/vector"
	"ivm/internal/workload"
)

// MemConfig is the X-MP memory system: 16 banks in 4 cyclically
// distributed sections, bank cycle time 4 clocks, 2 CPUs. Simultaneous
// bank conflicts between the CPUs are resolved by a rotating (cyclic)
// priority, the fair rule Fig. 8b credits with resolving linked
// conflicts; with a fixed rule one CPU would either never see
// simultaneous conflicts (contradicting Fig. 10e) or starve on
// low-return-number strides.
func MemConfig() memsys.Config {
	return memsys.Config{
		Banks:    16,
		Sections: 4,
		BankBusy: 4,
		CPUs:     2,
		Mapping:  memsys.CyclicSections,
		Priority: memsys.CyclicPriority,
	}
}

// IDim is the paper's array dimension: 16*1024 + 1, chosen so that the
// respective first elements of A, B, C, D are one bank apart.
const IDim = 16*1024 + 1

// TriadResult is one point of the Fig. 10 series.
type TriadResult struct {
	INC          int
	Clocks       int64   // execution time of the triad in clock periods
	Micros       float64 // the same in microseconds (9.5 ns clock)
	Bank         int64   // bank conflicts of the triad's four streams (Fig. 10c)
	Section      int64   // section conflicts (Fig. 10d)
	Simultaneous int64   // simultaneous bank conflicts (Fig. 10e)
}

// TriadExperiment runs the triad for one increment. background selects
// whether the other CPU's three ports hammer memory at distance 1.
func TriadExperiment(inc, n int, background bool, cfg machine.Config) TriadResult {
	if inc < 1 {
		panic(fmt.Sprintf("xmp: increment %d", inc))
	}
	cfg = cfg.Normalized()
	sim := &machine.Simulation{Mem: memsys.New(MemConfig())}

	// COMMON//A(IDIM),B(IDIM),C(IDIM),D(IDIM): base address 0.
	cb := vector.NewCommonBlock(0)
	a := cb.Declare("A", IDim)
	b := cb.Declare("B", IDim)
	c := cb.Declare("C", IDim)
	d := cb.Declare("D", IDim)

	if background {
		// "The other CPU executes a program that is tailored so that the
		// memory is constantly accessed by all three ports with a
		// distance of 1." Spread the start banks like consecutive
		// vector operands. The background CPU's ports are attached
		// first, i.e. it wins simultaneous bank conflicts under the
		// fixed priority rule — the measured triad is the lower-
		// priority CPU, which is what makes Fig. 10e's simultaneous
		// conflicts visible to it.
		sim.AddBackgroundStream(0, "bg0", 0, 1)
		sim.AddBackgroundStream(0, "bg1", 1, 1)
		sim.AddBackgroundStream(0, "bg2", 2, 1)
	}

	triadCPU := machine.NewCPU(sim.Mem, 1, cfg)
	sim.CPUs = append(sim.CPUs, triadCPU)
	triadCPU.LoadProgram(workload.Triad(a, b, c, d, n, inc, cfg))
	clocks, done := sim.Run(int64(n) * int64(inc) * 1000)
	if !done {
		panic(fmt.Sprintf("xmp: triad INC=%d did not finish", inc))
	}

	res := TriadResult{INC: inc, Clocks: clocks, Micros: cfg.MicroSeconds(clocks)}
	for _, p := range triadCPU.Ports() {
		res.Bank += p.Count.Bank
		res.Section += p.Count.Section
		res.Simultaneous += p.Count.Simultaneous
	}
	return res
}

// TriadSweep reproduces Fig. 10: the triad for INC = 1..maxInc.
func TriadSweep(maxInc, n int, background bool, cfg machine.Config) []TriadResult {
	out := make([]TriadResult, 0, maxInc)
	for inc := 1; inc <= maxInc; inc++ {
		out = append(out, TriadExperiment(inc, n, background, cfg))
	}
	return out
}
