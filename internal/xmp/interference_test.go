package xmp

import (
	"strings"
	"testing"

	"ivm/internal/machine"
)

func TestInterferenceMatrixShape(t *testing.T) {
	m := InterferenceMatrix(4, 128, machine.DefaultConfig())
	if len(m) != 4 || len(m[0]) != 4 {
		t.Fatalf("matrix %dx%d", len(m), len(m[0]))
	}
	for i, row := range m {
		for j, cell := range row {
			if cell.IncA != i+1 || cell.IncB != j+1 {
				t.Fatalf("cell (%d,%d) labelled (%d,%d)", i, j, cell.IncA, cell.IncB)
			}
			if cell.ClocksA <= 0 || cell.ClocksB <= 0 {
				t.Fatalf("degenerate cell %+v", cell)
			}
		}
	}
	out := RenderInterference(m)
	if !strings.Contains(out, "incA\\incB") {
		t.Fatalf("render:\n%s", out)
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 5 {
		t.Fatalf("render rows:\n%s", out)
	}
}

// Symmetric increments are a uniform environment: the diagonal cell
// (1,1) must not be slower than the barrier pair (1,2) for the slower
// side... more precisely, CPU 0 at INC=1 suffers more against INC=2's
// barrier partner than against another INC=1 (uniform streams), the
// paper's multitasking argument.
func TestInterferenceUniformVsBarrier(t *testing.T) {
	cfg := machine.DefaultConfig()
	uniform := Interference(1, 1, 256, cfg)
	// INC=2 against INC=1: the d=2 CPU is the barrier loser.
	mixed := Interference(2, 1, 256, cfg)
	if mixed.ClocksA <= uniform.ClocksA {
		t.Errorf("barrier-losing triad (%d) should be slower than uniform (%d)",
			mixed.ClocksA, uniform.ClocksA)
	}
}

func TestInterferenceDeterminism(t *testing.T) {
	cfg := machine.DefaultConfig()
	a := Interference(3, 5, 128, cfg)
	b := Interference(3, 5, 128, cfg)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSaturationProgramValid(t *testing.T) {
	cfg := machine.DefaultConfig()
	prog := SaturationProgram(0, 10, cfg)
	if len(prog) != 30 {
		t.Fatalf("len = %d", len(prog))
	}
	if err := cfg.Validate(prog); err != nil {
		t.Fatal(err)
	}
}

// The machine-modelled background reproduces the Fig. 10 shape found
// with ideal raw streams: INC=1 beats INC=2 beats... and the triad
// still sees simultaneous conflicts.
func TestTriadAgainstMachineBackground(t *testing.T) {
	cfg := machine.DefaultConfig()
	r1 := TriadAgainstMachineBackground(1, 256, cfg)
	r2 := TriadAgainstMachineBackground(2, 256, cfg)
	r3 := TriadAgainstMachineBackground(3, 256, cfg)
	if !(r1.Clocks < r2.Clocks && r2.Clocks < r3.Clocks) {
		t.Errorf("shape broken: INC1=%d INC2=%d INC3=%d", r1.Clocks, r2.Clocks, r3.Clocks)
	}
	if r1.Bank+r2.Bank+r3.Bank == 0 {
		t.Error("no bank conflicts against machine background")
	}
}
