package xmp

import (
	"testing"

	"ivm/internal/machine"
)

func cfg() machine.Config { return machine.DefaultConfig() }

func TestMemConfigIsTheXMP(t *testing.T) {
	mc := MemConfig()
	if mc.Banks != 16 || mc.Sections != 4 || mc.BankBusy != 4 || mc.CPUs != 2 {
		t.Fatalf("MemConfig = %+v", mc)
	}
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriadQuietBaseline(t *testing.T) {
	r := TriadExperiment(1, 256, false, cfg())
	if r.Simultaneous != 0 {
		t.Errorf("no other CPU, yet %d simultaneous conflicts", r.Simultaneous)
	}
	if r.Clocks <= 0 || r.Micros <= 0 {
		t.Errorf("degenerate result %+v", r)
	}
	// 4 streams x 256 elements cannot finish faster than the critical
	// stream: at least 4 strips of 64.
	if r.Clocks < 256 {
		t.Errorf("clocks = %d, impossibly fast", r.Clocks)
	}
}

// The paper's headline qualitative results, at reduced vector length
// for test speed (n = 512; the shape is stride-driven, not
// length-driven):
//
//   - INC = 1, 6, 11 show the best performance;
//   - INC = 2 and 3 hit the barrier-situation against the d=1
//     environment and are much slower (INC 3 worse than INC 2);
//   - INC = 9 is conflict free in theory but worse than INC = 1 in
//     practice (six ports saturate 16 banks);
//   - INC = 16 (distance 0: one bank) is the worst of all.
func TestTriadShapeMatchesPaper(t *testing.T) {
	res := TriadSweep(16, 512, true, cfg())
	at := func(inc int) int64 { return res[inc-1].Clocks }

	best := []int{1, 6, 11}
	for _, inc := range best {
		for _, other := range []int{2, 3, 4, 5, 7, 8, 9, 10, 13, 14, 15, 16} {
			if at(inc) >= at(other) {
				t.Errorf("INC=%d (%d clocks) should beat INC=%d (%d clocks)",
					inc, at(inc), other, at(other))
			}
		}
	}
	if !(at(3) > at(2) && at(2) > at(1)) {
		t.Errorf("barrier ordering violated: INC1=%d INC2=%d INC3=%d", at(1), at(2), at(3))
	}
	if at(9) <= at(1) {
		t.Errorf("INC=9 (%d) should trail INC=1 (%d)", at(9), at(1))
	}
	if at(16) <= at(8) {
		t.Errorf("INC=16 (%d) should be the worst; INC=8 is %d", at(16), at(8))
	}
}

// With the other CPU shut off (Fig. 10b), the strides that suffered
// barrier-situations recover: INC = 2 and 3 run about as fast as
// INC = 1, and simultaneous conflicts disappear.
func TestTriadQuietRecovers(t *testing.T) {
	busy := TriadSweep(3, 512, true, cfg())
	quiet := TriadSweep(3, 512, false, cfg())
	for i := range quiet {
		if quiet[i].Simultaneous != 0 {
			t.Errorf("INC=%d: simultaneous conflicts without another CPU", quiet[i].INC)
		}
		if quiet[i].Clocks >= busy[i].Clocks {
			t.Errorf("INC=%d: quiet (%d) not faster than busy (%d)",
				quiet[i].INC, quiet[i].Clocks, busy[i].Clocks)
		}
	}
	// Barrier penalty is an interference effect: quiet INC=3 within 15%
	// of quiet INC=1.
	if q1, q3 := quiet[0].Clocks, quiet[2].Clocks; q3 > q1+q1*15/100 {
		t.Errorf("quiet INC=3 (%d) should be close to quiet INC=1 (%d)", q3, q1)
	}
}

// Conflict counters behave: the busy run shows simultaneous conflicts
// (Fig. 10e nonzero), and power-of-two strides concentrate everything
// into bank conflicts (section sets collapse onto one section per
// stream: no section conflicts).
func TestTriadConflictTaxonomy(t *testing.T) {
	res := TriadSweep(16, 512, true, cfg())
	var simult int64
	for _, r := range res {
		simult += r.Simultaneous
	}
	if simult == 0 {
		t.Error("Fig. 10e: expected simultaneous conflicts somewhere in the sweep")
	}
	for _, inc := range []int{4, 8, 12, 16} {
		if res[inc-1].Section != 0 {
			t.Errorf("INC=%d: d = 0 mod 4 pins each stream to one section; got %d section conflicts",
				inc, res[inc-1].Section)
		}
	}
}

func TestTriadDeterminism(t *testing.T) {
	a := TriadExperiment(7, 512, true, cfg())
	b := TriadExperiment(7, 512, true, cfg())
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestTriadBadIncrementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TriadExperiment(0, ...) did not panic")
		}
	}()
	TriadExperiment(0, 64, false, cfg())
}
