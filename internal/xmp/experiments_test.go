package xmp

import (
	"testing"

	"ivm/internal/machine"
)

// Multitasking (conclusion): splitting the triad across both CPUs
// yields a uniform access environment; the split never loses to the
// single-CPU run and gives a real speedup on the strides where a
// single CPU leaves ports idle.
func TestMultitaskTriadSpeedup(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, inc := range []int{1, 2, 3, 5} {
		r := MultitaskTriad(inc, 256, cfg)
		if r.SplitClocks > r.SingleClocks {
			t.Errorf("INC=%d: split (%d) slower than single (%d)", inc, r.SplitClocks, r.SingleClocks)
		}
		if r.Speedup < 1.0 {
			t.Errorf("INC=%d: speedup %.2f < 1", inc, r.Speedup)
		}
	}
	// Unit stride has idle-port slack: expect a tangible speedup.
	r := MultitaskTriad(1, 512, cfg)
	if r.Speedup < 1.2 {
		t.Errorf("INC=1 multitask speedup %.2f, expected >= 1.2", r.Speedup)
	}
}

func TestMultitaskSweepShape(t *testing.T) {
	res := MultitaskSweep(3, 128, machine.DefaultConfig())
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i, r := range res {
		if r.INC != i+1 {
			t.Fatalf("INC order broken: %+v", res)
		}
		if r.SingleClocks <= 0 || r.SplitClocks <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
	}
}

// Work conservation in the multitask split: both halves together
// transfer exactly the single run's elements. (Checked indirectly: the
// split's upper half touches the upper index space, so the last
// subscript equals the single run's.)
func TestMultitaskDeterminism(t *testing.T) {
	cfg := machine.DefaultConfig()
	a := MultitaskTriad(3, 256, cfg)
	b := MultitaskTriad(3, 256, cfg)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// Skewing ablation on the full machine: linear skewing repairs the
// worst power-of-two stride (INC=8, r=2 self-conflicts) but taxes some
// odd strides — both effects are real and pinned here.
func TestSkewedTriadFixesStride8(t *testing.T) {
	cfg := machine.DefaultConfig()
	plain := TriadExperiment(8, 512, true, cfg)
	skewed := SkewedTriadExperiment(8, 512, LinearSkewMapper(), cfg)
	if skewed.Clocks >= plain.Clocks {
		t.Errorf("INC=8: skewed (%d) not faster than plain (%d)", skewed.Clocks, plain.Clocks)
	}
	// And the identity mapper must reproduce the plain experiment.
	ident := SkewedTriadExperiment(8, 512, PlainMapper(), cfg)
	if ident != plain {
		t.Errorf("identity-mapped skew run differs: %+v vs %+v", ident, plain)
	}
}

func TestKernelSweep(t *testing.T) {
	res := KernelSweep(4, 256, machine.DefaultConfig())
	if len(res) != 3*4 {
		t.Fatalf("len = %d", len(res))
	}
	byKernel := map[string][]KernelResult{}
	for _, r := range res {
		byKernel[r.Kernel] = append(byKernel[r.Kernel], r)
		if r.Clocks <= 0 {
			t.Fatalf("degenerate %+v", r)
		}
		if r.Simultaneous != 0 {
			t.Errorf("%s INC=%d: simultaneous conflicts without a second CPU", r.Kernel, r.INC)
		}
	}
	for _, k := range []string{"copy", "vadd", "axpy"} {
		if len(byKernel[k]) != 4 {
			t.Fatalf("kernel %s: %d results", k, len(byKernel[k]))
		}
	}
	// Note: copy is NOT necessarily faster than vadd at equal stride —
	// its store trails its load by the memory latency and collides with
	// the load's bank revisits, while vadd's extra port spreads the
	// pressure. What must hold: every kernel is slowed down by the
	// worst self-conflicting stride relative to a stride with full
	// return number (r=16 at INC=1,3 vs r=4 at INC=4).
	sweep16 := KernelSweep(16, 256, machine.DefaultConfig())
	worst := map[string]int64{}
	best := map[string]int64{}
	for _, r := range sweep16 {
		if r.INC == 16 {
			worst[r.Kernel] = r.Clocks
		}
		if r.INC == 1 {
			best[r.Kernel] = r.Clocks
		}
	}
	for k, w := range worst {
		if w <= best[k] {
			t.Errorf("%s: INC=16 (%d) should be slower than INC=1 (%d)", k, w, best[k])
		}
	}
}
