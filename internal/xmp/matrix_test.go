package xmp

import (
	"testing"

	"ivm/internal/machine"
)

// The conclusion's example, measured: a 64-wide Fortran matrix accessed
// by rows has distance 0 on 16 banks (catastrophic), a 65-wide one has
// distance 1 (full speed). Columns are always fine.
func TestMatrixStudyConclusionAdvice(t *testing.T) {
	cfg := machine.DefaultConfig()
	res := MatrixStudy([]int{64, 65}, 192, cfg)
	if len(res) != 6 {
		t.Fatalf("len = %d", len(res))
	}
	get := func(ld int, p AccessPattern) MatrixResult {
		for _, r := range res {
			if r.LeadingDim == ld && r.Pattern == p {
				return r
			}
		}
		t.Fatalf("missing (%d, %s)", ld, p)
		return MatrixResult{}
	}

	row64 := get(64, RowAccess)
	row65 := get(65, RowAccess)
	if row64.Distance != 0 {
		t.Errorf("64-wide row distance = %d, want 0", row64.Distance)
	}
	if row65.Distance != 1 {
		t.Errorf("65-wide row distance = %d, want 1", row65.Distance)
	}
	if row64.Predicted != 0.25 {
		t.Errorf("64-wide row predicted ceiling = %v, want 1/4", row64.Predicted)
	}
	// The measured times reflect it: a 64-wide row access is several
	// times slower than a 65-wide one.
	if row64.Clocks < 3*row65.Clocks {
		t.Errorf("row access: ldim 64 (%d clocks) should be ~4x ldim 65 (%d)", row64.Clocks, row65.Clocks)
	}

	// Columns are unit stride regardless of the leading dimension.
	col64 := get(64, ColumnAccess)
	col65 := get(65, ColumnAccess)
	if col64.Distance != 1 || col65.Distance != 1 {
		t.Error("column distances must be 1")
	}
	diff := col64.Clocks - col65.Clocks
	if diff < -32 || diff > 32 {
		t.Errorf("column access should not depend on ldim: %d vs %d", col64.Clocks, col65.Clocks)
	}

	// Diagonals: 64-wide -> distance 65 mod 16 = 1 (fine!); 65-wide ->
	// distance 66 mod 16 = 2 (r=8, still fine). Both run well.
	diag64 := get(64, DiagonalAccess)
	if diag64.Distance != 1 {
		t.Errorf("64-wide diagonal distance = %d, want 1", diag64.Distance)
	}
	diag65 := get(65, DiagonalAccess)
	if diag65.Distance != 2 {
		t.Errorf("65-wide diagonal distance = %d, want 2", diag65.Distance)
	}
}

// The worst diagonal case: ldim = 15 gives diagonal stride 16 ->
// distance 0.
func TestMatrixDiagonalWorstCase(t *testing.T) {
	cfg := machine.DefaultConfig()
	r := MatrixAccess(15, DiagonalAccess, 128, cfg)
	if r.Distance != 0 {
		t.Fatalf("distance = %d, want 0", r.Distance)
	}
	good := MatrixAccess(16, DiagonalAccess, 128, cfg) // stride 17 -> d=1
	if good.Distance != 1 {
		t.Fatalf("distance = %d, want 1", good.Distance)
	}
	if r.Clocks < 3*good.Clocks {
		t.Errorf("degenerate diagonal (%d) should be ~4x the good one (%d)", r.Clocks, good.Clocks)
	}
}

func TestMatrixAccessValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pattern did not panic")
		}
	}()
	MatrixAccess(8, AccessPattern(99), 64, machine.DefaultConfig())
}

func TestAccessPatternString(t *testing.T) {
	if ColumnAccess.String() != "column" || RowAccess.String() != "row" || DiagonalAccess.String() != "diagonal" {
		t.Fatal("pattern names")
	}
}
