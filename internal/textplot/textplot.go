// Package textplot renders small ASCII charts for the experiment
// drivers: horizontal bar charts for the Fig. 10-style series (one bar
// per stride) and aligned text tables. Stdlib only, deterministic
// output, suitable for golden-file comparison.
package textplot

import (
	"fmt"
	"strings"
)

// Series is a labelled sequence of y values.
type Series struct {
	Title  string
	Labels []string
	Values []float64
	Unit   string
}

// Bars renders the series as a horizontal bar chart of the given width
// (characters available for the longest bar). Values are scaled
// linearly from zero; negative values are clamped to zero.
func Bars(s Series, width int) string {
	if width < 1 {
		width = 40
	}
	if len(s.Labels) != len(s.Values) {
		panic(fmt.Sprintf("textplot: %d labels vs %d values", len(s.Labels), len(s.Values)))
	}
	maxV := 0.0
	labelW := 0
	for i, v := range s.Values {
		if v > maxV {
			maxV = v
		}
		if len(s.Labels[i]) > labelW {
			labelW = len(s.Labels[i])
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	for i, v := range s.Values {
		n := 0
		if maxV > 0 && v > 0 {
			n = int(v/maxV*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g%s\n", labelW, s.Labels[i], strings.Repeat("#", n), v, s.Unit)
	}
	return b.String()
}

// heatRamp is the shading ramp used by Heatmap, darkest last. The
// first rune renders exact zero so empty cells read as empty.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a dense numeric grid as a shaded character matrix:
// one row per label, one column per value, each cell shaded by its
// magnitude relative to the grid maximum (space = zero, '@' = max).
// Columns are indexed along a header axis in steps of 5. Negative
// values are clamped to zero. Deterministic output, suitable for
// golden files.
func Heatmap(title string, rowLabels []string, grid [][]float64) string {
	if len(rowLabels) != len(grid) {
		panic(fmt.Sprintf("textplot: %d row labels vs %d rows", len(rowLabels), len(grid)))
	}
	cols := 0
	labelW := 0
	maxV := 0.0
	for i, row := range grid {
		if len(row) > cols {
			cols = len(row)
		}
		if len(rowLabels[i]) > labelW {
			labelW = len(rowLabels[i])
		}
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(grid) == 0 || cols == 0 {
		b.WriteString("(empty grid)\n")
		return b.String()
	}
	// Column axis: a tick label every 5 columns.
	fmt.Fprintf(&b, "%*s ", labelW, "")
	for c := 0; c < cols; c += 5 {
		fmt.Fprintf(&b, "%-5d", c)
	}
	b.WriteString("\n")
	ramp := []byte(heatRamp)
	for i, row := range grid {
		fmt.Fprintf(&b, "%*s ", labelW, rowLabels[i])
		for c := 0; c < cols; c++ {
			v := 0.0
			if c < len(row) {
				v = row[c]
			}
			b.WriteByte(shade(v, maxV, ramp))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "scale: '%c' = 0, '%c' = %.4g\n", ramp[0], ramp[len(ramp)-1], maxV)
	return b.String()
}

// shade picks the ramp character for value v on a [0, maxV] scale.
// Zero (and any non-positive value) always maps to the first rune;
// every positive value maps to at least the second, so a single count
// never disappears into the background.
func shade(v, maxV float64, ramp []byte) byte {
	if v <= 0 || maxV <= 0 {
		return ramp[0]
	}
	idx := 1 + int(v/maxV*float64(len(ramp)-2)+0.5)
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}

// Table renders rows as an aligned text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
