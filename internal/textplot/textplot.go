// Package textplot renders small ASCII charts for the experiment
// drivers: horizontal bar charts for the Fig. 10-style series (one bar
// per stride) and aligned text tables. Stdlib only, deterministic
// output, suitable for golden-file comparison.
package textplot

import (
	"fmt"
	"strings"
)

// Series is a labelled sequence of y values.
type Series struct {
	Title  string
	Labels []string
	Values []float64
	Unit   string
}

// Bars renders the series as a horizontal bar chart of the given width
// (characters available for the longest bar). Values are scaled
// linearly from zero; negative values are clamped to zero.
func Bars(s Series, width int) string {
	if width < 1 {
		width = 40
	}
	if len(s.Labels) != len(s.Values) {
		panic(fmt.Sprintf("textplot: %d labels vs %d values", len(s.Labels), len(s.Values)))
	}
	maxV := 0.0
	labelW := 0
	for i, v := range s.Values {
		if v > maxV {
			maxV = v
		}
		if len(s.Labels[i]) > labelW {
			labelW = len(s.Labels[i])
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	for i, v := range s.Values {
		n := 0
		if maxV > 0 && v > 0 {
			n = int(v/maxV*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g%s\n", labelW, s.Labels[i], strings.Repeat("#", n), v, s.Unit)
	}
	return b.String()
}

// Table renders rows as an aligned text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
