package textplot

import (
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	s := Series{
		Title:  "triad",
		Labels: []string{"INC=1", "INC=2"},
		Values: []float64{10, 20},
		Unit:   "us",
	}
	out := Bars(s, 10)
	if !strings.Contains(out, "triad") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[1], "10us") {
		t.Fatalf("value/unit missing: %q", lines[1])
	}
}

func TestBarsZeroAndNegative(t *testing.T) {
	out := Bars(Series{Labels: []string{"a", "b"}, Values: []float64{0, -5}}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero/negative values must have empty bars:\n%s", out)
	}
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels/values did not panic")
		}
	}()
	Bars(Series{Labels: []string{"a"}, Values: []float64{1, 2}}, 10)
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"x", "value"}}
	tbl.Add(1, "short")
	tbl.Add(100, "longer-value")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// All rows same width after alignment.
	w := len(lines[1])
	for _, ln := range lines[2:] {
		if len(strings.TrimRight(ln, " ")) > w {
			t.Fatalf("row wider than separator: %q", ln)
		}
	}
}
