package textplot

import (
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	s := Series{
		Title:  "triad",
		Labels: []string{"INC=1", "INC=2"},
		Values: []float64{10, 20},
		Unit:   "us",
	}
	out := Bars(s, 10)
	if !strings.Contains(out, "triad") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[1], "10us") {
		t.Fatalf("value/unit missing: %q", lines[1])
	}
}

func TestBarsZeroAndNegative(t *testing.T) {
	out := Bars(Series{Labels: []string{"a", "b"}, Values: []float64{0, -5}}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero/negative values must have empty bars:\n%s", out)
	}
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels/values did not panic")
		}
	}()
	Bars(Series{Labels: []string{"a"}, Values: []float64{1, 2}}, 10)
}

func TestHeatmapShading(t *testing.T) {
	out := Heatmap("occupancy", []string{"bank 0", "bank 1"}, [][]float64{
		{0, 1, 4},
		{4, 0, 2},
	})
	if !strings.Contains(out, "occupancy") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + axis + 2 rows + scale line
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	row0 := strings.TrimPrefix(lines[2], "bank 0 ")
	if row0[0] != ' ' {
		t.Fatalf("zero cell not blank: %q", lines[2])
	}
	if row0[2] != '@' {
		t.Fatalf("max cell not darkest: %q", lines[2])
	}
	if row0[1] == ' ' || row0[1] == '@' {
		t.Fatalf("mid cell should shade between extremes: %q", lines[2])
	}
	if !strings.Contains(lines[4], "scale:") {
		t.Fatalf("scale legend missing: %q", lines[4])
	}
}

func TestHeatmapEmptyAndRagged(t *testing.T) {
	if out := Heatmap("t", nil, nil); !strings.Contains(out, "empty grid") {
		t.Fatalf("empty grid rendered %q", out)
	}
	// Ragged rows are padded with zero cells, not a panic.
	out := Heatmap("", []string{"a", "b"}, [][]float64{{1, 2, 3}, {1}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("ragged grid lines = %d:\n%s", len(lines), out)
	}
}

func TestHeatmapMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels/rows did not panic")
		}
	}()
	Heatmap("", []string{"a"}, [][]float64{{1}, {2}})
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"x", "value"}}
	tbl.Add(1, "short")
	tbl.Add(100, "longer-value")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// All rows same width after alignment.
	w := len(lines[1])
	for _, ln := range lines[2:] {
		if len(strings.TrimRight(ln, " ")) > w {
			t.Fatalf("row wider than separator: %q", ln)
		}
	}
}
