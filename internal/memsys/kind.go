package memsys

import "fmt"

// CycleKind names the qualitative steady states the paper
// distinguishes for two concurrent streams.
type CycleKind int

const (
	// FreeCycle: no delays inside the cycle; b_eff equals the port count.
	FreeCycle CycleKind = iota
	// BarrierCycle: exactly one stream is delayed (Figs. 3, 5, 6); the
	// delays of a pure barrier are bank conflicts.
	BarrierCycle
	// DoubleCycle: both streams suffer delays, bank conflicts only
	// (Fig. 4's mutual-delay state).
	DoubleCycle
	// LinkedCycle: delays of both kinds — bank and section — appear in
	// the cycle (Fig. 8a's alternating linked conflict).
	LinkedCycle
	// MixedCycle: anything else (e.g. simultaneous conflicts in the
	// cycle, or section-only contention).
	MixedCycle
)

// String names the cycle class for reports.
func (k CycleKind) String() string {
	switch k {
	case FreeCycle:
		return "conflict-free"
	case BarrierCycle:
		return "barrier"
	case DoubleCycle:
		return "double-conflict"
	case LinkedCycle:
		return "linked-conflict"
	case MixedCycle:
		return "mixed"
	default:
		return fmt.Sprintf("CycleKind(%d)", int(k))
	}
}

// Kind classifies the cyclic steady state from its per-port conflict
// counters. DelayedPort returns which port a barrier delays.
func (c Cycle) Kind() CycleKind {
	var bank, section, simult int64
	delayedPorts := 0
	for _, cc := range c.Conflicts {
		bank += cc.Bank
		section += cc.Section
		simult += cc.Simultaneous
		if cc.Delays() > 0 {
			delayedPorts++
		}
	}
	switch {
	case bank+section+simult == 0:
		return FreeCycle
	case bank > 0 && section > 0:
		return LinkedCycle
	case simult > 0 || section > 0:
		return MixedCycle
	case delayedPorts == 1:
		return BarrierCycle
	default:
		return DoubleCycle
	}
}

// DelayedPort returns the index of the single delayed port of a
// barrier cycle, or -1 if the cycle is not a barrier.
func (c Cycle) DelayedPort() int {
	if c.Kind() != BarrierCycle {
		return -1
	}
	for i, cc := range c.Conflicts {
		if cc.Delays() > 0 {
			return i
		}
	}
	return -1
}
