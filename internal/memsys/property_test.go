package memsys

import (
	"testing"
	"testing/quick"

	"ivm/internal/rat"
	"ivm/internal/stream"
)

// Property: for any configuration and any two infinite strided streams,
// the simulated cyclic-state bandwidth never exceeds the port count,
// never exceeds bank capacity m/n_c, and each port's bandwidth never
// exceeds its self-conflict ceiling min(1, r/n_c).
func TestPropertyBandwidthCeilings(t *testing.T) {
	f := func(mRaw, ncRaw, d1Raw, d2Raw, b2Raw uint8, twoCPU bool) bool {
		m := int(mRaw%24) + 1
		nc := int(ncRaw%6) + 1
		d1 := int(d1Raw) % m
		d2 := int(d2Raw) % m
		b2 := int(b2Raw) % m
		cpus := 1
		if twoCPU {
			cpus = 2
		}
		sys := New(Config{Banks: m, BankBusy: nc, CPUs: cpus})
		sys.AddPort(0, "1", NewInfiniteStrided(0, int64(d1)))
		sys.AddPort(cpus-1, "2", NewInfiniteStrided(int64(b2), int64(d2)))
		c, err := sys.FindCycle(1 << 22)
		if err != nil {
			return false
		}
		total := c.EffectiveBandwidth()
		if total.Cmp(rat.New(2, 1)) > 0 {
			return false
		}
		if total.Cmp(rat.New(int64(m), int64(nc))) > 0 {
			return false
		}
		for i, d := range []int{d1, d2} {
			r := stream.ReturnNumber(m, d)
			ceil := rat.One()
			if r < nc {
				ceil = rat.New(int64(r), int64(nc))
			}
			if c.PortBandwidth(i).Cmp(ceil) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: grants within a cycle are conserved — the sum of per-port
// grants equals the cycle's total, and per-port grants plus delays plus
// idles account for every clock of the cycle.
func TestPropertyCycleAccounting(t *testing.T) {
	f := func(mRaw, ncRaw, d1Raw, d2Raw uint8) bool {
		m := int(mRaw%16) + 2
		nc := int(ncRaw%4) + 1
		d1 := int(d1Raw) % m
		d2 := int(d2Raw) % m
		sys := New(Config{Banks: m, BankBusy: nc, CPUs: 2})
		sys.AddPort(0, "1", NewInfiniteStrided(0, int64(d1)))
		sys.AddPort(1, "2", NewInfiniteStrided(1, int64(d2)))
		c, err := sys.FindCycle(1 << 22)
		if err != nil {
			return false
		}
		var sum int64
		for i := range c.Grants {
			sum += c.Grants[i]
			// Each port is busy every clock of the cycle: granted,
			// delayed, or (for infinite streams) never idle.
			if c.Grants[i]+c.Conflicts[i].Delays()+c.Conflicts[i].Idle != c.Length {
				return false
			}
			if c.Conflicts[i].Idle != 0 {
				return false
			}
		}
		return sum == c.TotalGrants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: renumbering the banks by a unit k (the Appendix
// isomorphism) leaves the cyclic bandwidth unchanged when start banks
// are transported along.
func TestPropertyIsomorphismInvariantBandwidth(t *testing.T) {
	f := func(mRaw, d1Raw, d2Raw, b2Raw, kRaw uint8) bool {
		m := int(mRaw%14) + 2
		nc := 3
		d1 := int(d1Raw) % m
		d2 := int(d2Raw) % m
		b2 := int(b2Raw) % m
		units := unitsOf(m)
		k := units[int(kRaw)%len(units)]

		base := pairBW(m, nc, 0, d1, b2, d2)
		img := pairBW(m, nc, 0, k*d1%m, k*b2%m, k*d2%m)
		return base.Equal(img)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func unitsOf(m int) []int {
	var us []int
	for k := 1; k < m; k++ {
		g := k
		b := m
		for b != 0 {
			g, b = b, g%b
		}
		if g == 1 {
			us = append(us, k)
		}
	}
	if len(us) == 0 {
		us = []int{1}
	}
	return us
}

func pairBW(m, nc, b1, d1, b2, d2 int) rat.Rational {
	sys := New(Config{Banks: m, BankBusy: nc, CPUs: 2})
	sys.AddPort(0, "1", NewInfiniteStrided(int64(b1), int64(d1)))
	sys.AddPort(1, "2", NewInfiniteStrided(int64(b2), int64(d2)))
	c, err := sys.FindCycle(1 << 22)
	if err != nil {
		panic(err)
	}
	return c.EffectiveBandwidth()
}

// Edge cases: one bank, one clock busy time.
func TestDegenerateSystems(t *testing.T) {
	// m=1: every stream hits the single bank; two streams share it.
	sys := New(Config{Banks: 1, BankBusy: 1, CPUs: 2})
	sys.AddPort(0, "1", NewInfiniteStrided(0, 0))
	sys.AddPort(1, "2", NewInfiniteStrided(0, 0))
	c, err := sys.FindCycle(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EffectiveBandwidth().Equal(rat.One()) {
		t.Fatalf("m=1 nc=1 two streams: b_eff = %s, want 1", c.EffectiveBandwidth())
	}

	// nc=1 never self-conflicts: a single stream always runs at 1.
	for m := 1; m <= 8; m++ {
		for d := 0; d < m; d++ {
			sys := New(Config{Banks: m, BankBusy: 1})
			sys.AddPort(0, "1", NewInfiniteStrided(0, int64(d)))
			c, err := sys.FindCycle(1000)
			if err != nil {
				t.Fatal(err)
			}
			if !c.EffectiveBandwidth().Equal(rat.One()) {
				t.Fatalf("m=%d nc=1 d=%d: b_eff = %s", m, d, c.EffectiveBandwidth())
			}
		}
	}
}

// With m >= p*nc and well-spread unit strides, p streams run at full
// speed (the converse of the saturation argument).
func TestUnsaturatedFullSpeed(t *testing.T) {
	const m, nc, p = 16, 4, 4
	sys := New(Config{Banks: m, BankBusy: nc, CPUs: 2})
	for i := 0; i < p; i++ {
		sys.AddPort(i%2, string(rune('1'+i)), NewInfiniteStrided(int64(i*nc), 1))
	}
	c, err := sys.FindCycle(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EffectiveBandwidth().Equal(rat.New(p, 1)) {
		t.Fatalf("b_eff = %s, want %d", c.EffectiveBandwidth(), p)
	}
}
