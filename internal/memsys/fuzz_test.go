package memsys

import "testing"

// FuzzSimulatorInvariants drives randomly configured systems and checks
// the structural invariants via the same listener the sweep tests use:
// no bank granted while busy, one grant per bank/path/port per clock,
// events carry consistent clocks.
func FuzzSimulatorInvariants(f *testing.F) {
	f.Add(uint8(16), uint8(4), uint8(4), uint8(1), uint8(6), uint8(3), false, false)
	f.Add(uint8(12), uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), true, false)
	f.Add(uint8(13), uint8(6), uint8(1), uint8(1), uint8(6), uint8(0), false, true)
	f.Add(uint8(8), uint8(2), uint8(2), uint8(0), uint8(0), uint8(0), true, true)

	f.Fuzz(func(t *testing.T, mRaw, ncRaw, sRaw, d1Raw, d2Raw, b2Raw uint8, cyclic, consecutive bool) {
		m := int(mRaw%24) + 1
		nc := int(ncRaw%6) + 1
		// Pick a section count dividing m.
		s := int(sRaw%uint8(m)) + 1
		for m%s != 0 {
			s--
		}
		cfg := Config{Banks: m, Sections: s, BankBusy: nc, CPUs: 2}
		if cyclic {
			cfg.Priority = CyclicPriority
		}
		if consecutive {
			cfg.Mapping = ConsecutiveSections
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("constructed invalid config: %v", err)
		}
		sys := New(cfg)
		inv := newInvariantChecker(t, sys)
		sys.SetListener(inv)
		sys.AddPort(0, "1", NewInfiniteStrided(0, int64(int(d1Raw)%m)))
		sys.AddPort(1, "2", NewInfiniteStrided(int64(int(b2Raw)%m), int64(int(d2Raw)%m)))
		sys.AddPort(0, "3", NewStrided(2, 1, 40))
		for i := 0; i < 300; i++ {
			inv.beginClock(sys.Clock())
			sys.Step()
		}
		// Conservation: the finite stream transferred at most 40.
		if g := sys.Ports()[2].Count.Grants; g > 40 {
			t.Fatalf("finite stream granted %d > 40", g)
		}
	})
}

// FuzzFindCycle checks that cycle detection always terminates with a
// consistent cycle on two infinite streams.
func FuzzFindCycle(f *testing.F) {
	f.Add(uint8(13), uint8(6), uint8(1), uint8(6), uint8(0))
	f.Add(uint8(16), uint8(4), uint8(1), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, mRaw, ncRaw, d1Raw, d2Raw, b2Raw uint8) {
		m := int(mRaw%20) + 1
		nc := int(ncRaw%5) + 1
		sys := New(Config{Banks: m, BankBusy: nc, CPUs: 2})
		sys.AddPort(0, "1", NewInfiniteStrided(0, int64(int(d1Raw)%m)))
		sys.AddPort(1, "2", NewInfiniteStrided(int64(int(b2Raw)%m), int64(int(d2Raw)%m)))
		c, err := sys.FindCycle(1 << 22)
		if err != nil {
			t.Fatalf("no cycle: %v", err)
		}
		if c.Length <= 0 || c.TotalGrants() < 0 || c.TotalGrants() > 2*c.Length {
			t.Fatalf("inconsistent cycle %+v", c)
		}
	})
}
