package memsys

// The bit-packed bank-busy kernel: an alternative implementation of the
// simulator's inner loop that keeps the busy set as one bit per bank in
// []uint64 words, tracks busy expiries in a small event wheel instead
// of decrementing a per-bank counter every clock, skips ahead over
// provably blocked stretches in Run, and hashes the packed state with a
// cheap binary key in cycle detection. The scalar kernel (the loop in
// Step) remains the reference implementation — the oracle the
// differential suite in kernel_diff_test.go holds this kernel to,
// clock by clock. docs/KERNEL.md derives the equivalence argument.

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Kernel selects the simulator's inner-loop implementation.
type Kernel int

const (
	// KernelScalar is the reference per-bank busy-counter loop — the
	// oracle every other kernel is differentially tested against.
	KernelScalar Kernel = iota
	// KernelPacked is the bit-packed bank-busy kernel: busy bits in
	// []uint64 words, expiries in an event wheel, skip-ahead in Run,
	// binary state keys in FindCycle. Semantically identical to
	// KernelScalar (same grants, same conflict classification, same
	// events, same cyclic states).
	KernelPacked
)

// String names the kernel for tables and flag output.
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelPacked:
		return "packed"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Kernel returns the kernel the system is running on.
func (s *System) Kernel() Kernel { return s.kernel }

// PackedSupportsPriority reports whether the packed kernel implements a
// priority rule natively. All three rules share the generic rotation
// machinery (advanceRotation; the rr pointer is part of both kernels'
// cycle-state keys), so the answer is true for every known rule; the
// function exists so callers that must fall back to the scalar oracle
// for an unsupported rule — and count the fallback — have a single
// authoritative predicate to ask, rather than assuming.
func PackedSupportsPriority(pr PriorityRule) bool {
	switch pr {
	case FixedPriority, CyclicPriority, RoundRobinPerCPU:
		return true
	default:
		return false
	}
}

// SetKernel switches the simulator's inner-loop implementation. The
// switch is only legal while every bank is idle (e.g. right after New
// or Reset); switching mid-simulation would need a state conversion
// and is a programming error, so it panics.
func (s *System) SetKernel(k Kernel) {
	if k == s.kernel {
		return
	}
	for b := range s.busy {
		if s.BankBusy(b) != 0 {
			panic("memsys: SetKernel while banks are busy")
		}
	}
	s.kernel = k
	if k != KernelPacked {
		return
	}
	if s.words == nil {
		s.words = make([]uint64, (s.cfg.Banks+63)/64)
		s.expiry = make([]int64, s.cfg.Banks)
		s.wheel = make([][]int32, s.cfg.BankBusy+1)
	}
	s.clearPacked()
}

// clearPacked empties the packed busy set and the event wheel and
// re-anchors the wheel's drain cursor at the current clock, so a reused
// system cannot observe stale bits or stale expiry events.
func (s *System) clearPacked() {
	if s.words == nil {
		return
	}
	for i := range s.words {
		s.words[i] = 0
	}
	for i := range s.wheel {
		s.wheel[i] = s.wheel[i][:0]
	}
	s.expired = s.clock
}

// packedBusy reports whether a bank is busy under the packed kernel.
// The expiry guard makes the answer exact even when the bank's wheel
// slot has not been drained yet (bits are cleared lazily by expireTo).
func (s *System) packedBusy(bank int) bool {
	return s.words[bank>>6]&(1<<(uint(bank)&63)) != 0 && s.expiry[bank] > s.clock
}

// expireTo drains the event wheel up to and including clock t, clearing
// the busy bit and owner of every bank whose busy period ends by t. A
// bank granted at clock g is busy for clocks g .. g+n_c-1 and its
// expiry event is scheduled at g+n_c, so draining slot t frees exactly
// the banks the scalar kernel's end-of-step decrement would have
// brought to zero before clock t's arbitration. The wheel has n_c+1
// slots, one more than the longest pending horizon, so a slot never
// holds events of two different clocks.
func (s *System) expireTo(t int64) {
	w := int64(len(s.wheel))
	for ; s.expired <= t; s.expired++ {
		i := int(s.expired % w)
		slot := s.wheel[i]
		if len(slot) == 0 {
			continue
		}
		for _, b := range slot {
			s.words[b>>6] &^= 1 << (uint(b) & 63)
			s.owner[b] = nil
		}
		s.wheel[i] = slot[:0]
	}
}

// stepPacked is Step on the packed kernel: identical arbitration order,
// conflict precedence, counters and events, with the busy set kept as
// bits plus an expiry wheel instead of the scalar per-bank counters.
func (s *System) stepPacked() int {
	t := s.clock
	s.expireTo(t)
	order := s.arbitrationOrder()
	granted := 0

	for _, p := range order {
		if p.Src == nil || p.Src.Done() {
			continue
		}
		addr, ok := p.Src.Pending(t)
		if !ok {
			p.Count.Idle++
			continue
		}
		bank := s.mapper.Bank(addr)
		if bank < 0 || bank >= s.cfg.Banks {
			panic(fmt.Sprintf("memsys: mapper produced bank %d out of [0,%d)", bank, s.cfg.Banks))
		}
		sec := s.Section(bank)

		var kind ConflictKind
		var blocker *Port
		switch {
		case s.bankStamp[bank] == t:
			// Same precedence as the scalar kernel: a bank granted
			// earlier this clock was inactive when both ports requested
			// it, so the loser sees a simultaneous (different CPU) or
			// section (same CPU) conflict, not a bank conflict.
			w := s.bankWinner[bank]
			if w.CPU != p.CPU {
				kind, blocker = SimultaneousConflict, w
			} else {
				kind, blocker = SectionConflict, w
			}
		case s.packedBusy(bank):
			kind, blocker = BankConflict, s.owner[bank]
		case s.pathStamp[p.CPU][sec] == t:
			kind, blocker = SectionConflict, s.pathWinner[p.CPU][sec]
		}

		if kind == NoConflict {
			s.words[bank>>6] |= 1 << (uint(bank) & 63)
			exp := t + int64(s.cfg.BankBusy)
			s.expiry[bank] = exp
			slot := int(exp % int64(len(s.wheel)))
			s.wheel[slot] = append(s.wheel[slot], int32(bank))
			s.owner[bank] = p
			s.bankStamp[bank] = t
			s.bankWinner[bank] = p
			s.pathStamp[p.CPU][sec] = t
			s.pathWinner[p.CPU][sec] = p
			p.Src.Grant(t)
			p.Count.Grants++
			granted++
			if s.listener != nil {
				s.listener.Observe(Event{Clock: t, Port: p, Bank: bank, Kind: NoConflict})
			}
		} else {
			switch kind {
			case BankConflict:
				p.Count.Bank++
			case SimultaneousConflict:
				p.Count.Simultaneous++
			case SectionConflict:
				p.Count.Section++
			}
			if s.listener != nil {
				s.listener.Observe(Event{Clock: t, Port: p, Bank: bank, Kind: kind, Blocker: blocker})
			}
		}
	}

	s.advanceRotation(1)
	s.clock++
	return granted
}

// runPacked is Run on the packed kernel without a listener attached:
// per-clock stepping with skip-ahead over provably blocked stretches.
func (s *System) runPacked(n int64) int64 {
	var total int64
	end := s.clock + n
	for s.clock < end {
		g := s.stepPacked()
		total += int64(g)
		if g == 0 && s.clock < end {
			s.blockedStretch(end)
		}
	}
	return total
}

// blockedStretch implements the skip-ahead after a zero-grant clock: if
// every non-done port holds an infinite periodic stream whose requested
// bank is busy, nothing can change before the earliest requested expiry
// — a clock with zero grants classifies every delay as a bank conflict
// (simultaneous and section conflicts require a same-clock grant), the
// pending banks stay put, and the busy set only shrinks. The stretch's
// per-clock effects (one bank-conflict delay per port, the cyclic
// priority rotation, the clock) are applied in bulk, byte-identical to
// stepping each clock. Returns the clocks skipped (0 when no skip is
// provable: an idle, finite or data-dependent source, or a requested
// bank already free).
func (s *System) blockedStretch(end int64) int64 {
	next := int64(-1)
	active := 0
	for _, p := range s.ports {
		if p.Src == nil || p.Src.Done() {
			continue
		}
		ps, ok := p.Src.(periodicSource)
		if !ok || !ps.periodic() {
			return 0
		}
		addr, pending := p.Src.Pending(s.clock)
		if !pending {
			return 0
		}
		bank := s.mapper.Bank(addr)
		if !s.packedBusy(bank) {
			return 0
		}
		if next < 0 || s.expiry[bank] < next {
			next = s.expiry[bank]
		}
		active++
	}
	if active == 0 || next <= s.clock {
		return 0
	}
	if next > end {
		next = end
	}
	delta := next - s.clock
	for _, p := range s.ports {
		if p.Src == nil || p.Src.Done() {
			continue
		}
		p.Count.Bank += delta
	}
	s.advanceRotation(delta)
	s.clock = next
	return delta
}

// findCyclePacked is FindCycle on the packed kernel: the same per-clock
// recurrence search, hashing the packed state — priority rotation,
// per-port pending bank, and the busy banks with their remaining clocks
// — into a compact binary key instead of the scalar kernel's formatted
// string over all m banks. At most n_c·p banks are busy at once, so the
// key length tracks the port count, not the bank count; the two
// encodings are injective on the same state space, so the recurrence is
// found at the same clock and the returned window is identical to the
// scalar kernel's.
func (s *System) findCyclePacked(start, maxClocks int64) (Cycle, error) {
	np := len(s.ports)
	const stride = 5 // grants, bank, simultaneous, section, idle
	type packedSnap struct {
		clock  int64
		counts []int64
	}
	seen := make(map[string]packedSnap)
	key := make([]byte, 0, 16+4*np)
	counts := func() []int64 {
		cs := make([]int64, stride*np)
		for i, p := range s.ports {
			c := p.Count
			j := stride * i
			cs[j], cs[j+1], cs[j+2], cs[j+3], cs[j+4] =
				c.Grants, c.Bank, c.Simultaneous, c.Section, c.Idle
		}
		return cs
	}

	for s.clock < start+maxClocks {
		s.expireTo(s.clock)
		key = key[:0]
		key = binary.AppendVarint(key, int64(s.rr))
		for _, p := range s.ports {
			if addr, ok := p.Src.Pending(s.clock); ok {
				key = binary.AppendVarint(key, int64(s.mapper.Bank(addr)))
			} else {
				key = binary.AppendVarint(key, -1)
			}
		}
		for wi, word := range s.words {
			for word != 0 {
				b := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				key = binary.AppendVarint(key, int64(b))
				key = binary.AppendVarint(key, s.expiry[b]-s.clock)
			}
		}
		if prev, ok := seen[string(key)]; ok {
			cur := counts()
			c := Cycle{
				Lead:      prev.clock - start,
				Length:    s.clock - prev.clock,
				Grants:    make([]int64, np),
				Conflicts: make([]Counters, np),
			}
			for i := 0; i < np; i++ {
				j := stride * i
				c.Grants[i] = cur[j] - prev.counts[j]
				c.Conflicts[i] = Counters{
					Grants:       cur[j] - prev.counts[j],
					Bank:         cur[j+1] - prev.counts[j+1],
					Simultaneous: cur[j+2] - prev.counts[j+2],
					Section:      cur[j+3] - prev.counts[j+3],
					Idle:         cur[j+4] - prev.counts[j+4],
				}
			}
			return c, nil
		}
		seen[string(key)] = packedSnap{clock: s.clock, counts: counts()}
		s.stepPacked()
	}
	return Cycle{}, ErrNoCycle
}
