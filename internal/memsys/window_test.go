package memsys

import "testing"

// Window = 1 reproduces the paper's in-order port exactly.
func TestWindowOneEqualsInOrder(t *testing.T) {
	run := func(window int) (int64, int64) {
		sys := New(Config{Banks: 16, BankBusy: 4, CPUs: 2})
		src := NewWindowedStrided(0, 8, 64)
		sys.AddWindowedPort(0, "1", src, window)
		clocks, done := sys.RunUntilDone(10_000)
		if !done {
			t.Fatal("did not finish")
		}
		return clocks, sys.Ports()[0].Count.Grants
	}
	c1, g1 := run(1)

	sys := New(Config{Banks: 16, BankBusy: 4, CPUs: 2})
	sys.AddPort(0, "1", NewStrided(0, 8, 64))
	c2, done := sys.RunUntilDone(10_000)
	if !done {
		t.Fatal("plain run did not finish")
	}
	if c1 != c2 || g1 != 64 {
		t.Fatalf("window=1 (%d clocks) differs from in-order (%d)", c1, c2)
	}
}

// A gather with a hot bank: in order, every repeat of the hot bank
// stalls the whole stream; with a reorder window the other elements
// flow past it.
func TestWindowBypassesHotBank(t *testing.T) {
	// Indices alternating a hot bank (0) with unique banks: 0, 1, 0, 2,
	// 0, 3, ... — the hot bank sustains 1 grant per nc=4 clocks, so
	// in-order time ~ 2x elements; a window of 4 overlaps the cold
	// accesses with the hot-bank waits.
	var addrs []int64
	for i := 1; i <= 48; i++ {
		addrs = append(addrs, 0, int64(i%15)+1)
	}
	run := func(window int) int64 {
		sys := New(Config{Banks: 16, BankBusy: 4, CPUs: 1})
		sys.AddWindowedPort(0, "1", NewWindowedSequence(addrs), window)
		clocks, done := sys.RunUntilDone(100_000)
		if !done {
			t.Fatal("did not finish")
		}
		return clocks
	}
	inOrder := run(1)
	windowed := run(4)
	if windowed >= inOrder {
		t.Fatalf("window 4 (%d clocks) not faster than in-order (%d)", windowed, inOrder)
	}
	// The hot bank itself is the capacity limit: 96 hot accesses * 4
	// clocks... half the elements hit bank 0 (96 of 192): lower bound
	// 96*4 = 384? No: 96 accesses to bank 0 at 1 per 4 clocks = 381+.
	// The windowed run should approach it.
	hot := int64(len(addrs) / 2 * 4)
	if windowed > hot+hot/4 {
		t.Fatalf("windowed run %d far from the hot-bank bound %d", windowed, hot)
	}
}

// Out-of-order ports dissolve barrier-situations: Fig. 3's delayed
// stream recovers bandwidth with a lookahead window (the barrier is an
// artifact of the in-order port rule).
func TestWindowDissolvesBarrier(t *testing.T) {
	run := func(window int) int64 {
		sys := New(Config{Banks: 13, BankBusy: 6, CPUs: 2})
		// Stream 1 is effectively endless: it sustains the barrier for
		// the whole measurement.
		sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
		src := NewWindowedStrided(0, 6, 390)
		sys.AddWindowedPort(1, "2", src, window)
		for !src.Done() {
			if sys.Clock() > 100_000 {
				t.Fatal("stream 2 never finished")
			}
			sys.Step()
		}
		return sys.Clock()
	}
	inOrder := run(1)
	windowed := run(6)
	// In order: stream 2 runs at 1/6 (Fig. 3's barrier): ~390*6 clocks.
	if inOrder < 5*390 {
		t.Fatalf("in-order run %d clocks; expected the barrier to throttle it", inOrder)
	}
	// Windowed: dramatically faster.
	if windowed*2 > inOrder {
		t.Fatalf("window 6 (%d) should at least halve the barrier time (%d)", windowed, inOrder)
	}
}

func TestWindowedSourcesRejectBadGrant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GrantIdx out of window did not panic")
		}
	}()
	s := NewWindowedStrided(0, 1, 4)
	s.PendingWindow(0, 2)
	s.GrantIdx(0, 5)
}

func TestWindowedPortValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 did not panic")
		}
	}()
	sys := New(Config{Banks: 4, BankBusy: 1})
	sys.AddWindowedPort(0, "1", NewWindowedStrided(0, 1, 4), 0)
}

func TestFindCycleRejectsWindowedSources(t *testing.T) {
	sys := New(Config{Banks: 4, BankBusy: 2})
	sys.AddWindowedPort(0, "1", NewInfiniteWindowedStrided(0, 1), 2)
	if _, err := sys.FindCycle(1000); err == nil {
		t.Fatal("FindCycle accepted a windowed source")
	}
}

func TestWindowedSequenceConservation(t *testing.T) {
	addrs := []int64{3, 3, 3, 7, 1, 5, 3, 2}
	sys := New(Config{Banks: 8, BankBusy: 3, CPUs: 1})
	src := NewWindowedSequence(addrs)
	sys.AddWindowedPort(0, "1", src, 3)
	_, done := sys.RunUntilDone(1000)
	if !done {
		t.Fatal("did not finish")
	}
	if src.Issued() != int64(len(addrs)) {
		t.Fatalf("issued %d of %d", src.Issued(), len(addrs))
	}
}
