package memsys

import "testing"

// A system reused through Reset must find exactly the same cyclic
// steady state as a fresh one — same lead, length, per-port grants and
// bandwidth — even after simulating an unrelated configuration of
// streams in between. This is the contract the parallel sweep's
// per-worker system reuse relies on.
func TestResetReuseMatchesFresh(t *testing.T) {
	type pair struct{ m, nc, d1, b2, d2 int }
	pairs := []pair{
		{13, 6, 1, 0, 6}, // Fig. 3 barrier
		{12, 3, 1, 3, 7}, // Fig. 2 conflict-free
		{16, 4, 8, 1, 8}, // self-conflicting
		{13, 6, 1, 0, 6}, // Fig. 3 again, now on a dirty system
	}
	fresh := make([]Cycle, len(pairs))
	for i, p := range pairs {
		sys := New(Config{Banks: p.m, BankBusy: p.nc, CPUs: 2})
		sys.AddPort(0, "1", NewInfiniteStrided(0, int64(p.d1)))
		sys.AddPort(1, "2", NewInfiniteStrided(int64(p.b2), int64(p.d2)))
		c, err := sys.FindCycle(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = c
	}

	var reused *System
	for i, p := range pairs {
		cfg := Config{Banks: p.m, BankBusy: p.nc, CPUs: 2}
		if reused == nil || reused.Config() != cfg {
			reused = New(cfg)
		} else {
			reused.Reset()
		}
		reused.AddPort(0, "1", NewInfiniteStrided(0, int64(p.d1)))
		reused.AddPort(1, "2", NewInfiniteStrided(int64(p.b2), int64(p.d2)))
		c, err := reused.FindCycle(1 << 20)
		if err != nil {
			t.Fatalf("reused %v: %v", p, err)
		}
		if c.Lead != fresh[i].Lead || c.Length != fresh[i].Length {
			t.Fatalf("reused %v: lead/length %d/%d, fresh %d/%d", p, c.Lead, c.Length, fresh[i].Lead, fresh[i].Length)
		}
		for pt := range c.Grants {
			if c.Grants[pt] != fresh[i].Grants[pt] {
				t.Fatalf("reused %v: grants %v, fresh %v", p, c.Grants, fresh[i].Grants)
			}
		}
		if !c.EffectiveBandwidth().Equal(fresh[i].EffectiveBandwidth()) {
			t.Fatalf("reused %v: b_eff %s, fresh %s", p, c.EffectiveBandwidth(), fresh[i].EffectiveBandwidth())
		}
	}
}

// TestResetClearsPackedState reuses a packed-kernel system through
// Reset with banks still mid-busy and expiry events still queued in the
// event wheel. If Reset left any stale bit or wheel entry behind, the
// reused run would either see phantom busy banks or free a re-granted
// bank early; the test pins the reused cycle to a fresh packed system
// and to the scalar oracle, and checks Reset is idempotent.
func TestResetClearsPackedState(t *testing.T) {
	cfg := Config{Banks: 13, BankBusy: 6, CPUs: 2}
	attach := func(sys *System) {
		sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
		sys.AddPort(1, "2", NewInfiniteStrided(0, 6))
	}

	reused := New(cfg)
	reused.SetKernel(KernelPacked)
	attach(reused)
	// Stop mid-busy: with n_c = 6, clock 3 leaves live busy bits and
	// queued expiry events in the wheel.
	reused.Run(3)
	reused.Reset()
	reused.Reset() // idempotent: a second Reset must be a no-op
	for b := 0; b < cfg.Banks; b++ {
		if reused.BankBusy(b) != 0 || reused.BankOwner(b) != nil {
			t.Fatalf("bank %d still busy after Reset on packed kernel", b)
		}
	}
	attach(reused)
	got, err := reused.FindCycle(1 << 20)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []Kernel{KernelPacked, KernelScalar} {
		fresh := New(cfg)
		fresh.SetKernel(k)
		attach(fresh)
		want, err := fresh.FindCycle(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if got.Lead != want.Lead || got.Length != want.Length {
			t.Fatalf("reused packed lead/length %d/%d, fresh %v %d/%d", got.Lead, got.Length, k, want.Lead, want.Length)
		}
		if !got.EffectiveBandwidth().Equal(want.EffectiveBandwidth()) {
			t.Fatalf("reused packed b_eff %s, fresh %v %s", got.EffectiveBandwidth(), k, want.EffectiveBandwidth())
		}
	}
}

// Reset keeps the clock monotonic and detaches ports.
func TestResetKeepsClock(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 2, CPUs: 1})
	sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
	sys.Run(17)
	before := sys.Clock()
	sys.Reset()
	if sys.Clock() != before {
		t.Fatalf("clock rewound: %d -> %d", before, sys.Clock())
	}
	if len(sys.Ports()) != 0 {
		t.Fatalf("%d ports survived Reset", len(sys.Ports()))
	}
	for b := 0; b < 8; b++ {
		if sys.BankBusy(b) != 0 || sys.BankOwner(b) != nil {
			t.Fatalf("bank %d still busy after Reset", b)
		}
	}
}
