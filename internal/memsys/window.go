package memsys

import "fmt"

// The paper's ports implement strict dynamic conflict resolution: a
// blocked request delays "along with all subsequent access requests of
// that port". This file provides the architectural what-if the
// ablation benches measure: a port with a small reorder window that may
// service a later request while the head is blocked. For a
// self-conflicting stride (r < n_c) this recovers the lost bandwidth —
// the next element maps to a different bank — quantifying how much of
// the paper's bandwidth loss is due to the in-order port rule rather
// than the banks themselves.

// WindowedSource extends Source with a lookahead window. Sources that
// implement it can be serviced out of order by ports created with
// AddWindowedPort.
type WindowedSource interface {
	Source
	// PendingWindow returns up to w pending addresses in stream order.
	PendingWindow(clock int64, w int) []int64
	// GrantIdx grants the i-th address of the window just returned.
	GrantIdx(clock int64, i int)
}

// WindowedStrided is a strided source whose elements may complete out
// of order within the lookahead window. Remaining < 0 means infinite.
type WindowedStrided struct {
	Addr      int64
	Stride    int64
	Remaining int

	// outstanding element offsets (relative to Addr) not yet granted,
	// in stream order.
	pending []int64
	issued  int64
}

// NewWindowedStrided returns a finite out-of-order strided source.
func NewWindowedStrided(addr, stride int64, n int) *WindowedStrided {
	return &WindowedStrided{Addr: addr, Stride: stride, Remaining: n}
}

// NewInfiniteWindowedStrided returns an endless out-of-order source.
func NewInfiniteWindowedStrided(addr, stride int64) *WindowedStrided {
	return &WindowedStrided{Addr: addr, Stride: stride, Remaining: -1}
}

func (s *WindowedStrided) fill(w int) {
	for len(s.pending) < w {
		if s.Remaining == 0 {
			return
		}
		s.pending = append(s.pending, s.Addr)
		s.Addr += s.Stride
		if s.Remaining > 0 {
			s.Remaining--
		}
	}
}

// Pending implements Source (head of the window).
func (s *WindowedStrided) Pending(int64) (int64, bool) {
	s.fill(1)
	if len(s.pending) == 0 {
		return 0, false
	}
	return s.pending[0], true
}

// Grant implements Source (grants the head).
func (s *WindowedStrided) Grant(clock int64) { s.GrantIdx(clock, 0) }

// Done implements Source.
func (s *WindowedStrided) Done() bool {
	return s.Remaining == 0 && len(s.pending) == 0
}

// PendingWindow implements WindowedSource.
func (s *WindowedStrided) PendingWindow(_ int64, w int) []int64 {
	s.fill(w)
	if len(s.pending) < w {
		w = len(s.pending)
	}
	return s.pending[:w]
}

// GrantIdx implements WindowedSource.
func (s *WindowedStrided) GrantIdx(_ int64, i int) {
	if i < 0 || i >= len(s.pending) {
		panic(fmt.Sprintf("memsys: GrantIdx(%d) outside window of %d", i, len(s.pending)))
	}
	s.pending = append(s.pending[:i], s.pending[i+1:]...)
	s.issued++
}

// Issued returns how many requests were granted.
func (s *WindowedStrided) Issued() int64 { return s.issued }

// WindowedSequence is a fixed address list (gather/scatter indices)
// whose elements may complete out of order within the window.
type WindowedSequence struct {
	Addrs   []int64
	next    int
	pending []int64
	issued  int64
}

// NewWindowedSequence returns an out-of-order sequence source.
func NewWindowedSequence(addrs []int64) *WindowedSequence {
	return &WindowedSequence{Addrs: addrs}
}

func (s *WindowedSequence) fill(w int) {
	for len(s.pending) < w && s.next < len(s.Addrs) {
		s.pending = append(s.pending, s.Addrs[s.next])
		s.next++
	}
}

// Pending implements Source.
func (s *WindowedSequence) Pending(int64) (int64, bool) {
	s.fill(1)
	if len(s.pending) == 0 {
		return 0, false
	}
	return s.pending[0], true
}

// Grant implements Source.
func (s *WindowedSequence) Grant(clock int64) { s.GrantIdx(clock, 0) }

// Done implements Source.
func (s *WindowedSequence) Done() bool {
	return s.next >= len(s.Addrs) && len(s.pending) == 0
}

// PendingWindow implements WindowedSource.
func (s *WindowedSequence) PendingWindow(_ int64, w int) []int64 {
	s.fill(w)
	if len(s.pending) < w {
		w = len(s.pending)
	}
	return s.pending[:w]
}

// GrantIdx implements WindowedSource.
func (s *WindowedSequence) GrantIdx(_ int64, i int) {
	if i < 0 || i >= len(s.pending) {
		panic(fmt.Sprintf("memsys: GrantIdx(%d) outside window of %d", i, len(s.pending)))
	}
	s.pending = append(s.pending[:i], s.pending[i+1:]...)
	s.issued++
}

// Issued returns how many requests were granted.
func (s *WindowedSequence) Issued() int64 { return s.issued }

// AddWindowedPort attaches a source serviced through a reorder window
// of the given width (window = 1 is the paper's in-order rule). The
// port tries the window's addresses in stream order each clock and
// services the first conflict-free one; if none fits, the delay is
// classified by the head request.
func (s *System) AddWindowedPort(cpu int, label string, src WindowedSource, window int) *Port {
	if window < 1 {
		panic(fmt.Sprintf("memsys: window %d", window))
	}
	return s.AddPort(cpu, label, &windowAdapter{src: src, window: window, sys: s})
}

// windowAdapter presents the first serviceable window entry as the
// port's pending request. It peeks at the system's bank/path state,
// which is sound because Pending is invoked during this clock's
// arbitration, after earlier-priority grants have been recorded.
type windowAdapter struct {
	src    WindowedSource
	window int
	sys    *System
	// chosen index for the current clock, consumed by Grant.
	chosenClock int64
	chosenIdx   int
	chosenOK    bool
}

// Pending implements Source.
func (a *windowAdapter) Pending(clock int64) (int64, bool) {
	win := a.src.PendingWindow(clock, a.window)
	if len(win) == 0 {
		return 0, false
	}
	for i, addr := range win {
		bank := a.sys.mapper.Bank(addr)
		if a.sys.busy[bank] > 0 || a.sys.bankStamp[bank] == clock {
			continue
		}
		a.chosenClock, a.chosenIdx, a.chosenOK = clock, i, true
		return addr, true
	}
	// Nothing serviceable: present the head so the delay is classified
	// against the paper's in-order semantics.
	a.chosenClock, a.chosenIdx, a.chosenOK = clock, 0, true
	return win[0], true
}

// Grant implements Source.
func (a *windowAdapter) Grant(clock int64) {
	if !a.chosenOK || a.chosenClock != clock {
		panic("memsys: windowAdapter.Grant without matching Pending")
	}
	a.src.GrantIdx(clock, a.chosenIdx)
	a.chosenOK = false
}

// Done implements Source.
func (a *windowAdapter) Done() bool { return a.src.Done() }
