package memsys

import (
	"strings"
	"testing"

	"ivm/internal/stream"
)

func TestEnumStrings(t *testing.T) {
	if CyclicSections.String() != "cyclic" || ConsecutiveSections.String() != "consecutive" {
		t.Error("SectionMapping strings")
	}
	if !strings.Contains(SectionMapping(9).String(), "9") {
		t.Error("unknown SectionMapping string")
	}
	if FixedPriority.String() != "fixed" || CyclicPriority.String() != "cyclic" {
		t.Error("PriorityRule strings")
	}
	if !strings.Contains(PriorityRule(9).String(), "9") {
		t.Error("unknown PriorityRule string")
	}
	for k, want := range map[ConflictKind]string{
		NoConflict: "none", BankConflict: "bank",
		SimultaneousConflict: "simultaneous", SectionConflict: "section",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if !strings.Contains(ConflictKind(9).String(), "9") {
		t.Error("unknown ConflictKind string")
	}
}

func TestCountersConflicts(t *testing.T) {
	c := Counters{Bank: 3, Simultaneous: 2, Section: 1}
	b, si, se := c.Conflicts()
	if b != 3 || si != 2 || se != 1 {
		t.Fatalf("Conflicts() = %d,%d,%d", b, si, se)
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 3, CPUs: 1})
	if sys.Mapper().Banks() != 8 {
		t.Error("Mapper()")
	}
	p := sys.AddPort(0, "1", NewInfiniteStrided(5, 0))
	if sys.BankOwner(5) != nil || sys.BankBusy(5) != 0 {
		t.Error("idle bank reports owner/busy")
	}
	sys.Step()
	// The grant at clock 0 leaves the bank busy for 2 more clocks.
	if sys.BankBusy(5) != 2 {
		t.Errorf("BankBusy(5) = %d after one step", sys.BankBusy(5))
	}
	if sys.BankOwner(5) != p {
		t.Error("BankOwner(5) != granting port")
	}
	if sys.PriorityHolderAt(0) != p || sys.PriorityHolderAt(7) != p {
		t.Error("fixed priority holder")
	}
	empty := New(Config{Banks: 4, BankBusy: 1})
	if empty.PriorityHolderAt(0) != nil {
		t.Error("empty system has a priority holder")
	}
}

func TestPriorityHolderCyclic(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 1, CPUs: 1, Priority: CyclicPriority})
	a := sys.AddPort(0, "1", IdleSource{})
	b := sys.AddPort(0, "2", IdleSource{})
	if sys.PriorityHolderAt(0) != a || sys.PriorityHolderAt(1) != b || sys.PriorityHolderAt(2) != a {
		t.Error("cyclic priority holder rotation")
	}
}

func TestFromStream(t *testing.T) {
	src := FromStream(stream.Infinite(16, 3, 5))
	addr, ok := src.Pending(0)
	if !ok || addr != 3 {
		t.Fatalf("Pending = %d, %v", addr, ok)
	}
	if src.Done() {
		t.Fatal("infinite source done")
	}
	src.Grant(0)
	if addr, _ := src.Pending(1); addr != 8 {
		t.Fatalf("after grant: %d", addr)
	}
	if src.Issued() != 1 {
		t.Fatalf("Issued = %d", src.Issued())
	}

	fin := FromStream(stream.New(16, 0, 1, 2))
	fin.Grant(0)
	fin.Grant(1)
	if !fin.Done() {
		t.Fatal("finite source not done after its 2 elements")
	}
}

func TestIdleSourceGrantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IdleSource.Grant did not panic")
		}
	}()
	IdleSource{}.Grant(0)
}

func TestStridedGrantExhaustedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grant on exhausted source did not panic")
		}
	}()
	s := NewStrided(0, 1, 1)
	s.Grant(0)
	s.Grant(1)
}

func TestSequenceGrantExhaustedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grant on exhausted sequence did not panic")
		}
	}()
	s := &SequenceSource{Addrs: []int64{1}}
	s.Grant(0)
	s.Grant(1)
}

func TestSequencePosition(t *testing.T) {
	s := &SequenceSource{Addrs: []int64{4, 5}}
	if s.Position() != 0 {
		t.Fatal("Position != 0")
	}
	s.Grant(0)
	if s.Position() != 1 {
		t.Fatal("Position != 1")
	}
}

func TestDescribeSource(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{NewInfiniteStrided(1, 2), "strided{addr=1 stride=2 inf}"},
		{NewStrided(1, 2, 3), "strided{addr=1 stride=2 left=3}"},
		{&SequenceSource{Addrs: []int64{1, 2}}, "sequence{0/2}"},
		{IdleSource{}, "idle"},
	}
	for _, c := range cases {
		if got := describeSource(c.src); got != c.want {
			t.Errorf("describeSource = %q, want %q", got, c.want)
		}
	}
	if got := describeSource(&DelayedSource{}); !strings.Contains(got, "DelayedSource") {
		t.Errorf("fallback description: %q", got)
	}
}

// Windowed sources used through the plain Source interface (head-only).
func TestWindowedSourcesAsPlainSources(t *testing.T) {
	ws := NewWindowedStrided(0, 2, 3)
	addr, ok := ws.Pending(0)
	if !ok || addr != 0 {
		t.Fatalf("Pending = %d, %v", addr, ok)
	}
	ws.Grant(0)
	if addr, _ := ws.Pending(1); addr != 2 {
		t.Fatalf("after grant: %d", addr)
	}
	if ws.Issued() != 1 {
		t.Fatalf("Issued = %d", ws.Issued())
	}
	inf := NewInfiniteWindowedStrided(0, 1)
	if inf.Done() {
		t.Fatal("infinite windowed source done")
	}

	seq := NewWindowedSequence([]int64{7, 8})
	if addr, ok := seq.Pending(0); !ok || addr != 7 {
		t.Fatalf("sequence Pending = %d, %v", addr, ok)
	}
	seq.Grant(0)
	if addr, ok := seq.Pending(1); !ok || addr != 8 {
		t.Fatalf("sequence Pending = %d, %v", addr, ok)
	}
	seq.Grant(1)
	if !seq.Done() || seq.Issued() != 2 {
		t.Fatal("sequence not drained")
	}
	if _, ok := seq.Pending(2); ok {
		t.Fatal("drained sequence still pending")
	}
}
