package memsys

import (
	"errors"
	"fmt"
	"strings"

	"ivm/internal/rat"
)

// Cycle describes the cyclic steady state of a system of infinitely
// long access streams. Because the possible memory states are finite,
// such a system always reaches a cyclic state (the paper's assumption
// 1: "neglecting startup times, we compute the effective bandwidth for
// the cyclic state").
type Cycle struct {
	// Lead is the number of clocks before the cyclic state is entered.
	Lead int64
	// Length is the period of the cyclic state in clocks.
	Length int64
	// Grants counts requests granted per port within one period.
	Grants []int64
	// Conflicts counts delayed clocks per port within one period,
	// classified as in Fig. 10c–e.
	Conflicts []Counters
}

// TotalGrants sums the per-port grants over one period.
func (c Cycle) TotalGrants() int64 {
	var n int64
	for _, g := range c.Grants {
		n += g
	}
	return n
}

// EffectiveBandwidth returns b_eff, the average number of data
// transferred per clock period in the cyclic state, as an exact
// rational (e.g. 3/2 for Fig. 8a).
func (c Cycle) EffectiveBandwidth() rat.Rational {
	return rat.New(c.TotalGrants(), c.Length)
}

// PortBandwidth returns the cyclic-state bandwidth of a single port.
func (c Cycle) PortBandwidth(i int) rat.Rational {
	return rat.New(c.Grants[i], c.Length)
}

// ErrNotPeriodic is returned by FindCycle when a source's future
// behaviour is not a pure function of the hashed state (finite or
// data-dependent sources).
var ErrNotPeriodic = errors.New("memsys: system contains non-periodic sources; cycle detection needs infinite strided streams")

// ErrNoCycle is returned when no recurrence was found within maxClocks.
var ErrNoCycle = errors.New("memsys: no cyclic state found within clock budget")

type periodicSource interface{ periodic() bool }

// FindCycle simulates until the memory state recurs and returns the
// cyclic steady state. All sources must be infinite strided streams.
// The state hashed per clock is (bank busy remainders, per-port pending
// bank, priority rotation) — everything that determines the future.
// maxClocks and the returned Lead are relative to the clock at the
// call, so FindCycle behaves identically on a fresh system and on one
// reused through Reset.
func (s *System) FindCycle(maxClocks int64) (Cycle, error) {
	start := s.clock
	for _, p := range s.ports {
		ps, ok := p.Src.(periodicSource)
		if !ok || !ps.periodic() {
			return Cycle{}, fmt.Errorf("%w (port %d is %s)", ErrNotPeriodic, p.ID, describeSource(p.Src))
		}
	}
	if s.kernel == KernelPacked {
		return s.findCyclePacked(start, maxClocks)
	}

	type snapshot struct {
		clock     int64
		grants    []int64
		conflicts []Counters
	}
	seen := make(map[string]snapshot)

	record := func() (string, snapshot) {
		var b strings.Builder
		for _, busy := range s.busy {
			fmt.Fprintf(&b, "%d,", busy)
		}
		b.WriteByte('|')
		for _, p := range s.ports {
			addr, ok := p.Src.Pending(s.clock)
			if !ok {
				b.WriteString("-,")
				continue
			}
			fmt.Fprintf(&b, "%d,", s.mapper.Bank(addr))
		}
		fmt.Fprintf(&b, "|%d", s.rr)
		snap := snapshot{
			clock:     s.clock,
			grants:    make([]int64, len(s.ports)),
			conflicts: make([]Counters, len(s.ports)),
		}
		for i, p := range s.ports {
			snap.grants[i] = p.Count.Grants
			snap.conflicts[i] = p.Count
		}
		return b.String(), snap
	}

	for s.clock < start+maxClocks {
		key, snap := record()
		if prev, ok := seen[key]; ok {
			c := Cycle{
				Lead:      prev.clock - start,
				Length:    snap.clock - prev.clock,
				Grants:    make([]int64, len(s.ports)),
				Conflicts: make([]Counters, len(s.ports)),
			}
			for i := range s.ports {
				c.Grants[i] = snap.grants[i] - prev.grants[i]
				c.Conflicts[i] = Counters{
					Grants:       snap.conflicts[i].Grants - prev.conflicts[i].Grants,
					Bank:         snap.conflicts[i].Bank - prev.conflicts[i].Bank,
					Simultaneous: snap.conflicts[i].Simultaneous - prev.conflicts[i].Simultaneous,
					Section:      snap.conflicts[i].Section - prev.conflicts[i].Section,
					Idle:         snap.conflicts[i].Idle - prev.conflicts[i].Idle,
				}
			}
			return c, nil
		}
		seen[key] = snap
		s.Step()
	}
	return Cycle{}, ErrNoCycle
}

// SteadyBandwidth is a convenience wrapper: build a system from bank
// -space streams (one CPU unless cpuOf is given), find the cycle, and
// return b_eff. See FindCycle for the mechanics.
func SteadyBandwidth(cfg Config, maxClocks int64, specs ...StreamSpec) (rat.Rational, error) {
	sys := New(cfg)
	sys.AddStreams(specs...)
	c, err := sys.FindCycle(maxClocks)
	if err != nil {
		return rat.Zero(), err
	}
	return c.EffectiveBandwidth(), nil
}

// StreamSpec names an infinite bank-space stream for AddStreams,
// SteadyBandwidth and the experiment drivers: start bank, distance,
// owning CPU.
type StreamSpec struct {
	Start    int
	Distance int
	CPU      int
	Label    string
}

// AddStreams attaches one infinite strided source port per spec, in
// order. Streams without a label are named by their position ("1",
// "2", …), the convention every sweep table and trace uses. This is
// the one construction path from declarative stream specs to live
// ports; SteadyBandwidth and the sweep engine's generic ConfigSpec
// path both build on it.
func (s *System) AddStreams(specs ...StreamSpec) {
	for i, sp := range specs {
		label := sp.Label
		if label == "" {
			label = fmt.Sprintf("%d", i+1)
		}
		s.AddPort(sp.CPU, label, NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
	}
}
