package memsys

import "testing"

func cyclePair(t *testing.T, cfg Config, b1, d1, b2, d2 int) Cycle {
	t.Helper()
	sys := New(cfg)
	sys.AddPort(0, "1", NewInfiniteStrided(int64(b1), int64(d1)))
	cpu2 := 0
	if cfg.cpus() > 1 {
		cpu2 = 1
	}
	sys.AddPort(cpu2, "2", NewInfiniteStrided(int64(b2), int64(d2)))
	c, err := sys.FindCycle(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCycleKindsMatchPaperFigures(t *testing.T) {
	twoCPU := func(m, nc int) Config { return Config{Banks: m, BankBusy: nc, CPUs: 2} }

	// Fig. 2: conflict-free.
	if k := cyclePair(t, twoCPU(12, 3), 0, 1, 3, 7).Kind(); k != FreeCycle {
		t.Errorf("Fig. 2 kind = %s", k)
	}
	// Fig. 3: barrier delaying stream 2.
	c := cyclePair(t, twoCPU(13, 6), 0, 1, 0, 6)
	if c.Kind() != BarrierCycle || c.DelayedPort() != 1 {
		t.Errorf("Fig. 3 kind = %s, delayed = %d", c.Kind(), c.DelayedPort())
	}
	// Fig. 4: double conflict.
	if k := cyclePair(t, twoCPU(13, 6), 0, 1, 1, 6).Kind(); k != DoubleCycle {
		t.Errorf("Fig. 4 kind = %s", k)
	}
	// Fig. 6: inverted barrier delaying stream 1.
	c = cyclePair(t, twoCPU(13, 4), 0, 1, 1, 3)
	if c.Kind() != BarrierCycle || c.DelayedPort() != 0 {
		t.Errorf("Fig. 6 kind = %s, delayed = %d", c.Kind(), c.DelayedPort())
	}
	// Fig. 8a: linked conflict (one CPU, three sections).
	linked := Config{Banks: 12, Sections: 3, BankBusy: 3, CPUs: 1}
	if k := cyclePair(t, linked, 0, 1, 1, 1).Kind(); k != LinkedCycle {
		t.Errorf("Fig. 8a kind = %s", k)
	}
	// Fig. 8b: cyclic priority resolves it.
	resolved := linked
	resolved.Priority = CyclicPriority
	if k := cyclePair(t, resolved, 0, 1, 1, 1).Kind(); k != FreeCycle {
		t.Errorf("Fig. 8b kind = %s", k)
	}
}

func TestDelayedPortOnNonBarrier(t *testing.T) {
	c := cyclePair(t, Config{Banks: 12, BankBusy: 3, CPUs: 2}, 0, 1, 3, 7)
	if c.DelayedPort() != -1 {
		t.Errorf("DelayedPort on free cycle = %d", c.DelayedPort())
	}
}

func TestCycleKindString(t *testing.T) {
	for k, want := range map[CycleKind]string{
		FreeCycle: "conflict-free", BarrierCycle: "barrier",
		DoubleCycle: "double-conflict", LinkedCycle: "linked-conflict", MixedCycle: "mixed",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
