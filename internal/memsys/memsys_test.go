package memsys

import (
	"testing"

	"ivm/internal/rat"
)

func cfg1(m, nc int) Config {
	return Config{Banks: m, BankBusy: nc, CPUs: 1}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"minimal", Config{Banks: 1, BankBusy: 1}, true},
		{"xmp", Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2}, true},
		{"zero banks", Config{Banks: 0, BankBusy: 1}, false},
		{"zero busy", Config{Banks: 4, BankBusy: 0}, false},
		{"sections not dividing", Config{Banks: 12, Sections: 5, BankBusy: 1}, false},
		{"sections equal banks", Config{Banks: 8, Sections: 8, BankBusy: 2}, true},
		{"negative cpus", Config{Banks: 4, BankBusy: 1, CPUs: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestModuloMapper(t *testing.T) {
	mm := ModuloMapper{M: 16}
	if mm.Banks() != 16 {
		t.Fatalf("Banks() = %d", mm.Banks())
	}
	cases := []struct {
		addr int64
		want int
	}{{0, 0}, {1, 1}, {16, 0}, {17, 1}, {-1, 15}, {-16, 0}, {16385, 1}}
	for _, c := range cases {
		if got := mm.Bank(c.addr); got != c.want {
			t.Errorf("Bank(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestSectionMappingCyclicVsConsecutive(t *testing.T) {
	cyc := New(Config{Banks: 12, Sections: 3, BankBusy: 1, Mapping: CyclicSections})
	con := New(Config{Banks: 12, Sections: 3, BankBusy: 1, Mapping: ConsecutiveSections})
	for b := 0; b < 12; b++ {
		if got, want := cyc.Section(b), b%3; got != want {
			t.Errorf("cyclic Section(%d) = %d, want %d", b, got, want)
		}
		if got, want := con.Section(b), b/4; got != want {
			t.Errorf("consecutive Section(%d) = %d, want %d", b, got, want)
		}
	}
}

// A single stream with r >= nc runs at full speed: one grant per clock.
func TestSingleStreamFullBandwidth(t *testing.T) {
	sys := New(cfg1(8, 4))
	sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
	got := sys.Run(100)
	if got != 100 {
		t.Fatalf("grants = %d, want 100", got)
	}
	if c := sys.Ports()[0].Count; c.Delays() != 0 {
		t.Fatalf("unexpected delays: %+v", c)
	}
}

// Section III-A: a single stream with r < nc self-conflicts at its start
// bank; b_eff = r/nc.
func TestSingleStreamSelfConflict(t *testing.T) {
	cases := []struct {
		m, nc, d int
		want     rat.Rational
	}{
		{8, 4, 2, rat.One()},      // r=4 = nc: exactly no self conflict
		{8, 4, 4, rat.New(2, 4)},  // r=2 < nc=4
		{8, 4, 0, rat.New(1, 4)},  // r=1
		{16, 4, 8, rat.New(2, 4)}, // r=2
		{16, 4, 6, rat.One()},     // r=8 > nc
		{12, 6, 4, rat.New(3, 6)}, // r=3 < 6
		{13, 6, 5, rat.One()},     // r=13, prime
		{6, 5, 3, rat.New(2, 5)},  // r=2 < 5
	}
	for _, c := range cases {
		sys := New(cfg1(c.m, c.nc))
		sys.AddPort(0, "1", NewInfiniteStrided(0, int64(c.d)))
		cyc, err := sys.FindCycle(100000)
		if err != nil {
			t.Fatalf("m=%d nc=%d d=%d: %v", c.m, c.nc, c.d, err)
		}
		if got := cyc.EffectiveBandwidth(); !got.Equal(c.want) {
			t.Errorf("m=%d nc=%d d=%d: b_eff = %s, want %s", c.m, c.nc, c.d, got, c.want)
		}
	}
}

// The single-stream bank conflict always occurs at the start bank
// (Section III-A), so only the start bank's row ever shows delays.
func TestSingleStreamConflictAtStartBankOnly(t *testing.T) {
	sys := New(cfg1(8, 4))
	events := &eventLog{}
	sys.SetListener(events)
	sys.AddPort(0, "1", NewInfiniteStrided(3, 4)) // banks 3,7,3,7,... r=2 < nc
	sys.Run(64)
	for _, e := range events.delays {
		if e.Bank != 3 && e.Bank != 7 {
			t.Fatalf("delay at bank %d, expected only at revisited banks", e.Bank)
		}
		if e.Kind != BankConflict {
			t.Fatalf("single stream produced %v", e.Kind)
		}
	}
	if len(events.delays) == 0 {
		t.Fatal("expected self-conflicts")
	}
}

type eventLog struct {
	grants []Event
	delays []Event
}

func (l *eventLog) Observe(e Event) {
	if e.Kind == NoConflict {
		l.grants = append(l.grants, e)
	} else {
		l.delays = append(l.delays, e)
	}
}

// Two ports of different CPUs hitting the same idle bank in the same
// clock: the loser records a simultaneous bank conflict.
func TestSimultaneousBankConflict(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 2, CPUs: 2})
	p1 := sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
	p2 := sys.AddPort(1, "2", NewInfiniteStrided(0, 1))
	sys.Step()
	if p1.Count.Grants != 1 {
		t.Fatalf("port 1 grants = %d, want 1 (fixed priority)", p1.Count.Grants)
	}
	if p2.Count.Simultaneous != 1 || p2.Count.Grants != 0 {
		t.Fatalf("port 2 counters = %+v, want one simultaneous conflict", p2.Count)
	}
}

// Two ports of the same CPU hitting the same idle bank: by the paper's
// taxonomy this is a section conflict (they would need the same path).
func TestSameCPUSameBankIsSectionConflict(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 2, CPUs: 1})
	sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
	p2 := sys.AddPort(0, "2", NewInfiniteStrided(0, 1))
	sys.Step()
	if p2.Count.Section != 1 || p2.Count.Simultaneous != 0 {
		t.Fatalf("port 2 counters = %+v, want one section conflict", p2.Count)
	}
}

// Two ports of the same CPU hitting different banks of the same section
// conflict on the path; different CPUs do not.
func TestSectionPathConflict(t *testing.T) {
	cfgSame := Config{Banks: 8, Sections: 2, BankBusy: 2, CPUs: 1}
	sys := New(cfgSame)
	sys.AddPort(0, "1", NewInfiniteStrided(0, 1))       // bank 0, section 0
	p2 := sys.AddPort(0, "2", NewInfiniteStrided(2, 1)) // bank 2, section 0
	sys.Step()
	if p2.Count.Section != 1 {
		t.Fatalf("same CPU: counters = %+v, want section conflict", p2.Count)
	}

	cfgDiff := cfgSame
	cfgDiff.CPUs = 2
	sys = New(cfgDiff)
	sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
	p2 = sys.AddPort(1, "2", NewInfiniteStrided(2, 1))
	sys.Step()
	if p2.Count.Delays() != 0 {
		t.Fatalf("different CPUs: counters = %+v, want no conflict", p2.Count)
	}
}

// A delayed request and everything behind it waits: dynamic conflict
// resolution preserves stream order and total counts.
func TestFiniteStreamsConservation(t *testing.T) {
	sys := New(Config{Banks: 4, BankBusy: 3, CPUs: 2})
	sys.AddPort(0, "1", NewStrided(0, 1, 37))
	sys.AddPort(1, "2", NewStrided(0, 2, 23))
	clocks, done := sys.RunUntilDone(10000)
	if !done {
		t.Fatalf("not done after %d clocks", clocks)
	}
	if got := sys.TotalGrants(); got != 60 {
		t.Fatalf("total grants = %d, want 60", got)
	}
	total := sys.TotalCounters()
	if total.Grants != 60 {
		t.Fatalf("TotalCounters().Grants = %d", total.Grants)
	}
}

// Bank busy time: after a grant the bank rejects requests for exactly
// nc-1 further clocks.
func TestBankBusyWindow(t *testing.T) {
	for nc := 1; nc <= 5; nc++ {
		sys := New(cfg1(4, nc))
		// Second port hammers bank 0 every clock; first port touches
		// bank 0 once at clock 0.
		sys.AddPort(0, "1", NewStrided(0, 1, 1))
		p2 := sys.AddPort(0, "2", NewInfiniteStrided(0, 0))
		for i := 0; i < nc; i++ {
			sys.Step()
		}
		// p2 was blocked at clock 0 (same bank, same CPU: section
		// conflict) and then bank-conflicted for nc-1 clocks.
		if int(p2.Count.Delays()) != nc {
			t.Fatalf("nc=%d: p2 delays = %d, want %d", nc, p2.Count.Delays(), nc)
		}
		sys.Step()
		if p2.Count.Grants != 1 {
			t.Fatalf("nc=%d: p2 not granted when bank freed", nc)
		}
	}
}

func TestFixedPriorityWinsByID(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 1, CPUs: 2})
	sys.AddPort(0, "1", NewInfiniteStrided(5, 0))
	sys.AddPort(1, "2", NewInfiniteStrided(5, 0))
	for i := 0; i < 10; i++ {
		sys.Step()
	}
	// With nc=1 the bank frees every clock; port 0 always wins the
	// simultaneous conflict under fixed priority.
	if g := sys.Ports()[0].Count.Grants; g != 10 {
		t.Fatalf("port 0 grants = %d, want 10", g)
	}
	if g := sys.Ports()[1].Count.Grants; g != 0 {
		t.Fatalf("port 1 grants = %d, want 0", g)
	}
}

func TestCyclicPriorityAlternates(t *testing.T) {
	sys := New(Config{Banks: 8, BankBusy: 1, CPUs: 2, Priority: CyclicPriority})
	sys.AddPort(0, "1", NewInfiniteStrided(5, 0))
	sys.AddPort(1, "2", NewInfiniteStrided(5, 0))
	for i := 0; i < 10; i++ {
		sys.Step()
	}
	g0 := sys.Ports()[0].Count.Grants
	g1 := sys.Ports()[1].Count.Grants
	if g0 != 5 || g1 != 5 {
		t.Fatalf("grants = %d/%d, want 5/5 under rotating priority", g0, g1)
	}
}

func TestDelayedSourceStartsLate(t *testing.T) {
	sys := New(cfg1(8, 2))
	p := sys.AddPort(0, "1", &DelayedSource{StartAt: 3, Inner: NewStrided(0, 1, 4)})
	sys.Run(3)
	if p.Count.Grants != 0 || p.Count.Idle != 3 {
		t.Fatalf("before StartAt: %+v", p.Count)
	}
	sys.Run(4)
	if p.Count.Grants != 4 {
		t.Fatalf("after StartAt: grants = %d, want 4", p.Count.Grants)
	}
}

func TestSequenceSource(t *testing.T) {
	sys := New(cfg1(8, 1))
	p := sys.AddPort(0, "1", &SequenceSource{Addrs: []int64{7, 7, 3}})
	clocks, done := sys.RunUntilDone(100)
	if !done {
		t.Fatal("sequence source never finished")
	}
	// 7 at clock 0; 7 again must wait for the bank (nc=1: free next
	// clock); 3 at clock 2.
	if clocks != 3 || p.Count.Grants != 3 {
		t.Fatalf("clocks = %d grants = %d, want 3/3", clocks, p.Count.Grants)
	}
}

func TestSequenceSourceBankConflictOnRepeat(t *testing.T) {
	sys := New(cfg1(8, 4))
	p := sys.AddPort(0, "1", &SequenceSource{Addrs: []int64{7, 7}})
	sys.RunUntilDone(100)
	if p.Count.Bank != 3 {
		t.Fatalf("bank conflicts = %d, want 3 (waiting out nc-1 busy clocks)", p.Count.Bank)
	}
}

func TestIdleSource(t *testing.T) {
	sys := New(cfg1(4, 1))
	sys.AddPort(0, "1", IdleSource{})
	clocks, done := sys.RunUntilDone(10)
	if !done || clocks != 0 {
		t.Fatalf("idle system: clocks=%d done=%v", clocks, done)
	}
}

func TestAddPortBadCPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddPort with out-of-range CPU did not panic")
		}
	}()
	sys := New(Config{Banks: 4, BankBusy: 1, CPUs: 1})
	sys.AddPort(1, "x", IdleSource{})
}

func TestFindCycleRejectsFiniteSources(t *testing.T) {
	sys := New(cfg1(4, 1))
	sys.AddPort(0, "1", NewStrided(0, 1, 10))
	if _, err := sys.FindCycle(1000); err == nil {
		t.Fatal("FindCycle accepted a finite source")
	}
}

func TestFindCycleLeadAndLength(t *testing.T) {
	// Single stream, m=4, nc=2, d=1: conflict-free from the start;
	// the cycle has bandwidth 1.
	sys := New(cfg1(4, 2))
	sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
	c, err := sys.FindCycle(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EffectiveBandwidth().Equal(rat.One()) {
		t.Fatalf("b_eff = %s, want 1", c.EffectiveBandwidth())
	}
	if c.TotalGrants() != c.Length {
		t.Fatalf("grants %d != length %d for a full-speed stream", c.TotalGrants(), c.Length)
	}
	if got := c.PortBandwidth(0); !got.Equal(rat.One()) {
		t.Fatalf("PortBandwidth(0) = %s", got)
	}
}

func TestSteadyBandwidthHelper(t *testing.T) {
	bw, err := SteadyBandwidth(Config{Banks: 12, BankBusy: 3, CPUs: 2}, 1<<16,
		StreamSpec{Start: 0, Distance: 1, CPU: 0},
		StreamSpec{Start: 3, Distance: 7, CPU: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bw.Equal(rat.New(2, 1)) {
		t.Fatalf("b_eff = %s, want 2 (Fig. 2)", bw)
	}
}

// Invariant check: a granted bank must have been idle, at most one
// grant per bank per clock, at most one grant per (CPU, section) path
// per clock, and ports never exceed one grant per clock.
func TestSimulatorInvariants(t *testing.T) {
	cfgs := []Config{
		{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2},
		{Banks: 12, Sections: 3, BankBusy: 3, CPUs: 1},
		{Banks: 13, BankBusy: 6, CPUs: 2},
		{Banks: 8, Sections: 2, BankBusy: 2, CPUs: 2, Priority: CyclicPriority},
		{Banks: 12, Sections: 4, BankBusy: 5, CPUs: 2, Mapping: ConsecutiveSections},
	}
	specsets := [][]StreamSpec{
		{{Start: 0, Distance: 1}, {Start: 1, Distance: 2, CPU: 0}},
		{{Start: 0, Distance: 1}, {Start: 5, Distance: 3}},
		{{Start: 2, Distance: 7}, {Start: 0, Distance: 5}},
	}
	for _, cfg := range cfgs {
		for _, specs := range specsets {
			sys := New(cfg)
			inv := newInvariantChecker(t, sys)
			sys.SetListener(inv)
			for i, sp := range specs {
				cpu := sp.CPU % cfg.cpus()
				sys.AddPort(cpu, string(rune('1'+i)), NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
			}
			for i := 0; i < 500; i++ {
				inv.beginClock(sys.Clock())
				sys.Step()
			}
		}
	}
}

type invariantChecker struct {
	t         *testing.T
	sys       *System
	clock     int64
	bankGrant map[int]bool
	pathGrant map[[2]int]bool
	portGrant map[int]bool
	lastGrant map[int]int64
}

func newInvariantChecker(t *testing.T, sys *System) *invariantChecker {
	return &invariantChecker{t: t, sys: sys, lastGrant: make(map[int]int64)}
}

func (ic *invariantChecker) beginClock(clock int64) {
	// Decrement our shadow busy counters for all clocks since last call.
	ic.clock = clock
	ic.bankGrant = make(map[int]bool)
	ic.pathGrant = make(map[[2]int]bool)
	ic.portGrant = make(map[int]bool)
}

func (ic *invariantChecker) Observe(e Event) {
	if e.Clock != ic.clock {
		ic.t.Fatalf("event clock %d, expected %d", e.Clock, ic.clock)
	}
	if e.Kind != NoConflict {
		if e.Blocker == nil && e.Kind != BankConflict {
			ic.t.Fatalf("%v without blocker", e.Kind)
		}
		return
	}
	if ic.lastGrantClock(e.Bank)+int64(ic.sys.Config().BankBusy) > e.Clock {
		ic.t.Fatalf("clock %d: bank %d granted while busy", e.Clock, e.Bank)
	}
	if ic.bankGrant[e.Bank] {
		ic.t.Fatalf("clock %d: bank %d granted twice", e.Clock, e.Bank)
	}
	ic.bankGrant[e.Bank] = true
	key := [2]int{e.Port.CPU, ic.sys.Section(e.Bank)}
	if ic.pathGrant[key] {
		ic.t.Fatalf("clock %d: path cpu=%d section=%d granted twice", e.Clock, key[0], key[1])
	}
	ic.pathGrant[key] = true
	if ic.portGrant[e.Port.ID] {
		ic.t.Fatalf("clock %d: port %d granted twice", e.Clock, e.Port.ID)
	}
	ic.portGrant[e.Port.ID] = true
	ic.recordGrant(e.Bank, e.Clock)
}

func (ic *invariantChecker) recordGrant(bank int, clock int64) {
	ic.lastGrant[bank] = clock
}

func (ic *invariantChecker) lastGrantClock(bank int) int64 {
	if c, ok := ic.lastGrant[bank]; ok {
		return c
	}
	return -1 << 60
}
