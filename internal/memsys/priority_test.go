package memsys

import (
	"fmt"
	"testing"
)

// Tests for the priority-rotation machinery: the parse helpers, the
// rr-cpu arbitration order, and PriorityHolderAt — in particular its
// agreement with the live rotation pointer after Reset (which rewinds
// rr to zero while the clock keeps advancing) and at the boundaries of
// a FindCycle window (rr is part of cycle-state equality, so the holder
// must repeat with the window).

func TestParsePriorityRoundTrip(t *testing.T) {
	for _, pr := range []PriorityRule{FixedPriority, CyclicPriority, RoundRobinPerCPU} {
		got, err := ParsePriority(pr.String())
		if err != nil || got != pr {
			t.Fatalf("ParsePriority(%q) = %v, %v", pr.String(), got, err)
		}
	}
	if _, err := ParsePriority("lifo"); err == nil {
		t.Fatal("ParsePriority accepted an unknown rule")
	}
}

func TestParseMappingRoundTrip(t *testing.T) {
	for _, sm := range []SectionMapping{CyclicSections, ConsecutiveSections} {
		got, err := ParseMapping(sm.String())
		if err != nil || got != sm {
			t.Fatalf("ParseMapping(%q) = %v, %v", sm.String(), got, err)
		}
	}
	if _, err := ParseMapping("skewed"); err == nil {
		t.Fatal("ParseMapping accepted an unknown mapping")
	}
}

func TestValidateRejectsUnknownPolicies(t *testing.T) {
	cfg := Config{Banks: 8, BankBusy: 2, Priority: PriorityRule(9)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown priority rule")
	}
	cfg = Config{Banks: 8, BankBusy: 2, Mapping: SectionMapping(9)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown section mapping")
	}
}

// contendingSystem builds a system in which every port requests bank 0
// every clock with n_c = 1, so the winner of each clock is exactly the
// priority holder of that clock (the bank is free again by the next
// arbitration).
func contendingSystem(prio PriorityRule, cpus int, portCPUs []int) *System {
	sys := New(Config{Banks: 4, BankBusy: 1, CPUs: cpus, Priority: prio})
	for i, cpu := range portCPUs {
		sys.AddPort(cpu, fmt.Sprintf("%d", i+1), NewInfiniteStrided(0, 0))
	}
	return sys
}

// winnerOfClock steps the system once and returns the ID of the port
// that was granted.
func winnerOfClock(t *testing.T, sys *System) int {
	t.Helper()
	var won []int
	rec := listenerFunc(func(e Event) {
		if e.Kind == NoConflict {
			won = append(won, e.Port.ID)
		}
	})
	sys.SetListener(rec)
	defer sys.SetListener(nil)
	if g := sys.Step(); g != 1 {
		t.Fatalf("expected exactly one grant per clock, got %d", g)
	}
	return won[0]
}

type listenerFunc func(Event)

func (f listenerFunc) Observe(e Event) { f(e) }

// TestPriorityHolderAtMatchesArbitration pins PriorityHolderAt against
// the observed winner of an all-ports-contend schedule, for every rule.
func TestPriorityHolderAtMatchesArbitration(t *testing.T) {
	cases := []struct {
		name     string
		prio     PriorityRule
		cpus     int
		portCPUs []int
	}{
		{"fixed", FixedPriority, 2, []int{0, 1}},
		{"cyclic", CyclicPriority, 2, []int{0, 1, 0}},
		{"rr-cpu", RoundRobinPerCPU, 2, []int{0, 0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := contendingSystem(tc.prio, tc.cpus, tc.portCPUs)
			for clk := 0; clk < 12; clk++ {
				holder := sys.PriorityHolderAt(sys.Clock())
				if got := winnerOfClock(t, sys); got != holder.ID {
					t.Fatalf("clock %d: holder %d but port %d won", clk, holder.ID, got)
				}
			}
		})
	}
}

// TestPriorityHolderAtAfterReset is the regression test for the rotation
// bug: Reset rewinds rr to zero but does NOT rewind the clock, so any
// holder computed from the clock alone is wrong on a reused system.
func TestPriorityHolderAtAfterReset(t *testing.T) {
	for _, prio := range []PriorityRule{CyclicPriority, RoundRobinPerCPU} {
		t.Run(prio.String(), func(t *testing.T) {
			portCPUs := []int{0, 1, 0}
			if prio == RoundRobinPerCPU {
				portCPUs = []int{0, 0, 1}
			}
			sys := contendingSystem(prio, 2, portCPUs)
			// Advance to a clock that is NOT a multiple of the rotation
			// modulus, so clock-derived and rr-derived holders disagree.
			sys.Run(7)
			sys.Reset()
			for i, cpu := range portCPUs {
				sys.AddPort(cpu, fmt.Sprintf("%d", i+1), NewInfiniteStrided(0, 0))
			}
			// rr was rewound to zero: the first post-Reset clock must be
			// held by the rotation's zero position, and every later clock
			// by the observed winner.
			if h := sys.PriorityHolderAt(sys.Clock()); h.ID != sys.Ports()[0].ID {
				t.Fatalf("post-Reset holder is port %d, want port 0 (rr rewound)", h.ID)
			}
			for clk := 0; clk < 9; clk++ {
				holder := sys.PriorityHolderAt(sys.Clock())
				if got := winnerOfClock(t, sys); got != holder.ID {
					t.Fatalf("post-Reset clock %d: holder %d but port %d won", clk, holder.ID, got)
				}
			}
		})
	}
}

// TestPriorityHolderAtCycleWindowBoundary checks the property FindCycle
// relies on: the rotation pointer is part of cycle-state equality, so
// the priority holder at the start of the detected window equals the
// holder one full period later — on both kernels, for both rotating
// rules.
func TestPriorityHolderAtCycleWindowBoundary(t *testing.T) {
	for _, prio := range []PriorityRule{CyclicPriority, RoundRobinPerCPU} {
		for _, k := range []Kernel{KernelScalar, KernelPacked} {
			t.Run(fmt.Sprintf("%v/%v", prio, k), func(t *testing.T) {
				sys := New(Config{Banks: 12, Sections: 3, BankBusy: 3, CPUs: 2, Priority: prio})
				sys.SetKernel(k)
				sys.AddPort(0, "1", NewInfiniteStrided(0, 1))
				sys.AddPort(1, "2", NewInfiniteStrided(1, 1))
				cyc, err := sys.FindCycle(1 << 20)
				if err != nil {
					t.Fatal(err)
				}
				for off := int64(0); off < 3; off++ {
					a := sys.PriorityHolderAt(cyc.Lead + off)
					b := sys.PriorityHolderAt(cyc.Lead + cyc.Length + off)
					if a != b {
						t.Fatalf("offset %d: holder %d at window start, %d one period later",
							off, a.ID, b.ID)
					}
				}
			})
		}
	}
}

// TestRoundRobinPerCPUOrder pins the rr-cpu arbitration semantics: the
// highest-priority CPU group rotates by one position per clock and
// ports within a group keep ID order.
func TestRoundRobinPerCPUOrder(t *testing.T) {
	sys := contendingSystem(RoundRobinPerCPU, 2, []int{0, 0, 1})
	// Clock 0: group 0 holds -> port 0 wins (port 1 same group, ID order).
	// Clock 1: group 1 holds -> port 2 wins. Clock 2: group 0 again.
	want := []int{0, 2, 0, 2}
	for clk, w := range want {
		if got := winnerOfClock(t, sys); got != w {
			t.Fatalf("clock %d: port %d won, want %d", clk, got, w)
		}
	}
}

// TestRoundRobinCoincidences checks the two degenerate identities: with
// one port per CPU, rr-cpu behaves exactly like cyclic priority; with a
// single CPU it behaves exactly like fixed priority.
func TestRoundRobinCoincidences(t *testing.T) {
	run := func(prio PriorityRule, cpus int, portCPUs []int) []int64 {
		sys := New(Config{Banks: 8, BankBusy: 3, CPUs: cpus, Priority: prio})
		for i, cpu := range portCPUs {
			sys.AddPort(cpu, fmt.Sprintf("%d", i+1), NewInfiniteStrided(int64(i), 2))
		}
		sys.Run(500)
		var grants []int64
		for _, p := range sys.Ports() {
			grants = append(grants, p.Count.Grants, p.Count.Bank, p.Count.Simultaneous, p.Count.Section)
		}
		return grants
	}
	a := run(RoundRobinPerCPU, 3, []int{0, 1, 2})
	b := run(CyclicPriority, 3, []int{0, 1, 2})
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("rr-cpu with one port per CPU diverged from cyclic:\n%v\n%v", a, b)
	}
	c := run(RoundRobinPerCPU, 1, []int{0, 0, 0})
	d := run(FixedPriority, 1, []int{0, 0, 0})
	if fmt.Sprint(c) != fmt.Sprint(d) {
		t.Fatalf("rr-cpu with one CPU diverged from fixed:\n%v\n%v", c, d)
	}
}
