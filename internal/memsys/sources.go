package memsys

import (
	"fmt"

	"ivm/internal/stream"
)

// StridedSource issues the equally spaced requests of a vector-mode
// access stream: addresses Addr, Addr+Stride, Addr+2*Stride, …
// Remaining < 0 makes the stream infinite (the analytic model's
// assumption of infinitely long access streams).
type StridedSource struct {
	Addr      int64 // address of the next (pending) request
	Stride    int64
	Remaining int // elements left to request; < 0 means infinite

	issued int64
}

// NewStrided returns a finite strided source of n elements.
func NewStrided(addr, stride int64, n int) *StridedSource {
	return &StridedSource{Addr: addr, Stride: stride, Remaining: n}
}

// NewInfiniteStrided returns an endless strided source.
func NewInfiniteStrided(addr, stride int64) *StridedSource {
	return &StridedSource{Addr: addr, Stride: stride, Remaining: -1}
}

// FromStream converts a bank-space stream.Stream into a source whose
// addresses are the bank numbers themselves (valid with the modulo
// mapper over the same m).
func FromStream(st stream.Stream) *StridedSource {
	n := st.Length
	if st.IsInfinite() {
		n = -1
	}
	return &StridedSource{Addr: int64(st.Start), Stride: int64(st.Distance), Remaining: n}
}

// Pending implements Source.
func (s *StridedSource) Pending(int64) (int64, bool) {
	if s.Remaining == 0 {
		return 0, false
	}
	return s.Addr, true
}

// Grant implements Source.
func (s *StridedSource) Grant(int64) {
	if s.Remaining == 0 {
		panic("memsys: Grant on exhausted StridedSource")
	}
	s.Addr += s.Stride
	s.issued++
	if s.Remaining > 0 {
		s.Remaining--
	}
}

// Done implements Source.
func (s *StridedSource) Done() bool { return s.Remaining == 0 }

// Issued returns how many requests have been granted so far.
func (s *StridedSource) Issued() int64 { return s.issued }

// periodic marks the source as safe for state-hash cycle detection: its
// future bank sequence is a pure function of the pending bank.
func (s *StridedSource) periodic() bool { return s.Remaining < 0 }

// IdleSource never issues; useful as a placeholder port.
type IdleSource struct{}

// Pending implements Source.
func (IdleSource) Pending(int64) (int64, bool) { return 0, false }

// Grant implements Source.
func (IdleSource) Grant(int64) { panic("memsys: Grant on IdleSource") }

// Done implements Source.
func (IdleSource) Done() bool { return true }

// DelayedSource wraps a source so that it starts issuing only at clock
// StartAt. It models a relative position in time, which the paper notes
// "can be transformed to a relative position in space".
type DelayedSource struct {
	StartAt int64
	Inner   Source
}

// Pending implements Source.
func (d *DelayedSource) Pending(clock int64) (int64, bool) {
	if clock < d.StartAt {
		return 0, false
	}
	return d.Inner.Pending(clock)
}

// Grant implements Source.
func (d *DelayedSource) Grant(clock int64) { d.Inner.Grant(clock) }

// Done implements Source.
func (d *DelayedSource) Done() bool { return d.Inner.Done() }

// SequenceSource issues a fixed list of addresses in order; useful for
// gather/scatter-style index streams and for tests.
type SequenceSource struct {
	Addrs []int64
	next  int
}

// Pending implements Source.
func (s *SequenceSource) Pending(int64) (int64, bool) {
	if s.next >= len(s.Addrs) {
		return 0, false
	}
	return s.Addrs[s.next], true
}

// Grant implements Source.
func (s *SequenceSource) Grant(int64) {
	if s.next >= len(s.Addrs) {
		panic("memsys: Grant on exhausted SequenceSource")
	}
	s.next++
}

// Done implements Source.
func (s *SequenceSource) Done() bool { return s.next >= len(s.Addrs) }

// Position returns how many of the sequence's requests were granted.
func (s *SequenceSource) Position() int { return s.next }

func describeSource(src Source) string {
	switch t := src.(type) {
	case *StridedSource:
		if t.Remaining < 0 {
			return fmt.Sprintf("strided{addr=%d stride=%d inf}", t.Addr, t.Stride)
		}
		return fmt.Sprintf("strided{addr=%d stride=%d left=%d}", t.Addr, t.Stride, t.Remaining)
	case *SequenceSource:
		return fmt.Sprintf("sequence{%d/%d}", t.next, len(t.Addrs))
	case IdleSource:
		return "idle"
	default:
		return fmt.Sprintf("%T", src)
	}
}
