package memsys_test

import (
	"fmt"

	"ivm/internal/memsys"
)

// Simulate the paper's Fig. 3 barrier-situation and read off the exact
// steady-state bandwidth.
func ExampleSystem_FindCycle() {
	sys := memsys.New(memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 6))
	cycle, err := sys.FindCycle(1 << 20)
	if err != nil {
		panic(err)
	}
	fmt.Println(cycle.EffectiveBandwidth(), cycle.Kind(), cycle.DelayedPort())
	// Output: 7/6 barrier 1
}

// Finite vector instructions: run until every stream has transferred
// all of its elements.
func ExampleSystem_RunUntilDone() {
	sys := memsys.New(memsys.Config{Banks: 8, BankBusy: 2, CPUs: 1})
	p := sys.AddPort(0, "1", memsys.NewStrided(0, 1, 64))
	clocks, done := sys.RunUntilDone(10_000)
	fmt.Println(clocks, done, p.Count.Grants)
	// Output: 64 true 64
}

func ExampleSteadyBandwidth() {
	// Fig. 2: conflict-free pair, b_eff = 2.
	bw, err := memsys.SteadyBandwidth(
		memsys.Config{Banks: 12, BankBusy: 3, CPUs: 2}, 1<<20,
		memsys.StreamSpec{Start: 0, Distance: 1, CPU: 0},
		memsys.StreamSpec{Start: 3, Distance: 7, CPU: 1},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(bw)
	// Output: 2
}
