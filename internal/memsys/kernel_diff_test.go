package memsys

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The differential equivalence suite for the bit-packed kernel: every
// test here drives a scalar system and a packed system through the same
// schedule and demands byte-identical observables — grant order, per
// -clock events (including conflict classification and blocker), per
// -bank busy state, Run totals, FindCycle windows and b_eff. The scalar
// kernel is the oracle; see docs/KERNEL.md for the soundness argument
// this suite is the executable form of.

// kernelDiffCorpus covers all six classifier regimes with the same
// (m, n_c, d1, d2) seeds the sweep fuzz corpus uses, so any divergence
// in the packed kernel's conflict handling is caught in every regime.
var kernelDiffCorpus = []struct {
	name           string
	m, nc, d1, d2  int
	b2             int
	sections, cpus int
}{
	{"self_conflict", 16, 4, 8, 8, 1, 0, 2},
	{"conflict_free", 12, 3, 1, 7, 0, 0, 2},
	{"disjoint_free", 16, 4, 2, 6, 1, 0, 2},
	{"unique_barrier", 16, 2, 1, 2, 0, 0, 2},
	{"barrier_possible", 13, 4, 1, 3, 2, 0, 2},
	{"conflicting", 2, 1, 0, 1, 1, 0, 2},
	{"sectioned", 12, 3, 1, 7, 3, 4, 1},
	{"sectioned_two_cpus", 16, 4, 2, 6, 5, 4, 2},
}

// sourceSpec builds one fresh Source per system, so the two kernels
// never share mutable stream state.
type sourceSpec struct {
	cpu  int
	make func() Source
}

func infiniteSpec(cpu int, start, dist int64) sourceSpec {
	return sourceSpec{cpu, func() Source { return NewInfiniteStrided(start, dist) }}
}

func finiteSpec(cpu int, start, dist int64, n int) sourceSpec {
	return sourceSpec{cpu, func() Source { return NewStrided(start, dist, n) }}
}

func buildKernelPair(cfg Config, specs []sourceSpec) (scalar, packed *System) {
	scalar = New(cfg)
	packed = New(cfg)
	packed.SetKernel(KernelPacked)
	for i, sp := range specs {
		label := fmt.Sprintf("%d", i+1)
		scalar.AddPort(sp.cpu, label, sp.make())
		packed.AddPort(sp.cpu, label, sp.make())
	}
	return scalar, packed
}

// recEvent is an Event with the port pointers flattened to IDs so the
// streams of two different systems can be compared with DeepEqual.
type recEvent struct {
	Clock   int64
	Port    int
	Bank    int
	Kind    ConflictKind
	Blocker int // -1 when no blocker
}

type eventRecorder struct{ events []recEvent }

func (r *eventRecorder) Observe(e Event) {
	blocker := -1
	if e.Blocker != nil {
		blocker = e.Blocker.ID
	}
	r.events = append(r.events, recEvent{e.Clock, e.Port.ID, e.Bank, e.Kind, blocker})
}

// stepCompare drives both systems clock-by-clock and asserts identical
// grants, event streams, busy state and owners after every clock.
func stepCompare(t *testing.T, scalar, packed *System, steps int) {
	t.Helper()
	sRec, pRec := &eventRecorder{}, &eventRecorder{}
	scalar.SetListener(sRec)
	packed.SetListener(pRec)
	for i := 0; i < steps; i++ {
		gs, gp := scalar.Step(), packed.Step()
		if gs != gp {
			t.Fatalf("clock %d: scalar granted %d, packed %d", i, gs, gp)
		}
		if !reflect.DeepEqual(sRec.events, pRec.events) {
			t.Fatalf("clock %d: event streams diverge:\nscalar %+v\npacked %+v", i, sRec.events, pRec.events)
		}
		for b := 0; b < scalar.Config().Banks; b++ {
			if bs, bp := scalar.BankBusy(b), packed.BankBusy(b); bs != bp {
				t.Fatalf("clock %d bank %d: scalar busy %d, packed busy %d", i, b, bs, bp)
			}
			so, po := scalar.BankOwner(b), packed.BankOwner(b)
			switch {
			case (so == nil) != (po == nil):
				t.Fatalf("clock %d bank %d: owner nil-ness diverges", i, b)
			case so != nil && so.ID != po.ID:
				t.Fatalf("clock %d bank %d: scalar owner %d, packed owner %d", i, b, so.ID, po.ID)
			}
		}
	}
	for i := range scalar.Ports() {
		cs, cp := scalar.Ports()[i].Count, packed.Ports()[i].Count
		if cs != cp {
			t.Fatalf("port %d counters diverge: scalar %+v packed %+v", i, cs, cp)
		}
	}
}

func corpusSpecs(m, d1, d2, b2, cpus int) []sourceSpec {
	cpu2 := 1
	if cpu2 >= cpus {
		cpu2 = 0
	}
	return []sourceSpec{
		infiniteSpec(0, 0, int64(d1)),
		infiniteSpec(cpu2, int64(b2%m), int64(d2)),
	}
}

// TestDifferentialKernelStepByStep holds the packed kernel to the
// scalar oracle one clock at a time across all six regimes, with
// sections, two CPUs and a finite third stream in the mix.
func TestDifferentialKernelStepByStep(t *testing.T) {
	for _, tc := range kernelDiffCorpus {
		for _, prio := range []PriorityRule{FixedPriority, CyclicPriority, RoundRobinPerCPU} {
			name := fmt.Sprintf("%s/%v", tc.name, prio)
			t.Run(name, func(t *testing.T) {
				cfg := Config{Banks: tc.m, BankBusy: tc.nc, Sections: tc.sections, CPUs: tc.cpus, Priority: prio}
				specs := corpusSpecs(tc.m, tc.d1, tc.d2, tc.b2, tc.cpus)
				specs = append(specs, finiteSpec(0, 2, 1, 40))
				scalar, packed := buildKernelPair(cfg, specs)
				stepCompare(t, scalar, packed, 300)
			})
		}
	}
}

// TestDifferentialKernelRun exercises the packed Run skip-ahead (no
// listener attached, so blocked stretches are applied in bulk) and
// demands identical totals, clocks and counters.
func TestDifferentialKernelRun(t *testing.T) {
	for _, tc := range kernelDiffCorpus {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Banks: tc.m, BankBusy: tc.nc, Sections: tc.sections, CPUs: tc.cpus, Priority: CyclicPriority}
			scalar, packed := buildKernelPair(cfg, corpusSpecs(tc.m, tc.d1, tc.d2, tc.b2, tc.cpus))
			const clocks = 5000
			gs, gp := scalar.Run(clocks), packed.Run(clocks)
			if gs != gp {
				t.Fatalf("scalar granted %d, packed %d", gs, gp)
			}
			if scalar.Clock() != packed.Clock() {
				t.Fatalf("clocks diverge: scalar %d packed %d", scalar.Clock(), packed.Clock())
			}
			for i := range scalar.Ports() {
				cs, cp := scalar.Ports()[i].Count, packed.Ports()[i].Count
				if cs != cp {
					t.Fatalf("port %d counters diverge: scalar %+v packed %+v", i, cs, cp)
				}
			}
		})
	}
}

// TestDifferentialKernelFindCycle demands identical cycle windows —
// Lead, Length, per-port grants and conflict classification — and
// therefore identical b_eff from both cycle detectors.
func TestDifferentialKernelFindCycle(t *testing.T) {
	for _, tc := range kernelDiffCorpus {
		for _, prio := range []PriorityRule{FixedPriority, CyclicPriority, RoundRobinPerCPU} {
			tc, prio := tc, prio
			t.Run(fmt.Sprintf("%s/%v", tc.name, prio), func(t *testing.T) {
				cfg := Config{Banks: tc.m, BankBusy: tc.nc, Sections: tc.sections, CPUs: tc.cpus, Priority: prio}
				scalar, packed := buildKernelPair(cfg, corpusSpecs(tc.m, tc.d1, tc.d2, tc.b2, tc.cpus))
				cs, errS := scalar.FindCycle(1 << 22)
				cp, errP := packed.FindCycle(1 << 22)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("error mismatch: scalar %v packed %v", errS, errP)
				}
				if errS != nil {
					return
				}
				if !reflect.DeepEqual(cs, cp) {
					t.Fatalf("cycle windows diverge:\nscalar %+v\npacked %+v", cs, cp)
				}
				if bs, bp := cs.EffectiveBandwidth(), cp.EffectiveBandwidth(); bs != bp {
					t.Fatalf("b_eff diverges: scalar %v packed %v", bs, bp)
				}
			})
		}
	}
}

// TestDifferentialKernelRandom sweeps randomized (m, s, n_c, placement)
// configurations through all three comparison modes with a fixed seed.
func TestDifferentialKernelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19850607))
	for trial := 0; trial < 60; trial++ {
		m := rng.Intn(24) + 1
		nc := rng.Intn(6) + 1
		s := rng.Intn(m) + 1
		for m%s != 0 {
			s--
		}
		cfg := Config{Banks: m, Sections: s, BankBusy: nc, CPUs: rng.Intn(2) + 1}
		cfg.Priority = PriorityRule(rng.Intn(3))
		if rng.Intn(2) == 1 {
			cfg.Mapping = ConsecutiveSections
		}
		np := rng.Intn(3) + 2
		specs := make([]sourceSpec, 0, np)
		for i := 0; i < np; i++ {
			cpu := rng.Intn(cfg.CPUs)
			start, dist := int64(rng.Intn(m)), int64(rng.Intn(m))
			if rng.Intn(4) == 0 {
				specs = append(specs, finiteSpec(cpu, start, dist, rng.Intn(60)+1))
			} else {
				specs = append(specs, infiniteSpec(cpu, start, dist))
			}
		}
		name := fmt.Sprintf("trial%02d_m%d_s%d_nc%d", trial, m, s, nc)
		t.Run(name, func(t *testing.T) {
			scalar, packed := buildKernelPair(cfg, specs)
			stepCompare(t, scalar, packed, 200)
			// Fresh pair for the skip-ahead Run path.
			scalar, packed = buildKernelPair(cfg, specs)
			if gs, gp := scalar.Run(3000), packed.Run(3000); gs != gp {
				t.Fatalf("Run totals diverge: scalar %d packed %d", gs, gp)
			}
		})
	}
}

// FuzzKernelEquivalence mirrors FuzzSimulatorInvariants' configuration
// space but, instead of structural invariants, checks the packed kernel
// against the scalar oracle: identical per-clock grants and busy state
// over a mixed finite/infinite schedule, then identical FindCycle
// output on a fresh infinite-only pair.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint8(16), uint8(4), uint8(4), uint8(1), uint8(6), uint8(3), uint8(0), false)
	f.Add(uint8(12), uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), false)
	f.Add(uint8(13), uint8(6), uint8(1), uint8(1), uint8(6), uint8(0), uint8(0), true)
	f.Add(uint8(8), uint8(2), uint8(2), uint8(0), uint8(0), uint8(0), uint8(1), true)
	f.Add(uint8(12), uint8(3), uint8(3), uint8(1), uint8(7), uint8(1), uint8(2), false)

	f.Fuzz(func(t *testing.T, mRaw, ncRaw, sRaw, d1Raw, d2Raw, b2Raw, prioRaw uint8, consecutive bool) {
		m := int(mRaw%24) + 1
		nc := int(ncRaw%6) + 1
		s := int(sRaw%uint8(m)) + 1
		for m%s != 0 {
			s--
		}
		cfg := Config{Banks: m, Sections: s, BankBusy: nc, CPUs: 2}
		cfg.Priority = PriorityRule(prioRaw % 3)
		if consecutive {
			cfg.Mapping = ConsecutiveSections
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("constructed invalid config: %v", err)
		}
		d1, d2, b2 := int64(int(d1Raw)%m), int64(int(d2Raw)%m), int64(int(b2Raw)%m)
		specs := []sourceSpec{
			infiniteSpec(0, 0, d1),
			infiniteSpec(1, b2, d2),
			finiteSpec(0, 2, 1, 40),
		}
		scalar, packed := buildKernelPair(cfg, specs)
		stepCompare(t, scalar, packed, 300)

		scalar, packed = buildKernelPair(cfg, specs[:2])
		cs, errS := scalar.FindCycle(1 << 20)
		cp, errP := packed.FindCycle(1 << 20)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("FindCycle error mismatch: scalar %v packed %v", errS, errP)
		}
		if errS == nil && !reflect.DeepEqual(cs, cp) {
			t.Fatalf("cycle windows diverge:\nscalar %+v\npacked %+v", cs, cp)
		}
	})
}
