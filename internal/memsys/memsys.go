// Package memsys is a cycle-accurate simulator of the interleaved
// memory system described in Section II of Oed & Lange (1985):
//
//   - m banks; an address i lives in bank j = i mod m (other mappings,
//     e.g. skewing schemes, can be plugged in via BankMapper);
//   - a bank is busy ("active") for n_c clock periods once a request is
//     granted;
//   - the memory is reached through p ports, each able to issue one
//     request per clock; a blocked request — and everything queued
//     behind it in that port — is delayed one clock and retried
//     (dynamic conflict resolution);
//   - the banks are divided into s | m sections; each CPU owns exactly
//     one access path into each section, and a granted request occupies
//     that path for one clock.
//
// Three conflict classes are distinguished, exactly as in the paper:
//
//  1. bank conflict — the requested bank is still active;
//  2. simultaneous bank conflict — two or more ports using *different*
//     access paths (i.e. of different CPUs) request the same inactive
//     bank in the same clock; a priority rule picks the winner;
//  3. section conflict — two or more ports of the *same* CPU request
//     inactive banks within the same section and would need the same
//     access path; a priority rule picks the winner.
package memsys

import "fmt"

// SectionMapping selects how banks are distributed over sections.
type SectionMapping int

const (
	// CyclicSections distributes banks cyclically: section = bank mod s.
	// This is the paper's (and the Cray X-MP's) arrangement.
	CyclicSections SectionMapping = iota
	// ConsecutiveSections combines m/s consecutive banks into a section
	// (section = bank / (m/s)), the arrangement Cheung & Smith propose
	// to prevent linked conflicts (Fig. 9).
	ConsecutiveSections
)

// String names the mapping for tables and flag output.
func (sm SectionMapping) String() string {
	switch sm {
	case CyclicSections:
		return "cyclic"
	case ConsecutiveSections:
		return "consecutive"
	default:
		return fmt.Sprintf("SectionMapping(%d)", int(sm))
	}
}

// PriorityRule selects how simultaneous and section conflicts are
// arbitrated among ports.
type PriorityRule int

const (
	// FixedPriority always prefers the lower port index (Fig. 8a).
	FixedPriority PriorityRule = iota
	// CyclicPriority rotates the highest-priority port by one position
	// every clock period, the rule that resolves linked conflicts
	// (Fig. 8b).
	CyclicPriority
	// RoundRobinPerCPU rotates the highest-priority CPU group by one
	// position every clock period; within a group, ports arbitrate in ID
	// order. With one port per CPU it coincides with CyclicPriority, and
	// with one CPU it coincides with FixedPriority.
	RoundRobinPerCPU
)

// String names the rule for tables and flag output.
func (pr PriorityRule) String() string {
	switch pr {
	case FixedPriority:
		return "fixed"
	case CyclicPriority:
		return "cyclic"
	case RoundRobinPerCPU:
		return "rr-cpu"
	default:
		return fmt.Sprintf("PriorityRule(%d)", int(pr))
	}
}

// ParsePriority parses a priority-rule name as produced by
// PriorityRule.String — the shared vocabulary of every flag and wire
// surface ("fixed", "cyclic", "rr-cpu").
func ParsePriority(name string) (PriorityRule, error) {
	switch name {
	case "fixed":
		return FixedPriority, nil
	case "cyclic":
		return CyclicPriority, nil
	case "rr-cpu":
		return RoundRobinPerCPU, nil
	default:
		return 0, fmt.Errorf("memsys: unknown priority rule %q (want fixed, cyclic or rr-cpu)", name)
	}
}

// ParseMapping parses a section-mapping name as produced by
// SectionMapping.String ("cyclic", "consecutive").
func ParseMapping(name string) (SectionMapping, error) {
	switch name {
	case "cyclic":
		return CyclicSections, nil
	case "consecutive":
		return ConsecutiveSections, nil
	default:
		return 0, fmt.Errorf("memsys: unknown section mapping %q (want cyclic or consecutive)", name)
	}
}

// ConflictKind classifies why a request was delayed in a given clock.
type ConflictKind int

const (
	// NoConflict: the request was granted without delay.
	NoConflict ConflictKind = iota
	// BankConflict: access to an active bank was requested.
	BankConflict
	// SimultaneousConflict: the same inactive bank was requested by a
	// higher-priority port of another CPU in the same clock.
	SimultaneousConflict
	// SectionConflict: the CPU's single access path into the bank's
	// section was already taken this clock.
	SectionConflict
)

// String names the conflict class, matching the paper's terms.
func (k ConflictKind) String() string {
	switch k {
	case NoConflict:
		return "none"
	case BankConflict:
		return "bank"
	case SimultaneousConflict:
		return "simultaneous"
	case SectionConflict:
		return "section"
	default:
		return fmt.Sprintf("ConflictKind(%d)", int(k))
	}
}

// BankMapper maps a word address to a bank. The default is the paper's
// j = i mod m; package skew provides skewing schemes.
type BankMapper interface {
	Bank(addr int64) int
	// Banks returns m, the number of banks the mapper targets.
	Banks() int
}

// ModuloMapper is the standard m-way interleaving j = i mod m.
type ModuloMapper struct{ M int }

// Bank implements BankMapper.
func (mm ModuloMapper) Bank(addr int64) int {
	b := addr % int64(mm.M)
	if b < 0 {
		b += int64(mm.M)
	}
	return int(b)
}

// Banks implements BankMapper.
func (mm ModuloMapper) Banks() int { return mm.M }

// Source produces the ordered access requests of one port. The
// simulator calls Pending at most once per clock; a Source must keep
// reporting the same request until Grant is called (a delayed request
// stays pending — dynamic conflict resolution).
type Source interface {
	// Pending returns the word address of the port's current request,
	// or ok = false if the port has nothing to ask this clock (either
	// exhausted, or — for store ports — waiting for data).
	Pending(clock int64) (addr int64, ok bool)
	// Grant tells the source its pending request was serviced at clock;
	// the source advances to its next element.
	Grant(clock int64)
	// Done reports that the source will never issue again.
	Done() bool
}

// Counters aggregates what happened to one port.
type Counters struct {
	Grants       int64 // requests serviced
	Bank         int64 // clocks delayed by bank conflicts
	Simultaneous int64 // clocks delayed by simultaneous bank conflicts
	Section      int64 // clocks delayed by section conflicts
	Idle         int64 // clocks with no pending request
}

// Delays returns the total number of delayed clocks.
func (c Counters) Delays() int64 { return c.Bank + c.Simultaneous + c.Section }

// Conflicts returns the conflict counts as a (bank, simultaneous,
// section) triple — the three series of Fig. 10c–e.
func (c Counters) Conflicts() (bank, simultaneous, section int64) {
	return c.Bank, c.Simultaneous, c.Section
}

// Port is one access port into the memory system.
type Port struct {
	ID    int // index within the System, also the fixed priority
	CPU   int // which CPU's interconnection network the port belongs to
	Label string
	Src   Source
	Count Counters
}

// Event notifies listeners (e.g. the timeline recorder) of per-clock
// outcomes.
type Event struct {
	Clock   int64
	Port    *Port
	Bank    int
	Kind    ConflictKind // NoConflict for a grant
	Blocker *Port        // the port that caused a delay; nil for grants
}

// Listener receives one Event per port per clock in which the port had
// a pending request.
type Listener interface {
	Observe(Event)
}

// Config describes a memory system.
type Config struct {
	Banks    int            // m > 0
	Sections int            // s | m; 0 means s = m (a path per bank)
	BankBusy int            // n_c >= 1
	CPUs     int            // number of path groups; 0 means 1
	Mapping  SectionMapping // bank -> section distribution
	Priority PriorityRule   // arbitration among simultaneous requests
}

// Validate checks the structural assumptions (s | m, positive sizes).
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("memsys: banks must be positive, got %d", c.Banks)
	}
	if c.BankBusy < 1 {
		return fmt.Errorf("memsys: bank busy time must be >= 1, got %d", c.BankBusy)
	}
	s := c.Sections
	if s == 0 {
		s = c.Banks
	}
	if s < 1 || c.Banks%s != 0 {
		return fmt.Errorf("memsys: sections %d must divide banks %d", c.Sections, c.Banks)
	}
	if c.CPUs < 0 {
		return fmt.Errorf("memsys: negative CPU count %d", c.CPUs)
	}
	switch c.Mapping {
	case CyclicSections, ConsecutiveSections:
	default:
		return fmt.Errorf("memsys: unknown section mapping %d", int(c.Mapping))
	}
	switch c.Priority {
	case FixedPriority, CyclicPriority, RoundRobinPerCPU:
	default:
		return fmt.Errorf("memsys: unknown priority rule %d", int(c.Priority))
	}
	return nil
}

func (c Config) sections() int {
	if c.Sections == 0 {
		return c.Banks
	}
	return c.Sections
}

func (c Config) cpus() int {
	if c.CPUs == 0 {
		return 1
	}
	return c.CPUs
}

// System is a running memory system. Create with New, attach ports with
// AddPort, then drive it with Step/Run/FindCycle.
//
// Concurrency: a System is NOT safe for concurrent use. Every method —
// including the read-only accessors, which return internal slices and
// unsynchronised fields — must be called from the goroutine that owns
// the system. Parallel harnesses (internal/sweep's engine) give each
// worker goroutine a private System and reuse it across simulations
// via Reset; nothing in this package shares mutable state between
// System values, so any number of systems may run on different
// goroutines at once.
type System struct {
	cfg    Config
	mapper BankMapper
	ports  []*Port

	busy  []int   // per bank: remaining busy clocks (0 = idle)
	owner []*Port // per bank: port currently being serviced (busy > 0)

	// Per-clock scratch, stamped with the clock to avoid clearing.
	bankStamp  []int64 // bank granted this clock
	bankWinner []*Port
	pathStamp  [][]int64 // [cpu][section] granted this clock
	pathWinner [][]*Port

	clock    int64
	rr       int     // rotating priority pointer (CyclicPriority, RoundRobinPerCPU)
	order    []*Port // arbitration-order scratch, reused across clocks
	listener Listener

	// Packed-kernel state (see kernel.go), allocated by SetKernel and
	// unused while kernel == KernelScalar: the busy set as one bit per
	// bank, the absolute clock at which each busy bank frees, the
	// expiry event wheel (n_c+1 slots keyed by clock modulo the wheel
	// length) and the wheel's drain cursor.
	kernel  Kernel
	words   []uint64
	expiry  []int64
	wheel   [][]int32
	expired int64
}

// New creates a memory system with the default modulo bank mapping.
// It panics on an invalid configuration (programming error).
func New(cfg Config) *System {
	return NewWithMapper(cfg, ModuloMapper{M: cfg.Banks})
}

// NewWithMapper creates a memory system with a custom address-to-bank
// mapping (e.g. a skewing scheme).
func NewWithMapper(cfg Config, mapper BankMapper) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if mapper.Banks() != cfg.Banks {
		panic(fmt.Sprintf("memsys: mapper targets %d banks, config has %d", mapper.Banks(), cfg.Banks))
	}
	s := &System{
		cfg:    cfg,
		mapper: mapper,
		busy:   make([]int, cfg.Banks),
		owner:  make([]*Port, cfg.Banks),

		bankStamp:  make([]int64, cfg.Banks),
		bankWinner: make([]*Port, cfg.Banks),
	}
	for i := range s.bankStamp {
		s.bankStamp[i] = -1
	}
	nc := cfg.cpus()
	ns := cfg.sections()
	s.pathStamp = make([][]int64, nc)
	s.pathWinner = make([][]*Port, nc)
	for c := 0; c < nc; c++ {
		s.pathStamp[c] = make([]int64, ns)
		for k := range s.pathStamp[c] {
			s.pathStamp[c][k] = -1
		}
		s.pathWinner[c] = make([]*Port, ns)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Reset returns the system to an empty initial state while keeping its
// allocations, so one System can be reused for many simulations (the
// parallel sweep engine holds one per worker): all ports are detached,
// every bank is freed — including the packed kernel's busy bits and
// pending expiry events — and the priority rotation returns to zero.
// The configuration, bank mapper, kernel and listener are kept. The
// clock is NOT rewound — the per-clock grant stamps stay valid
// precisely because the clock only moves forward, which is what makes
// Reset O(m) instead of O(m·s) — so clock-derived quantities of a
// later run (FindCycle leads, listener event clocks) are relative to
// the clock at reuse.
func (s *System) Reset() {
	s.ports = s.ports[:0]
	for b := range s.busy {
		s.busy[b] = 0
		s.owner[b] = nil
	}
	s.rr = 0
	s.clearPacked()
}

// Mapper returns the address-to-bank mapping in use.
func (s *System) Mapper() BankMapper { return s.mapper }

// SetListener installs an event listener (nil to remove).
func (s *System) SetListener(l Listener) { s.listener = l }

// AddPort attaches a source as a new port on the given CPU and returns
// the port. Ports arbitrate in ID order under FixedPriority.
func (s *System) AddPort(cpu int, label string, src Source) *Port {
	if cpu < 0 || cpu >= s.cfg.cpus() {
		panic(fmt.Sprintf("memsys: CPU %d out of range [0,%d)", cpu, s.cfg.cpus()))
	}
	p := &Port{ID: len(s.ports), CPU: cpu, Label: label, Src: src}
	s.ports = append(s.ports, p)
	return p
}

// Ports returns the attached ports in ID order.
func (s *System) Ports() []*Port { return s.ports }

// Clock returns the number of clock periods simulated so far.
func (s *System) Clock() int64 { return s.clock }

// Section returns the section of a bank under the configured mapping.
func (s *System) Section(bank int) int {
	ns := s.cfg.sections()
	switch s.cfg.Mapping {
	case ConsecutiveSections:
		return bank / (s.cfg.Banks / ns)
	default:
		return bank % ns
	}
}

// BankBusy returns the remaining busy clocks of a bank (0 = idle).
func (s *System) BankBusy(bank int) int {
	if s.kernel == KernelPacked {
		if !s.packedBusy(bank) {
			return 0
		}
		return int(s.expiry[bank] - s.clock)
	}
	return s.busy[bank]
}

// BankOwner returns the port currently being serviced by the bank, or
// nil if the bank is idle.
func (s *System) BankOwner(bank int) *Port {
	if s.BankBusy(bank) == 0 {
		return nil
	}
	return s.owner[bank]
}

// Step advances the simulation by one clock period: all ports holding a
// pending request compete in priority order; winners occupy their bank
// for n_c clocks and their path for this clock; losers are delayed and
// classified. It returns the number of requests granted this clock.
func (s *System) Step() int {
	if s.kernel == KernelPacked {
		return s.stepPacked()
	}
	t := s.clock
	order := s.arbitrationOrder()
	granted := 0

	for _, p := range order {
		if p.Src == nil || p.Src.Done() {
			continue
		}
		addr, ok := p.Src.Pending(t)
		if !ok {
			p.Count.Idle++
			continue
		}
		bank := s.mapper.Bank(addr)
		if bank < 0 || bank >= s.cfg.Banks {
			panic(fmt.Sprintf("memsys: mapper produced bank %d out of [0,%d)", bank, s.cfg.Banks))
		}
		sec := s.Section(bank)

		var kind ConflictKind
		var blocker *Port
		switch {
		case s.bankStamp[bank] == t:
			// The same bank was granted earlier this clock, i.e. it was
			// inactive when both ports requested it: a simultaneous bank
			// conflict (different CPUs) or a section conflict (same CPU,
			// same path). This case must precede the busy check because
			// the grant already marked the bank active.
			w := s.bankWinner[bank]
			if w.CPU != p.CPU {
				kind, blocker = SimultaneousConflict, w
			} else {
				// Same CPU means the same access path: a section conflict
				// by the paper's taxonomy (definition 3 subsumes the case
				// because only one path into the section exists per CPU).
				kind, blocker = SectionConflict, w
			}
		case s.busy[bank] > 0:
			kind, blocker = BankConflict, s.owner[bank]
		case s.pathStamp[p.CPU][sec] == t:
			kind, blocker = SectionConflict, s.pathWinner[p.CPU][sec]
		}

		if kind == NoConflict {
			s.busy[bank] = s.cfg.BankBusy
			s.owner[bank] = p
			s.bankStamp[bank] = t
			s.bankWinner[bank] = p
			s.pathStamp[p.CPU][sec] = t
			s.pathWinner[p.CPU][sec] = p
			p.Src.Grant(t)
			p.Count.Grants++
			granted++
			// The nil check is inlined so the detached path constructs
			// no Event and stays free of observability cost.
			if s.listener != nil {
				s.listener.Observe(Event{Clock: t, Port: p, Bank: bank, Kind: NoConflict})
			}
		} else {
			switch kind {
			case BankConflict:
				p.Count.Bank++
			case SimultaneousConflict:
				p.Count.Simultaneous++
			case SectionConflict:
				p.Count.Section++
			}
			if s.listener != nil {
				s.listener.Observe(Event{Clock: t, Port: p, Bank: bank, Kind: kind, Blocker: blocker})
			}
		}
	}

	for b := range s.busy {
		if s.busy[b] > 0 {
			s.busy[b]--
		}
	}
	s.advanceRotation(1)
	s.clock++
	return granted
}

// rotationModulus returns the period of the priority rotation: 1 under
// FixedPriority (the rotation is degenerate), the port count under
// CyclicPriority and the CPU count under RoundRobinPerCPU.
func (s *System) rotationModulus() int {
	switch s.cfg.Priority {
	case CyclicPriority:
		return len(s.ports)
	case RoundRobinPerCPU:
		return s.cfg.cpus()
	default:
		return 1
	}
}

// advanceRotation moves the rotating priority pointer forward by delta
// clock periods (delta may exceed the modulus; blocked-stretch skipping
// applies whole stretches at once). A degenerate modulus pins rr at 0.
func (s *System) advanceRotation(delta int64) {
	m := int64(s.rotationModulus())
	if m <= 1 {
		s.rr = 0
		return
	}
	s.rr = int((((int64(s.rr) + delta) % m) + m) % m)
}

// PriorityHolderAt returns the port (or, under RoundRobinPerCPU, the
// lowest-ID port of the CPU group) that holds the highest priority in
// the given clock period. The answer is derived from the live rotation
// pointer rr, offset by t relative to the current clock — NOT from t
// alone — so it stays correct after Reset, which rewinds the rotation
// to zero while the clock keeps advancing. Nil when no ports are
// attached.
func (s *System) PriorityHolderAt(t int64) *Port {
	if len(s.ports) == 0 {
		return nil
	}
	m := int64(s.rotationModulus())
	if m <= 1 {
		return s.ports[0]
	}
	h := int((((int64(s.rr) + t - s.clock) % m) + m) % m)
	if s.cfg.Priority == RoundRobinPerCPU {
		// The holder is a CPU group; report its first port. A group with
		// no ports defers to the next group in rotation order, mirroring
		// arbitrationOrder.
		for g := 0; g < int(m); g++ {
			cpu := (h + g) % int(m)
			for _, p := range s.ports {
				if p.CPU == cpu {
					return p
				}
			}
		}
	}
	return s.ports[h]
}

// arbitrationOrder returns the ports in this clock's priority order.
// The returned slice is scratch owned by the System, valid until the
// next call.
func (s *System) arbitrationOrder() []*Port {
	switch s.cfg.Priority {
	case CyclicPriority:
		if s.rr == 0 {
			return s.ports
		}
		n := len(s.ports)
		order := s.order[:0]
		for i := 0; i < n; i++ {
			order = append(order, s.ports[(s.rr+i)%n])
		}
		s.order = order
		return order
	case RoundRobinPerCPU:
		nc := s.cfg.cpus()
		if nc <= 1 {
			return s.ports
		}
		order := s.order[:0]
		for g := 0; g < nc; g++ {
			cpu := (s.rr + g) % nc
			for _, p := range s.ports {
				if p.CPU == cpu {
					order = append(order, p)
				}
			}
		}
		s.order = order
		return order
	default:
		return s.ports
	}
}

// Run advances the simulation by n clock periods and returns the total
// number of grants. On the packed kernel without a listener it skips
// ahead over provably blocked stretches (see blockedStretch); counters
// and end state are identical to stepping every clock.
func (s *System) Run(n int64) int64 {
	if s.kernel == KernelPacked && s.listener == nil {
		return s.runPacked(n)
	}
	var total int64
	for i := int64(0); i < n; i++ {
		total += int64(s.Step())
	}
	return total
}

// RunUntilDone steps until every source is exhausted, or maxClocks
// elapse. It returns the number of clocks stepped and whether all
// sources finished.
func (s *System) RunUntilDone(maxClocks int64) (clocks int64, done bool) {
	for clocks = 0; clocks < maxClocks; clocks++ {
		if s.allDone() {
			return clocks, true
		}
		s.Step()
	}
	return clocks, s.allDone()
}

func (s *System) allDone() bool {
	for _, p := range s.ports {
		if p.Src != nil && !p.Src.Done() {
			return false
		}
	}
	return true
}

// TotalGrants sums grants over all ports.
func (s *System) TotalGrants() int64 {
	var n int64
	for _, p := range s.ports {
		n += p.Count.Grants
	}
	return n
}

// TotalCounters sums the counters over all ports.
func (s *System) TotalCounters() Counters {
	var c Counters
	for _, p := range s.ports {
		c.Grants += p.Count.Grants
		c.Bank += p.Count.Bank
		c.Simultaneous += p.Count.Simultaneous
		c.Section += p.Count.Section
		c.Idle += p.Count.Idle
	}
	return c
}
