package randaccess

import (
	"math"
	"testing"

	"ivm/internal/memsys"
)

func TestHellerman(t *testing.T) {
	if got := Hellerman(16); math.Abs(got-math.Pow(16, 0.56)) > 1e-12 {
		t.Errorf("Hellerman(16) = %v", got)
	}
	if Hellerman(1) != 1 {
		t.Error("Hellerman(1) != 1")
	}
	// Monotone in m.
	prev := 0.0
	for m := 1; m <= 64; m *= 2 {
		h := Hellerman(m)
		if h <= prev {
			t.Fatalf("not monotone at m=%d", m)
		}
		prev = h
	}
}

func TestBinomialDistinct(t *testing.T) {
	if got := BinomialDistinct(16, 0); got != 0 {
		t.Errorf("p=0: %v", got)
	}
	if got := BinomialDistinct(16, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("p=1: %v", got)
	}
	// p -> infinity approaches m.
	if got := BinomialDistinct(16, 10000); got < 15.99 {
		t.Errorf("p=10000: %v", got)
	}
	// Monotone in p, bounded by min(p, m).
	prev := 0.0
	for p := 0; p <= 64; p++ {
		v := BinomialDistinct(16, p)
		if v < prev || v > 16 || v > float64(p) {
			t.Fatalf("p=%d: %v (prev %v)", p, v, prev)
		}
		prev = v
	}
}

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(16, 42)
	b := NewSource(16, 42)
	for i := 0; i < 100; i++ {
		x, _ := a.Pending(0)
		y, _ := b.Pending(0)
		if x != y {
			t.Fatal("same seed diverged")
		}
		if x < 0 || x >= 16 {
			t.Fatalf("bank %d out of range", x)
		}
		a.Grant(0)
		b.Grant(0)
	}
}

func TestSourceHoldsPendingUntilGrant(t *testing.T) {
	s := NewSource(16, 7)
	x1, _ := s.Pending(0)
	x2, _ := s.Pending(1)
	if x1 != x2 {
		t.Fatal("pending request changed before grant (resubmission model violated)")
	}
	s.Grant(1)
	if s.Done() {
		t.Fatal("random source is never done")
	}
}

func TestSimulateBandwidthSanity(t *testing.T) {
	cfg := memsys.Config{Banks: 16, BankBusy: 1, CPUs: 4}
	r := Simulate(cfg, 4, 20000, 1)
	// nc=1, 4 random requesters on 16 banks, resubmission: bandwidth
	// must be close to (and below) the binomial drop estimate, and
	// clearly above half of it.
	bin := BinomialDistinct(16, 4) // ~3.63
	if r.Bandwidth > float64(r.P) || r.Bandwidth <= 0 {
		t.Fatalf("bandwidth %v out of range", r.Bandwidth)
	}
	if r.Bandwidth < 0.75*bin || r.Bandwidth > 1.05*bin {
		t.Fatalf("bandwidth %v vs binomial %v: outside plausibility band", r.Bandwidth, bin)
	}
}

func TestSimulateRespectsBankCapacity(t *testing.T) {
	cfg := memsys.Config{Banks: 8, BankBusy: 4, CPUs: 8}
	r := Simulate(cfg, 8, 20000, 3)
	cap := float64(cfg.Banks) / float64(cfg.BankBusy)
	if r.Bandwidth > cap {
		t.Fatalf("bandwidth %v exceeds bank capacity %v", r.Bandwidth, cap)
	}
	if r.Bandwidth < 0.5*cap {
		t.Fatalf("bandwidth %v suspiciously low (capacity %v)", r.Bandwidth, cap)
	}
}

// The introduction's point, quantified: for conflict-free strides the
// vector mode beats every random-access prediction; for the worst
// stride it collapses far below them. Random-access models say nothing
// useful about either case.
func TestVectorVsRandomDivergence(t *testing.T) {
	res := CompareStrides(16, 4, 4, []int{1, 8}, 20000)
	if len(res) != 2 {
		t.Fatalf("len = %d", len(res))
	}
	d1, d8 := res[0], res[1]
	if d1.Vector < 3.9 {
		t.Errorf("stride 1, 4 streams: vector bandwidth %v, want ~4 (conflict-free)", d1.Vector)
	}
	if d1.Random > d1.Vector {
		t.Errorf("random (%v) should trail conflict-free vector mode (%v)", d1.Random, d1.Vector)
	}
	// Stride 8: r=2 < nc=4, every stream at 1/2; aggregate far below
	// the binomial prediction for 4 ports.
	if d8.Vector > 2.1 {
		t.Errorf("stride 8 vector bandwidth %v, want ~2", d8.Vector)
	}
	if d8.Binomial < 3.5 {
		t.Errorf("binomial prediction %v unexpectedly low", d8.Binomial)
	}
}
