// Package randaccess implements the classical random-access analyses
// of interleaved memories that the paper's introduction contrasts
// itself with ("a variety of analytical models concerning the access to
// parallel memories has been developed in the past [1]-[5]. Very
// little, however, is known about interleaved memory systems in vector
// processors").
//
// Those prior models assume each processor requests a uniformly random
// bank, instead of the deterministic equally spaced streams of vector
// mode. Two classic closed forms are provided, together with a
// simulator built on the same memsys substrate as the vector analysis,
// so the difference between random-access predictions and vector-mode
// reality can be measured rather than argued:
//
//   - Hellerman's rule of thumb B ≈ m^0.56 for the expected number of
//     conflict-free accesses per memory cycle of a single request
//     queue;
//   - the binomial "drop" model: p independent requests to m banks
//     reach E = m(1-(1-1/m)^p) distinct banks per cycle.
package randaccess

import (
	"fmt"
	"math"
	"math/rand"

	"ivm/internal/memsys"
)

// Hellerman returns Hellerman's approximation m^0.56 for the effective
// number of banks kept busy by a single stream of random requests
// (n_c-free classical form).
func Hellerman(m int) float64 {
	if m <= 0 {
		panic(fmt.Sprintf("randaccess: invalid bank count %d", m))
	}
	return math.Pow(float64(m), 0.56)
}

// BinomialDistinct returns m(1-(1-1/m)^p), the expected number of
// distinct banks addressed when p processors each pick a bank uniformly
// at random — the per-cycle bandwidth of the classical "drop"
// (no-resubmission) model with n_c = 1.
func BinomialDistinct(m, p int) float64 {
	if m <= 0 || p < 0 {
		panic(fmt.Sprintf("randaccess: invalid m=%d p=%d", m, p))
	}
	return float64(m) * (1 - math.Pow(1-1/float64(m), float64(p)))
}

// Source issues uniformly random bank requests; a blocked request is
// resubmitted to the same bank until granted (the paper's dynamic
// conflict resolution applied to random traffic). The generator is
// seeded, so simulations are reproducible.
type Source struct {
	m    int
	rng  *rand.Rand
	addr int64
	have bool
}

// NewSource creates a random source over m banks with a fixed seed.
func NewSource(m int, seed int64) *Source {
	if m <= 0 {
		panic(fmt.Sprintf("randaccess: invalid bank count %d", m))
	}
	return &Source{m: m, rng: rand.New(rand.NewSource(seed))}
}

// Pending implements memsys.Source.
func (s *Source) Pending(int64) (int64, bool) {
	if !s.have {
		s.addr = int64(s.rng.Intn(s.m))
		s.have = true
	}
	return s.addr, true
}

// Grant implements memsys.Source.
func (s *Source) Grant(int64) { s.have = false }

// Done implements memsys.Source.
func (s *Source) Done() bool { return false }

// Result summarises a random-traffic simulation.
type Result struct {
	M, NC, P  int
	Clocks    int64
	Grants    int64
	Bandwidth float64 // grants per clock
}

// Simulate runs p random-request ports (one CPU slot each when the
// configuration allows, else round-robin over CPUs) for the given
// number of clocks and returns the measured bandwidth.
func Simulate(cfg memsys.Config, p int, clocks int64, seed int64) Result {
	sys := memsys.New(cfg)
	cpus := cfg.CPUs
	if cpus == 0 {
		cpus = 1
	}
	for i := 0; i < p; i++ {
		sys.AddPort(i%cpus, fmt.Sprintf("r%d", i), NewSource(cfg.Banks, seed+int64(i)*7919))
	}
	grants := sys.Run(clocks)
	return Result{
		M: cfg.Banks, NC: cfg.BankBusy, P: p,
		Clocks: clocks, Grants: grants,
		Bandwidth: float64(grants) / float64(clocks),
	}
}

// VectorVsRandom compares, for one stride, the vector-mode bandwidth of
// p equally spaced streams against random traffic from the same number
// of ports — the measurement behind the introduction's point that
// random-access models say little about vector processors.
type VectorVsRandom struct {
	Distance int
	Vector   float64
	Random   float64
	Binomial float64 // classical prediction for reference
}

// CompareStrides runs the comparison for each distance on a sectionless
// system (one CPU per port).
func CompareStrides(m, nc, p int, distances []int, clocks int64) []VectorVsRandom {
	out := make([]VectorVsRandom, 0, len(distances))
	for _, d := range distances {
		cfg := memsys.Config{Banks: m, BankBusy: nc, CPUs: p}
		vsys := memsys.New(cfg)
		for i := 0; i < p; i++ {
			vsys.AddPort(i, fmt.Sprintf("v%d", i), memsys.NewInfiniteStrided(int64(i), int64(d)))
		}
		vGrants := vsys.Run(clocks)

		r := Simulate(cfg, p, clocks, 1985)
		out = append(out, VectorVsRandom{
			Distance: d,
			Vector:   float64(vGrants) / float64(clocks),
			Random:   r.Bandwidth,
			Binomial: BinomialDistinct(m, p),
		})
	}
	return out
}
