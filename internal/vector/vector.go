// Package vector models Fortran array storage the way Section IV of
// the paper sets up its experiments: column-major, 1-based arrays
// packed consecutively into a COMMON block, so that start banks and
// access distances can be computed exactly.
//
// The stride rule is Eq. 33: accessing the (k+1)-th dimension of an
// array with a Fortran increment INC produces the distance
//
//	d = INC * J_0 * J_1 * ... * J_{k-1}  (mod m),   J_0 = 1,
//
// where J_i is the size of the i-th dimension.
package vector

import "fmt"

// Array is a Fortran array placed at a word address. Dims holds the
// declared extents (column-major; the first dimension varies fastest).
type Array struct {
	Name string
	Base int64
	Dims []int
}

// Words returns the array's total size in words.
func (a *Array) Words() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= int64(d)
	}
	return n
}

// Addr returns the word address of the element with the given 1-based
// Fortran subscripts.
func (a *Array) Addr(subs ...int) int64 {
	if len(subs) != len(a.Dims) {
		panic(fmt.Sprintf("vector: %s has %d dimensions, got %d subscripts", a.Name, len(a.Dims), len(subs)))
	}
	off := int64(0)
	mult := int64(1)
	for k, s := range subs {
		if s < 1 || s > a.Dims[k] {
			panic(fmt.Sprintf("vector: %s subscript %d out of bounds [1,%d]", a.Name, s, a.Dims[k]))
		}
		off += int64(s-1) * mult
		mult *= int64(a.Dims[k])
	}
	return a.Base + off
}

// DimStride returns the word distance between consecutive elements
// along dimension k (0-based): the product of the extents of the
// preceding dimensions (J_0 * … * J_{k-1}, with J_0 = 1).
func (a *Array) DimStride(k int) int64 {
	if k < 0 || k >= len(a.Dims) {
		panic(fmt.Sprintf("vector: %s has no dimension %d", a.Name, k))
	}
	mult := int64(1)
	for i := 0; i < k; i++ {
		mult *= int64(a.Dims[i])
	}
	return mult
}

// DiagonalStride returns the word distance between consecutive
// elements of the main diagonal of a 2-D array: J_0 dimension stride
// plus the column stride (1 + J_1-stride).
func (a *Array) DiagonalStride() int64 {
	if len(a.Dims) != 2 {
		panic(fmt.Sprintf("vector: %s is not 2-D", a.Name))
	}
	return 1 + a.DimStride(1)
}

// Distance is Eq. 33: the bank-space distance of a loop with Fortran
// increment inc over dimension k of the array, modulo m banks.
func Distance(inc int, a *Array, k, m int) int {
	d := (int64(inc) * a.DimStride(k)) % int64(m)
	if d < 0 {
		d += int64(m)
	}
	return int(d)
}

// StartBank returns the bank of the array's first element under m-way
// modulo interleaving.
func (a *Array) StartBank(m int) int {
	b := a.Base % int64(m)
	if b < 0 {
		b += int64(m)
	}
	return int(b)
}

// CommonBlock packs arrays consecutively, like a Fortran COMMON block;
// the paper pins relative start banks this way:
//
//	COMMON// A(IDIM), B(IDIM), C(IDIM), D(IDIM)
//
// with IDIM = 16*1024 + 1, so the first elements of the arrays are one
// bank apart on the 16-bank X-MP.
type CommonBlock struct {
	Base int64
	next int64
	list []*Array
}

// NewCommonBlock starts a block at the given word address.
func NewCommonBlock(base int64) *CommonBlock {
	return &CommonBlock{Base: base, next: base}
}

// Declare appends an array with the given extents and returns it.
func (cb *CommonBlock) Declare(name string, dims ...int) *Array {
	if len(dims) == 0 {
		panic("vector: array needs at least one dimension")
	}
	a := &Array{Name: name, Base: cb.next, Dims: dims}
	cb.next += a.Words()
	cb.list = append(cb.list, a)
	return a
}

// Arrays returns the declared arrays in declaration order.
func (cb *CommonBlock) Arrays() []*Array { return cb.list }

// Words returns the block's total size.
func (cb *CommonBlock) Words() int64 { return cb.next - cb.Base }
