package vector

import "testing"

func TestAddrColumnMajor(t *testing.T) {
	a := &Array{Name: "X", Base: 100, Dims: []int{10, 5}}
	if got := a.Addr(1, 1); got != 100 {
		t.Errorf("Addr(1,1) = %d", got)
	}
	if got := a.Addr(2, 1); got != 101 {
		t.Errorf("Addr(2,1) = %d (first dimension varies fastest)", got)
	}
	if got := a.Addr(1, 2); got != 110 {
		t.Errorf("Addr(1,2) = %d", got)
	}
	if got := a.Addr(10, 5); got != 149 {
		t.Errorf("Addr(10,5) = %d", got)
	}
}

func TestAddrBoundsPanic(t *testing.T) {
	a := &Array{Name: "X", Base: 0, Dims: []int{10}}
	for _, bad := range [][]int{{0}, {11}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Addr(%v) did not panic", bad)
				}
			}()
			a.Addr(bad...)
		}()
	}
}

func TestDimStride(t *testing.T) {
	a := &Array{Name: "X", Dims: []int{7, 11, 13}}
	if got := a.DimStride(0); got != 1 {
		t.Errorf("DimStride(0) = %d", got)
	}
	if got := a.DimStride(1); got != 7 {
		t.Errorf("DimStride(1) = %d", got)
	}
	if got := a.DimStride(2); got != 77 {
		t.Errorf("DimStride(2) = %d", got)
	}
}

func TestDiagonalStride(t *testing.T) {
	a := &Array{Name: "X", Dims: []int{64, 64}}
	if got := a.DiagonalStride(); got != 65 {
		t.Errorf("DiagonalStride = %d", got)
	}
}

// Eq. 33: d = INC * prod(J_i) mod m. The conclusion's advice: accessing
// rows of a 64x64 array on a 16-bank machine gives d = 64 mod 16 = 0 —
// the pathological case — while a 65-wide declaration gives d = 1.
func TestDistanceEq33(t *testing.T) {
	bad := &Array{Name: "BAD", Dims: []int{64, 64}}
	if got := Distance(1, bad, 1, 16); got != 0 {
		t.Errorf("row access distance of 64-wide array = %d, want 0", got)
	}
	good := &Array{Name: "GOOD", Dims: []int{65, 64}}
	if got := Distance(1, good, 1, 16); got != 1 {
		t.Errorf("row access distance of 65-wide array = %d, want 1", got)
	}
	vec := &Array{Name: "V", Dims: []int{1024}}
	for inc := 1; inc <= 16; inc++ {
		if got := Distance(inc, vec, 0, 16); got != inc%16 {
			t.Errorf("Distance(inc=%d) = %d", inc, got)
		}
	}
}

func TestCommonBlockPacking(t *testing.T) {
	// The paper's layout: IDIM = 16*1024+1 places the arrays one bank
	// apart on the 16-bank X-MP.
	const idim = 16*1024 + 1
	cb := NewCommonBlock(0)
	a := cb.Declare("A", idim)
	b := cb.Declare("B", idim)
	c := cb.Declare("C", idim)
	d := cb.Declare("D", idim)
	banks := []int{a.StartBank(16), b.StartBank(16), c.StartBank(16), d.StartBank(16)}
	for i, want := range []int{0, 1, 2, 3} {
		if banks[i] != want {
			t.Fatalf("start banks = %v, want 0,1,2,3", banks)
		}
	}
	if cb.Words() != 4*idim {
		t.Errorf("block size = %d", cb.Words())
	}
	if got := len(cb.Arrays()); got != 4 {
		t.Errorf("Arrays() = %d entries", got)
	}
}

func TestCommonBlockMultiDim(t *testing.T) {
	cb := NewCommonBlock(1000)
	m := cb.Declare("M", 8, 8)
	v := cb.Declare("V", 10)
	if m.Base != 1000 || v.Base != 1064 {
		t.Errorf("bases: M=%d V=%d", m.Base, v.Base)
	}
	if m.Words() != 64 {
		t.Errorf("M.Words() = %d", m.Words())
	}
}

func TestStartBankNegativeBase(t *testing.T) {
	a := &Array{Name: "X", Base: -1, Dims: []int{4}}
	if got := a.StartBank(16); got != 15 {
		t.Errorf("StartBank = %d", got)
	}
}
