package core

import (
	"fmt"

	"ivm/internal/modmath"
	"ivm/internal/rat"
)

// Eq. 8 is the paper's exact pointwise criterion: two streams with
// given start banks are conflict free iff for every k the n_c-windows
//
//	{b1 + k·d1, …, b1 + (k+n_c-1)·d1}  and
//	{b2 + k·d2, …, b2 + (k+n_c-1)·d2}   (mod m)
//
// are disjoint — a bank accessed by one stream is busy for n_c clocks,
// during which the other stream walks n_c banks of its own. This file
// implements Eq. 8 directly (it needs only lcm(r1, r2) values of k) and
// derives per-start predictions from it, giving the model a per-start
// resolution the closed-form theorems summarise.

// PairConflictFreeAt evaluates Eq. 8: whether the free-running patterns
// from the given start banks never collide. This is stronger than
// "reaches a conflict-free cycle" — synchronisation (Theorem 3) can
// repair colliding starts — and exactly characterises runs with zero
// conflicts from clock 0.
func PairConflictFreeAt(m, nc, b1, d1, b2, d2 int) bool {
	checkParams(m, nc)
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	b1, b2 = modmath.Mod(b1, m), modmath.Mod(b2, m)
	r1 := ReturnNumber(m, d1)
	r2 := ReturnNumber(m, d2)
	period := modmath.LCM(r1, r2)
	// Window-disjointness for k and k+period is identical; checking one
	// period of k suffices. The window condition compares positions
	// j in [k, k+nc): collision iff b1 + i·d1 = b2 + j·d2 (mod m) with
	// |i - j| < nc, i, j >= 0. Scanning k over a period with the two
	// windows is equivalent.
	for k := 0; k < period; k++ {
		w1 := make(map[int]bool, nc)
		for t := 0; t < nc; t++ {
			w1[modmath.Mod(b1+(k+t)*d1, m)] = true
		}
		for t := 0; t < nc; t++ {
			if w1[modmath.Mod(b2+(k+t)*d2, m)] {
				return false
			}
		}
	}
	return true
}

// ConflictFreeOffsets returns every relative start offset b2 (with
// b1 = 0) for which Eq. 8 holds — the complete set of placements whose
// free-running patterns never collide. Empty when no such offset
// exists (then only synchronisation, if Theorem 3 applies, can still
// yield a conflict-free cycle).
func ConflictFreeOffsets(m, nc, d1, d2 int) []int {
	var out []int
	for b2 := 0; b2 < m; b2++ {
		if PairConflictFreeAt(m, nc, 0, d1, b2, d2) {
			out = append(out, b2)
		}
	}
	return out
}

// PredictPair is the per-start refinement of Analyze: given concrete
// start banks it reports, where the model can, the exact cyclic-state
// bandwidth.
type PairPrediction struct {
	// Exact is true when the model pins the bandwidth analytically.
	Exact     bool
	Bandwidth rat.Rational
	Reason    string
}

// PredictPairAt combines the pointwise Eq. 8 test with the global
// theorems for a per-start verdict:
//
//   - Eq. 8 holds at (b1, b2): conflict free, b_eff = 2;
//   - Theorem 3's condition holds: synchronisation, b_eff = 2;
//   - disjoint access sets and (Theorem 8 logic with s = m degenerate)
//     — covered by Eq. 8 already;
//   - a unique barrier: b_eff = 1 + d1'/d2';
//   - otherwise: not pinned (simulate).
func PredictPairAt(m, nc, b1, d1, b2, d2 int) PairPrediction {
	if r := ReturnNumber(m, d1); r < nc {
		return PairPrediction{Reason: fmt.Sprintf("stream 1 self-conflicts (r=%d < n_c)", r)}
	}
	if r := ReturnNumber(m, d2); r < nc {
		return PairPrediction{Reason: fmt.Sprintf("stream 2 self-conflicts (r=%d < n_c)", r)}
	}
	if PairConflictFreeAt(m, nc, b1, d1, b2, d2) {
		return PairPrediction{Exact: true, Bandwidth: rat.New(2, 1), Reason: "Eq. 8 holds at these starts"}
	}
	if ConflictFreeCondition(m, nc, d1, d2) {
		return PairPrediction{Exact: true, Bandwidth: rat.New(2, 1), Reason: "Theorem 3 synchronisation"}
	}
	v := AnalyzeBarrier(m, nc, d1, d2, Stream1Priority)
	if v.Possible && v.Unique {
		return PairPrediction{Exact: true, Bandwidth: v.Bandwidth, Reason: "unique barrier (Theorems 4+6/7)"}
	}
	return PairPrediction{Reason: "start-dependent conflicting state; simulate"}
}
