package core

import (
	"fmt"

	"ivm/internal/rat"
	"ivm/internal/stream"
)

// Section IV observes that with six active ports "access conflicts are
// bound to occur since 6·n_c = 24 > 16, i.e., 16 banks are not
// sufficient to support all access requests in parallel". This file
// generalises that counting argument to upper bounds on the aggregate
// effective bandwidth of p concurrent streams. The bounds are exact
// capacity limits (every grant occupies a bank for n_c clocks and a
// per-CPU section path for one clock), so the simulator can never
// exceed them; tests check both the inequality and tightness on the
// paper's example.

// SaturationBound is the coarse port/bank bound for p always-busy
// streams on an m-bank memory with bank busy time n_c:
//
//	b_eff <= min(p, m/n_c).
func SaturationBound(m, nc, p int) rat.Rational {
	checkParams(m, nc)
	if p < 0 {
		panic(fmt.Sprintf("core: negative port count %d", p))
	}
	banks := rat.New(int64(m), int64(nc))
	ports := rat.FromInt(int64(p))
	if ports.Cmp(banks) <= 0 {
		return ports
	}
	return banks
}

// PortsSaturate reports the paper's "conflicts are bound to occur"
// condition: p·n_c > m.
func PortsSaturate(m, nc, p int) bool {
	checkParams(m, nc)
	return p*nc > m
}

// PairBandwidthBounds returns provable lower and upper bounds on the
// cyclic-state bandwidth of the standard pair configuration (two CPUs,
// stream 1 holding fixed priority), valid for EVERY relative start —
// the sandwich the differential sweep tests squeeze the simulator
// into.
//
// Lower bound, 1/n_c: in a clock with no grant every pending request
// is delayed, and — since a simultaneous or section conflict implies a
// same-clock winner — every delay is a bank conflict, i.e. every
// requested bank is busy. A bank granted at t is busy only through
// t+n_c−1, so at most n_c−1 grantless clocks can run back to back;
// infinite streams always have a pending request, hence at least one
// grant every n_c clocks.
//
// Upper bound: the tighter of the §III-A self-conflict bound
// min(1, r1/n_c) + min(1, r2/n_c) (which also subsumes the two-port
// bound) and the bank-capacity bound min(m, r1+r2)/n_c — the two
// streams touch at most r1+r2 distinct banks regardless of their
// starts, and each bank serves one grant per n_c clocks.
func PairBandwidthBounds(m, nc, d1, d2 int) (lo, hi rat.Rational) {
	checkParams(m, nc)
	lo = rat.New(1, int64(nc))
	r1 := ReturnNumber(m, d1)
	r2 := ReturnNumber(m, d2)
	hi = SingleStreamBandwidth(m, nc, d1).Add(SingleStreamBandwidth(m, nc, d2))
	banks := r1 + r2
	if banks > m {
		banks = m
	}
	if capBound := rat.New(int64(banks), int64(nc)); capBound.Cmp(hi) < 0 {
		hi = capBound
	}
	return lo, hi
}

// StreamSet describes one concurrent stream for MultiStreamBound.
type StreamSet struct {
	Stream stream.Stream
	CPU    int
}

// MultiStreamBound returns the tightest of several exact capacity
// bounds on the aggregate steady-state bandwidth of the given streams
// against an (m, s, n_c) memory (s = 0 means one section per bank):
//
//  1. the port bound: one request per stream per clock;
//  2. the per-stream self-conflict bound sum_i min(1, r_i/n_c);
//  3. the bank-capacity bound |union of access sets| / n_c — every
//     touched bank serves at most one grant per n_c clocks;
//  4. per-bank demand: a bank shared by k streams... subsumed by 3 for
//     the aggregate; and
//  5. the path bound: a CPU with q ports into s sections is granted at
//     most min(q, s) requests per clock.
func MultiStreamBound(m, s, nc int, sets []StreamSet) rat.Rational {
	checkParams(m, nc)
	if s == 0 {
		s = m
	}
	if s <= 0 || m%s != 0 {
		panic(fmt.Sprintf("core: sections %d must divide banks %d", s, m))
	}

	// 1. port bound and 2. self-conflict bound.
	selfBound := rat.Zero()
	for _, st := range sets {
		if st.Stream.Banks != m {
			panic(fmt.Sprintf("core: stream %v uses %d banks, system has %d", st.Stream, st.Stream.Banks, m))
		}
		selfBound = selfBound.Add(SingleStreamBandwidth(m, nc, st.Stream.Distance))
	}

	// 3. bank-capacity bound over the union of access sets.
	touched := make(map[int]bool)
	for _, st := range sets {
		for _, b := range st.Stream.AccessSet() {
			touched[b] = true
		}
	}
	bankBound := rat.New(int64(len(touched)), int64(nc))

	// 5. path bound per CPU.
	perCPU := make(map[int]int)
	for _, st := range sets {
		perCPU[st.CPU]++
	}
	pathTotal := 0
	for _, q := range perCPU {
		if q < s {
			pathTotal += q
		} else {
			pathTotal += s
		}
	}
	pathBound := rat.FromInt(int64(pathTotal))

	best := selfBound
	for _, b := range []rat.Rational{bankBound, pathBound} {
		if b.Cmp(best) < 0 {
			best = b
		}
	}
	return best
}
