package core

import (
	"sort"

	"ivm/internal/modmath"
	"ivm/internal/rat"
)

// Theorems 4–7 are stated for the canonical position d1 | m, d2 > d1,
// reached via the Appendix's isomorphism. A given pair (d1, d2)
// generally has several canonical images (one per role assignment and
// per unit k with k·d ≡ gcd(m, d)), and the theorems give *sufficient*
// conditions per image: the underlying dynamics are invariant under
// bank renumbering, so a barrier established in any image exists in all
// of them. The classifier therefore takes the disjunction over images.
//
// One subtlety is priority-sensitive: Theorem 7's equality case
// (Eq. 28) requires "access stream 1 [the d1-role stream] has higher
// priority over access stream 2", so each image must remember which
// original stream plays the d1 role.

// Rep is one canonical image of a stream pair: D1 | m, D2 > D1.
// Swapped reports that the *second* original stream plays the d1 role.
type Rep struct {
	D1, D2  int
	Swapped bool
}

// Representations returns the distinct canonical images of the pair
// (d1, d2) modulo m, sorted by (D1, D2, role).
func Representations(m, d1, d2 int) []Rep {
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	seen := make(map[Rep]bool)
	addImages := func(a, b int, swapped bool) {
		if a == 0 {
			return
		}
		fa := modmath.GCD(m, a)
		for _, k := range modmath.Units(m) {
			if modmath.Mod(k*a, m) != fa {
				continue
			}
			img := Rep{D1: fa, D2: modmath.Mod(k*b, m), Swapped: swapped}
			if img.D2 > img.D1 {
				seen[img] = true
			}
		}
	}
	addImages(d1, d2, false)
	addImages(d2, d1, true)
	reps := make([]Rep, 0, len(seen))
	for r := range seen {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool {
		if reps[i].D1 != reps[j].D1 {
			return reps[i].D1 < reps[j].D1
		}
		if reps[i].D2 != reps[j].D2 {
			return reps[i].D2 < reps[j].D2
		}
		return !reps[i].Swapped && reps[j].Swapped
	})
	return reps
}

// PriorityAssumption states which original stream wins simultaneous
// bank conflicts (a fixed priority rule), enabling Theorem 7's Eq. 28.
type PriorityAssumption int

const (
	// NoPriorityInfo: the equality case of Eq. 28 is never assumed.
	NoPriorityInfo PriorityAssumption = iota
	// Stream1Priority: the first stream wins ties (e.g. the lower port
	// index under the simulator's fixed priority).
	Stream1Priority
	// Stream2Priority: the second stream wins ties.
	Stream2Priority
)

// BarrierVerdict summarises the barrier analysis of a pair across all
// of its canonical representations.
type BarrierVerdict struct {
	// Possible: some representation satisfies Theorem 4 (Eq. 17) —
	// start banks leading to a barrier-situation exist.
	Possible bool
	// Unique: some representation additionally satisfies Theorem 6 or
	// Theorem 7 (incl. Eq. 28 when the priority assumption matches the
	// representation's d1 role): the barrier is reached from every
	// relative start.
	Unique bool
	// Bandwidth is Eq. 29's b_eff = 1 + d1'/d2' evaluated in the
	// witnessing representation (the unique one if any, else the first
	// barrier-possible one). Only meaningful when Possible.
	Bandwidth rat.Rational
	// Witness is the representation that produced the verdict.
	Witness Rep
}

// AnalyzeBarrier runs Theorems 4–7 over every canonical representation
// of the pair and combines the verdicts.
func AnalyzeBarrier(m, nc, d1, d2 int, prio PriorityAssumption) BarrierVerdict {
	var v BarrierVerdict
	for _, rep := range Representations(m, d1, d2) {
		possible, err := BarrierPossible(m, nc, rep.D1, rep.D2)
		if err != nil || !possible {
			continue
		}
		if !v.Possible {
			v.Possible = true
			v.Bandwidth = BarrierBandwidth(rep.D1, rep.D2)
			v.Witness = rep
		}
		// Eq. 28 needs the d1-role stream to hold the fixed priority.
		d1RoleHasPriority := (prio == Stream1Priority && !rep.Swapped) ||
			(prio == Stream2Priority && rep.Swapped)
		unique, _ := UniqueBarrier(m, nc, rep.D1, rep.D2, d1RoleHasPriority)
		if unique && !v.Unique {
			v.Unique = true
			v.Bandwidth = BarrierBandwidth(rep.D1, rep.D2)
			v.Witness = rep
		}
	}
	return v
}
