package core_test

import (
	"fmt"

	"ivm/internal/core"
)

// The paper's Fig. 2 parameters: Theorem 3 certifies conflict-freeness
// and the synchronisation property makes it hold from any start.
func ExampleAnalyze() {
	a := core.Analyze(12, 3, 1, 7)
	fmt.Println(a.Regime, a.Bandwidth, a.StartIndependent)
	// Output: conflict-free 2 true
}

// A unit-stride loop against a stride-2 loop on the X-MP: a unique
// barrier-situation with Eq. 29's bandwidth.
func ExampleAnalyze_barrier() {
	a := core.Analyze(16, 4, 1, 2)
	fmt.Println(a.Regime, a.Bandwidth)
	// Output: unique-barrier 3/2
}

func ExampleReturnNumber() {
	// Theorem 1: r = m / gcd(m, d).
	fmt.Println(core.ReturnNumber(16, 6), core.ReturnNumber(16, 8))
	// Output: 8 2
}

func ExampleSingleStreamBandwidth() {
	// Stride 8 on 16 banks revisits its bank after r = 2 accesses,
	// faster than the n_c = 4 clock bank cycle: b_eff = r/n_c.
	fmt.Println(core.SingleStreamBandwidth(16, 4, 8))
	// Output: 1/2
}

func ExampleBarrierBandwidth() {
	// Eq. 29 for the Fig. 3 barrier (d1 = 1, d2 = 6).
	fmt.Println(core.BarrierBandwidth(1, 6))
	// Output: 7/6
}

func ExampleSaturationBound() {
	// Section IV: six ports against 16 banks with n_c = 4 saturate at
	// the bank capacity m/n_c.
	fmt.Println(core.SaturationBound(16, 4, 6), core.PortsSaturate(16, 4, 6))
	// Output: 4 true
}

func ExampleDisjointPossible() {
	// Theorem 2: even distances on 16 banks can be kept on disjoint
	// bank sets by adjacent start banks.
	fmt.Println(core.DisjointPossible(16, 2, 4), core.DisjointPossible(16, 1, 2))
	// Output: true false
}
