package core

import (
	"strings"
	"testing"

	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stream"
)

func TestReturnNumberMatchesStream(t *testing.T) {
	for m := 1; m <= 32; m++ {
		for d := 0; d < m; d++ {
			if ReturnNumber(m, d) != stream.ReturnNumber(m, d) {
				t.Fatalf("m=%d d=%d", m, d)
			}
		}
	}
}

func TestSingleStreamBandwidth(t *testing.T) {
	cases := []struct {
		m, nc, d int
		want     rat.Rational
	}{
		{16, 4, 1, rat.One()},
		{16, 4, 8, rat.New(1, 2)}, // r=2
		{16, 4, 0, rat.New(1, 4)}, // r=1
		{16, 4, 4, rat.One()},     // r=4 = nc
		{12, 6, 4, rat.New(1, 2)}, // r=3
		{13, 6, 2, rat.One()},     // r=13
		{8, 3, 6, rat.One()},      // r=4 > 3
		{8, 5, 6, rat.New(4, 5)},  // r=4 < 5
	}
	for _, c := range cases {
		if got := SingleStreamBandwidth(c.m, c.nc, c.d); !got.Equal(c.want) {
			t.Errorf("m=%d nc=%d d=%d: %s, want %s", c.m, c.nc, c.d, got, c.want)
		}
	}
}

func TestDisjointPossibleTheorem2(t *testing.T) {
	cases := []struct {
		m, d1, d2 int
		want      bool
	}{
		{16, 2, 4, true},
		{16, 2, 3, false},
		{16, 1, 1, false},
		{12, 3, 9, true},
		{12, 4, 6, true},  // gcd(12,4,6)=2
		{13, 2, 4, false}, // prime m
		{16, 0, 0, true},  // gcd(m,0,0)=m
		{16, 0, 2, true},  // gcd = 2
		{16, 0, 3, false},
	}
	for _, c := range cases {
		if got := DisjointPossible(c.m, c.d1, c.d2); got != c.want {
			t.Errorf("DisjointPossible(%d,%d,%d) = %v, want %v", c.m, c.d1, c.d2, got, c.want)
		}
		b1, b2, ok := DisjointStarts(c.m, c.d1, c.d2)
		if ok != c.want {
			t.Errorf("DisjointStarts(%d,%d,%d) ok = %v", c.m, c.d1, c.d2, ok)
		}
		if ok {
			s1 := stream.Infinite(c.m, b1, c.d1)
			s2 := stream.Infinite(c.m, b2, c.d2)
			if !stream.Disjoint(s1, s2) {
				t.Errorf("DisjointStarts(%d,%d,%d) = %d,%d not disjoint", c.m, c.d1, c.d2, b1, b2)
			}
		}
	}
}

func TestConflictFreeConditionPaperExamples(t *testing.T) {
	// Fig. 2: m=12, nc=3, d1=1, d2=7: gcd(12,6)=6 >= 6.
	if !ConflictFreeCondition(12, 3, 1, 7) {
		t.Error("Fig. 2 case should be conflict free")
	}
	// Same pair with nc=4 fails: 6 < 8.
	if ConflictFreeCondition(12, 4, 1, 7) {
		t.Error("m=12 nc=4 d1=1 d2=7 should not be conflict free")
	}
	// Equal distances: gcd(m, 0) = m, conflict free iff r >= 2nc.
	if !ConflictFreeCondition(16, 4, 3, 3) { // r=16 >= 8
		t.Error("equal distances with r >= 2nc should be conflict free")
	}
	if !ConflictFreeCondition(16, 4, 2, 2) { // gcd(m/f, 0) = m/f = 8 >= 8
		t.Error("m=16 nc=4 d=2: m/f = 8 >= 2nc = 8, should be conflict free")
	}
	if ConflictFreeCondition(16, 4, 4, 4) { // m/f = 4 < 8
		t.Error("m=16 nc=4 d=4 should not be conflict free")
	}
	// Triad stride 9 against environment 1 on the X-MP (Section IV):
	// "this case is also theoretically conflict free (Theorem 3)":
	// gcd(16, 8) = 8 >= 2*4.
	if !ConflictFreeCondition(16, 4, 1, 9) {
		t.Error("INC=9 vs d=1 on the X-MP should be conflict free by Theorem 3")
	}
}

func TestConflictFreeConditionIsomorphismInvariant(t *testing.T) {
	for m := 2; m <= 24; m++ {
		units := modmath.Units(m)
		for d1 := 0; d1 < m; d1++ {
			for d2 := 0; d2 < m; d2++ {
				base := ConflictFreeCondition(m, 3, d1, d2)
				for _, k := range units {
					if got := ConflictFreeCondition(m, 3, k*d1%m, k*d2%m); got != base {
						t.Fatalf("m=%d d1=%d d2=%d k=%d: invariance broken", m, d1, d2, k)
					}
				}
			}
		}
	}
}

func TestConflictFreeConditionSymmetric(t *testing.T) {
	for m := 2; m <= 24; m++ {
		for nc := 1; nc <= 4; nc++ {
			for d1 := 0; d1 < m; d1++ {
				for d2 := 0; d2 < m; d2++ {
					if ConflictFreeCondition(m, nc, d1, d2) != ConflictFreeCondition(m, nc, d2, d1) {
						t.Fatalf("m=%d nc=%d d1=%d d2=%d: asymmetric", m, nc, d1, d2)
					}
				}
			}
		}
	}
}

func TestBarrierPossiblePaperExamples(t *testing.T) {
	// Fig. 3: m=13, nc=6, d1=1, d2=6.
	ok, err := BarrierPossible(13, 6, 1, 6)
	if err != nil || !ok {
		t.Errorf("Fig. 3 barrier: ok=%v err=%v", ok, err)
	}
	// Fig. 5: m=13, nc=4, d1=1, d2=3.
	ok, err = BarrierPossible(13, 4, 1, 3)
	if err != nil || !ok {
		t.Errorf("Fig. 5 barrier: ok=%v err=%v", ok, err)
	}
	// d2 - d1 large: m=13, nc=2, d2=8: c = 7 mod 13 >= nc -> no barrier.
	ok, err = BarrierPossible(13, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("m=13 nc=2 d1=1 d2=8: barrier should not be possible (c = 7 >= nc)")
	}
}

func TestBarrierPreconditionErrors(t *testing.T) {
	if _, err := BarrierPossible(13, 4, 2, 3); err == nil {
		t.Error("d1 not dividing m must be rejected")
	}
	if _, err := BarrierPossible(13, 4, 3, 1); err == nil {
		t.Error("d2 <= d1 must be rejected")
	}
	if _, err := BarrierPossible(16, 4, 4, 5); err == nil {
		t.Error("r1 = 4 < 2nc = 8 must be rejected")
	}
	if _, err := BarrierPossible(16, 4, 1, 8); err == nil {
		t.Error("r2 = 2 <= nc must be rejected")
	}
}

func TestNoDoubleConflictTheorem5(t *testing.T) {
	// Fig. 5/6 parameters: (nc-1)(d2+d1) = 3*4 = 12 < 13: no double
	// conflict ever.
	ok, err := NoDoubleConflict(13, 4, 1, 3)
	if err != nil || !ok {
		t.Errorf("Fig. 5: ok=%v err=%v", ok, err)
	}
	// Fig. 3/4 parameters: 5*7 = 35 >= 13: double conflicts possible
	// (Fig. 4 shows one).
	ok, err = NoDoubleConflict(13, 6, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Fig. 4 parameters must not satisfy Theorem 5")
	}
}

func TestUniqueBarrierTheorem6(t *testing.T) {
	// m=16, nc=2, d1=1, d2=2: barrier possible (c=1), Theorem 6:
	// (2nc-1)d2 = 6 <= 16: unique.
	ok, err := UniqueBarrier(16, 2, 1, 2, false)
	if err != nil || !ok {
		t.Errorf("m=16 nc=2 1(+)2: ok=%v err=%v", ok, err)
	}
	// Fig. 5: Theorem 6 fails (21 > 13), Theorem 7 fails (2 > 1):
	// not unique — Fig. 6 indeed shows the inverted barrier.
	ok, err = UniqueBarrier(13, 4, 1, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Fig. 5 barrier must not be unique (Fig. 6 inverts it)")
	}
	// Fig. 3: Theorem 5's guard fails, so Theorem 7 does not apply and
	// Theorem 6 fails (66 > 13): not unique — Fig. 4 shows the double
	// conflict.
	ok, err = UniqueBarrier(13, 6, 1, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Fig. 3 barrier must not be unique (Fig. 4 double-conflicts)")
	}
}

func TestBarrierBandwidthEq29(t *testing.T) {
	cases := []struct {
		d1, d2 int
		want   rat.Rational
	}{
		{1, 6, rat.New(7, 6)},
		{1, 3, rat.New(4, 3)},
		{1, 2, rat.New(3, 2)},
		{2, 4, rat.New(3, 2)},
		{2, 3, rat.New(5, 3)},
		{3, 4, rat.New(7, 4)},
	}
	for _, c := range cases {
		if got := BarrierBandwidth(c.d1, c.d2); !got.Equal(c.want) {
			t.Errorf("BarrierBandwidth(%d,%d) = %s, want %s", c.d1, c.d2, got, c.want)
		}
		if got := BarrierBandwidth(c.d1, c.d2); got.Cmp(rat.New(2, 1)) >= 0 {
			t.Errorf("BarrierBandwidth(%d,%d) = %s, must be < 2", c.d1, c.d2, got)
		}
	}
}

func TestSectionDisjointConflictFreeTheorem8(t *testing.T) {
	if !SectionDisjointConflictFree(4, 1, 3) { // gcd(4,2)=2
		t.Error("s=4 d2-d1=2 should admit conflict-free streams")
	}
	if SectionDisjointConflictFree(4, 1, 2) { // gcd(4,1)=1
		t.Error("s=4 d2-d1=1 should not")
	}
	if !SectionDisjointConflictFree(2, 1, 1) { // gcd(2,0)=2
		t.Error("equal distances: gcd(s,0)=s >= 2")
	}
}

func TestSectionConflictFreeTheorem9(t *testing.T) {
	// Fig. 7: m=12, s=2, nc=2, d1=d2=1. Theorem 9's guard fails
	// (nc*d1 = 2 = s), but Eq. 32 holds (gcd(12,0) = 12 >= 6) and the
	// start offset (nc+1)*d1 = 3 works.
	ok, b2 := SectionConflictFree(12, 2, 2, 1, 1)
	if !ok {
		t.Fatal("Fig. 7 must be conflict free")
	}
	if b2 != 3 {
		t.Fatalf("Fig. 7 offset = %d, want 3", b2)
	}
	// When nc*d1 is not a multiple of s, the Theorem 3 start works
	// directly: m=12, s=2, nc=3, d1=1, d2=7: Eq. 12 gives gcd(12,6)=6
	// >= 6; nc*d1 = 3 odd.
	ok, b2 = SectionConflictFree(12, 2, 3, 1, 7)
	if !ok || b2 != 3 {
		t.Fatalf("m=12 s=2 nc=3 1(+)7: ok=%v b2=%d, want ok at offset 3", ok, b2)
	}
	// Eq. 12 failing propagates: m=12, s=2, nc=4, d1=1, d2=7.
	ok, _ = SectionConflictFree(12, 2, 4, 1, 7)
	if ok {
		t.Error("Eq. 12 fails for nc=4; section variant must fail too")
	}
}

func TestAnalyzePaperCases(t *testing.T) {
	cases := []struct {
		m, nc, d1, d2 int
		want          Regime
	}{
		{12, 3, 1, 7, RegimeConflictFree},    // Fig. 2
		{13, 6, 1, 6, RegimeBarrierPossible}, // Figs. 3/4
		{13, 4, 1, 3, RegimeBarrierPossible}, // Figs. 5/6
		{16, 2, 1, 2, RegimeUniqueBarrier},
		{16, 4, 2, 4, RegimeDisjointFree}, // f=2, Eq.12: gcd(8,1)=1 < 8
		{16, 4, 1, 9, RegimeConflictFree}, // triad INC=9
		{16, 4, 8, 1, RegimeSelfConflict}, // r=2 < nc
		// Triad INC=11 ~ 1(+)3: barrier predicted; the unique-barrier
		// witness (1,3) would need the d1-role stream (here the second
		// input) to hold priority, so with stream-1 priority only
		// "possible" is provable — simulation nevertheless shows the
		// barrier from every start (the theorems are sufficient, not
		// necessary).
		{16, 4, 1, 11, RegimeBarrierPossible},
	}
	for _, c := range cases {
		a := Analyze(c.m, c.nc, c.d1, c.d2)
		if a.Regime != c.want {
			t.Errorf("Analyze(%d,%d,%d,%d) = %s, want %s (%s)",
				c.m, c.nc, c.d1, c.d2, a.Regime, c.want, a)
		}
	}
}

func TestAnalyzeBandwidthFields(t *testing.T) {
	a := Analyze(12, 3, 1, 7)
	if !a.HasBandwidth || !a.Bandwidth.Equal(rat.New(2, 1)) || !a.StartIndependent {
		t.Errorf("Fig. 2 analysis: %+v", a)
	}
	a = Analyze(16, 2, 1, 2)
	if !a.HasBandwidth || !a.Bandwidth.Equal(rat.New(3, 2)) || !a.StartIndependent {
		t.Errorf("unique barrier analysis: %+v", a)
	}
	a = Analyze(13, 4, 1, 3)
	if !a.HasBandwidth || !a.Bandwidth.Equal(rat.New(4, 3)) || a.StartIndependent {
		t.Errorf("Fig. 5 analysis: %+v", a)
	}
	a = Analyze(16, 4, 8, 1)
	if a.HasBandwidth {
		t.Errorf("self-conflict analysis should not predict a pair bandwidth: %+v", a)
	}
}

// Swapping the streams swaps which one holds the fixed priority, so
// Theorem 7's Eq. 28 (priority-dependent) may upgrade one orientation
// from barrier-possible to unique-barrier — but the regimes must agree
// up to that refinement, and conflict-free/disjoint/self-conflict
// classifications are strictly symmetric.
func TestAnalyzeSymmetry(t *testing.T) {
	barrierish := func(r Regime) bool {
		return r == RegimeUniqueBarrier || r == RegimeBarrierPossible
	}
	for m := 2; m <= 20; m++ {
		for nc := 2; nc <= 4; nc++ {
			for d1 := 0; d1 < m; d1++ {
				for d2 := d1; d2 < m; d2++ {
					a := Analyze(m, nc, d1, d2)
					b := Analyze(m, nc, d2, d1)
					if a.Regime != b.Regime && !(barrierish(a.Regime) && barrierish(b.Regime)) {
						t.Fatalf("m=%d nc=%d (%d,%d): %s vs %s", m, nc, d1, d2, a.Regime, b.Regime)
					}
					if a.HasBandwidth != b.HasBandwidth {
						t.Fatalf("m=%d nc=%d (%d,%d): HasBandwidth asymmetry", m, nc, d1, d2)
					}
				}
			}
		}
	}
}

func TestAnalyzeIsomorphismInvariance(t *testing.T) {
	for m := 2; m <= 16; m++ {
		units := modmath.Units(m)
		for nc := 2; nc <= 3; nc++ {
			for d1 := 0; d1 < m; d1++ {
				for d2 := 0; d2 < m; d2++ {
					a := Analyze(m, nc, d1, d2)
					for _, k := range units {
						b := Analyze(m, nc, k*d1%m, k*d2%m)
						if a.Regime != b.Regime {
							t.Fatalf("m=%d nc=%d (%d,%d) k=%d: %s vs %s", m, nc, d1, d2, k, a.Regime, b.Regime)
						}
						if a.HasBandwidth && !a.Bandwidth.Equal(b.Bandwidth) {
							t.Fatalf("m=%d nc=%d (%d,%d) k=%d: %s vs %s bandwidth", m, nc, d1, d2, k, a.Bandwidth, b.Bandwidth)
						}
					}
				}
			}
		}
	}
}

func TestRegimeStrings(t *testing.T) {
	for r, want := range map[Regime]string{
		RegimeSelfConflict:    "self-conflict",
		RegimeConflictFree:    "conflict-free",
		RegimeDisjointFree:    "disjoint-free",
		RegimeUniqueBarrier:   "unique-barrier",
		RegimeBarrierPossible: "barrier-possible",
		RegimeConflicting:     "conflicting",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
	if Regime(42).String() != "Regime(42)" {
		t.Error("unknown regime string")
	}
}

func TestAnalysisString(t *testing.T) {
	a := Analyze(12, 3, 1, 7)
	s := a.String()
	for _, tok := range []string{"m=12", "nc=3", "conflict-free", "b_eff=2"} {
		if !contains(s, tok) {
			t.Errorf("Analysis.String() = %q missing %q", s, tok)
		}
	}
	b := Analyze(16, 4, 8, 1) // self-conflict: no bandwidth -> "-"
	if !contains(b.String(), "b_eff=-") {
		t.Errorf("self-conflict String() = %q", b.String())
	}
}

func contains(s, sub string) bool {
	return strings.Contains(s, sub)
}

func TestParameterPanics(t *testing.T) {
	cases := []func(){
		func() { SingleStreamBandwidth(0, 4, 1) },
		func() { SingleStreamBandwidth(16, 0, 1) },
		func() { BarrierBandwidth(1, 0) },
		func() { SectionDisjointConflictFree(0, 1, 2) },
		func() { SectionConflictFree(12, 5, 2, 1, 1) },
		func() { Analyze(0, 1, 1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
