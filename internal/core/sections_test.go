package core

// Cross-validation of the section results (Theorems 8, 9 and Eq. 32)
// against the simulator: two ports of the SAME CPU, s | m sections,
// cyclic bank distribution — section conflicts on the shared access
// paths are now possible.

import (
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stream"
)

func simSectionPair(t *testing.T, m, s, nc, b1, d1, b2, d2 int) memsys.Cycle {
	t.Helper()
	sys := memsys.New(memsys.Config{Banks: m, Sections: s, BankBusy: nc, CPUs: 1})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(int64(b1), int64(d1)))
	sys.AddPort(0, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	c, err := sys.FindCycle(1 << 21)
	if err != nil {
		t.Fatalf("m=%d s=%d nc=%d (%d+%d,%d+%d): %v", m, s, nc, b1, d1, b2, d2, err)
	}
	return c
}

// Theorem 8 against simulation. For placements with disjoint access
// sets (bank conflicts impossible):
//
//   - per placement, the extended predictor SectionDisjointSteadyFree
//     must match the simulated cyclic state exactly;
//   - Theorem 8's necessity: with gcd(s, d2-d1) = 1 no placement is
//     ever conflict free;
//   - existence: when the theorem's condition holds and some placement
//     with nondisjoint section sets exists, at least one placement is
//     conflict free.
func TestTheorem8MatchesSimulation(t *testing.T) {
	two := rat.New(2, 1)
	for _, m := range []int{8, 12, 16} {
		for _, s := range modmath.Divisors(m) {
			if s < 2 || s == m {
				continue
			}
			for _, nc := range []int{2, 3} {
				for d1 := 0; d1 < m; d1++ {
					if ReturnNumber(m, d1) < nc {
						continue
					}
					for d2 := d1; d2 < m; d2++ {
						if ReturnNumber(m, d2) < nc {
							continue
						}
						s1 := stream.Infinite(m, 0, d1)
						anyInteracting, anyFree := false, false
						for b2 := 0; b2 < m; b2++ {
							s2 := stream.Infinite(m, b2, d2)
							if !stream.Disjoint(s1, s2) {
								continue
							}
							if stream.SectionsDisjoint(s1, s2, s) {
								continue // no interaction at all: trivially free
							}
							anyInteracting = true
							c := simSectionPair(t, m, s, nc, 0, d1, b2, d2)
							free := c.EffectiveBandwidth().Equal(two)
							if free {
								anyFree = true
							}
							want := SectionDisjointSteadyFree(s, 0, d1, b2, d2)
							if free != want {
								t.Fatalf("m=%d s=%d nc=%d d1=%d d2=%d b2=%d: sim free=%v, predictor says %v",
									m, s, nc, d1, d2, b2, free, want)
							}
							if free && !SectionDisjointConflictFree(s, d1, d2) {
								t.Fatalf("m=%d s=%d nc=%d d1=%d d2=%d b2=%d: conflict free despite Theorem 8's necessity",
									m, s, nc, d1, d2, b2)
							}
						}
						// Existence: if the theorem's gcd condition holds and the
						// distances admit an escape (d1 not locked to residue 0),
						// some interacting placement must be free.
						if anyInteracting && !anyFree {
							g := modmath.GCD(s, modmath.Mod(d2-d1, s))
							if g == 0 {
								g = s
							}
							if g >= 2 && modmath.Mod(d1, g) != 0 {
								t.Fatalf("m=%d s=%d nc=%d d1=%d d2=%d: no free placement despite favourable gcd",
									m, s, nc, d1, d2)
							}
						}
					}
				}
			}
		}
	}
}

// Fully disjoint section sets never interact: b_eff = 2.
func TestDisjointSectionSetsConflictFree(t *testing.T) {
	two := rat.New(2, 1)
	// m=12, s=2: d=2 streams stay in one section each.
	c := simSectionPair(t, 12, 2, 3, 0, 2, 1, 2)
	if !c.EffectiveBandwidth().Equal(two) {
		t.Fatalf("b_eff = %s, want 2", c.EffectiveBandwidth())
	}
}

// Theorem 9 / Eq. 32 (positive direction): when SectionConflictFree
// reports a start offset, simulating from that offset gives b_eff = 2.
func TestSectionConflictFreeStartsMatchSimulation(t *testing.T) {
	two := rat.New(2, 1)
	checked := 0
	for _, m := range []int{8, 12, 16, 24} {
		for _, s := range modmath.Divisors(m) {
			if s < 2 || s == m {
				continue
			}
			for _, nc := range []int{2, 3, 4} {
				for d1 := 0; d1 < m; d1++ {
					if ReturnNumber(m, d1) < nc {
						continue
					}
					for d2 := d1; d2 < m; d2++ {
						if ReturnNumber(m, d2) < nc {
							continue
						}
						ok, b2 := SectionConflictFree(m, s, nc, d1, d2)
						if !ok {
							continue
						}
						checked++
						c := simSectionPair(t, m, s, nc, 0, d1, b2, d2)
						if got := c.EffectiveBandwidth(); !got.Equal(two) {
							t.Fatalf("m=%d s=%d nc=%d d1=%d d2=%d b2=%d: b_eff = %s, Theorem 9/Eq.32 promise 2",
								m, s, nc, d1, d2, b2, got)
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("sweep exercised no Theorem 9 cases")
	}
}

// Fig. 7's exact construction through the core API.
func TestFig7ThroughCoreAPI(t *testing.T) {
	ok, b2 := SectionConflictFree(12, 2, 2, 1, 1)
	if !ok || b2 != 3 {
		t.Fatalf("SectionConflictFree(12,2,2,1,1) = %v, %d", ok, b2)
	}
	c := simSectionPair(t, 12, 2, 2, 0, 1, b2, 1)
	if !c.EffectiveBandwidth().Equal(rat.New(2, 1)) {
		t.Fatalf("Fig. 7 b_eff = %s", c.EffectiveBandwidth())
	}
	total := memsys.Counters{}
	for _, cc := range c.Conflicts {
		total.Bank += cc.Bank
		total.Simultaneous += cc.Simultaneous
		total.Section += cc.Section
	}
	if total.Bank+total.Simultaneous+total.Section != 0 {
		t.Fatalf("Fig. 7 cycle has conflicts: %+v", total)
	}
}

// With a single CPU, simultaneous bank conflicts are impossible by
// construction (the same-bank case is a section conflict): sweep and
// assert the counter stays zero.
func TestOneCPUNeverSimultaneous(t *testing.T) {
	for _, s := range []int{2, 3, 4} {
		for d1 := 0; d1 < 12; d1++ {
			for b2 := 0; b2 < 3; b2++ {
				sys := memsys.New(memsys.Config{Banks: 12, Sections: s, BankBusy: 3, CPUs: 1})
				sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
				sys.AddPort(0, "2", memsys.NewInfiniteStrided(int64(b2), 1))
				sys.Run(300)
				for _, p := range sys.Ports() {
					if p.Count.Simultaneous != 0 {
						t.Fatalf("s=%d d1=%d b2=%d: simultaneous conflict within one CPU", s, d1, b2)
					}
				}
			}
		}
	}
}
