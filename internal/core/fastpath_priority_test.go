package core

import (
	"testing"

	"ivm/internal/memsys"
)

// TestPairGateUnderPriority pins the honesty contract of the analytic
// fast path: the theorems behind PairGate assume fixed priority, so
// NewPairGateUnder must return an inactive gate — "no answer", never a
// wrong one — for every other arbitration rule, even on placements the
// fixed-priority gate covers in closed form.
func TestPairGateUnderPriority(t *testing.T) {
	// (16, 2, 1, 2) is the unique-barrier pair from the differential
	// corpus: gated under fixed priority with b_eff = 3/2 from Eq. 29.
	fixed := NewPairGateUnder(16, 2, 1, 2, memsys.FixedPriority)
	if !fixed.Active() {
		t.Fatal("fixed-priority gate inactive on the Eq. 29 pair")
	}
	if bw, ok := fixed.BandwidthAt(0, 1); !ok || bw.String() != "3/2" {
		t.Fatalf("fixed-priority gate answered %v, %v; want 3/2", bw, ok)
	}
	for _, pr := range []memsys.PriorityRule{memsys.CyclicPriority, memsys.RoundRobinPerCPU} {
		g := NewPairGateUnder(16, 2, 1, 2, pr)
		if g.Active() {
			t.Fatalf("gate active under %v; theorems cover fixed priority only", pr)
		}
		if _, ok := g.BandwidthAt(0, 1); ok {
			t.Fatalf("inactive gate answered a placement under %v", pr)
		}
	}
}
