package core

// Cross-validation of the analytic model (Theorems 1-7, Eq. 29) against
// the cycle-accurate simulator: every claim the paper proves is checked
// against the cyclic steady state memsys finds, sweeping parameters and
// all relative starting positions.

import (
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/rat"
	"ivm/internal/stream"
)

func simPair(t *testing.T, m, nc, b1, d1, b2, d2 int) memsys.Cycle {
	t.Helper()
	sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(int64(b1), int64(d1)))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	c, err := sys.FindCycle(1 << 21)
	if err != nil {
		t.Fatalf("m=%d nc=%d (%d+%d,%d+%d): %v", m, nc, b1, d1, b2, d2, err)
	}
	return c
}

// Section III-A: simulated single-stream bandwidth equals
// min(1, r/n_c) for every (m, n_c, d).
func TestSingleStreamBandwidthMatchesSimulation(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 6, 8, 12, 13, 16} {
		for nc := 1; nc <= 6; nc++ {
			for d := 0; d < m; d++ {
				sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc})
				sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d)))
				c, err := sys.FindCycle(1 << 16)
				if err != nil {
					t.Fatal(err)
				}
				want := SingleStreamBandwidth(m, nc, d)
				if got := c.EffectiveBandwidth(); !got.Equal(want) {
					t.Errorf("m=%d nc=%d d=%d: sim %s, analytic %s", m, nc, d, got, want)
				}
			}
		}
	}
}

// Theorem 3 + synchronisation: when Eq. 12 holds (and neither stream
// self-conflicts), the pair reaches b_eff = 2 from EVERY relative
// starting position.
func TestTheorem3SynchronisationMatchesSimulation(t *testing.T) {
	two := rat.New(2, 1)
	for _, m := range []int{8, 12, 13, 16} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 0; d1 < m; d1++ {
				if ReturnNumber(m, d1) < nc {
					continue
				}
				for d2 := d1; d2 < m; d2++ {
					if ReturnNumber(m, d2) < nc {
						continue
					}
					if !ConflictFreeCondition(m, nc, d1, d2) {
						continue
					}
					for b2 := 0; b2 < m; b2++ {
						c := simPair(t, m, nc, 0, d1, b2, d2)
						if got := c.EffectiveBandwidth(); !got.Equal(two) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: b_eff = %s, Theorem 3 promises 2",
								m, nc, d1, d2, b2, got)
						}
					}
				}
			}
		}
	}
}

// Theorem 3 converse: when Eq. 12 fails, every relative start with
// nondisjoint access sets yields a conflicting cycle (b_eff < 2).
func TestTheorem3ConverseMatchesSimulation(t *testing.T) {
	two := rat.New(2, 1)
	for _, m := range []int{8, 12, 13, 16} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 0; d1 < m; d1++ {
				if ReturnNumber(m, d1) < nc {
					continue
				}
				for d2 := d1; d2 < m; d2++ {
					if ReturnNumber(m, d2) < nc {
						continue
					}
					if ConflictFreeCondition(m, nc, d1, d2) {
						continue
					}
					s1 := stream.Infinite(m, 0, d1)
					for b2 := 0; b2 < m; b2++ {
						if stream.Disjoint(s1, stream.Infinite(m, b2, d2)) {
							continue
						}
						c := simPair(t, m, nc, 0, d1, b2, d2)
						if got := c.EffectiveBandwidth(); got.Equal(two) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: conflict-free despite Eq. 12 failing",
								m, nc, d1, d2, b2)
						}
					}
				}
			}
		}
	}
}

// Theorem 2's constructed starts always run conflict free (disjoint
// access sets can never collide on a bank), provided neither stream
// self-conflicts.
func TestDisjointStartsConflictFreeInSimulation(t *testing.T) {
	two := rat.New(2, 1)
	for _, m := range []int{8, 12, 16, 18} {
		for _, nc := range []int{2, 3} {
			for d1 := 0; d1 < m; d1++ {
				if ReturnNumber(m, d1) < nc {
					continue
				}
				for d2 := d1; d2 < m; d2++ {
					if ReturnNumber(m, d2) < nc {
						continue
					}
					b1, b2, ok := DisjointStarts(m, d1, d2)
					if !ok {
						continue
					}
					c := simPair(t, m, nc, b1, d1, b2, d2)
					if got := c.EffectiveBandwidth(); !got.Equal(two) {
						t.Fatalf("m=%d nc=%d d1=%d d2=%d: disjoint starts gave b_eff = %s",
							m, nc, d1, d2, got)
					}
				}
			}
		}
	}
}

// Unique barrier (Theorems 4+6/7): the predicted Eq. 29 bandwidth holds
// from every relative starting position.
func TestUniqueBarrierMatchesSimulationFromAllStarts(t *testing.T) {
	for _, m := range []int{8, 12, 13, 16, 20} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 1; d1 < m; d1++ {
				for d2 := d1 + 1; d2 < m; d2++ {
					a := Analyze(m, nc, d1, d2)
					if a.Regime != RegimeUniqueBarrier {
						continue
					}
					for b2 := 0; b2 < m; b2++ {
						c := simPair(t, m, nc, 0, d1, b2, d2)
						if got := c.EffectiveBandwidth(); !got.Equal(a.Bandwidth) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: b_eff = %s, Eq. 29 predicts %s (witness %v)",
								m, nc, d1, d2, b2, got, a.Bandwidth, [2]int{a.CD1, a.CD2})
						}
					}
				}
			}
		}
	}
}

// Theorem 4: when a barrier is possible, some relative start realises a
// true barrier-situation: one stream conflict free, the other delayed,
// with Eq. 29's bandwidth.
func TestBarrierPossibleRealisedForSomeStart(t *testing.T) {
	for _, m := range []int{12, 13, 16} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 1; d1 < m; d1++ {
				for d2 := d1 + 1; d2 < m; d2++ {
					a := Analyze(m, nc, d1, d2)
					if a.Regime != RegimeBarrierPossible && a.Regime != RegimeUniqueBarrier {
						continue
					}
					found := false
					for b2 := 0; b2 < m && !found; b2++ {
						c := simPair(t, m, nc, 0, d1, b2, d2)
						d0 := c.Conflicts[0].Delays()
						d1c := c.Conflicts[1].Delays()
						barrier := (d0 == 0) != (d1c == 0) // exactly one stream delayed
						if barrier && c.EffectiveBandwidth().Equal(a.Bandwidth) {
							found = true
						}
					}
					if !found {
						t.Errorf("m=%d nc=%d d1=%d d2=%d: no start realises the predicted barrier (%s)",
							m, nc, d1, d2, a.Bandwidth)
					}
				}
			}
		}
	}
}

// delayClockSet runs the pair for `clocks` clock periods and returns,
// per clock, how many ports were delayed in that clock. A "double
// conflict" in the paper's sense is a clock period where mutual delays
// appear, i.e. both streams are delayed in the same clock (Fig. 4).
func delaysPerClock(m, nc, b1, d1, b2, d2 int, clocks int64) []int {
	sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	counts := make([]int, clocks)
	sys.SetListener(listenerFunc(func(e memsys.Event) {
		if e.Kind != memsys.NoConflict && e.Clock < clocks {
			counts[e.Clock]++
		}
	}))
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(int64(b1), int64(d1)))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	sys.Run(clocks)
	return counts
}

type listenerFunc func(memsys.Event)

func (f listenerFunc) Observe(e memsys.Event) { f(e) }

func hasMutualDelayClock(counts []int) bool {
	for _, c := range counts {
		if c >= 2 {
			return true
		}
	}
	return false
}

// Theorem 5: when (n_c - 1)(d2 + d1) < m (canonical position), no
// clock period ever sees both streams delayed at once ("double
// conflict"), whatever the relative start.
func TestTheorem5NoDoubleConflictInSimulation(t *testing.T) {
	for _, m := range []int{12, 13, 16, 20} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 1; d1 < m; d1++ {
				if m%d1 != 0 {
					continue
				}
				for d2 := d1 + 1; d2 < m; d2++ {
					ok, err := NoDoubleConflict(m, nc, d1, d2)
					if err != nil || !ok {
						continue
					}
					for b2 := 0; b2 < m; b2++ {
						counts := delaysPerClock(m, nc, 0, d1, b2, d2, int64(8*m*nc+64))
						if hasMutualDelayClock(counts) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: same-clock mutual delays despite Theorem 5",
								m, nc, d1, d2, b2)
						}
					}
				}
			}
		}
	}
}

// The double conflict of Fig. 4 exists: Theorem 5's guard fails for
// m=13, nc=6, d1=1, d2=6, and b2=1 indeed yields clock periods where
// both streams are delayed at once.
func TestFig4DoubleConflictExists(t *testing.T) {
	counts := delaysPerClock(13, 6, 0, 1, 1, 6, 600)
	if !hasMutualDelayClock(counts) {
		t.Fatal("expected same-clock mutual delays in Fig. 4's configuration")
	}
	// And the cycle's conflict counters show both streams delayed.
	c := simPair(t, 13, 6, 0, 1, 1, 6)
	if c.Conflicts[0].Delays() == 0 || c.Conflicts[1].Delays() == 0 {
		t.Fatalf("expected mutual delays, got %+v / %+v", c.Conflicts[0], c.Conflicts[1])
	}
}

// Eq. 29 consistency: whenever two canonical representations of the
// same pair both claim a barrier, the simulator decides; the unique-
// barrier witness must agree with the simulated bandwidth (checked
// above), and the analysis bandwidth must always be < 2 and > 1.
func TestBarrierBandwidthRange(t *testing.T) {
	one, two := rat.One(), rat.New(2, 1)
	for _, m := range []int{12, 13, 16, 24} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 1; d1 < m; d1++ {
				for d2 := d1 + 1; d2 < m; d2++ {
					v := AnalyzeBarrier(m, nc, d1, d2, Stream1Priority)
					if !v.Possible {
						continue
					}
					if v.Bandwidth.Cmp(one) <= 0 || v.Bandwidth.Cmp(two) >= 0 {
						t.Fatalf("m=%d nc=%d (%d,%d): barrier bandwidth %s out of (1,2)",
							m, nc, d1, d2, v.Bandwidth)
					}
				}
			}
		}
	}
}
