package core

import (
	"testing"
	"testing/quick"

	"ivm/internal/rat"
)

// Property: the classifier is total and internally consistent for any
// input — regimes carry the bandwidth fields they promise, canonical
// distances stay in range, the return numbers match Theorem 1.
func TestPropertyAnalyzeTotal(t *testing.T) {
	f := func(mRaw, ncRaw, d1Raw, d2Raw uint8) bool {
		m := int(mRaw%48) + 1
		nc := int(ncRaw%8) + 1
		d1 := int(d1Raw)
		d2 := int(d2Raw)
		a := Analyze(m, nc, d1, d2)
		if a.M != m || a.NC != nc {
			return false
		}
		if a.D1 < 0 || a.D1 >= m || a.D2 < 0 || a.D2 >= m {
			return false
		}
		if a.R1 != ReturnNumber(m, d1) || a.R2 != ReturnNumber(m, d2) {
			return false
		}
		switch a.Regime {
		case RegimeConflictFree, RegimeDisjointFree:
			if !a.HasBandwidth || !a.Bandwidth.Equal(rat.New(2, 1)) {
				return false
			}
		case RegimeUniqueBarrier:
			if !a.HasBandwidth || !a.StartIndependent {
				return false
			}
			if a.Bandwidth.Cmp(rat.One()) <= 0 || a.Bandwidth.Cmp(rat.New(2, 1)) >= 0 {
				return false
			}
		case RegimeBarrierPossible:
			if !a.HasBandwidth || a.StartIndependent {
				return false
			}
		case RegimeSelfConflict, RegimeConflicting:
			if a.Regime == RegimeSelfConflict && a.HasBandwidth {
				return false
			}
		}
		return a.Note != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every representation returned by Representations is a
// genuine isomorphic image of the pair with d1' | m.
func TestPropertyRepresentationsValid(t *testing.T) {
	f := func(mRaw, d1Raw, d2Raw uint8) bool {
		m := int(mRaw%24) + 2
		d1 := int(d1Raw) % m
		d2 := int(d2Raw) % m
		for _, rep := range Representations(m, d1, d2) {
			if rep.D1 <= 0 || m%rep.D1 != 0 || rep.D2 <= rep.D1 {
				return false
			}
			// The image must be isomorphic to the original pair.
			found := false
			for k := 1; k < max(m, 2); k++ {
				if gcdInt(k, m) != 1 {
					continue
				}
				a, b := k*d1%m, k*d2%m
				if (a == rep.D1 && b == rep.D2) || (a == rep.D2 && b == rep.D1) {
					found = true
					break
				}
			}
			if !found && m > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Property: SaturationBound is monotone in p and bounded by m/nc.
func TestPropertySaturationBoundMonotone(t *testing.T) {
	f := func(mRaw, ncRaw uint8) bool {
		m := int(mRaw%32) + 1
		nc := int(ncRaw%6) + 1
		prev := rat.Zero()
		for p := 0; p <= 10; p++ {
			b := SaturationBound(m, nc, p)
			if b.Cmp(prev) < 0 {
				return false
			}
			if b.Cmp(rat.New(int64(m), int64(nc))) > 0 {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BarrierBandwidth lies strictly between 1 and 2 for
// 0 < d1 < d2 and is monotone in d1/d2.
func TestPropertyBarrierBandwidthRange(t *testing.T) {
	f := func(d1Raw, d2Raw uint8) bool {
		d1 := int(d1Raw%100) + 1
		d2 := d1 + int(d2Raw%100) + 1
		bw := BarrierBandwidth(d1, d2)
		return bw.Cmp(rat.One()) > 0 && bw.Cmp(rat.New(2, 1)) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
