package core

import (
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/rat"
)

// Eq. 8 exactly characterises zero-conflict runs: simulate every
// (m, nc, d1, d2, b2) of a grid and compare "no delays in the first
// 4·lcm window" against the pointwise criterion.
func TestEq8MatchesZeroConflictRuns(t *testing.T) {
	for _, m := range []int{8, 12, 13} {
		for _, nc := range []int{2, 3} {
			for d1 := 0; d1 < m; d1++ {
				if ReturnNumber(m, d1) < nc {
					continue
				}
				for d2 := 0; d2 < m; d2++ {
					if ReturnNumber(m, d2) < nc {
						continue
					}
					for b2 := 0; b2 < m; b2++ {
						want := PairConflictFreeAt(m, nc, 0, d1, b2, d2)
						sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
						sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
						sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
						clocks := int64(8*m*nc + 64)
						sys.Run(clocks)
						delays := sys.Ports()[0].Count.Delays() + sys.Ports()[1].Count.Delays()
						got := delays == 0
						if got != want {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: zero-conflict=%v, Eq. 8 says %v",
								m, nc, d1, d2, b2, got, want)
						}
					}
				}
			}
		}
	}
}

// The proofs' constructed starts satisfy Eq. 8 whenever the governing
// condition holds: b2 = nc*d1 for Theorem 3 pairs.
func TestEq8AtConstructedStarts(t *testing.T) {
	for _, m := range []int{12, 13, 16, 24} {
		for _, nc := range []int{2, 3, 4} {
			for d1 := 0; d1 < m; d1++ {
				if ReturnNumber(m, d1) < nc {
					continue
				}
				for d2 := 0; d2 < m; d2++ {
					if ReturnNumber(m, d2) < nc {
						continue
					}
					if !ConflictFreeCondition(m, nc, d1, d2) {
						continue
					}
					_, b2 := ConflictFreeStarts(m, nc, d1, d2)
					if !PairConflictFreeAt(m, nc, 0, d1, b2, d2) {
						t.Fatalf("m=%d nc=%d d1=%d d2=%d: constructed start b2=%d violates Eq. 8",
							m, nc, d1, d2, b2)
					}
				}
			}
		}
	}
}

// Disjoint access sets trivially satisfy Eq. 8.
func TestEq8DisjointSets(t *testing.T) {
	if !PairConflictFreeAt(16, 4, 0, 2, 1, 4) {
		t.Error("disjoint access sets must be Eq. 8 conflict free")
	}
}

// Fig. 2's starts satisfy Eq. 8; shifting stream 2 by one bank breaks
// it (but synchronisation still recovers b_eff = 2 — the distinction
// the two predicates encode).
func TestEq8Fig2Starts(t *testing.T) {
	if !PairConflictFreeAt(12, 3, 0, 1, 3, 7) {
		t.Error("Fig. 2 starts must satisfy Eq. 8")
	}
	if PairConflictFreeAt(12, 3, 0, 1, 4, 7) {
		t.Error("shifted Fig. 2 starts should collide in free running")
	}
	p := PredictPairAt(12, 3, 0, 1, 4, 7)
	if !p.Exact || !p.Bandwidth.Equal(rat.New(2, 1)) {
		t.Errorf("synchronisation should still pin b_eff = 2: %+v", p)
	}
}

func TestConflictFreeOffsetsCountSymmetry(t *testing.T) {
	// The set of good offsets is non-empty iff some placement is
	// pointwise conflict free; for Fig. 2's parameters it contains the
	// constructed offset 3.
	offs := ConflictFreeOffsets(12, 3, 1, 7)
	found := false
	for _, o := range offs {
		if o == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("offsets %v missing the constructed start 3", offs)
	}
	// A pair failing Theorem 3 with intersecting sets everywhere has no
	// good offsets: m=13 (prime), nc=4, d1=1, d2=2 (gcd(13,1)=1 < 8).
	if offs := ConflictFreeOffsets(13, 4, 1, 2); len(offs) != 0 {
		t.Fatalf("expected no conflict-free offsets, got %v", offs)
	}
}

func TestPredictPairAtRegimes(t *testing.T) {
	// Unique barrier: exact 3/2 whatever the start.
	p := PredictPairAt(16, 4, 0, 1, 5, 2)
	if !p.Exact || !p.Bandwidth.Equal(rat.New(3, 2)) {
		t.Errorf("unique barrier prediction: %+v", p)
	}
	// Self-conflict: not pinned.
	p = PredictPairAt(16, 4, 0, 8, 0, 1)
	if p.Exact {
		t.Errorf("self-conflict pair should not be pinned: %+v", p)
	}
	// Fig. 5 barrier-possible from b2=1 (the inverted case): not pinned.
	p = PredictPairAt(13, 4, 0, 1, 1, 3)
	if p.Exact {
		t.Errorf("start-dependent pair should not be pinned: %+v", p)
	}
}

// Where PredictPairAt pins a bandwidth, the simulator agrees — over a
// full grid.
func TestPredictPairAtMatchesSimulation(t *testing.T) {
	const m, nc = 12, 3
	for d1 := 0; d1 < m; d1++ {
		for d2 := 0; d2 < m; d2++ {
			for b2 := 0; b2 < m; b2++ {
				p := PredictPairAt(m, nc, 0, d1, b2, d2)
				if !p.Exact {
					continue
				}
				sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
				sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
				sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
				c, err := sys.FindCycle(1 << 20)
				if err != nil {
					t.Fatal(err)
				}
				if !c.EffectiveBandwidth().Equal(p.Bandwidth) {
					t.Fatalf("d1=%d d2=%d b2=%d: predicted %s (%s), sim %s",
						d1, d2, b2, p.Bandwidth, p.Reason, c.EffectiveBandwidth())
				}
			}
		}
	}
}
