package core

import (
	"math/rand"
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/rat"
	"ivm/internal/stream"
)

func TestSaturationBound(t *testing.T) {
	// The X-MP case the paper cites: 6 ports, 16 banks, nc=4.
	if got := SaturationBound(16, 4, 6); !got.Equal(rat.New(4, 1)) {
		t.Errorf("SaturationBound(16,4,6) = %s, want 4", got)
	}
	if got := SaturationBound(16, 4, 3); !got.Equal(rat.New(3, 1)) {
		t.Errorf("SaturationBound(16,4,3) = %s, want 3 (port-limited)", got)
	}
	if !PortsSaturate(16, 4, 6) {
		t.Error("6*4 > 16: saturation expected")
	}
	if PortsSaturate(16, 4, 4) {
		t.Error("4*4 = 16: not saturated")
	}
}

// The paper's Section IV argument, simulated: six unit-stride streams
// on the 16-bank n_c=4 memory cannot exceed 4 grants/clock — and the
// bound is tight (the cyclic state attains exactly 4).
func TestSixPortSaturationTight(t *testing.T) {
	sys := memsys.New(memsys.Config{Banks: 16, BankBusy: 4, CPUs: 2})
	var sets []StreamSet
	for i := 0; i < 6; i++ {
		cpu := i / 3
		sys.AddPort(cpu, string(rune('1'+i)), memsys.NewInfiniteStrided(int64(i), 1))
		sets = append(sets, StreamSet{Stream: stream.Infinite(16, i, 1), CPU: cpu})
	}
	c, err := sys.FindCycle(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	got := c.EffectiveBandwidth()
	bound := MultiStreamBound(16, 0, 4, sets)
	if got.Cmp(bound) > 0 {
		t.Fatalf("b_eff %s exceeds bound %s", got, bound)
	}
	if !got.Equal(rat.New(4, 1)) {
		t.Fatalf("b_eff = %s, want the tight bound 4", got)
	}
}

// Property: simulated aggregate bandwidth never exceeds
// MultiStreamBound, over randomised configurations.
func TestMultiStreamBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(19851001))
	for trial := 0; trial < 120; trial++ {
		ms := []int{8, 12, 16}[rng.Intn(3)]
		ncs := []int{2, 3, 4}[rng.Intn(3)]
		var s int
		for _, cand := range []int{0, 2, 4} {
			if cand == 0 || ms%cand == 0 {
				s = cand
			}
		}
		if rng.Intn(2) == 0 {
			s = 0
		}
		cpus := 1 + rng.Intn(2)
		p := 1 + rng.Intn(5)

		cfg := memsys.Config{Banks: ms, Sections: s, BankBusy: ncs, CPUs: cpus}
		sys := memsys.New(cfg)
		var sets []StreamSet
		for i := 0; i < p; i++ {
			st := stream.Infinite(ms, rng.Intn(ms), rng.Intn(ms))
			cpu := rng.Intn(cpus)
			sys.AddPort(cpu, string(rune('1'+i)), memsys.NewInfiniteStrided(int64(st.Start), int64(st.Distance)))
			sets = append(sets, StreamSet{Stream: st, CPU: cpu})
		}
		c, err := sys.FindCycle(1 << 21)
		if err != nil {
			t.Fatal(err)
		}
		got := c.EffectiveBandwidth()
		bound := MultiStreamBound(ms, s, ncs, sets)
		if got.Cmp(bound) > 0 {
			t.Fatalf("trial %d (m=%d s=%d nc=%d p=%d): b_eff %s exceeds bound %s",
				trial, ms, s, ncs, p, got, bound)
		}
	}
}

// The pair bounds sandwich the simulator from every relative start,
// and are tight at both ends on degenerate pairs.
func TestPairBandwidthBoundsSandwichSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(19850712))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(12)
		nc := 1 + rng.Intn(4)
		d1 := rng.Intn(m)
		d2 := rng.Intn(m)
		b2 := rng.Intn(m)
		lo, hi := PairBandwidthBounds(m, nc, d1, d2)
		sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
		sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
		sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
		c, err := sys.FindCycle(1 << 21)
		if err != nil {
			t.Fatal(err)
		}
		bw := c.EffectiveBandwidth()
		if bw.Cmp(lo) < 0 || bw.Cmp(hi) > 0 {
			t.Fatalf("m=%d nc=%d %d(+)%d b2=%d: b_eff %s outside [%s, %s]",
				m, nc, d1, d2, b2, bw, lo, hi)
		}
	}
	// Tight below: two d=0 streams on one bank share its 1/n_c capacity.
	lo, _ := PairBandwidthBounds(16, 4, 0, 0)
	sys := memsys.New(memsys.Config{Banks: 16, BankBusy: 4, CPUs: 2})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 0))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(0, 0))
	c, err := sys.FindCycle(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EffectiveBandwidth().Equal(lo) {
		t.Fatalf("degenerate pair b_eff %s, lower bound %s should be tight", c.EffectiveBandwidth(), lo)
	}
	// Tight above: a conflict-free pair attains the port bound of 2.
	_, hi := PairBandwidthBounds(12, 3, 1, 7)
	if !hi.Equal(rat.New(2, 1)) {
		t.Fatalf("conflict-free pair upper bound %s, want 2", hi)
	}
}

// The path bound matters: two ports of one CPU into a single shared
// section can never exceed 1 grant/clock.
func TestPathBound(t *testing.T) {
	// m=8, s=2: streams with d=2 from even banks stay in section 0.
	sets := []StreamSet{
		{Stream: stream.Infinite(8, 0, 2), CPU: 0},
		{Stream: stream.Infinite(8, 2, 2), CPU: 0},
	}
	bound := MultiStreamBound(8, 2, 2, sets)
	// Self bound = 2, bank bound = 4/2 = 2, path bound = min(2,2) = 2 —
	// the generic bounds don't see the shared section; but simulation
	// must still respect them.
	sys := memsys.New(memsys.Config{Banks: 8, Sections: 2, BankBusy: 2, CPUs: 1})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 2))
	sys.AddPort(0, "2", memsys.NewInfiniteStrided(2, 2))
	c, err := sys.FindCycle(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	if c.EffectiveBandwidth().Cmp(bound) > 0 {
		t.Fatalf("b_eff %s exceeds bound %s", c.EffectiveBandwidth(), bound)
	}
	// One CPU, one usable section: the path bound with s=1 usable...
	// both streams only ever touch section 0, so the real ceiling is 1.
	if c.EffectiveBandwidth().Cmp(rat.One()) > 0 {
		t.Fatalf("two streams through one path exceed 1: %s", c.EffectiveBandwidth())
	}
}

// Self-conflict bound dominates for low-return-number strides.
func TestSelfConflictBoundDominates(t *testing.T) {
	sets := []StreamSet{
		{Stream: stream.Infinite(16, 0, 8), CPU: 0}, // r=2, nc=4: 1/2
		{Stream: stream.Infinite(16, 1, 8), CPU: 1}, // disjoint banks
	}
	bound := MultiStreamBound(16, 0, 4, sets)
	if !bound.Equal(rat.One()) {
		t.Fatalf("bound = %s, want 1 (two half-speed streams)", bound)
	}
}

func TestMultiStreamBoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bank counts did not panic")
		}
	}()
	MultiStreamBound(16, 0, 4, []StreamSet{{Stream: stream.Infinite(8, 0, 1)}})
}
