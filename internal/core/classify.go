package core

import (
	"fmt"

	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stream"
)

// Regime is the conflict regime the analytic model predicts for a pair
// of access streams on a sectionless (s = m) memory system.
type Regime int

const (
	// RegimeSelfConflict: at least one stream has r < n_c and delays
	// itself at its start bank; the two-stream theorems do not apply.
	RegimeSelfConflict Regime = iota
	// RegimeConflictFree: Theorem 3 holds; the pair synchronises into a
	// conflict-free cycle from any relative start (b_eff = 2).
	RegimeConflictFree
	// RegimeDisjointFree: Theorem 2 (gcd(m, d1, d2) > 1); start banks
	// with disjoint access sets exist and give b_eff = 2, but other
	// starts may conflict.
	RegimeDisjointFree
	// RegimeUniqueBarrier: Theorems 4+6/7; a barrier-situation is
	// reached from every relative start, b_eff = 1 + d1/d2 (Eq. 29,
	// canonical distances).
	RegimeUniqueBarrier
	// RegimeBarrierPossible: Theorem 4 holds but the barrier is not
	// unique — depending on the relative start the pair may fall into a
	// barrier (either orientation) or another conflicting cycle.
	RegimeBarrierPossible
	// RegimeConflicting: none of the closed forms applies; the pair
	// conflicts and the cyclic-state bandwidth comes from simulation.
	RegimeConflicting
)

// String names the regime ("conflict-free", "unique-barrier", ...).
func (r Regime) String() string {
	switch r {
	case RegimeSelfConflict:
		return "self-conflict"
	case RegimeConflictFree:
		return "conflict-free"
	case RegimeDisjointFree:
		return "disjoint-free"
	case RegimeUniqueBarrier:
		return "unique-barrier"
	case RegimeBarrierPossible:
		return "barrier-possible"
	case RegimeConflicting:
		return "conflicting"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Analysis is the analytic model's verdict on a pair of infinite access
// streams (s = m, one stream per CPU: bank and simultaneous bank
// conflicts only).
type Analysis struct {
	M, NC  int
	D1, D2 int // inputs reduced modulo m
	R1, R2 int // return numbers (Theorem 1)
	F      int // gcd(m, d1, d2)

	// Canonical position after the Appendix isomorphism: CD1 | m,
	// CD2 >= CD1; Swapped reports that the stream roles were exchanged
	// to get there (the barrier then delays the *first* input stream).
	CD1, CD2 int
	Swapped  bool

	Regime Regime
	// Bandwidth is the predicted b_eff. For RegimeConflictFree,
	// RegimeDisjointFree and RegimeUniqueBarrier it is the cyclic-state
	// bandwidth (for DisjointFree: under the constructed starts); for
	// RegimeBarrierPossible it is the barrier's bandwidth when a
	// barrier is entered. Zero when HasBandwidth is false.
	Bandwidth    rat.Rational
	HasBandwidth bool
	// StartIndependent reports that the predicted bandwidth holds for
	// every relative starting position (Theorem 3's synchronisation,
	// or a unique barrier).
	StartIndependent bool
	Note             string
}

// Analyze classifies a pair of infinite streams with distances d1, d2
// on an m-way interleaved, sectionless memory with bank busy time n_c.
func Analyze(m, nc, d1, d2 int) Analysis {
	checkParams(m, nc)
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	a := Analysis{
		M: m, NC: nc, D1: d1, D2: d2,
		R1: ReturnNumber(m, d1), R2: ReturnNumber(m, d2),
	}
	a.F = modmath.GCD3(m, d1, d2)
	if a.F == 0 {
		a.F = m
	}
	cd1, cd2, _, swapped := stream.CanonicalPair(m, d1, d2)
	a.CD1, a.CD2, a.Swapped = cd1, cd2, swapped

	if a.R1 < nc || a.R2 < nc {
		a.Regime = RegimeSelfConflict
		a.Note = "a stream with r < n_c self-conflicts; two-stream theorems assume r1, r2 >= n_c"
		return a
	}
	if ConflictFreeCondition(m, nc, d1, d2) {
		a.Regime = RegimeConflictFree
		a.Bandwidth = rat.New(2, 1)
		a.HasBandwidth = true
		a.StartIndependent = true
		a.Note = "Theorem 3: gcd(m/f,(d2-d1)/f) >= 2*n_c; synchronisation from any start"
		return a
	}
	if DisjointPossible(m, d1, d2) {
		a.Regime = RegimeDisjointFree
		a.Bandwidth = rat.New(2, 1)
		a.HasBandwidth = true
		a.Note = "Theorem 2: gcd(m,d1,d2) > 1; consecutive start banks give disjoint access sets"
		return a
	}

	// Barrier analysis over all canonical representations of the pair
	// (Theorems 4–7 give sufficient conditions per representation).
	// Stream 1 is assumed to hold the fixed priority, matching the
	// simulator's port order, which enables Theorem 7's Eq. 28 for
	// representations where stream 1 plays the d1 role.
	v := AnalyzeBarrier(m, nc, d1, d2, Stream1Priority)
	if v.Possible {
		a.CD1, a.CD2 = v.Witness.D1, v.Witness.D2
		a.Bandwidth = v.Bandwidth
		a.HasBandwidth = true
		if v.Unique {
			a.Regime = RegimeUniqueBarrier
			a.StartIndependent = true
			a.Note = "Theorems 4+6/7: unique barrier-situation, Eq. 29"
		} else {
			a.Regime = RegimeBarrierPossible
			a.Note = "Theorem 4: barrier exists for suitable starts; orientation/start dependent"
		}
		return a
	}
	a.Regime = RegimeConflicting
	a.Note = "no closed form; cyclic-state bandwidth from simulation"
	return a
}

// String summarises the analysis in one line.
func (a Analysis) String() string {
	bw := "-"
	if a.HasBandwidth {
		bw = a.Bandwidth.String()
	}
	return fmt.Sprintf("m=%d nc=%d d1=%d d2=%d (canonical %d(+)%d) r1=%d r2=%d f=%d: %s b_eff=%s",
		a.M, a.NC, a.D1, a.D2, a.CD1, a.CD2, a.R1, a.R2, a.F, a.Regime, bw)
}
