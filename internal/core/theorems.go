// Package core implements the analytical model of Oed & Lange (1985):
// closed-form conditions for conflict-free access, barrier-situations,
// double conflicts and the resulting effective bandwidth of one and two
// vector-mode access streams against an m-way interleaved memory with
// bank cycle time n_c (Theorems 1–9, Eqs. 29–32), plus a classifier
// that predicts the conflict regime of a stream pair.
//
// Conventions follow the paper: distances are taken modulo m,
// gcd(x, 0) = x, and the two-stream theorems assume the canonical
// position d1 | m reached via the Appendix's isomorphism
// d1 (+) d2 == k·d1 (+) k·d2 (mod m) for units k of Z_m.
package core

import (
	"fmt"

	"ivm/internal/modmath"
	"ivm/internal/rat"
	"ivm/internal/stream"
)

// ReturnNumber is Theorem 1: r = m / gcd(m, d), the number of accesses
// made before the same bank is requested again.
func ReturnNumber(m, d int) int { return stream.ReturnNumber(m, d) }

// SingleStreamBandwidth is the Section III-A result: one access stream
// has b_eff = 1 when r >= n_c and b_eff = r/n_c when r < n_c (the
// stream self-conflicts at its start bank and r requests are serviced
// every n_c clocks).
func SingleStreamBandwidth(m, nc, d int) rat.Rational {
	checkParams(m, nc)
	r := ReturnNumber(m, d)
	if r >= nc {
		return rat.One()
	}
	return rat.New(int64(r), int64(nc))
}

func checkParams(m, nc int) {
	if m <= 0 || nc <= 0 {
		panic(fmt.Sprintf("core: invalid parameters m=%d nc=%d", m, nc))
	}
}

// DisjointPossible is Theorem 2: start banks with disjoint access sets
// exist if and only if gcd(m, d1, d2) > 1.
func DisjointPossible(m, d1, d2 int) bool {
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	f1 := modmath.GCD(m, d1)
	f2 := modmath.GCD(m, d2)
	return modmath.GCD(f1, f2) > 1
}

// DisjointStarts returns start banks realising Theorem 2's disjoint
// access sets (the proof's construction: consecutive start banks),
// with ok = false when gcd(m, d1, d2) = 1 and no such banks exist.
func DisjointStarts(m, d1, d2 int) (b1, b2 int, ok bool) {
	if !DisjointPossible(m, d1, d2) {
		return 0, 0, false
	}
	return 0, 1, true
}

// ConflictFreeCondition is Theorem 3 for s = m: there exist start banks
// making two access streams with nondisjoint access sets conflict free
// if and only if
//
//	gcd(m/f, (d2-d1)/f) >= 2*n_c,   f = gcd(m, d1, d2),
//
// with the convention gcd(x, 0) = x (so equal distances are conflict
// free iff r = m/f >= 2*n_c). Moreover such a pair synchronises: from
// any relative starting position the streams fall into the
// conflict-free cycle. The preconditions r1, r2 >= n_c (no
// self-conflicts) are the caller's to check; see Analyze.
func ConflictFreeCondition(m, nc, d1, d2 int) bool {
	checkParams(m, nc)
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	f := modmath.GCD3(m, d1, d2)
	if f == 0 {
		f = m // both distances zero
	}
	diff := modmath.Mod(d2-d1, m)
	g := modmath.GCD(m/f, diff/f%(m/f))
	if g == 0 {
		g = m / f
	}
	return g >= 2*nc
}

// ConflictFreeStarts returns the relative starting position the proof
// of Theorem 3 constructs: b1 = 0, b2 = n_c*d1 mod m ("the two access
// streams will definitely meet at b2, with access stream 1 arriving at
// b2 just at the time when b2 becomes available again").
func ConflictFreeStarts(m, nc, d1, _ int) (b1, b2 int) {
	return 0, modmath.Mod(nc*d1, m)
}

// canonical reduces (m, d1, d2) to the primed domain the proofs of
// Theorems 4–7 work in: f = gcd(m, d1, d2), m' = m/f, d1' = d1/f,
// d2' = d2/f; with d1 | m it follows d1' | m' and gcd(d1', d2') = 1.
func canonical(m, d1, d2 int) (f, mp, d1p, d2p int) {
	f = modmath.GCD3(m, d1, d2)
	if f == 0 {
		f = m
	}
	return f, m / f, d1 / f, d2 / f
}

// barrierPreconditions checks the standing hypotheses of Theorems 4–7:
// r1 >= 2*n_c, r2 > n_c, d1 | m, d2 > d1. (Nondisjoint access sets is a
// property of the chosen start banks; the theorems construct such
// banks.) Distances are expected in canonical position — use
// stream.CanonicalPair first for arbitrary pairs.
func barrierPreconditions(m, nc, d1, d2 int) error {
	checkParams(m, nc)
	if d1 <= 0 || !modmath.Divides(d1, m) {
		return fmt.Errorf("core: d1 = %d must divide m = %d (apply the Appendix isomorphism first)", d1, m)
	}
	if d2 <= d1 {
		return fmt.Errorf("core: need d2 = %d > d1 = %d", d2, d1)
	}
	if r1 := ReturnNumber(m, d1); r1 < 2*nc {
		return fmt.Errorf("core: r1 = %d < 2*n_c = %d", r1, 2*nc)
	}
	if r2 := ReturnNumber(m, d2); r2 <= nc {
		return fmt.Errorf("core: r2 = %d <= n_c = %d", r2, nc)
	}
	return nil
}

// BarrierPossible is Theorem 4: under the preconditions r1 >= 2*n_c,
// r2 > n_c, d1 | m, d2 > d1 there exist start banks with nondisjoint
// access sets for which a barrier-situation occurs (one stream runs
// conflict free while the other is regularly delayed) if
//
//	((d2 mod m/d1) - d1)/f < n_c,
//
// equivalently (Eq. 21) d2' ≡ d1' + c (mod m”) with 1 <= c < n_c,
// m” = m'/d1'. An error reports violated preconditions.
func BarrierPossible(m, nc, d1, d2 int) (bool, error) {
	if err := barrierPreconditions(m, nc, d1, d2); err != nil {
		return false, err
	}
	_, mp, d1p, d2p := canonical(m, d1, d2)
	mpp := mp / d1p
	c := modmath.Mod(d2p-d1p, mpp)
	return c >= 1 && c < nc, nil
}

// NoDoubleConflict is Theorem 5: under the barrier preconditions a
// double conflict (a cyclic state with mutual delays) is never
// encountered if
//
//	(n_c - 1)(d2 + d1) < m.
func NoDoubleConflict(m, nc, d1, d2 int) (bool, error) {
	if err := barrierPreconditions(m, nc, d1, d2); err != nil {
		return false, err
	}
	return (nc-1)*(d2+d1) < m, nil
}

// UniqueBarrier reports whether a barrier-situation is reached from
// *every* relative starting position ("unique barrier-situation"),
// combining Theorem 6 ((2n_c - 1)·d2 <= m suffices when Theorem 4
// holds) and Theorem 7 (when (17) and (22) hold but not (24), the
// barrier is unique if k·d2 < (k - n_c)·d1 (mod m) with
// k = ceil(m/(d1·d2))·d1 < 2n_c; with fixed priority favouring stream
// 1, Eq. 28 extends this to equality).
//
// fixedPriority selects whether the Eq. 28 equality case counts (the
// simultaneous bank conflict then delays stream 2 and the barrier is
// still reached).
func UniqueBarrier(m, nc, d1, d2 int, fixedPriority bool) (bool, error) {
	possible, err := BarrierPossible(m, nc, d1, d2)
	if err != nil {
		return false, err
	}
	if !possible {
		return false, nil
	}
	// Theorem 6.
	if (2*nc-1)*d2 <= m {
		return true, nil
	}
	// Theorem 7 requires Theorem 5's guard (22).
	if ok, _ := NoDoubleConflict(m, nc, d1, d2); !ok {
		return false, nil
	}
	_, mp, d1p, d2p := canonical(m, d1, d2)
	k := modmath.CeilDiv(mp, d1p*d2p) * d1p
	if k >= 2*nc {
		return false, nil
	}
	lhs := modmath.Mod(k*d2p, mp)
	rhs := modmath.Mod((k-nc)*d1p, mp)
	if lhs < rhs {
		return true, nil
	}
	if fixedPriority && lhs == rhs {
		return true, nil // Eq. 28
	}
	return false, nil
}

// BarrierBandwidth is Eq. 29: in a unique barrier-situation
// (d2 + d1)/f access requests are granted within d2/f clock periods,
// so b_eff = 1 + d1/d2 < 2. The f cancels; the original distances can
// be passed directly.
func BarrierBandwidth(d1, d2 int) rat.Rational {
	if d2 <= 0 {
		panic(fmt.Sprintf("core: BarrierBandwidth needs d2 > 0, got %d", d2))
	}
	return rat.One().Add(rat.New(int64(d1), int64(d2)))
}

// --- Sections (s < m) -------------------------------------------------

// SectionDisjointConflictFree is Theorem 8: when the access sets are
// disjoint but the section sets are not, conflict-free access streams
// can only be achieved if gcd(s, d2 - d1) >= 2. (Follows from Eq. 12
// with m replaced by s and n_c = 1, a path's "cycle time".)
func SectionDisjointConflictFree(s, d1, d2 int) bool {
	if s <= 0 {
		panic(fmt.Sprintf("core: invalid section count %d", s))
	}
	g := modmath.GCD(s, modmath.Mod(d2-d1, s))
	if g == 0 {
		g = s
	}
	return g >= 2
}

// SectionConflictFree combines Theorem 9 and Eq. 32 for nondisjoint
// access sets on a memory with s | m sections, cyclic distribution:
// given that Theorem 3's Eq. 12 holds, the relative start
// b2 = (n_c+j)·d1 is conflict free if
//
//   - gcd(m/f, (d2-d1)/f) >= 2(n_c+j) — the bank-level spacing of
//     Theorem 3, paying j extra clock periods (j = 0 is Eq. 12 itself,
//     j = 1 is Eq. 32's "an extra clock period is needed"), and
//   - (n_c+j)·d1 is not a multiple of gcd(s, gcd(m, d2-d1)) — then the
//     simultaneous access requests, whose bank addresses differ by
//     (n_c+j)·d1 plus multiples of gcd(m, d2-d1), always fall in
//     different sections.
//
// The second condition generalises the paper's Eq. 31 (n_c·d1 != k·s):
// the printed form is equivalent only when s divides gcd(m, d2-d1)
// (e.g. equal distances, where gcd(m, 0) = m); the proof's difference
// argument gives the gcd form, which simulation confirms (see
// sections_test.go).
//
// It returns whether a conflict-free relative start exists and the
// start offset (relative to b1 = 0) realising it.
func SectionConflictFree(m, s, nc, d1, d2 int) (ok bool, b2 int) {
	checkParams(m, nc)
	if s <= 0 || m%s != 0 {
		panic(fmt.Sprintf("core: sections %d must divide banks %d", s, m))
	}
	if !ConflictFreeCondition(m, nc, d1, d2) {
		return false, 0
	}
	d1m, d2m := modmath.Mod(d1, m), modmath.Mod(d2, m)
	f := modmath.GCD3(m, d1m, d2m)
	if f == 0 {
		f = m
	}
	diff := modmath.Mod(d2m-d1m, m)
	gBank := modmath.GCD(m/f, diff/f%(m/f))
	if gBank == 0 {
		gBank = m / f
	}
	gDiff := modmath.GCD(m, diff) // spacing of simultaneous bank addresses
	if gDiff == 0 {
		gDiff = m
	}
	sg := modmath.GCD(s, gDiff)
	for j := 0; 2*(nc+j) <= gBank; j++ {
		if modmath.Mod((nc+j)*d1m, sg) != 0 {
			return true, modmath.Mod((nc+j)*d1m, m)
		}
	}
	return false, 0
}

// SectionDisjointSteadyFree extends Theorem 8 to a per-placement
// steady-state prediction (not in the paper, but implied by its
// difference argument): with disjoint access sets, only section
// conflicts can occur, the relative section phase is
// (b2 - b1) + k(d2 - d1) mod s, and each collision delays stream 2 by
// one clock, shifting the phase by -d2. The cyclic state is conflict
// free iff some reachable phase avoids collisions:
//
//	(b2 - b1) mod g != 0   (already collision free), or
//	d1 mod g != 0          (delays eventually escape the 0 residue),
//
// where g = gcd(s, d2-d1) (g = s for equal distances). With g = 1
// neither holds — Theorem 8's necessity.
func SectionDisjointSteadyFree(s, b1, d1, b2, d2 int) bool {
	if s <= 0 {
		panic(fmt.Sprintf("core: invalid section count %d", s))
	}
	g := modmath.GCD(s, modmath.Mod(d2-d1, s))
	if g == 0 {
		g = s
	}
	if modmath.Mod(b2-b1, g) != 0 {
		return true
	}
	return modmath.Mod(d1, g) != 0
}
