// Package explain automates the pairwise reasoning Section IV applies
// to the triad experiment: for every stream of a workload against every
// stream of its environment, classify the pair with the analytic model
// (transporting it through the Appendix isomorphism first), and render
// the resulting table — "INC = 6 in the environment of INC = 1 is
// isomorphic to 2 (+) 3, thus a barrier-situation where the triad is
// fairly undisturbed" becomes machine output.
package explain

import (
	"fmt"
	"strings"

	"ivm/internal/core"
	"ivm/internal/rat"
	"ivm/internal/stream"
	"ivm/internal/textplot"
)

// PairVerdict is the analytic classification of one workload stream
// against one environment stream.
type PairVerdict struct {
	WorkDistance int
	EnvDistance  int
	Canonical    [2]int // isomorphic image with d1 | m (work first)
	Analysis     core.Analysis
	// WorkWins is meaningful for barrier regimes: true when the
	// workload stream plays the conflict-free role of the predicted
	// barrier (the environment is the delayed one).
	WorkWins bool
	HasRole  bool
}

// Pair classifies the (workload, environment) distance pair on an
// m-bank memory with bank busy time nc. The workload stream is taken
// as stream 1 (it holds the arbitration slot the analysis assumes).
func Pair(m, nc, workD, envD int) PairVerdict {
	a := core.Analyze(m, nc, workD, envD)
	v := PairVerdict{WorkDistance: workD, EnvDistance: envD, Analysis: a}
	nd1, nd2, _ := stream.Normalize(m, workD, envD)
	v.Canonical = [2]int{nd1, nd2}
	if a.Regime == core.RegimeUniqueBarrier || a.Regime == core.RegimeBarrierPossible {
		// The witness representation's d1 role runs conflict free. If
		// the witness was built with the roles swapped, the *second*
		// input (the environment) is the winner.
		verdict := core.AnalyzeBarrier(m, nc, workD, envD, core.Stream1Priority)
		if verdict.Possible {
			v.WorkWins = !verdict.Witness.Swapped
			v.HasRole = true
		}
	}
	return v
}

// Workload is a set of stream distances with a name ("triad INC=6"
// with distances {6,6,6,6}).
type Workload struct {
	Name      string
	Distances []int
}

// Report analyses every workload distance against every environment
// distance and renders the table plus a per-workload summary line.
type Report struct {
	M, NC    int
	Work     Workload
	Env      Workload
	Verdicts []PairVerdict
}

// Analyze builds the full pairwise report.
func Analyze(m, nc int, work, env Workload) Report {
	r := Report{M: m, NC: nc, Work: work, Env: env}
	seen := map[[2]int]bool{}
	for _, wd := range work.Distances {
		for _, ed := range env.Distances {
			key := [2]int{wd % m, ed % m}
			if seen[key] {
				continue
			}
			seen[key] = true
			r.Verdicts = append(r.Verdicts, Pair(m, nc, wd, ed))
		}
	}
	return r
}

// Worst returns the most pessimistic predicted bandwidth across the
// pairs (1 meaning a self-conflicted stream, 2 meaning all pairs
// conflict-free), as a coarse figure of merit for the workload in this
// environment.
func (r Report) Worst() rat.Rational {
	worst := rat.New(2, 1)
	for _, v := range r.Verdicts {
		if v.Analysis.Regime == core.RegimeSelfConflict {
			// Pair bandwidth unknown; a self-conflicting stream caps
			// the workload at its own rate — report it as the minimum.
			sb := core.SingleStreamBandwidth(r.M, r.NC, v.WorkDistance)
			if sb.Cmp(worst) < 0 {
				worst = sb
			}
			continue
		}
		if v.Analysis.HasBandwidth && v.Analysis.Bandwidth.Cmp(worst) < 0 {
			worst = v.Analysis.Bandwidth
		}
	}
	return worst
}

// String renders the report as a table with one row per distance pair.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s on m=%d banks, n_c=%d\n", r.Work.Name, r.Env.Name, r.M, r.NC)
	tbl := &textplot.Table{Header: []string{"work d", "env d", "isomorphic", "regime", "b_eff", "barrier winner"}}
	for _, v := range r.Verdicts {
		bw := "-"
		if v.Analysis.HasBandwidth {
			bw = v.Analysis.Bandwidth.String()
		}
		winner := "-"
		if v.HasRole {
			if v.WorkWins {
				winner = "workload"
			} else {
				winner = "environment"
			}
		}
		tbl.Add(v.WorkDistance, v.EnvDistance,
			fmt.Sprintf("%d(+)%d", v.Canonical[0], v.Canonical[1]),
			v.Analysis.Regime.String(), bw, winner)
	}
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "worst predicted pair bandwidth: %s\n", r.Worst())
	return b.String()
}

// TriadReport is the Section IV scenario: the triad at a given INC
// against the d=1 environment on the X-MP.
func TriadReport(inc int) Report {
	const m, nc = 16, 4
	d := inc % m
	return Analyze(m, nc,
		Workload{Name: fmt.Sprintf("triad INC=%d", inc), Distances: []int{d}},
		Workload{Name: "saturating CPU (d=1)", Distances: []int{1}},
	)
}
