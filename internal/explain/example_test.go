package explain_test

import (
	"fmt"

	"ivm/internal/explain"
)

// The paper's own reasoning for INC = 6: "isomorphic to 2 (+) 3 … a
// barrier-situation where the access requests of the triad are fairly
// undisturbed while the access requests of the other CPU are greatly
// delayed."
func ExampleTriadReport() {
	v := explain.TriadReport(6).Verdicts[0]
	fmt.Printf("%d(+)%d %s, triad wins: %v\n",
		v.Canonical[0], v.Canonical[1], v.Analysis.Regime, v.WorkWins)
	// Output: 2(+)3 unique-barrier, triad wins: true
}

func ExamplePair() {
	// INC=2 against the d=1 environment: the triad is the barrier loser.
	v := explain.Pair(16, 4, 2, 1)
	fmt.Println(v.Analysis.Regime, v.WorkWins)
	// Output: unique-barrier false
}
