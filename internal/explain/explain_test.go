package explain

import (
	"strings"
	"testing"

	"ivm/internal/core"
	"ivm/internal/rat"
)

// Section IV's worked isomorphisms: INC=6 against d=1 is isomorphic to
// 2(+)3 and the triad wins the barrier; INC=11 to 1(+)3, triad wins;
// INC=2 and 3 are barriers the environment wins.
func TestTriadReportMatchesPaperDiscussion(t *testing.T) {
	cases := []struct {
		inc       int
		regimeAny []core.Regime
		workWins  bool
		hasRole   bool
	}{
		{2, []core.Regime{core.RegimeUniqueBarrier, core.RegimeBarrierPossible}, false, true},
		{3, []core.Regime{core.RegimeUniqueBarrier, core.RegimeBarrierPossible}, false, true},
		{6, []core.Regime{core.RegimeUniqueBarrier, core.RegimeBarrierPossible}, true, true},
		{11, []core.Regime{core.RegimeUniqueBarrier, core.RegimeBarrierPossible}, true, true},
		{9, []core.Regime{core.RegimeConflictFree}, false, false},
		{1, []core.Regime{core.RegimeConflictFree}, false, false},
	}
	for _, c := range cases {
		r := TriadReport(c.inc)
		if len(r.Verdicts) != 1 {
			t.Fatalf("INC=%d: %d verdicts", c.inc, len(r.Verdicts))
		}
		v := r.Verdicts[0]
		ok := false
		for _, reg := range c.regimeAny {
			if v.Analysis.Regime == reg {
				ok = true
			}
		}
		if !ok {
			t.Errorf("INC=%d: regime %s", c.inc, v.Analysis.Regime)
		}
		if v.HasRole != c.hasRole {
			t.Errorf("INC=%d: HasRole = %v", c.inc, v.HasRole)
		}
		if c.hasRole && v.WorkWins != c.workWins {
			t.Errorf("INC=%d: WorkWins = %v, want %v", c.inc, v.WorkWins, c.workWins)
		}
	}
}

// INC=16 (distance 0) self-conflicts; the summary's worst bandwidth is
// the stream's own rate 1/4.
func TestTriadReportSelfConflict(t *testing.T) {
	r := TriadReport(16)
	if r.Verdicts[0].Analysis.Regime != core.RegimeSelfConflict {
		t.Fatalf("regime = %s", r.Verdicts[0].Analysis.Regime)
	}
	if !r.Worst().Equal(rat.New(1, 4)) {
		t.Fatalf("worst = %s, want 1/4", r.Worst())
	}
}

func TestBarrierWinnerMatchesEq29Roles(t *testing.T) {
	// Direct check: 1(+)2 on m=16, nc=4 — the d=1 stream (work) wins.
	v := Pair(16, 4, 1, 2)
	if !v.HasRole || !v.WorkWins {
		t.Fatalf("Pair(16,4,1,2) = %+v, expected workload to win", v)
	}
	// Swapped: work d=2 against env d=1 — the environment wins.
	v = Pair(16, 4, 2, 1)
	if !v.HasRole || v.WorkWins {
		t.Fatalf("Pair(16,4,2,1) = %+v, expected environment to win", v)
	}
}

func TestAnalyzeDeduplicatesPairs(t *testing.T) {
	r := Analyze(16, 4,
		Workload{Name: "w", Distances: []int{1, 1, 1, 1}},
		Workload{Name: "e", Distances: []int{1, 1, 1}},
	)
	if len(r.Verdicts) != 1 {
		t.Fatalf("verdicts = %d, want 1 (deduplicated)", len(r.Verdicts))
	}
}

func TestReportString(t *testing.T) {
	out := TriadReport(6).String()
	for _, want := range []string{"triad INC=6", "isomorphic", "barrier", "workload", "worst predicted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWorstConflictFree(t *testing.T) {
	r := Analyze(16, 4,
		Workload{Name: "w", Distances: []int{1}},
		Workload{Name: "e", Distances: []int{9}},
	)
	if !r.Worst().Equal(rat.New(2, 1)) {
		t.Fatalf("worst = %s, want 2", r.Worst())
	}
}
