package stream

import (
	"testing"
	"testing/quick"

	"ivm/internal/modmath"
)

func TestNewNormalises(t *testing.T) {
	s := New(16, 17, -1, 10)
	if s.Start != 1 {
		t.Errorf("Start = %d, want 1", s.Start)
	}
	if s.Distance != 15 {
		t.Errorf("Distance = %d, want 15", s.Distance)
	}
	if s.IsInfinite() {
		t.Error("finite stream reported infinite")
	}
	if !Infinite(16, 0, 1).IsInfinite() {
		t.Error("Infinite stream not infinite")
	}
}

func TestBankSequence(t *testing.T) {
	s := Infinite(12, 3, 7)
	want := []int{3, 10, 5, 0, 7, 2, 9, 4, 11, 6, 1, 8, 3}
	for k, w := range want {
		if got := s.Bank(k); got != w {
			t.Errorf("Bank(%d) = %d, want %d", k, got, w)
		}
	}
}

// Theorem 1: r = m/gcd(m, d), table from the paper's running examples.
func TestReturnNumberTheorem1(t *testing.T) {
	cases := []struct{ m, d, want int }{
		{16, 1, 16},
		{16, 2, 8},
		{16, 4, 4},
		{16, 8, 2},
		{16, 16, 1}, // d = 0 mod m
		{16, 6, 8},
		{16, 3, 16},
		{12, 7, 12},
		{13, 6, 13},
		{13, 1, 13},
		{12, 1, 12},
		{12, 0, 1},
		{1, 0, 1},
	}
	for _, c := range cases {
		if got := ReturnNumber(c.m, c.d); got != c.want {
			t.Errorf("ReturnNumber(%d,%d) = %d, want %d", c.m, c.d, got, c.want)
		}
	}
}

// Property: the return number is the index of the first repetition in
// the bank sequence, for every start bank.
func TestReturnNumberIsFirstRepetition(t *testing.T) {
	for m := 1; m <= 24; m++ {
		for d := 0; d < m; d++ {
			s := Infinite(m, d%3, d)
			r := s.ReturnNumber()
			start := s.Bank(0)
			for k := 1; k < r; k++ {
				if s.Bank(k) == start {
					t.Fatalf("m=%d d=%d: returned to start at k=%d < r=%d", m, d, k, r)
				}
			}
			if s.Bank(r) != start {
				t.Fatalf("m=%d d=%d: Bank(r)=%d != start %d", m, d, s.Bank(r), start)
			}
		}
	}
}

func TestAccessSet(t *testing.T) {
	s := Infinite(16, 1, 6) // gcd=2, r=8, banks {1,3,5,...,15}
	set := s.AccessSet()
	if len(set) != 8 {
		t.Fatalf("len(AccessSet) = %d, want 8", len(set))
	}
	for i, b := range set {
		if b != 2*i+1 {
			t.Fatalf("AccessSet = %v, want odd banks", set)
		}
	}
	for j := 0; j < 16; j++ {
		want := j%2 == 1
		if got := s.VisitsBank(j); got != want {
			t.Errorf("VisitsBank(%d) = %v, want %v", j, got, want)
		}
	}
}

func TestAccessSetSizeEqualsReturnNumber(t *testing.T) {
	for m := 1; m <= 20; m++ {
		for d := 0; d < m; d++ {
			for b := 0; b < m; b += 3 {
				s := Infinite(m, b, d)
				if len(s.AccessSet()) != s.ReturnNumber() {
					t.Fatalf("m=%d b=%d d=%d: |Z| != r", m, b, d)
				}
			}
		}
	}
}

func TestSectionSet(t *testing.T) {
	s := Infinite(12, 0, 2) // banks {0,2,4,6,8,10}
	secs := s.SectionSet(2) // all even banks -> section 0
	if len(secs) != 1 || secs[0] != 0 {
		t.Fatalf("SectionSet(2) = %v, want [0]", secs)
	}
	secs = s.SectionSet(3) // banks mod 3: {0,2,1,0,2,1} -> {0,1,2}
	if len(secs) != 3 {
		t.Fatalf("SectionSet(3) = %v, want all three", secs)
	}
	secs = s.SectionSet(4) // even banks mod 4 -> {0, 2}
	if len(secs) != 2 || secs[0] != 0 || secs[1] != 2 {
		t.Fatalf("SectionSet(4) = %v, want [0 2]", secs)
	}
}

func TestSectionSetPanicsOnNonDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SectionSet with s not dividing m did not panic")
		}
	}()
	Infinite(12, 0, 1).SectionSet(5)
}

// Theorem 2 (constructive direction): when gcd(m,d1,d2) = f > 1,
// consecutive start banks give disjoint access sets.
func TestDisjointConstruction(t *testing.T) {
	cases := []struct{ m, d1, d2 int }{
		{16, 2, 4}, {16, 2, 2}, {16, 4, 8}, {12, 2, 4},
		{12, 3, 3}, {12, 6, 3}, {16, 8, 4}, {18, 6, 3},
	}
	for _, c := range cases {
		f := modmath.GCD3(c.m, c.d1, c.d2)
		if f <= 1 {
			t.Fatalf("bad test case %+v: f = %d", c, f)
		}
		a := Infinite(c.m, 0, c.d1)
		b := Infinite(c.m, 1, c.d2)
		if !Disjoint(a, b) {
			t.Errorf("m=%d d1=%d d2=%d b2=1: expected disjoint access sets", c.m, c.d1, c.d2)
		}
	}
}

// Theorem 2 (impossibility direction): when gcd(m,d1,d2) = 1, no choice
// of start banks yields disjoint access sets.
func TestDisjointImpossible(t *testing.T) {
	for m := 2; m <= 16; m++ {
		for d1 := 0; d1 < m; d1++ {
			for d2 := 0; d2 < m; d2++ {
				if modmath.GCD3(m, d1, d2) != 1 {
					continue
				}
				for b2 := 0; b2 < m; b2++ {
					a := Infinite(m, 0, d1)
					b := Infinite(m, b2, d2)
					if Disjoint(a, b) {
						t.Fatalf("m=%d d1=%d d2=%d b2=%d: disjoint despite gcd 1", m, d1, d2, b2)
					}
				}
			}
		}
	}
}

// Disjoint must agree with literally intersecting the access sets.
func TestDisjointMatchesSets(t *testing.T) {
	for m := 1; m <= 14; m++ {
		for d1 := 0; d1 < m; d1++ {
			for d2 := 0; d2 < m; d2++ {
				for b2 := 0; b2 < m; b2++ {
					a := Infinite(m, 0, d1)
					b := Infinite(m, b2, d2)
					inter := intersects(a.AccessSet(), b.AccessSet())
					if got := Disjoint(a, b); got == inter {
						t.Fatalf("m=%d d1=%d d2=%d b2=%d: Disjoint=%v but intersects=%v",
							m, d1, d2, b2, got, inter)
					}
				}
			}
		}
	}
}

func intersects(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return true
		}
	}
	return false
}

func TestSectionsDisjoint(t *testing.T) {
	// m=12, s=2: d1=2 from bank 0 stays in section 0; d2=2 from bank 1
	// stays in section 1.
	a := Infinite(12, 0, 2)
	b := Infinite(12, 1, 2)
	if !SectionsDisjoint(a, b, 2) {
		t.Error("expected disjoint section sets")
	}
	if SectionsDisjoint(a, b, 3) {
		t.Error("expected overlapping section sets for s=3")
	}
}

func TestStringer(t *testing.T) {
	if got := Infinite(16, 1, 6).String(); got != "stream{m=16 b=1 d=6 len=inf}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(16, 1, 6, 64).String(); got != "stream{m=16 b=1 d=6 len=64}" {
		t.Errorf("String() = %q", got)
	}
}

// --- Appendix: isomorphism -------------------------------------------

// The paper's worked examples, m = 16: 1(+)3 = 5(+)15 = 11(+)1 and
// 2(+)3 = 6(+)9 = 6(+)1.
func TestPairIsomorphicPaperExamples(t *testing.T) {
	if !PairIsomorphic(16, 1, 3, 5, 15) {
		t.Error("1(+)3 should be isomorphic to 5(+)15 mod 16")
	}
	if !PairIsomorphic(16, 1, 3, 11, 1) {
		t.Error("1(+)3 should be isomorphic to 11(+)1 mod 16")
	}
	if !PairIsomorphic(16, 2, 3, 6, 9) {
		t.Error("2(+)3 should be isomorphic to 6(+)9 mod 16")
	}
	if !PairIsomorphic(16, 2, 3, 6, 1) {
		t.Error("2(+)3 should be isomorphic to 6(+)1 mod 16")
	}
	if PairIsomorphic(16, 1, 3, 2, 6) {
		t.Error("1(+)3 must not be isomorphic to 2(+)6 (different gcd structure)")
	}
}

// Section IV: INC=6 and INC=11 against the d=1 environment are
// isomorphic to 2(+)3 and 1(+)3 on the 16-bank X-MP.
func TestTriadIsomorphisms(t *testing.T) {
	if !PairIsomorphic(16, 1, 6, 3, 2) {
		t.Error("1(+)6 should be isomorphic to 3(+)2 mod 16")
	}
	if !PairIsomorphic(16, 1, 11, 3, 1) {
		t.Error("1(+)11 should be isomorphic to 3(+)1 mod 16")
	}
}

func TestNormalizeProducesDivisor(t *testing.T) {
	for m := 1; m <= 36; m++ {
		for d1 := 0; d1 < m; d1++ {
			for d2 := 0; d2 < m; d2++ {
				nd1, nd2, k := Normalize(m, d1, d2)
				if !modmath.Coprime(k, m) && m > 1 {
					t.Fatalf("m=%d d1=%d: k=%d not a unit", m, d1, k)
				}
				if nd1 != modmath.Mod(k*d1, m) || nd2 != modmath.Mod(k*d2, m) {
					t.Fatalf("m=%d: transported distances inconsistent", m)
				}
				if d1 != 0 && (nd1 == 0 || m%nd1 != 0) {
					t.Fatalf("m=%d d1=%d: normalised nd1=%d does not divide m", m, d1, nd1)
				}
				// gcd structure is preserved by unit multiplication.
				if modmath.GCD(m, d1) != modmath.GCD(m, nd1) {
					t.Fatalf("m=%d d1=%d: gcd changed under normalisation", m, d1)
				}
				if modmath.GCD(m, d2) != modmath.GCD(m, nd2) {
					t.Fatalf("m=%d d2=%d: gcd changed under normalisation", m, d2)
				}
			}
		}
	}
}

func TestNormalizeFixedPoint(t *testing.T) {
	// d1 already dividing m should stay put (k may be any unit fixing it;
	// we only require nd1 == gcd structure-compatible divisor, and for
	// d1 | m specifically nd1 == d1).
	for _, c := range []struct{ m, d1, d2 int }{{16, 4, 7}, {12, 3, 5}, {13, 1, 6}} {
		nd1, _, _ := Normalize(c.m, c.d1, c.d2)
		if nd1 != c.d1 {
			t.Errorf("m=%d d1=%d: Normalize moved a canonical d1 to %d", c.m, c.d1, nd1)
		}
	}
}

func TestNormalizeIsomorphismProperty(t *testing.T) {
	f := func(mRaw, d1Raw, d2Raw uint8) bool {
		m := int(mRaw%32) + 2
		d1 := int(d1Raw) % m
		d2 := int(d2Raw) % m
		nd1, nd2, _ := Normalize(m, d1, d2)
		return PairIsomorphic(m, d1, d2, nd1, nd2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalPairOrdersByGCD(t *testing.T) {
	nd1, nd2, _, swapped := CanonicalPair(16, 11, 1)
	// gcd(16,11)=1 > ... both gcd 1; no swap required semantics: f1==f2.
	_ = nd2
	if nd1 == 0 {
		t.Fatal("canonical d1 must not be zero for non-zero input")
	}
	if !modmath.Divides(nd1, 16) {
		t.Fatalf("canonical d1 = %d does not divide 16", nd1)
	}
	_ = swapped

	// gcd(16,6)=2, gcd(16,1)=1: stream with d=1 must become stream 1.
	nd1, nd2, _, swapped = CanonicalPair(16, 6, 1)
	if !swapped {
		t.Error("expected swap to put the smaller-gcd stream first")
	}
	if nd1 != 1 {
		t.Errorf("canonical d1 = %d, want 1", nd1)
	}
	if modmath.GCD(16, nd2) != 2 {
		t.Errorf("canonical d2 = %d lost its gcd", nd2)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, 0, 1, 1) },
		func() { ReturnNumber(0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDisjointMismatchedBanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bank counts did not panic")
		}
	}()
	Disjoint(Infinite(8, 0, 1), Infinite(16, 0, 1))
}

func TestVisitsBankZeroDistance(t *testing.T) {
	s := Infinite(16, 5, 0) // only bank 5
	for j := 0; j < 16; j++ {
		if got := s.VisitsBank(j); got != (j == 5) {
			t.Errorf("VisitsBank(%d) = %v", j, got)
		}
	}
}

func TestNormalizePanicsOnBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize(0,...) did not panic")
		}
	}()
	Normalize(0, 1, 2)
}
