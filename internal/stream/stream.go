// Package stream models vector-mode access streams as defined in
// Section III of Oed & Lange (1985): a port activated by a single
// vector memory instruction issues equally spaced requests, the i-th
// stream starting at bank b_i and stepping through memory with distance
// d_i, so that the (k+1)-th request goes to bank (b_i + k*d_i) mod m.
//
// A stream is characterised by its start bank, its distance, its return
// number r_i = m / gcd(m, d_i) (Theorem 1) and its access set Z_i (the
// r_i distinct banks it visits).
package stream

import (
	"fmt"
	"sort"

	"ivm/internal/modmath"
)

// Stream describes one vector-mode access stream against an m-way
// interleaved memory. Distance and Start are always reduced modulo
// Banks. Length <= 0 means the stream is infinite (the analytic model's
// assumption 1).
type Stream struct {
	Banks    int // m, the interleaving factor; must be > 0
	Start    int // b, address of the start bank, in [0, m)
	Distance int // d, stepping distance modulo m, in [0, m)
	Length   int // number of elements; <= 0 means infinite
}

// New returns a Stream with start and distance normalised modulo m.
// It panics if m <= 0.
func New(m, start, distance, length int) Stream {
	if m <= 0 {
		panic(fmt.Sprintf("stream: non-positive bank count %d", m))
	}
	return Stream{
		Banks:    m,
		Start:    modmath.Mod(start, m),
		Distance: modmath.Mod(distance, m),
		Length:   length,
	}
}

// Infinite returns an unbounded stream (the analytic model's setting).
func Infinite(m, start, distance int) Stream { return New(m, start, distance, 0) }

// IsInfinite reports whether the stream has no element bound.
func (s Stream) IsInfinite() bool { return s.Length <= 0 }

// Bank returns the bank address of the (k+1)-th access request,
// (b + k*d) mod m.
func (s Stream) Bank(k int) int {
	return modmath.Mod(s.Start+k*s.Distance, s.Banks)
}

// ReturnNumber implements Theorem 1: the number of accesses made before
// the same bank is requested again, r = m / gcd(m, d). By the paper's
// convention gcd(m, 0) = m, so a stream with d = 0 has return number 1.
func (s Stream) ReturnNumber() int {
	return ReturnNumber(s.Banks, s.Distance)
}

// ReturnNumber is the free-function form of Theorem 1 for a distance d
// against m banks: r = m / gcd(m, d).
func ReturnNumber(m, d int) int {
	if m <= 0 {
		panic(fmt.Sprintf("stream: non-positive bank count %d", m))
	}
	return m / modmath.GCD(m, modmath.Mod(d, m))
}

// AccessSet returns Z, the set of bank addresses the stream visits, as
// a sorted slice. Its length equals the return number; the elements are
// exactly {b + k*gcd(m,d) mod m}.
func (s Stream) AccessSet() []int {
	r := s.ReturnNumber()
	set := make([]int, 0, r)
	b := s.Start
	for k := 0; k < r; k++ {
		set = append(set, b)
		b = modmath.Mod(b+s.Distance, s.Banks)
	}
	sort.Ints(set)
	return set
}

// VisitsBank reports whether bank j is in the stream's access set. By
// the structure of Z this holds iff gcd(m, d) divides (j - b) mod m.
func (s Stream) VisitsBank(j int) bool {
	g := modmath.GCD(s.Banks, s.Distance)
	if g == 0 {
		g = s.Banks
	}
	return modmath.Mod(j-s.Start, s.Banks)%g == 0
}

// SectionSet returns the set of section addresses the stream's access
// set touches under cyclic bank-to-section distribution k = j mod s,
// sorted. s must divide m (the paper's assumption s | m).
func (st Stream) SectionSet(s int) []int {
	if s <= 0 || st.Banks%s != 0 {
		panic(fmt.Sprintf("stream: sections %d must divide banks %d", s, st.Banks))
	}
	seen := make(map[int]bool)
	for _, j := range st.AccessSet() {
		seen[j%s] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Disjoint reports whether the access sets of a and b are disjoint.
// Both streams must use the same number of banks.
func Disjoint(a, b Stream) bool {
	if a.Banks != b.Banks {
		panic(fmt.Sprintf("stream: mismatched bank counts %d vs %d", a.Banks, b.Banks))
	}
	// Z_a = {b_a + k*ga}, Z_b = {b_b + k*gb} with ga = gcd(m, da). They
	// intersect iff (b_b - b_a) is divisible by gcd(ga, gb) modulo m,
	// i.e. iff gcd(ga, gb, m) | (b_b - b_a). Using the set structure is
	// cheaper than materialising both sets.
	m := a.Banks
	ga := modmath.GCD(m, a.Distance)
	gb := modmath.GCD(m, b.Distance)
	g := modmath.GCD3(ga, gb, m)
	return modmath.Mod(b.Start-a.Start, m)%g != 0
}

// SectionsDisjoint reports whether the section sets of a and b under
// cyclic distribution over s sections are disjoint.
func SectionsDisjoint(a, b Stream, s int) bool {
	sa := a.SectionSet(s)
	sb := b.SectionSet(s)
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			return false
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// String renders the stream in the paper's b/d notation.
func (s Stream) String() string {
	if s.IsInfinite() {
		return fmt.Sprintf("stream{m=%d b=%d d=%d len=inf}", s.Banks, s.Start, s.Distance)
	}
	return fmt.Sprintf("stream{m=%d b=%d d=%d len=%d}", s.Banks, s.Start, s.Distance, s.Length)
}
