package stream_test

import (
	"fmt"

	"ivm/internal/stream"
)

func ExampleStream_ReturnNumber() {
	s := stream.Infinite(16, 0, 6)
	fmt.Println(s.ReturnNumber(), s.AccessSet())
	// Output: 8 [0 2 4 6 8 10 12 14]
}

// The Appendix's worked example: 1 (+) 3 mod 16 is isomorphic to
// 11 (+) 1 (multiply by the unit 11).
func ExamplePairIsomorphic() {
	fmt.Println(stream.PairIsomorphic(16, 1, 3, 11, 1))
	// Output: true
}

// Normalize transports a pair into the canonical position d1 | m used
// by Theorems 4-7.
func ExampleNormalize() {
	nd1, nd2, k := stream.Normalize(16, 11, 1)
	fmt.Println(nd1, nd2, k)
	// Output: 1 3 3
}
