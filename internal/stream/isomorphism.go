package stream

import (
	"fmt"

	"ivm/internal/modmath"
)

// The Appendix of the paper establishes that competing distance pairs
// are isomorphic under multiplication by a unit of Z_m:
//
//	d1 (+) d2  ==  k*d1 (+) k*d2 (mod m),  gcd(k, m) = 1,
//
// because renumbering the banks j -> k*j mod m is a bijection that maps
// the one access pattern onto the other. The theorems of Section III
// are stated for d1 | m; Normalize produces the unit that transports an
// arbitrary pair into that canonical position.

// PairIsomorphic reports whether the pairs (d1, d2) and (e1, e2) are
// isomorphic modulo m, i.e. whether a unit k exists with
// k*d1 = e1 and k*d2 = e2 (mod m), or with the roles of e1 and e2
// swapped (the two streams are not ordered).
func PairIsomorphic(m, d1, d2, e1, e2 int) bool {
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	e1, e2 = modmath.Mod(e1, m), modmath.Mod(e2, m)
	for _, k := range modmath.Units(m) {
		k1 := modmath.Mod(k*d1, m)
		k2 := modmath.Mod(k*d2, m)
		if (k1 == e1 && k2 == e2) || (k1 == e2 && k2 == e1) {
			return true
		}
	}
	// m == 1: every pair is (0,0).
	return m == 1
}

// Normalize returns a unit k modulo m such that (k*d1) mod m divides m,
// together with the transported distances nd1 = k*d1 mod m and
// nd2 = k*d2 mod m. This is the canonical position assumed by
// Theorems 3-7 ("in the following we assume ... d1 | m; other values of
// d1 are isomorphic to that case").
//
// For d1 with f1 = gcd(m, d1), nd1 always equals f1. Normalize panics
// if m <= 0; d1 = 0 is returned unchanged with k = 1 (gcd(m,0) = m and
// m | m, so the pair is already canonical).
func Normalize(m, d1, d2 int) (nd1, nd2, k int) {
	if m <= 0 {
		panic(fmt.Sprintf("stream: non-positive bank count %d", m))
	}
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	if d1 == 0 {
		return 0, d2, 1
	}
	f1 := modmath.GCD(m, d1)
	// d1 = f1*d1', gcd(d1', m/f1) = 1. Solve k*d1' = 1 (mod m/f1) and
	// lift k to a unit of Z_m: among k + t*(m/f1), t = 0..f1-1, at least
	// one is coprime to m (the residues k + t*(m/f1) cover all lifts of
	// the unit k of Z_{m/f1}, and units of Z_{m/f1} always lift).
	mf := m / f1
	d1p := d1 / f1
	inv, ok := modmath.Inverse(d1p, mf)
	if !ok {
		panic(fmt.Sprintf("stream: internal error, %d not invertible mod %d", d1p, mf))
	}
	if mf == 1 {
		inv = 1 // Inverse mod 1 returns 0; any unit works, use 1.
	}
	for t := 0; t < f1; t++ {
		cand := inv + t*mf
		if cand == 0 {
			continue
		}
		if modmath.Coprime(cand, m) {
			k = cand
			break
		}
	}
	if k == 0 {
		// Exhaustive fallback: scan all units (cannot happen for the
		// lift above, but keeps the function total).
		for _, u := range modmath.Units(m) {
			if modmath.Divides(modmath.Mod(u*d1, m), m) && modmath.Mod(u*d1, m) != 0 {
				k = u
				break
			}
		}
	}
	if k == 0 {
		k = 1
	}
	nd1 = modmath.Mod(k*d1, m)
	nd2 = modmath.Mod(k*d2, m)
	return nd1, nd2, k
}

// CanonicalPair transports (d1, d2) so that the smaller-gcd stream is
// first and its distance divides m, matching the hypotheses
// "d1 | m; d2 > d1" used by Theorems 4-7 where possible. It returns the
// transported pair (nd1, nd2), the unit k used, and swapped, which
// tells whether the stream roles were exchanged.
func CanonicalPair(m, d1, d2 int) (nd1, nd2, k int, swapped bool) {
	d1, d2 = modmath.Mod(d1, m), modmath.Mod(d2, m)
	f1 := modmath.GCD(m, d1)
	f2 := modmath.GCD(m, d2)
	if f1 == 0 {
		f1 = m
	}
	if f2 == 0 {
		f2 = m
	}
	// The stream with the smaller gcd has the larger return number; the
	// barrier theorems make the *dividing* (smaller, after normalising)
	// distance stream "1". Choose the stream whose normalised distance
	// f = gcd(m, d) is smaller as stream 1.
	if f2 < f1 || (f2 == f1 && modmath.Mod(d2, m) != 0 && modmath.Mod(d1, m) == 0) {
		d1, d2 = d2, d1
		swapped = true
	}
	nd1, nd2, k = Normalize(m, d1, d2)
	return nd1, nd2, k, swapped
}
