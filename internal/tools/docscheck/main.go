// Command docscheck is the documentation gate run by scripts/check.sh.
//
// It enforces two invariants over the repository:
//
//  1. Every exported top-level identifier (types, funcs, methods,
//     consts, vars) in the audited packages carries a doc comment, and
//     every audited package has a package comment. The audited set is
//     given as directory arguments; scripts/check.sh passes
//     internal/sweep, internal/modmath and internal/obs.
//  2. Every relative link in the repository's Markdown files resolves
//     to an existing file (anchors are stripped; absolute URLs are
//     ignored).
//
// Usage:
//
//	go run ./internal/tools/docscheck [-root dir] pkgdir...
//
// Exit status is non-zero if any finding is reported, making the tool
// suitable as a CI/pre-commit step.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root for the Markdown link scan")
	flag.Parse()

	var findings []string
	for _, dir := range flag.Args() {
		findings = append(findings, checkPackageDocs(dir)...)
	}
	findings = append(findings, checkMarkdownLinks(*root)...)

	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// checkPackageDocs parses the non-test Go files of one package
// directory and reports exported identifiers without doc comments,
// plus a missing package comment.
func checkPackageDocs(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}

	var findings []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
			for _, decl := range file.Decls {
				findings = append(findings, checkDecl(fset, decl)...)
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return findings
}

// checkDecl reports exported names introduced by one top-level
// declaration that lack documentation. For grouped const/var/type
// declarations a doc comment on either the group or the individual
// spec satisfies the check, mirroring godoc's association rules.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var findings []string
	undocumented := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}

	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			undocumented(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					undocumented(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						undocumented(name.Pos(), "value", name.Name)
					}
				}
			}
		}
	}
	return findings
}

// exportedRecv reports whether a function declaration is package-level
// or a method on an exported receiver type; methods on unexported
// types are invisible in godoc and therefore exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// mdLink matches inline Markdown links and images; the first capture
// group is the destination.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks walks the repository for Markdown files and
// verifies that every relative link destination exists on disk.
func checkMarkdownLinks(root string) []string {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (name == "related" && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				dest := m[1]
				if skipLink(dest) {
					continue
				}
				if i := strings.IndexByte(dest, '#'); i >= 0 {
					dest = dest[:i]
					if dest == "" {
						continue // same-file anchor
					}
				}
				target := filepath.Join(filepath.Dir(path), dest)
				if _, err := os.Stat(target); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken link %q", path, lineNo+1, m[1]))
				}
			}
		}
		return nil
	})
	if err != nil {
		findings = append(findings, fmt.Sprintf("markdown scan: %v", err))
	}
	return findings
}

// skipLink reports whether a link destination is out of scope for the
// existence check: absolute URLs, mail links, and absolute paths
// (which point outside the repository checkout).
func skipLink(dest string) bool {
	return strings.Contains(dest, "://") ||
		strings.HasPrefix(dest, "mailto:") ||
		strings.HasPrefix(dest, "/")
}
