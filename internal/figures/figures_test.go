package figures

import (
	"strings"
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/rat"
)

// Every figure with a paper-stated bandwidth must reproduce it exactly
// in the simulator's cyclic steady state.
func TestFiguresReproducePaperBandwidths(t *testing.T) {
	for _, f := range All() {
		bw, cyc, err := f.SteadyBandwidth()
		if err != nil {
			t.Fatalf("Fig. %s: %v", f.ID, err)
		}
		if f.WantBandwidth.Num != 0 && !bw.Equal(f.WantBandwidth) {
			t.Errorf("Fig. %s: b_eff = %s, paper says %s", f.ID, bw, f.WantBandwidth)
		}
		if cyc.Length <= 0 {
			t.Errorf("Fig. %s: degenerate cycle %+v", f.ID, cyc)
		}
	}
}

// Pinned simulator results for the figures whose bandwidth the paper
// shows only as a timeline: Fig. 4 (double conflict) settles at 1,
// Fig. 6 (inverted barrier) at 7/5. These guard against regressions in
// the arbitration semantics.
func TestFig4AndFig6PinnedBandwidths(t *testing.T) {
	bw4, _, err := Fig4().SteadyBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if !bw4.Equal(rat.One()) {
		t.Errorf("Fig. 4 b_eff = %s, pinned 1", bw4)
	}
	bw6, _, err := Fig6().SteadyBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if !bw6.Equal(rat.New(7, 5)) {
		t.Errorf("Fig. 6 b_eff = %s, pinned 7/5", bw6)
	}
}

// Fig. 3's cycle is a barrier: stream 2 delayed, stream 1 untouched.
func TestFig3IsABarrier(t *testing.T) {
	_, cyc, err := Fig3().SteadyBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Conflicts[0].Delays() != 0 {
		t.Errorf("stream 1 delayed %d clocks; a barrier leaves it free", cyc.Conflicts[0].Delays())
	}
	if cyc.Conflicts[1].Delays() == 0 {
		t.Error("stream 2 not delayed; not a barrier")
	}
	if cyc.Conflicts[1].Bank == 0 {
		t.Error("barrier delays must be bank conflicts")
	}
}

// Fig. 6 inverts the barrier: stream 1 delayed, stream 2 free.
func TestFig6IsInverted(t *testing.T) {
	_, cyc, err := Fig6().SteadyBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Conflicts[1].Delays() != 0 {
		t.Error("stream 2 should run free in the inverted barrier")
	}
	if cyc.Conflicts[0].Delays() == 0 {
		t.Error("stream 1 should be delayed in the inverted barrier")
	}
}

// Fig. 8a's linked conflict alternates bank and section conflicts.
func TestFig8aLinkedConflictMix(t *testing.T) {
	_, cyc, err := Fig8a().SteadyBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	var bank, section int64
	for _, c := range cyc.Conflicts {
		bank += c.Bank
		section += c.Section
	}
	if bank == 0 || section == 0 {
		t.Errorf("linked conflict needs both kinds; bank=%d section=%d", bank, section)
	}
}

// Figs. 8b and 9 fully resolve: no conflicts at all inside the cycle.
func TestResolvedFiguresHaveCleanCycles(t *testing.T) {
	for _, f := range []Figure{Fig8b(), Fig9()} {
		_, cyc, err := f.SteadyBandwidth()
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cyc.Conflicts {
			if c.Delays() != 0 {
				t.Errorf("Fig. %s: port %d delayed %d clocks in cycle", f.ID, i, c.Delays())
			}
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	for _, f := range All() {
		out := f.Timeline(34)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		want := f.Config.Banks
		if f.Config.Sections != 0 && f.Config.Sections != f.Config.Banks {
			want++ // the priority row of Figures 7-9
		}
		if len(lines) != want {
			t.Errorf("Fig. %s: %d rows, want %d", f.ID, len(lines), want)
		}
		if !strings.ContainsAny(out, "12") {
			t.Errorf("Fig. %s: timeline shows no service", f.ID)
		}
	}
	// Section figures carry the section prefix and the priority row.
	out := Fig8a().Timeline(10)
	if !strings.Contains(out, " - ") || !strings.Contains(out, "prio") {
		t.Error("Fig. 8a timeline missing section prefixes or priority row")
	}
	// Fixed priority shows all 1s; cyclic alternates.
	if strings.Contains(strings.SplitN(out, "\n", 2)[0], "2") {
		t.Error("Fig. 8a (fixed priority) priority row should be all 1s")
	}
	out8b := Fig8b().Timeline(10)
	if !strings.Contains(strings.SplitN(out8b, "\n", 2)[0], "2") {
		t.Error("Fig. 8b (cyclic priority) priority row should alternate")
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"2", "3", "4", "5", "6", "7", "8a", "8b", "9"} {
		f, err := ByID(id)
		if err != nil || f.ID != id {
			t.Errorf("ByID(%q) = %v, %v", id, f.ID, err)
		}
	}
	if _, err := ByID("10"); err == nil {
		t.Error("ByID(10) should fail (Fig. 10 is the triad experiment)")
	}
}

// The two-CPU figures place the streams on different CPUs, the
// one-CPU figures on the same CPU — this is what makes simultaneous
// vs. section conflicts possible in the right places.
func TestFigureCPUPlacement(t *testing.T) {
	for _, f := range All() {
		sameCPU := f.Streams[0].CPU == f.Streams[1].CPU
		hasSections := f.Config.Sections != 0 && f.Config.Sections != f.Config.Banks
		if hasSections && !sameCPU {
			t.Errorf("Fig. %s: section figure must use one CPU", f.ID)
		}
		if !hasSections && sameCPU {
			t.Errorf("Fig. %s: sectionless figure must use two CPUs", f.ID)
		}
		if f.Config.CPUs < f.Streams[len(f.Streams)-1].CPU+1 {
			t.Errorf("Fig. %s: CPU index out of range", f.ID)
		}
	}
}

// Sanity: building a figure twice yields independent systems.
func TestBuildIsolation(t *testing.T) {
	f := Fig2()
	a := f.Build()
	b := f.Build()
	a.Run(50)
	if b.Clock() != 0 {
		t.Error("Build shares state between systems")
	}
	if a.TotalGrants() == 0 {
		t.Error("no grants after 50 clocks")
	}
	var _ *memsys.System = b
}
