package figures

// Regenerate the golden timelines with:
//
//	go test ./internal/figures -run TestGoldenTimelines -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden timeline files")

// TestGoldenTimelines pins the exact 34-clock timeline of every figure.
// The renders were verified against the paper's printed diagrams (see
// EXPERIMENTS.md); any simulator or renderer change that alters them
// must be deliberate.
func TestGoldenTimelines(t *testing.T) {
	for _, f := range All() {
		got := f.Timeline(34)
		path := filepath.Join("testdata", "fig"+f.ID+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("Fig. %s: %v (run with -update to create)", f.ID, err)
		}
		if got != string(want) {
			t.Errorf("Fig. %s timeline changed:\n--- got ---\n%s--- want ---\n%s", f.ID, got, want)
		}
	}
}
