// Package figures reproduces the worked examples of Oed & Lange
// (1985), Figures 2–9: concrete memory systems and stream pairs whose
// per-clock timelines the paper prints, together with the effective
// bandwidth each one settles into. They serve as executable ground
// truth for the simulator and as the source for cmd/ivmfigs.
package figures

import (
	"fmt"

	"ivm/internal/memsys"
	"ivm/internal/rat"
	"ivm/internal/trace"
)

// Figure is one of the paper's timeline examples.
type Figure struct {
	ID      string // "2", "3", …, "8a", "8b", "9"
	Title   string
	Config  memsys.Config
	Streams []memsys.StreamSpec
	// Expected effective bandwidth of the cyclic steady state; the
	// paper states it in the caption or the surrounding text.
	WantBandwidth rat.Rational
	// Paper's qualitative outcome, for documentation.
	Outcome string
}

// Build constructs a fresh system with the figure's ports attached.
func (f Figure) Build() *memsys.System {
	sys := memsys.New(f.Config)
	for i, sp := range f.Streams {
		label := sp.Label
		if label == "" {
			label = fmt.Sprintf("%d", i+1)
		}
		sys.AddPort(sp.CPU, label, memsys.NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
	}
	return sys
}

// Timeline runs the figure for `clocks` clock periods and returns the
// rendered paper-style diagram. Section figures carry the "section -
// bank" row prefix and — like the paper's Figures 8 and 9 — a priority
// row showing which stream holds the highest priority each clock.
func (f Figure) Timeline(clocks int64) string {
	sys := f.Build()
	rec := trace.Attach(sys, 0, clocks)
	sys.Run(clocks)
	if f.Config.Sections != 0 && f.Config.Sections != f.Config.Banks {
		holder := func(t int64) byte {
			p := sys.PriorityHolderAt(t)
			if p == nil || p.Label == "" {
				return '?'
			}
			return p.Label[0]
		}
		return rec.RenderWithPriority(sys.Section, holder)
	}
	return rec.Render()
}

// SteadyBandwidth finds the cyclic state and returns its b_eff.
func (f Figure) SteadyBandwidth() (rat.Rational, memsys.Cycle, error) {
	sys := f.Build()
	c, err := sys.FindCycle(1 << 20)
	if err != nil {
		return rat.Zero(), memsys.Cycle{}, err
	}
	return c.EffectiveBandwidth(), c, nil
}

// All returns the paper's figures in order. Two-CPU figures put each
// stream on its own CPU (simultaneous bank conflicts possible, no
// path contention); one-CPU figures share the CPU's per-section paths.
func All() []Figure {
	return []Figure{
		Fig2(), Fig3(), Fig4(), Fig5(), Fig6(), Fig7(), Fig8a(), Fig8b(), Fig9(),
	}
}

// ByID returns the figure with the given ID.
func ByID(id string) (Figure, error) {
	for _, f := range All() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("figures: unknown figure %q", id)
}

// Fig2 — conflict-free access: a 12-way interleaved memory with
// n_c = 3; streams d1 = 1 and d2 = 7 encounter no conflicts (b_eff = 2).
// Theorem 3: gcd(12, 7-1) = 6 >= 2*n_c = 6. Start banks one n_c*d1
// apart (b2 = n_c*d1 = 3 relative to b1 = 0), the relative position the
// proof of Theorem 3 constructs; synchronisation makes every relative
// start converge to this cycle.
func Fig2() Figure {
	return Figure{
		ID:    "2",
		Title: "Conflict-free access (m=12, nc=3, d1=1, d2=7)",
		Config: memsys.Config{
			Banks: 12, Sections: 0, BankBusy: 3, CPUs: 2,
			Mapping: memsys.CyclicSections, Priority: memsys.FixedPriority,
		},
		Streams: []memsys.StreamSpec{
			{Start: 0, Distance: 1, CPU: 0, Label: "1"},
			{Start: 3, Distance: 7, CPU: 1, Label: "2"},
		},
		WantBandwidth: rat.New(2, 1),
		Outcome:       "conflict-free, b_eff = 2",
	}
}

// Fig3 — barrier-situation: m = 13, n_c = 6; the stream with d2 = 6 is
// constantly delayed by the one with d1 = 1. Theorem 4:
// ((6 mod 13) - 1)/1 = 5 < n_c = 6. Unique barrier bandwidth (Eq. 29):
// 1 + d1/d2 = 7/6.
func Fig3() Figure {
	return Figure{
		ID:    "3",
		Title: "Barrier-situation (m=13, nc=6, d1=1, d2=6)",
		Config: memsys.Config{
			Banks: 13, Sections: 0, BankBusy: 6, CPUs: 2,
			Mapping: memsys.CyclicSections, Priority: memsys.FixedPriority,
		},
		Streams: []memsys.StreamSpec{
			{Start: 0, Distance: 1, CPU: 0, Label: "1"},
			{Start: 0, Distance: 6, CPU: 1, Label: "2"},
		},
		WantBandwidth: rat.New(7, 6),
		Outcome:       "stream 2 barriered behind stream 1, b_eff = 1 + 1/6",
	}
}

// Fig4 — double conflict: as Fig. 3 but with start bank b2 = 1, the
// streams fall into a cyclic state with mutual delays; the
// barrier-situation is not reached. Theorem 5's guard fails:
// (n_c - 1)(d2 + d1) = 35 >= m = 13.
func Fig4() Figure {
	f := Fig3()
	f.ID = "4"
	f.Title = "Double conflict (m=13, nc=6, d1=1, d2=6, b2=1)"
	f.Streams[1].Start = 1
	// The paper prints the timeline but no closed-form b_eff; the
	// simulator's cyclic state is the reference (filled in by tests).
	f.WantBandwidth = rat.Zero()
	f.Outcome = "mutual delays (double conflict); barrier not reached"
	return f
}

// Fig5 — barrier-situation satisfying both Theorem 4 and Theorem 5:
// m = 13, n_c = 4, d1 = 1, d2 = 3, b1 = 0, b2 = 7. Stream 2 is delayed;
// Eq. 29 gives b_eff = 1 + 1/3 = 4/3.
func Fig5() Figure {
	return Figure{
		ID:    "5",
		Title: "Barrier-situation (m=13, nc=4, d1=1, d2=3, b2=7)",
		Config: memsys.Config{
			Banks: 13, Sections: 0, BankBusy: 4, CPUs: 2,
			Mapping: memsys.CyclicSections, Priority: memsys.FixedPriority,
		},
		Streams: []memsys.StreamSpec{
			{Start: 0, Distance: 1, CPU: 0, Label: "1"},
			{Start: 7, Distance: 3, CPU: 1, Label: "2"},
		},
		WantBandwidth: rat.New(4, 3),
		Outcome:       "stream 2 barriered, b_eff = 1 + 1/3",
	}
}

// Fig6 — inverted barrier-situation: as Fig. 5 but b2 = 1; now stream 2
// delays stream 1 (the barrier is not unique because (2n_c - 1)·d2 = 21
// > m = 13, Theorem 6). The inverted barrier has the same bandwidth by
// symmetry of Eq. 29's counting: stream 1 yields 1 access per d2' run.
func Fig6() Figure {
	f := Fig5()
	f.ID = "6"
	f.Title = "Inverted barrier-situation (m=13, nc=4, d1=1, d2=3, b2=1)"
	f.Streams[1].Start = 1
	// Inverted barrier: stream "2" (d=3) runs free at rate 1, stream "1"
	// is delayed. The cyclic state's bandwidth comes from the simulator;
	// tests pin it down.
	f.WantBandwidth = rat.Zero()
	f.Outcome = "barrier inverted: stream 1 delayed by stream 2"
	return f
}

// Fig7 — conflict-free access with sections: m = 12, s = 2, n_c = 2,
// d1 = d2 = 1 from the same CPU, relative start (n_c + 1)·d1 = 3.
// Theorem 9's guard fails (n_c·d1 = 2 = s·1), but Eq. 32 holds:
// gcd(12, 0) = 12 >= 2(n_c + 1) = 6, so the extra clock offset makes
// the pair conflict free, b_eff = 2.
func Fig7() Figure {
	return Figure{
		ID:    "7",
		Title: "Conflict-free access with sections (m=12, s=2, nc=2, d1=d2=1, b2=3)",
		Config: memsys.Config{
			Banks: 12, Sections: 2, BankBusy: 2, CPUs: 1,
			Mapping: memsys.CyclicSections, Priority: memsys.FixedPriority,
		},
		Streams: []memsys.StreamSpec{
			{Start: 0, Distance: 1, CPU: 0, Label: "1"},
			{Start: 3, Distance: 1, CPU: 0, Label: "2"},
		},
		WantBandwidth: rat.New(2, 1),
		Outcome:       "conflict-free with two sections, b_eff = 2",
	}
}

// Fig8a — linked conflict: m = 12, s = 3, n_c = 3, d1 = d2 = 1,
// starting at adjacent banks on the same CPU under fixed priority
// (stream 1 always wins ties). Stream 1 encounters two bank conflicts
// at startup, which puts it into a relative position of n_c = s behind
// stream 2; Eq. 31's requirement (n_c·d1 != k·s) is violated and the
// linked conflict builds up: bank and section conflicts alternate,
// b_eff = 3/2.
func Fig8a() Figure {
	return Figure{
		ID:    "8a",
		Title: "Linked conflict, fixed priority (m=12, s=3, nc=3, d1=d2=1)",
		Config: memsys.Config{
			Banks: 12, Sections: 3, BankBusy: 3, CPUs: 1,
			Mapping: memsys.CyclicSections, Priority: memsys.FixedPriority,
		},
		Streams: []memsys.StreamSpec{
			{Start: 0, Distance: 1, CPU: 0, Label: "1"},
			{Start: 1, Distance: 1, CPU: 0, Label: "2"},
		},
		WantBandwidth: rat.New(3, 2),
		Outcome:       "linked conflict not resolved, b_eff = 3/2",
	}
}

// Fig8b — the same linked conflict resolved by a cyclic priority rule;
// b_eff = 2.
func Fig8b() Figure {
	f := Fig8a()
	f.ID = "8b"
	f.Title = "Linked conflict resolved by cyclic priority"
	f.Config.Priority = memsys.CyclicPriority
	f.WantBandwidth = rat.New(2, 1)
	f.Outcome = "cyclic priority resolves the linked conflict, b_eff = 2"
	return f
}

// Fig9 — the same linked conflict prevented by combining m/s
// consecutive banks into a section (Cheung & Smith); b_eff = 2.
func Fig9() Figure {
	f := Fig8a()
	f.ID = "9"
	f.Title = "Linked conflict resolved by consecutive-bank sections"
	f.Config.Mapping = memsys.ConsecutiveSections
	f.WantBandwidth = rat.New(2, 1)
	f.Outcome = "consecutive sections prevent the linked conflict, b_eff = 2"
	return f
}
