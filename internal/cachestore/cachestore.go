// Package cachestore persists the sweep engine's canonical-key cache
// as an append-only on-disk log, so cyclic-state simulations outlive
// the process that ran them. A Store is both ends of the engine's
// persistence seam (internal/sweep/persist.go): it implements
// sweep.CacheSink, appending one frame per newly simulated canonical
// orbit, and it replays its log through Engine.SeedCache on the next
// start — which is how ivmserved warm-loads a prior sweep's results
// (ivmsweep -cache-export / ivmserved -cache-dir; see
// docs/SERVING.md for the ops runbook).
//
// On-disk format (cache.log inside the store directory): an 8-byte
// magic "IVMCSTR1", then zero or more frames. Each frame is
//
//	uvarint payload length | 4-byte little-endian CRC32 (IEEE) of the
//	payload | payload
//
// and each payload is the varint encoding of one sweep.CacheRecord:
// family length + family bytes, then m, s, n_c, the CPU layout
// (count + values) and the canonical vector (count + values) as
// signed varints, then the bandwidth numerator and denominator.
// Records are content-addressed by the (family, m, s, n_c, CPUs,
// Vec) tuple — the same coordinates as the engine's in-RAM cache key
// — and the store deduplicates appends on it, so replaying a log
// never grows it.
//
// Recovery: a crash can leave a partial frame (or a torn write the
// CRC catches) at the tail. Open stops at the first bad frame,
// counts what it dropped, truncates the file back to the last good
// frame so future appends stay readable, and keeps every record
// before it — corruption costs a re-simulation, never an error from
// a healthy prefix.
package cachestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ivm/internal/rat"
	"ivm/internal/sweep"
)

// logMagic is the log file's format header; bump the trailing digit on
// incompatible layout changes.
const logMagic = "IVMCSTR1"

// LogName is the log's file name inside the store directory.
const LogName = "cache.log"

// Store is a persistent, deduplicated set of cache records backed by
// one append-only log. All methods are safe for concurrent use; Put
// in particular is called from every engine worker goroutine.
type Store struct {
	path string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	index   map[string]struct{}
	loaded  []sweep.CacheRecord
	dirty   bool
	lastErr error
	closed  bool
	stop    chan struct{}

	skipped   int
	truncated int64
}

// Health is the store's integrity summary for /healthz: the record
// count, what the last Open dropped from a corrupt tail, and the most
// recent append/sync error (empty when healthy).
type Health struct {
	// Records is the deduplicated record count (loaded + appended).
	Records int `json:"records"`
	// SkippedRecords and TruncatedBytes describe the corrupt tail the
	// last Open dropped: the number of unreadable frames (at most the
	// one that framing was lost in) and the bytes truncated away.
	SkippedRecords int   `json:"skipped_records,omitempty"`
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Err is the most recent append or sync failure, "" when healthy.
	Err string `json:"err,omitempty"`
}

// Open opens (creating as needed) the store rooted at dir, loading and
// verifying every record in its log. A corrupt or truncated tail is
// dropped and counted (see Skipped), never an error; a log whose
// header is not a cache log is.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %v", err)
	}
	s := &Store{
		path:  filepath.Join(dir, LogName),
		index: make(map[string]struct{}),
		stop:  make(chan struct{}),
	}
	data, err := os.ReadFile(s.path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("cachestore: %v", err)
	}
	good := 0
	if len(data) > 0 {
		if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
			return nil, fmt.Errorf("cachestore: %s: not a cache log (bad magic)", s.path)
		}
		off := len(logMagic)
		for off < len(data) {
			rec, next, ok := parseFrame(data, off)
			if !ok || rec.Validate() != nil {
				s.skipped++
				s.truncated = int64(len(data) - off)
				break
			}
			if key := contentKey(rec); !s.has(key) {
				s.index[key] = struct{}{}
				s.loaded = append(s.loaded, rec)
			}
			off = next
		}
		good = off
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %v", err)
	}
	if len(data) == 0 {
		if _, err := f.WriteString(logMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("cachestore: %v", err)
		}
	} else if s.truncated > 0 {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("cachestore: truncating corrupt tail: %v", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("cachestore: %v", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// has reports whether key is indexed. Callers hold s.mu (or, during
// Open, have exclusive access).
func (s *Store) has(key string) bool {
	_, ok := s.index[key]
	return ok
}

// Path returns the log file's path.
func (s *Store) Path() string { return s.path }

// Records returns the records loaded from disk at Open, in log order
// and deduplicated — the warm-start set to feed Engine.SeedCache.
// Records appended later are not included (their simulations are
// already in the engine that produced them). The slice is shared; do
// not mutate.
func (s *Store) Records() []sweep.CacheRecord { return s.loaded }

// Len is the deduplicated record count, loaded plus appended.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Skipped reports the corrupt tail the last Open dropped: unreadable
// frames and bytes truncated away (both zero for a clean log).
func (s *Store) Skipped() (records int, bytes int64) {
	return s.skipped, s.truncated
}

// Health snapshots the store's integrity summary.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Records:        len(s.index),
		SkippedRecords: s.skipped,
		TruncatedBytes: s.truncated,
	}
	if s.lastErr != nil {
		h.Err = s.lastErr.Error()
	}
	return h
}

// Put appends one record to the log, deduplicating on its content
// address. It implements sweep.CacheSink, so it must not fail the
// engine's hot path: append errors are remembered and surfaced
// through Health (and by Sync/Close), not returned.
func (s *Store) Put(rec sweep.CacheRecord) {
	if err := rec.Validate(); err != nil {
		s.mu.Lock()
		s.lastErr = err
		s.mu.Unlock()
		return
	}
	key := contentKey(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.has(key) {
		return
	}
	s.index[key] = struct{}{}
	if _, err := s.w.Write(appendFrame(nil, rec)); err != nil {
		s.lastErr = err
		return
	}
	s.dirty = true
}

// Sync flushes buffered appends and fsyncs the log. It returns the
// first error since the last successful Sync, including append errors
// Put swallowed.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed {
		return s.lastErr
	}
	if err := s.w.Flush(); err != nil && s.lastErr == nil {
		s.lastErr = err
	}
	if s.dirty {
		if err := s.f.Sync(); err != nil && s.lastErr == nil {
			s.lastErr = err
		}
		s.dirty = false
	}
	err := s.lastErr
	s.lastErr = nil
	return err
}

// AutoSync starts a background goroutine that Syncs every interval
// until Close. It bounds the window a crash can lose to roughly one
// interval of appends.
func (s *Store) AutoSync(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sync() //nolint:errcheck // remembered in Health
			case <-s.stop:
				return
			}
		}
	}()
}

// Close syncs and closes the log. The store rejects appends after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	close(s.stop)
	err := s.syncLocked()
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

// --- Encoding -----------------------------------------------------------

// contentKey derives a record's content address: the same coordinates
// as the engine's cache key, packed into one string.
func contentKey(rec sweep.CacheRecord) string {
	b := make([]byte, 0, 16+len(rec.Family)+2*(len(rec.CPUs)+len(rec.Vec)))
	b = append(b, rec.Family...)
	b = append(b, 0)
	b = binary.AppendVarint(b, int64(rec.M))
	b = binary.AppendVarint(b, int64(rec.S))
	b = binary.AppendVarint(b, int64(rec.NC))
	b = appendInts(b, rec.CPUs)
	b = appendInts(b, rec.Vec)
	return string(b)
}

// appendInts encodes a counted int vector as varints.
func appendInts(b []byte, v []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = binary.AppendVarint(b, int64(x))
	}
	return b
}

// appendFrame encodes one record as a length-prefixed, checksummed
// log frame.
func appendFrame(b []byte, rec sweep.CacheRecord) []byte {
	payload := make([]byte, 0, 32+len(rec.Family)+2*(len(rec.CPUs)+len(rec.Vec)))
	payload = binary.AppendUvarint(payload, uint64(len(rec.Family)))
	payload = append(payload, rec.Family...)
	payload = binary.AppendVarint(payload, int64(rec.M))
	payload = binary.AppendVarint(payload, int64(rec.S))
	payload = binary.AppendVarint(payload, int64(rec.NC))
	payload = appendInts(payload, rec.CPUs)
	payload = appendInts(payload, rec.Vec)
	payload = binary.AppendVarint(payload, rec.BW.Num)
	payload = binary.AppendVarint(payload, rec.BW.Den)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// maxVectorLen bounds the counted vectors a frame may carry — far
// above any real stream count, low enough that a corrupt length can
// not provoke a huge allocation.
const maxVectorLen = 1 << 16

// parseFrame decodes the frame at data[off:], returning the record
// and the offset past the frame, or ok=false on a short, torn or
// malformed frame (the caller treats everything from off on as the
// corrupt tail).
func parseFrame(data []byte, off int) (rec sweep.CacheRecord, next int, ok bool) {
	n, w := binary.Uvarint(data[off:])
	if w <= 0 {
		return rec, 0, false
	}
	off += w
	if n > uint64(len(data)) || off+4+int(n) > len(data) {
		return rec, 0, false
	}
	sum := binary.LittleEndian.Uint32(data[off:])
	payload := data[off+4 : off+4+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, false
	}
	d := decoder{b: payload}
	famLen := d.uvarint()
	if famLen > uint64(len(payload)) || d.err {
		return rec, 0, false
	}
	rec.Family = d.str(int(famLen))
	rec.M = int(d.varint())
	rec.S = int(d.varint())
	rec.NC = int(d.varint())
	rec.CPUs = d.ints()
	rec.Vec = d.ints()
	rec.BW = rat.Rational{Num: d.varint(), Den: d.varint()}
	if d.err || len(d.b) != 0 {
		return rec, 0, false
	}
	return rec, off + 4 + int(n), true
}

// decoder is a cursor over one frame payload; any under- or over-run
// sets err and poisons further reads.
type decoder struct {
	b   []byte
	err bool
}

func (d *decoder) uvarint() uint64 {
	v, w := binary.Uvarint(d.b)
	if w <= 0 {
		d.err = true
		return 0
	}
	d.b = d.b[w:]
	return v
}

func (d *decoder) varint() int64 {
	v, w := binary.Varint(d.b)
	if w <= 0 {
		d.err = true
		return 0
	}
	d.b = d.b[w:]
	return v
}

func (d *decoder) str(n int) string {
	if n < 0 || n > len(d.b) {
		d.err = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) ints() []int {
	n := d.uvarint()
	if d.err || n > maxVectorLen {
		d.err = true
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.varint())
	}
	if d.err {
		return nil
	}
	return out
}
