package cachestore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ivm/internal/rat"
	"ivm/internal/sweep"
)

// rec builds a valid test record whose coordinates derive from seed so
// distinct seeds get distinct content addresses.
func rec(seed int) sweep.CacheRecord {
	return sweep.CacheRecord{
		Family: "pair",
		M:      13,
		NC:     4,
		CPUs:   []int{0, 1},
		Vec:    []int{1 + seed%12, 6, seed % 13, 0},
		BW:     rat.New(int64(1+seed), int64(2+seed)),
	}
}

// TestStoreRoundTrip pins the basic lifecycle: Put, Close, Open sees
// every record byte-identically and in log order.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) != 0 || s.Len() != 0 {
		t.Fatalf("fresh store not empty: %d records", s.Len())
	}
	want := []sweep.CacheRecord{rec(0), rec(1), rec(2), rec(3)}
	for _, r := range want {
		s.Put(r)
	}
	if s.Len() != len(want) {
		t.Fatalf("store holds %d records, put %d", s.Len(), len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if skipped, bytes := reopened.Skipped(); skipped != 0 || bytes != 0 {
		t.Fatalf("clean log reported corruption: %d records, %d bytes", skipped, bytes)
	}
	if got := reopened.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestStoreDeduplicates pins content addressing: re-putting a record
// (or replaying a whole log into itself) never grows the store, while
// a record differing only in one coordinate does.
func TestStoreDeduplicates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(rec(0))
	s.Put(rec(0))
	if s.Len() != 1 {
		t.Fatalf("duplicate put grew the store to %d", s.Len())
	}
	other := rec(0)
	other.Vec = append([]int(nil), other.Vec...)
	other.Vec[3] = 5
	s.Put(other)
	if s.Len() != 2 {
		t.Fatalf("distinct vector deduplicated: %d records", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	size := logSize(t, dir)

	// Replaying the log into a reopened store must not append.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s2.Records() {
		s2.Put(r)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := logSize(t, dir); got != size {
		t.Fatalf("replay grew the log from %d to %d bytes", size, got)
	}
}

// TestStoreRejectsInvalid pins the sink contract: an invalid record is
// not appended and the failure surfaces through Health and Sync, not a
// panic on the engine's hot path.
func TestStoreRejectsInvalid(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(sweep.CacheRecord{Family: "pair", M: 13, NC: 4, CPUs: []int{0, 1}, Vec: []int{1}})
	if s.Len() != 0 {
		t.Fatalf("invalid record indexed: %d records", s.Len())
	}
	if h := s.Health(); h.Err == "" {
		t.Fatal("invalid put left Health clean")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync did not surface the put error")
	}
	// The error is one-shot: once reported, the store is healthy again.
	if err := s.Sync(); err != nil {
		t.Fatalf("second Sync still failing: %v", err)
	}
	if h := s.Health(); h.Err != "" {
		t.Fatalf("Health still dirty after Sync: %q", h.Err)
	}
}

// TestStoreTruncatedTailRecovery pins crash recovery: a partial frame
// at the tail is counted, truncated away, and the healthy prefix plus
// all later appends stay readable.
func TestStoreTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := []sweep.CacheRecord{rec(0), rec(1)}
	for _, r := range keep {
		s.Put(r)
	}
	s.Put(rec(2))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last frame: drop its final 3 bytes, as a crash mid-write
	// would.
	full := logSize(t, dir)
	if err := os.Truncate(filepath.Join(dir, LogName), full-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("truncated tail failed Open: %v", err)
	}
	skipped, bytes := s2.Skipped()
	if skipped != 1 || bytes <= 0 {
		t.Fatalf("Skipped() = %d, %d; want 1 torn frame", skipped, bytes)
	}
	if got := s2.Records(); !reflect.DeepEqual(got, keep) {
		t.Fatalf("healthy prefix lost:\n got %+v\nwant %+v", got, keep)
	}
	if h := s2.Health(); h.SkippedRecords != 1 || h.TruncatedBytes != bytes || h.Err != "" {
		t.Fatalf("Health after recovery: %+v", h)
	}
	// Appends after recovery land on the truncated log and survive a
	// clean reopen.
	s2.Put(rec(7))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if skipped, bytes := s3.Skipped(); skipped != 0 || bytes != 0 {
		t.Fatalf("log still corrupt after recovery: %d records, %d bytes", skipped, bytes)
	}
	if got, want := s3.Records(), append(keep, rec(7)); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery append lost:\n got %+v\nwant %+v", got, want)
	}
}

// TestStoreCRCCorruption pins the checksum: flipping one payload byte
// invalidates that frame and everything after it, keeping the prefix.
func TestStoreCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(rec(0))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	mid := logSize(t, dir) // offset where the second frame will start
	s.Put(rec(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mid+8] ^= 0xff // a byte inside the second frame's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt frame failed Open: %v", err)
	}
	defer s2.Close()
	if skipped, _ := s2.Skipped(); skipped != 1 {
		t.Fatalf("Skipped() = %d, want the corrupted frame", skipped)
	}
	if got, want := s2.Records(), []sweep.CacheRecord{rec(0)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("prefix before corruption lost:\n got %+v\nwant %+v", got, want)
	}
}

// TestStoreBadMagic pins the header check: a file that is not a cache
// log errors instead of being silently truncated away.
func TestStoreBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("definitely not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("foreign file opened as a cache log")
	}
}

// TestStoreEngineSeam pins the full persistence loop with a real
// engine: sweep with the store as sink, reopen, seed a fresh engine,
// and the seeded engine answers the same sweep without simulating.
func TestStoreEngineSeam(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := sweep.NewEngine(sweep.Options{Workers: 2, CacheSink: s})
	want := a.SweepPair(13, 4, 1, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Metrics().CacheMisses == 0 {
		t.Fatal("sweep never simulated; seam test needs cache traffic")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := len(s2.Records()), int(a.Metrics().CacheMisses); got != want {
		t.Fatalf("store reloaded %d records, engine simulated %d orbits", got, want)
	}
	b := sweep.NewEngine(sweep.Options{Workers: 2})
	for _, r := range s2.Records() {
		if err := b.SeedCache(r); err != nil {
			t.Fatal(err)
		}
	}
	got := b.SweepPair(13, 4, 1, 6)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("seeded sweep differs:\n got %+v\nwant %+v", got, want)
	}
	if m := b.Metrics(); m.CacheMisses != 0 {
		t.Fatalf("warm engine still simulated %d orbits", m.CacheMisses)
	}
}

// logSize returns the store log's current size in bytes.
func logSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
