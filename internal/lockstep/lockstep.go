// Package lockstep is an independent, minimal implementation of the
// paper's two-stream dynamics (s = m, one stream per CPU, fixed
// priority): two equally spaced streams step through bank space, a
// granted bank stays busy for n_c clocks, the blocked stream retries.
//
// It deliberately shares no code with internal/memsys — different state
// representation (absolute busy-until clocks instead of countdowns),
// different arbitration structure, different cycle detection — so the
// two simulators can serve as oracles for each other. The test suite
// checks them bank-for-bank over full parameter grids; a bug would have
// to be implemented twice, in different shapes, to slip through.
package lockstep

import (
	"fmt"

	"ivm/internal/rat"
)

// Result is the exact cyclic steady state of the pair.
type Result struct {
	Lead    int64 // clocks before the cycle is entered
	Period  int64
	Grants1 int64 // grants of stream 1 within one period
	Grants2 int64
	// Delays within one period (all bank-busy or simultaneous losses).
	Delays1, Delays2 int64
}

// Bandwidth returns (grants1+grants2)/period.
func (r Result) Bandwidth() rat.Rational {
	return rat.New(r.Grants1+r.Grants2, r.Period)
}

// state is everything that determines the future: both streams' next
// banks and every bank's remaining busy time.
type state struct {
	p1, p2 int
	busy   string
}

// Run simulates the pair until its state recurs. Stream 1 has priority
// on simultaneous requests to the same idle bank. maxClocks bounds the
// search (the state space is finite, so it is a safety net only).
func Run(m, nc, b1, d1, b2, d2 int, maxClocks int64) (Result, error) {
	if m <= 0 || nc <= 0 {
		panic(fmt.Sprintf("lockstep: invalid m=%d nc=%d", m, nc))
	}
	mod := func(x int) int { return ((x % m) + m) % m }
	p1, p2 := mod(b1), mod(b2)
	d1, d2 = mod(d1), mod(d2)

	// busyUntil[b] is the first clock at which bank b is free again.
	busyUntil := make([]int64, m)

	type seenAt struct {
		clock              int64
		g1, g2, del1, del2 int64
	}
	seen := make(map[state]seenAt)

	var g1, g2, del1, del2 int64
	for t := int64(0); t <= maxClocks; t++ {
		key := state{p1: p1, p2: p2, busy: busyString(busyUntil, t, nc)}
		if prev, ok := seen[key]; ok {
			return Result{
				Lead:    prev.clock,
				Period:  t - prev.clock,
				Grants1: g1 - prev.g1,
				Grants2: g2 - prev.g2,
				Delays1: del1 - prev.del1,
				Delays2: del2 - prev.del2,
			}, nil
		}
		seen[key] = seenAt{clock: t, g1: g1, g2: g2, del1: del1, del2: del2}

		// Stream 1 first (fixed priority).
		granted1 := false
		if busyUntil[p1] <= t {
			busyUntil[p1] = t + int64(nc)
			granted1 = true
		}
		if granted1 {
			g1++
		} else {
			del1++
		}
		// Stream 2: its bank may have just been taken by stream 1.
		if busyUntil[p2] <= t {
			busyUntil[p2] = t + int64(nc)
			g2++
			p2 = mod(p2 + d2)
		} else {
			del2++
		}
		if granted1 {
			p1 = mod(p1 + d1)
		}
	}
	return Result{}, fmt.Errorf("lockstep: no recurrence within %d clocks", maxClocks)
}

// busyString encodes the remaining busy times (0..nc) as bytes.
func busyString(busyUntil []int64, t int64, nc int) string {
	buf := make([]byte, len(busyUntil))
	for i, bu := range busyUntil {
		rem := bu - t
		if rem < 0 {
			rem = 0
		}
		if rem > int64(nc) {
			panic("lockstep: busy time exceeds nc")
		}
		buf[i] = byte('0' + rem)
	}
	return string(buf)
}
