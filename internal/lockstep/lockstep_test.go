package lockstep

import (
	"testing"

	"ivm/internal/memsys"
	"ivm/internal/rat"
)

// The two independent simulators agree exactly — bandwidth, per-stream
// grants and delay counts per cycle — over full (m, nc, d1, d2, b2)
// grids.
func TestLockstepAgreesWithMemsys(t *testing.T) {
	for _, m := range []int{5, 8, 12, 13} {
		for _, nc := range []int{1, 2, 3, 4, 6} {
			for d1 := 0; d1 < m; d1++ {
				for d2 := 0; d2 < m; d2++ {
					for b2 := 0; b2 < m; b2 += 1 + m/5 {
						ls, err := Run(m, nc, 0, d1, b2, d2, 1<<22)
						if err != nil {
							t.Fatal(err)
						}
						sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
						sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
						sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
						c, err := sys.FindCycle(1 << 22)
						if err != nil {
							t.Fatal(err)
						}
						if !ls.Bandwidth().Equal(c.EffectiveBandwidth()) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: lockstep %s, memsys %s",
								m, nc, d1, d2, b2, ls.Bandwidth(), c.EffectiveBandwidth())
						}
						// Per-stream rates must agree too (scaled to a common
						// period via rationals).
						r1 := rat.New(ls.Grants1, ls.Period)
						r2 := rat.New(ls.Grants2, ls.Period)
						if !r1.Equal(c.PortBandwidth(0)) || !r2.Equal(c.PortBandwidth(1)) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: per-stream rates differ (%s,%s) vs (%s,%s)",
								m, nc, d1, d2, b2, r1, r2, c.PortBandwidth(0), c.PortBandwidth(1))
						}
						// Delay rates likewise.
						dl1 := rat.New(ls.Delays1, ls.Period)
						dl2 := rat.New(ls.Delays2, ls.Period)
						md1 := rat.New(c.Conflicts[0].Delays(), c.Length)
						md2 := rat.New(c.Conflicts[1].Delays(), c.Length)
						if !dl1.Equal(md1) || !dl2.Equal(md2) {
							t.Fatalf("m=%d nc=%d d1=%d d2=%d b2=%d: delay rates differ (%s,%s) vs (%s,%s)",
								m, nc, d1, d2, b2, dl1, dl2, md1, md2)
						}
					}
				}
			}
		}
	}
}

func TestLockstepPaperFigures(t *testing.T) {
	// Fig. 3: 7/6 barrier.
	r, err := Run(13, 6, 0, 1, 0, 6, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bandwidth().Equal(rat.New(7, 6)) {
		t.Fatalf("Fig. 3: %s", r.Bandwidth())
	}
	if r.Delays1 != 0 || r.Delays2 == 0 {
		t.Fatalf("Fig. 3 barrier roles: delays %d/%d", r.Delays1, r.Delays2)
	}
	// Fig. 2: conflict-free.
	r, err = Run(12, 3, 0, 1, 3, 7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bandwidth().Equal(rat.New(2, 1)) || r.Delays1+r.Delays2 != 0 {
		t.Fatalf("Fig. 2: %s with %d delays", r.Bandwidth(), r.Delays1+r.Delays2)
	}
	// Fig. 5: 4/3 barrier.
	r, err = Run(13, 4, 0, 1, 7, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Bandwidth().Equal(rat.New(4, 3)) {
		t.Fatalf("Fig. 5: %s", r.Bandwidth())
	}
}

func TestLockstepAccounting(t *testing.T) {
	r, err := Run(16, 4, 0, 1, 0, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Every clock of the period, each stream is either granted or
	// delayed.
	if r.Grants1+r.Delays1 != r.Period || r.Grants2+r.Delays2 != r.Period {
		t.Fatalf("accounting broken: %+v", r)
	}
	if !r.Bandwidth().Equal(rat.New(3, 2)) {
		t.Fatalf("unique barrier 1(+)2: %s", r.Bandwidth())
	}
}

func TestLockstepSingleBank(t *testing.T) {
	r, err := Run(1, 3, 0, 0, 0, 0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	// Two streams share the single bank: one grant per nc clocks.
	if !r.Bandwidth().Equal(rat.New(1, 3)) {
		t.Fatalf("m=1: %s", r.Bandwidth())
	}
}
