package machine

import (
	"fmt"

	"ivm/internal/memsys"
)

// Simulation co-simulates one or more vector CPUs (and optional raw
// background access streams) against a shared interleaved memory
// system, one clock period at a time:
//
//  1. each CPU issues at most one instruction,
//  2. the memory system arbitrates all pending port requests,
//  3. ALU pipelines consume newly available operand elements,
//  4. finished instructions release their ports, units and registers.
type Simulation struct {
	Mem  *memsys.System
	CPUs []*CPU
}

// NewSimulation builds a memory system and attaches `cpus` vector CPUs
// to consecutive CPU slots. The memsys configuration must declare at
// least that many CPUs.
func NewSimulation(memCfg memsys.Config, cpus int, cfg Config) *Simulation {
	if memCfg.CPUs == 0 {
		memCfg.CPUs = cpus
	}
	if memCfg.CPUs < cpus {
		panic(fmt.Sprintf("machine: %d CPUs requested, memory has %d path groups", cpus, memCfg.CPUs))
	}
	sys := memsys.New(memCfg)
	sim := &Simulation{Mem: sys}
	for i := 0; i < cpus; i++ {
		sim.CPUs = append(sim.CPUs, NewCPU(sys, i, cfg))
	}
	return sim
}

// AddBackgroundStream attaches a raw infinite access stream to a CPU
// slot (e.g. the paper's "other CPU", whose three ports constantly
// access memory with distance 1). It returns the memsys port for
// conflict accounting.
func (s *Simulation) AddBackgroundStream(cpuSlot int, label string, start, stride int64) *memsys.Port {
	return s.Mem.AddPort(cpuSlot, label, memsys.NewInfiniteStrided(start, stride))
}

// Step advances the co-simulation by one clock period.
func (s *Simulation) Step() {
	t := s.Mem.Clock()
	for _, c := range s.CPUs {
		c.tryIssue(t)
	}
	s.Mem.Step()
	for _, c := range s.CPUs {
		c.advanceALU(t)
		c.retire(t)
	}
}

// Run steps until every CPU program has retired, or maxClocks elapse.
// It returns the clock at which the last CPU finished and whether all
// finished within the budget.
func (s *Simulation) Run(maxClocks int64) (int64, bool) {
	for s.Mem.Clock() < maxClocks {
		if s.allDone() {
			return s.finishClock(), true
		}
		s.Step()
	}
	return s.Mem.Clock(), s.allDone()
}

func (s *Simulation) allDone() bool {
	for _, c := range s.CPUs {
		if !c.Done() {
			return false
		}
	}
	return true
}

func (s *Simulation) finishClock() int64 {
	var last int64
	for _, c := range s.CPUs {
		if c.doneClock > last {
			last = c.doneClock
		}
	}
	return last
}

// MicroSeconds converts a clock count to microseconds using the CPU
// clock period (ClockNS).
func (c Config) MicroSeconds(clocks int64) float64 {
	return float64(clocks) * c.withDefaults().ClockNS / 1000.0
}
