package machine

import (
	"testing"

	"ivm/internal/memsys"
)

func memCfg16() memsys.Config {
	return memsys.Config{Banks: 16, Sections: 4, BankBusy: 4, CPUs: 2}
}

func newSim(t *testing.T) *Simulation {
	t.Helper()
	return NewSimulation(memCfg16(), 1, DefaultConfig())
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.Normalized()
	if cfg.VectorLength != 64 || cfg.LoadPorts != 2 || cfg.StorePorts != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.ClockNS != 9.5 {
		t.Fatalf("clock: %v", cfg.ClockNS)
	}
	// Partial overrides keep the rest.
	cfg = Config{VectorLength: 32}.Normalized()
	if cfg.VectorLength != 32 || cfg.MemLatency != 14 {
		t.Fatalf("partial override: %+v", cfg)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cfg := DefaultConfig()
	cases := []Instr{
		{Op: OpLoad, Dst: 0, N: 0},                  // zero length
		{Op: OpLoad, Dst: 0, N: 65},                 // exceeds VL
		{Op: OpLoad, Dst: 9, N: 4},                  // register range
		{Op: OpAdd, Dst: 0, Src1: 8, Src2: 1, N: 4}, // src range
		{Op: Op(99), N: 4},                          // unknown op
	}
	for i, in := range cases {
		if err := cfg.Validate([]Instr{in}); err == nil {
			t.Errorf("case %d (%+v): expected error", i, in)
		}
	}
	good := []Instr{{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64}}
	if err := cfg.Validate(good); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

// A single conflict-free load streams one element per clock: the last
// of N grants lands at clock N-1.
func TestSingleLoadStreamsFullSpeed(t *testing.T) {
	sim := newSim(t)
	sim.CPUs[0].LoadProgram([]Instr{{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64}})
	clocks, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	if clocks != 63 {
		t.Fatalf("finished at clock %d, want 63", clocks)
	}
	if g := sim.CPUs[0].Ports()[0].Count.Grants; g != 64 {
		t.Fatalf("grants = %d", g)
	}
}

// A self-conflicting stride (r = 2 < n_c = 4) throttles the stream to
// r/n_c: 64 elements at 2 grants per 4 clocks.
func TestSelfConflictingLoadThrottled(t *testing.T) {
	sim := newSim(t)
	sim.CPUs[0].LoadProgram([]Instr{{Op: OpLoad, Dst: 0, Base: 0, Stride: 8, N: 64}})
	clocks, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	// Grants at 0,1, 4,5, 8,9, ...: pair k finishes at 4k+1; last pair
	// k=31 -> clock 125.
	if clocks != 125 {
		t.Fatalf("finished at clock %d, want 125", clocks)
	}
	if b := sim.CPUs[0].Ports()[0].Count.Bank; b == 0 {
		t.Fatal("expected bank conflicts")
	}
}

// Two loads on the two load ports run concurrently; a third load must
// wait for a port (in-order issue).
func TestLoadPortAllocation(t *testing.T) {
	sim := newSim(t)
	cpu := sim.CPUs[0]
	cpu.LoadProgram([]Instr{
		{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64},
		{Op: OpLoad, Dst: 1, Base: 1, Stride: 1, N: 64},
		{Op: OpLoad, Dst: 2, Base: 2, Stride: 1, N: 64},
	})
	_, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	if cpu.IssuedAt[1] != cpu.IssuedAt[0]+1 {
		t.Fatalf("second load issued at %d, first at %d; want back to back",
			cpu.IssuedAt[1], cpu.IssuedAt[0])
	}
	if cpu.IssuedAt[2] < cpu.IssuedAt[0]+63 {
		t.Fatalf("third load issued at %d; must wait for a free port (~clock 63)",
			cpu.IssuedAt[2])
	}
}

// Flexible chaining: load -> add -> store overlaps; total time is about
// N plus pipeline latencies, far below 3N.
func TestChainingOverlapsLoadAluStore(t *testing.T) {
	sim := newSim(t)
	cfg := sim.CPUs[0].Config()
	sim.CPUs[0].LoadProgram([]Instr{
		{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64},
		{Op: OpLoad, Dst: 1, Base: 64, Stride: 1, N: 64},
		{Op: OpAdd, Dst: 2, Src1: 0, Src2: 1, N: 64},
		{Op: OpStore, Src1: 2, Base: 128, Stride: 1, N: 64},
	})
	clocks, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	serial := int64(3 * 64)
	chainedBound := int64(64 + cfg.MemLatency + cfg.AddLatency + 16)
	if clocks >= serial {
		t.Fatalf("finished at %d; chaining should beat serial %d", clocks, serial)
	}
	if clocks > chainedBound {
		t.Fatalf("finished at %d; expected <= %d with chaining", clocks, chainedBound)
	}
}

// WAW/WAR hazards: an instruction writing a register still being read
// stalls until the reader finishes.
func TestRegisterHazardStalls(t *testing.T) {
	sim := newSim(t)
	cpu := sim.CPUs[0]
	cpu.LoadProgram([]Instr{
		{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64},
		{Op: OpStore, Src1: 0, Base: 64, Stride: 1, N: 64},
		// Overwrites V0 while the store reads it: must wait.
		{Op: OpLoad, Dst: 0, Base: 128, Stride: 1, N: 64},
	})
	_, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	if cpu.IssuedAt[2] <= cpu.IssuedAt[1]+10 {
		t.Fatalf("V0 overwrite issued at %d, store at %d: WAR hazard ignored",
			cpu.IssuedAt[2], cpu.IssuedAt[1])
	}
}

// IssueDelay models scalar strip overhead: the next instruction waits.
func TestIssueDelay(t *testing.T) {
	sim := newSim(t)
	cpu := sim.CPUs[0]
	cpu.LoadProgram([]Instr{
		{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 8},
		{Op: OpLoad, Dst: 1, Base: 8, Stride: 1, N: 8, IssueDelay: 20},
	})
	_, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	if got := cpu.IssuedAt[1] - cpu.IssuedAt[0]; got < 21 {
		t.Fatalf("issue gap = %d, want >= 21", got)
	}
}

// The store port only requests elements that have been produced:
// storing a register being loaded trails the load by the memory
// latency, never overtaking it.
func TestStoreChainsToLoad(t *testing.T) {
	sim := newSim(t)
	sim.CPUs[0].LoadProgram([]Instr{
		{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64},
		{Op: OpStore, Src1: 0, Base: 64, Stride: 1, N: 64},
	})
	clocks, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	cfg := sim.CPUs[0].Config()
	// Element e is storable no earlier than its load grant plus the
	// memory latency, so the run cannot beat 63+MemLatency+1; both
	// streams cover all 16 banks, so their mutual bank conflicts cost
	// a bounded extra (well under fully serial execution).
	lower := int64(63 + cfg.MemLatency + 1)
	serial := int64(63 + cfg.MemLatency + 64)
	if clocks < lower {
		t.Fatalf("finished at %d, store overtook the load (min %d)", clocks, lower)
	}
	if clocks >= serial {
		t.Fatalf("finished at %d, chaining had no effect (serial %d)", clocks, serial)
	}
}

// Two CPUs with disjoint address ranges run without interference.
func TestTwoCPUsIndependent(t *testing.T) {
	sim := NewSimulation(memCfg16(), 2, DefaultConfig())
	// Different banks per CPU: CPU0 uses even banks, CPU1 odd banks,
	// with stride 2 (r = 8 >= nc).
	sim.CPUs[0].LoadProgram([]Instr{{Op: OpLoad, Dst: 0, Base: 0, Stride: 2, N: 64}})
	sim.CPUs[1].LoadProgram([]Instr{{Op: OpLoad, Dst: 0, Base: 1, Stride: 2, N: 64}})
	clocks, done := sim.Run(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	if clocks != 63 {
		t.Fatalf("finished at %d, want 63 (no interference)", clocks)
	}
	for _, c := range sim.CPUs {
		for _, p := range c.Ports() {
			if p.Count.Delays() != 0 && p.Count.Grants > 0 {
				t.Fatalf("port %s delayed: %+v", p.Label, p.Count)
			}
		}
	}
}

// Determinism: the same program produces identical timing on re-run.
func TestDeterminism(t *testing.T) {
	run := func() int64 {
		sim := NewSimulation(memCfg16(), 1, DefaultConfig())
		sim.AddBackgroundStream(0, "bg", 5, 3)
		sim.CPUs[0].LoadProgram([]Instr{
			{Op: OpLoad, Dst: 0, Base: 0, Stride: 1, N: 64},
			{Op: OpLoad, Dst: 1, Base: 64, Stride: 1, N: 64},
			{Op: OpMul, Dst: 2, Src1: 0, Src2: 1, N: 64},
			{Op: OpStore, Src1: 2, Base: 128, Stride: 1, N: 64},
		})
		clocks, done := sim.Run(100_000)
		if !done {
			t.Fatal("did not finish")
		}
		return clocks
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestMicroSeconds(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.MicroSeconds(1000); got != 9.5 {
		t.Fatalf("MicroSeconds(1000) = %v, want 9.5", got)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpLoad: "vload", OpStore: "vstore", OpAdd: "vadd", OpMul: "vmul"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
}

// LoadProgram resets all state: running the same CPU twice gives the
// same answer.
func TestLoadProgramResets(t *testing.T) {
	sim := newSim(t)
	prog := []Instr{
		{Op: OpLoad, Dst: 0, Base: 0, Stride: 3, N: 64},
		{Op: OpStore, Src1: 0, Base: 100, Stride: 3, N: 64},
	}
	sim.CPUs[0].LoadProgram(prog)
	first, done := sim.Run(100_000)
	if !done {
		t.Fatal("first run did not finish")
	}
	start := sim.Mem.Clock()
	sim.CPUs[0].LoadProgram(prog)
	_, done = sim.Run(start + 100_000)
	if !done {
		t.Fatal("second run did not finish")
	}
	second := sim.CPUs[0].DoneClock() - start
	// Bank state at restart differs slightly; allow a small startup skew.
	if diff := second - first; diff < -8 || diff > 8 {
		t.Fatalf("second run took %d vs %d", second, first)
	}
}
