// Package machine models a Cray X-MP-like vector CPU at the clock
// level, precise enough to reproduce the memory-conflict behaviour the
// paper measures in Section IV:
//
//   - vector registers of VL elements,
//   - dedicated memory ports (two vector-load, one vector-store per
//     CPU on the X-MP) driving access streams into a shared
//     memsys.System,
//   - pipelined add and multiply functional units,
//   - flexible chaining: a dependent instruction issues immediately and
//     consumes operand elements as they become available,
//   - strictly in-order issue with register and unit scoreboarding,
//   - strip-mined loops with a configurable scalar overhead per strip.
//
// Absolute timings are approximations of the 9.5 ns X-MP (documented in
// Config); the conflict counts and the relative shape over strides are
// determined by the memory system, which is exact.
package machine

import "fmt"

// Op is a vector instruction opcode.
type Op int

const (
	// OpLoad reads N equally spaced words into Dst (uses a load port).
	OpLoad Op = iota
	// OpStore writes register Src1 to N equally spaced words (store port).
	OpStore
	// OpAdd is an elementwise pipelined addition Dst = Src1 + Src2.
	OpAdd
	// OpMul is an elementwise pipelined multiplication Dst = Src1 * Src2.
	OpMul
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "vload"
	case OpStore:
		return "vstore"
	case OpAdd:
		return "vadd"
	case OpMul:
		return "vmul"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Instr is one vector instruction. N is the vector length; memory
// operations carry Base/Stride in words, or — for gather/scatter
// (indexed) operations, which the later X-MP models added — a per-
// element index vector: element e goes to address Base + Indices[e].
// IssueDelay adds scalar overhead before this instruction may issue
// (used at strip boundaries for loop control).
type Instr struct {
	Op         Op
	Dst        int // vector register, for OpLoad/OpAdd/OpMul
	Src1, Src2 int // operands; OpStore reads Src1
	Base       int64
	Stride     int64
	Indices    []int64 // non-nil: indexed (gather/scatter) addressing
	N          int
	IssueDelay int
}

// Addr returns the address of element e of a memory instruction.
func (in Instr) Addr(e int) int64 {
	if in.Indices != nil {
		return in.Base + in.Indices[e]
	}
	return in.Base + int64(e)*in.Stride
}

// Config sets the machine's timing parameters. Zero values select the
// X-MP-flavoured defaults of DefaultConfig.
type Config struct {
	VectorLength  int     // register length (X-MP: 64)
	LoadPorts     int     // vector-load ports per CPU (X-MP: 2)
	StorePorts    int     // vector-store ports per CPU (X-MP: 1)
	Registers     int     // vector registers (X-MP: 8)
	MemLatency    int     // clocks from memory grant to register element (X-MP: ~14)
	AddLatency    int     // floating-add pipeline depth (X-MP: 6)
	MulLatency    int     // floating-multiply pipeline depth (X-MP: 7)
	StripOverhead int     // scalar loop-control clocks between strips (~2 dozen)
	ClockNS       float64 // clock period in ns (X-MP: 9.5)
}

// DefaultConfig returns Cray X-MP-flavoured parameters.
func DefaultConfig() Config {
	return Config{
		VectorLength:  64,
		LoadPorts:     2,
		StorePorts:    1,
		Registers:     8,
		MemLatency:    14,
		AddLatency:    6,
		MulLatency:    7,
		StripOverhead: 24,
		ClockNS:       9.5,
	}
}

// Normalized returns the configuration with zero fields replaced by
// the X-MP defaults.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.VectorLength == 0 {
		c.VectorLength = d.VectorLength
	}
	if c.LoadPorts == 0 {
		c.LoadPorts = d.LoadPorts
	}
	if c.StorePorts == 0 {
		c.StorePorts = d.StorePorts
	}
	if c.Registers == 0 {
		c.Registers = d.Registers
	}
	if c.MemLatency == 0 {
		c.MemLatency = d.MemLatency
	}
	if c.AddLatency == 0 {
		c.AddLatency = d.AddLatency
	}
	if c.MulLatency == 0 {
		c.MulLatency = d.MulLatency
	}
	if c.StripOverhead == 0 {
		c.StripOverhead = d.StripOverhead
	}
	if c.ClockNS == 0 {
		c.ClockNS = d.ClockNS
	}
	return c
}

// Validate checks a program against the configuration.
func (c Config) Validate(prog []Instr) error {
	c = c.withDefaults()
	for i, in := range prog {
		if in.N <= 0 {
			return fmt.Errorf("machine: instr %d (%s): vector length %d", i, in.Op, in.N)
		}
		if in.N > c.VectorLength {
			return fmt.Errorf("machine: instr %d (%s): N = %d exceeds VL = %d", i, in.Op, in.N, c.VectorLength)
		}
		if in.Indices != nil && len(in.Indices) < in.N {
			return fmt.Errorf("machine: instr %d (%s): %d indices for N = %d", i, in.Op, len(in.Indices), in.N)
		}
		regs := []int{}
		switch in.Op {
		case OpLoad:
			regs = append(regs, in.Dst)
		case OpStore:
			regs = append(regs, in.Src1)
		case OpAdd, OpMul:
			regs = append(regs, in.Dst, in.Src1, in.Src2)
		default:
			return fmt.Errorf("machine: instr %d: unknown op %d", i, int(in.Op))
		}
		for _, r := range regs {
			if r < 0 || r >= c.Registers {
				return fmt.Errorf("machine: instr %d (%s): register V%d out of range", i, in.Op, r)
			}
		}
	}
	return nil
}
