package machine

import (
	"fmt"
	"math"

	"ivm/internal/memsys"
)

const farFuture = math.MaxInt64 / 4

// vreg is a vector register with per-element availability times used
// for flexible chaining: element e may be consumed at clock t iff
// avail[e] <= t.
type vreg struct {
	avail   []int64
	writer  *activeOp
	readers int
}

func newVReg(vl int) *vreg {
	v := &vreg{avail: make([]int64, vl)}
	return v
}

func (v *vreg) beginWrite(op *activeOp, n int) {
	v.writer = op
	for e := 0; e < n; e++ {
		v.avail[e] = farFuture
	}
}

// drainedBy reports whether every element written so far is available
// no later than t (the previous writer's pipeline has drained).
func (v *vreg) drainedBy(t int64) bool {
	for _, a := range v.avail {
		if a > t {
			return false
		}
	}
	return true
}

// activeOp is an in-flight vector instruction.
type activeOp struct {
	instr Instr
	cpu   *CPU
	// next is the next element index to request (memory ops) or start
	// (ALU ops).
	next int
	// lastStart is the clock the previous ALU element started, to
	// enforce one element per clock.
	lastStart int64
	dst       *vreg
	src1      *vreg
	src2      *vreg
	port      *memPort // memory ops
	unit      *fu      // ALU ops
	complete  bool
}

// fu is a pipelined functional unit; busy while an op streams through.
type fu struct {
	name    string
	latency int
	op      *activeOp
}

// memPort adapts an in-flight memory instruction to memsys.Source. A
// port with no active op reports no pending request; it never reports
// Done so that the shared memory system keeps polling it.
type memPort struct {
	memsysPort *memsys.Port
	op         *activeOp
}

// Pending implements memsys.Source.
func (p *memPort) Pending(clock int64) (int64, bool) {
	op := p.op
	if op == nil || op.next >= op.instr.N {
		return 0, false
	}
	if op.instr.Op == OpStore {
		// The element can be stored only once produced (chaining).
		if op.src1.avail[op.next] > clock {
			return 0, false
		}
	}
	return op.instr.Addr(op.next), true
}

// Grant implements memsys.Source.
func (p *memPort) Grant(clock int64) {
	op := p.op
	if op == nil {
		panic("machine: grant on idle port")
	}
	if op.instr.Op == OpLoad {
		op.dst.avail[op.next] = clock + int64(op.cpu.cfg.MemLatency)
	}
	op.next++
}

// Done implements memsys.Source.
func (p *memPort) Done() bool { return false }

// CPU is one vector processor attached to a shared memory system.
type CPU struct {
	cfg  Config
	id   int
	regs []*vreg

	loadPorts  []*memPort
	storePorts []*memPort
	addUnit    *fu
	mulUnit    *fu

	program      []Instr
	pc           int
	issueReadyAt int64
	active       []*activeOp

	// IssuedAt / RetiredAt record per-instruction clocks for analysis.
	IssuedAt  []int64
	doneClock int64
}

// NewCPU creates a vector CPU and registers its memory ports on the
// given CPU slot of the shared memory system. Port labels encode the
// CPU and port kind ("c0.l0", "c0.s0", …).
func NewCPU(sys *memsys.System, cpuSlot int, cfg Config) *CPU {
	cfg = cfg.withDefaults()
	c := &CPU{cfg: cfg, id: cpuSlot, doneClock: -1}
	c.regs = make([]*vreg, cfg.Registers)
	for i := range c.regs {
		c.regs[i] = newVReg(cfg.VectorLength)
	}
	for i := 0; i < cfg.LoadPorts; i++ {
		p := &memPort{}
		p.memsysPort = sys.AddPort(cpuSlot, fmt.Sprintf("c%d.l%d", cpuSlot, i), p)
		c.loadPorts = append(c.loadPorts, p)
	}
	for i := 0; i < cfg.StorePorts; i++ {
		p := &memPort{}
		p.memsysPort = sys.AddPort(cpuSlot, fmt.Sprintf("c%d.s%d", cpuSlot, i), p)
		c.storePorts = append(c.storePorts, p)
	}
	c.addUnit = &fu{name: "add", latency: cfg.AddLatency}
	c.mulUnit = &fu{name: "mul", latency: cfg.MulLatency}
	return c
}

// Config returns the CPU's effective configuration.
func (c *CPU) Config() Config { return c.cfg }

// Ports returns the memsys ports of this CPU (loads first, then
// stores), for conflict accounting.
func (c *CPU) Ports() []*memsys.Port {
	var out []*memsys.Port
	for _, p := range c.loadPorts {
		out = append(out, p.memsysPort)
	}
	for _, p := range c.storePorts {
		out = append(out, p.memsysPort)
	}
	return out
}

// LoadProgram resets the CPU and installs a program. It panics on an
// invalid program (programming error in the workload generator).
func (c *CPU) LoadProgram(prog []Instr) {
	if err := c.cfg.Validate(prog); err != nil {
		panic(err)
	}
	c.program = prog
	c.pc = 0
	c.issueReadyAt = 0
	c.active = nil
	c.IssuedAt = make([]int64, len(prog))
	for i := range c.IssuedAt {
		c.IssuedAt[i] = -1
	}
	c.doneClock = -1
	for _, r := range c.regs {
		for e := range r.avail {
			r.avail[e] = 0
		}
		r.writer = nil
		r.readers = 0
	}
}

// Done reports whether the program has fully retired.
func (c *CPU) Done() bool { return c.pc >= len(c.program) && len(c.active) == 0 }

// DoneClock returns the clock at which the program retired (-1 while
// running).
func (c *CPU) DoneClock() int64 { return c.doneClock }

// tryIssue issues at most one instruction, in order, at clock t.
func (c *CPU) tryIssue(t int64) {
	if c.pc >= len(c.program) || t < c.issueReadyAt {
		return
	}
	in := c.program[c.pc]
	op := &activeOp{instr: in, cpu: c, lastStart: -1}

	switch in.Op {
	case OpLoad:
		port := c.freePort(c.loadPorts)
		if port == nil {
			return
		}
		dst := c.regs[in.Dst]
		if !c.regFreeForWrite(dst, t) {
			return
		}
		op.dst = dst
		op.port = port
	case OpStore:
		port := c.freePort(c.storePorts)
		if port == nil {
			return
		}
		op.src1 = c.regs[in.Src1]
		op.port = port
	case OpAdd, OpMul:
		unit := c.addUnit
		if in.Op == OpMul {
			unit = c.mulUnit
		}
		if unit.op != nil {
			return
		}
		dst := c.regs[in.Dst]
		if !c.regFreeForWrite(dst, t) {
			return
		}
		// Reading and writing the same register in one instruction
		// (recursive use) is not supported by this model.
		if in.Src1 == in.Dst || in.Src2 == in.Dst {
			panic(fmt.Sprintf("machine: instr %d reuses V%d as source and destination", c.pc, in.Dst))
		}
		op.dst = dst
		op.src1 = c.regs[in.Src1]
		op.src2 = c.regs[in.Src2]
		op.unit = unit
	}

	// Commit the issue.
	if op.dst != nil {
		op.dst.beginWrite(op, in.N)
	}
	if op.src1 != nil {
		op.src1.readers++
	}
	if op.src2 != nil {
		op.src2.readers++
	}
	if op.port != nil {
		op.port.op = op
	}
	if op.unit != nil {
		op.unit.op = op
	}
	c.active = append(c.active, op)
	c.IssuedAt[c.pc] = t
	c.pc++
	c.issueReadyAt = t + 1
	if c.pc < len(c.program) {
		c.issueReadyAt += int64(c.program[c.pc].IssueDelay)
	}
}

func (c *CPU) freePort(ports []*memPort) *memPort {
	for _, p := range ports {
		if p.op == nil {
			return p
		}
	}
	return nil
}

// regFreeForWrite: no in-flight writer, no active readers, and the
// previous write fully drained (WAW/WAR hazards; flexible chaining
// covers RAW via per-element availability).
func (c *CPU) regFreeForWrite(v *vreg, t int64) bool {
	return v.writer == nil && v.readers == 0 && v.drainedBy(t)
}

// advanceALU starts at most one element of each active ALU op whose
// operands are available at clock t.
func (c *CPU) advanceALU(t int64) {
	for _, op := range c.active {
		if op.unit == nil || op.next >= op.instr.N {
			continue
		}
		if op.lastStart == t {
			continue
		}
		e := op.next
		if op.src1.avail[e] > t || op.src2.avail[e] > t {
			continue
		}
		op.dst.avail[e] = t + int64(op.unit.latency)
		op.lastStart = t
		op.next++
	}
}

// retire releases units, ports and register claims of finished ops.
// A memory op finishes when all elements are granted; an ALU op when
// all elements have started (the pipeline drains in the background,
// tracked by the avail times).
func (c *CPU) retire(t int64) {
	remaining := c.active[:0]
	for _, op := range c.active {
		if op.next >= op.instr.N {
			op.complete = true
			if op.port != nil {
				op.port.op = nil
			}
			if op.unit != nil {
				op.unit.op = nil
			}
			if op.dst != nil {
				op.dst.writer = nil
			}
			if op.src1 != nil {
				op.src1.readers--
			}
			if op.src2 != nil {
				op.src2.readers--
			}
			continue
		}
		remaining = append(remaining, op)
	}
	c.active = remaining
	if c.Done() && c.doneClock < 0 {
		c.doneClock = t
	}
}
