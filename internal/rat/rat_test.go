package rat

import (
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	cases := []struct {
		num, den, wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{6, 4, 3, 2},
		{-6, 4, -3, 2},
		{6, -4, -3, 2},
		{-6, -4, 3, 2},
		{0, 5, 0, 1},
		{7, 7, 1, 1},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num != c.wantN || r.Den != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num, r.Den, c.wantN, c.wantD)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestArithmetic(t *testing.T) {
	if got := New(1, 2).Add(New(1, 3)); !got.Equal(New(5, 6)) {
		t.Errorf("1/2 + 1/3 = %s", got)
	}
	if got := New(1, 2).Sub(New(1, 3)); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 - 1/3 = %s", got)
	}
	if got := New(2, 3).Mul(New(3, 4)); !got.Equal(New(1, 2)) {
		t.Errorf("2/3 * 3/4 = %s", got)
	}
	if got := One().Add(New(1, 6)); !got.Equal(New(7, 6)) {
		t.Errorf("Eq. 29 for d1=1, d2=6: %s", got)
	}
}

func TestCmp(t *testing.T) {
	if New(1, 2).Cmp(New(2, 3)) != -1 {
		t.Error("1/2 < 2/3")
	}
	if New(3, 2).Cmp(New(3, 2)) != 0 {
		t.Error("3/2 == 3/2")
	}
	if New(7, 6).Cmp(One()) != 1 {
		t.Error("7/6 > 1")
	}
	if New(-1, 2).Cmp(Zero()) != -1 {
		t.Error("-1/2 < 0")
	}
}

func TestStringAndFloat(t *testing.T) {
	if got := New(3, 2).String(); got != "3/2" {
		t.Errorf("String() = %q", got)
	}
	if got := New(4, 2).String(); got != "2" {
		t.Errorf("String() = %q", got)
	}
	if got := FromInt(7).String(); got != "7" {
		t.Errorf("String() = %q", got)
	}
	if got := New(1, 2).Float(); got != 0.5 {
		t.Errorf("Float() = %v", got)
	}
	if !FromInt(3).IsInt() || New(1, 3).IsInt() {
		t.Error("IsInt misclassifies")
	}
}

func TestZeroValueBehaves(t *testing.T) {
	var r Rational // zero value: 0/0 struct, semantically 0
	if r.Float() != 0 {
		t.Error("zero value Float")
	}
	if !r.Reduce().Equal(Zero()) {
		t.Error("zero value Reduce")
	}
	if !r.Equal(Zero()) {
		t.Error("zero value Equal")
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b int8, c, d uint8) bool {
		x := New(int64(a), int64(c)+1)
		y := New(int64(b), int64(d)+1)
		return x.Add(y).Equal(y.Add(x)) && x.Mul(y).Equal(y.Mul(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int8, c, d uint8) bool {
		x := New(int64(a), int64(c)+1)
		y := New(int64(b), int64(d)+1)
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
