// Package rat provides small exact rationals for effective-bandwidth
// values. The paper reports bandwidths such as b_eff = 3/2 (Fig. 8a) or
// b_eff = 1 + d1/d2 (Eq. 29); cycle detection in the simulator yields
// these exactly as (grants in cycle)/(cycle length), and keeping them
// as rationals lets tests compare analytic and simulated bandwidths
// without floating-point tolerance.
package rat

import "fmt"

// Rational is an exact fraction Num/Den, always stored in lowest terms
// with Den > 0. The zero value is 0/1.
type Rational struct {
	Num, Den int64
}

// New returns num/den reduced to lowest terms. It panics if den == 0.
func New(num, den int64) Rational {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g == 0 {
		return Rational{0, 1}
	}
	return Rational{num / g, den / g}
}

// FromInt returns n/1.
func FromInt(n int64) Rational { return Rational{n, 1} }

// Zero returns 0/1.
func Zero() Rational { return Rational{0, 1} }

// One returns 1/1.
func One() Rational { return Rational{1, 1} }

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Float returns the value as a float64.
func (r Rational) Float() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Equal reports exact equality (both sides reduced).
func (r Rational) Equal(o Rational) bool {
	rr, oo := r.reduced(), o.reduced()
	return rr.Num == oo.Num && rr.Den == oo.Den
}

func (r Rational) reduced() Rational {
	if r.Den == 0 {
		return Rational{0, 1}
	}
	return New(r.Num, r.Den)
}

// Cmp returns -1, 0, or +1 as r is less than, equal to, or greater
// than o.
func (r Rational) Cmp(o Rational) int {
	rr, oo := r.reduced(), o.reduced()
	lhs := rr.Num * oo.Den
	rhs := oo.Num * rr.Den
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Add returns r + o.
func (r Rational) Add(o Rational) Rational {
	rr, oo := r.reduced(), o.reduced()
	return New(rr.Num*oo.Den+oo.Num*rr.Den, rr.Den*oo.Den)
}

// Sub returns r - o.
func (r Rational) Sub(o Rational) Rational {
	rr, oo := r.reduced(), o.reduced()
	return New(rr.Num*oo.Den-oo.Num*rr.Den, rr.Den*oo.Den)
}

// Mul returns r * o.
func (r Rational) Mul(o Rational) Rational {
	rr, oo := r.reduced(), o.reduced()
	return New(rr.Num*oo.Num, rr.Den*oo.Den)
}

// IsInt reports whether the value is a whole number.
func (r Rational) IsInt() bool { return r.reduced().Den == 1 }

// String renders "n" for integers and "n/d" otherwise.
func (r Rational) String() string {
	rr := r.reduced()
	if rr.Den == 1 {
		return fmt.Sprintf("%d", rr.Num)
	}
	return fmt.Sprintf("%d/%d", rr.Num, rr.Den)
}

// Reduce returns the fraction in lowest terms (the constructors already
// reduce; Reduce normalises hand-built struct literals).
func (r Rational) Reduce() Rational { return r.reduced() }
