module ivm

go 1.22
