package ivm

// This file is the public facade of the library: downstream users
// import the module root (the internal/ packages are implementation).
// It re-exports the analytic model, the memory-system simulator, the
// X-MP machine model and the figure reproductions through aliases and
// thin constructors, so the examples under examples/ translate directly
// to external code.

import (
	"io"

	"ivm/internal/core"
	"ivm/internal/explain"
	"ivm/internal/figures"
	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/rat"
	"ivm/internal/skew"
	"ivm/internal/stats"
	"ivm/internal/stream"
	"ivm/internal/sweep"
	"ivm/internal/trace"
	"ivm/internal/xmp"
)

// --- Exact arithmetic --------------------------------------------------

// Rational is an exact fraction; effective bandwidths are reported in
// this form (3/2 means exactly 3/2).
type Rational = rat.Rational

// NewRational returns num/den in lowest terms.
func NewRational(num, den int64) Rational { return rat.New(num, den) }

// --- Analytic model (Theorems 1–9, Eqs. 29–32) -------------------------

// Analysis is the analytic verdict on a pair of access streams.
type Analysis = core.Analysis

// Regime names the conflict regime a stream pair falls into.
type Regime = core.Regime

// Conflict regimes, in decreasing order of achievable bandwidth.
const (
	RegimeConflictFree    = core.RegimeConflictFree
	RegimeDisjointFree    = core.RegimeDisjointFree
	RegimeUniqueBarrier   = core.RegimeUniqueBarrier
	RegimeBarrierPossible = core.RegimeBarrierPossible
	RegimeConflicting     = core.RegimeConflicting
	RegimeSelfConflict    = core.RegimeSelfConflict
)

// Analyze classifies two infinite access streams with distances d1, d2
// on an m-way interleaved memory with bank busy time nc (s = m; stream
// 1 holds the fixed priority).
func Analyze(m, nc, d1, d2 int) Analysis { return core.Analyze(m, nc, d1, d2) }

// PairGate is the analytic fast path for pair sweeps: the classifier
// verdict compiled once per (m, nc, d1, d2) and queried per placement,
// answering b_eff without simulation exactly where a theorem proves it.
type PairGate = core.PairGate

// NewPairGate compiles the analytic fast path for one distance pair.
func NewPairGate(m, nc, d1, d2 int) PairGate { return core.NewPairGate(m, nc, d1, d2) }

// NewPairGateUnder is NewPairGate gated on the arbitration policy: the
// pair theorems assume fixed priority, so any other rule yields an
// inactive gate and every placement falls through to simulation.
func NewPairGateUnder(m, nc, d1, d2 int, priority PriorityRule) PairGate {
	return core.NewPairGateUnder(m, nc, d1, d2, priority)
}

// ReturnNumber is Theorem 1: r = m / gcd(m, d).
func ReturnNumber(m, d int) int { return core.ReturnNumber(m, d) }

// SingleStreamBandwidth is the one-stream law b_eff = min(1, r/nc).
func SingleStreamBandwidth(m, nc, d int) Rational {
	return core.SingleStreamBandwidth(m, nc, d)
}

// ConflictFreeCondition is Theorem 3's Eq. 12.
func ConflictFreeCondition(m, nc, d1, d2 int) bool {
	return core.ConflictFreeCondition(m, nc, d1, d2)
}

// BarrierBandwidth is Eq. 29: b_eff = 1 + d1/d2 for a barrier.
func BarrierBandwidth(d1, d2 int) Rational { return core.BarrierBandwidth(d1, d2) }

// SaturationBound is the §IV capacity bound min(p, m/nc).
func SaturationBound(m, nc, p int) Rational { return core.SaturationBound(m, nc, p) }

// ConflictFreeAt is Eq. 8, the exact per-start criterion: the two
// free-running streams never collide.
func ConflictFreeAt(m, nc, b1, d1, b2, d2 int) bool {
	return core.PairConflictFreeAt(m, nc, b1, d1, b2, d2)
}

// PairIsomorphic reports the Appendix equivalence of distance pairs.
func PairIsomorphic(m, d1, d2, e1, e2 int) bool {
	return stream.PairIsomorphic(m, d1, d2, e1, e2)
}

// --- Memory-system simulator -------------------------------------------

// MemConfig configures a simulated memory system (banks, sections,
// bank busy time, CPUs, priority rule, section mapping).
type MemConfig = memsys.Config

// System is a running cycle-accurate memory simulation.
type System = memsys.System

// Cycle is a detected cyclic steady state with exact bandwidth.
type Cycle = memsys.Cycle

// StreamSpec names an infinite bank-space stream (start, distance, CPU).
type StreamSpec = memsys.StreamSpec

// Port is one access port with its conflict counters.
type Port = memsys.Port

// SectionMapping selects how banks are assigned to sections.
type SectionMapping = memsys.SectionMapping

// PriorityRule selects how simultaneous requests are arbitrated.
type PriorityRule = memsys.PriorityRule

// Section mappings and priority rules.
const (
	CyclicSections      = memsys.CyclicSections
	ConsecutiveSections = memsys.ConsecutiveSections
	FixedPriority       = memsys.FixedPriority
	CyclicPriority      = memsys.CyclicPriority
	RoundRobinPerCPU    = memsys.RoundRobinPerCPU
)

// ParsePriority parses a priority-rule name ("fixed", "cyclic",
// "rr-cpu") as printed by PriorityRule.String.
func ParsePriority(name string) (PriorityRule, error) { return memsys.ParsePriority(name) }

// ParseMapping parses a section-mapping name ("cyclic", "consecutive")
// as printed by SectionMapping.String.
func ParseMapping(name string) (SectionMapping, error) { return memsys.ParseMapping(name) }

// MemKernel selects the simulator's inner-loop implementation; see
// docs/KERNEL.md.
type MemKernel = memsys.Kernel

// The available simulator kernels: the scalar reference loop (the
// oracle) and the bit-packed bank-busy kernel, which produces identical
// grants, conflict classifications and cyclic states while running the
// busy set as bits plus an expiry event wheel. Switch with
// System.SetKernel.
const (
	KernelScalar = memsys.KernelScalar
	KernelPacked = memsys.KernelPacked
)

// NewSystem creates a memory system with plain modulo interleaving.
func NewSystem(cfg MemConfig) *System { return memsys.New(cfg) }

// NewSkewedSystem creates a memory system whose banks are linearly
// skewed (the conclusion's remedy): bank(i) = (i + s*floor(i/m)) mod m.
func NewSkewedSystem(cfg MemConfig, skewStep int) *System {
	return memsys.NewWithMapper(cfg, skew.Linear{M: cfg.Banks, S: skewStep})
}

// InfiniteStream returns a source issuing addr, addr+stride, … forever.
func InfiniteStream(addr, stride int64) memsys.Source {
	return memsys.NewInfiniteStrided(addr, stride)
}

// FiniteStream returns a source issuing n equally spaced requests.
func FiniteStream(addr, stride int64, n int) memsys.Source {
	return memsys.NewStrided(addr, stride, n)
}

// SteadyBandwidth builds a system from stream specs, detects the cyclic
// state and returns its exact b_eff.
func SteadyBandwidth(cfg MemConfig, maxClocks int64, specs ...StreamSpec) (Rational, error) {
	return memsys.SteadyBandwidth(cfg, maxClocks, specs...)
}

// Timeline runs the specs for the given clocks and renders the
// paper-style bank × clock diagram.
func Timeline(cfg MemConfig, clocks int64, specs ...StreamSpec) string {
	sys := memsys.New(cfg)
	rec := trace.Attach(sys, 0, clocks)
	for i, sp := range specs {
		label := sp.Label
		if label == "" {
			label = string(rune('1' + i%9))
		}
		sys.AddPort(sp.CPU, label, memsys.NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
	}
	sys.Run(clocks)
	if s := cfg.Sections; s != 0 && s != cfg.Banks {
		return rec.RenderWithSections(sys.Section)
	}
	return rec.Render()
}

// --- Machine model and the Fig. 10 experiment --------------------------

// MachineConfig sets the vector CPU's timing parameters.
type MachineConfig = machine.Config

// DefaultMachine returns Cray X-MP-flavoured parameters.
func DefaultMachine() MachineConfig { return machine.DefaultConfig() }

// TriadResult is one point of the Fig. 10 series.
type TriadResult = xmp.TriadResult

// XMPMemConfig is the paper's 16-bank, 4-section, n_c = 4, 2-CPU memory.
func XMPMemConfig() MemConfig { return xmp.MemConfig() }

// TriadExperiment runs the §IV triad for one increment; background
// selects whether the other CPU saturates memory at distance 1.
func TriadExperiment(inc, n int, background bool, cfg MachineConfig) TriadResult {
	return xmp.TriadExperiment(inc, n, background, cfg)
}

// TriadSweep reproduces Fig. 10 for INC = 1..maxInc.
func TriadSweep(maxInc, n int, background bool, cfg MachineConfig) []TriadResult {
	return xmp.TriadSweep(maxInc, n, background, cfg)
}

// TriadVerdict returns the §IV pairwise reasoning for one triad
// increment against the d=1 environment: the isomorphic canonical pair,
// the regime, and — for barriers — whether the triad wins.
func TriadVerdict(inc int) (canonical [2]int, regime Regime, triadWins, isBarrier bool) {
	v := explain.TriadReport(inc).Verdicts[0]
	return v.Canonical, v.Analysis.Regime, v.WorkWins, v.HasRole
}

// --- Parallel sweep engine ----------------------------------------------

// SweepOptions configures the parallel sweep engine (worker count,
// cyclic-state cache size, statistics collection).
type SweepOptions = sweep.Options

// SweepMetrics are the engine's cumulative counters (cache hits and
// misses, cycles found, steps simulated, pairs swept).
type SweepMetrics = sweep.Metrics

// SweepEngine shards grid sweeps over a worker pool with a memoization
// cache of cyclic steady states; results are byte-identical to the
// sequential sweep in any configuration.
type SweepEngine = sweep.Engine

// SweepPairResult compares analysis and simulation for one pair.
type SweepPairResult = sweep.PairResult

// SweepSummary aggregates a grid sweep by conflict regime.
type SweepSummary = sweep.Summary

// DefaultSweepCacheSize is the engine's default cache capacity.
const DefaultSweepCacheSize = sweep.DefaultCacheSize

// NewSweepEngine builds a parallel sweep engine; zero options select
// GOMAXPROCS workers and the default cache size.
func NewSweepEngine(opt SweepOptions) *SweepEngine { return sweep.NewEngine(opt) }

// SweepGrid sweeps every non-self-conflicting distance pair of an
// (m, nc) memory sequentially; NewSweepEngine(...).Grid is the parallel
// equivalent.
func SweepGrid(m, nc int) []SweepPairResult { return sweep.Grid(m, nc) }

// SummariseSweep aggregates a grid sweep.
func SummariseSweep(m, nc int, results []SweepPairResult) SweepSummary {
	return sweep.Summarise(m, nc, results)
}

// SweepTripleResult compares one distance triple's simulated cyclic
// states over all relative placements with the per-placement capacity
// bounds.
type SweepTripleResult = sweep.TripleSweepResult

// SweepTripleGridSummary aggregates an all-placements triple sweep.
type SweepTripleGridSummary = sweep.TripleGridSummary

// SweepSectionPairResult compares the section theorems with simulation
// for one distance pair of a sectioned (m, s, nc) memory.
type SweepSectionPairResult = sweep.SectionPairResult

// SweepTripleGrid sweeps every unordered distance triple of an (m, nc)
// memory over all m^2 relative placements sequentially;
// NewSweepEngine(...).TripleGrid is the parallel, cached equivalent.
func SweepTripleGrid(m, nc int) []SweepTripleResult { return sweep.TripleGrid(m, nc) }

// SummariseSweepTripleGrid aggregates an all-placements triple sweep.
func SummariseSweepTripleGrid(m, nc int, results []SweepTripleResult) SweepTripleGridSummary {
	return sweep.SummariseTripleGrid(m, nc, results)
}

// SweepSectionGrid sweeps every pair of a sectioned (m, s, nc) memory
// sequentially; NewSweepEngine(...).SectionGrid is the parallel, cached
// equivalent.
func SweepSectionGrid(m, s, nc int) []SweepSectionPairResult {
	return sweep.SectionGrid(m, s, nc)
}

// PairBandwidthBounds returns the provable sandwich on any pair's
// cyclic-state bandwidth: 1/nc <= b_eff <= the two-stream capacity.
func PairBandwidthBounds(m, nc, d1, d2 int) (lo, hi Rational) {
	return core.PairBandwidthBounds(m, nc, d1, d2)
}

// --- Generic N-stream sweeps ---------------------------------------------

// SweepStream is one access stream of a SweepConfigSpec: distance,
// starting bank, issuing CPU, and whether the sweep enumerates its
// start over all m banks (Sweep) or keeps it fixed at B.
type SweepStream = sweep.Stream

// SweepConfigSpec describes one sweepable memory configuration — m
// banks, s sections (0 for sectionless), bank busy time nc, and any
// number of streams. The pair, triple and section sweeps are all
// special cases; Family() names the cache family a spec compiles into.
type SweepConfigSpec = sweep.ConfigSpec

// SweepSpecResult is the simulated range and capacity-bound comparison
// of one spec over the enumerated placements of its swept streams.
type SweepSpecResult = sweep.SpecResult

// NewPairSpec is the pair sweep as a spec: stream 1 fixed at bank 0,
// stream 2 swept, one stream per CPU.
func NewPairSpec(m, nc, d1, d2 int) SweepConfigSpec { return sweep.PairSpec(m, nc, d1, d2) }

// NewSectionPairSpec is the section-theorem pair sweep as a spec: both
// streams on one CPU of an (m, s, nc) sectioned memory.
func NewSectionPairSpec(m, s, nc, d1, d2 int) SweepConfigSpec {
	return sweep.SectionPairSpec(m, s, nc, d1, d2)
}

// NewConsecSectionPairSpec is NewSectionPairSpec under the consecutive
// bank-to-section mapping (the Fig. 9 remedy): section(j) =
// floor(j / (m/s)) instead of the cyclic j mod s.
func NewConsecSectionPairSpec(m, s, nc, d1, d2 int) SweepConfigSpec {
	return sweep.ConsecSectionPairSpec(m, s, nc, d1, d2)
}

// NewTripleSpec is the all-placements triple sweep as a spec: stream 1
// fixed at bank 0, streams 2 and 3 swept, one stream per CPU.
func NewTripleSpec(m, nc int, d [3]int) SweepConfigSpec { return sweep.TripleSpec(m, nc, d) }

// NewNStreamSpec generalises the pair and triple sweeps to p streams,
// one per CPU: stream 1 fixed at bank 0, the rest swept.
func NewNStreamSpec(m, nc int, d []int) SweepConfigSpec { return sweep.NStreamSpec(m, nc, d) }

// SweepSpec sweeps one spec sequentially over all placements of its
// swept streams; NewSweepEngine(...).SweepSpec is the parallel, cached
// equivalent.
func SweepSpec(spec SweepConfigSpec) SweepSpecResult { return sweep.SweepSpec(spec) }

// SweepNStreamGrid sweeps every nondecreasing n-tuple of allowed
// distances of an (m, nc) memory over all placements sequentially;
// NewSweepEngine(...).NStreamGrid is the parallel, cached equivalent.
func SweepNStreamGrid(m, nc, n int) []SweepSpecResult { return sweep.NStreamGrid(m, nc, n) }

// SummariseSweepSpecGrid aggregates an N-stream grid sweep.
func SummariseSweepSpecGrid(results []SweepSpecResult) SweepTripleGridSummary {
	return sweep.SummariseSpecGrid(results)
}

// --- Resolution and cache persistence -----------------------------------

// SweepResolution is the engine's answer to one fixed-placement query:
// the effective bandwidth plus the provenance of the answer (path,
// theorem identifier, canonical orbit, simulation cost). See
// SweepEngine.Resolve and ResolveBatch — the query path behind
// ivmserved.
type SweepResolution = sweep.Resolution

// SweepPath identifies the engine route that resolved one placement.
type SweepPath = sweep.Path

// The provenance paths a resolution can report.
const (
	SweepPathAnalytic  = sweep.PathAnalytic
	SweepPathCache     = sweep.PathCache
	SweepPathSimScalar = sweep.PathSimScalar
	SweepPathSimPacked = sweep.PathSimPacked
)

// SweepCacheRecord is one cyclic-state cache entry in portable form —
// the unit of cache persistence (SweepEngine.CacheRecords/SeedCache,
// SweepOptions.CacheSink and the internal cachestore behind
// ivmsweep -cache-export / ivmserved -cache-dir).
type SweepCacheRecord = sweep.CacheRecord

// SweepCacheSink receives one SweepCacheRecord per newly simulated
// canonical orbit (SweepOptions.CacheSink).
type SweepCacheSink = sweep.CacheSink

// --- Observability ------------------------------------------------------

// TraceEvent is one recorded per-clock simulator outcome (grant or
// classified delay) without live object references.
type TraceEvent = obs.Event

// Tracer is the ring-buffered event tracer; it implements the
// simulator's listener seam and keeps exact atomic totals.
type Tracer = obs.Tracer

// TracerOptions size the tracer's event ring and sampling.
type TracerOptions = obs.TracerOptions

// TraceStats are a tracer's exact totals and ring state.
type TraceStats = obs.TraceStats

// MetricsSnapshot bundles engine, statistics and trace metrics into
// one JSON document (the CLIs' -metrics-out).
type MetricsSnapshot = obs.Snapshot

// MetricsRegistry serves live, named metrics sources over HTTP along
// with expvar and pprof.
type MetricsRegistry = obs.Registry

// EngineSnapshot is the sweep engine's observability view: counters,
// cache hit rate, per-worker utilisation, detection latency.
type EngineSnapshot = sweep.Snapshot

// StatsSnapshot is a statistics collector's serialisable aggregate.
type StatsSnapshot = stats.Snapshot

// NewTracer builds a detached tracer; install it with
// System.SetListener, or use AttachTracer.
func NewTracer(opt TracerOptions) *Tracer { return obs.NewTracer(opt) }

// AttachTracer builds a tracer and installs it as the system's
// listener.
func AttachTracer(sys *System, opt TracerOptions) *Tracer { return obs.Attach(sys, opt) }

// WriteChromeTrace renders traced events as a Chrome trace_event JSON
// document (chrome://tracing, Perfetto): one track per bank, one per
// port.
func WriteChromeTrace(w io.Writer, events []TraceEvent, banks, bankBusy int) error {
	return obs.WriteChromeTrace(w, events, banks, bankBusy)
}

// WriteTraceCSV renders traced events as a CSV timeline.
func WriteTraceCSV(w io.Writer, events []TraceEvent) error {
	return obs.WriteCSV(w, events)
}

// BankStripChart renders traced events as a plain-text bank-occupancy
// strip chart.
func BankStripChart(events []TraceEvent, banks, bankBusy int) string {
	return obs.StripChart(events, banks, bankBusy)
}

// WriteMetricsSnapshot serialises a metrics snapshot as indented JSON.
func WriteMetricsSnapshot(w io.Writer, s MetricsSnapshot) error {
	return obs.WriteSnapshot(w, s)
}

// ReadMetricsSnapshot parses a snapshot written by
// WriteMetricsSnapshot.
func ReadMetricsSnapshot(r io.Reader) (MetricsSnapshot, error) {
	return obs.ReadSnapshot(r)
}

// NewMetricsRegistry returns an empty live-metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// --- Figures ------------------------------------------------------------

// Figure is one of the paper's executable worked examples.
type Figure = figures.Figure

// Figures returns executable reproductions of Figures 2–9.
func Figures() []Figure { return figures.All() }

// FigureByID returns one figure ("2" … "9", "8a", "8b").
func FigureByID(id string) (Figure, error) { return figures.ByID(id) }
