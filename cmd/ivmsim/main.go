// Command ivmsim runs an ad-hoc interleaved-memory simulation: choose
// the system (m, s, n_c, priority, mapping) and up to nine access
// streams "start:distance[:cpu]", get the paper-style timeline, the
// steady-state effective bandwidth and the conflict breakdown.
//
// Example (Fig. 3's barrier):
//
//	ivmsim -m 13 -nc 6 -streams 0:1,0:6
//
// Observability: -trace-out exports the timeline window as a Chrome
// trace_event file (chrome://tracing, Perfetto), -csv-out as a CSV
// timeline (the ring's window; -csv-stream streams the whole run
// losslessly), -strip prints the bank-occupancy strip chart,
// -phase-hist prints the per-cycle conflict phase histogram of the
// steady state (-phase-csv exports it), and -metrics-out writes the
// statistics, trace totals and phase histogram as JSON. -metrics-addr
// serves the shared debug endpoints (/metrics Prometheus liveness,
// /healthz, expvar, pprof) while the run executes, and
// -cpuprofile/-memprofile/-trace profile the run itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ivm/internal/core"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/stats"
	"ivm/internal/textplot"
	"ivm/internal/trace"
)

func main() {
	m := flag.Int("m", 16, "number of banks")
	s := flag.Int("s", 0, "number of sections (0 = one per bank)")
	nc := flag.Int("nc", 4, "bank busy time in clock periods")
	cpus := flag.Int("cpus", 2, "number of CPUs (path groups)")
	streamsFlag := flag.String("streams", "0:1,0:6", "comma-separated streams start:distance[:cpu]")
	clocks := flag.Int64("clocks", 40, "timeline width in clock periods")
	priority := flag.String("priority", "fixed", "priority rule: fixed|cyclic|rr-cpu")
	mapping := flag.String("mapping", "cyclic", "bank-to-section mapping: cyclic|consecutive")
	analyze := flag.Bool("analyze", true, "print the analytic verdict for two-stream runs")
	statsFlag := flag.Bool("stats", false, "print per-bank utilisation and delay-run statistics")
	statsClocks := flag.Int64("statsclocks", 2048, "clocks to gather statistics over")
	traceOut := flag.String("trace-out", "", "write the timeline window as Chrome trace_event JSON (open in chrome://tracing or Perfetto)")
	csvOut := flag.String("csv-out", "", "write the timeline window as a CSV event timeline")
	csvStream := flag.String("csv-stream", "", "stream the whole timeline run to this CSV file losslessly (not bounded by the trace ring)")
	stripFlag := flag.Bool("strip", false, "print the timeline window's bank-occupancy strip chart")
	phaseHist := flag.Bool("phase-hist", false, "print the steady-state cycle's conflict phase histogram (grants/conflicts by clock phase and bank)")
	phaseCSV := flag.String("phase-csv", "", "write the phase histogram as CSV (phase x bank, long form)")
	metricsOut := flag.String("metrics-out", "", "write statistics, trace totals and the phase histogram as a JSON metrics snapshot")
	metricsAddr := flag.String("metrics-addr", "", "serve liveness and debug endpoints on this address: /metrics Prometheus text, /healthz, /debug/vars expvar, /debug/pprof")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		fail("%v", err)
	}
	if *metricsAddr != "" {
		closer, err := obs.ServeMetrics("ivmsim", *metricsAddr, nil, nil)
		if err != nil {
			fail("%v", err)
		}
		defer closer.Close()
	}

	cfg := memsys.Config{Banks: *m, Sections: *s, BankBusy: *nc, CPUs: *cpus}
	if cfg.Priority, err = memsys.ParsePriority(*priority); err != nil {
		fail("%v", err)
	}
	if cfg.Mapping, err = memsys.ParseMapping(*mapping); err != nil {
		fail("%v", err)
	}
	if err := cfg.Validate(); err != nil {
		fail("%v", err)
	}

	specs, err := parseStreams(*streamsFlag, *m, *cpus)
	if err != nil {
		fail("%v", err)
	}

	sys := memsys.New(cfg)
	rec := trace.Attach(sys, 0, *clocks)
	var tracer *obs.Tracer
	var stream *obs.CSVStream
	var streamFile *os.File
	listeners := obs.Tee{rec}
	if *traceOut != "" || *csvOut != "" || *stripFlag || *metricsOut != "" {
		// The tracer shares the listener seam with the timeline
		// recorder, observing the same window.
		tracer = obs.NewTracer(obs.TracerOptions{})
		listeners = append(listeners, tracer)
	}
	if *csvStream != "" {
		// The streaming exporter writes rows as they happen, so the run
		// is exported losslessly even past the tracer's ring capacity.
		if streamFile, err = os.Create(*csvStream); err != nil {
			fail("%v", err)
		}
		stream = obs.NewCSVStream(streamFile, obs.StreamOptions{})
		listeners = append(listeners, stream)
	}
	if len(listeners) > 1 {
		sys.SetListener(listeners)
	}
	for i, sp := range specs {
		sys.AddPort(sp.CPU, fmt.Sprintf("%d", i+1), memsys.NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
	}
	sys.Run(*clocks)
	if stream != nil {
		if err := stream.Close(); err != nil {
			fail("csv stream: %v", err)
		}
		if err := streamFile.Close(); err != nil {
			fail("csv stream: %v", err)
		}
	}
	if *s != 0 && *s != *m {
		fmt.Print(rec.RenderWithSections(sys.Section))
	} else {
		fmt.Print(rec.Render())
	}
	fmt.Println(trace.Legend())
	fmt.Println()

	// Fresh system for exact steady-state measurement.
	sys2 := memsys.New(cfg)
	for i, sp := range specs {
		sys2.AddPort(sp.CPU, fmt.Sprintf("%d", i+1), memsys.NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
	}
	cyc, err := sys2.FindCycle(1 << 22)
	if err != nil {
		fail("cycle detection: %v", err)
	}
	fmt.Printf("steady state: b_eff = %s (cycle length %d, lead-in %d)\n\n", cyc.EffectiveBandwidth(), cyc.Length, cyc.Lead)
	tbl := &textplot.Table{Header: []string{"stream", "start", "distance", "cpu", "b_eff", "bank", "simult", "section"}}
	for i, sp := range specs {
		c := cyc.Conflicts[i]
		tbl.Add(i+1, sp.Start, sp.Distance, sp.CPU, cyc.PortBandwidth(i).String(), c.Bank, c.Simultaneous, c.Section)
	}
	fmt.Print(tbl.String())

	if *analyze && len(specs) == 2 && (*s == 0 || *s == *m) {
		a := core.Analyze(*m, *nc, specs[0].Distance, specs[1].Distance)
		fmt.Printf("\nanalytic verdict: %s\n%s\n", a, a.Note)
	}

	var phist *obs.PhaseHistogram
	if *phaseHist || *phaseCSV != "" || *metricsOut != "" {
		h, _, err := obs.TracePhaseHistogram(cfg, specs, 1<<22)
		if err != nil {
			fail("phase histogram: %v", err)
		}
		phist = &h
	}
	if *phaseHist {
		fmt.Println()
		fmt.Print(phist.Render())
	}
	if *phaseCSV != "" {
		if err := writeFile(*phaseCSV, func(w *os.File) error {
			return obs.WritePhaseCSV(w, *phist)
		}); err != nil {
			fail("%v", err)
		}
	}

	var col *stats.Collector
	if *statsFlag || *metricsOut != "" {
		sys3 := memsys.New(cfg)
		col = stats.Attach(sys3)
		for i, sp := range specs {
			sys3.AddPort(sp.CPU, fmt.Sprintf("%d", i+1), memsys.NewInfiniteStrided(int64(sp.Start), int64(sp.Distance)))
		}
		sys3.Run(*statsClocks)
	}
	if *statsFlag {
		fmt.Printf("\nstatistics over %d clocks:\n%s", *statsClocks, col.Report())
		for i := range specs {
			if runs := col.DelayRunLengths(i); len(runs) > 0 {
				fmt.Printf("stream %d delay-run lengths: %v\n", i+1, runs)
			}
		}
	}

	if tracer != nil {
		events := tracer.Events()
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(w *os.File) error {
				return obs.WriteChromeTrace(w, events, *m, *nc)
			}); err != nil {
				fail("%v", err)
			}
		}
		if *csvOut != "" {
			if err := writeFile(*csvOut, func(w *os.File) error {
				return obs.WriteCSV(w, events)
			}); err != nil {
				fail("%v", err)
			}
			if d := tracer.Stats().Dropped; d > 0 {
				fmt.Fprintf(os.Stderr,
					"warning: trace ring wrapped, -csv-out lost the oldest %d events; -csv-stream exports losslessly\n", d)
			}
		}
		if *stripFlag {
			fmt.Println()
			fmt.Print(obs.StripChart(events, *m, *nc))
		}
	}
	if *metricsOut != "" {
		snap := obs.Snapshot{}
		if col != nil {
			cs := col.Snapshot()
			snap.Stats = &cs
		}
		if tracer != nil {
			ts := tracer.Stats()
			snap.Trace = &ts
		}
		snap.PhaseHistogram = phist
		if err := obs.WriteSnapshotFile(*metricsOut, snap); err != nil {
			fail("%v", err)
		}
	}
	if err := stop(); err != nil {
		fail("%v", err)
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseStreams(flagVal string, m, cpus int) ([]memsys.StreamSpec, error) {
	var specs []memsys.StreamSpec
	for i, part := range strings.Split(flagVal, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("stream %d: want start:distance[:cpu], got %q", i+1, part)
		}
		start, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("stream %d start: %v", i+1, err)
		}
		dist, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("stream %d distance: %v", i+1, err)
		}
		cpu := i % cpus
		if len(fields) == 3 {
			if cpu, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("stream %d cpu: %v", i+1, err)
			}
			if cpu < 0 || cpu >= cpus {
				return nil, fmt.Errorf("stream %d cpu %d out of range [0,%d)", i+1, cpu, cpus)
			}
		}
		specs = append(specs, memsys.StreamSpec{Start: start % m, Distance: dist % m, CPU: cpu})
	}
	if len(specs) == 0 || len(specs) > 9 {
		return nil, fmt.Errorf("need 1..9 streams, got %d", len(specs))
	}
	return specs, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
