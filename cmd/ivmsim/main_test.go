package main

import "testing"

func TestParseStreams(t *testing.T) {
	specs, err := parseStreams("0:1,3:7:1", 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("len = %d", len(specs))
	}
	if specs[0].Start != 0 || specs[0].Distance != 1 || specs[0].CPU != 0 {
		t.Fatalf("spec 0 = %+v", specs[0])
	}
	if specs[1].Start != 3 || specs[1].Distance != 7 || specs[1].CPU != 1 {
		t.Fatalf("spec 1 = %+v", specs[1])
	}
}

func TestParseStreamsDefaultsCPURoundRobin(t *testing.T) {
	specs, err := parseStreams("0:1,1:1,2:1", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].CPU != 0 || specs[1].CPU != 1 || specs[2].CPU != 0 {
		t.Fatalf("CPUs = %d,%d,%d", specs[0].CPU, specs[1].CPU, specs[2].CPU)
	}
}

func TestParseStreamsReducesModuloM(t *testing.T) {
	specs, err := parseStreams("17:18", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Start != 1 || specs[0].Distance != 2 {
		t.Fatalf("spec = %+v", specs[0])
	}
}

func TestParseStreamsErrors(t *testing.T) {
	cases := []string{
		"",        // no fields
		"1",       // missing distance
		"a:1",     // bad start
		"1:b",     // bad distance
		"1:2:x",   // bad cpu
		"1:2:5",   // cpu out of range
		"1:2:0:9", // too many fields
		"1:1,1:1,1:1,1:1,1:1,1:1,1:1,1:1,1:1,1:1", // too many streams
	}
	for _, c := range cases {
		if _, err := parseStreams(c, 16, 2); err == nil {
			t.Errorf("parseStreams(%q): expected error", c)
		}
	}
}
