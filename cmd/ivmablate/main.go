// Command ivmablate runs the ablation studies around the paper's
// conclusion: the multitasking option (splitting the triad across both
// CPUs for a uniform access environment), bank-skewing schemes on the
// full machine model, the elementary-kernel stride sweeps, and the
// classical random-access baselines the introduction contrasts with.
package main

import (
	"flag"
	"fmt"
	"os"

	"ivm/internal/machine"
	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/randaccess"
	"ivm/internal/sweep"
	"ivm/internal/textplot"
	"ivm/internal/xmp"
)

func main() {
	study := flag.String("study", "all", "which study: pairs|triples|sections|multitask|skew|kernels|random|all")
	n := flag.Int("n", 512, "vector length per stream")
	maxInc := flag.Int("maxinc", 16, "largest increment to sweep")
	workers := flag.Int("workers", 0, "sweep worker goroutines for the engine studies; 0 selects GOMAXPROCS")
	cache := flag.Int("cache", sweep.DefaultCacheSize, "cyclic-state cache entries for the engine studies, shared by pair, triple and section sweeps; negative disables")
	metricsOut := flag.String("metrics-out", "", "write the engine studies' metrics snapshot as JSON")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := machine.DefaultConfig()
	ran := false
	var eng *sweep.Engine
	engine := func() *sweep.Engine {
		if eng == nil {
			eng = sweep.NewEngine(sweep.Options{Workers: *workers, CacheSize: *cache})
		}
		return eng
	}
	if *study == "pairs" || *study == "all" {
		pairs(engine())
		ran = true
	}
	if *study == "triples" || *study == "all" {
		triplesStudy(engine())
		ran = true
	}
	if *study == "sections" || *study == "all" {
		sectionsStudy(engine())
		ran = true
	}
	if *study == "multitask" || *study == "all" {
		multitask(*maxInc, *n, cfg)
		ran = true
	}
	if *study == "skew" || *study == "all" {
		skewStudy(*maxInc, *n, cfg)
		ran = true
	}
	if *study == "kernels" || *study == "all" {
		kernels(*maxInc, *n, cfg)
		ran = true
	}
	if *study == "random" || *study == "all" {
		random()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		os.Exit(1)
	}
	if *metricsOut != "" && eng != nil {
		snap := eng.Snapshot()
		if err := obs.WriteSnapshotFile(*metricsOut, obs.Snapshot{Engine: &snap}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func pairs(eng *sweep.Engine) {
	fmt.Println("== pair grid on the X-MP memory (m=16, nc=4): cached parallel sweep vs the analysis")
	results := eng.Grid(16, 4)
	fmt.Print(sweep.SummaryTable(sweep.Summarise(16, 4, results)))
	fmt.Print(eng.Metrics().Table())
	fmt.Println()
}

func triplesStudy(eng *sweep.Engine) {
	fmt.Println("== three-stream capacity bounds (m=8, nc=2): all placements vs core.MultiStreamBound")
	results := eng.TripleGrid(8, 2)
	s := sweep.SummariseTripleGrid(8, 2, results)
	fmt.Printf("%d triples over %d placements: bound attained somewhere by %d triples (%d placements), violated by %d\n",
		s.Triples, s.Starts, s.TightSomewhere, s.TightStarts, s.Violations)
	m := eng.Metrics()
	fmt.Printf("triple cache: %.0f%% hits (%d/%d)\n",
		m.TripleHitRate()*100, m.TripleCacheHits, m.TripleCacheHits+m.TripleCacheMisses)
	fmt.Println()
}

func sectionsStudy(eng *sweep.Engine) {
	fmt.Println("== section theorems on the X-MP layout (m=16, s=4, nc=4): cached parallel sweep")
	results := eng.SectionGrid(16, 4, 4)
	bad := 0
	for _, r := range results {
		if !r.Agree {
			bad++
		}
	}
	fmt.Printf("%d pairs, %d disagreements\n", len(results), bad)
	m := eng.Metrics()
	fmt.Printf("section cache: %.0f%% hits (%d/%d)\n",
		m.SectionHitRate()*100, m.SectionCacheHits, m.SectionCacheHits+m.SectionCacheMisses)
	fmt.Println()
}

func multitask(maxInc, n int, cfg machine.Config) {
	fmt.Printf("== multitasking the triad (conclusion): 2n on one CPU vs n+n on both, n=%d\n", n)
	tbl := &textplot.Table{Header: []string{"INC", "single/clocks", "split/clocks", "speedup"}}
	for _, r := range xmp.MultitaskSweep(maxInc, n, cfg) {
		tbl.Add(r.INC, r.SingleClocks, r.SplitClocks, fmt.Sprintf("%.2f", r.Speedup))
	}
	fmt.Print(tbl.String())
	fmt.Println()
}

func skewStudy(maxInc, n int, cfg machine.Config) {
	fmt.Printf("== linear bank skewing on the full machine (busy environment), n=%d\n", n)
	tbl := &textplot.Table{Header: []string{"INC", "plain/clocks", "skewed/clocks", "ratio"}}
	for inc := 1; inc <= maxInc; inc++ {
		p := xmp.TriadExperiment(inc, n, true, cfg)
		s := xmp.SkewedTriadExperiment(inc, n, xmp.LinearSkewMapper(), cfg)
		tbl.Add(inc, p.Clocks, s.Clocks, fmt.Sprintf("%.2f", float64(s.Clocks)/float64(p.Clocks)))
	}
	fmt.Print(tbl.String())
	fmt.Println("skewing repairs the self-conflicting power-of-two strides and taxes some odd ones.")
	fmt.Println()
}

func kernels(maxInc, n int, cfg machine.Config) {
	fmt.Printf("== elementary kernels over stride (quiet environment), n=%d\n", n)
	tbl := &textplot.Table{Header: []string{"kernel", "INC", "clocks", "bank", "section"}}
	for _, r := range xmp.KernelSweep(maxInc, n, cfg) {
		tbl.Add(r.Kernel, r.INC, r.Clocks, r.Bank, r.Section)
	}
	fmt.Print(tbl.String())
	fmt.Println()
}

func random() {
	fmt.Println("== vector mode vs the classical random-access models (m=16, nc=4, p=4)")
	tbl := &textplot.Table{Header: []string{"distance", "vector b_eff", "random b_eff", "binomial model", "Hellerman m^0.56"}}
	for _, r := range randaccess.CompareStrides(16, 4, 4, []int{1, 2, 3, 4, 8, 16}, 20000) {
		tbl.Add(r.Distance,
			fmt.Sprintf("%.3f", r.Vector),
			fmt.Sprintf("%.3f", r.Random),
			fmt.Sprintf("%.3f", r.Binomial),
			fmt.Sprintf("%.3f", randaccess.Hellerman(16)))
	}
	fmt.Print(tbl.String())
	fmt.Println("random-access theory misses both the conflict-free and the degenerate vector strides.")
}
